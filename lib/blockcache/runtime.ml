module Cpu = Msp430.Cpu
module Memory = Msp430.Memory
module Trace = Msp430.Trace
module Isa = Msp430.Isa

(* Runtime for the block-cache baseline: fixed-size SRAM slots, a
   djb2 open-addressing hash table in FRAM mapping NVM block address
   to cached copy, block chaining by rewriting the branch extension
   word inside the cached source block, and a full flush when the
   slots are exhausted (the highest-performance configuration of the
   original design, per the paper §4). *)

type table_addrs = {
  a_cfi : int;
  a_cfitab : int;
  a_blocktab : int;
  a_hash : int;
  a_runtime : int;
  runtime_size : int;
  a_memcpy : int;
  memcpy_size : int;
}

type stats = {
  mutable misses : int; (* runtime entries via CFI stubs *)
  mutable block_loads : int; (* blocks copied into slots *)
  mutable chains : int;
  mutable flushes : int;
  mutable returns : int;
  mutable hash_probes : int;
  mutable words_copied : int;
}

type t = {
  mem : Memory.t;
  cpu : Cpu.t;
  options : Config.options;
  manifest : Transform.manifest;
  addrs : table_addrs;
  block_index : (int, int * int) Hashtbl.t; (* nvm addr -> (index, size) *)
  slot_owners : int array; (* slot index -> NVM leader addr, -1 if empty *)
  mutable next_slot : int;
  stats : stats;
  mutable handler_cursor : int;
  mutable memcpy_cursor : int;
}

let stats t = t.stats
let slot_bytes t = t.manifest.Transform.slot_size
let cache_bytes t = t.manifest.Transform.num_slots * t.manifest.Transform.slot_size
let emit_rt t ev =
  let stats = Memory.stats t.mem in
  if Trace.has_observer stats then Trace.emit stats (Trace.Runtime_event ev)

(* Host-side dynamic symbolizer for the observability layer: translate
   a pc inside an SRAM slot back to the NVM address of the cached
   block's corresponding word. Pure inspection — no counted accesses. *)
let cached_block_at t addr =
  let base = t.options.Config.cache_base in
  let slot_size = t.manifest.Transform.slot_size in
  let span = t.manifest.Transform.num_slots * slot_size in
  if addr < base || addr >= base + span then None
  else
    let slot = (addr - base) / slot_size in
    let owner = t.slot_owners.(slot) in
    if owner < 0 then None
    else Some (owner + (addr - (base + (slot * slot_size))))

let charge t source n =
  let base, size, get, set =
    match source with
    | Trace.Memcpy ->
        ( t.addrs.a_memcpy,
          t.addrs.memcpy_size,
          (fun () -> t.memcpy_cursor),
          fun c -> t.memcpy_cursor <- c )
    | _ ->
        ( t.addrs.a_runtime,
          t.addrs.runtime_size,
          (fun () -> t.handler_cursor),
          fun c -> t.handler_cursor <- c )
  in
  let stats = Memory.stats t.mem in
  let observed = Trace.has_observer stats in
  for _ = 1 to n do
    let cur = get () in
    Memory.begin_instruction t.mem;
    (* The runtime/memcpy regions live in reserved FRAM, so the
       unobserved path can take the specialized counted fetch. *)
    if observed then begin
      Trace.emit stats (Trace.Instr { pc = base + cur; source });
      ignore (Memory.read_word t.mem ~purpose:Memory.Ifetch (base + cur))
    end
    else ignore (Memory.fetch_word_fram t.mem (base + cur));
    Trace.count_instr stats source;
    Trace.add_unstalled stats Costs.cycles_per_instr;
    set ((cur + 2) mod size)
  done

let read_word t addr = Memory.read_word t.mem ~purpose:Memory.Data addr
let write_word t addr v = Memory.write_word t.mem addr v

(* --- Hash table in simulated FRAM ------------------------------------ *)

let djb2 key =
  let h = 5381 in
  let h = ((h * 33) + (key land 0xFF)) land 0xFFFF in
  ((h * 33) + ((key lsr 8) land 0xFF)) land 0xFFFF

let bucket_addr t i = t.addrs.a_hash + (4 * i)

let hash_lookup t key =
  let mask = t.manifest.Transform.hash_buckets - 1 in
  let rec probe i steps =
    if steps > t.manifest.Transform.hash_buckets then None
    else begin
      charge t Trace.Handler Costs.hash_probe_instrs;
      t.stats.hash_probes <- t.stats.hash_probes + 1;
      let k = read_word t (bucket_addr t i) in
      if k = 0 then None
      else if k = key then Some (read_word t (bucket_addr t i + 2))
      else probe ((i + 1) land mask) (steps + 1)
    end
  in
  probe (djb2 key land mask) 0

let hash_insert t key value =
  let mask = t.manifest.Transform.hash_buckets - 1 in
  let rec probe i =
    charge t Trace.Handler Costs.hash_insert_instrs;
    let k = read_word t (bucket_addr t i) in
    if k = 0 || k = key then begin
      write_word t (bucket_addr t i) key;
      write_word t (bucket_addr t i + 2) value
    end
    else probe ((i + 1) land mask)
  in
  probe (djb2 key land mask)

let flush t =
  t.stats.flushes <- t.stats.flushes + 1;
  emit_rt t Trace.Cache_flush;
  charge t Trace.Handler Costs.flush_base_instrs;
  for i = 0 to t.manifest.Transform.hash_buckets - 1 do
    charge t Trace.Handler Costs.flush_per_bucket_instrs;
    write_word t (bucket_addr t i) 0
  done;
  Array.fill t.slot_owners 0 (Array.length t.slot_owners) (-1);
  t.next_slot <- 0

(* --- Block loading ---------------------------------------------------- *)

let load_block t ~nvm =
  let index, size =
    match Hashtbl.find_opt t.block_index nvm with
    | Some p -> p
    | None ->
        failwith
          (Printf.sprintf "block cache: 0x%04X is not a block leader" nvm)
  in
  (* read the blocktab entry (address check + size) *)
  charge t Trace.Handler 2;
  ignore (read_word t (t.addrs.a_blocktab + (4 * index)));
  ignore (read_word t (t.addrs.a_blocktab + (4 * index) + 2));
  if t.next_slot >= t.manifest.Transform.num_slots then flush t;
  emit_rt t (Trace.Block_load { nvm });
  let slot = t.options.Config.cache_base
             + (t.next_slot * t.manifest.Transform.slot_size)
  in
  t.slot_owners.(t.next_slot) <- nvm;
  t.next_slot <- t.next_slot + 1;
  let words = (size + 1) / 2 in
  for i = 0 to words - 1 do
    charge t Trace.Memcpy Costs.memcpy_per_word_instrs;
    let w = read_word t (nvm + (2 * i)) in
    write_word t (slot + (2 * i)) w;
    t.stats.words_copied <- t.stats.words_copied + 1
  done;
  hash_insert t nvm slot;
  t.stats.block_loads <- t.stats.block_loads + 1;
  slot

let lookup_or_load t ~nvm =
  match hash_lookup t nvm with
  | Some slot -> slot
  | None -> load_block t ~nvm

(* --- Trap entries ------------------------------------------------------ *)

(* CFI stub entry: cache the target block and chain the source CFI. *)
let on_miss t _cpu =
  t.stats.misses <- t.stats.misses + 1;
  emit_rt t (Trace.Miss_enter { runtime = "block" });
  charge t Trace.Handler Costs.runtime_entry_instrs;
  let cfi_id = read_word t t.addrs.a_cfi in
  charge t Trace.Handler Costs.cfitab_instrs;
  let entry = t.addrs.a_cfitab + (6 * cfi_id) in
  let target = read_word t entry in
  let owner = read_word t (entry + 2) in
  let br_off = read_word t (entry + 4) in
  let slot = lookup_or_load t ~nvm:target in
  (* chain: if the source block is cached, point its BR at the copy *)
  (match hash_lookup t owner with
  | Some owner_slot ->
      charge t Trace.Handler Costs.chain_instrs;
      (* the BR's extension word sits 2 bytes after the opcode *)
      write_word t (owner_slot + br_off + 2) slot;
      t.stats.chains <- t.stats.chains + 1
  | None -> ());
  charge t Trace.Handler Costs.runtime_exit_instrs;
  emit_rt t (Trace.Miss_exit { runtime = "block"; disposition = "cached"; fid = -1 });
  Cpu.Goto slot

(* Return entry: resume at the (NVM) return address through the cache. *)
let on_return t cpu =
  t.stats.returns <- t.stats.returns + 1;
  emit_rt t (Trace.Miss_enter { runtime = "block" });
  charge t Trace.Handler Costs.return_entry_instrs;
  let sp = Cpu.reg cpu Isa.sp in
  let nvm = read_word t sp in
  Cpu.set_reg cpu Isa.sp (sp + 2);
  let slot = lookup_or_load t ~nvm in
  charge t Trace.Handler Costs.runtime_exit_instrs;
  emit_rt t (Trace.Miss_exit { runtime = "block"; disposition = "return"; fid = -1 });
  Cpu.Goto slot

(* Power-loss recovery, mirroring Swapram.Runtime.reboot: the SRAM
   slots (and every chained BR word patched into them) evaporate, but
   the FRAM hash table still maps NVM block addresses to the vanished
   copies. Restore the hash table and the CFI id word to their
   post-link (empty/zero) values and reset the volatile slot cursor.
   The restore writes are counted FRAM accesses, so an armed power
   trigger can tear the reboot itself; the routine is idempotent. *)
let reboot t ~image =
  t.next_slot <- 0;
  Array.fill t.slot_owners 0 (Array.length t.slot_owners) (-1);
  t.handler_cursor <- 0;
  t.memcpy_cursor <- 0;
  let restore_item name =
    let addr, bytes = Masm.Assembler.item_initial image name in
    Bytes.iteri
      (fun i c -> Memory.write_byte t.mem (addr + i) (Char.code c))
      bytes
  in
  List.iter restore_item [ Config.sym_cfi; Config.sym_hash ]

(* Runtime-critical FRAM windows for adversarial fault injection —
   dying on an access in one of these regions is dying inside the
   miss handler, mid-memcpy, or between hash-table half-updates. *)
let critical_windows t ~image =
  [
    ("runtime", t.addrs.a_runtime, t.addrs.a_runtime + t.addrs.runtime_size);
    ("memcpy", t.addrs.a_memcpy, t.addrs.a_memcpy + t.addrs.memcpy_size);
    ( "hash",
      t.addrs.a_hash,
      t.addrs.a_hash + Masm.Assembler.item_size image Config.sym_hash );
    ("cfi", t.addrs.a_cfi, t.addrs.a_cfi + 2);
  ]

let table_addrs_of_image image (manifest : Transform.manifest) =
  let look = Masm.Assembler.lookup image in
  {
    a_cfi = look Config.sym_cfi;
    a_cfitab = look Config.sym_cfitab;
    a_blocktab = look Config.sym_blocktab;
    a_hash = look Config.sym_hash;
    a_runtime = look Config.sym_runtime;
    runtime_size = manifest.Transform.runtime_bytes;
    a_memcpy = look Config.sym_memcpy;
    memcpy_size = manifest.Transform.memcpy_bytes;
  }

let install ~options ~manifest ~image (system : Msp430.Platform.system) =
  let addrs = table_addrs_of_image image manifest in
  let block_index = Hashtbl.create 256 in
  Array.iteri
    (fun i (leader, size) ->
      let addr = Masm.Assembler.lookup image leader in
      Hashtbl.replace block_index addr (i, size))
    manifest.Transform.blocks;
  let t =
    {
      mem = system.Msp430.Platform.memory;
      cpu = system.Msp430.Platform.cpu;
      options;
      manifest;
      addrs;
      block_index;
      slot_owners = Array.make manifest.Transform.num_slots (-1);
      next_slot = 0;
      stats =
        {
          misses = 0;
          block_loads = 0;
          chains = 0;
          flushes = 0;
          returns = 0;
          hash_probes = 0;
          words_copied = 0;
        };
      handler_cursor = 0;
      memcpy_cursor = 0;
    }
  in
  Cpu.register_trap system.Msp430.Platform.cpu Config.miss_trap (on_miss t);
  Cpu.register_trap system.Msp430.Platform.cpu Config.return_trap (on_return t);
  let rt_lo = addrs.a_runtime and rt_hi = addrs.a_runtime + addrs.runtime_size in
  let mc_lo = addrs.a_memcpy and mc_hi = addrs.a_memcpy + addrs.memcpy_size in
  Cpu.set_classifier system.Msp430.Platform.cpu (fun addr ->
      if addr >= rt_lo && addr < rt_hi then Trace.Handler
      else if addr >= mc_lo && addr < mc_hi then Trace.Memcpy
      else
        match
          Memory.region_of (Memory.map system.Msp430.Platform.memory) addr
        with
        | Memory.Sram -> Trace.App_sram
        | Memory.Fram | Memory.Peripheral | Memory.Unmapped -> Trace.App_fram);
  t
