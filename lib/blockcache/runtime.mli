(** Runtime for the block-cache baseline: fixed-size SRAM slots, a
    djb2 open-addressing hash table in FRAM mapping NVM block address
    to cached copy, block chaining by rewriting the branch extension
    word inside the cached source block, and a full flush when the
    slots are exhausted (the highest-performance configuration of the
    original design, per the paper §4). *)

type stats = {
  mutable misses : int;  (** runtime entries via CFI stubs *)
  mutable block_loads : int;  (** blocks copied into slots *)
  mutable chains : int;
  mutable flushes : int;
  mutable returns : int;  (** runtime entries via the return trap *)
  mutable hash_probes : int;
  mutable words_copied : int;
}

type t

val stats : t -> stats

val slot_bytes : t -> int
(** Size of one SRAM cache slot (the block-granular cache line). *)

val cache_bytes : t -> int
(** Total slot capacity ([num_slots * slot_bytes]) — the configured
    cache budget the observability layer's miss-ratio curve is
    evaluated against. *)

val cached_block_at : t -> int -> int option
(** Translate a pc inside an SRAM cache slot back to the NVM address
    of the cached block's corresponding word, if the slot currently
    holds a block — the observability layer's dynamic symbolizer.
    Pure host-side inspection: no counted accesses, no perturbation. *)

val reboot : t -> image:Masm.Assembler.t -> unit
(** Power-loss recovery, mirroring [Swapram.Runtime.reboot]: restore
    the FRAM hash table and CFI id word to their post-link values and
    reset the volatile slot cursor; the SRAM slots themselves are
    gone with the power. Restore writes are counted, so an armed
    power trigger can tear the reboot itself; rerunning recovers. *)

val critical_windows :
  t -> image:Masm.Assembler.t -> (string * int * int) list
(** Named [(lo, hi)] FRAM address windows whose accesses belong to the
    caching runtime (handler region, memcpy region, hash table, CFI
    word) — the adversarial fault-injection targets. *)

val install :
  options:Config.options ->
  manifest:Transform.manifest ->
  image:Masm.Assembler.t ->
  Msp430.Platform.system ->
  t
