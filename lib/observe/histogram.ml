(* Fixed-range bucketed counter for address-space access histograms.
   The range is divided into [buckets] equal-width bins; adds outside
   [lo, hi) are ignored (peripheral and unmapped addresses simply do
   not belong to the rendered address space). *)

type t = {
  lo : int;
  hi : int;
  counts : int array;
  mutable total : int;
  mutable clipped : int;
}

let create ~lo ~hi ~buckets =
  if hi <= lo then invalid_arg "Histogram.create: empty range";
  if buckets <= 0 then invalid_arg "Histogram.create: no buckets";
  { lo; hi; counts = Array.make buckets 0; total = 0; clipped = 0 }

let bucket_of t addr =
  if addr < t.lo || addr >= t.hi then None
  else
    let span = t.hi - t.lo in
    let b = (addr - t.lo) * Array.length t.counts / span in
    (* Guard the exact-upper-edge rounding case. *)
    Some (min b (Array.length t.counts - 1))

let add ?(weight = 1) t addr =
  match bucket_of t addr with
  | Some b ->
      t.counts.(b) <- t.counts.(b) + weight;
      t.total <- t.total + weight
  | None -> t.clipped <- t.clipped + weight

let counts t = Array.copy t.counts
let total t = t.total
let clipped t = t.clipped
let lo t = t.lo
let hi t = t.hi
let buckets t = Array.length t.counts

let bucket_bytes t =
  (* Width of one bucket, rounded up so [buckets * bucket_bytes]
     covers the range. *)
  let span = t.hi - t.lo in
  (span + Array.length t.counts - 1) / Array.length t.counts

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.total <- 0;
  t.clipped <- 0
