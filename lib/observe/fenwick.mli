(** Fenwick (binary-indexed) partial-sum tree over 1-based integer
    slots: point update and prefix sum in O(log n).

    This is the tree behind every byte-weighted stack-distance
    computation in the repo: {!Reuse} (the live Mattson miss-ratio
    tracker) and [Replay.Engine.simulate_all_budgets] (the single-pass
    all-budget LRU kernel) both maintain an LRU recency stack as
    time-ordered slots whose values are resident-unit byte sizes, so
    "bytes touched since this unit's last access" is one suffix sum:
    [total t - prefix t (slot - 1)]. *)

type t

val create : int -> t
(** [create n] is a zero tree over slots [1..n]. *)

val capacity : t -> int

val add : t -> int -> int -> unit
(** [add t i delta] adds [delta] at slot [i] (1-based). *)

val prefix : t -> int -> int
(** [prefix t i] is the sum over slots [1..i]; [prefix t 0 = 0]. *)

val total : t -> int
(** Sum over every slot; O(1). *)

val suffix : t -> int -> int
(** [suffix t i] is the sum over slots [i..n] — the byte-weighted
    stack distance of the unit occupying slot [i] when slots are
    recency-ordered. *)

val clear : t -> unit
(** Reset every slot to zero (O(n)). *)
