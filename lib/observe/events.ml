(* Bounded cycle-stamped event recorder.

   Keeps the most recent [capacity] interesting events in a ring,
   each stamped with the trace's total cycle count at emission time.
   By default only the high-level narrative is kept (calls, returns,
   runtime events) — per-access events would swamp the ring and are
   already summarized by the profiler — but [keep_all] records
   everything for fine-grained debugging of short windows. *)

type stamped = { at : int; ev : Msp430.Trace.event }

type t = {
  stats : Msp430.Trace.t;
  buf : stamped option array;
  mutable next : int; (* next write position *)
  mutable recorded : int; (* total events recorded (may exceed capacity) *)
  keep_all : bool;
}

let create ?(keep_all = false) ~capacity stats =
  {
    stats;
    buf = Array.make (max 1 capacity) None;
    next = 0;
    recorded = 0;
    keep_all;
  }

let interesting (ev : Msp430.Trace.event) =
  match ev with
  | Msp430.Trace.Call _ | Msp430.Trace.Return | Msp430.Trace.Runtime_event _ ->
      true
  | Msp430.Trace.Instr _ | Msp430.Trace.Cycles _ | Msp430.Trace.Mem_access _ ->
      false

let observer t (ev : Msp430.Trace.event) =
  if t.keep_all || interesting ev then begin
    t.buf.(t.next) <- Some { at = Msp430.Trace.total_cycles t.stats; ev };
    t.next <- (t.next + 1) mod Array.length t.buf;
    t.recorded <- t.recorded + 1
  end

let recorded t = t.recorded
let dropped t = max 0 (t.recorded - Array.length t.buf)

let to_list t =
  (* oldest-first: ring contents starting at [next] *)
  let n = Array.length t.buf in
  let rec collect i acc =
    if i = n then List.rev acc
    else
      let slot = t.buf.((t.next + i) mod n) in
      collect (i + 1) (match slot with Some s -> s :: acc | None -> acc)
  in
  collect 0 []
