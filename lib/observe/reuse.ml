(* Exact byte-weighted LRU reuse-distance tracker.

   Maintains the LRU stack of cache units (functions for SwapRAM,
   fixed-size lines for the baseline and the block cache) as
   recency-ordered slots over a {!Fenwick} partial-sum tree of unit
   byte sizes — the same tree the replay engine's single-pass
   all-budget kernel uses. Each access computes its byte-weighted
   stack distance: the total bytes of distinct units touched since the
   previous access to this unit, *including the unit itself* — i.e.
   the smallest LRU cache capacity at which this access would hit. A
   histogram of distances then yields the exact miss count for any
   hypothetical budget in one pass (Mattson's stack algorithm):
   misses(B) = cold + #\{distances > B\}.

   The common case — repeated access to the MRU unit, e.g. straight-
   line ifetch within one cache line — short-circuits without touching
   the tree, so cost is paid only on unit transitions: O(log units)
   each, where the old list walk was O(units). A unit transition
   vacates the unit's old slot and claims the next higher one; when
   slots run out the stack is compacted in place (or the arrays grown
   if mostly live), so space stays proportional to distinct units, not
   to transitions. *)

type t = {
  mutable fen : Fenwick.t; (* slot -> bytes of the unit living there *)
  mutable unit_at : int array; (* slot -> unit id, -1 when vacated *)
  mutable size_at : int array; (* slot -> that unit's stacked bytes *)
  slot_of : (int, int) Hashtbl.t; (* unit -> its live slot *)
  mutable next : int; (* next unclaimed slot; slot order = recency *)
  mutable top : int; (* MRU unit id; min_int when empty *)
  mutable depth_bytes : int; (* total bytes of distinct units seen *)
  dist_hist : (int, int ref) Hashtbl.t; (* stack distance -> count *)
  mutable cold : int; (* first-touch accesses: miss at any budget *)
  mutable accesses : int;
  mutable measured_misses : int;
}

let initial_slots = 1024

let create () =
  {
    fen = Fenwick.create initial_slots;
    unit_at = Array.make (initial_slots + 1) (-1);
    size_at = Array.make (initial_slots + 1) 0;
    slot_of = Hashtbl.create 64;
    next = 1;
    top = min_int;
    depth_bytes = 0;
    dist_hist = Hashtbl.create 64;
    cold = 0;
    accesses = 0;
    measured_misses = 0;
  }

let record_distance t d =
  match Hashtbl.find_opt t.dist_hist d with
  | Some r -> incr r
  | None -> Hashtbl.replace t.dist_hist d (ref 1)

(* Renumber the live units into slots [1..live] (recency order
   preserved: ascending slot = ascending recency), growing the arrays
   only when more than half the slots are live. Amortized O(1) per
   transition: a compaction costs O(capacity) and frees at least half
   of it. *)
let compact t =
  let cap = Fenwick.capacity t.fen in
  let live = Hashtbl.length t.slot_of in
  let cap' = if 2 * live > cap then 2 * cap else cap in
  let unit_at' = Array.make (cap' + 1) (-1) in
  let size_at' = Array.make (cap' + 1) 0 in
  let fen' = Fenwick.create cap' in
  let j = ref 0 in
  for s = 1 to t.next - 1 do
    let u = t.unit_at.(s) in
    if u >= 0 then begin
      incr j;
      unit_at'.(!j) <- u;
      size_at'.(!j) <- t.size_at.(s);
      Fenwick.add fen' !j t.size_at.(s);
      Hashtbl.replace t.slot_of u !j
    end
  done;
  t.fen <- fen';
  t.unit_at <- unit_at';
  t.size_at <- size_at';
  t.next <- !j + 1

let push t unit_id bytes =
  if t.next > Fenwick.capacity t.fen then compact t;
  let s = t.next in
  t.next <- s + 1;
  t.unit_at.(s) <- unit_id;
  t.size_at.(s) <- bytes;
  Fenwick.add t.fen s bytes;
  Hashtbl.replace t.slot_of unit_id s;
  t.top <- unit_id

let access t ~unit_id ~bytes =
  t.accesses <- t.accesses + 1;
  if t.top = unit_id then
    (* MRU re-reference: distance is the unit's own stacked size (its
       slot is left untouched). *)
    record_distance t (max t.size_at.(Hashtbl.find t.slot_of unit_id) bytes)
  else
    match Hashtbl.find_opt t.slot_of unit_id with
    | Some s ->
        (* Bytes of distinct units at or above this one on the stack:
           one suffix sum instead of an MRU-to-LRU walk. *)
        record_distance t (Fenwick.suffix t.fen s);
        Fenwick.add t.fen s (-t.size_at.(s));
        t.unit_at.(s) <- -1;
        push t unit_id bytes
    | None ->
        t.cold <- t.cold + 1;
        t.depth_bytes <- t.depth_bytes + bytes;
        push t unit_id bytes

let note_measured_miss t = t.measured_misses <- t.measured_misses + 1
let accesses t = t.accesses
let units t = Hashtbl.length t.slot_of
let footprint t = t.depth_bytes
let cold_misses t = t.cold
let measured_misses t = t.measured_misses

let predicted_misses t ~budget =
  Hashtbl.fold
    (fun d r acc -> if d > budget then acc + !r else acc)
    t.dist_hist t.cold

let rate t misses =
  if t.accesses = 0 then 0.0
  else float_of_int misses /. float_of_int t.accesses

let predicted_miss_rate t ~budget = rate t (predicted_misses t ~budget)
let measured_miss_rate t = rate t t.measured_misses

let curve t ~budgets =
  List.map (fun b -> (b, predicted_miss_rate t ~budget:b)) budgets
