(* Exact byte-weighted LRU reuse-distance tracker.

   Maintains the LRU stack of cache units (functions for SwapRAM,
   fixed-size lines for the baseline and the block cache) as an
   MRU-first list of (unit_id, bytes). Each access computes its
   byte-weighted stack distance: the total bytes of distinct units
   touched since the previous access to this unit, *including the
   unit itself* — i.e. the smallest LRU cache capacity at which this
   access would hit. A histogram of distances then yields the exact
   miss count for any hypothetical budget in one pass (Mattson's
   stack algorithm): misses(B) = cold + #\{distances > B\}.

   The common case — repeated access to the MRU unit, e.g. straight-
   line ifetch within one cache line — short-circuits without walking
   the stack, so cost is paid only on unit transitions, bounded by the
   footprint in distinct units. *)

type t = {
  mutable stack : (int * int) list; (* MRU-first: unit_id, bytes *)
  mutable depth_bytes : int; (* total bytes currently on the stack *)
  dist_hist : (int, int ref) Hashtbl.t; (* stack distance -> count *)
  mutable cold : int; (* first-touch accesses: miss at any budget *)
  mutable accesses : int;
  mutable measured_misses : int;
}

let create () =
  {
    stack = [];
    depth_bytes = 0;
    dist_hist = Hashtbl.create 64;
    cold = 0;
    accesses = 0;
    measured_misses = 0;
  }

let record_distance t d =
  match Hashtbl.find_opt t.dist_hist d with
  | Some r -> incr r
  | None -> Hashtbl.replace t.dist_hist d (ref 1)

let access t ~unit_id ~bytes =
  t.accesses <- t.accesses + 1;
  match t.stack with
  | (u, b) :: _ when u = unit_id ->
      (* MRU re-reference: distance is the unit's own size. *)
      record_distance t (max b bytes)
  | stack ->
      (* Walk MRU-to-LRU accumulating bytes until we find the unit. *)
      let rec split acc_bytes acc_rev = function
        | [] -> None
        | (u, b) :: rest when u = unit_id ->
            Some (acc_bytes + b, List.rev_append acc_rev rest)
        | (_, b) as e :: rest -> split (acc_bytes + b) (e :: acc_rev) rest
      in
      (match split 0 [] stack with
      | Some (dist, rest) ->
          record_distance t dist;
          t.stack <- (unit_id, bytes) :: rest
      | None ->
          t.cold <- t.cold + 1;
          t.depth_bytes <- t.depth_bytes + bytes;
          t.stack <- (unit_id, bytes) :: stack)

let note_measured_miss t = t.measured_misses <- t.measured_misses + 1
let accesses t = t.accesses
let units t = List.length t.stack
let footprint t = t.depth_bytes
let cold_misses t = t.cold
let measured_misses t = t.measured_misses

let predicted_misses t ~budget =
  Hashtbl.fold
    (fun d r acc -> if d > budget then acc + !r else acc)
    t.dist_hist t.cold

let rate t misses =
  if t.accesses = 0 then 0.0
  else float_of_int misses /. float_of_int t.accesses

let predicted_miss_rate t ~budget = rate t (predicted_misses t ~budget)
let measured_miss_rate t = rate t t.measured_misses

let curve t ~budgets =
  List.map (fun b -> (b, predicted_miss_rate t ~budget:b)) budgets
