(* Symbolization for the profiling layer.

   Static symbols come from the link map: every assembler item
   (function, runtime region, table) claims its [addr, addr+size)
   range, and a binary search maps a pc to the item containing it.

   Caching runtimes complicate this: under SwapRAM the hot copy of a
   function executes from a moving SRAM cache address, and under the
   block cache a pc lands inside an anonymous fixed-size slot. Dynamic
   resolvers registered by the harness translate those pc values back
   to stable names (the cached function, or the NVM home of the cached
   block) using host-side runtime state only — symbolization never
   issues counted simulated-memory accesses. *)

type range = { lo : int; hi : int; name : string }

type t = {
  ranges : range array; (* sorted by lo, disjoint *)
  mutable resolvers : (int -> string option) list;
}

let of_image (image : Masm.Assembler.t) =
  let items =
    List.filter_map
      (fun (it : Masm.Assembler.item_info) ->
        if it.Masm.Assembler.info_size <= 0 then None
        else
          Some
            {
              lo = it.Masm.Assembler.info_addr;
              hi = it.Masm.Assembler.info_addr + it.Masm.Assembler.info_size;
              name = it.Masm.Assembler.info_name;
            })
      image.Masm.Assembler.items
  in
  let ranges = Array.of_list items in
  Array.sort (fun a b -> compare a.lo b.lo) ranges;
  { ranges; resolvers = [] }

let add_resolver t f = t.resolvers <- t.resolvers @ [ f ]

let static_name_of t addr =
  let ranges = t.ranges in
  let rec search lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let r = ranges.(mid) in
      if addr < r.lo then search lo mid
      else if addr >= r.hi then search (mid + 1) hi
      else Some r.name
  in
  search 0 (Array.length ranges)

let name_of t addr =
  let rec try_resolvers = function
    | [] -> None
    | f :: rest -> ( match f addr with Some _ as s -> s | None -> try_resolvers rest)
  in
  match try_resolvers t.resolvers with
  | Some name -> name
  | None -> (
      match static_name_of t addr with
      | Some name -> name
      | None ->
          if addr >= 0xFF00 then Printf.sprintf "trap:0x%04X" addr
          else Printf.sprintf "0x%04X" addr)
