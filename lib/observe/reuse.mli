(** Exact byte-weighted LRU reuse-distance tracker (Mattson's stack
    algorithm). Feed the stream of cache-unit accesses; read back the
    exact miss count a fully-associative byte-LRU cache of any
    hypothetical capacity would incur — the miss-ratio curve. Units
    are functions for SwapRAM (its real cache granule) and fixed-size
    lines for the baseline and block-cache runtimes. *)

type t

val create : unit -> t

val access : t -> unit_id:int -> bytes:int -> unit
(** One reference to cache unit [unit_id] of size [bytes]. The stack
    distance charged is the byte sum of distinct units touched since
    the last reference to this unit, including its own size (= the
    smallest capacity at which this reference hits). First touches
    count as cold misses at every budget. MRU re-references
    short-circuit, so the walk cost is paid only on unit
    transitions. *)

val note_measured_miss : t -> unit
(** Record one miss actually observed from the running runtime, for
    the predicted-vs-measured cross-check. *)

val accesses : t -> int
val units : t -> int
(** Distinct units seen. *)

val footprint : t -> int
(** Total bytes across distinct units seen. *)

val cold_misses : t -> int
val measured_misses : t -> int

val predicted_misses : t -> budget:int -> int
(** Exact misses of a byte-LRU cache with capacity [budget] over the
    observed access stream. *)

val predicted_miss_rate : t -> budget:int -> float
val measured_miss_rate : t -> float

val curve : t -> budgets:int list -> (int * float) list
(** [(budget, predicted miss rate)] per requested budget. *)
