(** Minimal dependency-free JSON emitter for the observability
    exporters (Chrome trace JSON, [bench/report.json]). Emission only;
    nothing in the repo parses JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. *)

val to_string_pretty : t -> string
(** Two-space-indented rendering with a trailing newline, for
    human-diffable artifacts. NaN / infinities render as [null]. *)
