(** Minimal dependency-free JSON emitter and parser for the
    observability exporters (Chrome trace JSON, [bench/report.json])
    and the perf-regression gate, which reads reports back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. Strings are escaped byte-wise:
    control characters, DEL and all bytes >= 0x80 become [\uXXXX]
    escapes, so output is valid JSON for arbitrary (even non-UTF-8)
    input bytes. *)

val to_string_pretty : t -> string
(** Two-space-indented rendering with a trailing newline, for
    human-diffable artifacts. NaN / infinities render as [null]. *)

val parse : string -> (t, string) result
(** Parse standard JSON. Numbers without a fraction or exponent parse
    as [Int] (degrading to [Float] only on 63-bit overflow); [\uXXXX]
    escapes below U+0100 decode to the single byte (the inverse of the
    emitter's byte-wise escaping), higher code points to UTF-8. *)

(** {2 Accessors} — shallow helpers for the report reader. *)

val member : string -> t -> t option
(** [member k (Obj kvs)] is the value bound to [k], if any; [None] on
    non-objects. *)

val to_int : t -> int option
(** [Int], or an integral [Float]. *)

val to_float : t -> float option
(** [Float], or any [Int] widened. *)

val to_str : t -> string option
val to_list : t -> t list option
