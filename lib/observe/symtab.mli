(** Pc-to-name symbolization against the link map, with dynamic
    resolvers for pc values inside runtime-managed SRAM cache copies.
    Symbolization is pure host-side inspection: it never issues
    counted simulated-memory accesses, so an attached profiler cannot
    perturb the run it is measuring. *)

type t

val of_image : Masm.Assembler.t -> t
(** Build the static table from the assembled image's item ranges. *)

val add_resolver : t -> (int -> string option) -> unit
(** Register a dynamic resolver, consulted (in registration order)
    before the static table. The harness registers one per installed
    caching runtime: SwapRAM cache copies resolve to the cached
    function's name, block-cache slots to their NVM home symbol. *)

val static_name_of : t -> int -> string option
(** Look up only the link map (used by resolvers to finish an
    address translation). *)

val name_of : t -> int -> string
(** Resolvers first, then the static table; unknown addresses render
    as [0x%04X] (or [trap:0x%04X] in the trap-vector page). *)
