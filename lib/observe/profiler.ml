(* Cycle-attributed profiler.

   Consumes the Trace event stream and attributes every counted cycle
   and memory access to the function whose instruction caused it. The
   attribution context is set by each [Instr] event (symbolized
   through {!Symtab}); all [Cycles] and [Mem_access] events until the
   next [Instr] charge that function's counters.

   Because every counter increment in the simulator is mirrored as an
   event *after* the aggregate counter was bumped, the per-function
   sums reconcile with the aggregate {!Msp430.Trace} totals exactly —
   not approximately. The property tests assert this, and it is what
   makes per-function energy attribution sound: the energy model is
   linear in the counters, so slice energies sum to the whole-run
   report.

   A shadow call stack (pushed by [Call] events, popped by [Return])
   keys the caller-aggregated folded-stack output consumed by flame
   graph tooling. *)

type counters = {
  mutable instrs : int;
  mutable unstalled : int;
  mutable stall : int;
  mutable fram_read_hits : int;
  mutable fram_read_misses : int;
  mutable fram_writes : int;
  mutable sram_accesses : int;
}

let fresh_counters () =
  {
    instrs = 0;
    unstalled = 0;
    stall = 0;
    fram_read_hits = 0;
    fram_read_misses = 0;
    fram_writes = 0;
    sram_accesses = 0;
  }

let add_into acc c =
  acc.instrs <- acc.instrs + c.instrs;
  acc.unstalled <- acc.unstalled + c.unstalled;
  acc.stall <- acc.stall + c.stall;
  acc.fram_read_hits <- acc.fram_read_hits + c.fram_read_hits;
  acc.fram_read_misses <- acc.fram_read_misses + c.fram_read_misses;
  acc.fram_writes <- acc.fram_writes + c.fram_writes;
  acc.sram_accesses <- acc.sram_accesses + c.sram_accesses

type rt_stats = {
  mutable miss_entries : int;
  mutable evictions : int;
  mutable freezes : int;
  mutable flushes : int;
  mutable block_loads : int;
  mutable prefetches : int;
}

type t = {
  symtab : Symtab.t;
  funcs : (string, counters) Hashtbl.t;
  by_source : counters array; (* indexed by Trace.source_index *)
  folded : (string, int ref) Hashtbl.t; (* "a;b;c" -> cycles *)
  mutable stack : string list; (* shadow call stack, callers only *)
  mutable stack_key : string; (* stack joined with ';', "" if empty *)
  mutable depth : int;
  max_depth : int;
  mutable cur : counters;
  mutable cur_name : string;
  mutable cur_source : int;
  mutable cur_folded : int ref;
  mutable folded_dirty : bool; (* stack moved since cur_folded was set *)
  mutable calls : int;
  mutable returns : int;
  name_calls : (string, int ref) Hashtbl.t;
      (* dynamic calls by symbolized target — calls that trap into a
         miss handler count under the trap's name, not the callee's *)
  fid_misses : (int, int ref) Hashtbl.t;
      (* swapram miss-handler exits by fid (any disposition) *)
  rt : rt_stats;
}

let boot_name = "_boot"

let create symtab =
  let funcs = Hashtbl.create 64 in
  (* Attribution target before the first Instr event: cycles charged
     by harness bootstrapping, if any. *)
  let boot = fresh_counters () in
  Hashtbl.replace funcs boot_name boot;
  let folded = Hashtbl.create 256 in
  let boot_slot = ref 0 in
  Hashtbl.replace folded boot_name boot_slot;
  {
    symtab;
    funcs;
    by_source = Array.init Msp430.Trace.source_count (fun _ -> fresh_counters ());
    folded;
    stack = [];
    stack_key = "";
    depth = 0;
    max_depth = 128;
    cur = boot;
    cur_name = boot_name;
    cur_source = 0;
    cur_folded = boot_slot;
    folded_dirty = false;
    calls = 0;
    returns = 0;
    name_calls = Hashtbl.create 64;
    fid_misses = Hashtbl.create 64;
    rt =
      {
        miss_entries = 0;
        evictions = 0;
        freezes = 0;
        flushes = 0;
        block_loads = 0;
        prefetches = 0;
      };
  }

let counters_for t name =
  match Hashtbl.find_opt t.funcs name with
  | Some c -> c
  | None ->
      let c = fresh_counters () in
      Hashtbl.replace t.funcs name c;
      c

let folded_slot t key =
  match Hashtbl.find_opt t.folded key with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace t.folded key r;
      r

let set_context t name =
  if name <> t.cur_name || t.folded_dirty then begin
    if name <> t.cur_name then begin
      t.cur <- counters_for t name;
      t.cur_name <- name
    end;
    t.cur_folded <-
      folded_slot t
        (if t.stack_key = "" then name else t.stack_key ^ ";" ^ name);
    t.folded_dirty <- false
  end

let observer t (ev : Msp430.Trace.event) =
  match ev with
  | Msp430.Trace.Instr { pc; source } ->
      t.cur_source <- Msp430.Trace.source_index source;
      let name = Symtab.name_of t.symtab pc in
      set_context t name;
      t.cur.instrs <- t.cur.instrs + 1;
      t.by_source.(t.cur_source).instrs <- t.by_source.(t.cur_source).instrs + 1
  | Msp430.Trace.Cycles { unstalled; stall } ->
      t.cur.unstalled <- t.cur.unstalled + unstalled;
      t.cur.stall <- t.cur.stall + stall;
      let s = t.by_source.(t.cur_source) in
      s.unstalled <- s.unstalled + unstalled;
      s.stall <- s.stall + stall;
      t.cur_folded := !(t.cur_folded) + unstalled + stall
  | Msp430.Trace.Mem_access { addr = _; cls } -> (
      let s = t.by_source.(t.cur_source) in
      match cls with
      | Msp430.Trace.Fram_read { hit = true; _ } ->
          t.cur.fram_read_hits <- t.cur.fram_read_hits + 1;
          s.fram_read_hits <- s.fram_read_hits + 1
      | Msp430.Trace.Fram_read { hit = false; _ } ->
          t.cur.fram_read_misses <- t.cur.fram_read_misses + 1;
          s.fram_read_misses <- s.fram_read_misses + 1
      | Msp430.Trace.Fram_write ->
          t.cur.fram_writes <- t.cur.fram_writes + 1;
          s.fram_writes <- s.fram_writes + 1
      | Msp430.Trace.Sram_read _ | Msp430.Trace.Sram_write ->
          t.cur.sram_accesses <- t.cur.sram_accesses + 1;
          s.sram_accesses <- s.sram_accesses + 1
      | Msp430.Trace.Periph_access -> ())
  | Msp430.Trace.Call { target } ->
      t.calls <- t.calls + 1;
      (let name = Symtab.name_of t.symtab target in
       match Hashtbl.find_opt t.name_calls name with
       | Some r -> incr r
       | None -> Hashtbl.replace t.name_calls name (ref 1));
      if t.depth < t.max_depth then begin
        t.stack <- t.cur_name :: t.stack;
        t.depth <- t.depth + 1;
        t.stack_key <-
          (if t.stack_key = "" then t.cur_name
           else t.stack_key ^ ";" ^ t.cur_name);
        (* cur_folded stays: the call instruction's remaining charges
           still belong to the caller at its pre-call stack. The
           callee's first Instr refreshes it. *)
        t.folded_dirty <- true
      end
  | Msp430.Trace.Return -> (
      t.returns <- t.returns + 1;
      match t.stack with
      | [] -> () (* a return below the observation start; ignore *)
      | _ :: rest ->
          t.stack <- rest;
          t.depth <- t.depth - 1;
          t.stack_key <- String.concat ";" (List.rev rest);
          t.folded_dirty <- true)
  | Msp430.Trace.Runtime_event rev -> (
      match rev with
      | Msp430.Trace.Miss_enter _ -> t.rt.miss_entries <- t.rt.miss_entries + 1
      | Msp430.Trace.Miss_exit { fid; _ } -> (
          match Hashtbl.find_opt t.fid_misses fid with
          | Some r -> incr r
          | None -> Hashtbl.replace t.fid_misses fid (ref 1))
      | Msp430.Trace.Eviction _ -> t.rt.evictions <- t.rt.evictions + 1
      | Msp430.Trace.Freeze { on = true } -> t.rt.freezes <- t.rt.freezes + 1
      | Msp430.Trace.Freeze { on = false } -> ()
      | Msp430.Trace.Cache_flush -> t.rt.flushes <- t.rt.flushes + 1
      | Msp430.Trace.Block_load _ -> t.rt.block_loads <- t.rt.block_loads + 1
      | Msp430.Trace.Prefetch _ -> t.rt.prefetches <- t.rt.prefetches + 1
      | Msp430.Trace.Phase _ -> ())

(* --- Reports ----------------------------------------------------------- *)

let totals t =
  let acc = fresh_counters () in
  Hashtbl.iter (fun _ c -> add_into acc c) t.funcs;
  acc

let cycles_of c = c.unstalled + c.stall

type row = { name : string; c : counters; energy_nj : float }

let energy_of params (c : counters) =
  (Msp430.Energy.evaluate_counts params ~cycles:(cycles_of c)
     ~fram_read_misses:c.fram_read_misses ~fram_read_hits:c.fram_read_hits
     ~fram_writes:c.fram_writes ~sram_accesses:c.sram_accesses)
    .Msp430.Energy.energy_nj

let rows ~params t =
  Hashtbl.fold
    (fun name c acc ->
      if c.instrs = 0 && cycles_of c = 0 then acc
      else { name; c; energy_nj = energy_of params c } :: acc)
    t.funcs []
  |> List.sort (fun a b ->
         match compare (cycles_of b.c) (cycles_of a.c) with
         | 0 -> compare a.name b.name
         | n -> n)

let source_share t source =
  let idx = Msp430.Trace.source_index source in
  let total =
    Array.fold_left (fun acc c -> acc + cycles_of c) 0 t.by_source
  in
  if total = 0 then 0.0
  else float_of_int (cycles_of t.by_source.(idx)) /. float_of_int total

let source_cycles t source =
  cycles_of t.by_source.(Msp430.Trace.source_index source)

let render ?(top = 0) ~params t =
  let rows = rows ~params t in
  let rows = if top > 0 then List.filteri (fun i _ -> i < top) rows else rows in
  let tot = totals t in
  let total_cycles = max 1 (cycles_of tot) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-24s %10s %6s %10s %9s %9s %8s %10s\n" "function"
       "cycles" "cyc%" "instrs" "fram-rd" "fram-wr" "sram" "energy-nJ");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-24s %10d %5.1f%% %10d %9d %9d %8d %10.1f\n" r.name
           (cycles_of r.c)
           (100.0 *. float_of_int (cycles_of r.c) /. float_of_int total_cycles)
           r.c.instrs
           (r.c.fram_read_hits + r.c.fram_read_misses)
           r.c.fram_writes r.c.sram_accesses r.energy_nj))
    rows;
  Buffer.add_string buf
    (Printf.sprintf "%-24s %10d %5.1f%% %10d %9d %9d %8d %10.1f\n" "TOTAL"
       (cycles_of tot) 100.0 tot.instrs
       (tot.fram_read_hits + tot.fram_read_misses)
       tot.fram_writes tot.sram_accesses (energy_of params tot));
  Buffer.contents buf

let folded_lines t =
  Hashtbl.fold
    (fun key slot acc ->
      if !slot = 0 then acc else Printf.sprintf "%s %d" key !slot :: acc)
    t.folded []
  |> List.sort compare

let folded_total t =
  Hashtbl.fold (fun _ slot acc -> acc + !slot) t.folded 0

let call_count t = t.calls
let return_count t = t.returns
let runtime_stats t = t.rt

let calls_to t name =
  match Hashtbl.find_opt t.name_calls name with Some r -> !r | None -> 0

let miss_exits_of t fid =
  match Hashtbl.find_opt t.fid_misses fid with Some r -> !r | None -> 0

let counters_of t name = Hashtbl.find_opt t.funcs name
