(** Bounded cycle-stamped event recorder: a ring of the most recent
    high-level events (calls, returns, runtime events), each stamped
    with {!Msp430.Trace.total_cycles} at emission. Input for the
    Chrome trace exporter ({!Chrome}). *)

type stamped = { at : int; ev : Msp430.Trace.event }

type t

val create : ?keep_all:bool -> capacity:int -> Msp430.Trace.t -> t
(** [keep_all] also records per-instruction and per-access events —
    useful for short debugging windows, ruinous for whole runs. *)

val observer : t -> Msp430.Trace.event -> unit
val to_list : t -> stamped list
(** Retained events, oldest first. *)

val recorded : t -> int
(** Total matching events seen (including any that fell off the ring). *)

val dropped : t -> int
