(** Windowed time-series cache-dynamics sampler over the
    {!Msp430.Trace} event stream.

    Splits a run into fixed cycle-count windows, each accumulating
    execution counters, runtime cache events, reconstructed cache
    occupancy, and FRAM/SRAM address-access histograms. Windows close
    only on [Cycles] event boundaries, so per-window counters
    partition the run {e exactly}: summed over all windows they equal
    the aggregate trace totals, and (the energy model being linear)
    per-window energies sum to the whole-run energy report.

    Optionally an exact byte-weighted LRU reuse-distance tracker
    ({!Reuse}) rides the same stream and yields the miss-ratio curve:
    predicted miss rate vs. hypothetical SRAM cache budget, with a
    measured-rate cross-check at the configured budget. *)

(** What the reuse tracker treats as a cache unit. [Functions] is for
    SwapRAM (whole functions, its real cache granule, sized through
    {!hooks.h_fid_size}); [Lines n] tracks [n]-byte-aligned lines of
    ifetch addresses normalized to their NVM home — use the block
    cache's slot size, or a nominal line for the uncached baseline. *)
type reuse_mode = No_reuse | Functions | Lines of int

(** Runtime-specific resolvers, supplied by the harness. *)
type hooks = {
  h_fid_size : int -> int;
      (** code bytes of function [fid]; occupancy and
          function-granular reuse weights *)
  h_call_unit : int -> int option;
      (** resolved call target -> fid of the cached function when the
          target lies inside the cache region (i.e. the call hit) *)
  h_ifetch_home : int -> int;
      (** ifetch address -> NVM home address (identity outside cache
          regions) *)
}

val null_hooks : hooks
(** No cache attached: size 0, no call resolution, identity homes. *)

type spec = {
  window_cycles : int;  (** window length in total (CPU+stall) cycles *)
  buckets : int;  (** address-histogram buckets per region *)
  reuse : reuse_mode;
  config_budget : int;
      (** the runtime's configured cache capacity in bytes (0 = none);
          anchors the predicted-vs-measured MRC cross-check *)
}

val default_spec : spec
(** 65536-cycle windows, 48 buckets, no reuse tracking, no budget. *)

(** One closed (or in-progress) window. All counters cover only
    events inside the window. *)
type window = {
  w_start : int;  (** total cycle count when the window opened *)
  mutable w_unstalled : int;
  mutable w_stall : int;
  mutable w_instrs : int;
  mutable w_fram_read_hits : int;
  mutable w_fram_read_misses : int;
  mutable w_fram_writes : int;
  mutable w_sram_accesses : int;
  mutable w_periph : int;
  mutable w_calls : int;
  mutable w_returns : int;
  mutable w_unit_hits : int;
      (** calls whose resolved target was already cached *)
  mutable w_miss_entries : int;
  mutable w_exits_cached : int;
  mutable w_exits_nvm : int;
      (** miss exits that ran from NVM: "nvm", "frozen", "too-large" *)
  mutable w_evictions : int;
  mutable w_freezes : int;  (** freeze on-transitions *)
  mutable w_flushes : int;
  mutable w_block_loads : int;
  mutable w_prefetches : int;
  mutable w_occupancy : int;  (** cached bytes at window close *)
  w_fram_hist : Histogram.t;
  w_sram_hist : Histogram.t;
}

type t

val create :
  spec ->
  params:Msp430.Energy.params ->
  fram:int * int ->
  sram:int * int ->
  hooks ->
  t
(** [create spec ~params ~fram:(lo, hi) ~sram:(lo, hi) hooks]. The
    address ranges bound the histograms. *)

val observer : t -> Msp430.Trace.event -> unit
(** Feed one event; install via {!Msp430.Trace.set_observer} or the
    harness fan-out. *)

val windows : t -> window list
(** Closed windows in run order, plus the in-progress window if it
    has recorded anything. *)

val window_cycles : window -> int
val window_misses : window -> int
(** Cache misses attributable to this window: cached + NVM miss exits
    (SwapRAM) plus block loads (block cache). *)

val window_miss_rate : window -> float
(** [misses / (unit hits + misses)], 0 when no references. *)

val occupancy : t -> int
(** Current reconstructed cache occupancy in bytes. *)

val spec : t -> spec
val reuse_tracker : t -> Reuse.t option

(** Energy of one window in nJ, split by what drew it; the split
    components sum to [e_total] (linear model). *)
type energy_split = {
  e_total : float;
  e_cpu : float;
  e_fram_read : float;
  e_fram_write : float;
  e_sram : float;
}

val window_energy : t -> window -> energy_split

val default_budgets : int list
(** Budget grid for miss-ratio curves, 256 B .. 8 KiB. *)

(** {2 Renderers} *)

val render_series : t -> string
(** Human-readable per-window table. *)

val render_csv : t -> string
(** Machine-readable CSV, one row per window, header included. *)

val render_heatmaps : ?max_rows:int -> t -> string
(** FRAM and SRAM address-space heatmaps, one row per window (merged
    down to [max_rows], default 24). *)

val render_mrc : ?budgets:int list -> t -> string
(** Miss-ratio curve table with bar chart, plus the
    predicted-vs-measured cross-check at the configured budget. *)
