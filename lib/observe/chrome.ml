(* Chrome trace-event exporter (chrome://tracing, Perfetto).

   Renders the recorded event stream as a JSON object with a
   [traceEvents] array. Timestamps are in simulated cycles, written
   into the [ts] microsecond field directly — with the displayed unit
   reinterpreted as cycles, durations and ordering are exact, which is
   what matters for inspecting miss-handler activity.

   Mapping:
   - [Call]/[Return]          -> B/E duration pairs named after the callee
   - [Miss_enter]/[Miss_exit] -> B/E pairs on a separate "runtime" track
   - evictions, freeze transitions, flushes, block loads, phases
                              -> instant events ("i") *)

let dur_begin ?(pid = 1) ~ts ~tid name args =
  Json.Obj
    ([
       ("name", Json.String name);
       ("ph", Json.String "B");
       ("ts", Json.Int ts);
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
     ]
    @ if args = [] then [] else [ ("args", Json.Obj args) ])

let dur_end ?(pid = 1) ~ts ~tid args =
  Json.Obj
    ([
       ("ph", Json.String "E");
       ("ts", Json.Int ts);
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
     ]
    @ if args = [] then [] else [ ("args", Json.Obj args) ])

let instant ?(pid = 1) ~ts ~tid name args =
  Json.Obj
    ([
       ("name", Json.String name);
       ("ph", Json.String "i");
       ("s", Json.String "t");
       ("ts", Json.Int ts);
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
     ]
    @ if args = [] then [] else [ ("args", Json.Obj args) ])

let counter_event ?(pid = 1) ~ts ~tid name value =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "C");
      ("ts", Json.Int ts);
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("value", Json.Int value) ]);
    ]

let thread_name ?(pid = 1) ~tid name =
  Json.Obj
    [
      ("name", Json.String "thread_name");
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

let app_tid = 1
let runtime_tid = 2

let events_json symtab stamped =
  (* Track call depth so a trailing unbalanced E never appears before
     its B: drop pops with no matching push. *)
  let depth = ref 0 in
  let rt_depth = ref 0 in
  List.concat_map
    (fun { Events.at; ev } ->
      match ev with
      | Msp430.Trace.Call { target } ->
          incr depth;
          [ dur_begin ~ts:at ~tid:app_tid (Symtab.name_of symtab target) [] ]
      | Msp430.Trace.Return ->
          if !depth > 0 then begin
            decr depth;
            [ dur_end ~ts:at ~tid:app_tid [] ]
          end
          else []
      | Msp430.Trace.Runtime_event rev -> (
          match rev with
          | Msp430.Trace.Miss_enter { runtime } ->
              incr rt_depth;
              [ dur_begin ~ts:at ~tid:runtime_tid ("miss:" ^ runtime) [] ]
          | Msp430.Trace.Miss_exit { runtime = _; disposition; fid } ->
              if !rt_depth > 0 then begin
                decr rt_depth;
                [
                  dur_end ~ts:at ~tid:runtime_tid
                    (("disposition", Json.String disposition)
                    :: (if fid >= 0 then [ ("fid", Json.Int fid) ] else []));
                ]
              end
              else []
          | Msp430.Trace.Eviction { fid } ->
              [ instant ~ts:at ~tid:runtime_tid "evict" [ ("fid", Json.Int fid) ] ]
          | Msp430.Trace.Freeze { on } ->
              [
                instant ~ts:at ~tid:runtime_tid
                  (if on then "freeze" else "thaw")
                  [];
              ]
          | Msp430.Trace.Cache_flush ->
              [ instant ~ts:at ~tid:runtime_tid "flush" [] ]
          | Msp430.Trace.Block_load { nvm } ->
              [
                instant ~ts:at ~tid:runtime_tid "block-load"
                  [ ("nvm", Json.String (Printf.sprintf "0x%04X" nvm)) ];
              ]
          | Msp430.Trace.Prefetch { fid } ->
              [
                instant ~ts:at ~tid:runtime_tid "prefetch"
                  [ ("fid", Json.Int fid) ];
              ]
          | Msp430.Trace.Phase { name } ->
              [ instant ~ts:at ~tid:runtime_tid ("phase:" ^ name) [] ])
      | Msp430.Trace.Instr { pc; source } ->
          [
            instant ~ts:at ~tid:app_tid "instr"
              [
                ("pc", Json.String (Printf.sprintf "0x%04X" pc));
                ("source", Json.String (Msp430.Trace.source_name source));
              ];
          ]
      | Msp430.Trace.Cycles _ | Msp430.Trace.Mem_access _ -> [])
    stamped

let export ~symtab events =
  let meta =
    [
      thread_name ~tid:app_tid "application";
      thread_name ~tid:runtime_tid "caching-runtime";
    ]
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (meta @ events_json symtab (Events.to_list events)));
         ("displayTimeUnit", Json.String "ns");
         ( "otherData",
           Json.Obj
             [
               ("timestampUnit", Json.String "simulated-cycles");
               ("dropped", Json.Int (Events.dropped events));
             ] );
       ])
