(* Host-side experiment telemetry. See telemetry.mli for the contract.

   Record kinds on the wire (one JSON object per line, keyed by "t"):
     {"t":"manifest","ts":N, ...caller fields...}
     {"t":"b","ts":N,"id":I,"cat":C,"name":S,"args":{..}}   span begin
     {"t":"e","ts":N,"id":I,"args":{..}}                    span end
     {"t":"c","ts":N,"name":S,"value":V}                    counter
     {"t":"w","ts":N,"ev":E,"pid":P,"task":T,"args":{..}}   worker

   Timestamps are monotonic-clock nanoseconds (CLOCK_MONOTONIC via
   bechamel's Monotonic_clock, the same clock the sweeps use for host
   timing). Every record is flushed as written: a sink never holds
   buffered bytes, so a fork cannot duplicate output and a killed run
   loses at most one torn trailing line — which the reader drops. *)

type sink = {
  oc : out_channel;
  owner_pid : int;
  clock : unit -> int64;
  mutable next_id : int;
  mutable armed : bool;
}

let current : sink option ref = ref None

let active () =
  match !current with
  | None -> false
  | Some s -> s.armed && Unix.getpid () = s.owner_pid

let enable ?clock path =
  match !current with
  | Some _ -> Error "telemetry: a ledger sink is already enabled"
  | None -> (
      let clock =
        match clock with Some c -> c | None -> Monotonic_clock.now
      in
      match open_out path with
      | oc ->
          current :=
            Some
              { oc; owner_pid = Unix.getpid (); clock; next_id = 0; armed = true };
          Ok ()
      | exception Sys_error e -> Error ("telemetry: " ^ e))

let disable () =
  match !current with
  | None -> ()
  | Some s ->
      current := None;
      if Unix.getpid () = s.owner_pid then (
        try close_out s.oc with Sys_error _ -> ())

let disarm () =
  match !current with
  | None -> ()
  | Some s ->
      s.armed <- false;
      current := None

(* --- Emission ---------------------------------------------------------- *)

let emit s fields =
  output_string s.oc (Json.to_string (Json.Obj fields));
  output_char s.oc '\n';
  flush s.oc

let with_sink f = match !current with Some s when active () -> f s | _ -> ()

let args_field = function [] -> [] | args -> [ ("args", Json.Obj args) ]

let ts_field s = ("ts", Json.Int (Int64.to_int (s.clock ())))

let manifest fields =
  with_sink (fun s ->
      emit s
        ([ ("t", Json.String "manifest"); ts_field s ]
        @ [
            ("pid", Json.Int (Unix.getpid ()));
            ( "argv",
              Json.List
                (Array.to_list
                   (Array.map (fun a -> Json.String a) Sys.argv)) );
          ]
        @ fields))

let span_begin ?(args = []) ~cat name =
  match !current with
  | Some s when active () ->
      s.next_id <- s.next_id + 1;
      let id = s.next_id in
      emit s
        ([
           ("t", Json.String "b");
           ts_field s;
           ("id", Json.Int id);
           ("cat", Json.String cat);
           ("name", Json.String name);
         ]
        @ args_field args);
      id
  | _ -> 0

let span_end ?(args = []) id =
  if id > 0 then
    with_sink (fun s ->
        emit s
          ([ ("t", Json.String "e"); ts_field s; ("id", Json.Int id) ]
          @ args_field args))

let with_span ?args ~cat name f =
  if not (active ()) then f ()
  else begin
    let id = span_begin ?args ~cat name in
    Fun.protect ~finally:(fun () -> span_end id) f
  end

let counter name value =
  with_sink (fun s ->
      emit s
        [
          ("t", Json.String "c");
          ts_field s;
          ("name", Json.String name);
          ("value", Json.Int value);
        ])

let worker ?(task = -1) ?(args = []) ev ~pid =
  with_sink (fun s ->
      emit s
        ([
           ("t", Json.String "w");
           ts_field s;
           ("ev", Json.String ev);
           ("pid", Json.Int pid);
         ]
        @ (if task >= 0 then [ ("task", Json.Int task) ] else [])
        @ args_field args))

(* --- Ledger records ---------------------------------------------------- *)

type record =
  | Manifest of { ts : int64; fields : (string * Json.t) list }
  | Span_begin of {
      ts : int64;
      id : int;
      cat : string;
      name : string;
      args : (string * Json.t) list;
    }
  | Span_end of { ts : int64; id : int; args : (string * Json.t) list }
  | Counter of { ts : int64; name : string; value : int }
  | Worker of {
      ts : int64;
      ev : string;
      pid : int;
      task : int;
      args : (string * Json.t) list;
    }

let record_ts = function
  | Manifest { ts; _ }
  | Span_begin { ts; _ }
  | Span_end { ts; _ }
  | Counter { ts; _ }
  | Worker { ts; _ } ->
      ts

let record_to_line r =
  let ts v = ("ts", Json.Int (Int64.to_int v)) in
  let fields =
    match r with
    | Manifest { ts = v; fields } ->
        (* Fields nest under their own key: splicing them at top level
           would let a field named "t" or "ts" collide with the record
           tags (the round-trip property found exactly that). *)
        [ ("t", Json.String "manifest"); ts v ] @ args_field fields
    | Span_begin { ts = v; id; cat; name; args } ->
        [
          ("t", Json.String "b");
          ts v;
          ("id", Json.Int id);
          ("cat", Json.String cat);
          ("name", Json.String name);
        ]
        @ args_field args
    | Span_end { ts = v; id; args } ->
        [ ("t", Json.String "e"); ts v; ("id", Json.Int id) ] @ args_field args
    | Counter { ts = v; name; value } ->
        [
          ("t", Json.String "c");
          ts v;
          ("name", Json.String name);
          ("value", Json.Int value);
        ]
    | Worker { ts = v; ev; pid; task; args } ->
        [
          ("t", Json.String "w");
          ts v;
          ("ev", Json.String ev);
          ("pid", Json.Int pid);
        ]
        @ (if task >= 0 then [ ("task", Json.Int task) ] else [])
        @ args_field args
  in
  Json.to_string (Json.Obj fields)

let record_of_line line =
  match Json.parse line with
  | Error e -> Error e
  | Ok json -> (
      let str k = Option.bind (Json.member k json) Json.to_str in
      let int k = Option.bind (Json.member k json) Json.to_int in
      let args =
        match Json.member "args" json with
        | Some (Json.Obj kvs) -> kvs
        | _ -> []
      in
      let require what = function
        | Some v -> Ok v
        | None -> Error ("telemetry record missing " ^ what)
      in
      let ( let* ) r f = Result.bind r f in
      let* ts = require "ts" (int "ts") in
      let ts = Int64.of_int ts in
      match str "t" with
      | Some "manifest" ->
          (* Current lines nest fields under "args"; ledgers written
             before that change spliced them at top level — accept
             both so old artifacts stay readable. *)
          let fields =
            match args with
            | _ :: _ -> args
            | [] -> (
                match json with
                | Json.Obj kvs ->
                    List.filter (fun (k, _) -> k <> "t" && k <> "ts") kvs
                | _ -> [])
          in
          Ok (Manifest { ts; fields })
      | Some "b" ->
          let* id = require "id" (int "id") in
          let* cat = require "cat" (str "cat") in
          let* name = require "name" (str "name") in
          Ok (Span_begin { ts; id; cat; name; args })
      | Some "e" ->
          let* id = require "id" (int "id") in
          Ok (Span_end { ts; id; args })
      | Some "c" ->
          let* name = require "name" (str "name") in
          let* value = require "value" (int "value") in
          Ok (Counter { ts; name; value })
      | Some "w" ->
          let* ev = require "ev" (str "ev") in
          let* pid = require "pid" (int "pid") in
          let task = match int "task" with Some t -> t | None -> -1 in
          Ok (Worker { ts; ev; pid; task; args })
      | Some t -> Error ("unknown telemetry record type " ^ t)
      | None -> Error "telemetry record missing t")

let read_file path =
  match open_in path with
  | exception Sys_error e -> Error ("telemetry: " ^ e)
  | ic ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      let lines = List.rev !lines in
      let n = List.length lines in
      let rec go i acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest when String.trim line = "" -> go (i + 1) acc rest
        | line :: rest -> (
            match record_of_line line with
            | Ok r -> go (i + 1) (r :: acc) rest
            | Error _ when i = n - 1 ->
                (* torn trailing line: the writer was killed mid-append *)
                Ok (List.rev acc)
            | Error e ->
                Error (Printf.sprintf "%s:%d: %s" path (i + 1) e))
      in
      go 0 [] lines

(* --- Chrome timeline exporter ------------------------------------------ *)

let host_tid = 0

let rebase records =
  let t0 =
    List.fold_left
      (fun a r -> min a (record_ts r))
      Int64.max_int records
  in
  let t0 = if t0 = Int64.max_int then 0L else t0 in
  fun ts -> Int64.to_int (Int64.div (Int64.sub ts t0) 1000L)

(* microseconds since the first record *)

let chrome records =
  let us = rebase records in
  let pids =
    List.sort_uniq compare
      (List.filter_map
         (function Worker { pid; _ } -> Some pid | _ -> None)
         records)
  in
  let meta =
    Chrome.thread_name ~tid:host_tid "host"
    :: List.map
         (fun pid ->
           Chrome.thread_name ~tid:pid (Printf.sprintf "worker %d" pid))
         pids
  in
  (* Busy intervals: a dispatch opens a B on the worker's track, the
     next result/died/timeout for that pid closes it. Track what is
     open so a lifecycle event without an open dispatch (or a torn
     ledger) never emits an unbalanced E. *)
  let open_task : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let spans =
    List.concat_map
      (fun r ->
        match r with
        | Manifest _ -> []
        | Span_begin { ts; cat; name; args; _ } ->
            [
              Chrome.dur_begin ~ts:(us ts) ~tid:host_tid name
                (("cat", Json.String cat) :: args);
            ]
        | Span_end { ts; args; _ } ->
            [ Chrome.dur_end ~ts:(us ts) ~tid:host_tid args ]
        | Counter { ts; name; value } ->
            [ Chrome.counter_event ~ts:(us ts) ~tid:host_tid name value ]
        | Worker { ts; ev = "dispatch"; pid; task; _ } ->
            Hashtbl.replace open_task pid task;
            [
              Chrome.dur_begin ~ts:(us ts) ~tid:pid
                (Printf.sprintf "task %d" task)
                [];
            ]
        | Worker { ts; ev = ("result" | "died" | "timeout") as ev; pid; _ }
          when Hashtbl.mem open_task pid ->
            Hashtbl.remove open_task pid;
            let close =
              Chrome.dur_end ~ts:(us ts) ~tid:pid
                (if ev = "result" then [] else [ ("outcome", Json.String ev) ])
            in
            if ev = "result" then [ close ]
            else [ close; Chrome.instant ~ts:(us ts) ~tid:pid ev [] ]
        | Worker { ts; ev; pid; task; args } ->
            let tid = if pid = 0 then host_tid else pid in
            [
              Chrome.instant ~ts:(us ts) ~tid ev
                ((if task >= 0 then [ ("task", Json.Int task) ] else [])
                @ args);
            ])
      records
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (meta @ spans));
         ("displayTimeUnit", Json.String "ms");
         ( "otherData",
           Json.Obj [ ("timestampUnit", Json.String "microseconds") ] );
       ])

(* --- Summary table ----------------------------------------------------- *)

type wstat = {
  mutable spawns : int;
  mutable tasks : int;
  mutable deaths : int;
  mutable timeouts : int;
  mutable busy_ns : int64;
  mutable dispatched_at : int64 option;
}

let seconds ns = Int64.to_float ns /. 1e9

let summary records =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let t_first = ref Int64.max_int and t_last = ref Int64.min_int in
  List.iter
    (fun r ->
      let ts = record_ts r in
      if ts < !t_first then t_first := ts;
      if ts > !t_last then t_last := ts)
    records;
  let wall =
    if !t_last >= !t_first then seconds (Int64.sub !t_last !t_first) else 0.0
  in
  add "ledger       : %d records, %.3f s span\n" (List.length records) wall;
  List.iter
    (function
      | Manifest { fields; _ } ->
          let show (k, v) =
            match v with
            | Json.String s -> Some (Printf.sprintf "%s=%s" k s)
            | Json.Int n -> Some (Printf.sprintf "%s=%d" k n)
            | _ -> None
          in
          add "manifest     : %s\n"
            (String.concat " " (List.filter_map show fields))
      | _ -> ())
    records;
  (* per-worker busy accounting from the parent's dispatch/result
     frames; pid 0 is the host-side pseudo worker (requeue records) *)
  let workers : (int, wstat) Hashtbl.t = Hashtbl.create 8 in
  let wstat pid =
    match Hashtbl.find_opt workers pid with
    | Some w -> w
    | None ->
        let w =
          {
            spawns = 0;
            tasks = 0;
            deaths = 0;
            timeouts = 0;
            busy_ns = 0L;
            dispatched_at = None;
          }
        in
        Hashtbl.replace workers pid w;
        w
  in
  let requeues = ref 0 in
  let pool_first = ref Int64.max_int and pool_last = ref Int64.min_int in
  List.iter
    (function
      | Worker { ts; ev; pid; _ } -> (
          if ev = "dispatch" || ev = "result" then begin
            if ts < !pool_first then pool_first := ts;
            if ts > !pool_last then pool_last := ts
          end;
          match ev with
          | "spawn" -> (wstat pid).spawns <- (wstat pid).spawns + 1
          | "dispatch" -> (wstat pid).dispatched_at <- Some ts
          | "result" | "died" | "timeout" -> (
              let w = wstat pid in
              (match w.dispatched_at with
              | Some t0 ->
                  w.busy_ns <- Int64.add w.busy_ns (Int64.sub ts t0);
                  w.dispatched_at <- None
              | None -> ());
              match ev with
              | "result" -> w.tasks <- w.tasks + 1
              | "died" -> w.deaths <- w.deaths + 1
              | _ -> w.timeouts <- w.timeouts + 1)
          | "requeue" -> incr requeues
          | _ -> ())
      | _ -> ())
    records;
  let pool_wall =
    if !pool_last >= !pool_first then
      seconds (Int64.sub !pool_last !pool_first)
    else 0.0
  in
  let pids =
    List.sort compare
      (Hashtbl.fold (fun pid _ acc -> pid :: acc) workers [])
  in
  let total_tasks = ref 0 and total_deaths = ref 0 and total_timeouts = ref 0 in
  List.iter
    (fun pid ->
      let w = Hashtbl.find workers pid in
      total_tasks := !total_tasks + w.tasks;
      total_deaths := !total_deaths + w.deaths;
      total_timeouts := !total_timeouts + w.timeouts)
    pids;
  if pids <> [] then begin
    add "workers      : %d, %d tasks, %d died, %d timed out, %d re-queued\n"
      (List.length pids) !total_tasks !total_deaths !total_timeouts !requeues;
    List.iter
      (fun pid ->
        let w = Hashtbl.find workers pid in
        let busy = seconds w.busy_ns in
        add "  pid %-7d: %3d tasks, busy %7.3f s (%5.1f%%)%s\n" pid w.tasks
          busy
          (if pool_wall > 0.0 then 100.0 *. busy /. pool_wall else 0.0)
          (if w.deaths > 0 then Printf.sprintf ", died x%d" w.deaths
           else if w.timeouts > 0 then
             Printf.sprintf ", timed out x%d" w.timeouts
           else ""))
      pids;
    if pool_wall > 0.0 && !total_tasks > 0 then
      add "throughput   : %d tasks in %.3f s = %.1f tasks/s\n" !total_tasks
        pool_wall
        (float_of_int !total_tasks /. pool_wall)
  end;
  (* span aggregates by (cat, name), matched begin->end by id *)
  let begins : (int, string * string * int64) Hashtbl.t = Hashtbl.create 64 in
  let agg : (string * string, int ref * int64 ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (function
      | Span_begin { ts; id; cat; name; _ } ->
          Hashtbl.replace begins id (cat, name, ts)
      | Span_end { ts; id; _ } -> (
          match Hashtbl.find_opt begins id with
          | None -> ()
          | Some (cat, name, t0) ->
              Hashtbl.remove begins id;
              let count, total =
                match Hashtbl.find_opt agg (cat, name) with
                | Some a -> a
                | None ->
                    let a = (ref 0, ref 0L) in
                    Hashtbl.replace agg (cat, name) a;
                    a
              in
              incr count;
              total := Int64.add !total (Int64.sub ts t0))
      | _ -> ())
    records;
  let spans =
    List.sort compare
      (Hashtbl.fold (fun k (c, t) acc -> (k, !c, !t) :: acc) agg [])
  in
  List.iter
    (fun ((cat, name), count, total_ns) ->
      let total = seconds total_ns in
      add "span         : %-28s x%-4d total %8.3f s, mean %8.4f s\n"
        (cat ^ "." ^ name) count total
        (total /. float_of_int count))
    spans;
  (* counters: final and max values *)
  let counters : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (function
      | Counter { name; value; _ } ->
          let max_v =
            match Hashtbl.find_opt counters name with
            | Some (_, m) -> max m value
            | None -> value
          in
          Hashtbl.replace counters name (value, max_v)
      | _ -> ())
    records;
  let counters =
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters [])
  in
  List.iter
    (fun (name, (last, max_v)) ->
      add "counter      : %-28s last %d, max %d\n" name last max_v)
    counters;
  Buffer.contents b

(* --- CSV --------------------------------------------------------------- *)

let csv records =
  let b = Buffer.create 1024 in
  Buffer.add_string b "kind,name,cat,pid,task,start_ns,dur_ns,value\n";
  let row kind name cat pid task start dur value =
    Buffer.add_string b
      (Printf.sprintf "%s,%s,%s,%s,%s,%s,%s,%s\n" kind name cat pid task start
         dur value)
  in
  let i64 v = Int64.to_string v in
  let begins : (int, string * string * int64) Hashtbl.t = Hashtbl.create 64 in
  let dispatched : (int, int * int64) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match r with
      | Manifest _ -> ()
      | Span_begin { ts; id; cat; name; _ } ->
          Hashtbl.replace begins id (cat, name, ts)
      | Span_end { ts; id; _ } -> (
          match Hashtbl.find_opt begins id with
          | None -> ()
          | Some (cat, name, t0) ->
              Hashtbl.remove begins id;
              row "span" name cat "" "" (i64 t0)
                (i64 (Int64.sub ts t0))
                "")
      | Counter { ts; name; value } ->
          row "counter" name "" "" "" (i64 ts) "" (string_of_int value)
      | Worker { ts; ev; pid; task; _ } -> (
          match ev with
          | "dispatch" -> Hashtbl.replace dispatched pid (task, ts)
          | "result" | "died" | "timeout" -> (
              (match Hashtbl.find_opt dispatched pid with
              | Some (task, t0) ->
                  Hashtbl.remove dispatched pid;
                  row "task"
                    (Printf.sprintf "task-%d" task)
                    "worker" (string_of_int pid) (string_of_int task)
                    (i64 t0)
                    (i64 (Int64.sub ts t0))
                    ""
              | None -> ());
              if ev <> "result" then
                row "worker" ev "" (string_of_int pid)
                  (if task >= 0 then string_of_int task else "")
                  (i64 ts) "" "")
          | _ ->
              row "worker" ev "" (string_of_int pid)
                (if task >= 0 then string_of_int task else "")
                (i64 ts) "" ""))
    records;
  Buffer.contents b
