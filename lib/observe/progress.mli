(** Host-side progress events for long-running fault-injection
    campaigns and sweeps. Purely observational: events carry aggregate
    counters only, and a campaign emits the same simulated results
    whether or not a sink is attached. *)

type worker_state = W_spawned | W_busy | W_idle | W_died | W_timed_out

type event =
  | Campaign_started of { cells : int; trials : int }
  | Golden_ready of { cell : string; cycles : int }
  | Shard_done of {
      cell : string;
      shard : int;  (** 0-based shard index within the cell *)
      shards : int;
      trials_done : int;
      trials : int;
      cached : bool;  (** replayed from a progress checkpoint file *)
    }
  | Cell_done of {
      cell : string;
      trials : int;  (** trials actually aggregated (early stop) *)
      consistent : int;
      stopped_early : bool;
    }
  | Pool_event of string
      (** worker-pool lifecycle: spawns, deaths, timeouts, re-queues *)
  | Worker_state of { pid : int; state : worker_state; task : int }
      (** per-worker scheduling state; [task] is [-1] when not
          task-scoped (spawn, death without a known task) *)
  | Units_done of { label : string; finished : int; total : int }
      (** generic sweep progress: [finished] of [total] cells done *)
  | Campaign_done of { cells : int; trials : int; seconds : float }

type sink = event -> unit

val null : sink
val describe : event -> string

val console : out_channel -> sink
(** One line per event, flushed immediately. *)

val plain : ?min_interval:float -> out_channel -> sink
(** Non-TTY renderer: no ANSI escapes. Milestone events print
    immediately; high-frequency events ([Shard_done], [Units_done])
    are rate-limited to one line per [min_interval] seconds (default
    1.0); per-worker state churn is dropped. *)

val dashboard : ?min_interval:float -> out_channel -> sink
(** Live multi-line TTY display (campaign totals with rate and ETA,
    per-worker states, current cell, sweep progress, last event),
    redrawn in place at most every [min_interval] seconds (default
    0.1). Emits ANSI escapes — use {!auto} unless the stream is known
    to be a terminal. *)

val auto : out_channel -> sink
(** {!dashboard} when the channel is a TTY ([Unix.isatty]), {!plain}
    otherwise. *)
