(** Host-side progress events for long-running fault-injection
    campaigns. Purely observational: events carry aggregate counters
    only, and a campaign emits the same simulated results whether or
    not a sink is attached. *)

type event =
  | Campaign_started of { cells : int; trials : int }
  | Golden_ready of { cell : string; cycles : int }
  | Shard_done of {
      cell : string;
      shard : int;  (** 0-based shard index within the cell *)
      shards : int;
      trials_done : int;
      trials : int;
      cached : bool;  (** replayed from a progress checkpoint file *)
    }
  | Cell_done of {
      cell : string;
      trials : int;  (** trials actually aggregated (early stop) *)
      consistent : int;
      stopped_early : bool;
    }
  | Pool_event of string
      (** worker-pool lifecycle: spawns, deaths, timeouts, re-queues *)
  | Campaign_done of { cells : int; trials : int; seconds : float }

type sink = event -> unit

val null : sink
val describe : event -> string

val console : out_channel -> sink
(** One line per event, flushed immediately. *)
