(* Fenwick (binary-indexed) tree. [a.(i)] holds the sum of the
   [i land (-i)] slots ending at [i]; the running [sum] field makes
   [total] O(1), which matters because every stack-distance query is
   [total - prefix (slot - 1)]. *)

type t = { a : int array; n : int; mutable sum : int }

let create n = { a = Array.make (n + 1) 0; n; sum = 0 }
let capacity t = t.n

let add t i delta =
  if i < 1 || i > t.n then invalid_arg "Fenwick.add: slot out of range";
  t.sum <- t.sum + delta;
  let i = ref i in
  while !i <= t.n do
    t.a.(!i) <- t.a.(!i) + delta;
    i := !i + (!i land - !i)
  done

let prefix t i =
  let i = ref (min i t.n) in
  let s = ref 0 in
  while !i > 0 do
    s := !s + t.a.(!i);
    i := !i - (!i land - !i)
  done;
  !s

let total t = t.sum
let suffix t i = t.sum - prefix t (i - 1)

let clear t =
  Array.fill t.a 0 (t.n + 1) 0;
  t.sum <- 0
