(* Minimal JSON printer and parser for the exporters (Chrome traces,
   bench/report.json) and the perf-regression gate (`swapram_cli
   compare`), which must read reports back. No external
   dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* Strings are treated as byte sequences of unknown provenance —
   symbol names can come from hostile sources (a crafted mini-C file's
   function names end up in Chrome traces and reports). Everything
   outside printable ASCII is \u-escaped byte-wise: control characters
   (including DEL) because JSON forbids them raw, and bytes >= 0x80
   because they need not form valid UTF-8. Escaped output is therefore
   always valid JSON regardless of input encoding; a \u00XX byte
   escape decodes as the Latin-1 code point of that byte. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 || Char.code c >= 0x7F ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_nan f || Float.is_integer f = false && Float.is_finite f = false
  then "null" (* NaN / inf are not JSON; degrade to null *)
  else if Float.is_finite f then Printf.sprintf "%.6g" f
  else "null"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  write buf v;
  Buffer.contents buf

(* Pretty printer with two-space indent, for the human-diffable
   bench/report.json artifact. *)
let rec write_pretty buf indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v -> write buf v
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
      let pad = String.make indent ' ' in
      let pad' = String.make (indent + 2) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad';
          write_pretty buf (indent + 2) x)
        xs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
      let pad = String.make indent ' ' in
      let pad' = String.make (indent + 2) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          write_pretty buf (indent + 2) v)
        kvs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf '}'

let to_string_pretty v =
  let buf = Buffer.create 4096 in
  write_pretty buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- Parser ------------------------------------------------------------ *)

(* Recursive-descent parser for the subset of JSON this module emits
   (which is all of standard JSON). Numbers without '.', 'e' or 'E'
   parse as [Int]; everything else as [Float]. \uXXXX escapes below
   0x0100 decode to the single byte (inverse of [escape]'s byte-wise
   encoding); higher code points are UTF-8 encoded. Surrogate pairs
   are not combined — reports and traces never emit them. *)

exception Fail of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v =
      try int_of_string ("0x" ^ String.sub s !pos 4)
      with _ -> fail "bad \\u escape"
    in
    pos := !pos + 4;
    v
  in
  let utf8_add buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x100 then
      (* Byte escape produced by [escape]; restore the raw byte. *)
      Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'u' -> utf8_add buf (hex4 ())
              | _ -> fail "bad escape character");
              loop ())
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec loop () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
          advance ();
          loop ()
      | Some ('.' | 'e' | 'E') ->
          is_float := true;
          advance ();
          loop ()
      | _ -> ()
    in
    loop ();
    if !pos = start then fail "expected number";
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "malformed number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* Out-of-range integer literal; degrade to float. *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "malformed number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          let rec elems () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items := parse_value () :: !items;
                elems ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elems ();
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let member () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let items = ref [ member () ] in
          let rec members () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items := member () :: !items;
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !items)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

(* --- Accessors --------------------------------------------------------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_list = function List xs -> Some xs | _ -> None
