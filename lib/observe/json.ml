(* Minimal JSON printer for the exporters (Chrome traces,
   bench/report.json). No external dependencies; emission only — the
   repo never needs to parse JSON, just produce stable, valid output
   for external tooling. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_nan f || Float.is_integer f = false && Float.is_finite f = false
  then "null" (* NaN / inf are not JSON; degrade to null *)
  else if Float.is_finite f then Printf.sprintf "%.6g" f
  else "null"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  write buf v;
  Buffer.contents buf

(* Pretty printer with two-space indent, for the human-diffable
   bench/report.json artifact. *)
let rec write_pretty buf indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v -> write buf v
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
      let pad = String.make indent ' ' in
      let pad' = String.make (indent + 2) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad';
          write_pretty buf (indent + 2) x)
        xs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
      let pad = String.make indent ' ' in
      let pad' = String.make (indent + 2) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          write_pretty buf (indent + 2) v)
        kvs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf '}'

let to_string_pretty v =
  let buf = Buffer.create 4096 in
  write_pretty buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf
