(* Windowed time-series cache-dynamics sampler.

   Consumes the Trace event stream and splits the run into fixed
   cycle-count windows. Each window accumulates the same counter set
   the aggregate Trace totals hold (cycles, instruction count, memory
   accesses by class) plus the runtime events that describe cache
   dynamics (misses, evictions, freezes, flushes, block loads,
   prefetches) and two address-space access histograms (FRAM and
   SRAM) for heatmap rendering.

   Windows close on [Cycles] event boundaries — events are never
   split across windows — so per-window counters partition the run
   exactly: summed over all windows they equal the aggregate Trace
   totals, and (the energy model being linear in the counters) window
   energies sum to the whole-run energy report. The property tests
   assert both.

   Cache occupancy is reconstructed purely from events:
   [Miss_exit ~disposition:"cached"] and [Prefetch] add the function's
   size, [Eviction] subtracts it, [Block_load] adds one slot,
   [Cache_flush] zeroes. The occupancy recorded in a window is the
   value at its close.

   An optional exact reuse-distance tracker ({!Reuse}) rides the same
   stream. For SwapRAM the cache unit is the *function* — the granule
   SwapRAM actually caches — with hits observed as [Call] targets that
   resolve inside the cache region and misses as [Miss_exit] events,
   so the predicted and measured miss rates share one denominator
   (calls to cacheable functions). For the baseline and the block
   cache the unit is a fixed-size line over ifetch addresses
   normalized to their NVM home. *)

type reuse_mode = No_reuse | Functions | Lines of int

type hooks = {
  h_fid_size : int -> int;
      (* code bytes of function [fid]; drives occupancy and
         function-granular reuse *)
  h_call_unit : int -> int option;
      (* resolved call target -> cached function fid, when the target
         lies inside the cache region (a hit) *)
  h_ifetch_home : int -> int;
      (* ifetch address -> NVM home address (identity outside any
         cache region) *)
}

let null_hooks =
  {
    h_fid_size = (fun _ -> 0);
    h_call_unit = (fun _ -> None);
    h_ifetch_home = (fun a -> a);
  }

type spec = {
  window_cycles : int;
  buckets : int;
  reuse : reuse_mode;
  config_budget : int;
      (* the runtime's configured cache capacity in bytes; 0 when no
         cache is attached (baseline) *)
}

let default_spec =
  { window_cycles = 65536; buckets = 48; reuse = No_reuse; config_budget = 0 }

type window = {
  w_start : int; (* cycle count at window open *)
  mutable w_unstalled : int;
  mutable w_stall : int;
  mutable w_instrs : int;
  mutable w_fram_read_hits : int;
  mutable w_fram_read_misses : int;
  mutable w_fram_writes : int;
  mutable w_sram_accesses : int;
  mutable w_periph : int;
  mutable w_calls : int;
  mutable w_returns : int;
  mutable w_unit_hits : int; (* calls resolving into the cache region *)
  mutable w_miss_entries : int;
  mutable w_exits_cached : int;
  mutable w_exits_nvm : int; (* "nvm" / "frozen" / "too-large" *)
  mutable w_evictions : int;
  mutable w_freezes : int; (* on-transitions *)
  mutable w_flushes : int;
  mutable w_block_loads : int;
  mutable w_prefetches : int;
  mutable w_occupancy : int; (* bytes cached at window close *)
  w_fram_hist : Histogram.t;
  w_sram_hist : Histogram.t;
}

type t = {
  spec : spec;
  params : Msp430.Energy.params;
  hooks : hooks;
  fram_lo : int;
  fram_hi : int;
  sram_lo : int;
  sram_hi : int;
  mutable total_cycles : int;
  mutable cur : window;
  mutable closed : window list; (* newest first *)
  mutable occupancy : int;
  reuse : Reuse.t option;
}

let fresh_window ~spec ~fram_lo ~fram_hi ~sram_lo ~sram_hi start =
  {
    w_start = start;
    w_unstalled = 0;
    w_stall = 0;
    w_instrs = 0;
    w_fram_read_hits = 0;
    w_fram_read_misses = 0;
    w_fram_writes = 0;
    w_sram_accesses = 0;
    w_periph = 0;
    w_calls = 0;
    w_returns = 0;
    w_unit_hits = 0;
    w_miss_entries = 0;
    w_exits_cached = 0;
    w_exits_nvm = 0;
    w_evictions = 0;
    w_freezes = 0;
    w_flushes = 0;
    w_block_loads = 0;
    w_prefetches = 0;
    w_occupancy = 0;
    w_fram_hist = Histogram.create ~lo:fram_lo ~hi:fram_hi ~buckets:spec.buckets;
    w_sram_hist = Histogram.create ~lo:sram_lo ~hi:sram_hi ~buckets:spec.buckets;
  }

let create spec ~params ~fram:(fram_lo, fram_hi) ~sram:(sram_lo, sram_hi) hooks
    =
  if spec.window_cycles <= 0 then
    invalid_arg "Metrics.create: window_cycles must be positive";
  {
    spec;
    params;
    hooks;
    fram_lo;
    fram_hi;
    sram_lo;
    sram_hi;
    total_cycles = 0;
    cur = fresh_window ~spec ~fram_lo ~fram_hi ~sram_lo ~sram_hi 0;
    closed = [];
    occupancy = 0;
    reuse =
      (match spec.reuse with
      | No_reuse -> None
      | Functions | Lines _ -> Some (Reuse.create ()));
  }

let window_cycles w = w.w_unstalled + w.w_stall

let close_window t =
  t.cur.w_occupancy <- t.occupancy;
  t.closed <- t.cur :: t.closed;
  t.cur <-
    fresh_window ~spec:t.spec ~fram_lo:t.fram_lo ~fram_hi:t.fram_hi
      ~sram_lo:t.sram_lo ~sram_hi:t.sram_hi t.total_cycles

let nonempty w =
  window_cycles w > 0 || w.w_instrs > 0 || w.w_miss_entries > 0

let windows t =
  List.rev (if nonempty t.cur then t.cur :: t.closed else t.closed)

let size_of t fid = max 0 (t.hooks.h_fid_size fid)

let reuse_access t ~unit_id ~bytes =
  match t.reuse with
  | Some r -> Reuse.access r ~unit_id ~bytes
  | None -> ()

let observer t (ev : Msp430.Trace.event) =
  let w = t.cur in
  match ev with
  | Msp430.Trace.Cycles { unstalled; stall } ->
      w.w_unstalled <- w.w_unstalled + unstalled;
      w.w_stall <- w.w_stall + stall;
      t.total_cycles <- t.total_cycles + unstalled + stall;
      if t.total_cycles - w.w_start >= t.spec.window_cycles then
        close_window t
  | Msp430.Trace.Instr _ -> w.w_instrs <- w.w_instrs + 1
  | Msp430.Trace.Mem_access { addr; cls } -> (
      match cls with
      | Msp430.Trace.Fram_read { hit; ifetch } ->
          if hit then w.w_fram_read_hits <- w.w_fram_read_hits + 1
          else w.w_fram_read_misses <- w.w_fram_read_misses + 1;
          Histogram.add w.w_fram_hist addr;
          (match t.spec.reuse with
          | Lines n when ifetch ->
              let home = t.hooks.h_ifetch_home addr in
              reuse_access t ~unit_id:(home / n) ~bytes:n
          | _ -> ())
      | Msp430.Trace.Fram_write ->
          w.w_fram_writes <- w.w_fram_writes + 1;
          Histogram.add w.w_fram_hist addr
      | Msp430.Trace.Sram_read { ifetch } ->
          w.w_sram_accesses <- w.w_sram_accesses + 1;
          Histogram.add w.w_sram_hist addr;
          (match t.spec.reuse with
          | Lines n when ifetch ->
              let home = t.hooks.h_ifetch_home addr in
              reuse_access t ~unit_id:(home / n) ~bytes:n
          | _ -> ())
      | Msp430.Trace.Sram_write ->
          w.w_sram_accesses <- w.w_sram_accesses + 1;
          Histogram.add w.w_sram_hist addr
      | Msp430.Trace.Periph_access -> w.w_periph <- w.w_periph + 1)
  | Msp430.Trace.Call { target } -> (
      w.w_calls <- w.w_calls + 1;
      match t.hooks.h_call_unit target with
      | Some fid ->
          w.w_unit_hits <- w.w_unit_hits + 1;
          if t.spec.reuse = Functions then
            reuse_access t ~unit_id:fid ~bytes:(size_of t fid)
      | None -> ())
  | Msp430.Trace.Return -> w.w_returns <- w.w_returns + 1
  | Msp430.Trace.Runtime_event rev -> (
      match rev with
      | Msp430.Trace.Miss_enter _ ->
          w.w_miss_entries <- w.w_miss_entries + 1
      | Msp430.Trace.Miss_exit { runtime = _; disposition; fid } ->
          (if disposition = "cached" then begin
             w.w_exits_cached <- w.w_exits_cached + 1;
             if fid >= 0 then t.occupancy <- t.occupancy + size_of t fid
           end
           else if disposition <> "return" then
             w.w_exits_nvm <- w.w_exits_nvm + 1);
          if fid >= 0 && disposition <> "return" && t.spec.reuse = Functions
          then begin
            reuse_access t ~unit_id:fid ~bytes:(size_of t fid);
            match t.reuse with
            | Some r -> Reuse.note_measured_miss r
            | None -> ()
          end
      | Msp430.Trace.Eviction { fid } ->
          w.w_evictions <- w.w_evictions + 1;
          t.occupancy <- max 0 (t.occupancy - size_of t fid)
      | Msp430.Trace.Freeze { on } ->
          if on then w.w_freezes <- w.w_freezes + 1
      | Msp430.Trace.Cache_flush ->
          w.w_flushes <- w.w_flushes + 1;
          t.occupancy <- 0
      | Msp430.Trace.Block_load _ ->
          w.w_block_loads <- w.w_block_loads + 1;
          (match t.spec.reuse with
          | Lines n -> t.occupancy <- t.occupancy + n
          | _ -> ());
          (match t.reuse with
          | Some r when t.spec.reuse <> Functions -> Reuse.note_measured_miss r
          | _ -> ())
      | Msp430.Trace.Prefetch { fid } ->
          w.w_prefetches <- w.w_prefetches + 1;
          t.occupancy <- t.occupancy + size_of t fid
      | Msp430.Trace.Phase _ -> ())

(* --- Derived quantities ------------------------------------------------ *)

let reuse_tracker t = t.reuse
let spec t = t.spec
let occupancy t = t.occupancy

type energy_split = {
  e_total : float;
  e_cpu : float; (* cycle-proportional component *)
  e_fram_read : float;
  e_fram_write : float;
  e_sram : float;
}

let energy_nj params ~cycles ~fram_read_misses ~fram_read_hits ~fram_writes
    ~sram_accesses =
  (Msp430.Energy.evaluate_counts params ~cycles ~fram_read_misses
     ~fram_read_hits ~fram_writes ~sram_accesses)
    .Msp430.Energy.energy_nj

let window_energy t w =
  let cycles = window_cycles w in
  let total =
    energy_nj t.params ~cycles ~fram_read_misses:w.w_fram_read_misses
      ~fram_read_hits:w.w_fram_read_hits ~fram_writes:w.w_fram_writes
      ~sram_accesses:w.w_sram_accesses
  in
  (* The model is linear in the counters, so the per-class split is
     obtained by pricing each class alone. *)
  let zero = energy_nj t.params ~cycles:0 ~fram_read_misses:0
      ~fram_read_hits:0 ~fram_writes:0 ~sram_accesses:0
  in
  {
    e_total = total;
    e_cpu =
      energy_nj t.params ~cycles ~fram_read_misses:0 ~fram_read_hits:0
        ~fram_writes:0 ~sram_accesses:0
      -. zero;
    e_fram_read =
      energy_nj t.params ~cycles:0
        ~fram_read_misses:w.w_fram_read_misses
        ~fram_read_hits:w.w_fram_read_hits ~fram_writes:0 ~sram_accesses:0
      -. zero;
    e_fram_write =
      energy_nj t.params ~cycles:0 ~fram_read_misses:0 ~fram_read_hits:0
        ~fram_writes:w.w_fram_writes ~sram_accesses:0
      -. zero;
    e_sram =
      energy_nj t.params ~cycles:0 ~fram_read_misses:0 ~fram_read_hits:0
        ~fram_writes:0 ~sram_accesses:w.w_sram_accesses
      -. zero;
  }

let window_misses w = w.w_exits_cached + w.w_exits_nvm + w.w_block_loads

let window_miss_rate w =
  let misses = window_misses w in
  let refs = w.w_unit_hits + misses in
  if refs = 0 then 0.0 else float_of_int misses /. float_of_int refs

let default_budgets =
  [ 256; 512; 768; 1024; 1536; 2048; 2560; 3072; 3584; 4096; 5120; 6144; 7168; 8192 ]

(* --- Renderers --------------------------------------------------------- *)

let render_series t =
  let ws = windows t in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%10s %9s %7s %8s %8s %6s %6s %6s %5s %5s %6s %10s\n"
       "window@" "cycles" "stall" "fram-rd" "sram" "miss" "evict" "bload"
       "frz" "flush" "occ-B" "energy-nJ");
  List.iter
    (fun w ->
      let e = window_energy t w in
      Buffer.add_string buf
        (Printf.sprintf
           "%10d %9d %7d %8d %8d %6d %6d %6d %5d %5d %6d %10.1f\n" w.w_start
           (window_cycles w) w.w_stall
           (w.w_fram_read_hits + w.w_fram_read_misses)
           w.w_sram_accesses (window_misses w) w.w_evictions w.w_block_loads
           w.w_freezes w.w_flushes w.w_occupancy e.e_total))
    ws;
  Buffer.contents buf

let render_csv t =
  let ws = windows t in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "start,unstalled,stall,instrs,fram_read_hits,fram_read_misses,fram_writes,sram_accesses,calls,returns,unit_hits,miss_entries,exits_cached,exits_nvm,evictions,freezes,flushes,block_loads,prefetches,occupancy,miss_rate,energy_nj,energy_cpu_nj,energy_fram_read_nj,energy_fram_write_nj,energy_sram_nj\n";
  List.iter
    (fun w ->
      let e = window_energy t w in
      Buffer.add_string buf
        (Printf.sprintf
           "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.6f,%.3f,%.3f,%.3f,%.3f,%.3f\n"
           w.w_start w.w_unstalled w.w_stall w.w_instrs w.w_fram_read_hits
           w.w_fram_read_misses w.w_fram_writes w.w_sram_accesses w.w_calls
           w.w_returns w.w_unit_hits w.w_miss_entries w.w_exits_cached
           w.w_exits_nvm w.w_evictions w.w_freezes w.w_flushes
           w.w_block_loads w.w_prefetches w.w_occupancy (window_miss_rate w)
           e.e_total e.e_cpu e.e_fram_read e.e_fram_write e.e_sram))
    ws;
  Buffer.contents buf

let render_heatmaps ?(max_rows = 24) t =
  let ws = windows t in
  let label w = Printf.sprintf "@%d" w.w_start in
  let fram_rows =
    List.map (fun w -> (label w, Histogram.counts w.w_fram_hist)) ws
  in
  let sram_rows =
    List.map (fun w -> (label w, Histogram.counts w.w_sram_hist)) ws
  in
  Heatmap.render ~max_rows ~title:"FRAM accesses" ~lo:t.fram_lo ~hi:t.fram_hi
    fram_rows
  ^ "\n"
  ^ Heatmap.render ~max_rows ~title:"SRAM accesses" ~lo:t.sram_lo ~hi:t.sram_hi
      sram_rows

let render_mrc ?(budgets = default_budgets) t =
  match t.reuse with
  | None -> "miss-ratio curve: reuse tracking disabled\n"
  | Some r ->
      let buf = Buffer.create 512 in
      let gran =
        match t.spec.reuse with
        | Functions -> "function"
        | Lines n -> Printf.sprintf "%d-byte line" n
        | No_reuse -> "none"
      in
      Buffer.add_string buf
        (Printf.sprintf
           "miss-ratio curve  (%s granularity, %d accesses, footprint %d B, %d units)\n"
           gran (Reuse.accesses r) (Reuse.footprint r) (Reuse.units r));
      List.iter
        (fun (b, rate) ->
          let marker =
            if t.spec.config_budget > 0 && b = t.spec.config_budget then
              "  <- configured"
            else ""
          in
          Buffer.add_string buf
            (Printf.sprintf "  %6d B  %8.4f%%  %s%s\n" b (100.0 *. rate)
               (String.make
                  (int_of_float (60.0 *. rate +. 0.5))
                  '#')
               marker))
        (Reuse.curve r ~budgets);
      if t.spec.config_budget > 0 then
        Buffer.add_string buf
          (Printf.sprintf
             "  predicted @ %d B: %.4f%%   measured: %.4f%%   (%d/%d misses)\n"
             t.spec.config_budget
             (100.0 *. Reuse.predicted_miss_rate r ~budget:t.spec.config_budget)
             (100.0 *. Reuse.measured_miss_rate r)
             (Reuse.measured_misses r) (Reuse.accesses r));
      Buffer.contents buf
