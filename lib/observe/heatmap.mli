(** Terminal heatmap renderer. Rows are (label, per-bucket counts);
    columns span an address range. Intensity is a 10-step ASCII ramp,
    log-scaled and normalized to the global maximum across all rows so
    heat is comparable between windows. *)

val ramp : string
(** The intensity ramp, background first: [" .:-=+*#%@"]. *)

val render :
  ?max_rows:int ->
  title:string ->
  lo:int ->
  hi:int ->
  (string * int array) list ->
  string
(** Render rows under a [title] header for the address range
    [\[lo, hi)]. When [max_rows > 0] and there are more rows,
    consecutive rows are merged (counts summed, merged labels marked
    ["(*n)"]) down to [max_rows]. All rows must share one width. *)
