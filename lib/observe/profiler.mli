(** Cycle-attributed profiler over the {!Msp430.Trace} event stream.

    Every counted cycle and memory access is attributed to the
    function whose instruction caused it (context set by [Instr]
    events, symbolized through {!Symtab}). Counter increments are
    mirrored as events after the aggregates were bumped, so the
    per-function sums reconcile with the aggregate trace totals
    {e exactly} — the conservation property tests assert equality,
    not approximation. Energy attribution applies the (linear)
    {!Msp430.Energy} model to each slice, so slice energies sum to
    the whole-run report.

    A shadow call stack ([Call]/[Return] events) keys the
    caller-aggregated folded-stack output ([caller;callee cycles]
    lines, flame-graph input format). *)

type counters = {
  mutable instrs : int;
  mutable unstalled : int;
  mutable stall : int;
  mutable fram_read_hits : int;
  mutable fram_read_misses : int;
  mutable fram_writes : int;
  mutable sram_accesses : int;
}

type rt_stats = {
  mutable miss_entries : int;
  mutable evictions : int;
  mutable freezes : int;
  mutable flushes : int;
  mutable block_loads : int;
  mutable prefetches : int;
}

type t

val create : Symtab.t -> t

val observer : t -> Msp430.Trace.event -> unit
(** Feed one event; install via {!Msp430.Trace.set_observer} (or the
    harness's fan-out observer). *)

val totals : t -> counters
(** Sum over all attributed functions. Equals the aggregate
    {!Msp430.Trace} totals for any complete observation. *)

val cycles_of : counters -> int

type row = { name : string; c : counters; energy_nj : float }

val rows : params:Msp430.Energy.params -> t -> row list
(** Non-empty functions, most cycles first. *)

val energy_of : Msp430.Energy.params -> counters -> float

val render : ?top:int -> params:Msp430.Energy.params -> t -> string
(** Human-readable profile table with a TOTAL row. *)

val folded_lines : t -> string list
(** Caller-aggregated ["a;b;c cycles"] lines (sorted), the standard
    folded-stack flame-graph input. *)

val folded_total : t -> int
(** Sum of folded-stack cycle weights; equals [cycles_of (totals t)]
    for a complete observation. *)

val source_share : t -> Msp430.Trace.source -> float
(** Fraction of attributed cycles executed from the given instruction
    source (e.g. miss-handler share = [Handler] + [Memcpy]). *)

val source_cycles : t -> Msp430.Trace.source -> int
val call_count : t -> int
val return_count : t -> int
val runtime_stats : t -> rt_stats

val calls_to : t -> string -> int
(** Dynamic calls whose target symbolized to [name]. Calls that miss
    land on the trap vector and count under the trap's name, so a
    cacheable function's total calls is [calls_to name + miss-handler
    exits for its fid]. *)

val miss_exits_of : t -> int -> int
(** Swapram miss-handler exits (any disposition) attributed to a fid. *)

val counters_of : t -> string -> counters option
(** Raw attributed counters for one function, if it ever ran. *)
