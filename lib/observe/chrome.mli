(** Chrome trace-event JSON exporter (load in chrome://tracing or
    Perfetto). Calls/returns and miss enter/exit become B/E duration
    pairs on "application" and "caching-runtime" tracks; evictions,
    freeze transitions, flushes, block loads and phase markers become
    instant events. Timestamps are simulated cycles (see the
    [otherData.timestampUnit] field). *)

val export : symtab:Symtab.t -> Events.t -> string
(** Render the retained events as a complete JSON document. *)

(** {2 Event builders}

    Shared by this exporter and {!Telemetry.chrome}: each renders one
    trace-event object. [pid] defaults to 1 (a single process group);
    [ts] is whatever unit the surrounding document declares. *)

val dur_begin :
  ?pid:int -> ts:int -> tid:int -> string -> (string * Json.t) list -> Json.t

val dur_end : ?pid:int -> ts:int -> tid:int -> (string * Json.t) list -> Json.t

val instant :
  ?pid:int -> ts:int -> tid:int -> string -> (string * Json.t) list -> Json.t

val counter_event : ?pid:int -> ts:int -> tid:int -> string -> int -> Json.t

val thread_name : ?pid:int -> tid:int -> string -> Json.t
(** Metadata ("M") record naming a track. *)
