(** Chrome trace-event JSON exporter (load in chrome://tracing or
    Perfetto). Calls/returns and miss enter/exit become B/E duration
    pairs on "application" and "caching-runtime" tracks; evictions,
    freeze transitions, flushes, block loads and phase markers become
    instant events. Timestamps are simulated cycles (see the
    [otherData.timestampUnit] field). *)

val export : symtab:Symtab.t -> Events.t -> string
(** Render the retained events as a complete JSON document. *)
