(** Host-side experiment telemetry: an append-only JSONL run ledger of
    monotonic-clock spans, counters and worker-pool lifecycle records.

    The ledger is a sidecar artifact — it observes the experiment
    machinery (worker pools, sweeps, campaigns, toolchain phases) and
    must never perturb it. Two properties make that provable:

    - {b No feedback.} Emission is write-only: nothing in this module
      returns wall-clock values to the instrumented code, and every
      instrumentation site is a no-op when no sink is enabled, so a
      run with telemetry executes the same simulated work as a run
      without it. Deterministic artifacts (campaign JSON,
      [bench/report.json] cells, replay output) are byte-identical
      with telemetry on or off — asserted by the telemetry test suite
      and the CI purity gate.

    - {b Fork safety.} The sink is owned by the process that enabled
      it. Every record is flushed as it is written (no buffered bytes
      to duplicate across [fork]), emission checks the owner PID, and
      {!disarm} drops the inherited sink in forked workers — so a
      ledger has exactly one writer and worker activity is recorded
      from the parent's vantage point (dispatch/result frames), which
      is also what makes parallel and serial ledgers comparable. *)

(** {2 Emission} *)

val enable : ?clock:(unit -> int64) -> string -> (unit, string) result
(** [enable path] opens [path] for writing (truncating) and installs
    it as the process-wide sink. [clock] overrides the monotonic
    nanosecond clock (tests). [Error] if a sink is already enabled or
    the file cannot be created. *)

val disable : unit -> unit
(** Flush, close and uninstall the sink. No-op when none is enabled. *)

val disarm : unit -> unit
(** Drop an inherited sink without flushing or closing the shared
    file descriptor. Called in forked children (see
    {!Experiments.Parallel}); the parent's sink is unaffected. *)

val active : unit -> bool
(** A sink is enabled, armed, and owned by the calling process. *)

val manifest : (string * Json.t) list -> unit
(** Write the run-manifest header record: caller-provided fields
    (command, seed, jobs, engine, config fingerprints) plus the
    writing process's pid and argv. Conventionally the first record. *)

val span_begin : ?args:(string * Json.t) list -> cat:string -> string -> int
(** Open a span and return its ledger-stable id (0 when inactive —
    {!span_end} ignores it). *)

val span_end : ?args:(string * Json.t) list -> int -> unit

val with_span :
  ?args:(string * Json.t) list -> cat:string -> string -> (unit -> 'a) -> 'a
(** [with_span ~cat name f] runs [f ()] inside a span; the span is
    closed on exceptions too. When inactive this is exactly [f ()]. *)

val counter : string -> int -> unit
(** Record the current value of a named counter. *)

val worker : ?task:int -> ?args:(string * Json.t) list -> string -> pid:int -> unit
(** Worker-lifecycle record: [worker ev ~pid] with [ev] one of
    "spawn", "dispatch", "result", "died", "timeout", "requeue",
    "exit", "reap". [task] is the pool task index ([-1]/absent when
    the event is not task-scoped). *)

(** {2 The ledger} *)

type record =
  | Manifest of { ts : int64; fields : (string * Json.t) list }
  | Span_begin of {
      ts : int64;
      id : int;
      cat : string;
      name : string;
      args : (string * Json.t) list;
    }
  | Span_end of { ts : int64; id : int; args : (string * Json.t) list }
  | Counter of { ts : int64; name : string; value : int }
  | Worker of {
      ts : int64;
      ev : string;
      pid : int;
      task : int;  (** -1 when not task-scoped *)
      args : (string * Json.t) list;
    }

val record_to_line : record -> string
(** One JSONL line, without the trailing newline. *)

val record_of_line : string -> (record, string) result

val read_file : string -> (record list, string) result
(** Parse a ledger. A torn trailing line (writer killed mid-append)
    is dropped; a malformed interior line is an [Error]. *)

(** {2 Exporters} *)

val chrome : record list -> string
(** Chrome trace-event JSON (chrome://tracing, Perfetto): host spans
    on track 0, one track per worker PID with its dispatch->result
    busy intervals, lifecycle instants, and counter series.
    Timestamps are rebased to the first record. *)

val summary : record list -> string
(** Utilization/throughput table: per-worker tasks, busy time and
    utilization over the pool window, lifecycle totals, span
    aggregates by (cat, name), and final/max counter values. *)

val csv : record list -> string
(** Flat rows [kind,name,cat,pid,task,start_ns,dur_ns,value]: paired
    spans and worker busy intervals with durations, lifecycle events
    and counter samples as points. *)
