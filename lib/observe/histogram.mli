(** Fixed-range bucketed counter: the accumulator behind the
    address-space access heatmaps. The address range [\[lo, hi)] is
    split into equal-width buckets; out-of-range adds are counted as
    [clipped] but not binned. *)

type t

val create : lo:int -> hi:int -> buckets:int -> t
(** Raises [Invalid_argument] on an empty range or zero buckets. *)

val add : ?weight:int -> t -> int -> unit
(** [add t addr] increments the bucket containing [addr] (default
    weight 1). *)

val counts : t -> int array
(** Per-bucket counts, a fresh copy. *)

val total : t -> int
(** Sum of all binned weights. *)

val clipped : t -> int
(** Weight that fell outside [\[lo, hi)]. *)

val lo : t -> int
val hi : t -> int
val buckets : t -> int

val bucket_bytes : t -> int
(** Bytes covered by one bucket (rounded up). *)

val reset : t -> unit
