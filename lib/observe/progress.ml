(* Host-side progress reporting for long-running campaigns. A sink is
   just a callback; the library stays silent unless the caller plugs
   one in, and the events carry only aggregate counters so rendering
   them cannot perturb the simulated results. *)

type event =
  | Campaign_started of { cells : int; trials : int }
  | Golden_ready of { cell : string; cycles : int }
  | Shard_done of {
      cell : string;
      shard : int;
      shards : int;
      trials_done : int;
      trials : int;
      cached : bool;
    }
  | Cell_done of {
      cell : string;
      trials : int;
      consistent : int;
      stopped_early : bool;
    }
  | Pool_event of string
  | Campaign_done of { cells : int; trials : int; seconds : float }

type sink = event -> unit

let null (_ : event) = ()

let describe = function
  | Campaign_started { cells; trials } ->
      Printf.sprintf "campaign: %d cells, %d trials/cell" cells trials
  | Golden_ready { cell; cycles } ->
      Printf.sprintf "golden %-40s %d cycles" cell cycles
  | Shard_done { cell; shard; shards; trials_done; trials; cached } ->
      Printf.sprintf "shard  %-40s %d/%d (%d/%d trials)%s" cell (shard + 1)
        shards trials_done trials
        (if cached then " [cached]" else "")
  | Cell_done { cell; trials; consistent; stopped_early } ->
      Printf.sprintf "cell   %-40s %d/%d consistent%s" cell consistent trials
        (if stopped_early then " [early stop]" else "")
  | Pool_event s -> Printf.sprintf "pool   %s" s
  | Campaign_done { cells; trials; seconds } ->
      Printf.sprintf "campaign done: %d cells, %d trials, %.1fs" cells trials
        seconds

let console oc : sink =
 fun ev ->
  output_string oc (describe ev);
  output_char oc '\n';
  flush oc
