(* Host-side progress reporting for long-running campaigns and sweeps.
   A sink is just a callback; the library stays silent unless the
   caller plugs one in, and the events carry only aggregate counters so
   rendering them cannot perturb the simulated results.

   Three renderers:
   - [console]   one line per event, every event (historical behavior)
   - [plain]     non-TTY/CI: no ANSI escapes, high-frequency events
                 rate-limited to ~1 line/s, per-worker churn dropped
   - [dashboard] TTY: multi-line live display redrawn in place
   [auto] picks dashboard or plain via [Unix.isatty]. *)

type worker_state = W_spawned | W_busy | W_idle | W_died | W_timed_out

type event =
  | Campaign_started of { cells : int; trials : int }
  | Golden_ready of { cell : string; cycles : int }
  | Shard_done of {
      cell : string;
      shard : int;
      shards : int;
      trials_done : int;
      trials : int;
      cached : bool;
    }
  | Cell_done of {
      cell : string;
      trials : int;
      consistent : int;
      stopped_early : bool;
    }
  | Pool_event of string
  | Worker_state of { pid : int; state : worker_state; task : int }
  | Units_done of { label : string; finished : int; total : int }
  | Campaign_done of { cells : int; trials : int; seconds : float }

type sink = event -> unit

let null (_ : event) = ()

let state_name = function
  | W_spawned -> "spawned"
  | W_busy -> "busy"
  | W_idle -> "idle"
  | W_died -> "died"
  | W_timed_out -> "timed-out"

let describe = function
  | Campaign_started { cells; trials } ->
      Printf.sprintf "campaign: %d cells, %d trials/cell" cells trials
  | Golden_ready { cell; cycles } ->
      Printf.sprintf "golden %-40s %d cycles" cell cycles
  | Shard_done { cell; shard; shards; trials_done; trials; cached } ->
      Printf.sprintf "shard  %-40s %d/%d (%d/%d trials)%s" cell (shard + 1)
        shards trials_done trials
        (if cached then " [cached]" else "")
  | Cell_done { cell; trials; consistent; stopped_early } ->
      Printf.sprintf "cell   %-40s %d/%d consistent%s" cell consistent trials
        (if stopped_early then " [early stop]" else "")
  | Pool_event s -> Printf.sprintf "pool   %s" s
  | Worker_state { pid; state; task } ->
      Printf.sprintf "worker %d %s%s" pid (state_name state)
        (if task >= 0 then Printf.sprintf " (task %d)" task else "")
  | Units_done { label; finished; total } ->
      Printf.sprintf "%-6s %d/%d" label finished total
  | Campaign_done { cells; trials; seconds } ->
      Printf.sprintf "campaign done: %d cells, %d trials, %.1fs" cells trials
        seconds

let console oc : sink =
 fun ev ->
  output_string oc (describe ev);
  output_char oc '\n';
  flush oc

(* --- Plain (non-TTY) --------------------------------------------------- *)

let plain ?(min_interval = 1.0) oc : sink =
  let last = ref neg_infinity in
  let line ev =
    output_string oc (describe ev);
    output_char oc '\n';
    flush oc
  in
  fun ev ->
    match ev with
    | Worker_state _ -> ()
    | Shard_done _ | Units_done _ ->
        let now = Unix.gettimeofday () in
        if now -. !last >= min_interval then begin
          last := now;
          line ev
        end
    | Campaign_started _ | Golden_ready _ | Cell_done _ | Pool_event _
    | Campaign_done _ ->
        line ev

(* --- Dashboard (TTY) --------------------------------------------------- *)

type dash = {
  oc : out_channel;
  min_interval : float;
  mutable drawn : int;  (* lines currently on screen *)
  mutable last_draw : float;
  mutable started : float;
  mutable cells : int;
  mutable trials_per_cell : int;
  mutable cells_done : int;
  mutable trials_done : int;
  mutable cell : string;  (* current cell's latest shard line *)
  mutable sweep : string;  (* latest Units_done line *)
  mutable last_event : string;
  workers : (int, worker_state) Hashtbl.t;
}

let human_eta s =
  if s < 60.0 then Printf.sprintf "%.0fs" s
  else if s < 3600.0 then Printf.sprintf "%.0fm%02.0fs" (s /. 60.0) (mod_float s 60.0)
  else Printf.sprintf "%.1fh" (s /. 3600.0)

let dash_lines d =
  let lines = ref [] in
  let add s = lines := s :: !lines in
  (if d.cells > 0 then begin
     let total = d.cells * d.trials_per_cell in
     let elapsed = Unix.gettimeofday () -. d.started in
     let rate =
       if elapsed > 0.0 then float_of_int d.trials_done /. elapsed else 0.0
     in
     let eta =
       if rate > 0.0 && d.trials_done < total then
         " eta " ^ human_eta (float_of_int (total - d.trials_done) /. rate)
       else ""
     in
     add
       (Printf.sprintf "campaign %d/%d cells, %d/%d trials (%.1f trials/s%s)"
          d.cells_done d.cells d.trials_done total rate eta)
   end);
  if Hashtbl.length d.workers > 0 then begin
    let pids =
      List.sort compare
        (Hashtbl.fold (fun pid _ acc -> pid :: acc) d.workers [])
    in
    let busy =
      List.length
        (List.filter (fun p -> Hashtbl.find d.workers p = W_busy) pids)
    in
    let cell pid =
      let c =
        match Hashtbl.find d.workers pid with
        | W_busy -> '*'
        | W_idle | W_spawned -> '.'
        | W_died -> 'x'
        | W_timed_out -> 't'
      in
      Printf.sprintf "%d%c" pid c
    in
    add
      (Printf.sprintf "workers  %d busy / %d  [%s]" busy (List.length pids)
         (String.concat " " (List.map cell pids)))
  end;
  if d.cell <> "" then add ("cell     " ^ d.cell);
  if d.sweep <> "" then add ("sweep    " ^ d.sweep);
  if d.last_event <> "" then add ("last     " ^ d.last_event);
  List.rev !lines

let dash_draw d ~force =
  let now = Unix.gettimeofday () in
  if force || now -. d.last_draw >= d.min_interval then begin
    d.last_draw <- now;
    let b = Buffer.create 256 in
    if d.drawn > 0 then Buffer.add_string b (Printf.sprintf "\x1b[%dA" d.drawn);
    let lines = dash_lines d in
    List.iter
      (fun l ->
        Buffer.add_string b "\r\x1b[2K";
        Buffer.add_string b l;
        Buffer.add_char b '\n')
      lines;
    (* if the display shrank, blank the leftover lines then hop back *)
    let extra = d.drawn - List.length lines in
    if extra > 0 then begin
      for _ = 1 to extra do
        Buffer.add_string b "\r\x1b[2K\n"
      done;
      Buffer.add_string b (Printf.sprintf "\x1b[%dA" extra)
    end;
    d.drawn <- List.length lines;
    output_string d.oc (Buffer.contents b);
    flush d.oc
  end

let dashboard ?(min_interval = 0.1) oc : sink =
  let d =
    {
      oc;
      min_interval;
      drawn = 0;
      last_draw = neg_infinity;
      started = Unix.gettimeofday ();
      cells = 0;
      trials_per_cell = 0;
      cells_done = 0;
      trials_done = 0;
      cell = "";
      sweep = "";
      last_event = "";
      workers = Hashtbl.create 8;
    }
  in
  fun ev ->
    let force =
      match ev with
      | Campaign_started { cells; trials } ->
          d.started <- Unix.gettimeofday ();
          d.cells <- cells;
          d.trials_per_cell <- trials;
          d.cells_done <- 0;
          d.trials_done <- 0;
          true
      | Golden_ready { cell; cycles } ->
          d.last_event <-
            Printf.sprintf "golden %s (%d cycles)" cell cycles;
          false
      | Shard_done { cell; shard; shards; trials_done; trials; cached } ->
          d.cell <-
            Printf.sprintf "%s shard %d/%d (%d/%d trials)%s" cell (shard + 1)
              shards trials_done trials
              (if cached then " [cached]" else "");
          false
      | Cell_done { cell; trials; consistent; stopped_early } ->
          d.cells_done <- d.cells_done + 1;
          d.trials_done <- d.trials_done + trials;
          d.cell <- "";
          d.last_event <-
            Printf.sprintf "%s: %d/%d consistent%s" cell consistent trials
              (if stopped_early then " [early stop]" else "");
          false
      | Pool_event s ->
          d.last_event <- s;
          false
      | Worker_state { pid; state; _ } ->
          (match state with
          | W_died | W_timed_out ->
              d.last_event <- Printf.sprintf "worker %d %s" pid (state_name state)
          | _ -> ());
          Hashtbl.replace d.workers pid state;
          false
      | Units_done { label; finished; total } ->
          d.sweep <- Printf.sprintf "%s %d/%d" label finished total;
          finished = total
      | Campaign_done { cells; trials; seconds } ->
          d.last_event <-
            Printf.sprintf "done: %d cells, %d trials, %.1fs" cells trials
              seconds;
          true
    in
    dash_draw d ~force

let auto oc : sink =
  if Unix.isatty (Unix.descr_of_out_channel oc) then dashboard oc else plain oc
