(* Terminal heatmap renderer for bucketed counters.

   Rows are (label, counts) pairs — one row per time window, columns
   are address-space buckets. Intensity uses a 10-step ASCII ramp on a
   log scale normalized to the global maximum: access counts span
   many orders of magnitude (a hot loop vs. a once-touched table), and
   linear scaling would render everything but the hottest bucket as
   background. *)

let ramp = " .:-=+*#%@"

let glyph ~log_max count =
  if count <= 0 then ramp.[0]
  else if log_max <= 0.0 then ramp.[String.length ramp - 1]
  else
    let steps = String.length ramp - 1 in
    let v = log (float_of_int count +. 1.0) /. log_max in
    let idx = 1 + int_of_float (v *. float_of_int (steps - 1)) in
    ramp.[min idx steps]

let merge_rows rows max_rows =
  let n = List.length rows in
  if max_rows <= 0 || n <= max_rows then rows
  else
    (* Merge consecutive rows into [max_rows] groups, summing counts;
       the merged row keeps the first member's label prefixed with the
       group size so compression is visible. *)
    let arr = Array.of_list rows in
    List.init max_rows (fun g ->
        let lo = g * n / max_rows and hi = (g + 1) * n / max_rows in
        let label, first = arr.(lo) in
        let acc = Array.copy first in
        for i = lo + 1 to hi - 1 do
          let _, c = arr.(i) in
          Array.iteri (fun j v -> acc.(j) <- acc.(j) + v) c
        done;
        let label =
          if hi - lo > 1 then Printf.sprintf "%s(*%d)" label (hi - lo)
          else label
        in
        (label, acc))

let render ?(max_rows = 0) ~title ~lo ~hi rows =
  let rows = merge_rows rows max_rows in
  let buf = Buffer.create 1024 in
  let width =
    match rows with [] -> 0 | (_, c) :: _ -> Array.length c
  in
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 6 rows
  in
  let global_max =
    List.fold_left
      (fun acc (_, c) -> Array.fold_left max acc c)
      0 rows
  in
  let log_max = log (float_of_int global_max +. 1.0) in
  Buffer.add_string buf
    (Printf.sprintf "%s  [0x%04X..0x%04X)  %d buckets x %d bytes\n" title lo
       hi width
       (if width = 0 then 0 else (hi - lo + width - 1) / width));
  List.iter
    (fun (label, counts) ->
      Buffer.add_string buf (Printf.sprintf "%*s |" label_w label);
      Array.iter (fun c -> Buffer.add_char buf (glyph ~log_max c)) counts;
      Buffer.add_string buf "|\n")
    rows;
  Buffer.add_string buf
    (Printf.sprintf "%*s  scale: '%s' = 0 .. '%s' = %d (log)\n" label_w ""
       (String.make 1 ramp.[0])
       (String.make 1 ramp.[String.length ramp - 1])
       global_max);
  Buffer.contents buf
