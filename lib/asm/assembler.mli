(** Two-pass assembler with iterative branch relaxation.

    Text items are placed sequentially from [code_base], data items
    from [data_base]. Jumps whose targets fall outside the MSP430's
    10-bit PC-relative range are rewritten as absolute branches (with
    the inverted-condition skip of the paper's Fig. 6 when
    conditional) until layout converges — the msp430-gcc linker
    behaviour the paper relies on (§4). The post-relaxation program is
    part of the output so instrumentation passes can find and rewrite
    the absolute branches (§3.3.1). *)

module Isa = Msp430.Isa

exception Error of string

type layout = { code_base : int; data_base : int }

val default_layout : layout

val instr_size : Ast.instr -> int
(** Exact encoded size in bytes, assuming jumps stay short. *)

val inverse_cond : Isa.cond -> Isa.cond option
(** Complement of a condition code; [None] for JN and JMP. *)

val jump_in_range : addr:int -> target:int -> bool

val relax : layout:layout -> Ast.program -> Ast.program
(** Expand out-of-range jumps until none remain. *)

type segment = { base : int; contents : Bytes.t }

type item_info = {
  info_name : string;
  info_section : Ast.section;
  info_addr : int;
  info_size : int;
}

type t = {
  symbols : (string, int) Hashtbl.t;
  items : item_info list;
  segments : segment list;
  resolved : Ast.program;  (** the program after relaxation *)
  code_end : int;
  data_end : int;
  layout : layout;
  instructions : (int * Isa.t) list;  (** every encoded instruction *)
}

val lookup : t -> string -> int
val item_size : t -> string -> int

(** Address and post-link contents of a named item — what a
    power-loss recovery routine restores metadata tables from. *)
val item_initial : t -> string -> int * Bytes.t
val assemble : ?layout:layout -> Ast.program -> t
val load : t -> Msp430.Memory.t -> unit
val code_size : t -> int
val data_size : t -> int
