module Isa = Msp430.Isa
module Word = Msp430.Word
module Encoding = Msp430.Encoding
module Memory = Msp430.Memory

(* Two-pass assembler with iterative branch relaxation.

   Text items are placed sequentially from [code_base], data items from
   [data_base]. Jump statements are first assumed to fit the MSP430's
   10-bit PC-relative offset; any jump whose target falls outside
   -511..+512 words is rewritten as an absolute branch (with the
   inverted-condition skip of the paper's Fig. 6 when conditional) and
   layout is recomputed until no jump is out of range — the same
   relaxation the msp430-gcc linker performs. The post-relaxation
   program is part of the output so instrumentation passes can find
   and rewrite the absolute branches (paper §3.3.1). *)

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type layout = { code_base : int; data_base : int }

let default_layout = { code_base = 0x4400; data_base = 0xA000 }

(* --- Sizing ------------------------------------------------------- *)

let src_ext_words = function
  | Ast.Sidx _ | Ast.Sabs _ | Ast.Ssym _ -> 1
  | Ast.Simm (Ast.Num v) -> ( match Isa.cg_encoding v with Some _ -> 0 | None -> 1)
  | Ast.Simm _ -> 1
  | Ast.Sreg _ | Ast.Sind _ | Ast.Sinc _ -> 0

let dst_ext_words = function
  | Ast.Dreg _ -> 0
  | Ast.Didx _ | Ast.Dabs _ | Ast.Dsym _ -> 1

let instr_size = function
  | Ast.I1 (_, _, s, d) -> 2 + (2 * src_ext_words s) + (2 * dst_ext_words d)
  | Ast.I2 (Isa.CALL, _, Ast.Simm _) -> 4
  | Ast.I2 (_, _, s) -> 2 + (2 * src_ext_words s)
  | Ast.J _ -> 2
  | Ast.Br _ | Ast.Br_ind _ | Ast.Call _ | Ast.Call_ind _ -> 4
  | Ast.Ret -> 2

let stmt_size addr = function
  | Ast.Label _ | Ast.Comment _ -> 0
  | Ast.Instr i -> instr_size i
  | Ast.Word _ -> 2
  | Ast.Byte _ -> 1
  | Ast.Ascii s -> String.length s
  | Ast.Space n -> n
  | Ast.Align n -> (n - (addr mod n)) mod n

(* --- Layout ------------------------------------------------------- *)

type placed = { paddr : int; psize : int; pstmt : Ast.stmt }

type placed_item = {
  source : Ast.item;
  iaddr : int;
  isize : int;
  placed : placed list;
}

let place_item addr (it : Ast.item) =
  let addr = addr + (addr land 1) in
  let rec loop cur acc = function
    | [] -> (cur, List.rev acc)
    | stmt :: rest ->
        (match stmt with
        | Ast.Instr _ | Ast.Word _ ->
            if cur land 1 <> 0 then
              error "item %s: misaligned statement at 0x%04X (missing Align?)"
                it.Ast.name cur
        | _ -> ());
        let size = stmt_size cur stmt in
        loop (cur + size) ({ paddr = cur; psize = size; pstmt = stmt } :: acc) rest
  in
  let end_addr, placed = loop addr [] it.Ast.stmts in
  ({ source = it; iaddr = addr; isize = end_addr - addr; placed }, end_addr)

let place_items base items =
  let rec loop addr acc = function
    | [] -> List.rev acc
    | it :: rest ->
        let pit, addr' = place_item addr it in
        loop addr' (pit :: acc) rest
  in
  loop base [] items

let build_symbols placed_items =
  let symbols = Hashtbl.create 97 in
  let define name addr =
    if Hashtbl.mem symbols name then error "duplicate symbol %s" name;
    Hashtbl.replace symbols name addr
  in
  let define_item pit =
    define pit.source.Ast.name pit.iaddr;
    List.iter
      (fun p ->
        match p.pstmt with Ast.Label l -> define l p.paddr | _ -> ())
      pit.placed
  in
  List.iter define_item placed_items;
  symbols

let eval_expr symbols expr =
  let sym l =
    match Hashtbl.find_opt symbols l with
    | Some a -> a
    | None -> error "undefined symbol %s" l
  in
  match expr with
  | Ast.Num n -> Word.of_int n
  | Ast.Lab l -> sym l
  | Ast.Lab_off (l, k) -> Word.of_int (sym l + k)
  | Ast.Diff (a, b) -> Word.of_int (sym a - sym b)

(* --- Relaxation ---------------------------------------------------- *)

let inverse_cond = function
  | Isa.JNE -> Some Isa.JEQ
  | Isa.JEQ -> Some Isa.JNE
  | Isa.JNC -> Some Isa.JC
  | Isa.JC -> Some Isa.JNC
  | Isa.JGE -> Some Isa.JL
  | Isa.JL -> Some Isa.JGE
  | Isa.JN | Isa.JMP -> None

let jump_in_range ~addr ~target =
  let off = (target - (addr + 2)) asr 1 in
  off >= -512 && off <= 511

let fresh_far_label =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Printf.sprintf "$far_%d" !counter

(* Expand one out-of-range jump into its absolute form. *)
let expand_jump cond target =
  match cond with
  | Isa.JMP -> [ Ast.Instr (Ast.Br (Ast.Lab target)) ]
  | _ -> (
      match inverse_cond cond with
      | Some inv ->
          let skip = fresh_far_label () in
          [
            Ast.Instr (Ast.J (inv, skip));
            Ast.Instr (Ast.Br (Ast.Lab target));
            Ast.Label skip;
          ]
      | None ->
          (* JN has no complement: take a short detour through a
             branch island. *)
          let take = fresh_far_label () and skip = fresh_far_label () in
          [
            Ast.Instr (Ast.J (cond, take));
            Ast.Instr (Ast.J (Isa.JMP, skip));
            Ast.Label take;
            Ast.Instr (Ast.Br (Ast.Lab target));
            Ast.Label skip;
          ])

(* One relaxation round: expand every out-of-range jump. Returns the
   rewritten program and whether anything changed. *)
let relax_round ~layout (program : Ast.program) =
  let placed_text = place_items layout.code_base (Ast.text_items program) in
  let placed_data =
    place_items layout.data_base (Ast.data_items program)
  in
  let symbols = build_symbols (placed_text @ placed_data) in
  let changed = ref false in
  let far = Hashtbl.create 16 in
  let mark pit =
    List.iter
      (fun p ->
        match p.pstmt with
        | Ast.Instr (Ast.J (_, l)) ->
            let target = eval_expr symbols (Ast.Lab l) in
            if not (jump_in_range ~addr:p.paddr ~target) then begin
              Hashtbl.replace far (p.paddr, p.pstmt) ();
              changed := true
            end
        | _ -> ())
      pit.placed
  in
  List.iter mark placed_text;
  if not !changed then (program, false)
  else
    let rewrite_item pit =
      let stmts =
        List.concat_map
          (fun p ->
            match p.pstmt with
            | Ast.Instr (Ast.J (c, l)) when Hashtbl.mem far (p.paddr, p.pstmt)
              ->
                expand_jump c l
            | s -> [ s ])
          pit.placed
      in
      { pit.source with Ast.stmts }
    in
    let text = List.map rewrite_item placed_text in
    let data = List.map (fun p -> p.source) placed_data in
    (text @ data, true)

let rec relax ~layout program =
  let program', changed = relax_round ~layout program in
  if changed then relax ~layout program' else program'

(* --- Lowering to concrete instructions ----------------------------- *)

let lower_imm symbols e =
  match e with
  | Ast.Num v -> Isa.Simm (Word.of_int v)
  | _ ->
      let v = eval_expr symbols e in
      (* Symbolic immediates keep their extension word even when the
         constant generator could encode the value, as real assemblers
         do for relocatable operands — layout sizes stay stable. *)
      if Isa.cg_encoding v <> None then Isa.SimmX v else Isa.Simm v

let lower_src symbols = function
  | Ast.Sreg r -> Isa.Sreg r
  | Ast.Sidx (e, r) -> Isa.Sidx (eval_expr symbols e, r)
  | Ast.Sind r -> Isa.Sind r
  | Ast.Sinc r -> Isa.Sinc r
  | Ast.Simm e -> lower_imm symbols e
  | Ast.Sabs e -> Isa.Sabs (eval_expr symbols e)
  | Ast.Ssym e -> Isa.Ssym (eval_expr symbols e)

let lower_dst symbols = function
  | Ast.Dreg r -> Isa.Dreg r
  | Ast.Didx (e, r) -> Isa.Didx (eval_expr symbols e, r)
  | Ast.Dabs e -> Isa.Dabs (eval_expr symbols e)
  | Ast.Dsym e -> Isa.Dsym (eval_expr symbols e)

let lower_instr symbols ~addr = function
  | Ast.I1 (op, sz, s, d) ->
      Isa.I1 (op, sz, lower_src symbols s, lower_dst symbols d)
  | Ast.I2 (op, sz, s) -> Isa.I2 (op, sz, lower_src symbols s)
  | Ast.J (c, l) ->
      let target = eval_expr symbols (Ast.Lab l) in
      let off = (target - (addr + 2)) asr 1 in
      if off < -512 || off > 511 then
        error "jump to %s out of range after relaxation" l;
      Isa.Jcc (c, off)
  | Ast.Br e -> (
      match lower_imm symbols e with
      | imm -> Isa.I1 (Isa.MOV, Isa.W, imm, Isa.Dreg Isa.pc))
  | Ast.Br_ind e ->
      Isa.I1 (Isa.MOV, Isa.W, Isa.Sabs (eval_expr symbols e), Isa.Dreg Isa.pc)
  | Ast.Call e -> Isa.I2 (Isa.CALL, Isa.W, Isa.Simm (eval_expr symbols e))
  | Ast.Call_ind e ->
      Isa.I2 (Isa.CALL, Isa.W, Isa.Sabs (eval_expr symbols e))
  | Ast.Ret -> Isa.I1 (Isa.MOV, Isa.W, Isa.Sinc Isa.sp, Isa.Dreg Isa.pc)

(* --- Image --------------------------------------------------------- *)

type segment = { base : int; contents : Bytes.t }

type item_info = {
  info_name : string;
  info_section : Ast.section;
  info_addr : int;
  info_size : int;
}

type t = {
  symbols : (string, int) Hashtbl.t;
  items : item_info list;
  segments : segment list;
  resolved : Ast.program;
  code_end : int;
  data_end : int;
  layout : layout;
  instructions : (int * Isa.t) list; (* every encoded instruction *)
}

let lookup image name =
  match Hashtbl.find_opt image.symbols name with
  | Some a -> a
  | None -> error "unknown symbol %s" name

let item_size image name =
  match List.find_opt (fun i -> i.info_name = name) image.items with
  | Some i -> i.info_size
  | None -> error "unknown item %s" name

(* The post-link bytes of a named item — what a power-loss recovery
   routine restores metadata tables from. *)
let item_initial image name =
  let addr = lookup image name in
  let size = item_size image name in
  match
    List.find_opt
      (fun s -> addr >= s.base && addr + size <= s.base + Bytes.length s.contents)
      image.segments
  with
  | Some seg -> (addr, Bytes.sub seg.contents (addr - seg.base) size)
  | None -> error "item %s is not covered by any segment" name

let emit_segment symbols base placed_items =
  let last =
    List.fold_left (fun acc p -> max acc (p.iaddr + p.isize)) base placed_items
  in
  let contents = Bytes.make (last - base) '\000' in
  let put addr b = Bytes.set contents (addr - base) (Char.chr (b land 0xFF)) in
  let put_word addr w =
    put addr (Word.low_byte w);
    put (addr + 1) (Word.high_byte w)
  in
  let instructions = ref [] in
  let emit_placed p =
    match p.pstmt with
    | Ast.Label _ | Ast.Comment _ -> ()
    | Ast.Align _ -> ()
    | Ast.Word e -> put_word p.paddr (eval_expr symbols e)
    | Ast.Byte b -> put p.paddr b
    | Ast.Ascii s -> String.iteri (fun i c -> put (p.paddr + i) (Char.code c)) s
    | Ast.Space _ -> ()
    | Ast.Instr i ->
        let isa = lower_instr symbols ~addr:p.paddr i in
        let words = Encoding.encode ~addr:p.paddr isa in
        if 2 * List.length words <> p.psize then
          error "size mismatch at 0x%04X for %s (laid out %d, encoded %d)"
            p.paddr
            (Format.asprintf "%a" Ast.pp_instr i)
            p.psize
            (2 * List.length words);
        List.iteri (fun k w -> put_word (p.paddr + (2 * k)) w) words;
        instructions := (p.paddr, isa) :: !instructions
  in
  List.iter (fun pit -> List.iter emit_placed pit.placed) placed_items;
  ({ base; contents }, List.rev !instructions)

let assemble ?(layout = default_layout) (program : Ast.program) =
  let resolved = relax ~layout program in
  let placed_text = place_items layout.code_base (Ast.text_items resolved) in
  let placed_data = place_items layout.data_base (Ast.data_items resolved) in
  let symbols = build_symbols (placed_text @ placed_data) in
  let code_seg, code_instrs = emit_segment symbols layout.code_base placed_text in
  let data_seg, data_instrs = emit_segment symbols layout.data_base placed_data in
  let info pit =
    {
      info_name = pit.source.Ast.name;
      info_section = pit.source.Ast.section;
      info_addr = pit.iaddr;
      info_size = pit.isize;
    }
  in
  {
    symbols;
    items = List.map info (placed_text @ placed_data);
    segments = [ code_seg; data_seg ];
    resolved;
    code_end = code_seg.base + Bytes.length code_seg.contents;
    data_end = data_seg.base + Bytes.length data_seg.contents;
    layout;
    instructions = code_instrs @ data_instrs;
  }

let load image memory =
  List.iter
    (fun seg -> Memory.load_image memory ~addr:seg.base seg.contents)
    image.segments

let code_size image = image.code_end - image.layout.code_base
let data_size image = image.data_end - image.layout.data_base
