module Trace = Msp430.Trace
module Platform = Msp430.Platform

(* Figure 8 — dynamic instruction source breakdown: where every
   executed instruction was fetched from (application code in FRAM or
   SRAM, the caching runtime, the copy loop), normalized to the
   baseline's instruction count. Shape to reproduce: SwapRAM executes
   the vast majority of application instructions from SRAM with a
   few-percent instrumentation overhead; the block cache avoids FRAM
   app execution but inflates the dynamic instruction count. *)

type breakdown = {
  app_fram : int;
  app_sram : int;
  handler : int;
  memcpy : int;
  total : int;
}

type row = {
  benchmark : Workloads.Bench_def.t;
  base_total : int;
  swapram : breakdown option;
  block : breakdown option;
}

type t = row list

let breakdown_of = function
  | Toolchain.Did_not_fit _ -> None
  | Toolchain.Crashed o -> failwith ("fig8: " ^ Report.outcome_cell o)
  | Toolchain.Completed r ->
      let s = r.Toolchain.stats in
      let get src = s.Trace.instr_by_source.(Trace.source_index src) in
      Some
        {
          app_fram = get Trace.App_fram;
          app_sram = get Trace.App_sram;
          handler = get Trace.Handler;
          memcpy = get Trace.Memcpy;
          total = s.Trace.instructions;
        }

let compute ?(seed = 1) () =
  List.map
    (fun (e : Sweep.entry) ->
      {
        benchmark = e.Sweep.benchmark;
        base_total = e.Sweep.baseline.Toolchain.stats.Trace.instructions;
        swapram = breakdown_of e.Sweep.swapram;
        block = breakdown_of e.Sweep.block;
      })
    (Sweep.compute ~seed ~frequency:Platform.Mhz24 ())

let cells base = function
  | None -> [ "DNF"; "DNF"; "DNF"; "DNF"; "DNF" ]
  | Some b ->
      let p v = Printf.sprintf "%.1f%%" (100.0 *. float_of_int v /. float_of_int base) in
      [ p b.app_fram; p b.app_sram; p b.handler; p b.memcpy; p b.total ]

let render t =
  let header =
    [ "benchmark"; "system"; "app-FRAM"; "app-SRAM"; "handler"; "memcpy";
      "total (vs base)" ]
  in
  let rows =
    List.concat_map
      (fun r ->
        [
          (r.benchmark.Workloads.Bench_def.name :: "swapram"
           :: cells r.base_total r.swapram);
          ("" :: "block" :: cells r.base_total r.block);
        ])
      t
  in
  Report.heading
    "Figure 8: dynamic instruction sources (normalized to baseline count)"
  ^ Report.table ~aligns:[ Report.Left; Report.Left ] (header :: rows)
  ^ "\n"
