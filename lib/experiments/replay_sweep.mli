(** Record-once / replay-many sweep cells.

    One recorded trace per (benchmark x cached system) stands in for
    re-executing the CPU at every cache-model grid point: each cell
    is a {!Replay.Engine.simulate} call over the loaded reference
    stream, sharded across {!Parallel} workers, microseconds instead
    of seconds.

    Memoization: replayed cells are memoized like {!Sweep} cells, but
    the key is derived from the trace {e contents} — the header's
    configuration fingerprint and event count — plus the full replay
    model, never from the file path. A stale or swapped trace file
    therefore can never satisfy a memoized cell: its fingerprint
    differs, so its cells miss the memo and recompute. *)

type cell = {
  c_budget : int;  (** cache capacity in bytes *)
  c_policy : Replay.Engine.policy;
  c_block : int option;  (** line-size override for block-cache traces *)
}

type cell_result = {
  r_cell : cell;
  r_sim : Replay.Engine.sim;
  r_host_s : float;
      (** host seconds for this cell's simulation; in batched paths
          ({!replay_cells}) this is the chunk's batch time amortized
          per cell (trace load excluded; see {!run.load_s}) *)
}

type run = {
  header : Replay.Trace_file.header;
  events : int;
  bytes : int;
  load_s : float;
      (** host seconds for the one decoding pass (0 when every cell
          was memoized) *)
  cells : cell_result list;  (** in request order *)
}

val default_budgets : int list
val default_policies : Replay.Engine.policy list

val grid : ?budgets:int list -> ?policies:Replay.Engine.policy list -> unit -> cell list

val replay_cells :
  ?jobs:int ->
  ?chunk:int ->
  ?cache:bool ->
  ?expect:Toolchain.config ->
  trace:string ->
  cell list ->
  (run, string) result
(** Evaluate every cell against the recorded trace. [expect] asserts
    the trace was recorded under exactly that configuration
    ({!Toolchain.config_fingerprint}); a mismatch is an error, not a
    silent answer from the wrong recording. [jobs > 1] shards cells
    across forked workers in contiguous chunks of
    [Parallel.chunk_size] cells ([chunk] overrides the dynamic width);
    the parent decodes the trace once with
    {!Replay.Engine.load_cached} and workers inherit the decoded
    statistics over fork, so no worker re-decodes. Each chunk is one
    {!Replay.Engine.simulate_many} batch. Results are identical to a
    serial run. [cache:false] bypasses the memo. *)

val clear_cache : unit -> unit

type memo_stats = { hits : int; misses : int; stale : int }

val memo_stats : unit -> memo_stats
(** Cumulative memo behavior of {!replay_cells} since start (or
    {!reset_memo_stats}): cells served from the memo vs simulated
    ([~cache:false] counts every cell as a miss), plus replays refused
    because the trace fingerprint was stale. Jobs-independent: the
    hit/miss partition happens before any cell is dispatched. *)

val reset_memo_stats : unit -> unit

val verify_exact : Replay.Engine.loaded -> Toolchain.result -> string list
(** Check a loaded trace against the result of the run that recorded
    it (or any execution of the same configuration — the simulated
    results are engine- and observation-neutral): exact totals via
    {!Replay.Engine.exact}, every {!Msp430.Trace} counter, energy
    bit-for-bit, and the replayable runtime counters of whichever
    caching system ran. Returns human-readable mismatch descriptions;
    [[]] means the replay is exact. *)

(** {2 Bench driver} *)

type bench_entry = {
  b_benchmark : string;
  b_system : string;  (** "swapram" or "block" *)
  b_fingerprint : int;
  b_events : int;
  b_bytes : int;
  b_record_s : float;  (** recording run (reference engine + tap) *)
  b_exec_s : float;  (** fresh unobserved execution of the same cell *)
  b_load_s : float;
  b_exact_match : bool;
      (** replayed totals reproduced the recorded run's cycles,
          energy and every counter bit-for-bit *)
  b_exact_detail : string;  (** first mismatch, when [not b_exact_match] *)
  b_cells : cell_result list;
}

val bench :
  ?seed:int ->
  ?benchmarks:Workloads.Bench_def.t list ->
  ?budgets:int list ->
  ?policies:Replay.Engine.policy list ->
  ?jobs:int ->
  frequency:Msp430.Platform.frequency ->
  unit ->
  bench_entry list
(** The bench/report pipeline: for every benchmark x {swapram, block},
    record once into a temporary file, re-execute once unobserved (the
    speedup denominator), verify exact replay against the recorded
    run, then evaluate the model grid. Pairs whose image does not fit
    the system (several Table-2 benchmarks exceed the block cache's
    data limit) are skipped; a crash is still an error. One
    (benchmark x system) pair per worker when [jobs > 1]; traces are
    deleted afterwards. *)
