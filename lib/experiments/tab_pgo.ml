module Trace = Msp430.Trace
module Platform = Msp430.Platform
module Energy = Msp430.Energy

(* Profile-guided placement vs the default SwapRAM pipeline, per
   Table-2 benchmark: total cycles, energy and miss-handler entries
   before/after the train -> rebuild -> measure loop, plus the
   placement the pass chose (pinned / FRAM-resident counts). Shape to
   reproduce: pinning the hot set cuts cycles and energy on the
   miss-heavy benchmarks and never regresses the rest — the
   perf-regression gate enforces the "never regresses" half against
   bench/baseline.json. *)

type row = {
  benchmark : Workloads.Bench_def.t;
  default_cycles : int;
  default_energy_nj : float;
  default_misses : int;
  pgo_cycles : int option;  (** None = PGO run failed / did not fit *)
  pgo_energy_nj : float option;
  pgo_misses : int option;
  pinned : int;
  fram_resident : int;
  note : string option;  (** failure reason when the PGO run has no cells *)
}

type t = row list

let compute ?(seed = 1) ?benchmarks () =
  let sweep = Sweep.compute ~seed ?benchmarks ~frequency:Platform.Mhz24 () in
  let pgo = Sweep.compute_pgo ~seed ?benchmarks ~frequency:Platform.Mhz24 () in
  List.map
    (fun (e : Sweep.entry) ->
      let name = e.Sweep.benchmark.Workloads.Bench_def.name in
      let default_ =
        Report.expect_completed ~what:(name ^ " swapram") e.Sweep.swapram
      in
      let misses_of (r : Toolchain.result) =
        match r.Toolchain.swapram_stats with
        | Some s -> s.Swapram.Runtime.misses
        | None -> 0
      in
      let base =
        {
          benchmark = e.Sweep.benchmark;
          default_cycles = Trace.total_cycles default_.Toolchain.stats;
          default_energy_nj = default_.Toolchain.energy.Energy.energy_nj;
          default_misses = misses_of default_;
          pgo_cycles = None;
          pgo_energy_nj = None;
          pgo_misses = None;
          pinned = 0;
          fram_resident = 0;
          note = None;
        }
      in
      let entry =
        List.find_opt
          (fun (p : Sweep.pgo_entry) ->
            p.Sweep.pgo_benchmark.Workloads.Bench_def.name = name)
          pgo
      in
      match entry with
      | None -> { base with note = Some "not run" }
      | Some { Sweep.pgo = Error e; _ } -> { base with note = Some e }
      | Some { Sweep.pgo = Ok r; _ } -> (
          let placement = r.Toolchain.pg_placement in
          let counts =
            {
              base with
              pinned = List.length placement.Swapram.Pgo.pl_pinned;
              fram_resident =
                List.length placement.Swapram.Pgo.pl_fram_resident;
            }
          in
          match r.Toolchain.pg_measured with
          | Toolchain.Completed m ->
              {
                counts with
                pgo_cycles = Some (Trace.total_cycles m.Toolchain.stats);
                pgo_energy_nj = Some m.Toolchain.energy.Energy.energy_nj;
                pgo_misses = Some (misses_of m);
              }
          | Toolchain.Crashed o ->
              { counts with note = Some (Report.outcome_cell o) }
          | Toolchain.Did_not_fit msg -> { counts with note = Some msg }))
    sweep

let geo_mean_delta t ~get_default ~get_pgo =
  Report.geo_mean
    (List.filter_map
       (fun r ->
         match get_pgo r with
         | Some v when get_default r > 0.0 -> Some (v /. get_default r)
         | _ -> None)
       t)

let render t =
  let header =
    [ "benchmark"; "default cyc"; "pgo cyc"; "delta"; "default uJ"; "pgo uJ";
      "delta"; "misses"; "pgo misses"; "pinned"; "resident" ]
  in
  let uj nj = Printf.sprintf "%.1f" (nj /. 1000.0) in
  let rows =
    List.map
      (fun r ->
        match (r.pgo_cycles, r.pgo_energy_nj, r.pgo_misses) with
        | Some c, Some e, Some m ->
            [
              r.benchmark.Workloads.Bench_def.name;
              string_of_int r.default_cycles;
              string_of_int c;
              Report.pct ~vs:r.default_cycles c;
              uj r.default_energy_nj;
              uj e;
              Report.pctf ~vs:r.default_energy_nj e;
              string_of_int r.default_misses;
              string_of_int m;
              string_of_int r.pinned;
              string_of_int r.fram_resident;
            ]
        | _ ->
            [
              r.benchmark.Workloads.Bench_def.name;
              string_of_int r.default_cycles;
              (match r.note with Some n -> n | None -> "?");
              "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-";
            ])
      t
  in
  let cyc_ratio =
    geo_mean_delta t
      ~get_default:(fun r -> float_of_int r.default_cycles)
      ~get_pgo:(fun r -> Option.map float_of_int r.pgo_cycles)
  in
  let nrg_ratio =
    geo_mean_delta t
      ~get_default:(fun r -> r.default_energy_nj)
      ~get_pgo:(fun r -> r.pgo_energy_nj)
  in
  let improved =
    List.length
      (List.filter
         (fun r ->
           match (r.pgo_cycles, r.pgo_energy_nj) with
           | Some c, Some e ->
               c < r.default_cycles && e < r.default_energy_nj
           | _ -> false)
         t)
  in
  Report.heading
    "Profile-guided placement vs default SwapRAM (24 MHz, trained in-situ)"
  ^ Report.table ~aligns:[ Report.Left ] (header :: rows)
  ^ "\n"
  ^ Printf.sprintf
      "geo-mean deltas: cycles %+.2f%%, energy %+.2f%%; %d of %d benchmarks \
       improved on both\n"
      (100.0 *. (cyc_ratio -. 1.0))
      (100.0 *. (nrg_ratio -. 1.0))
      improved (List.length t)
