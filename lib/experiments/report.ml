(* Plain-text table rendering for the experiment reports. *)

type align = Left | Right

(* Render rows as aligned columns; the first row is the header. *)
let table ?(aligns = []) rows =
  match rows with
  | [] -> ""
  | header :: _ ->
      let ncols = List.length header in
      let widths = Array.make ncols 0 in
      List.iter
        (List.iteri (fun i cell ->
             if i < ncols then widths.(i) <- max widths.(i) (String.length cell)))
        rows;
      let align_of i =
        match List.nth_opt aligns i with Some a -> a | None -> Right
      in
      let pad i cell =
        let w = widths.(i) in
        let n = w - String.length cell in
        if n <= 0 then cell
        else
          match align_of i with
          | Left -> cell ^ String.make n ' '
          | Right -> String.make n ' ' ^ cell
      in
      let render_row row =
        String.concat "  " (List.mapi pad row)
      in
      let sep =
        String.concat "  "
          (Array.to_list (Array.map (fun w -> String.make w '-') widths))
      in
      (match rows with
      | h :: rest ->
          String.concat "\n" ((render_row h :: sep :: List.map render_row rest))
      | [] -> "")

let pct ~vs value =
  if vs = 0 then "n/a"
  else Printf.sprintf "%+.0f%%" (100.0 *. (float_of_int value /. float_of_int vs -. 1.0))

let pctf ~vs value =
  if vs = 0.0 then "n/a"
  else Printf.sprintf "%+.0f%%" (100.0 *. ((value /. vs) -. 1.0))

let ratio ~vs value =
  if vs = 0 then 0.0 else float_of_int value /. float_of_int vs

let millions v = Printf.sprintf "%.2f" (float_of_int v /. 1.0e6)

(* Geometric mean of ratios. *)
let geo_mean = function
  | [] -> 1.0
  | rs ->
      exp (List.fold_left (fun acc r -> acc +. log r) 0.0 rs /. float_of_int (List.length rs))

let heading title =
  let bar = String.make (String.length title) '=' in
  Printf.sprintf "%s\n%s\n" title bar

(* Table cell / error-message rendering for structured run outcomes,
   so every report and CLI surface describes failures the same way. *)
let outcome_cell o = Msp430.Cpu.outcome_name o

(* Most experiment tables only make sense for runs that halted
   cleanly; anything else is a harness bug worth failing loudly on. *)
let expect_completed ~what = function
  | Toolchain.Completed r -> r
  | Toolchain.Crashed o ->
      failwith (Printf.sprintf "%s: %s" what (outcome_cell o))
  | Toolchain.Did_not_fit msg ->
      failwith (Printf.sprintf "%s: does not fit: %s" what msg)
