(* Design-space exploration over the replay kernel.

   One grid point is (workload x SRAM budget x eviction policy x block
   size x frequency). The cache-model simulation is
   frequency-independent, so the expensive axis is only
   (budget x policy x block): one [Replay.Engine.simulate_many] sim
   fans out into one point per frequency by O(1) arithmetic in the
   parent. Sims are what gets parallelized, memoized and persisted;
   objectives and frontiers are always recomputed in the parent from
   the memoized sims, which is why serial, parallel and resumed runs
   are byte-identical by construction.

   The persistent memo store follows the campaign progress-file idiom:
   a magic line, then marshalled (key, sim) entries, appended as
   chunks complete and compacted on load so a torn trailing entry from
   a killed run never blocks future appends. Keys are derived from the
   trace *contents* (configuration fingerprint + event count) plus the
   model — never the file path — so a re-recorded or stale trace can
   never satisfy a cached cell (same staleness discipline as
   [Replay_sweep]'s in-memory memo). *)

module Engine = Replay.Engine
module Trace_file = Replay.Trace_file
module Energy = Msp430.Energy
module Platform = Msp430.Platform
module Progress = Observe.Progress
module Json = Observe.Json
module Costs = Swapram.Costs

(* --- Grid --------------------------------------------------------------- *)

type grid = {
  g_budgets : int list;
  g_policies : Engine.policy list;
  g_blocks : int option list;
      (* block-size axis; applied to line-granular (block-cache)
         traces only, normalized to multiples of the recorded slot *)
  g_frequencies : int list; (* MHz; 8 and 24 are the platform points *)
}

let range ~lo ~hi ~step =
  let rec go acc v = if v > hi then List.rev acc else go (v :: acc) (v + step) in
  go [] lo

(* 512 B..16 KiB in 32 B steps spans the paper's SRAM ladder densely
   enough that the default grid clears 20k points on the swapram
   workloads alone. *)
let default_grid =
  {
    g_budgets = range ~lo:512 ~hi:16384 ~step:32;
    g_policies = [ Engine.Lru; Engine.Lfu; Engine.Cost_aware ];
    g_blocks = [ None; Some 256; Some 512 ];
    g_frequencies = [ 8; 24 ];
  }

let validate_grid g =
  if g.g_budgets = [] || g.g_policies = [] || g.g_frequencies = [] then
    Error "dse: empty grid axis"
  else if List.exists (fun b -> b <= 0) g.g_budgets then
    Error "dse: budgets must be positive"
  else if
    List.exists (fun f -> f <> 8 && f <> 24) g.g_frequencies
  then Error "dse: frequencies must be 8 or 24 MHz"
  else Ok ()

(* --- Workloads ---------------------------------------------------------- *)

type workload = {
  w_benchmark : string;
  w_system : string; (* "swapram" or "block" *)
  w_trace : string;
  w_fingerprint : int;
  w_events : int;
  w_line_bytes : int option; (* Some slot for line-granular traces *)
}

let workload_name w = w.w_benchmark ^ "/" ^ w.w_system

let load_or_fail trace =
  match Engine.load_cached trace with
  | Ok l -> l
  | Error e -> failwith (Engine.error_message e)

let caching_of_system = function
  | "swapram" -> Ok (Toolchain.Swapram_cache Swapram.Config.default_options)
  | "block" -> Ok (Toolchain.Block_cache Blockcache.Config.default_options)
  | s -> Error (Printf.sprintf "dse: unknown system %s" s)

(* Record (or reuse) one trace per (benchmark x system) under [dir].
   A trace already on disk whose header fingerprint matches the
   expected configuration is reused without re-recording — that is
   what makes a resumed run with a persistent trace dir skip straight
   to the memo. Pairs whose image does not fit the system are skipped
   (the block cache rejects several Table-2 benchmarks); a crash is an
   error. *)
let record_workloads ?(seed = 1) ?benchmarks
    ?(systems = [ "swapram"; "block" ]) ?(frequency = Platform.Mhz8) ?jobs
    ?(progress = Progress.null) ~dir () =
  let benchmarks =
    match benchmarks with Some b -> b | None -> Workloads.Suite.all
  in
  let jobs = Sweep.resolve_jobs jobs in
  match
    List.fold_left
      (fun acc s ->
        match (acc, caching_of_system s) with
        | (Error _ as e), _ -> e
        | Ok l, Ok c -> Ok ((s, c) :: l)
        | Ok _, (Error _ as e) -> e)
      (Ok []) systems
  with
  | Error e -> Error e
  | Ok rev_systems -> (
      let systems = List.rev rev_systems in
      let pairs =
        List.concat_map
          (fun bd -> List.map (fun s -> (bd, s)) systems)
          benchmarks
      in
      let total = List.length pairs in
      let finished = ref 0 in
      let record_pair (bd, (system_name, caching)) =
        let config =
          { (Toolchain.default_config bd) with seed; frequency; caching }
        in
        let expected = Toolchain.config_fingerprint config in
        let trace =
          Filename.concat dir
            (Printf.sprintf "%s-%s.trace" bd.Workloads.Bench_def.short
               system_name)
        in
        let reusable =
          Sys.file_exists trace
          &&
          match Trace_file.read_header trace with
          | Ok h -> h.Trace_file.fingerprint = expected
          | Error _ -> false
        in
        if reusable then Some (bd.Workloads.Bench_def.name, system_name, trace)
        else
          match Toolchain.run_recorded ~trace config with
          | Toolchain.Completed _ ->
              Some (bd.Workloads.Bench_def.name, system_name, trace)
          | Toolchain.Did_not_fit _ -> None
          | Toolchain.Crashed o ->
              failwith
                (Printf.sprintf "dse: recording %s/%s crashed: %s"
                   bd.Workloads.Bench_def.name system_name
                   (Msp430.Cpu.outcome_name o))
      in
      match
        Observe.Telemetry.with_span ~cat:"dse" "record"
          ~args:[ ("pairs", Json.Int total) ]
          (fun () ->
            Parallel.map ~jobs
              ~on_event:(function
                | Parallel.Completed _ ->
                    incr finished;
                    progress
                      (Progress.Units_done
                         { label = "record"; finished = !finished; total })
                | _ -> ())
              record_pair pairs)
      with
      | exception Failure msg -> Error msg
      | exception Parallel.Worker_failed msg -> Error msg
      | recorded ->
          (* Decode each trace once here, in the parent: the events
             count pins the memo key, and every forked worker inherits
             the decoded statistics instead of re-decoding. *)
          let workloads =
            List.filter_map
              (Option.map (fun (bench, system, trace) ->
                   let l = load_or_fail trace in
                   {
                     w_benchmark = bench;
                     w_system = system;
                     w_trace = trace;
                     w_fingerprint =
                       l.Engine.header.Trace_file.fingerprint;
                     w_events = l.Engine.events;
                     w_line_bytes =
                       (match l.Engine.header.Trace_file.granularity with
                       | Trace_file.Lines n -> Some n
                       | Trace_file.Functions _ -> None);
                   }))
              recorded
          in
          if workloads = [] then Error "dse: no workload fit any system"
          else Ok workloads)

(* --- Points and objectives --------------------------------------------- *)

type objectives = {
  o_cycles : int;
  o_energy_nj : float;
  o_sram_bytes : int;
  o_nvm_bytes : int;
}

type point = {
  p_workload : string;
  p_budget : int;
  p_policy : string;
  p_block : int; (* effective block bytes; 0 for function-granular *)
  p_frequency_mhz : int;
  p_obj : objectives;
}

(* First-order objective model, documented in EXPERIMENTS.md.

   Cycles: the trace's exact retargeted cycles at the point's
   frequency, plus the modeled software-cache overhead of the
   simulated configuration — handler entry/exit per miss and, per
   copied word, the copy-loop instructions plus one wait-stated NVM
   read ({!Swapram.Costs} constants). The recorded runtime's own
   overhead is a workload-constant offset, identical across every cell
   of that workload, so within-workload dominance is unaffected.

   Energy: the platform energy model over the same cycle total with
   the fill traffic added to the NVM-read and SRAM-access counters.

   SRAM: the provisioned budget — the resource axis.

   NVM bytes: fill bytes loaded from NVM plus the recorded data writes
   (x2: byte width of a word write) — the wear/bandwidth axis. This
   code cache is read-only, so configuration-dependent NVM pressure is
   fill traffic, not program writes. *)
let objectives_of (l : Engine.loaded) ~frequency_mhz ~budget
    (sim : Engine.sim) =
  match Engine.exact ~frequency_mhz l with
  | Error msg -> failwith ("dse: " ^ msg)
  | Ok t ->
      let wait_states = t.Engine.t_wait_states in
      let params =
        if frequency_mhz = 8 then Energy.point_8mhz else Energy.point_24mhz
      in
      let words = (sim.Engine.s_bytes_loaded + 1) / 2 in
      let handler_instrs =
        sim.Engine.s_misses
        * (Costs.handler_entry_instrs + Costs.handler_exit_instrs)
      in
      let copy_instrs = words * Costs.memcpy_per_word_instrs in
      let cycles =
        t.Engine.t_cycles
        + (Costs.cycles_per_instr * (handler_instrs + copy_instrs))
        + (wait_states * words)
      in
      let report =
        Energy.evaluate_counts params ~cycles
          ~fram_read_misses:(t.Engine.t_fram_read_misses + words)
          ~fram_read_hits:l.Engine.fram_read_hits
          ~fram_writes:l.Engine.fram_writes
          ~sram_accesses:
            (l.Engine.sram_ifetch + l.Engine.sram_data_reads
            + l.Engine.sram_writes + words)
      in
      {
        o_cycles = cycles;
        o_energy_nj = report.Energy.energy_nj;
        o_sram_bytes = budget;
        o_nvm_bytes = sim.Engine.s_bytes_loaded + (2 * l.Engine.fram_writes);
      }

(* --- Pareto ------------------------------------------------------------- *)

(* [a] dominates [b]: no worse on every objective, strictly better on
   at least one (all four minimized). *)
let dominates a b =
  a.o_cycles <= b.o_cycles
  && a.o_energy_nj <= b.o_energy_nj
  && a.o_sram_bytes <= b.o_sram_bytes
  && a.o_nvm_bytes <= b.o_nvm_bytes
  && (a.o_cycles < b.o_cycles
     || a.o_energy_nj < b.o_energy_nj
     || a.o_sram_bytes < b.o_sram_bytes
     || a.o_nvm_bytes < b.o_nvm_bytes)

let obj_key o = (o.o_cycles, o.o_energy_nj, o.o_sram_bytes, o.o_nvm_bytes)

let point_key p =
  (p.p_workload, p.p_budget, p.p_policy, p.p_block, p.p_frequency_mhz)

(* Exact frontier: deduplicate identical objective vectors (keeping
   the canonically-smallest point, so the representative never depends
   on input order), sort lexicographically over the objective vector
   (a dominator is componentwise <= with one strict <, hence always
   lex-before its dominated point once equals are gone), then keep
   each point not dominated by a kept one — transitivity makes
   checking kept points sufficient. O(n log n + n * frontier). Output
   is canonically ordered, so the frontier is a pure function of the
   point *set*. *)
let pareto points =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun p ->
      let k = obj_key p.p_obj in
      match Hashtbl.find_opt tbl k with
      | Some q when point_key q <= point_key p -> ()
      | _ -> Hashtbl.replace tbl k p)
    points;
  let pts = Hashtbl.fold (fun _ p acc -> p :: acc) tbl [] in
  let cmp a b =
    let c = compare (obj_key a.p_obj) (obj_key b.p_obj) in
    if c <> 0 then c else compare (point_key a) (point_key b)
  in
  let pts = List.sort cmp pts in
  let kept = ref [] in
  List.iter
    (fun p ->
      if not (List.exists (fun q -> dominates q.p_obj p.p_obj) !kept) then
        kept := p :: !kept)
    pts;
  List.rev !kept

(* --- Persistent memo store --------------------------------------------- *)

let store_magic = "swapram-dse-memo/1"

type sim_key = {
  sk_fingerprint : int;
  sk_events : int;
  sk_budget : int;
  sk_policy : string;
  sk_block : int;
}

let write_entry oc (key : sim_key) (s : Engine.sim) =
  Marshal.to_channel oc (key, s) []

(* Load-and-compact, exactly the campaign checkpoint discipline. The
   store is grid-independent (no plan fingerprint in the header):
   entries from unrelated grids coexist and a later, larger grid
   extends the store incrementally. *)
let open_store path =
  let cache : (sim_key, Engine.sim) Hashtbl.t = Hashtbl.create 4096 in
  let fresh () =
    let oc =
      open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644
        path
    in
    output_string oc (store_magic ^ "\n");
    flush oc;
    Ok (cache, oc)
  in
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    match input_line ic with
    | exception End_of_file ->
        close_in ic;
        fresh ()
    | magic when magic <> store_magic ->
        close_in ic;
        Error (Printf.sprintf "memo store %s: not a dse memo store" path)
    | _ ->
        (try
           while true do
             let (key : sim_key), (s : Engine.sim) = Marshal.from_channel ic in
             Hashtbl.replace cache key s
           done
         with End_of_file | Failure _ -> ());
        close_in ic;
        let oc =
          open_out_gen
            [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
            0o644 path
        in
        output_string oc (store_magic ^ "\n");
        Hashtbl.iter (fun k s -> write_entry oc k s) cache;
        flush oc;
        Ok (cache, oc)
  end
  else fresh ()

(* --- Evaluation --------------------------------------------------------- *)

type frontier = {
  f_workload : string;
  f_points : int;
  f_frontier : point list;
}

type outcome = {
  d_workloads : workload list;
  d_points_total : int;
  d_sims_total : int;
  d_sims_computed : int;
  d_sims_cached : int;
  d_sims_collapsed : int;
      (* of the computed sims, how many LRU cells the all-budget
         stack kernel absorbed instead of an individual cache pass *)
  d_frontiers : frontier list; (* per workload, workload input order *)
  d_global_frontier : point list;
  d_eval_s : float; (* wall-clock: simulate + frontier phase *)
  d_points_per_s : float;
}

(* Per-workload model axis: normalize the block axis to multiples of
   the recorded slot ([None] = the slot itself) and deduplicate, so
   two requested block sizes that merge to the same factor cost one
   sim, not two. Function-granular traces have no block axis. *)
let effective_blocks g w =
  match w.w_line_bytes with
  | None -> [ 0 ]
  | Some slot ->
      List.map
        (function
          | None -> slot
          | Some b -> max 1 (b / slot) * slot)
        g.g_blocks
      |> List.sort_uniq compare

(* Policy-major, then block, then budget: a workload's models form
   contiguous same-(policy, block) budget ladders, so the contiguous
   chunks cut for the worker pool hand [simulate_many] whole LRU
   ladders it can collapse into single stack-kernel passes. Frontiers
   are canonical (order-invariant), so enumeration order is free to
   serve the batcher. *)
let models_for g w =
  List.concat_map
    (fun policy ->
      List.concat_map
        (fun block ->
          List.map
            (fun budget ->
              {
                Engine.m_budget = budget;
                m_policy = policy;
                m_block = (if block = 0 then None else Some block);
              })
            g.g_budgets)
        (effective_blocks g w))
    g.g_policies

let key_of w (m : Engine.model) =
  {
    sk_fingerprint = w.w_fingerprint;
    sk_events = w.w_events;
    sk_budget = m.Engine.m_budget;
    sk_policy = Engine.policy_name m.Engine.m_policy;
    sk_block = (match m.Engine.m_block with None -> 0 | Some b -> b);
  }

let run ?jobs ?chunk ?(progress = Progress.null) ?store grid workloads =
  match validate_grid grid with
  | Error _ as e -> e
  | Ok () -> (
      let jobs = Sweep.resolve_jobs jobs in
      match
        match store with
        | None -> Ok (Hashtbl.create 4096, None)
        | Some path -> (
            match open_store path with
            | Ok (cache, oc) -> Ok (cache, Some oc)
            | Error _ as e -> e)
      with
      | Error e -> Error e
      | Ok (cache, append) -> (
          (* Staleness gate: each workload's on-disk trace must still
             carry the fingerprint it was planned with. *)
          let stale =
            List.find_map
              (fun w ->
                match Trace_file.read_header w.w_trace with
                | Error e ->
                    Some
                      (Printf.sprintf "dse: %s: %s" (workload_name w)
                         (Trace_file.error_message e))
                | Ok h when h.Trace_file.fingerprint <> w.w_fingerprint ->
                    Some
                      (Printf.sprintf
                         "dse: %s: stale trace (fingerprint %d, planned %d)"
                         (workload_name w) h.Trace_file.fingerprint
                         w.w_fingerprint)
                | Ok _ -> None)
              workloads
          in
          match stale with
          | Some e ->
              (match append with Some oc -> close_out oc | None -> ());
              Error e
          | None -> (
              let t0 = Unix.gettimeofday () in
              let per_workload =
                List.map (fun w -> (w, models_for grid w)) workloads
              in
              let nfreq = List.length grid.g_frequencies in
              let sims_total =
                List.fold_left
                  (fun acc (_, ms) -> acc + List.length ms)
                  0 per_workload
              in
              let points_total = sims_total * nfreq in
              (* Partition against the store; only missing sims are
                 dispatched. *)
              let missing =
                List.concat_map
                  (fun (w, ms) ->
                    List.filter_map
                      (fun m ->
                        if Hashtbl.mem cache (key_of w m) then None
                        else Some (w, m))
                      ms)
                  per_workload
              in
              let sims_computed = List.length missing in
              let sims_cached = sims_total - sims_computed in
              Observe.Telemetry.counter "dse.sims_computed" sims_computed;
              Observe.Telemetry.counter "dse.sims_cached" sims_cached;
              progress
                (Progress.Units_done
                   {
                     label = "dse";
                     finished = sims_cached;
                     total = sims_total;
                   });
              (* Chunk the missing (workload, model) pairs — contiguous,
                 so each chunk stays within few workloads and the
                 worker-side [load_cached] hit rate stays high (the
                 parent already decoded every trace; fork inherits). *)
              let cwidth = Parallel.chunk_size ?chunk ~jobs sims_computed in
              let tasks =
                let arr = Array.of_list missing in
                let n = Array.length arr in
                List.init
                  ((n + cwidth - 1) / cwidth)
                  (fun i ->
                    let lo = i * cwidth in
                    Array.sub arr lo (min cwidth (n - lo)))
              in
              let sizes =
                Array.of_list (List.map Array.length tasks)
              in
              let finished = ref sims_cached in
              let on_pool ev =
                (match ev with
                | Parallel.Completed { task; _ } ->
                    finished := !finished + sizes.(task);
                    progress
                      (Progress.Units_done
                         {
                           label = "dse";
                           finished = !finished;
                           total = sims_total;
                         })
                | _ -> ());
                match ev with
                | Parallel.Dispatched { pid; task } ->
                    progress
                      (Progress.Worker_state
                         { pid; state = Progress.W_busy; task })
                | Parallel.Completed { pid; task } ->
                    progress
                      (Progress.Worker_state
                         { pid; state = Progress.W_idle; task })
                | Parallel.Spawned { pid } ->
                    progress
                      (Progress.Worker_state
                         { pid; state = Progress.W_spawned; task = -1 })
                | Parallel.Died { pid; task; _ } ->
                    progress
                      (Progress.Worker_state
                         { pid; state = Progress.W_died; task })
                | Parallel.Timed_out { pid; task } ->
                    progress
                      (Progress.Worker_state
                         { pid; state = Progress.W_timed_out; task })
                | Parallel.Requeued _ -> ()
              in
              (* One chunk = one [simulate_many_collapsed] batch per
                 workload segment within it. The chunk's collapsed-sim
                 count rides back through the result pipe: it is
                 tallied inside the (possibly forked) worker, where a
                 parent-side counter would never see it. *)
              let eval_chunk chunk =
                let n = Array.length chunk in
                let out = Array.make n None in
                let ncollapsed = ref 0 in
                let i = ref 0 in
                while !i < n do
                  let w, _ = chunk.(!i) in
                  let j = ref !i in
                  while
                    !j < n && (fst chunk.(!j)).w_trace = w.w_trace
                  do
                    incr j
                  done;
                  let l = load_or_fail w.w_trace in
                  let ms =
                    List.init (!j - !i) (fun k -> snd chunk.(!i + k))
                  in
                  let sims, collapsed = Engine.simulate_many_collapsed l ms in
                  List.iteri (fun k s -> out.(!i + k) <- Some s) sims;
                  ncollapsed := !ncollapsed + collapsed;
                  i := !j
                done;
                (Array.map Option.get out, !ncollapsed)
              in
              match
                Observe.Telemetry.with_span ~cat:"dse" "simulate"
                  ~args:
                    [
                      ("sims", Json.Int sims_computed);
                      ("jobs", Json.Int jobs);
                      ("chunk", Json.Int cwidth);
                    ]
                  (fun () ->
                    if tasks = [] then []
                    else
                      Parallel.map_robust ~jobs ~on_event:on_pool eval_chunk
                        tasks)
              with
              | exception Failure msg ->
                  (match append with Some oc -> close_out oc | None -> ());
                  Error msg
              | exception Parallel.Worker_failed msg ->
                  (match append with Some oc -> close_out oc | None -> ());
                  Error msg
              | results ->
                  List.iter2
                    (fun chunk (sims, _) ->
                      Array.iteri
                        (fun k s ->
                          let w, m = chunk.(k) in
                          let key = key_of w m in
                          Hashtbl.replace cache key s;
                          match append with
                          | Some oc -> write_entry oc key s
                          | None -> ())
                        sims)
                    tasks results;
                  let sims_collapsed =
                    List.fold_left (fun acc (_, c) -> acc + c) 0 results
                  in
                  Observe.Telemetry.counter "dse.sims_collapsed"
                    sims_collapsed;
                  (match append with
                  | Some oc ->
                      flush oc;
                      close_out oc
                  | None -> ());
                  (* Fan sims out into points and frontiers, entirely
                     in the parent. *)
                  let frontiers, all_points =
                    Observe.Telemetry.with_span ~cat:"dse" "frontier"
                      ~args:[ ("points", Json.Int points_total) ]
                      (fun () ->
                        let acc_all = ref [] in
                        let fronts =
                          List.map
                            (fun (w, ms) ->
                              let l = load_or_fail w.w_trace in
                              let name = workload_name w in
                              let pts =
                                List.concat_map
                                  (fun (m : Engine.model) ->
                                    let sim =
                                      Hashtbl.find cache (key_of w m)
                                    in
                                    List.map
                                      (fun freq ->
                                        {
                                          p_workload = name;
                                          p_budget = m.Engine.m_budget;
                                          p_policy =
                                            Engine.policy_name
                                              m.Engine.m_policy;
                                          p_block =
                                            (match m.Engine.m_block with
                                            | None -> 0
                                            | Some b -> b);
                                          p_frequency_mhz = freq;
                                          p_obj =
                                            objectives_of l
                                              ~frequency_mhz:freq
                                              ~budget:m.Engine.m_budget sim;
                                        })
                                      grid.g_frequencies)
                                  ms
                              in
                              acc_all := List.rev_append pts !acc_all;
                              {
                                f_workload = name;
                                f_points = List.length pts;
                                f_frontier = pareto pts;
                              })
                            per_workload
                        in
                        (fronts, !acc_all))
                  in
                  let eval_s = Unix.gettimeofday () -. t0 in
                  Ok
                    {
                      d_workloads = workloads;
                      d_points_total = points_total;
                      d_sims_total = sims_total;
                      d_sims_computed = sims_computed;
                      d_sims_cached = sims_cached;
                      d_sims_collapsed = sims_collapsed;
                      d_frontiers = frontiers;
                      d_global_frontier = pareto all_points;
                      d_eval_s = eval_s;
                      d_points_per_s =
                        (if eval_s > 0.0 then
                           float_of_int points_total /. eval_s
                         else 0.0);
                    })))

(* --- JSON --------------------------------------------------------------- *)

let point_json p =
  Json.Obj
    [
      ("workload", Json.String p.p_workload);
      ("budget", Json.Int p.p_budget);
      ("policy", Json.String p.p_policy);
      ("block", Json.Int p.p_block);
      ("frequency_mhz", Json.Int p.p_frequency_mhz);
      ("cycles", Json.Int p.p_obj.o_cycles);
      ("energy_nj", Json.Float p.p_obj.o_energy_nj);
      ("sram_bytes", Json.Int p.p_obj.o_sram_bytes);
      ("nvm_bytes", Json.Int p.p_obj.o_nvm_bytes);
    ]

let grid_json g =
  Json.Obj
    [
      ("budgets", Json.List (List.map (fun b -> Json.Int b) g.g_budgets));
      ( "policies",
        Json.List
          (List.map
             (fun p -> Json.String (Engine.policy_name p))
             g.g_policies) );
      ( "blocks",
        Json.List
          (List.map
             (function None -> Json.Int 0 | Some b -> Json.Int b)
             g.g_blocks) );
      ( "frequencies_mhz",
        Json.List (List.map (fun f -> Json.Int f) g.g_frequencies) );
    ]

(* The deterministic members (grid, counts, frontiers) are identical
   for serial, parallel and resumed runs; [eval_s] / [points_per_s]
   are host wall-clock and are stripped from slim reports and from
   [Bench_report.deterministic_view]. *)
let json ?(slim = false) grid outcome =
  let base =
    [
      ("grid", grid_json grid);
      ( "workloads",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("workload", Json.String f.f_workload);
                   ("points", Json.Int f.f_points);
                   ("frontier_points", Json.Int (List.length f.f_frontier));
                   ("frontier", Json.List (List.map point_json f.f_frontier));
                 ])
             outcome.d_frontiers) );
      ( "global_frontier",
        Json.List (List.map point_json outcome.d_global_frontier) );
      ("points_total", Json.Int outcome.d_points_total);
      ("sims_total", Json.Int outcome.d_sims_total);
    ]
  in
  (* Provenance counters are a property of the run (how warm the memo
     store was), not of the design space — like the wall-clock members
     they would break byte-identity between fresh and resumed runs, so
     they live outside the deterministic (slim) view. *)
  let wall =
    if slim then []
    else
      [
        ("sims_computed", Json.Int outcome.d_sims_computed);
        ("sims_cached", Json.Int outcome.d_sims_cached);
        ("sims_collapsed", Json.Int outcome.d_sims_collapsed);
        ("eval_s", Json.Float outcome.d_eval_s);
        ("points_per_s", Json.Float outcome.d_points_per_s);
      ]
  in
  Json.Obj (base @ wall)
