(** Fork-based worker pool for sharding independent experiment cells
    across host cores.

    Each task is computed in a forked child of the current process
    (same binary, same loaded code), so task closures and results may
    contain functional values; results travel back over a pipe via
    [Marshal] with [Closures]. The parent hands out tasks dynamically
    (one outstanding task per worker) and reassembles results in input
    order, so a parallel map is deterministic: same inputs, same
    output list, independent of worker count and scheduling.

    Simulated results are bit-identical to a serial run by
    construction — each cell is a pure function of its inputs computed
    by an isolated process. Only host-side timings differ. *)

val ncores : unit -> int
(** Number of online cores, parsed from /proc/cpuinfo; 1 when it
    cannot be determined. *)

exception Worker_failed of string
(** A task raised in its worker (carrying [Printexc.to_string] of the
    original), or a worker died without delivering a result. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs] computed by up to [jobs]
    forked workers. [jobs] defaults to 1; values [<= 1], a singleton
    or empty [xs] degrade to plain [List.map] in-process (no fork).
    Tasks are dispatched dynamically in list order; results are
    returned in list order regardless of completion order. *)
