(** Fork-based worker pool for sharding independent experiment cells
    across host cores.

    Each task is computed in a forked child of the current process
    (same binary, same loaded code), so task closures and results may
    contain functional values; results travel back over a pipe via
    [Marshal] with [Closures]. The parent hands out tasks dynamically
    (one outstanding task per worker) and reassembles results in input
    order, so a parallel map is deterministic: same inputs, same
    output list, independent of worker count and scheduling.

    Simulated results are bit-identical to a serial run by
    construction — each cell is a pure function of its inputs computed
    by an isolated process. Only host-side timings differ. *)

val ncores : unit -> int
(** Number of online cores, parsed from /proc/cpuinfo; 1 when it
    cannot be determined. *)

exception Worker_failed of string
(** A task raised in its worker (carrying [Printexc.to_string] of the
    original), or a task was given up after its retry budget. *)

val in_worker : unit -> bool
(** True inside a forked worker process. Chaos tasks that deliberately
    kill their own process must check this so the serial in-process
    degradation of {!map}/{!map_robust} is never killed. *)

(** Pool lifecycle notifications, for campaign progress reporting.
    Purely observational: handlers see aggregate facts only and cannot
    influence scheduling or results. The same stream (plus per-worker
    records and queue-depth counters) is mirrored to the
    {!Observe.Telemetry} ledger when one is enabled. *)
type event =
  | Spawned of { pid : int }
  | Dispatched of { pid : int; task : int }
      (** a task was handed to a worker (serial degradation reports
          the current process's pid) *)
  | Completed of { pid : int; task : int }
      (** the worker delivered the task's result *)
  | Died of { pid : int; task : int; attempt : int }
      (** a worker crashed mid-task; the task will be re-queued *)
  | Timed_out of { pid : int; task : int }
      (** the task exceeded [task_timeout]; worker killed *)
  | Requeued of { task : int; attempt : int; delay : float }
      (** re-execution scheduled after [delay] seconds of backoff *)

val map :
  ?jobs:int -> ?on_event:(event -> unit) -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs] computed by up to [jobs]
    forked workers. [jobs] defaults to 1; values [<= 1], a singleton
    or empty [xs] degrade to plain [List.map] in-process (no fork).
    Tasks are dispatched dynamically in list order; results are
    returned in list order regardless of completion order. Strict: a
    worker death raises {!Worker_failed} (it is {!map_robust} with a
    zero retry budget). *)

val map_robust :
  ?jobs:int ->
  ?task_timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?on_event:(event -> unit) ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** Self-healing {!map} for overnight campaigns: a worker that crashes
    (or exceeds the [task_timeout] host-seconds deadline, when given)
    is disposed of — both pipe ends closed, killed if needed, reaped —
    and its task is re-queued with exponential backoff ([backoff] *
    2^(attempt-1) seconds, default 0.05) against a freshly spawned
    worker, up to [retries] re-executions per task (default 3), after
    which {!Worker_failed} is raised. A task that raises an exception
    fails immediately — same binary, same input, so the failure is
    deterministic and re-running cannot help. Every worker leaving the
    pool is reaped, so no fds or zombies leak regardless of how the
    map ends. Determinism: results are assembled by task index, so a
    completed map equals the serial [List.map] regardless of crashes,
    retries or scheduling. *)

val chunk_size : ?chunk:int -> jobs:int -> int -> int
(** The chunk width {!map_chunked} will use for [n] tasks: [chunk]
    when given (clamped to [1..n]), otherwise a dynamic size aiming
    for ~4 chunks per worker, capped at 256 items so one reply frame
    stays bounded and a crashed worker forfeits bounded progress.
    Exposed so callers that build their own chunk tasks (the DSE
    engine groups cells by workload first) share the policy. *)

val map_chunked :
  ?jobs:int ->
  ?chunk:int ->
  ?task_timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?on_event:(event -> unit) ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** {!map_robust} with chunked dispatch: tasks are grouped into
    contiguous chunks of {!chunk_size} items and each chunk is one
    pool task — one pipe round trip and one [Marshal] frame per chunk
    instead of per item, which is what keeps sub-millisecond cells
    (replay simulation points) from drowning in protocol overhead.
    Self-healing semantics are inherited at chunk granularity: a
    crashed worker re-queues its whole chunk, a raising task fails the
    map. [on_event] task indices refer to chunks, not items. The
    result equals [List.map f xs] for every chunk size, worker count
    and crash schedule — input-order merge is preserved by the
    index-keyed reassembly underneath. *)
