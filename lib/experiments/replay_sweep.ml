(* Record-once / replay-many sweep cells, plus the shared
   exact-replay verifier.

   The memo key is derived from the trace *contents* — the header's
   configuration fingerprint and the event count — plus the full
   replay model. Keying by path would let a stale or rewritten trace
   file satisfy a memoized cell recorded under a different
   configuration; keying by fingerprint makes that structurally
   impossible (the regression test overwrites a trace in place and
   asserts the memo misses). *)

module Engine = Replay.Engine
module Trace_file = Replay.Trace_file

type cell = { c_budget : int; c_policy : Engine.policy; c_block : int option }

type cell_result = { r_cell : cell; r_sim : Engine.sim; r_host_s : float }

type run = {
  header : Trace_file.header;
  events : int;
  bytes : int;
  load_s : float;
  cells : cell_result list;
}

(* MRC-style budget ladder around the 4 KiB SRAM of the reference
   part: half the paper's sweep range below it, hypothetical larger
   SRAMs above. One trace load amortizes across the whole grid. *)
let default_budgets =
  [ 512; 768; 1024; 1536; 2048; 2560; 3072; 4096; 5120; 6144; 8192; 12288 ]
let default_policies = [ Engine.Lru; Engine.Lfu; Engine.Cost_aware ]

let grid ?(budgets = default_budgets) ?(policies = default_policies) () =
  List.concat_map
    (fun b ->
      List.map (fun p -> { c_budget = b; c_policy = p; c_block = None }) policies)
    budgets

(* --- Memo -------------------------------------------------------------- *)

type memo_key = {
  k_fingerprint : int;
  k_events : int;
  k_budget : int;
  k_policy : string;
  k_block : int option;
}

let memo : (memo_key, cell_result) Hashtbl.t = Hashtbl.create 64

let key_of ~fingerprint ~events cell =
  {
    k_fingerprint = fingerprint;
    k_events = events;
    k_budget = cell.c_budget;
    k_policy = Engine.policy_name cell.c_policy;
    k_block = cell.c_block;
  }

let clear_cache () = Hashtbl.reset memo

(* Memo accounting: hit = cell served from the memo, miss = cell
   simulated ([~cache:false] counts every cell as a miss), stale =
   replay refused because the trace fingerprint no longer matches the
   expected configuration. *)
type memo_stats = { hits : int; misses : int; stale : int }

let memo_hits = ref 0
let memo_misses = ref 0
let memo_stale = ref 0

let memo_stats () =
  { hits = !memo_hits; misses = !memo_misses; stale = !memo_stale }

let reset_memo_stats () =
  memo_hits := 0;
  memo_misses := 0;
  memo_stale := 0

(* --- Cell evaluation --------------------------------------------------- *)

let sim_cell loaded cell =
  let sim, host_s =
    Sweep.timed (fun () ->
        Engine.simulate loaded
          {
            Engine.m_budget = cell.c_budget;
            m_policy = cell.c_policy;
            m_block = cell.c_block;
          })
  in
  { r_cell = cell; r_sim = sim; r_host_s = host_s }

let load_or_fail trace =
  match Engine.load_cached trace with
  | Ok l -> l
  | Error e -> failwith (Engine.error_message e)

let model_of c =
  { Engine.m_budget = c.c_budget; m_policy = c.c_policy; m_block = c.c_block }

(* Batched evaluation: one [simulate_many] call over the whole list,
   so the reference stream is pre-bucketed once per block size and the
   residency arrays are reused across cells. Host time is measured
   around the batch and amortized per cell (individual per-cell timing
   is the bench driver's job, which still calls [sim_cell]). *)
let sim_batch loaded cells =
  let sims, batch_s =
    Sweep.timed (fun () -> Engine.simulate_many loaded (List.map model_of cells))
  in
  let per =
    match cells with
    | [] -> 0.0
    | _ -> batch_s /. float_of_int (List.length cells)
  in
  List.map2 (fun c s -> { r_cell = c; r_sim = s; r_host_s = per }) cells sims

(* Evaluate [cells] against [trace], sharded into contiguous chunks of
   [Parallel.chunk_size] cells. The parent decodes the trace once
   ([Engine.load_cached]); forked workers inherit that cache entry, so
   no worker re-decodes — each chunk is a pure [simulate_many] batch. *)
let eval_cells ?chunk ~jobs ~trace cells =
  let n = List.length cells in
  let jobs = max 1 (min jobs n) in
  let loaded, load_s =
    Observe.Telemetry.with_span ~cat:"replay" "load" (fun () ->
        Sweep.timed (fun () -> load_or_fail trace))
  in
  if jobs <= 1 then (load_s, sim_batch loaded cells)
  else begin
    let c = Parallel.chunk_size ?chunk ~jobs n in
    let arr = Array.of_list cells in
    let nchunks = (n + c - 1) / c in
    let chunks =
      List.init nchunks (fun i ->
          let lo = i * c in
          Array.to_list (Array.sub arr lo (min c (n - lo))))
    in
    let results =
      Parallel.map ~jobs
        (fun chunk -> sim_batch (load_or_fail trace) chunk)
        chunks
    in
    (load_s, List.concat results)
  end

let replay_cells ?jobs ?chunk ?(cache = true) ?expect ~trace cells =
  let jobs = Sweep.resolve_jobs jobs in
  match Trace_file.read_header trace with
  | Error e -> Error (Trace_file.error_message e)
  | Ok header -> (
      let stale_check =
        match expect with
        | None -> Ok ()
        | Some config ->
            let expected = Toolchain.config_fingerprint config in
            if expected = header.Trace_file.fingerprint then Ok ()
            else
              Error
                (Printf.sprintf
                   "stale trace: %s records fingerprint %d, expected \
                    configuration has %d — re-record before replaying"
                   trace header.Trace_file.fingerprint expected)
      in
      match stale_check with
      | Error _ as e ->
          incr memo_stale;
          Observe.Telemetry.counter "replay.memo_stale" !memo_stale;
          e
      | Ok () -> (
          (* The memo key needs the event count, which lives past the
             header; fetch it (and bytes) with a cheap full decode only
             if some cell misses — a fully-memoized replay should not
             re-read a large file. The count is already known if any
             cell was computed before under this fingerprint. *)
          match
            let fingerprint = header.Trace_file.fingerprint in
            let probe_events () =
              (* [load_cached]: the decode this probe pays is the same
                 one [eval_cells] will reuse for every missing cell. *)
              let l = load_or_fail trace in
              (l.Engine.events, l.Engine.bytes)
            in
            let events, bytes =
              if not cache then probe_events ()
              else
                (* any memo entry under this fingerprint pins the count *)
                match
                  Hashtbl.fold
                    (fun k _ acc ->
                      if k.k_fingerprint = fingerprint then Some k.k_events
                      else acc)
                    memo None
                with
                | Some ev -> (ev, 0)
                | None -> probe_events ()
            in
            let hit, missing =
              if not cache then ([], cells)
              else
                List.partition_map
                  (fun c ->
                    match
                      Hashtbl.find_opt memo (key_of ~fingerprint ~events c)
                    with
                    | Some r -> Either.Left (c, r)
                    | None -> Either.Right c)
                  cells
            in
            memo_hits := !memo_hits + List.length hit;
            memo_misses := !memo_misses + List.length missing;
            Observe.Telemetry.counter "replay.memo_hits" !memo_hits;
            Observe.Telemetry.counter "replay.memo_misses" !memo_misses;
            let load_s, computed =
              if missing = [] then (0.0, [])
              else
                Observe.Telemetry.with_span ~cat:"replay" "cells"
                  ~args:
                    [
                      ("cells", Observe.Json.Int (List.length missing));
                      ("jobs", Observe.Json.Int jobs);
                    ]
                  (fun () -> eval_cells ?chunk ~jobs ~trace missing)
            in
            if cache then
              List.iter
                (fun r ->
                  Hashtbl.replace memo
                    (key_of ~fingerprint ~events r.r_cell)
                    r)
                computed;
            let tbl = Hashtbl.create (List.length cells) in
            List.iter (fun (c, r) -> Hashtbl.replace tbl c r) hit;
            List.iter (fun r -> Hashtbl.replace tbl r.r_cell r) computed;
            {
              header;
              events;
              bytes;
              load_s;
              cells = List.map (fun c -> Hashtbl.find tbl c) cells;
            }
          with
          | run -> Ok run
          | exception Failure msg -> Error msg
          | exception Parallel.Worker_failed msg -> Error msg))

(* --- Exact-replay verification ----------------------------------------- *)

let verify_exact (l : Engine.loaded) (res : Toolchain.result) =
  let errs = ref [] in
  let chk name replayed executed =
    if replayed <> executed then
      errs :=
        Printf.sprintf "%s: executed %d, replayed %d" name executed replayed
        :: !errs
  in
  let chkf name replayed executed =
    (* bit-for-bit: same counts through the same float pipeline *)
    if replayed <> executed then
      errs :=
        Printf.sprintf "%s: executed %.17g, replayed %.17g" name executed
          replayed
        :: !errs
  in
  let stats = res.Toolchain.stats in
  (match Engine.exact l with
  | Error msg -> errs := ("exact replay: " ^ msg) :: !errs
  | Ok t ->
      chk "unstalled cycles" t.Engine.t_unstalled
        stats.Msp430.Trace.unstalled_cycles;
      chk "stall cycles" t.Engine.t_stall stats.Msp430.Trace.stall_cycles;
      chk "total cycles" t.Engine.t_cycles (Msp430.Trace.total_cycles stats);
      chkf "energy_nj" t.Engine.t_energy_nj
        res.Toolchain.energy.Msp430.Energy.energy_nj;
      chkf "time_s" t.Engine.t_time_s res.Toolchain.energy.Msp430.Energy.time_s);
  chk "instructions" l.Engine.instructions stats.Msp430.Trace.instructions;
  Array.iteri
    (fun i n ->
      chk
        (Printf.sprintf "instructions[%s]"
           (Msp430.Trace.source_name
              (List.nth
                 [
                   Msp430.Trace.App_fram;
                   Msp430.Trace.App_sram;
                   Msp430.Trace.Handler;
                   Msp430.Trace.Memcpy;
                 ]
                 i)))
        n
        stats.Msp430.Trace.instr_by_source.(i))
    l.Engine.by_source;
  chk "fram_ifetch" l.Engine.fram_ifetch stats.Msp430.Trace.fram_ifetch;
  chk "fram_data_reads" l.Engine.fram_data_reads
    stats.Msp430.Trace.fram_data_reads;
  chk "fram_read_hits" l.Engine.fram_read_hits
    stats.Msp430.Trace.fram_read_hits;
  chk "fram_writes" l.Engine.fram_writes stats.Msp430.Trace.fram_writes;
  chk "sram_ifetch" l.Engine.sram_ifetch stats.Msp430.Trace.sram_ifetch;
  chk "sram_data_reads" l.Engine.sram_data_reads
    stats.Msp430.Trace.sram_data_reads;
  chk "sram_writes" l.Engine.sram_writes stats.Msp430.Trace.sram_writes;
  chk "periph_accesses" l.Engine.periph_accesses
    stats.Msp430.Trace.periph_accesses;
  (match res.Toolchain.swapram_stats with
  | None -> ()
  | Some s ->
      let rc = l.Engine.runtime in
      chk "swapram misses" rc.Engine.rc_misses s.Swapram.Runtime.misses;
      chk "swapram evictions" rc.Engine.rc_evictions
        s.Swapram.Runtime.evictions;
      chk "swapram aborts" rc.Engine.rc_aborts s.Swapram.Runtime.aborts;
      chk "swapram frozen" rc.Engine.rc_frozen s.Swapram.Runtime.frozen_misses;
      chk "swapram too_large" rc.Engine.rc_too_large
        s.Swapram.Runtime.too_large;
      chk "swapram prefetches" rc.Engine.rc_prefetches
        s.Swapram.Runtime.prefetches);
  (match res.Toolchain.block_stats with
  | None -> ()
  | Some s ->
      let rc = l.Engine.runtime in
      chk "block misses" rc.Engine.rc_misses s.Blockcache.Runtime.misses;
      chk "block loads" rc.Engine.rc_block_loads
        s.Blockcache.Runtime.block_loads;
      chk "block flushes" rc.Engine.rc_flushes s.Blockcache.Runtime.flushes;
      chk "block returns" rc.Engine.rc_returns s.Blockcache.Runtime.returns);
  List.rev !errs

(* --- Bench driver ------------------------------------------------------ *)

type bench_entry = {
  b_benchmark : string;
  b_system : string;
  b_fingerprint : int;
  b_events : int;
  b_bytes : int;
  b_record_s : float;
  b_exec_s : float;
  b_load_s : float;
  b_exact_match : bool;
  b_exact_detail : string;
  b_cells : cell_result list;
}

let bench_pair ~seed ~frequency ~cells (bd, system_name) =
  let caching =
    match system_name with
    | "swapram" -> Toolchain.Swapram_cache Swapram.Config.default_options
    | "block" -> Toolchain.Block_cache Blockcache.Config.default_options
    | s -> invalid_arg ("Replay_sweep.bench: unknown system " ^ s)
  in
  let config =
    { (Toolchain.default_config bd) with seed; frequency; caching }
  in
  let trace =
    Filename.temp_file
      (Printf.sprintf "swtr-%s-%s-" bd.Workloads.Bench_def.short system_name)
      ".trace"
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove trace with Sys_error _ -> ())
    (fun () ->
      (* Timing hygiene: the report pipeline reaches this point with a
         large major heap left over from earlier phases, whose GC debt
         would otherwise be billed to the timed sections below.
         Compact first so record/exec/load measure their own work. *)
      Gc.compact ();
      let recorded, record_s =
        Sweep.timed (fun () -> Toolchain.run_recorded ~trace config)
      in
      match recorded with
      | Toolchain.Crashed o ->
          failwith
            (Printf.sprintf "recording %s/%s crashed: %s"
               bd.Workloads.Bench_def.name system_name (Msp430.Cpu.outcome_name o))
      | Toolchain.Did_not_fit _ ->
          (* Expected capacity outcome: several Table-2 benchmarks
             exceed the block cache's data limit. No trace, no entry. *)
          None
      | Toolchain.Completed res ->
          (* The speedup denominator: what one fresh sweep cell costs
             without the replayer (unobserved, default engine). *)
          Gc.compact ();
          let _, exec_s = Sweep.timed (fun () -> Toolchain.run config) in
          Gc.compact ();
          let loaded, load_s = Sweep.timed (fun () -> load_or_fail trace) in
          let mismatches = verify_exact loaded res in
          let cell_results = List.map (sim_cell loaded) cells in
          Some
            {
              b_benchmark = bd.Workloads.Bench_def.name;
              b_system = system_name;
              b_fingerprint = loaded.Engine.header.Trace_file.fingerprint;
              b_events = loaded.Engine.events;
              b_bytes = loaded.Engine.bytes;
              b_record_s = record_s;
              b_exec_s = exec_s;
              b_load_s = load_s;
              b_exact_match = mismatches = [];
              b_exact_detail =
                (match mismatches with [] -> "" | m :: _ -> m);
              b_cells = cell_results;
            })

let bench ?(seed = 1) ?benchmarks ?budgets ?policies ?jobs ~frequency () =
  let benchmarks =
    match benchmarks with Some b -> b | None -> Workloads.Suite.all
  in
  let cells = grid ?budgets ?policies () in
  let pairs =
    List.concat_map (fun bd -> [ (bd, "swapram"); (bd, "block") ]) benchmarks
  in
  let jobs = Sweep.resolve_jobs jobs in
  List.filter_map
    (fun e -> e)
    (Parallel.map ~jobs (bench_pair ~seed ~frequency ~cells) pairs)
