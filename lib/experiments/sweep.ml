module Platform = Msp430.Platform

(* Shared evaluation sweep: every benchmark under the three systems
   (unified baseline, SwapRAM, block cache) at a given frequency.
   Table 2, Figures 8 and 9 all read from this matrix; results are
   memoized per (seed, frequency) so one bench run computes it once. *)

type entry = {
  benchmark : Workloads.Bench_def.t;
  baseline : Toolchain.result;
  swapram : Toolchain.outcome;
  block : Toolchain.outcome;
}

type t = entry list

let cache :
    ( int * Platform.frequency * Toolchain.observe_spec option * string list,
      t )
    Hashtbl.t =
  Hashtbl.create 4

let compute_uncached ?observe ~seed ~frequency benchmarks =
  List.map
    (fun benchmark ->
      let base_config =
        {
          (Toolchain.default_config benchmark) with
          Toolchain.seed;
          frequency;
        }
      in
      let baseline =
        Report.expect_completed
          ~what:(benchmark.Workloads.Bench_def.name ^ " baseline")
          (Toolchain.run ?observe base_config)
      in
      let swapram =
        Toolchain.run ?observe
          {
            base_config with
            Toolchain.caching =
              Toolchain.Swapram_cache Swapram.Config.default_options;
          }
      in
      let block =
        Toolchain.run ?observe
          {
            base_config with
            Toolchain.caching =
              Toolchain.Block_cache Blockcache.Config.default_options;
          }
      in
      (* §5.1 validation is implicit in every sweep: outputs must match *)
      (match swapram with
      | Toolchain.Completed r when r.Toolchain.uart <> baseline.Toolchain.uart ->
          failwith (benchmark.Workloads.Bench_def.name ^ ": SwapRAM output differs")
      | _ -> ());
      (match block with
      | Toolchain.Completed r when r.Toolchain.uart <> baseline.Toolchain.uart ->
          failwith (benchmark.Workloads.Bench_def.name ^ ": block-cache output differs")
      | _ -> ());
      { benchmark; baseline; swapram; block })
    benchmarks

let compute ?(seed = 1) ?benchmarks ?observe ~frequency () =
  let benchmarks =
    match benchmarks with Some bs -> bs | None -> Workloads.Suite.all
  in
  (* The full spec keys the memo: runs observed with different specs
     carry different attachments (e.g. the metrics sampler), so they
     must not alias. *)
  let key =
    ( seed,
      frequency,
      observe,
      List.map (fun b -> b.Workloads.Bench_def.name) benchmarks )
  in
  match Hashtbl.find_opt cache key with
  | Some t -> t
  | None ->
      let t = compute_uncached ?observe ~seed ~frequency benchmarks in
      Hashtbl.replace cache key t;
      t
