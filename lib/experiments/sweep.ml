module Platform = Msp430.Platform

(* Shared evaluation sweep: every benchmark under the three systems
   (unified baseline, SwapRAM, block cache) at a given frequency.
   Table 2, Figures 8 and 9 all read from this matrix; results are
   memoized per (seed, frequency, observe, engine, subset) so one
   bench run computes it once.

   Each cell is wall-clock timed on the host — CLOCK_MONOTONIC, not
   [Sys.time], which reports processor time and under-reports
   whenever the simulator shares the machine — so the machine-readable
   report can track simulator throughput alongside the simulated
   metrics. With [jobs > 1] the independent (benchmark x system) cells
   are sharded across forked workers ({!Parallel.map}); each cell is
   timed inside its worker, and the merged result list is ordered by
   benchmark exactly as a serial sweep would produce it. *)

type entry = {
  benchmark : Workloads.Bench_def.t;
  baseline : Toolchain.result;
  swapram : Toolchain.outcome;
  block : Toolchain.outcome;
  baseline_host_s : float;
  swapram_host_s : float;
  block_host_s : float;
}

type t = entry list

let timed f =
  let t0 = Monotonic_clock.now () in
  let r = f () in
  let t1 = Monotonic_clock.now () in
  (r, Int64.to_float (Int64.sub t1 t0) /. 1e9)

(* Default worker count for every sweep-shaped computation in this
   library; the bench driver and CLI set it from --jobs. *)
let default_jobs = ref 1
let set_default_jobs n = default_jobs := max 1 n
let resolve_jobs jobs = match jobs with Some j -> max 1 j | None -> !default_jobs

(* Default progress sink, same shape as [default_jobs]: sweeps invoked
   deep inside figure/table modules can't thread a sink, so the bench
   driver plugs one in process-wide. Purely observational. *)
let default_progress = ref Observe.Progress.null
let set_default_progress sink = default_progress := sink

(* Memo accounting: attribution for "why was this run instant / slow",
   printed by the bench driver and mirrored as telemetry counters. A
   [~cache:false] sweep counts as a miss (the work really ran). *)
type memo_stats = { hits : int; misses : int }

let memo_hits = ref 0
let memo_misses = ref 0
let memo_stats () = { hits = !memo_hits; misses = !memo_misses }

let reset_memo_stats () =
  memo_hits := 0;
  memo_misses := 0

let count_hit () =
  incr memo_hits;
  Observe.Telemetry.counter "sweep.memo_hits" !memo_hits

let count_miss () =
  incr memo_misses;
  Observe.Telemetry.counter "sweep.memo_misses" !memo_misses

type key =
  int * Platform.frequency * Toolchain.observe_spec option * string
  * string list

let memo : (key, t) Hashtbl.t = Hashtbl.create 4

(* One (benchmark x system) cell, run and timed host-side. This is the
   unit of work a forked worker executes. *)
let run_cell ?observe ~seed ~frequency ~engine (benchmark, sys) =
  let base_config =
    { (Toolchain.default_config benchmark) with Toolchain.seed; frequency }
  in
  let base_config =
    match engine with
    | None -> base_config
    | Some e -> { base_config with Toolchain.engine = e }
  in
  let config =
    match sys with
    | `Baseline -> base_config
    | `Swapram ->
        {
          base_config with
          Toolchain.caching = Toolchain.Swapram_cache Swapram.Config.default_options;
        }
    | `Block ->
        {
          base_config with
          Toolchain.caching = Toolchain.Block_cache Blockcache.Config.default_options;
        }
  in
  timed (fun () ->
      match sys with
      | `Baseline ->
          Toolchain.Completed
            (Report.expect_completed
               ~what:(benchmark.Workloads.Bench_def.name ^ " baseline")
               (Toolchain.run ?observe config))
      | `Swapram | `Block -> Toolchain.run ?observe config)

let compute_uncached ?observe ~seed ~frequency ~engine ~jobs benchmarks =
  let cells =
    List.concat_map
      (fun b -> [ (b, `Baseline); (b, `Swapram); (b, `Block) ])
      benchmarks
  in
  let total = List.length cells in
  let finished = ref 0 in
  let progress = !default_progress in
  let on_event = function
    | Parallel.Completed _ ->
        incr finished;
        progress
          (Observe.Progress.Units_done
             { label = "sweep"; finished = !finished; total })
    | _ -> ()
  in
  let results =
    Observe.Telemetry.with_span ~cat:"sweep" "compute"
      ~args:
        [
          ("cells", Observe.Json.Int total);
          ("jobs", Observe.Json.Int jobs);
        ]
      (fun () ->
        Parallel.map ~jobs ~on_event
          (run_cell ?observe ~seed ~frequency ~engine)
          cells)
  in
  (* Merge in deterministic (benchmark, system) order — [Parallel.map]
     returns results in input order, so this is the exact structure a
     serial sweep builds. *)
  let rec merge benchmarks results =
    match (benchmarks, results) with
    | [], [] -> []
    | b :: bs, (base, bt) :: (sw, st) :: (bl, lt) :: rest ->
        let baseline =
          match base with
          | Toolchain.Completed r -> r
          | _ -> assert false (* run_cell wraps expect_completed *)
        in
        (* §5.1 validation is implicit in every sweep: outputs must
           match. Checked in the parent after the merge so it holds
           identically for serial and parallel runs. *)
        (match sw with
        | Toolchain.Completed r when r.Toolchain.uart <> baseline.Toolchain.uart
          ->
            failwith
              (b.Workloads.Bench_def.name ^ ": SwapRAM output differs")
        | _ -> ());
        (match bl with
        | Toolchain.Completed r when r.Toolchain.uart <> baseline.Toolchain.uart
          ->
            failwith
              (b.Workloads.Bench_def.name ^ ": block-cache output differs")
        | _ -> ());
        {
          benchmark = b;
          baseline;
          swapram = sw;
          block = bl;
          baseline_host_s = bt;
          swapram_host_s = st;
          block_host_s = lt;
        }
        :: merge bs rest
    | _ -> assert false
  in
  Observe.Telemetry.with_span ~cat:"sweep" "crosscheck" (fun () ->
      merge benchmarks results)

let key ~seed ~frequency ~observe ~engine benchmarks : key =
  (* [None] means "the toolchain default" — resolved here rather than
     stored as a wildcard, so flipping the default engine between
     sweeps cannot alias memo entries. *)
  let engine_name =
    Msp430.Cpu.engine_name
      (match engine with Some e -> e | None -> Toolchain.default_engine ())
  in
  ( seed,
    frequency,
    observe,
    engine_name,
    List.map (fun b -> b.Workloads.Bench_def.name) benchmarks )

let compute ?(seed = 1) ?benchmarks ?observe ?engine ?jobs ?(cache = true)
    ~frequency () =
  let benchmarks =
    match benchmarks with Some bs -> bs | None -> Workloads.Suite.all
  in
  let jobs = resolve_jobs jobs in
  (* The full spec keys the memo: runs observed with different specs
     carry different attachments (e.g. the metrics sampler), and runs
     pinned to different engines time differently, so they must not
     alias. [jobs] is deliberately not in the key — it cannot change
     any simulated value — which is why callers that want fresh host
     timings under a specific jobs setting pass [~cache:false]. *)
  if not cache then begin
    count_miss ();
    compute_uncached ?observe ~seed ~frequency ~engine ~jobs benchmarks
  end
  else
    let k = key ~seed ~frequency ~observe ~engine benchmarks in
    match Hashtbl.find_opt memo k with
    | Some t ->
        count_hit ();
        t
    | None ->
        count_miss ();
        let t = compute_uncached ?observe ~seed ~frequency ~engine ~jobs benchmarks in
        Hashtbl.replace memo k t;
        t

(* --- Profile-guided runs ----------------------------------------------- *)

type pgo_entry = {
  pgo_benchmark : Workloads.Bench_def.t;
  pgo : (Toolchain.pgo_result, string) result;
  pgo_host_s : float;  (** training + rebuild + measured run *)
}

let pgo_cache : (key, pgo_entry list) Hashtbl.t = Hashtbl.create 4

let compute_pgo ?(seed = 1) ?benchmarks ?observe ?engine ?jobs ~frequency () =
  let benchmarks =
    match benchmarks with Some bs -> bs | None -> Workloads.Suite.all
  in
  let jobs = resolve_jobs jobs in
  let k = key ~seed ~frequency ~observe ~engine benchmarks in
  match Hashtbl.find_opt pgo_cache k with
  | Some t ->
      count_hit ();
      t
  | None ->
      count_miss ();
      let run_one benchmark =
        let config =
          {
            (Toolchain.default_config benchmark) with
            Toolchain.seed;
            frequency;
            caching = Toolchain.Swapram_cache Swapram.Config.default_options;
          }
        in
        let config =
          match engine with
          | None -> config
          | Some e -> { config with Toolchain.engine = e }
        in
        let pgo, pgo_host_s =
          timed (fun () -> Toolchain.run_pgo ?observe config)
        in
        { pgo_benchmark = benchmark; pgo; pgo_host_s }
      in
      let total = List.length benchmarks in
      let finished = ref 0 in
      let progress = !default_progress in
      let on_event = function
        | Parallel.Completed _ ->
            incr finished;
            progress
              (Observe.Progress.Units_done
                 { label = "pgo"; finished = !finished; total })
        | _ -> ()
      in
      let t =
        Observe.Telemetry.with_span ~cat:"sweep" "compute_pgo"
          ~args:
            [
              ("benchmarks", Observe.Json.Int total);
              ("jobs", Observe.Json.Int jobs);
            ]
          (fun () -> Parallel.map ~jobs ~on_event run_one benchmarks)
      in
      Hashtbl.replace pgo_cache k t;
      t

let clear_cache () =
  Hashtbl.reset memo;
  Hashtbl.reset pgo_cache
