module Platform = Msp430.Platform

(* Shared evaluation sweep: every benchmark under the three systems
   (unified baseline, SwapRAM, block cache) at a given frequency.
   Table 2, Figures 8 and 9 all read from this matrix; results are
   memoized per (seed, frequency) so one bench run computes it once.

   Each run is wall-clock timed (host seconds, [Sys.time]) so the
   machine-readable report can track simulator throughput alongside
   the simulated metrics. *)

type entry = {
  benchmark : Workloads.Bench_def.t;
  baseline : Toolchain.result;
  swapram : Toolchain.outcome;
  block : Toolchain.outcome;
  baseline_host_s : float;
  swapram_host_s : float;
  block_host_s : float;
}

type t = entry list

let timed f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let cache :
    ( int * Platform.frequency * Toolchain.observe_spec option * string list,
      t )
    Hashtbl.t =
  Hashtbl.create 4

let compute_uncached ?observe ~seed ~frequency benchmarks =
  List.map
    (fun benchmark ->
      let base_config =
        {
          (Toolchain.default_config benchmark) with
          Toolchain.seed;
          frequency;
        }
      in
      let baseline, baseline_host_s =
        timed (fun () ->
            Report.expect_completed
              ~what:(benchmark.Workloads.Bench_def.name ^ " baseline")
              (Toolchain.run ?observe base_config))
      in
      let swapram, swapram_host_s =
        timed (fun () ->
            Toolchain.run ?observe
              {
                base_config with
                Toolchain.caching =
                  Toolchain.Swapram_cache Swapram.Config.default_options;
              })
      in
      let block, block_host_s =
        timed (fun () ->
            Toolchain.run ?observe
              {
                base_config with
                Toolchain.caching =
                  Toolchain.Block_cache Blockcache.Config.default_options;
              })
      in
      (* §5.1 validation is implicit in every sweep: outputs must match *)
      (match swapram with
      | Toolchain.Completed r when r.Toolchain.uart <> baseline.Toolchain.uart ->
          failwith (benchmark.Workloads.Bench_def.name ^ ": SwapRAM output differs")
      | _ -> ());
      (match block with
      | Toolchain.Completed r when r.Toolchain.uart <> baseline.Toolchain.uart ->
          failwith (benchmark.Workloads.Bench_def.name ^ ": block-cache output differs")
      | _ -> ());
      {
        benchmark;
        baseline;
        swapram;
        block;
        baseline_host_s;
        swapram_host_s;
        block_host_s;
      })
    benchmarks

let compute ?(seed = 1) ?benchmarks ?observe ~frequency () =
  let benchmarks =
    match benchmarks with Some bs -> bs | None -> Workloads.Suite.all
  in
  (* The full spec keys the memo: runs observed with different specs
     carry different attachments (e.g. the metrics sampler), so they
     must not alias. *)
  let key =
    ( seed,
      frequency,
      observe,
      List.map (fun b -> b.Workloads.Bench_def.name) benchmarks )
  in
  match Hashtbl.find_opt cache key with
  | Some t -> t
  | None ->
      let t = compute_uncached ?observe ~seed ~frequency benchmarks in
      Hashtbl.replace cache key t;
      t

(* --- Profile-guided runs ----------------------------------------------- *)

type pgo_entry = {
  pgo_benchmark : Workloads.Bench_def.t;
  pgo : (Toolchain.pgo_result, string) result;
  pgo_host_s : float;  (** training + rebuild + measured run *)
}

let pgo_cache :
    ( int * Platform.frequency * Toolchain.observe_spec option * string list,
      pgo_entry list )
    Hashtbl.t =
  Hashtbl.create 4

let compute_pgo ?(seed = 1) ?benchmarks ?observe ~frequency () =
  let benchmarks =
    match benchmarks with Some bs -> bs | None -> Workloads.Suite.all
  in
  let key =
    ( seed,
      frequency,
      observe,
      List.map (fun b -> b.Workloads.Bench_def.name) benchmarks )
  in
  match Hashtbl.find_opt pgo_cache key with
  | Some t -> t
  | None ->
      let t =
        List.map
          (fun benchmark ->
            let config =
              {
                (Toolchain.default_config benchmark) with
                Toolchain.seed;
                frequency;
                caching =
                  Toolchain.Swapram_cache Swapram.Config.default_options;
              }
            in
            let pgo, pgo_host_s =
              timed (fun () -> Toolchain.run_pgo ?observe config)
            in
            { pgo_benchmark = benchmark; pgo; pgo_host_s })
          benchmarks
      in
      Hashtbl.replace pgo_cache key t;
      t
