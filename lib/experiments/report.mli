(** Plain-text table rendering for the experiment reports. *)

type align = Left | Right

val table : ?aligns:align list -> string list list -> string
(** Aligned columns; the first row is the header (default alignment is
    [Right], [aligns] overrides per column). *)

val pct : vs:int -> int -> string
(** "+12%"-style delta of a value against a baseline. *)

val pctf : vs:float -> float -> string
val ratio : vs:int -> int -> float
val millions : int -> string
val geo_mean : float list -> float
val heading : string -> string

val outcome_cell : Msp430.Cpu.run_outcome -> string
(** Uniform rendering of structured run outcomes in tables and error
    messages. *)

val expect_completed : what:string -> Toolchain.outcome -> Toolchain.result
(** The result of a run that must have halted cleanly; any other
    outcome fails with a message naming [what]. *)
