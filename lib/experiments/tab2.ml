module Trace = Msp430.Trace
module Platform = Msp430.Platform

(* Table 2 — FRAM accesses and unstalled CPU cycles per benchmark for
   the baseline, block cache and SwapRAM (simulator statistics).
   Shape to reproduce: SwapRAM eliminates ~2/3 of FRAM accesses for a
   few-percent cycle overhead; the block cache reduces accesses far
   less while inflating cycle counts by ~half. *)

type system_cells = { fram_accesses : int option; cycles : int option }
(* None = DNF *)

type row = {
  benchmark : Workloads.Bench_def.t;
  baseline : system_cells;
  block : system_cells;
  swapram : system_cells;
}

type t = row list

let cells_of_outcome = function
  | Toolchain.Completed r ->
      {
        fram_accesses = Some (Trace.fram_accesses r.Toolchain.stats);
        cycles = Some r.Toolchain.stats.Trace.unstalled_cycles;
      }
  | Toolchain.Crashed o -> failwith ("tab2: " ^ Report.outcome_cell o)
  | Toolchain.Did_not_fit _ -> { fram_accesses = None; cycles = None }

let compute ?(seed = 1) ?benchmarks () =
  List.map
    (fun (e : Sweep.entry) ->
      {
        benchmark = e.Sweep.benchmark;
        baseline = cells_of_outcome (Toolchain.Completed e.Sweep.baseline);
        block = cells_of_outcome e.Sweep.block;
        swapram = cells_of_outcome e.Sweep.swapram;
      })
    (Sweep.compute ~seed ?benchmarks ~frequency:Platform.Mhz24 ())

let cell ~vs = function
  | None -> "DNF"
  | Some v -> (
      match vs with
      | Some base when base > 0 ->
          Printf.sprintf "%s (%s)" (Report.millions v) (Report.pct ~vs:base v)
      | _ -> Report.millions v)

let geo_delta rows ~get =
  let ratios =
    List.filter_map
      (fun r ->
        match (get r, r.baseline) with
        | { fram_accesses = Some v; _ }, { fram_accesses = Some b; _ } when b > 0
          ->
            Some (float_of_int v /. float_of_int b)
        | _ -> None)
      rows
  in
  Report.geo_mean ratios

let geo_delta_cycles rows ~get =
  let ratios =
    List.filter_map
      (fun r ->
        match (get r, r.baseline) with
        | { cycles = Some v; _ }, { cycles = Some b; _ } when b > 0 ->
            Some (float_of_int v /. float_of_int b)
        | _ -> None)
      rows
  in
  Report.geo_mean ratios

let render t =
  let header =
    [ "benchmark"; "base FRAM (M)"; "block FRAM (M)"; "swapram FRAM (M)";
      "base cyc (M)"; "block cyc (M)"; "swapram cyc (M)" ]
  in
  let rows =
    List.map
      (fun r ->
        [
          r.benchmark.Workloads.Bench_def.name;
          cell ~vs:None r.baseline.fram_accesses;
          cell ~vs:r.baseline.fram_accesses r.block.fram_accesses;
          cell ~vs:r.baseline.fram_accesses r.swapram.fram_accesses;
          (match r.baseline.cycles with Some v -> Report.millions v | None -> "DNF");
          (match (r.block.cycles, r.baseline.cycles) with
          | Some v, Some b -> Printf.sprintf "%s (%s)" (Report.millions v) (Report.pct ~vs:b v)
          | _ -> "DNF");
          (match (r.swapram.cycles, r.baseline.cycles) with
          | Some v, Some b -> Printf.sprintf "%s (%s)" (Report.millions v) (Report.pct ~vs:b v)
          | _ -> "DNF");
        ])
      t
  in
  let summary =
    Printf.sprintf
      "geo-mean deltas: block FRAM %+.0f%%, swapram FRAM %+.0f%%, block \
       cycles %+.0f%%, swapram cycles %+.1f%%\n"
      (100.0 *. (geo_delta t ~get:(fun r -> r.block) -. 1.0))
      (100.0 *. (geo_delta t ~get:(fun r -> r.swapram) -. 1.0))
      (100.0 *. (geo_delta_cycles t ~get:(fun r -> r.block) -. 1.0))
      (100.0 *. (geo_delta_cycles t ~get:(fun r -> r.swapram) -. 1.0))
  in
  Report.heading "Table 2: FRAM accesses and unstalled cycles (simulator)"
  ^ Report.table ~aligns:[ Report.Left ] (header :: rows)
  ^ "\n" ^ summary
