(** Perf-regression gate: compare two bench reports
    ([bench/report.json] schema v2, slim or full) metric-by-metric
    under per-metric relative thresholds. Drives [swapram_cli compare]
    and the CI perf gate against the committed [bench/baseline.json]. *)

val default_thresholds : (string * float) list
(** [(metric, max relative increase)]. Cycles / instructions / energy
    5%, memory-access counts 8%, code size 10%. All compared metrics
    are smaller-is-better; the simulator is deterministic, so the
    slack covers intentional small costs, not noise. *)

type finding = {
  f_bench : string;
  f_system : string;  (** "baseline" / "swapram" / "block" *)
  f_metric : string;
  f_old : float;
  f_new : float;
  f_delta : float;  (** relative change, [(new - old) / old] *)
  f_threshold : float;
  f_regressed : bool;
}

type outcome = {
  findings : finding list;  (** every compared metric *)
  errors : string list;
      (** structural problems that themselves fail the gate: schema
          mismatch, missing benchmark/system/metric, status change *)
}

val compare_json :
  ?thresholds:(string * float) list ->
  old_report:Observe.Json.t ->
  new_report:Observe.Json.t ->
  unit ->
  outcome

val compare_files :
  ?thresholds:(string * float) list ->
  string ->
  string ->
  (outcome, string) result
(** [compare_files old_path new_path]; [Error] is an I/O or JSON
    parse failure. *)

val regressions : outcome -> finding list

val render : outcome -> string
(** Human-readable summary: counts, errors, and a table of regressed
    or notably-changed (>0.5%) metrics. *)
