(* Figure 7 — NVM (binary) usage after transformation: application
   code, runtime and cache metadata for the block cache and SwapRAM,
   with DNF marks for the binaries that exceed the platform's FRAM.
   Shape to reproduce: block-based caching inflates binaries by
   several hundred percent and four of nine benchmarks stop fitting;
   SwapRAM's function-level instrumentation costs a few tens of
   percent and everything fits. *)

type usage = { app : int; runtime : int; metadata : int }

type row = {
  benchmark : Workloads.Bench_def.t;
  base_code : int;
  base_data : int;
  swapram : usage;
  swapram_fits : bool;
  block : usage;
  block_fits : bool;
}

type t = row list

let fram_capacity =
  (* program space available above the code base *)
  Msp430.Platform.fram_base + Msp430.Platform.fram_size - (Msp430.Platform.fram_base + 0x400)

let compute ?(seed = 1) ?benchmarks () =
  let benchmarks =
    match benchmarks with Some bs -> bs | None -> Workloads.Suite.all
  in
  List.map
    (fun benchmark ->
      let source = benchmark.Workloads.Bench_def.source seed in
      let program = Minic.Driver.program_of_source source in
      let plain = Masm.Assembler.assemble program in
      let base_code = Masm.Assembler.code_size plain in
      let base_data = Masm.Assembler.data_size plain in
      let sr = Swapram.Pipeline.build program in
      let su = Swapram.Pipeline.nvm_usage sr in
      let bb = Blockcache.Pipeline.build program in
      let bu = Blockcache.Pipeline.nvm_usage bb in
      let fits total = total + base_data <= fram_capacity in
      {
        benchmark;
        base_code;
        base_data;
        swapram =
          {
            app = su.Swapram.Pipeline.application_bytes;
            runtime = su.Swapram.Pipeline.runtime_bytes;
            metadata = su.Swapram.Pipeline.metadata_bytes;
          };
        swapram_fits = fits (Swapram.Pipeline.total_bytes su);
        block =
          {
            app = bu.Blockcache.Pipeline.application_bytes;
            runtime = bu.Blockcache.Pipeline.runtime_bytes;
            metadata = bu.Blockcache.Pipeline.metadata_bytes;
          };
        block_fits = fits (Blockcache.Pipeline.total_bytes bu);
      })
    benchmarks

let total u = u.app + u.runtime + u.metadata

let render t =
  let header =
    [ "benchmark"; "base code";
      "SR app"; "SR rt"; "SR meta"; "SR total";
      "BB app"; "BB rt"; "BB meta"; "BB total"; "BB verdict" ]
  in
  let rows =
    List.map
      (fun r ->
        [
          r.benchmark.Workloads.Bench_def.name;
          string_of_int r.base_code;
          string_of_int r.swapram.app;
          string_of_int r.swapram.runtime;
          string_of_int r.swapram.metadata;
          Printf.sprintf "%d (%s)" (total r.swapram)
            (Report.pct ~vs:r.base_code (total r.swapram));
          string_of_int r.block.app;
          string_of_int r.block.runtime;
          string_of_int r.block.metadata;
          Printf.sprintf "%d (%s)" (total r.block)
            (Report.pct ~vs:r.base_code (total r.block));
          (if r.block_fits then "fits" else "DNF");
        ])
      t
  in
  let sr_incr =
    Report.geo_mean
      (List.map (fun r -> Report.ratio ~vs:r.base_code (total r.swapram)) t)
  in
  let bb_incr =
    Report.geo_mean
      (List.map (fun r -> Report.ratio ~vs:r.base_code (total r.block)) t)
  in
  let dnf =
    List.filter_map
      (fun r ->
        if r.block_fits then None
        else Some r.benchmark.Workloads.Bench_def.short)
      t
  in
  Report.heading "Figure 7: NVM usage of the transformed binaries"
  ^ Report.table ~aligns:[ Report.Left ] (header :: rows)
  ^ Printf.sprintf
      "\ngeo-mean NVM increase: SwapRAM %+.0f%%, block cache %+.0f%%; block \
       cache DNF: %s\n"
      (100.0 *. (sr_incr -. 1.0))
      (100.0 *. (bb_incr -. 1.0))
      (String.concat ", " dnf)
