module Json = Observe.Json

(* Perf-regression gate over two bench reports (schema v2, slim or
   full). Every (benchmark, system) cell present in the old report is
   compared metric-by-metric against the new one under per-metric
   relative thresholds; a regression is a relative increase beyond
   the metric's threshold. The simulator is deterministic, so
   thresholds guard against real code-path changes, not noise — they
   leave room for intentional small costs (e.g. added bookkeeping)
   while catching anything structural. *)

(* (metric, relative threshold). All compared metrics are
   smaller-is-better. *)
let default_thresholds =
  [
    ("cycles", 0.05);
    ("unstalled_cycles", 0.05);
    ("instructions", 0.05);
    ("energy_nj", 0.05);
    ("fram_accesses", 0.08);
    ("sram_accesses", 0.08);
    ("code_bytes", 0.10);
  ]

type finding = {
  f_bench : string;
  f_system : string;
  f_metric : string;
  f_old : float;
  f_new : float;
  f_delta : float; (* relative change, (new - old) / old *)
  f_threshold : float;
  f_regressed : bool;
}

type outcome = { findings : finding list; errors : string list }

let regressions o = List.filter (fun f -> f.f_regressed) o.findings

let get_num json key =
  Option.bind (Json.member key json) Json.to_float

let get_str json key = Option.bind (Json.member key json) Json.to_str

let bench_assoc report =
  match Option.bind (Json.member "benchmarks" report) Json.to_list with
  | None -> Error "no \"benchmarks\" array"
  | Some benches ->
      Ok
        (List.filter_map
           (fun b ->
             match get_str b "name" with
             | Some name -> Some (name, b)
             | None -> None)
           benches)

let systems_of bench =
  match Json.member "systems" bench with
  | Some (Json.Obj kvs) -> kvs
  | _ -> []

(* A cell "has windows" when its metrics object carries a non-empty
   per-window series; slim reports render metrics as null. *)
let has_windows cell =
  match Json.member "metrics" cell with
  | Some (Json.Obj _ as m) -> (
      match Json.member "windows" m with
      | Some (Json.List (_ :: _)) -> true
      | _ -> false)
  | _ -> false

let compare_cell ~thresholds ~bench ~system old_cell new_cell
    (findings, errors) =
  let status j = Option.value ~default:"?" (get_str j "status") in
  let old_status = status old_cell and new_status = status new_cell in
  if old_status <> new_status then
    ( findings,
      Printf.sprintf "%s/%s: status changed %s -> %s" bench system old_status
        new_status
      :: errors )
  else if old_status <> "completed" then (findings, errors)
  else
    let errors =
      (* Gate scalars exist in slim reports too; only complain when
         the baseline carries the per-window series and the candidate
         lost it — that means someone passed a slim rendering where a
         full report was expected. *)
      if has_windows old_cell && not (has_windows new_cell) then
        Printf.sprintf
          "%s/%s: new report is slim — it lacks the per-window metrics \
           series the baseline carries; regenerate a full report (dune exec \
           bench/main.exe -- --report) or compare against a slim baseline"
          bench system
        :: errors
      else errors
    in
    List.fold_left
      (fun (findings, errors) (metric, threshold) ->
        match (get_num old_cell metric, get_num new_cell metric) with
        | Some o, Some n ->
            let delta =
              if o = 0.0 then if n = 0.0 then 0.0 else infinity
              else (n -. o) /. o
            in
            ( {
                f_bench = bench;
                f_system = system;
                f_metric = metric;
                f_old = o;
                f_new = n;
                f_delta = delta;
                f_threshold = threshold;
                f_regressed = delta > threshold;
              }
              :: findings,
              errors )
        | None, _ ->
            (* Absent in the old report (e.g. hand-trimmed baseline):
               nothing to gate on. *)
            (findings, errors)
        | Some _, None ->
            ( findings,
              Printf.sprintf "%s/%s: metric %s missing from new report" bench
                system metric
              :: errors ))
      (findings, errors) thresholds

(* Frontier-drift gate over the v7 "dse" objects. Frontiers are exact
   and deterministic — a pure function of (seed, benchmarks, grid) —
   so unlike the threshold-gated scalar metrics they are compared for
   equality: any drift means the cache model, the objective model or
   the Pareto computation changed, which must be an intentional,
   baseline-refreshing change. Host-side members (store provenance,
   wall clock) are stripped before comparing. *)
let dse_errors ~old_report ~new_report =
  match (Json.member "dse" old_report, Json.member "dse" new_report) with
  | None, _ ->
      (* pre-v7 baseline (or hand-trimmed): nothing to gate on *)
      []
  | Some _, None -> [ "dse object missing from new report" ]
  | Some old_dse, Some new_dse ->
      let det key dse =
        Bench_report.deterministic_view
          (Option.value ~default:Json.Null (Json.member key dse))
      in
      let member_drift key =
        if det key old_dse = det key new_dse then []
        else [ Printf.sprintf "dse: %s drifted from the baseline" key ]
      in
      let frontiers dse =
        match Option.bind (Json.member "workloads" dse) Json.to_list with
        | None -> []
        | Some ws ->
            List.filter_map
              (fun w ->
                match get_str w "workload" with
                | Some name -> Some (name, w)
                | None -> None)
              ws
      in
      let old_ws = frontiers old_dse and new_ws = frontiers new_dse in
      let frontier_errs =
        List.concat_map
          (fun (name, old_w) ->
            match List.assoc_opt name new_ws with
            | None ->
                [ Printf.sprintf "dse: workload %s missing from new report" name ]
            | Some new_w ->
                if
                  Bench_report.deterministic_view old_w
                  = Bench_report.deterministic_view new_w
                then []
                else [ Printf.sprintf "dse: frontier drift for %s" name ])
          old_ws
      in
      member_drift "grid" @ member_drift "points_total"
      @ member_drift "sims_total" @ frontier_errs
      @ member_drift "global_frontier"

let compare_json ?(thresholds = default_thresholds) ~old_report ~new_report ()
    =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (match
     ( Option.bind (Json.member "schema_version" old_report) Json.to_int,
       Option.bind (Json.member "schema_version" new_report) Json.to_int )
   with
  | Some o, Some n when o <> n ->
      err "schema_version changed %d -> %d: refresh bench/baseline.json" o n
  | None, _ -> err "old report has no schema_version"
  | _, None -> err "new report has no schema_version"
  | Some _, Some _ -> ());
  errors := List.rev_append (dse_errors ~old_report ~new_report) !errors;
  match (bench_assoc old_report, bench_assoc new_report) with
  | Error e, _ -> { findings = []; errors = [ "old report: " ^ e ] }
  | _, Error e -> { findings = []; errors = [ "new report: " ^ e ] }
  | Ok old_benches, Ok new_benches ->
      let findings, errs =
        List.fold_left
          (fun acc (bench, old_b) ->
            match List.assoc_opt bench new_benches with
            | None ->
                let findings, errors = acc in
                ( findings,
                  Printf.sprintf "benchmark %s missing from new report" bench
                  :: errors )
            | Some new_b ->
                List.fold_left
                  (fun acc (system, old_cell) ->
                    match List.assoc_opt system (systems_of new_b) with
                    | None ->
                        let findings, errors = acc in
                        ( findings,
                          Printf.sprintf "%s/%s missing from new report" bench
                            system
                          :: errors )
                    | Some new_cell ->
                        compare_cell ~thresholds ~bench ~system old_cell
                          new_cell acc)
                  acc (systems_of old_b))
          ([], !errors) old_benches
      in
      { findings = List.rev findings; errors = List.rev errs }

let read_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Ok s

let compare_files ?thresholds old_path new_path =
  match (read_file old_path, read_file new_path) with
  | Error e, _ | _, Error e -> Error e
  | Ok old_s, Ok new_s -> (
      match (Json.parse old_s, Json.parse new_s) with
      | Error e, _ -> Error (old_path ^ ": " ^ e)
      | _, Error e -> Error (new_path ^ ": " ^ e)
      | Ok old_report, Ok new_report ->
          Ok (compare_json ?thresholds ~old_report ~new_report ()))

let render o =
  let buf = Buffer.create 1024 in
  let regs = regressions o in
  Buffer.add_string buf
    (Printf.sprintf "compared %d metrics: %d regression%s, %d error%s\n"
       (List.length o.findings) (List.length regs)
       (if List.length regs = 1 then "" else "s")
       (List.length o.errors)
       (if List.length o.errors = 1 then "" else "s"));
  List.iter (fun e -> Buffer.add_string buf ("error: " ^ e ^ "\n")) o.errors;
  let interesting =
    List.filter (fun f -> f.f_regressed || abs_float f.f_delta > 0.005) o.findings
  in
  if interesting <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "%-14s %-9s %-17s %14s %14s %8s %8s\n" "benchmark"
         "system" "metric" "old" "new" "delta" "limit");
    List.iter
      (fun f ->
        Buffer.add_string buf
          (Printf.sprintf "%-14s %-9s %-17s %14.0f %14.0f %+7.2f%% %7.0f%%%s\n"
             f.f_bench f.f_system f.f_metric f.f_old f.f_new
             (100.0 *. f.f_delta)
             (100.0 *. f.f_threshold)
             (if f.f_regressed then "  REGRESSED" else "")))
      interesting
  end;
  Buffer.contents buf
