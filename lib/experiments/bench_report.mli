(** Machine-readable benchmark report ([bench/report.json]): the
    Table-2 configurations (every benchmark under baseline / SwapRAM /
    block cache) run with the profiling stack attached, rendered under
    a stable versioned JSON schema for CI artifact upload. The schema
    is documented in EXPERIMENTS.md.

    Schema v2 embeds the {!Observe.Metrics} sampler's output per
    system: a "metrics" object with the per-window time series and the
    miss-ratio curve. Schema v3 adds per-system "host_seconds", the
    "swapram_pgo" system, and — in full (non-slim) reports — a
    top-level "host" object benchmarking the simulator itself:
    wall-clock for the unobserved suite under the reference
    interpreter (serial), the superblock engine (serial), and the
    superblock engine sharded across workers, with per-benchmark and
    geo-mean speedups. The host measurement cross-checks both engines
    cell by cell and fails rather than report a speedup over a
    disagreeing run.

    Schema v5 (v4 was never released) adds the optional top-level
    "campaign" object — Monte-Carlo fault-injection campaign
    statistics rendered by [Faultinject.Campaign.to_json] and passed
    in verbatim via [?campaign] (that engine sits above this
    library).

    Schema v6 adds the top-level "replay" object (full reports only):
    {!Replay_sweep.bench} results — one recorded trace per benchmark x
    cached system replayed across the cache-model grid, every cell
    tagged ["replayed": true] with its record-once/replay-many speedup
    over fresh execution. Rendering fails if any replay is not
    bit-for-bit exact against its recording. *)

val schema_version : int

val compute :
  ?seed:int ->
  ?benchmarks:Workloads.Bench_def.t list ->
  ?frequency:Msp430.Platform.frequency ->
  ?slim:bool ->
  ?jobs:int ->
  ?campaign:Observe.Json.t ->
  unit ->
  Observe.Json.t
(** [slim] (default false) drops the bulky "metrics" and
    "top_functions" payloads while keeping every scalar the
    perf-regression gate ({!Compare}) reads — the rendering committed
    as bench/baseline.json — and omits the "host" object so the
    baseline stays host-independent. [jobs] (default
    {!Sweep.set_default_jobs}) shards sweep cells across forked
    workers; it cannot change any simulated value. [campaign] is
    embedded as the top-level "campaign" member when given. *)

val write :
  ?seed:int ->
  ?benchmarks:Workloads.Bench_def.t list ->
  ?frequency:Msp430.Platform.frequency ->
  ?slim:bool ->
  ?jobs:int ->
  ?campaign:Observe.Json.t ->
  string ->
  unit
(** Render {!compute} pretty-printed to the given path. *)

val deterministic_view : Observe.Json.t -> Observe.Json.t
(** The report with every host-wall-clock key recursively removed
    (per-cell "host_seconds", the "host" object, the replay section's
    record/exec/load/sim timings and speedups). What remains is a pure
    function of (seed, benchmarks, frequency): two runs of the same
    configuration — telemetry on or off, serial or parallel — must
    agree on this view byte for byte, which is exactly what the
    telemetry-purity tests and the CI gate compare. *)
