(** Machine-readable benchmark report ([bench/report.json]): the
    Table-2 configurations (every benchmark under baseline / SwapRAM /
    block cache) run with the profiling stack attached, rendered under
    a stable versioned JSON schema for CI artifact upload. The schema
    is documented in EXPERIMENTS.md.

    Schema v2 embeds the {!Observe.Metrics} sampler's output per
    system: a "metrics" object with the per-window time series and the
    miss-ratio curve. *)

val schema_version : int

val compute :
  ?seed:int ->
  ?benchmarks:Workloads.Bench_def.t list ->
  ?frequency:Msp430.Platform.frequency ->
  ?slim:bool ->
  unit ->
  Observe.Json.t
(** [slim] (default false) drops the bulky "metrics" and
    "top_functions" payloads while keeping every scalar the
    perf-regression gate ({!Compare}) reads — the rendering committed
    as bench/baseline.json. *)

val write :
  ?seed:int ->
  ?benchmarks:Workloads.Bench_def.t list ->
  ?frequency:Msp430.Platform.frequency ->
  ?slim:bool ->
  string ->
  unit
(** Render {!compute} pretty-printed to the given path. *)
