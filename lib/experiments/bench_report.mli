(** Machine-readable benchmark report ([bench/report.json]): the
    Table-2 configurations (every benchmark under baseline / SwapRAM /
    block cache) run with the profiling stack attached, rendered under
    a stable versioned JSON schema for CI artifact upload. The schema
    is documented in EXPERIMENTS.md. *)

val schema_version : int

val compute :
  ?seed:int ->
  ?benchmarks:Workloads.Bench_def.t list ->
  ?frequency:Msp430.Platform.frequency ->
  unit ->
  Observe.Json.t

val write :
  ?seed:int ->
  ?benchmarks:Workloads.Bench_def.t list ->
  ?frequency:Msp430.Platform.frequency ->
  string ->
  unit
(** Render {!compute} pretty-printed to the given path. *)
