(* Fork-based worker pool. See parallel.mli for the contract.

   Design notes:

   - Workers are forked from the current process, so every task runs
     the same loaded code; closures and results marshal across the
     pipe with [Marshal.Closures] (code pointers are valid in both
     directions because parent and children are the same binary).

   - The parent keeps exactly one outstanding task per worker and
     reads a worker's entire result frame before touching another
     channel. A result frame is [output_binary_int index] followed by
     one marshalled value; since a worker only produces a frame in
     response to a task, a channel never holds more than one frame, so
     mixing [Unix.select] on the raw descriptors with buffered
     [in_channel] reads is safe.

   - Dynamic dispatch (next pending task to the first free worker)
     load-balances uneven cells; determinism is preserved by indexing
     results, not by scheduling. *)

let ncores () =
  try
    let ic = open_in "/proc/cpuinfo" in
    let n = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.length line >= 9 && String.sub line 0 9 = "processor" then
           incr n
       done
     with End_of_file -> ());
    close_in ic;
    max 1 !n
  with Sys_error _ -> 1

exception Worker_failed of string

type 'b reply = Ok_r of 'b | Error_r of string

type worker = {
  pid : int;
  task_out : out_channel; (* parent -> child: task indices *)
  result_fd : Unix.file_descr;
  result_in : in_channel; (* child -> parent: index + marshalled reply *)
  mutable busy : bool;
}

(* Child side: serve tasks until the parent sends -1. All exits go
   through [Unix._exit] so the child never runs the parent's at_exit
   handlers or flushes duplicated buffers. *)
let child_loop tasks f task_r result_w =
  let ic = Unix.in_channel_of_descr task_r in
  let oc = Unix.out_channel_of_descr result_w in
  (try
     let rec serve () =
       let idx = input_binary_int ic in
       if idx >= 0 then begin
         let reply =
           try Ok_r (f tasks.(idx))
           with e -> Error_r (Printexc.to_string e)
         in
         output_binary_int oc idx;
         Marshal.to_channel oc reply [ Marshal.Closures ];
         flush oc;
         serve ()
       end
     in
     serve ()
   with _ -> Unix._exit 2);
  Unix._exit 0

let map ?(jobs = 1) f xs =
  let tasks = Array.of_list xs in
  let ntasks = Array.length tasks in
  let nworkers = min jobs ntasks in
  if nworkers <= 1 then List.map f xs
  else begin
    (* Anything buffered now would be flushed again by every child on
       its way through [Unix._exit]-less paths; flush first so output
       appears exactly once. *)
    flush stdout;
    flush stderr;
    let prev_sigpipe =
      (* A worker that dies mid-protocol must surface as
         [Worker_failed], not kill the whole experiment run. *)
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ -> None
    in
    let workers =
      Array.init nworkers (fun _ ->
          let task_r, task_w = Unix.pipe ~cloexec:false () in
          let result_r, result_w = Unix.pipe ~cloexec:false () in
          match Unix.fork () with
          | 0 ->
              (* Descriptors inherited from previously-forked siblings
                 are closed implicitly at [Unix._exit]; only this
                 worker's own parent-side ends matter for EOF
                 semantics, and the child holds none of them after
                 these closes. *)
              Unix.close task_w;
              Unix.close result_r;
              child_loop tasks f task_r result_w
          | pid ->
              Unix.close task_r;
              Unix.close result_w;
              {
                pid;
                task_out = Unix.out_channel_of_descr task_w;
                result_fd = result_r;
                result_in = Unix.in_channel_of_descr result_r;
                busy = false;
              })
    in
    let results = Array.make ntasks None in
    let next = ref 0 in
    let done_count = ref 0 in
    let send w idx =
      output_binary_int w.task_out idx;
      flush w.task_out
    in
    let assign w =
      if !next < ntasks then begin
        send w !next;
        w.busy <- true;
        incr next
      end
    in
    let finish () =
      Array.iter
        (fun w ->
          (try send w (-1) with Sys_error _ -> ());
          (try close_out w.task_out with Sys_error _ -> ());
          (try close_in w.result_in with Sys_error _ -> ());
          ignore (Unix.waitpid [] w.pid))
        workers;
      match prev_sigpipe with
      | Some b -> ignore (Sys.signal Sys.sigpipe b)
      | None -> ()
    in
    let fail msg =
      finish ();
      raise (Worker_failed msg)
    in
    (try
       Array.iter assign workers;
       while !done_count < ntasks do
         let fds =
           Array.to_list workers
           |> List.filter_map (fun w -> if w.busy then Some w.result_fd else None)
         in
         let rec select_retry () =
           try Unix.select fds [] [] (-1.0)
           with Unix.Unix_error (Unix.EINTR, _, _) -> select_retry ()
         in
         let ready, _, _ = select_retry () in
         List.iter
           (fun fd ->
             let w =
               match
                 Array.to_list workers
                 |> List.find_opt (fun w -> w.result_fd = fd)
               with
               | Some w -> w
               | None -> assert false
             in
             let idx, reply =
               try
                 let idx = input_binary_int w.result_in in
                 let reply : _ reply =
                   Marshal.from_channel w.result_in
                 in
                 (idx, reply)
               with End_of_file | Failure _ ->
                 fail
                   (Printf.sprintf "worker %d died without delivering a result"
                      w.pid)
             in
             (match reply with
             | Ok_r v -> results.(idx) <- Some v
             | Error_r msg -> fail msg);
             w.busy <- false;
             incr done_count;
             assign w)
           ready
       done
     with
    | Worker_failed _ as e -> raise e
    | e ->
        (try finish () with _ -> ());
        raise e);
    finish ();
    Array.to_list results
    |> List.map (function Some v -> v | None -> raise (Worker_failed "missing result"))
  end
