(* Fork-based worker pool. See parallel.mli for the contract.

   Design notes:

   - Workers are forked from the current process, so every task runs
     the same loaded code; closures and results marshal across the
     pipe with [Marshal.Closures] (code pointers are valid in both
     directions because parent and children are the same binary).

   - The parent keeps exactly one outstanding task per worker and
     reads a worker's entire result frame before touching another
     channel. A result frame is [output_binary_int index] followed by
     one marshalled value; since a worker only produces a frame in
     response to a task, a channel never holds more than one frame, so
     mixing [Unix.select] on the raw descriptors with buffered
     [in_channel] reads is safe.

   - Dynamic dispatch (next pending task to the first free worker)
     load-balances uneven cells; determinism is preserved by indexing
     results, not by scheduling.

   - Self-healing ([map_robust]): a worker that dies or exceeds the
     per-task host timeout is disposed of — both pipe ends closed,
     SIGKILL if still alive, waitpid so no zombie accumulates — and
     its task is re-queued with exponential backoff, up to [retries]
     re-executions, against a freshly spawned worker. A task that
     *raises* is different: the failure is deterministic (same binary,
     same input), so it surfaces as [Worker_failed] immediately. *)

let ncores () =
  try
    let ic = open_in "/proc/cpuinfo" in
    let n = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.length line >= 9 && String.sub line 0 9 = "processor" then
           incr n
       done
     with End_of_file -> ());
    close_in ic;
    max 1 !n
  with Sys_error _ -> 1

exception Worker_failed of string

type event =
  | Spawned of { pid : int }
  | Dispatched of { pid : int; task : int }
  | Completed of { pid : int; task : int }
  | Died of { pid : int; task : int; attempt : int }
  | Timed_out of { pid : int; task : int }
  | Requeued of { task : int; attempt : int; delay : float }

type 'b reply = Ok_r of 'b | Error_r of string

type worker = {
  pid : int;
  task_out : out_channel; (* parent -> child: task indices *)
  result_fd : Unix.file_descr;
  result_in : in_channel; (* child -> parent: index + marshalled reply *)
  mutable task : int; (* index in flight, -1 when idle *)
  mutable deadline : float; (* host-time deadline for the task in flight *)
}

(* True in forked workers: tasks that deliberately kill their own
   process (chaos tests) must only do so inside a real worker, never
   in the serial in-process degradation. *)
let in_worker_flag = ref false
let in_worker () = !in_worker_flag

(* Child side: serve tasks until the parent sends -1. All exits go
   through [Unix._exit] so the child never runs the parent's at_exit
   handlers or flushes duplicated buffers. *)
let child_loop tasks f task_r result_w =
  let ic = Unix.in_channel_of_descr task_r in
  let oc = Unix.out_channel_of_descr result_w in
  (try
     let rec serve () =
       let idx = input_binary_int ic in
       if idx >= 0 then begin
         let reply =
           try Ok_r (f tasks.(idx))
           with e -> Error_r (Printexc.to_string e)
         in
         output_binary_int oc idx;
         Marshal.to_channel oc reply [ Marshal.Closures ];
         flush oc;
         serve ()
       end
     in
     serve ()
   with _ -> Unix._exit 2);
  Unix._exit 0

let map_robust ?(jobs = 1) ?task_timeout ?(retries = 3) ?(backoff = 0.05)
    ?(on_event = fun (_ : event) -> ()) f xs =
  let tasks = Array.of_list xs in
  let ntasks = Array.length tasks in
  let nworkers = min jobs ntasks in
  Observe.Telemetry.with_span ~cat:"parallel" "map"
    ~args:
      [
        ("jobs", Observe.Json.Int (max 1 nworkers));
        ("tasks", Observe.Json.Int ntasks);
      ]
  @@ fun () ->
  if nworkers <= 1 then
    (* Serial in-process degradation: still narrate dispatch/result so
       a serial ledger carries the same task timeline (one pseudo
       worker, this process's pid) as a parallel one. *)
    let self = Unix.getpid () in
    List.mapi
      (fun i x ->
        on_event (Dispatched { pid = self; task = i });
        Observe.Telemetry.worker "dispatch" ~pid:self ~task:i;
        let v = f x in
        on_event (Completed { pid = self; task = i });
        Observe.Telemetry.worker "result" ~pid:self ~task:i;
        v)
      xs
  else begin
    (* Anything buffered now would be flushed again by every child on
       its way through [Unix._exit]-less paths; flush first so output
       appears exactly once. *)
    flush stdout;
    flush stderr;
    let prev_sigpipe =
      (* A worker that dies mid-protocol must surface to the healing
         logic, not kill the whole experiment run. *)
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ -> None
    in
    let restore_sigpipe () =
      match prev_sigpipe with
      | Some b -> ignore (Sys.signal Sys.sigpipe b)
      | None -> ()
    in
    let results = Array.make ntasks None in
    let attempts = Array.make ntasks 0 in
    (* pending tasks as (index, not-before host time); re-queued tasks
       go to the back with their backoff expiry *)
    let pending = ref (List.init ntasks (fun i -> (i, 0.0))) in
    let done_count = ref 0 in
    let workers = ref ([] : worker list) in
    let deaths = ref 0 in
    let now () = Unix.gettimeofday () in
    (* Close both pipe ends and reap the child — the fd-hygiene core:
       every worker that leaves the pool goes through here exactly
       once, so neither a crashed worker nor a [Worker_failed] unwind
       can leak descriptors or zombies across a long campaign. *)
    let dispose ~kill w =
      (try close_out w.task_out with _ -> ());
      (try close_in w.result_in with _ -> ());
      if kill then (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
      Observe.Telemetry.worker "reap" ~pid:w.pid
        ~args:[ ("killed", Observe.Json.Bool kill) ]
    in
    let retire w =
      if w.task >= 0 then
        (* still computing a task someone else already finished (a
           timed-out task re-queued and completed elsewhere) *)
        dispose ~kill:true w
      else begin
        (try
           output_binary_int w.task_out (-1);
           flush w.task_out
         with Sys_error _ -> ());
        Observe.Telemetry.worker "exit" ~pid:w.pid;
        dispose ~kill:false w
      end
    in
    let cleanup ~kill =
      List.iter (fun w -> if kill then dispose ~kill:true w else retire w) !workers;
      workers := [];
      restore_sigpipe ()
    in
    let fail msg =
      cleanup ~kill:true;
      raise (Worker_failed msg)
    in
    let spawn () =
      flush stdout;
      flush stderr;
      let task_r, task_w = Unix.pipe ~cloexec:false () in
      let result_r, result_w = Unix.pipe ~cloexec:false () in
      match Unix.fork () with
      | 0 ->
          in_worker_flag := true;
          (* the inherited telemetry sink belongs to the parent; the
             pool narrates worker activity from the parent's vantage *)
          Observe.Telemetry.disarm ();
          Unix.close task_w;
          Unix.close result_r;
          child_loop tasks f task_r result_w
      | pid ->
          Unix.close task_r;
          Unix.close result_w;
          let w =
            {
              pid;
              task_out = Unix.out_channel_of_descr task_w;
              result_fd = result_r;
              result_in = Unix.in_channel_of_descr result_r;
              task = -1;
              deadline = infinity;
            }
          in
          workers := w :: !workers;
          on_event (Spawned { pid });
          Observe.Telemetry.worker "spawn" ~pid
            ~args:
              (if !deaths > 0 then [ ("respawn", Observe.Json.Bool true) ]
               else []);
          w
    in
    let send w idx =
      output_binary_int w.task_out idx;
      flush w.task_out;
      w.task <- idx;
      w.deadline <-
        (match task_timeout with Some s -> now () +. s | None -> infinity);
      on_event (Dispatched { pid = w.pid; task = idx });
      Observe.Telemetry.worker "dispatch" ~pid:w.pid ~task:idx;
      Observe.Telemetry.counter "queue_depth" (List.length !pending)
    in
    let drop w = workers := List.filter (fun w' -> w' != w) !workers in
    (* Put [idx] back in the queue after its worker died or timed out,
       or give up on it once [retries] re-executions are spent. *)
    let requeue ~why idx =
      if results.(idx) = None then begin
        attempts.(idx) <- attempts.(idx) + 1;
        if attempts.(idx) > retries then
          fail
            (Printf.sprintf "task %d given up after %d attempt(s): %s" idx
               attempts.(idx) why);
        let delay = backoff *. (2. ** float_of_int (attempts.(idx) - 1)) in
        on_event (Requeued { task = idx; attempt = attempts.(idx); delay });
        Observe.Telemetry.worker "requeue" ~pid:0 ~task:idx
          ~args:
            [
              ("attempt", Observe.Json.Int attempts.(idx));
              ("delay", Observe.Json.Float delay);
            ];
        pending := !pending @ [ (idx, now () +. delay) ];
        Observe.Telemetry.counter "queue_depth" (List.length !pending)
      end
    in
    let take_ready t =
      let rec go acc = function
        | [] -> None
        | (i, nb) :: rest when nb <= t ->
            pending := List.rev_append acc rest;
            Some i
        | x :: rest -> go (x :: acc) rest
      in
      go [] !pending
    in
    let next_not_before () =
      List.fold_left (fun a (_, nb) -> min a nb) infinity !pending
    in
    let rec select_retry fds timeout =
      try Unix.select fds [] [] timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> select_retry fds timeout
    in
    (* Read one result frame off [w]. A truncated or unreadable frame
       means the worker died mid-protocol. *)
    let handle_frame w =
      let frame =
        try
          let idx = input_binary_int w.result_in in
          let (reply : _ reply) = Marshal.from_channel w.result_in in
          `Frame (idx, reply)
        with End_of_file | Failure _ | Sys_error _ -> `Died
      in
      match frame with
      | `Frame (idx, Ok_r v) ->
          if results.(idx) = None then begin
            results.(idx) <- Some v;
            incr done_count
          end;
          w.task <- -1;
          w.deadline <- infinity;
          on_event (Completed { pid = w.pid; task = idx });
          Observe.Telemetry.worker "result" ~pid:w.pid ~task:idx
      | `Frame (_, Error_r msg) ->
          (* the task itself raised: deterministic, re-running cannot
             help *)
          fail msg
      | `Died ->
          let idx = w.task and attempt = attempts.(w.task) + 1 in
          incr deaths;
          Observe.Telemetry.worker "died" ~pid:w.pid ~task:idx;
          drop w;
          dispose ~kill:true w;
          on_event (Died { pid = w.pid; task = idx; attempt });
          requeue ~why:"worker died without delivering a result" idx
    in
    (try
       while !done_count < ntasks do
         (* hand ready tasks to idle workers, spawning replacements up
            to the pool size *)
         let rec assign () =
           let idle = List.find_opt (fun w -> w.task < 0) !workers in
           if idle <> None || List.length !workers < nworkers then
             match take_ready (now ()) with
             | Some idx ->
                 let w = match idle with Some w -> w | None -> spawn () in
                 send w idx;
                 assign ()
             | None -> ()
         in
         assign ();
         let busy = List.filter (fun w -> w.task >= 0) !workers in
         if busy = [] then begin
           (* everything pending is backing off; sleep to the earliest
              expiry *)
           let nb = next_not_before () in
           let t = now () in
           if nb > t then ignore (Unix.select [] [] [] (min (nb -. t) 0.25))
         end
         else begin
           let fds = List.map (fun w -> w.result_fd) busy in
           let wake =
             min
               (List.fold_left (fun a w -> min a w.deadline) infinity busy)
               (next_not_before ())
           in
           let timeout =
             if wake = infinity then -1.0 else max 0.0 (wake -. now ())
           in
           let ready, _, _ = select_retry fds timeout in
           List.iter
             (fun fd ->
               match List.find_opt (fun w -> w.result_fd = fd) !workers with
               | Some w -> handle_frame w
               | None -> ())
             ready;
           (* expired deadlines: drain a frame that raced the timeout,
              otherwise kill and re-queue *)
           let t = now () in
           List.iter
             (fun w ->
               if w.task >= 0 && w.deadline <= t && List.memq w !workers then begin
                 let r, _, _ = select_retry [ w.result_fd ] 0.0 in
                 if r <> [] then handle_frame w
                 else begin
                   let idx = w.task in
                   incr deaths;
                   on_event (Timed_out { pid = w.pid; task = idx });
                   Observe.Telemetry.worker "timeout" ~pid:w.pid ~task:idx;
                   drop w;
                   dispose ~kill:true w;
                   requeue ~why:"task timed out" idx
                 end
               end)
             busy
         end
       done
     with
    | Worker_failed _ as e -> raise e (* [fail] already cleaned up *)
    | e ->
        (try cleanup ~kill:true with _ -> ());
        raise e);
    cleanup ~kill:false;
    Array.to_list results
    |> List.map (function
         | Some v -> v
         | None -> raise (Worker_failed "missing result"))
  end

(* The historical strict map: any worker death fails the whole map
   (no re-execution), exactly one attempt per task. *)
let map ?jobs ?on_event f xs = map_robust ?jobs ?on_event ~retries:0 f xs

(* --- Chunked dispatch --------------------------------------------------- *)

(* Dynamic policy: aim for ~4 chunks per worker so the pool can still
   rebalance around a slow chunk, bounded above so one reply frame
   never marshals an unbounded result list and a crashed worker never
   forfeits more than [chunk_cap] items of progress. *)
let chunk_cap = 256

let chunk_size ?chunk ~jobs n =
  match chunk with
  | Some c when c > 0 -> max 1 (min c n)
  | _ ->
      if n <= 1 then 1
      else
        let workers = max 1 jobs in
        max 1 (min chunk_cap (n / (workers * 4)))

let map_chunked ?(jobs = 1) ?chunk ?task_timeout ?retries ?backoff ?on_event f
    xs =
  let n = List.length xs in
  let c = chunk_size ?chunk ~jobs n in
  if n = 0 then []
  else if c <= 1 then
    map_robust ~jobs ?task_timeout ?retries ?backoff ?on_event f xs
  else
    let arr = Array.of_list xs in
    let nchunks = (n + c - 1) / c in
    let chunks =
      List.init nchunks (fun i ->
          let lo = i * c in
          Array.sub arr lo (min c (n - lo)))
    in
    Observe.Telemetry.with_span ~cat:"parallel" "map_chunked"
      ~args:
        [
          ("tasks", Observe.Json.Int n);
          ("chunk", Observe.Json.Int c);
          ("chunks", Observe.Json.Int nchunks);
        ]
    @@ fun () ->
    map_robust ~jobs ?task_timeout ?retries ?backoff ?on_event
      (fun chunk -> Array.map f chunk)
      chunks
    |> List.concat_map Array.to_list
