module Platform = Msp430.Platform
module Energy = Msp430.Energy

(* Figure 9 (+ the §5.4 8 MHz numbers) — end-to-end execution speed
   and energy, normalized to the unified-memory baseline. Shape to
   reproduce: SwapRAM is substantially faster and lower-energy on
   every benchmark except AES (the thrashing outlier); the block
   cache is at best marginal and loses on average. *)

type cell = { speedup : float; energy_ratio : float } (* >1 speedup = faster *)

type row = {
  benchmark : Workloads.Bench_def.t;
  swapram : cell option;
  block : cell option;
}

type t = { frequency : Platform.frequency; rows : row list }

let cell_of base = function
  | Toolchain.Did_not_fit _ -> None
  | Toolchain.Crashed o -> failwith ("fig9: " ^ Report.outcome_cell o)
  | Toolchain.Completed r ->
      Some
        {
          speedup =
            base.Toolchain.energy.Energy.time_s
            /. r.Toolchain.energy.Energy.time_s;
          energy_ratio =
            r.Toolchain.energy.Energy.energy_nj
            /. base.Toolchain.energy.Energy.energy_nj;
        }

let compute ?(seed = 1) ~frequency () =
  let rows =
    List.map
      (fun (e : Sweep.entry) ->
        {
          benchmark = e.Sweep.benchmark;
          swapram = cell_of e.Sweep.baseline e.Sweep.swapram;
          block = cell_of e.Sweep.baseline e.Sweep.block;
        })
      (Sweep.compute ~seed ~frequency ())
  in
  { frequency; rows }

let fmt_cell = function
  | None -> [ "DNF"; "DNF" ]
  | Some c ->
      [
        Printf.sprintf "%.2fx (%+.0f%%)" c.speedup ((c.speedup -. 1.0) *. 100.0);
        Printf.sprintf "%+.0f%%" ((c.energy_ratio -. 1.0) *. 100.0);
      ]

let averages rows get =
  let cells = List.filter_map get rows in
  if cells = [] then (1.0, 1.0)
  else
    ( Report.geo_mean (List.map (fun c -> c.speedup) cells),
      Report.geo_mean (List.map (fun c -> c.energy_ratio) cells) )

let render t =
  let header =
    [ "benchmark"; "SR speed"; "SR energy"; "BB speed"; "BB energy" ]
  in
  let rows =
    List.map
      (fun r ->
        (r.benchmark.Workloads.Bench_def.name :: fmt_cell r.swapram)
        @ fmt_cell r.block)
      t.rows
  in
  let sr_s, sr_e = averages t.rows (fun r -> r.swapram) in
  let bb_s, bb_e = averages t.rows (fun r -> r.block) in
  Report.heading
    (Printf.sprintf "Figure 9: end-to-end speed and energy at %s (vs unified baseline)"
       (Platform.frequency_name t.frequency))
  ^ Report.table ~aligns:[ Report.Left ] (header :: rows)
  ^ Printf.sprintf
      "\ngeo-mean: SwapRAM %+.0f%% speed, %+.0f%% energy; block cache %+.0f%% \
       speed, %+.0f%% energy\n"
      ((sr_s -. 1.0) *. 100.0)
      ((sr_e -. 1.0) *. 100.0)
      ((bb_s -. 1.0) *. 100.0)
      ((bb_e -. 1.0) *. 100.0)
