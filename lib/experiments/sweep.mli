(** Shared evaluation sweep: every benchmark under the three systems
    at a given frequency, memoized per (seed, frequency, observe,
    engine, subset) — Table 2 and Figures 8/9 all read from this
    matrix. Each sweep cross-checks the cached systems' outputs
    against the baseline (the §5.1 validation) and fails loudly on a
    mismatch.

    Cells are host-timed with a monotonic wall clock, and with
    [jobs > 1] the independent (benchmark x system) cells are sharded
    across forked workers; simulated results are identical to a serial
    sweep (each cell is a pure function of its configuration), and the
    merged list is in benchmark order regardless of scheduling. *)

type entry = {
  benchmark : Workloads.Bench_def.t;
  baseline : Toolchain.result;
  swapram : Toolchain.outcome;
  block : Toolchain.outcome;
  baseline_host_s : float;
      (** host wall-clock seconds for the run (CLOCK_MONOTONIC),
          timed inside the worker that executed the cell *)
  swapram_host_s : float;
  block_host_s : float;
}

type t = entry list

val set_default_jobs : int -> unit
(** Worker count used when a sweep is invoked without [?jobs] —
    including indirectly, through figure/table modules that don't
    thread a jobs parameter. Clamped to >= 1; the default is 1
    (serial). *)

val resolve_jobs : int option -> int
(** The worker count a sweep would use for the given [?jobs] argument:
    the argument clamped to >= 1, or the {!set_default_jobs} value. *)

val set_default_progress : Observe.Progress.sink -> unit
(** Progress sink used by sweeps (as [Units_done] events, one per
    finished cell) — process-wide for the same reason as
    {!set_default_jobs}: figure/table modules don't thread a sink.
    Purely observational; the default is {!Observe.Progress.null}. *)

type memo_stats = { hits : int; misses : int }

val memo_stats : unit -> memo_stats
(** Cumulative memo behavior across {!compute} and {!compute_pgo}
    since start (or {!reset_memo_stats}): a hit served a sweep from
    the memo, a miss really ran it ([~cache:false] counts as a miss). *)

val reset_memo_stats : unit -> unit

val timed : (unit -> 'a) -> 'a * float
(** Run a thunk and return (result, elapsed host seconds) on the
    monotonic clock. Exposed for the bench driver's own host-side
    timings. *)

val compute :
  ?seed:int ->
  ?benchmarks:Workloads.Bench_def.t list ->
  ?observe:Toolchain.observe_spec ->
  ?engine:Msp430.Cpu.engine ->
  ?jobs:int ->
  ?cache:bool ->
  frequency:Msp430.Platform.frequency ->
  unit ->
  t
(** [benchmarks] restricts the sweep to a subset (defaults to the full
    suite); [observe] attaches the profiling stack to every run (see
    {!Toolchain.observe_spec}); [engine] pins the simulator engine
    (defaults to the toolchain default); [jobs] overrides
    {!set_default_jobs} for this sweep. Results are memoized per
    (seed, frequency, observed?, engine, subset) — [jobs] is not part
    of the key because it cannot change simulated values. Pass
    [~cache:false] to bypass the memo entirely (neither read nor
    write) when fresh host timings matter more than reuse. *)

type pgo_entry = {
  pgo_benchmark : Workloads.Bench_def.t;
  pgo : (Toolchain.pgo_result, string) result;
  pgo_host_s : float;  (** training + rebuild + measured run *)
}

val compute_pgo :
  ?seed:int ->
  ?benchmarks:Workloads.Bench_def.t list ->
  ?observe:Toolchain.observe_spec ->
  ?engine:Msp430.Cpu.engine ->
  ?jobs:int ->
  frequency:Msp430.Platform.frequency ->
  unit ->
  pgo_entry list
(** Profile-guided {!Toolchain.run_pgo} over the suite (train under
    the default SwapRAM configuration, rebuild with the computed
    placement, measure), one benchmark per worker when [jobs > 1].
    Memoized like {!compute}; [observe] applies to the measured run. *)

val clear_cache : unit -> unit
(** Drop both memo tables. For tests that need to recompute the same
    sweep under different jobs settings and compare results. *)
