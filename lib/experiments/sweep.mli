(** Shared evaluation sweep: every benchmark under the three systems
    at a given frequency, memoized per (seed, frequency) — Table 2 and
    Figures 8/9 all read from this matrix. Each sweep cross-checks the
    cached systems' outputs against the baseline (the §5.1 validation)
    and fails loudly on a mismatch. *)

type entry = {
  benchmark : Workloads.Bench_def.t;
  baseline : Toolchain.result;
  swapram : Toolchain.outcome;
  block : Toolchain.outcome;
  baseline_host_s : float;  (** host wall-clock seconds for the run *)
  swapram_host_s : float;
  block_host_s : float;
}

type t = entry list

val compute :
  ?seed:int ->
  ?benchmarks:Workloads.Bench_def.t list ->
  ?observe:Toolchain.observe_spec ->
  frequency:Msp430.Platform.frequency ->
  unit ->
  t
(** [benchmarks] restricts the sweep to a subset (defaults to the full
    suite); [observe] attaches the profiling stack to every run (see
    {!Toolchain.observe_spec}). Results are memoized per
    (seed, frequency, observed?, subset). *)

type pgo_entry = {
  pgo_benchmark : Workloads.Bench_def.t;
  pgo : (Toolchain.pgo_result, string) result;
  pgo_host_s : float;  (** training + rebuild + measured run *)
}

val compute_pgo :
  ?seed:int ->
  ?benchmarks:Workloads.Bench_def.t list ->
  ?observe:Toolchain.observe_spec ->
  frequency:Msp430.Platform.frequency ->
  unit ->
  pgo_entry list
(** Profile-guided {!Toolchain.run_pgo} over the suite (train under
    the default SwapRAM configuration, rebuild with the computed
    placement, measure). Memoized like {!compute}; [observe] applies
    to the measured run. *)
