module Platform = Msp430.Platform
module Cpu = Msp430.Cpu
module Memory = Msp430.Memory
module Trace = Msp430.Trace
module Energy = Msp430.Energy

(* Build-and-run harness covering every configuration in the paper's
   evaluation: memory placement (Fig. 1), caching system (baseline
   hardware cache / SwapRAM / block cache), clock frequency, and the
   split-SRAM arrangement of §5.5. Data is packed directly after code
   when both live in the same memory (two-phase assembly), the stack
   sits at the top of whichever memory holds program data, and
   binaries that exceed the FR2355's memories are reported DNF as in
   the paper's Fig. 7. *)

type caching =
  | Baseline
  | Swapram_cache of Swapram.Config.options
  | Block_cache of Blockcache.Config.options
  | Checkpoint_runtime of Swapram.Checkpoint.options
      (* periodic whole-state snapshots to FRAM instead of caching;
         always built with the Standard placement (data + stack in
         SRAM) so a restored snapshot is the complete machine state *)

let caching_name = function
  | Baseline -> "baseline"
  | Swapram_cache _ -> "swapram"
  | Block_cache _ -> "block"
  | Checkpoint_runtime _ -> "checkpoint"

type placement =
  | Unified (* code + data in FRAM; SRAM free (for the cache) *)
  | Standard (* code in FRAM, data in SRAM — the conventional setup *)
  | Code_sram (* code in SRAM, data in FRAM (Fig. 1 study) *)
  | All_sram (* both in SRAM (Fig. 1 study) *)
  | Split (* §5.5: data + stack in low SRAM, rest of SRAM is cache *)

let placement_name = function
  | Unified -> "code+data FRAM"
  | Standard -> "code FRAM, data SRAM"
  | Code_sram -> "code SRAM, data FRAM"
  | All_sram -> "code+data SRAM"
  | Split -> "split SRAM"

type config = {
  benchmark : Workloads.Bench_def.t;
  seed : int;
  frequency : Platform.frequency;
  placement : placement;
  caching : caching;
  fuel : int;
  through_disasm : bool; (* route the support library through the
                            disassembler workflow of §4 *)
  engine : Cpu.engine; (* host-simulator execution engine; either
                          engine yields identical simulated results *)
}

(* Process-wide default engine, settable from driver command lines
   (bench --engine=..., swapram_cli --engine ...). Set it before any
   sweep runs: {!Sweep} resolves it into its memo keys at call time. *)
let default_engine_ref = ref Cpu.Superblock
let set_default_engine e = default_engine_ref := e
let default_engine () = !default_engine_ref

let default_config benchmark =
  {
    benchmark;
    seed = 1;
    frequency = Platform.Mhz24;
    placement = Unified;
    caching = Baseline;
    fuel = 2_000_000_000;
    through_disasm = false;
    engine = !default_engine_ref;
  }

let stack_reserve = 384

type sizes = { code_bytes : int; data_bytes : int }

(* --- Observability ----------------------------------------------------- *)

(* What to attach to the run. The profiler is always on when a spec is
   given; the event ring and the windowed metrics sampler are optional
   because most callers only want the attribution tables. *)
type observe_spec = {
  events_capacity : int;
  events_keep_all : bool;
  metrics_window : int; (* 0 disables the time-series sampler *)
  metrics_buckets : int;
}

let default_observe =
  {
    events_capacity = 4096;
    events_keep_all = false;
    metrics_window = 0;
    metrics_buckets = 48;
  }

let metrics_observe = { default_observe with metrics_window = 65536 }

(* Runtime-specific cache-unit context, shared by the metrics sampler
   and the replay recorder: what the installed runtime caches (its
   reuse granule), its configured capacity, the live hooks that
   resolve events to cache units, and — for the function granule —
   the fid -> size table snapshotted through the same hook the
   sampler uses, so a replayed run answers size queries identically. *)
type unit_context = {
  uc_reuse : Observe.Metrics.reuse_mode;
  uc_budget : int;
  uc_hooks : Observe.Metrics.hooks;
  uc_sizes : int array; (* Functions granule only; [||] otherwise *)
}

let unit_context ~swapram ~block =
  match (swapram, block) with
  | Some (rt, (manifest : Swapram.Instrument.manifest)), _ ->
      let nfuncs = Array.length manifest.Swapram.Instrument.funcs in
      let fid_size fid =
        if fid < 0 || fid >= nfuncs then 0
        else
          (* Uncounted host-side peek of the FRAM function table:
             entry layout is 8 bytes, size word at offset 2. *)
          Memory.peek_word rt.Swapram.Runtime.mem
            (rt.Swapram.Runtime.addrs.Swapram.Runtime.a_functab
            + (8 * fid) + 2)
      in
      {
        uc_reuse = Observe.Metrics.Functions;
        uc_budget = rt.Swapram.Runtime.options.Swapram.Config.cache_size;
        uc_hooks =
          {
            Observe.Metrics.h_fid_size = fid_size;
            h_call_unit = Swapram.Runtime.cached_function_at rt;
            h_ifetch_home = (fun a -> a);
          };
        uc_sizes = Array.init nfuncs fid_size;
      }
  | None, Some rt ->
      let slot = Blockcache.Runtime.slot_bytes rt in
      {
        uc_reuse = Observe.Metrics.Lines slot;
        uc_budget = Blockcache.Runtime.cache_bytes rt;
        uc_hooks =
          {
            Observe.Metrics.h_fid_size = (fun _ -> 0);
            h_call_unit =
              (fun a ->
                Option.map
                  (fun nvm -> nvm / slot)
                  (Blockcache.Runtime.cached_block_at rt a));
            h_ifetch_home =
              (fun a ->
                match Blockcache.Runtime.cached_block_at rt a with
                | Some nvm -> nvm
                | None -> a);
          };
        uc_sizes = [||];
      }
  | None, None ->
      {
        uc_reuse = Observe.Metrics.Lines 64;
        uc_budget = 0;
        uc_hooks = Observe.Metrics.null_hooks;
        uc_sizes = [||];
      }

type observation = {
  o_symtab : Observe.Symtab.t;
  o_profiler : Observe.Profiler.t;
  o_events : Observe.Events.t option;
  o_metrics : Observe.Metrics.t option;
}

(* Attach the observability stack to a prepared system: build the
   symbol table from the link map, register dynamic resolvers for
   whichever caching runtime is installed (so pc values inside SRAM
   cache copies resolve to stable function names), and fan the trace
   event stream out to the profiler and the optional event ring.

   Everything here is host-side spectating — the observer runs after
   the simulator's counters update and issues no counted accesses, so
   an observed run is cycle-for-cycle identical to an unobserved one
   (asserted by `swapram_cli profile --verify` and the property
   tests). *)
let attach_observation spec ~image ~(system : Platform.system) ~swapram ~block =
  let symtab = Observe.Symtab.of_image image in
  (match swapram with
  | Some (rt, (manifest : Swapram.Instrument.manifest)) ->
      Observe.Symtab.add_resolver symtab (fun addr ->
          match Swapram.Runtime.cached_function_at rt addr with
          | Some fid when fid < Array.length manifest.Swapram.Instrument.funcs
            ->
              Some
                manifest.Swapram.Instrument.funcs.(fid)
                  .Swapram.Instrument.fm_name
          | Some _ | None -> None)
  | None -> ());
  (match block with
  | Some rt ->
      Observe.Symtab.add_resolver symtab (fun addr ->
          match Blockcache.Runtime.cached_block_at rt addr with
          | Some nvm -> Observe.Symtab.static_name_of symtab nvm
          | None -> None)
  | None -> ());
  let stats = Memory.stats system.Platform.memory in
  let profiler = Observe.Profiler.create symtab in
  let events =
    if spec.events_capacity > 0 then
      Some
        (Observe.Events.create ~keep_all:spec.events_keep_all
           ~capacity:spec.events_capacity stats)
    else None
  in
  let metrics =
    if spec.metrics_window <= 0 then None
    else begin
      (* Runtime-specific resolvers for the metrics sampler: the cache
         unit is what the installed runtime actually caches (whole
         functions for SwapRAM, fixed slots for the block cache, a
         nominal 64-byte line for the uncached baseline), so the
         predicted miss-ratio curve is directly comparable to the
         runtime's measured miss rate. *)
      let uc = unit_context ~swapram ~block in
      Some
        (Observe.Metrics.create
           {
             Observe.Metrics.window_cycles = spec.metrics_window;
             buckets = spec.metrics_buckets;
             reuse = uc.uc_reuse;
             config_budget = uc.uc_budget;
           }
           ~params:(Platform.energy_params system.Platform.frequency)
           ~fram:(Platform.fram_base, Platform.fram_base + Platform.fram_size)
           ~sram:(Platform.sram_base, Platform.sram_base + Platform.sram_size)
           uc.uc_hooks)
    end
  in
  let observers =
    Observe.Profiler.observer profiler
    :: Option.to_list (Option.map Observe.Events.observer events)
    @ Option.to_list (Option.map Observe.Metrics.observer metrics)
  in
  let observer =
    match observers with
    | [ f ] -> f
    | fs -> fun ev -> List.iter (fun f -> f ev) fs
  in
  Trace.set_observer stats (Some observer);
  { o_symtab = symtab; o_profiler = profiler; o_events = events; o_metrics = metrics }

type result = {
  stats : Trace.t;
  energy : Energy.report;
  uart : string;
  return_value : int;
  sizes : sizes;
  swapram_stats : Swapram.Runtime.stats option;
  swapram_manifest : Swapram.Instrument.manifest option;
  swapram_usage : Swapram.Pipeline.nvm_usage option;
  block_stats : Blockcache.Runtime.stats option;
  block_usage : Blockcache.Pipeline.nvm_usage option;
  checkpoint_stats : Swapram.Checkpoint.stats option;
  observation : observation option;
}

type outcome =
  | Completed of result
  | Crashed of Cpu.run_outcome (* ended in anything but a clean halt *)
  | Did_not_fit of string

exception Fit_error of string

let fram_end = Platform.fram_base + Platform.fram_size
let sram_end = Platform.sram_base + Platform.sram_size
let code_base_fram = Platform.fram_base + 0x400

(* (code_base, code_limit, data_base option [None = packed after code],
   data_limit, stack_top) *)
let region_plan placement =
  match placement with
  | Unified ->
      (code_base_fram, fram_end, None, fram_end - stack_reserve, fram_end)
  | Standard ->
      ( code_base_fram,
        fram_end,
        Some Platform.sram_base,
        sram_end - stack_reserve,
        sram_end )
  | Code_sram ->
      ( Platform.sram_base,
        sram_end,
        Some code_base_fram,
        fram_end - stack_reserve,
        fram_end )
  | All_sram ->
      (Platform.sram_base, sram_end, None, sram_end - stack_reserve, sram_end)
  | Split ->
      (* stack_top recomputed once the data size is known *)
      (code_base_fram, fram_end, Some Platform.sram_base, sram_end, 0)

let probe_layout code_base = { Masm.Assembler.code_base; data_base = 0xE000 }

let check_fit ~what ~code_limit ~data_limit image =
  if image.Masm.Assembler.code_end > code_limit then
    raise
      (Fit_error
         (Printf.sprintf "%s: code ends at 0x%04X (limit 0x%04X)" what
            image.Masm.Assembler.code_end code_limit));
  if image.Masm.Assembler.data_end > data_limit then
    raise
      (Fit_error
         (Printf.sprintf "%s: data ends at 0x%04X (limit 0x%04X)" what
            image.Masm.Assembler.data_end data_limit))

(* A built, loaded and armed system that has not started executing.
   [run] drives it to completion in one shot; the fault-injection
   subsystem instead interleaves bounded runs with power failures and
   reboots, which is why build/boot/collect are exposed separately. *)
type prepared = {
  p_config : config;
  p_system : Platform.system;
  p_image : Masm.Assembler.t;
  p_stack_top : int;
  p_data_size : int;
  p_swapram : Swapram.Runtime.t option;
  p_block : Blockcache.Runtime.t option;
  p_checkpoint : Swapram.Checkpoint.t option;
  p_sr_manifest : Swapram.Instrument.manifest option;
  p_sr_usage : Swapram.Pipeline.nvm_usage option;
  p_bb_usage : Blockcache.Pipeline.nvm_usage option;
  p_observation : observation option;
}

let prepare ?observe config =
  (* The checkpoint runtime requires every application data item to be
     volatile (snapshot-covered), so it forces the Standard placement
     and reserves its FRAM arena by lowering the code limit. *)
  let placement, arena_limit =
    match config.caching with
    | Checkpoint_runtime _ -> (Standard, Some Swapram.Checkpoint.arena_base)
    | Baseline | Swapram_cache _ | Block_cache _ -> (config.placement, None)
  in
  let code_base, code_limit, data_base_opt, data_limit, stack_top =
    region_plan placement
  in
  let code_limit =
    match arena_limit with Some l -> min code_limit l | None -> code_limit
  in
  let source = config.benchmark.Workloads.Bench_def.source config.seed in
  let program =
    Minic.Driver.program_of_source ~through_disasm:config.through_disasm source
  in
  (* data size is layout-independent; probe it with a plain assembly *)
  let plain_probe = Masm.Assembler.assemble ~layout:(probe_layout code_base) program in
  let data_size = Masm.Assembler.data_size plain_probe in
  (* Split: SRAM = [data][stack][code cache]; SP sits between *)
  let stack_top, cache_region =
    match placement with
    | Split ->
        let top = (Platform.sram_base + data_size + stack_reserve + 1) land lnot 1 in
        (top, Some (top, sram_end - top))
    | Unified | Standard | Code_sram | All_sram -> (stack_top, None)
  in
  let caching =
    match (config.caching, cache_region) with
    | Swapram_cache o, Some (base, size) ->
        Swapram_cache { o with Swapram.Config.cache_base = base; cache_size = size }
    | Block_cache o, Some (base, size) ->
        Block_cache { o with Blockcache.Config.cache_base = base; cache_size = size }
    | c, _ -> c
  in
  let layout_for code_end =
    let data_base =
      match data_base_opt with
      | Some b -> b
      | None -> (code_end + 3) land lnot 1
    in
    { Masm.Assembler.code_base; data_base }
  in
  let build () =
    match caching with
    | Baseline ->
        let probe = Masm.Assembler.assemble ~layout:(probe_layout code_base) program in
        let image =
          Masm.Assembler.assemble ~layout:(layout_for probe.Masm.Assembler.code_end)
            program
        in
        check_fit ~what:"baseline" ~code_limit ~data_limit image;
        ( image,
          (fun system ->
            Masm.Assembler.load image system.Platform.memory;
            (None, None, None)),
          None,
          None,
          None )
    | Swapram_cache options ->
        let probe =
          Swapram.Pipeline.build ~options ~layout:(probe_layout code_base) program
        in
        let built =
          Swapram.Pipeline.build ~options
            ~layout:
              (layout_for probe.Swapram.Pipeline.image.Masm.Assembler.code_end)
            program
        in
        let image = built.Swapram.Pipeline.image in
        check_fit ~what:"swapram" ~code_limit ~data_limit image;
        ( image,
          (fun system ->
            (Some (Swapram.Pipeline.install built system), None, None)),
          Some built.Swapram.Pipeline.manifest,
          Some (Swapram.Pipeline.nvm_usage built),
          None )
    | Block_cache options ->
        let probe =
          Blockcache.Pipeline.build ~options ~layout:(probe_layout code_base)
            program
        in
        let built =
          Blockcache.Pipeline.build ~options
            ~layout:
              (layout_for probe.Blockcache.Pipeline.image.Masm.Assembler.code_end)
            program
        in
        let image = built.Blockcache.Pipeline.image in
        check_fit ~what:"block cache" ~code_limit ~data_limit image;
        ( image,
          (fun system ->
            (None, Some (Blockcache.Pipeline.install built system), None)),
          None,
          None,
          Some (Blockcache.Pipeline.nvm_usage built) )
    | Checkpoint_runtime options ->
        (* built exactly like the baseline — no code transformation;
           the runtime lives entirely in the reserved arena *)
        let probe = Masm.Assembler.assemble ~layout:(probe_layout code_base) program in
        let image =
          Masm.Assembler.assemble ~layout:(layout_for probe.Masm.Assembler.code_end)
            program
        in
        check_fit ~what:"checkpoint" ~code_limit ~data_limit image;
        ( image,
          (fun system ->
            Masm.Assembler.load image system.Platform.memory;
            (None, None, Some (Swapram.Checkpoint.install ~options system))),
          None,
          None,
          None )
  in
  match build () with
  | exception Fit_error msg -> Error msg
  | image, install, sr_manifest, sr_usage, bb_usage ->
      let system = Platform.create config.frequency in
      Cpu.set_engine system.Platform.cpu config.engine;
      let sr_rt, bb_rt, ck_rt = install system in
      let observation =
        Option.map
          (fun spec ->
            attach_observation spec ~image ~system
              ~swapram:
                (match (sr_rt, sr_manifest) with
                | Some rt, Some m -> Some (rt, m)
                | _ -> None)
              ~block:bb_rt)
          observe
      in
      Ok
        {
          p_config = config;
          p_system = system;
          p_image = image;
          p_stack_top = stack_top;
          p_data_size = data_size;
          p_swapram = sr_rt;
          p_block = bb_rt;
          p_checkpoint = ck_rt;
          p_sr_manifest = sr_manifest;
          p_sr_usage = sr_usage;
          p_bb_usage = bb_usage;
          p_observation = observation;
        }

let phase_marker p name =
  if p.p_observation <> None then
    Trace.emit
      (Memory.stats p.p_system.Platform.memory)
      (Trace.Runtime_event (Trace.Phase { name }))

let boot_regs p =
  Cpu.set_reg p.p_system.Platform.cpu Msp430.Isa.sp p.p_stack_top;
  Cpu.set_reg p.p_system.Platform.cpu Msp430.Isa.pc
    (Masm.Assembler.lookup p.p_image Minic.Driver.entry_name)

let boot p =
  phase_marker p "boot";
  boot_regs p

(* Replay the boot path after a power failure: restore whichever
   caching runtime is installed (counted FRAM writes — an armed power
   trigger can interrupt them with Memory.Power_loss) and reload
   SP/PC. The caller applies Platform.power_fail first. *)
let reboot p =
  phase_marker p "reboot";
  match p.p_checkpoint with
  | Some rt -> (
      (* a restored snapshot carries its own PC/SP — only a cold
         restart reloads the entry vector *)
      match Swapram.Checkpoint.reboot rt ~image:p.p_image with
      | Swapram.Checkpoint.Resumed -> ()
      | Swapram.Checkpoint.Restarted -> boot_regs p)
  | None ->
      (match p.p_swapram with
      | Some rt -> Swapram.Runtime.reboot rt ~image:p.p_image
      | None -> ());
      (match p.p_block with
      | Some rt -> Blockcache.Runtime.reboot rt ~image:p.p_image
      | None -> ());
      boot_regs p

let collect p =
  let system = p.p_system in
  {
    stats = Cpu.stats system.Platform.cpu;
    energy = Platform.report system;
    uart = Memory.uart_output system.Platform.memory;
    return_value = Cpu.reg system.Platform.cpu 12;
    sizes =
      {
        code_bytes = Masm.Assembler.code_size p.p_image;
        data_bytes = p.p_data_size;
      };
    swapram_stats = Option.map Swapram.Runtime.stats p.p_swapram;
    swapram_manifest = p.p_sr_manifest;
    swapram_usage = p.p_sr_usage;
    block_stats = Option.map Blockcache.Runtime.stats p.p_block;
    block_usage = p.p_bb_usage;
    checkpoint_stats = Option.map Swapram.Checkpoint.stats p.p_checkpoint;
    observation = p.p_observation;
  }

(* Telemetry phase boundaries: [span] tags build/execute/collect with
   the cell's identity, so a host-side timeline attributes simulator
   time to (benchmark, system) pairs. Pure spectating — a disabled
   sink reduces every [span] call to its thunk. *)
let phase_span config name f =
  Observe.Telemetry.with_span ~cat:"toolchain" name
    ~args:
      [
        ( "benchmark",
          Observe.Json.String config.benchmark.Workloads.Bench_def.name );
        ("system", Observe.Json.String (caching_name config.caching));
      ]
    f

let run ?observe config =
  match phase_span config "prepare" (fun () -> prepare ?observe config) with
  | Error msg -> Did_not_fit msg
  | Ok p -> (
      boot p;
      match
        phase_span config "execute" (fun () ->
            Cpu.run ~fuel:config.fuel p.p_system.Platform.cpu)
      with
      | Cpu.Halted ->
          Completed (phase_span config "collect" (fun () -> collect p))
      | (Cpu.Fuel_exhausted | Cpu.Faulted _ | Cpu.Power_lost) as o -> Crashed o)

(* --- Trace recording (replay subsystem) -------------------------------- *)

(* Canonical rendering of everything in a configuration that can
   change simulated results. The engine is deliberately excluded
   (either engine yields identical simulated values), as is the
   observation spec (pure spectating). *)
let config_canonical config =
  let buf = Buffer.create 160 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "benchmark=%s;seed=%d;freq=%s;placement=%s;fuel=%d;disasm=%b;"
    config.benchmark.Workloads.Bench_def.name config.seed
    (Platform.frequency_name config.frequency)
    (placement_name config.placement)
    config.fuel config.through_disasm;
  (match config.caching with
  | Baseline -> add "caching=baseline"
  | Swapram_cache o ->
      add "caching=swapram;base=%d;size=%d;policy=%s;debug=%b;prefetch=%d;"
        o.Swapram.Config.cache_base o.Swapram.Config.cache_size
        (Swapram.Cache.policy_name o.Swapram.Config.policy)
        o.Swapram.Config.debug_checks o.Swapram.Config.prefetch;
      add "blacklist=%s;" (String.concat "," o.Swapram.Config.blacklist);
      (match o.Swapram.Config.freeze with
      | None -> add "freeze=none;"
      | Some (threshold, window) -> add "freeze=%d/%d;" threshold window);
      (match o.Swapram.Config.pgo with
      | None -> add "pgo=none"
      | Some p ->
          add "pgo=pinned[%s]hot[%s]fram[%s]budget=%d"
            (String.concat "," p.Swapram.Pgo.pl_pinned)
            (String.concat "," p.Swapram.Pgo.pl_hot_order)
            (String.concat "," p.Swapram.Pgo.pl_fram_resident)
            p.Swapram.Pgo.pl_budget)
  | Block_cache o ->
      add "caching=block;base=%d;size=%d;maxblock=%d;debug=%b"
        o.Blockcache.Config.cache_base o.Blockcache.Config.cache_size
        o.Blockcache.Config.max_block_bytes o.Blockcache.Config.debug_checks
  | Checkpoint_runtime o ->
      add "caching=checkpoint;interval=%d" o.Swapram.Checkpoint.interval);
  Buffer.contents buf

(* FNV-1a over the canonical string, folded to a nonnegative 62-bit
   int so it round-trips through the JSON emitter's Int. Stable
   across hosts and OCaml versions — it keys memo entries and golden
   trace files. *)
let config_fingerprint config =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code ch)))
          0x100000001b3L)
    (config_canonical config);
  Int64.to_int (Int64.logand !h 0x3FFF_FFFF_FFFF_FFFFL)

let recording_header ?unit_context:uc config =
  let uc =
    match uc with
    | Some uc -> uc
    | None ->
        {
          uc_reuse = Observe.Metrics.Lines 64;
          uc_budget = 0;
          uc_hooks = Observe.Metrics.null_hooks;
          uc_sizes = [||];
        }
  in
  {
    Replay.Trace_file.benchmark = config.benchmark.Workloads.Bench_def.name;
    seed = config.seed;
    frequency_mhz =
      (match config.frequency with Platform.Mhz8 -> 8 | Platform.Mhz24 -> 24);
    wait_states = Platform.wait_states config.frequency;
    (* Memory.create's default; the platform never overrides it. *)
    contention_penalty = 1;
    system = caching_name config.caching;
    placement = placement_name config.placement;
    budget = uc.uc_budget;
    granularity =
      (match uc.uc_reuse with
      | Observe.Metrics.Functions -> Replay.Trace_file.Functions uc.uc_sizes
      | Observe.Metrics.Lines n -> Replay.Trace_file.Lines n
      | Observe.Metrics.No_reuse -> Replay.Trace_file.Lines 64);
    fingerprint = config_fingerprint config;
  }

(* Record a run into [trace]: prepare as usual (any ?observe stack
   attaches first), snapshot the unit context, then ride the trace
   tap. Attaching an observer forces the cycle-identical reference
   engine, so a recorded run's results equal an observed one's. The
   file is completed only on a clean halt; crashed or non-fitting
   runs leave no trace file behind. *)
let run_recorded ?observe ~trace config =
  phase_span config "record" @@ fun () ->
  match prepare ?observe config with
  | Error msg -> Did_not_fit msg
  | Ok p -> (
      let uc =
        unit_context
          ~swapram:
            (match (p.p_swapram, p.p_sr_manifest) with
            | Some rt, Some m -> Some (rt, m)
            | _ -> None)
          ~block:p.p_block
      in
      let header = recording_header ~unit_context:uc config in
      let w = Replay.Trace_file.create_writer trace header in
      let enrich =
        {
          Replay.Trace_file.en_call_unit =
            uc.uc_hooks.Observe.Metrics.h_call_unit;
          en_ifetch_home = uc.uc_hooks.Observe.Metrics.h_ifetch_home;
        }
      in
      Trace.add_observer
        (Memory.stats p.p_system.Platform.memory)
        (Replay.Trace_file.recorder w enrich);
      boot p;
      match Cpu.run ~fuel:config.fuel p.p_system.Platform.cpu with
      | Cpu.Halted ->
          Replay.Trace_file.close_writer w;
          Completed (collect p)
      | (Cpu.Fuel_exhausted | Cpu.Faulted _ | Cpu.Power_lost) as o ->
          Replay.Trace_file.discard_writer w;
          Crashed o)

(* --- Profile-guided placement (train -> place -> rebuild -> measure) -- *)

(* Per-function training profile out of a completed observed run: the
   manifest carries names/fids/code sizes, the profiler the dynamic
   counts. Calls that missed trapped to the handler vector (the
   redirection entry held the trap address), so they symbolized under
   the trap's name — a function's true call count is its resolved
   calls plus its miss-handler exits. *)
let profile_of_training ~benchmark ~cache_size
    (manifest : Swapram.Instrument.manifest) profiler =
  let funcs =
    Array.to_list manifest.Swapram.Instrument.funcs
    |> List.map (fun (fm : Swapram.Instrument.func_meta) ->
           let name = fm.Swapram.Instrument.fm_name in
           let misses =
             Observe.Profiler.miss_exits_of profiler fm.Swapram.Instrument.fid
           in
           let calls = Observe.Profiler.calls_to profiler name + misses in
           let instrs, cycles =
             match Observe.Profiler.counters_of profiler name with
             | Some c ->
                 (c.Observe.Profiler.instrs, Observe.Profiler.cycles_of c)
             | None -> (0, 0)
           in
           {
             Swapram.Pgo.fp_name = name;
             fp_size = fm.Swapram.Instrument.fm_size;
             fp_calls = calls;
             fp_misses = misses;
             fp_instrs = instrs;
             fp_cycles = cycles;
           })
  in
  {
    Swapram.Pgo.pr_benchmark = benchmark;
    pr_cache_size = cache_size;
    pr_funcs = funcs;
  }

type pgo_result = {
  pg_profile : Swapram.Pgo.profile;
  pg_placement : Swapram.Pgo.placement;
  pg_train : result; (* the training run (default placement, observed) *)
  pg_measured : outcome; (* the rebuilt run with the placement applied *)
}

let run_pgo ?observe ?budget ?profile config =
  phase_span config "pgo" @@ fun () ->
  match config.caching with
  | Baseline | Block_cache _ | Checkpoint_runtime _ ->
      Error "pgo requires a swapram configuration"
  | Swapram_cache base_opts -> (
      let train_config =
        {
          config with
          caching =
            Swapram_cache { base_opts with Swapram.Config.pgo = None };
        }
      in
      match run ~observe:default_observe train_config with
      | Did_not_fit msg -> Error ("pgo training run did not fit: " ^ msg)
      | Crashed o -> Error ("pgo training run crashed: " ^ Cpu.outcome_name o)
      | Completed train -> (
          let manifest = Option.get train.swapram_manifest in
          let profiler =
            match train.observation with
            | Some o -> o.o_profiler
            | None -> assert false (* trained with an observe spec *)
          in
          (* Note: for the Split placement the cache region is
             recomputed inside [prepare]; the knapsack budget below
             uses the configured cache_size, which is exact for the
             Unified placement used everywhere PGO results are
             reported. *)
          let profile =
            match profile with
            | Some p -> p
            | None ->
                profile_of_training
                  ~benchmark:config.benchmark.Workloads.Bench_def.name
                  ~cache_size:base_opts.Swapram.Config.cache_size manifest
                  profiler
          in
          let placement = Swapram.Pgo.place ?budget profile in
          let measured_config =
            {
              config with
              caching =
                Swapram_cache
                  { base_opts with Swapram.Config.pgo = Some placement };
            }
          in
          let measured = run ?observe measured_config in
          match measured with
          | Completed m
            when m.uart <> train.uart || m.return_value <> train.return_value
            ->
              Error "pgo: measured run output diverged from training run"
          | Completed _ | Crashed _ | Did_not_fit _ ->
              Ok
                {
                  pg_profile = profile;
                  pg_placement = placement;
                  pg_train = train;
                  pg_measured = measured;
                }))
