module Platform = Msp430.Platform
module Trace = Msp430.Trace

(* Ablations over the design choices DESIGN.md calls out:
   - replacement structure: circular queue (the paper's choice) vs a
     stack ("most-recently-cached" — the structure §3.4 argues
     against);
   - the anti-thrashing freeze extension sketched in §5.4, on the AES
     pathology;
   - SRAM cache size sensitivity;
   - the §4 library-instrumentation path (disassembled library vs
     source-level), which must be performance-neutral. *)

type run_cells = {
  cycles : int;
  fram : int;
  misses : int;
  aborts : int;
  evictions : int;
}

let cells_of outcome =
  let r = Report.expect_completed ~what:"ablation" outcome in
  let s = Option.get r.Toolchain.swapram_stats in
      {
        cycles = Trace.total_cycles r.Toolchain.stats;
        fram = Trace.fram_accesses r.Toolchain.stats;
        misses = s.Swapram.Runtime.misses;
        aborts = s.Swapram.Runtime.aborts + s.Swapram.Runtime.too_large;
        evictions = s.Swapram.Runtime.evictions;
      }

let run_sr ?(seed = 1) benchmark options =
  cells_of
    (Toolchain.run
       {
         (Toolchain.default_config benchmark) with
         Toolchain.seed;
         caching = Toolchain.Swapram_cache options;
       })

type t = {
  policy_rows : (string * run_cells * run_cells) list; (* queue, stack *)
  cost_rows : (string * run_cells * run_cells) list; (* queue, cost-aware *)
  prefetch_rows : (string * run_cells * run_cells * int) list;
      (* off, on, prefetch count *)
  freeze_rows : (string * run_cells * run_cells) list; (* off, on *)
  size_rows : (string * int * run_cells) list; (* bench, cache size, cells *)
  disasm_neutral : (string * int * int) list; (* bench, direct, via disasm *)
}

let ablation_benchmarks =
  Workloads.Suite.[ crc; rc4; aes; bitcount; rsa ]

let compute ?(seed = 1) () =
  let default = Swapram.Config.default_options in
  let policy_rows =
    List.map
      (fun b ->
        ( b.Workloads.Bench_def.name,
          run_sr ~seed b default,
          run_sr ~seed b { default with Swapram.Config.policy = Swapram.Cache.Stack } ))
      ablation_benchmarks
  in
  let cost_rows =
    List.map
      (fun b ->
        ( b.Workloads.Bench_def.name,
          run_sr ~seed b default,
          run_sr ~seed b
            { default with Swapram.Config.policy = Swapram.Cache.Cost_aware } ))
      ablation_benchmarks
  in
  let prefetch_rows =
    List.map
      (fun b ->
        let off = run_sr ~seed b default in
        let on_result =
          Toolchain.run
            {
              (Toolchain.default_config b) with
              Toolchain.seed;
              caching =
                Toolchain.Swapram_cache
                  { default with Swapram.Config.prefetch = 2 };
            }
        in
        let on = cells_of on_result in
        let prefetches =
          match on_result with
          | Toolchain.Completed r ->
              (Option.get r.Toolchain.swapram_stats).Swapram.Runtime.prefetches
          | Toolchain.Crashed _ | Toolchain.Did_not_fit _ -> 0
        in
        (b.Workloads.Bench_def.name, off, on, prefetches))
      [ Workloads.Suite.aes; Workloads.Suite.crc; Workloads.Suite.rsa ]
  in
  let freeze_rows =
    List.map
      (fun b ->
        ( b.Workloads.Bench_def.name,
          run_sr ~seed b default,
          run_sr ~seed b { default with Swapram.Config.freeze = Some (3, 64) } ))
      [ Workloads.Suite.aes ]
  in
  let size_rows =
    List.concat_map
      (fun b ->
        List.map
          (fun size ->
            ( b.Workloads.Bench_def.name,
              size,
              run_sr ~seed b { default with Swapram.Config.cache_size = size } ))
          [ 1024; 2048; 3072; 4096 ])
      [ Workloads.Suite.aes; Workloads.Suite.crc ]
  in
  let disasm_neutral =
    List.map
      (fun b ->
        let run through_disasm =
          match
            Toolchain.run
              {
                (Toolchain.default_config b) with
                Toolchain.seed;
                caching = Toolchain.Swapram_cache default;
                through_disasm;
              }
          with
          | outcome ->
              Trace.total_cycles
                (Report.expect_completed ~what:"ablation disasm" outcome)
                  .Toolchain.stats
        in
        (b.Workloads.Bench_def.name, run false, run true))
      [ Workloads.Suite.crc; Workloads.Suite.rsa ]
  in
  { policy_rows; cost_rows; prefetch_rows; freeze_rows; size_rows; disasm_neutral }

let render t =
  let pair_table title a_name b_name rows =
    Report.heading title
    ^ Report.table ~aligns:[ Report.Left ]
        ([ "benchmark";
           a_name ^ " cyc (M)"; a_name ^ " aborts"; a_name ^ " evic";
           b_name ^ " cyc (M)"; b_name ^ " aborts"; b_name ^ " evic"; "delta" ]
        :: List.map
             (fun (name, a, b) ->
               [
                 name;
                 Report.millions a.cycles;
                 string_of_int a.aborts;
                 string_of_int a.evictions;
                 Report.millions b.cycles;
                 string_of_int b.aborts;
                 string_of_int b.evictions;
                 Report.pct ~vs:a.cycles b.cycles;
               ])
             rows)
    ^ "\n\n"
  in
  pair_table "Ablation: circular queue vs stack replacement" "queue" "stack"
    t.policy_rows
  ^ pair_table "Ablation: circular queue vs cost-aware placement (SS3.4 future work)"
      "queue" "cost" t.cost_rows
  ^ Report.heading "Ablation: call-graph prefetch extension"
  ^ Report.table ~aligns:[ Report.Left ]
      ([ "benchmark"; "off cyc (M)"; "on cyc (M)"; "prefetches"; "delta" ]
      :: List.map
           (fun (name, off, on, prefetches) ->
             [
               name;
               Report.millions off.cycles;
               Report.millions on.cycles;
               string_of_int prefetches;
               Report.pct ~vs:off.cycles on.cycles;
             ])
           t.prefetch_rows)
  ^ "\n\n"
  ^ pair_table "Ablation: freeze-on-thrash extension (AES)" "off" "freeze"
      t.freeze_rows
  ^ Report.heading "Ablation: SRAM cache size"
  ^ Report.table ~aligns:[ Report.Left ]
      ([ "benchmark"; "cache (B)"; "cycles (M)"; "FRAM (M)"; "misses"; "aborts" ]
      :: List.map
           (fun (name, size, c) ->
             [
               name;
               string_of_int size;
               Report.millions c.cycles;
               Report.millions c.fram;
               string_of_int c.misses;
               string_of_int c.aborts;
             ])
           t.size_rows)
  ^ "\n\n"
  ^ Report.heading "Ablation: library instrumentation via disassembler (§4)"
  ^ Report.table ~aligns:[ Report.Left ]
      ([ "benchmark"; "source-level cyc"; "disassembled cyc"; "delta" ]
      :: List.map
           (fun (name, direct, lifted) ->
             [
               name;
               string_of_int direct;
               string_of_int lifted;
               Report.pct ~vs:direct lifted;
             ])
           t.disasm_neutral)
  ^ "\n"
