module Trace = Msp430.Trace

(* Table 1 — per-benchmark binary size, RAM usage and the ratio of
   code-space to data-space accesses on the unified-memory baseline.
   The paper's central observation: instruction fetches dominate the
   memory traffic of embedded software (average ratio ~3x). *)

type row = {
  benchmark : Workloads.Bench_def.t;
  binary_bytes : int;
  ram_bytes : int;
  code_data_ratio : float;
}

type t = { rows : row list; average_ratio : float }

let compute ?(seed = 1) ?benchmarks () =
  let benchmarks =
    match benchmarks with Some bs -> bs | None -> Workloads.Suite.all
  in
  let rows =
    List.map
      (fun benchmark ->
        let config =
          { (Toolchain.default_config benchmark) with Toolchain.seed }
        in
        let r =
          Report.expect_completed
            ~what:(benchmark.Workloads.Bench_def.name ^ " (tab1)")
            (Toolchain.run config)
        in
        let stats = r.Toolchain.stats in
            {
              benchmark;
              binary_bytes = r.Toolchain.sizes.Toolchain.code_bytes;
              ram_bytes = r.Toolchain.sizes.Toolchain.data_bytes;
              code_data_ratio =
                Report.ratio
                  ~vs:(Trace.data_accesses stats)
                  (Trace.code_accesses stats);
            })
      benchmarks
  in
  let average_ratio =
    List.fold_left (fun acc r -> acc +. r.code_data_ratio) 0.0 rows
    /. float_of_int (List.length rows)
  in
  { rows; average_ratio }

let render t =
  let rows =
    [ "benchmark"; "binary (B)"; "RAM (B)"; "code/data ratio" ]
    :: List.map
         (fun r ->
           [
             r.benchmark.Workloads.Bench_def.name;
             string_of_int r.binary_bytes;
             string_of_int r.ram_bytes;
             Printf.sprintf "%.3f" r.code_data_ratio;
           ])
         t.rows
    @ [ [ "average"; ""; ""; Printf.sprintf "%.3f" t.average_ratio ] ]
  in
  Report.heading "Table 1: benchmark footprint and code/data access ratio"
  ^ Report.table ~aligns:[ Report.Left ] rows
  ^ "\n"
