module Platform = Msp430.Platform
module Trace = Msp430.Trace

(* Figure 1 — memory placement study: the arith microbenchmark with
   {code, data} x {FRAM, SRAM} at 8 and 24 MHz. The paper's takeaways
   this reproduces: unified FRAM operation is the slowest and most
   energy-hungry configuration even at 8 MHz (hardware-cache
   contention); when code and data must be separated, code belongs in
   SRAM because instruction fetches dominate. *)

type row = {
  placement : Toolchain.placement;
  frequency : Platform.frequency;
  cycles : int;
  time_ms : float;
  energy_uj : float;
}

type t = row list

let placements =
  Toolchain.[ Unified; Standard; Code_sram; All_sram ]

let compute ?(seed = 1) () =
  List.concat_map
    (fun frequency ->
      List.map
        (fun placement ->
          let config =
            {
              (Toolchain.default_config Workloads.Suite.arith) with
              Toolchain.seed;
              frequency;
              placement;
            }
          in
          match Toolchain.run config with
          | Toolchain.Completed r ->
              {
                placement;
                frequency;
                cycles = Trace.total_cycles r.Toolchain.stats;
                time_ms = r.Toolchain.energy.Msp430.Energy.time_s *. 1000.0;
                energy_uj = r.Toolchain.energy.Msp430.Energy.energy_nj /. 1000.0;
              }
          | Toolchain.Did_not_fit msg ->
              failwith ("fig1: arith does not fit: " ^ msg)
          | Toolchain.Crashed o ->
              failwith ("fig1: arith: " ^ Report.outcome_cell o))
        placements)
    [ Platform.Mhz8; Platform.Mhz24 ]

let render t =
  let rows =
    [ "placement"; "freq"; "cycles"; "time (ms)"; "energy (uJ)"; "vs unified" ]
    :: List.map
         (fun r ->
           let unified =
             List.find
               (fun u ->
                 u.placement = Toolchain.Unified && u.frequency = r.frequency)
               t
           in
           [
             Toolchain.placement_name r.placement;
             Platform.frequency_name r.frequency;
             string_of_int r.cycles;
             Printf.sprintf "%.3f" r.time_ms;
             Printf.sprintf "%.1f" r.energy_uj;
             Report.pctf ~vs:unified.time_ms r.time_ms;
           ])
         t
  in
  Report.heading
    "Figure 1: memory placement study (arith microbenchmark)"
  ^ Report.table ~aligns:[ Report.Left; Report.Left ] rows
  ^ "\n"
