module Trace = Msp430.Trace
module Platform = Msp430.Platform
module Energy = Msp430.Energy
module Json = Observe.Json

(* Machine-readable benchmark report (bench/report.json).

   Runs the Table-2 configurations — every requested benchmark under
   the unified-memory baseline, SwapRAM and the block cache at a given
   frequency — with the profiling stack attached, and renders the
   results under a stable, versioned schema for CI artifact upload and
   downstream tooling. The schema is documented in EXPERIMENTS.md;
   bump [schema_version] on any breaking change.

   Schema v2 adds the per-system "metrics" object (windowed
   cache-dynamics time series + miss-ratio curve from the
   {!Observe.Metrics} sampler) and a slim rendering mode used for the
   committed bench/baseline.json: slim reports keep every scalar the
   perf-regression gate compares but drop the bulky time-series and
   attribution payloads.

   Schema v3 adds per-system "host_seconds" (simulator wall-clock,
   excluded from the perf gate — it measures the host, not the
   simulated system) and the "swapram_pgo" system: the measured run
   of the profile-guided rebuild, with a "pgo" object describing the
   placement (budget, pinned set, FRAM-resident set). Full (non-slim)
   reports additionally carry a top-level "host" object comparing
   simulator throughput between the reference interpreter and the
   superblock engine, serial and parallel — additive, so the perf
   gate and slim baseline are unaffected. *)

(* Schema v5 (v4 was never released) adds the optional top-level
   "campaign" object: aggregate statistics of a Monte-Carlo
   fault-injection campaign (per-cell survivability rates with Wilson
   intervals). The object is produced by the caller — the campaign
   engine lives above this library — and passed in verbatim via
   [?campaign]; reports without one simply omit the member, so the
   perf gate and the slim baseline are unaffected.

   Schema v6 adds the top-level "replay" object (full reports only —
   it carries host wall-clock figures): per (benchmark x cached
   system), one trace recorded once and replayed across the
   {!Replay_sweep} model grid, every cell tagged "replayed": true with
   its own simulation time and record-once/replay-many speedup
   (fresh-execution seconds over amortized load + simulate seconds).
   The section refuses to render if any replay fails the bit-for-bit
   exactness check against its recording. *)

(* Schema v7 adds the top-level "dse" object: a design-space
   exploration over (workload x SRAM budget x eviction policy x block
   size x frequency), rendered by {!Dse.json}. The deterministic
   members (grid, per-workload Pareto frontiers, global frontier,
   point/sim counts) appear in slim and full reports alike and are a
   pure function of (seed, benchmarks) — the compare gate fails on any
   frontier drift against the committed baseline. Full reports add the
   host-side members (sims_computed/sims_cached/sims_collapsed
   memo-store and stack-kernel provenance, eval wall-clock and
   points-per-second throughput). *)

let schema_version = 7

let frequency_hz = function
  | Platform.Mhz8 -> 8_000_000
  | Platform.Mhz24 -> 24_000_000

let params_for = function
  | Platform.Mhz8 -> Energy.point_8mhz
  | Platform.Mhz24 -> Energy.point_24mhz

let top_functions ~params ~(obs : Toolchain.observation) n =
  let rows = Observe.Profiler.rows ~params obs.Toolchain.o_profiler in
  let total =
    max 1 (Observe.Profiler.cycles_of (Observe.Profiler.totals obs.Toolchain.o_profiler))
  in
  List.filteri (fun i _ -> i < n) rows
  |> List.map (fun (r : Observe.Profiler.row) ->
         Json.Obj
           [
             ("name", Json.String r.Observe.Profiler.name);
             ("cycles", Json.Int (Observe.Profiler.cycles_of r.Observe.Profiler.c));
             ( "share",
               Json.Float
                 (float_of_int (Observe.Profiler.cycles_of r.Observe.Profiler.c)
                 /. float_of_int total) );
             ("energy_nj", Json.Float r.Observe.Profiler.energy_nj);
           ])

let swapram_stats_json (s : Swapram.Runtime.stats) =
  Json.Obj
    [
      ("misses", Json.Int s.Swapram.Runtime.misses);
      ("aborts", Json.Int s.Swapram.Runtime.aborts);
      ("too_large", Json.Int s.Swapram.Runtime.too_large);
      ("frozen_misses", Json.Int s.Swapram.Runtime.frozen_misses);
      ("evictions", Json.Int s.Swapram.Runtime.evictions);
      ("words_copied", Json.Int s.Swapram.Runtime.words_copied);
      ("placement_retries", Json.Int s.Swapram.Runtime.placement_retries);
      ("prefetches", Json.Int s.Swapram.Runtime.prefetches);
      ("pins", Json.Int s.Swapram.Runtime.pins);
    ]

let block_stats_json (s : Blockcache.Runtime.stats) =
  Json.Obj
    [
      ("misses", Json.Int s.Blockcache.Runtime.misses);
      ("block_loads", Json.Int s.Blockcache.Runtime.block_loads);
      ("chains", Json.Int s.Blockcache.Runtime.chains);
      ("flushes", Json.Int s.Blockcache.Runtime.flushes);
      ("returns", Json.Int s.Blockcache.Runtime.returns);
      ("hash_probes", Json.Int s.Blockcache.Runtime.hash_probes);
      ("words_copied", Json.Int s.Blockcache.Runtime.words_copied);
    ]

let window_json metrics (w : Observe.Metrics.window) =
  Json.Obj
    [
      ("start", Json.Int w.Observe.Metrics.w_start);
      ("unstalled", Json.Int w.Observe.Metrics.w_unstalled);
      ("stall", Json.Int w.Observe.Metrics.w_stall);
      ("instrs", Json.Int w.Observe.Metrics.w_instrs);
      ("fram_read_hits", Json.Int w.Observe.Metrics.w_fram_read_hits);
      ("fram_read_misses", Json.Int w.Observe.Metrics.w_fram_read_misses);
      ("fram_writes", Json.Int w.Observe.Metrics.w_fram_writes);
      ("sram_accesses", Json.Int w.Observe.Metrics.w_sram_accesses);
      ("misses", Json.Int (Observe.Metrics.window_misses w));
      ("evictions", Json.Int w.Observe.Metrics.w_evictions);
      ("freezes", Json.Int w.Observe.Metrics.w_freezes);
      ("flushes", Json.Int w.Observe.Metrics.w_flushes);
      ("block_loads", Json.Int w.Observe.Metrics.w_block_loads);
      ("prefetches", Json.Int w.Observe.Metrics.w_prefetches);
      ("occupancy", Json.Int w.Observe.Metrics.w_occupancy);
      ( "energy_nj",
        Json.Float (Observe.Metrics.window_energy metrics w).Observe.Metrics.e_total
      );
    ]

let mrc_json metrics =
  match Observe.Metrics.reuse_tracker metrics with
  | None -> Json.Null
  | Some r ->
      let spec = Observe.Metrics.spec metrics in
      let budget = spec.Observe.Metrics.config_budget in
      let granularity =
        match spec.Observe.Metrics.reuse with
        | Observe.Metrics.Functions -> "function"
        | Observe.Metrics.Lines n -> Printf.sprintf "line-%d" n
        | Observe.Metrics.No_reuse -> "none"
      in
      Json.Obj
        [
          ("granularity", Json.String granularity);
          ("accesses", Json.Int (Observe.Reuse.accesses r));
          ("units", Json.Int (Observe.Reuse.units r));
          ("footprint_bytes", Json.Int (Observe.Reuse.footprint r));
          ("measured_misses", Json.Int (Observe.Reuse.measured_misses r));
          ("measured_miss_rate", Json.Float (Observe.Reuse.measured_miss_rate r));
          ("config_budget", Json.Int budget);
          ( "predicted_at_config",
            if budget > 0 then
              Json.Float (Observe.Reuse.predicted_miss_rate r ~budget)
            else Json.Null );
          ( "points",
            Json.List
              (List.map
                 (fun (b, rate) ->
                   Json.Obj
                     [
                       ("budget", Json.Int b);
                       ("predicted_miss_rate", Json.Float rate);
                     ])
                 (Observe.Reuse.curve r
                    ~budgets:Observe.Metrics.default_budgets)) );
        ]

let metrics_json metrics =
  Json.Obj
    [
      ( "window_cycles",
        Json.Int (Observe.Metrics.spec metrics).Observe.Metrics.window_cycles );
      ( "windows",
        Json.List
          (List.map (window_json metrics) (Observe.Metrics.windows metrics)) );
      ("mrc", mrc_json metrics);
    ]

let completed_json ~params ~slim (r : Toolchain.result) =
  let stats = r.Toolchain.stats in
  let fram_reads = stats.Trace.fram_ifetch + stats.Trace.fram_data_reads in
  let hit_rate =
    if fram_reads = 0 then 0.0
    else float_of_int stats.Trace.fram_read_hits /. float_of_int fram_reads
  in
  let miss_handler_share =
    match r.Toolchain.observation with
    | Some obs ->
        Json.Float
          (Observe.Profiler.source_share obs.Toolchain.o_profiler Trace.Handler
          +. Observe.Profiler.source_share obs.Toolchain.o_profiler Trace.Memcpy)
    | None -> Json.Null
  in
  let top =
    match r.Toolchain.observation with
    | Some obs when not slim -> Json.List (top_functions ~params ~obs 5)
    | Some _ | None -> Json.Null
  in
  let metrics =
    match r.Toolchain.observation with
    | Some { Toolchain.o_metrics = Some m; _ } when not slim -> metrics_json m
    | _ -> Json.Null
  in
  let runtime =
    match (r.Toolchain.swapram_stats, r.Toolchain.block_stats) with
    | Some s, _ -> swapram_stats_json s
    | None, Some s -> block_stats_json s
    | None, None -> Json.Null
  in
  Json.Obj
    [
      ("status", Json.String "completed");
      ("cycles", Json.Int (Trace.total_cycles stats));
      ("unstalled_cycles", Json.Int stats.Trace.unstalled_cycles);
      ("stall_cycles", Json.Int stats.Trace.stall_cycles);
      ("instructions", Json.Int stats.Trace.instructions);
      ("fram_accesses", Json.Int (Trace.fram_accesses stats));
      ("sram_accesses", Json.Int (Trace.sram_accesses stats));
      ("hwcache_hit_rate", Json.Float hit_rate);
      ("energy_nj", Json.Float r.Toolchain.energy.Energy.energy_nj);
      ("time_s", Json.Float r.Toolchain.energy.Energy.time_s);
      ("return_value", Json.Int r.Toolchain.return_value);
      ("code_bytes", Json.Int r.Toolchain.sizes.Toolchain.code_bytes);
      ("data_bytes", Json.Int r.Toolchain.sizes.Toolchain.data_bytes);
      ("miss_handler_share", miss_handler_share);
      ("runtime", runtime);
      ("top_functions", top);
      ("metrics", metrics);
    ]

let outcome_json ~params ~slim = function
  | Toolchain.Completed r -> completed_json ~params ~slim r
  | Toolchain.Crashed o ->
      Json.Obj
        [
          ("status", Json.String "crashed");
          ("reason", Json.String (Report.outcome_cell o));
        ]
  | Toolchain.Did_not_fit msg ->
      Json.Obj
        [ ("status", Json.String "did-not-fit"); ("reason", Json.String msg) ]

(* Host wall-clock per system cell (v3). Not gated by Compare — it
   measures the simulator's throughput on the host, not the simulated
   system. *)
let with_host host_s = function
  | Json.Obj kvs -> Json.Obj (kvs @ [ ("host_seconds", Json.Float host_s) ])
  | j -> j

let pgo_json ~params ~slim (e : Sweep.pgo_entry) =
  let cell =
    match e.Sweep.pgo with
    | Error reason ->
        Json.Obj
          [ ("status", Json.String "error"); ("reason", Json.String reason) ]
    | Ok r -> (
        let placement = r.Toolchain.pg_placement in
        let names l = Json.List (List.map (fun n -> Json.String n) l) in
        let descr =
          ( "pgo",
            Json.Obj
              [
                ("budget", Json.Int placement.Swapram.Pgo.pl_budget);
                ("pinned", names placement.Swapram.Pgo.pl_pinned);
                ("fram_resident", names placement.Swapram.Pgo.pl_fram_resident);
              ] )
        in
        match outcome_json ~params ~slim r.Toolchain.pg_measured with
        | Json.Obj kvs -> Json.Obj (kvs @ [ descr ])
        | j -> j)
  in
  with_host e.Sweep.pgo_host_s cell

(* --- v3 "host" object: simulator-throughput comparison ----------------- *)

(* Wall-clock for the unobserved Table-2 suite under three drivers:
   the reference interpreter (serial), the superblock engine (serial),
   and the superblock engine sharded across [jobs] workers. Every
   sweep bypasses the memo so each figure is a fresh measurement, and
   the reference/superblock results are cross-checked cell by cell —
   the report refuses to print a speedup over a run that disagrees.
   Excluded from the perf gate and from slim reports: it measures the
   host machine, not the simulated system. *)

let uart_of = function
  | Toolchain.Completed r -> Some r.Toolchain.uart
  | Toolchain.Crashed _ | Toolchain.Did_not_fit _ -> None

let outcome_equal ~params a b =
  (* Structural equality of every simulated scalar the report renders
     (cycles, energy, counters, runtime stats), plus the UART stream,
     which the JSON rendering omits. *)
  outcome_json ~params ~slim:true a = outcome_json ~params ~slim:true b
  && uart_of a = uart_of b

let entry_equal ~params (a : Sweep.entry) (b : Sweep.entry) =
  outcome_equal ~params
    (Toolchain.Completed a.Sweep.baseline)
    (Toolchain.Completed b.Sweep.baseline)
  && outcome_equal ~params a.Sweep.swapram b.Sweep.swapram
  && outcome_equal ~params a.Sweep.block b.Sweep.block

let entry_host_s (e : Sweep.entry) =
  e.Sweep.baseline_host_s +. e.Sweep.swapram_host_s +. e.Sweep.block_host_s

let geomean = function
  | [] -> 0.0
  | xs ->
      exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs
           /. float_of_int (List.length xs))

let host_json ~params ~seed ~frequency ~jobs benchmarks =
  let sweep_with ~engine ~jobs =
    Sweep.timed (fun () ->
        Sweep.compute ~seed ~benchmarks ~engine ~jobs ~cache:false ~frequency
          ())
  in
  let reference, reference_s = sweep_with ~engine:Msp430.Cpu.Reference ~jobs:1 in
  let superblock, superblock_s =
    sweep_with ~engine:Msp430.Cpu.Superblock ~jobs:1
  in
  let parallel, parallel_s =
    sweep_with ~engine:Msp430.Cpu.Superblock ~jobs
  in
  let engines_agree =
    List.for_all2 (entry_equal ~params) reference superblock
    && List.for_all2 (entry_equal ~params) reference parallel
  in
  if not engines_agree then
    failwith
      "bench report: superblock engine disagrees with the reference \
       interpreter";
  let per_benchmark =
    List.map2
      (fun (r : Sweep.entry) (s : Sweep.entry) ->
        let rs = entry_host_s r and ss = entry_host_s s in
        ( r.Sweep.benchmark.Workloads.Bench_def.name,
          rs,
          ss,
          if ss > 0.0 then rs /. ss else 0.0 ))
      reference superblock
  in
  let serial_geomean =
    geomean
      (List.filter_map
         (fun (_, _, _, sp) -> if sp > 0.0 then Some sp else None)
         per_benchmark)
  in
  Json.Obj
    [
      ("cores", Json.Int (Parallel.ncores ()));
      ("jobs", Json.Int jobs);
      ("engines_agree", Json.Bool engines_agree);
      ("reference_serial_s", Json.Float reference_s);
      ("superblock_serial_s", Json.Float superblock_s);
      ("superblock_parallel_s", Json.Float parallel_s);
      ( "serial_speedup_geomean",
        (* geo-mean over per-benchmark (reference / superblock) wall
           times, serial on both sides: the engine's own contribution *)
        Json.Float serial_geomean );
      ( "total_speedup",
        Json.Float (if parallel_s > 0.0 then reference_s /. parallel_s else 0.0)
      );
      ( "benchmarks",
        Json.List
          (List.map
             (fun (name, rs, ss, sp) ->
               Json.Obj
                 [
                   ("name", Json.String name);
                   ("reference_s", Json.Float rs);
                   ("superblock_s", Json.Float ss);
                   ("speedup", Json.Float sp);
                 ])
             per_benchmark) );
    ]

(* --- v6 "replay" object: record-once / replay-many ---------------------- *)

let replay_json ~seed ~frequency ~jobs benchmarks =
  let entries = Replay_sweep.bench ~seed ~benchmarks ~jobs ~frequency () in
  (match
     List.find_opt (fun e -> not e.Replay_sweep.b_exact_match) entries
   with
  | Some e ->
      failwith
        (Printf.sprintf
           "bench report: replay of %s/%s is not exact: %s"
           e.Replay_sweep.b_benchmark e.Replay_sweep.b_system
           e.Replay_sweep.b_exact_detail)
  | None -> ());
  let speedups = ref [] in
  let trace_json (e : Replay_sweep.bench_entry) =
    let ncells = max 1 (List.length e.Replay_sweep.b_cells) in
    let amortized_load = e.Replay_sweep.b_load_s /. float_of_int ncells in
    let cell_json (r : Replay_sweep.cell_result) =
      let sim = r.Replay_sweep.r_sim in
      let cell_s = amortized_load +. r.Replay_sweep.r_host_s in
      let speedup =
        if cell_s > 0.0 then e.Replay_sweep.b_exec_s /. cell_s else 0.0
      in
      if speedup > 0.0 then speedups := speedup :: !speedups;
      Json.Obj
        [
          ("replayed", Json.Bool true);
          ("budget", Json.Int r.Replay_sweep.r_cell.Replay_sweep.c_budget);
          ( "policy",
            Json.String
              (Replay.Engine.policy_name r.Replay_sweep.r_cell.Replay_sweep.c_policy)
          );
          ( "block",
            match r.Replay_sweep.r_cell.Replay_sweep.c_block with
            | Some n -> Json.Int n
            | None -> Json.Null );
          ("refs", Json.Int sim.Replay.Engine.s_refs);
          ("misses", Json.Int sim.Replay.Engine.s_misses);
          ("cold_misses", Json.Int sim.Replay.Engine.s_cold_misses);
          ("evictions", Json.Int sim.Replay.Engine.s_evictions);
          ("bytes_loaded", Json.Int sim.Replay.Engine.s_bytes_loaded);
          ("miss_rate", Json.Float sim.Replay.Engine.s_miss_rate);
          ("sim_s", Json.Float r.Replay_sweep.r_host_s);
          ("speedup", Json.Float speedup);
        ]
    in
    Json.Obj
      [
        ("benchmark", Json.String e.Replay_sweep.b_benchmark);
        ("system", Json.String e.Replay_sweep.b_system);
        ("fingerprint", Json.Int e.Replay_sweep.b_fingerprint);
        ("events", Json.Int e.Replay_sweep.b_events);
        ("bytes", Json.Int e.Replay_sweep.b_bytes);
        ("record_s", Json.Float e.Replay_sweep.b_record_s);
        ("exec_s", Json.Float e.Replay_sweep.b_exec_s);
        ("load_s", Json.Float e.Replay_sweep.b_load_s);
        ("exact_match", Json.Bool e.Replay_sweep.b_exact_match);
        ("cells", Json.List (List.map cell_json e.Replay_sweep.b_cells));
      ]
  in
  let traces = List.map trace_json entries in
  let speedups = !speedups in
  Json.Obj
    [
      ("jobs", Json.Int jobs);
      ("exact_all", Json.Bool true);
      ("speedup_geomean", Json.Float (geomean speedups));
      ( "speedup_min",
        Json.Float
          (match speedups with
          | [] -> 0.0
          | s :: rest -> List.fold_left min s rest) );
      ("traces", Json.List traces);
    ]

(* --- v7 "dse" object: Pareto design-space exploration -------------------- *)

(* The report grid: the default axes with the budget axis coarsened to
   64 B steps — still >= 20k evaluated points over the suite, at half
   the simulation cost of {!Dse.default_grid}. Both the slim baseline
   and the full report use this exact grid, so the compare gate can
   diff frontiers point-for-point. *)
let dse_report_grid =
  let rec budgets acc b = if b < 512 then acc else budgets (b :: acc) (b - 64) in
  { Dse.default_grid with Dse.g_budgets = budgets [] 16384 }

let dse_json ~seed ~jobs ~slim benchmarks =
  let dir = Filename.temp_file "swapram-dse" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
  @@ fun () ->
  match Dse.record_workloads ~seed ~benchmarks ~jobs ~dir () with
  | Error e -> failwith ("bench report: dse recording failed: " ^ e)
  | Ok workloads -> (
      match Dse.run ~jobs dse_report_grid workloads with
      | Error e -> failwith ("bench report: dse evaluation failed: " ^ e)
      | Ok outcome -> Dse.json ~slim dse_report_grid outcome)

let compute ?(seed = 1) ?benchmarks ?(frequency = Platform.Mhz24) ?(slim = false)
    ?jobs ?campaign () =
  let params = params_for frequency in
  let jobs = Sweep.resolve_jobs jobs in
  let sweep =
    Sweep.compute ~seed ?benchmarks ~observe:Toolchain.metrics_observe
      ~frequency ~jobs ()
  in
  let pgo =
    Sweep.compute_pgo ~seed ?benchmarks ~observe:Toolchain.metrics_observe
      ~frequency ~jobs ()
  in
  let suite =
    match benchmarks with Some bs -> bs | None -> Workloads.Suite.all
  in
  let host =
    (* Slim reports (the committed baseline) stay host-independent:
       no wall-clock figures, so regenerating the baseline on a
       different machine cannot churn it. The "replay" object carries
       wall-clock speedups too, so it is likewise full-report-only. *)
    if slim then []
    else
      [
        ("host", host_json ~params ~seed ~frequency ~jobs suite);
        ("replay", replay_json ~seed ~frequency ~jobs suite);
      ]
  in
  (* The "dse" object appears in slim and full reports alike: its
     deterministic members are what the frontier-drift gate compares,
     and [Dse.json ~slim] already strips the host-side members from
     the slim rendering. *)
  let dse = [ ("dse", dse_json ~seed ~jobs ~slim suite) ] in
  Json.Obj
    ([
      ("schema_version", Json.Int schema_version);
      ("seed", Json.Int seed);
      ("frequency_hz", Json.Int (frequency_hz frequency));
      ( "benchmarks",
        Json.List
          (List.map
             (fun (e : Sweep.entry) ->
               let name = e.Sweep.benchmark.Workloads.Bench_def.name in
               let pgo_cell =
                 List.find_map
                   (fun (p : Sweep.pgo_entry) ->
                     if
                       p.Sweep.pgo_benchmark.Workloads.Bench_def.name = name
                     then Some (pgo_json ~params ~slim p)
                     else None)
                   pgo
               in
               Json.Obj
                 [
                   ("name", Json.String name);
                   ( "systems",
                     Json.Obj
                       ([
                          ( "baseline",
                            with_host e.Sweep.baseline_host_s
                              (outcome_json ~params ~slim
                                 (Toolchain.Completed e.Sweep.baseline)) );
                          ( "swapram",
                            with_host e.Sweep.swapram_host_s
                              (outcome_json ~params ~slim e.Sweep.swapram) );
                          ( "block",
                            with_host e.Sweep.block_host_s
                              (outcome_json ~params ~slim e.Sweep.block) );
                        ]
                       @
                       match pgo_cell with
                       | Some cell -> [ ("swapram_pgo", cell) ]
                       | None -> []) );
                 ])
             sweep) );
    ]
    @ (match campaign with
      | Some c -> [ ("campaign", (c : Json.t)) ]
      | None -> [])
    @ dse @ host)

let write ?seed ?benchmarks ?frequency ?slim ?jobs ?campaign path =
  let json = compute ?seed ?benchmarks ?frequency ?slim ?jobs ?campaign () in
  let oc = open_out path in
  output_string oc (Json.to_string_pretty json);
  close_out oc

(* Every key in a report whose value is host wall-clock (or derived
   from it): the per-cell "host_seconds" stamps, the whole
   simulator-throughput "host" object, and the replay section's
   record/exec/load/sim timings and speedups. Everything else in a
   report is a pure function of (seed, benchmarks, frequency), so two
   reports stripped of these keys must be byte-identical — the
   telemetry-purity gate diffs exactly this view. *)
let wall_clock_keys =
  [
    "host";
    "host_seconds";
    "record_s";
    "exec_s";
    "load_s";
    "sim_s";
    "speedup";
    "speedup_geomean";
    "speedup_min";
    (* dse host-side members: memo-store provenance and throughput *)
    "sims_computed";
    "sims_cached";
    "sims_collapsed";
    "eval_s";
    "points_per_s";
  ]

let rec deterministic_view = function
  | Json.Obj kvs ->
      Json.Obj
        (List.filter_map
           (fun (k, v) ->
             if List.mem k wall_clock_keys then None
             else Some (k, deterministic_view v))
           kvs)
  | Json.List vs -> Json.List (List.map deterministic_view vs)
  | j -> j
