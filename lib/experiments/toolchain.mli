(** Build-and-run harness covering every configuration in the paper's
    evaluation: memory placement (Fig. 1), caching system, clock
    frequency, and the split-SRAM arrangement of §5.5. Data is packed
    directly after code when both share a memory, the stack sits at
    the top of whichever memory holds program data, and binaries that
    exceed the FR2355's memories come back as [Did_not_fit] (the
    paper's DNF marks). *)

type caching =
  | Baseline  (** execute from FRAM through the hardware read cache *)
  | Swapram_cache of Swapram.Config.options
  | Block_cache of Blockcache.Config.options
  | Checkpoint_runtime of Swapram.Checkpoint.options
      (** periodic whole-state snapshots to FRAM instead of caching.
          Always built with the {!Standard} placement (data + stack
          in SRAM, so a restored snapshot is the complete machine
          state) regardless of the configured placement, with the
          code limit lowered to the snapshot arena. *)

val caching_name : caching -> string

type placement =
  | Unified  (** code + data in FRAM; SRAM free for the cache *)
  | Standard  (** code in FRAM, data in SRAM — the conventional setup *)
  | Code_sram  (** code in SRAM, data in FRAM (Fig. 1 study) *)
  | All_sram  (** both in SRAM (Fig. 1 study) *)
  | Split  (** §5.5: data + stack in low SRAM, rest of SRAM is cache *)

val placement_name : placement -> string

type config = {
  benchmark : Workloads.Bench_def.t;
  seed : int;
  frequency : Msp430.Platform.frequency;
  placement : placement;
  caching : caching;
  fuel : int;
  through_disasm : bool;
      (** route the support library through the §4 disassembler
          workflow *)
  engine : Msp430.Cpu.engine;
      (** host-simulator execution engine ({!Msp430.Cpu.Superblock} by
          default). Either engine produces identical simulated results
          — cycles, energy, UART output, runtime counters — so this
          only affects host wall-clock time. *)
}

val default_config : Workloads.Bench_def.t -> config
(** Unified placement, baseline caching, 24 MHz, seed 1, and the
    process default engine ({!default_engine}). *)

val set_default_engine : Msp430.Cpu.engine -> unit
(** Engine used by {!default_config} (initially
    {!Msp430.Cpu.Superblock}). Driver command lines set this from
    [--engine]; set it before any sweep runs — {!Sweep} resolves the
    default into its memo keys at call time. *)

val default_engine : unit -> Msp430.Cpu.engine

type sizes = { code_bytes : int; data_bytes : int }

(** {2 Observability}

    Passing [~observe] to {!prepare} / {!run} attaches the {!Observe}
    stack to the system before it boots: a {!Observe.Profiler}
    consuming the {!Msp430.Trace} event stream (with dynamic symbol
    resolvers for whichever caching runtime is installed) and an
    optional bounded {!Observe.Events} ring for the Chrome trace
    exporter. Observation is pure spectating — an observed run is
    cycle-for-cycle identical to an unobserved one. *)

type observe_spec = {
  events_capacity : int;  (** 0 disables the event ring *)
  events_keep_all : bool;
      (** also record per-instruction / per-access events *)
  metrics_window : int;
      (** window length (total cycles) for the {!Observe.Metrics}
          time-series sampler; 0 disables it *)
  metrics_buckets : int;  (** address-histogram buckets per region *)
}

val default_observe : observe_spec
(** 4096-entry ring, high-level events only, no metrics sampler. *)

val metrics_observe : observe_spec
(** [default_observe] plus the metrics sampler at 65536-cycle windows.
    The sampler's reuse tracking follows the installed runtime:
    function-granular for SwapRAM (against its configured cache size),
    slot-granular lines for the block cache, nominal 64-byte lines for
    the baseline. *)

type observation = {
  o_symtab : Observe.Symtab.t;
  o_profiler : Observe.Profiler.t;
  o_events : Observe.Events.t option;
  o_metrics : Observe.Metrics.t option;
}

type result = {
  stats : Msp430.Trace.t;
  energy : Msp430.Energy.report;
  uart : string;
  return_value : int;
  sizes : sizes;
  swapram_stats : Swapram.Runtime.stats option;
  swapram_manifest : Swapram.Instrument.manifest option;
  swapram_usage : Swapram.Pipeline.nvm_usage option;
  block_stats : Blockcache.Runtime.stats option;
  block_usage : Blockcache.Pipeline.nvm_usage option;
  checkpoint_stats : Swapram.Checkpoint.stats option;
  observation : observation option;
      (** present iff the run was prepared with [~observe] *)
}

type outcome =
  | Completed of result  (** ran to a clean halt *)
  | Crashed of Msp430.Cpu.run_outcome
      (** the simulated run ended in something other than a clean
          halt: out of fuel, a machine fault, or an (uninjected)
          power loss *)
  | Did_not_fit of string

val run : ?observe:observe_spec -> config -> outcome

(** {2 Trace recording (replay subsystem)} *)

val config_fingerprint : config -> int
(** FNV-1a fingerprint of everything in the configuration that can
    change simulated results (the engine and observation are
    excluded — both are result-neutral). Recorded into trace-file
    headers; {!Replay_sweep} and [replay --check] use it to reject
    stale traces. Stable across hosts and OCaml versions. *)

val run_recorded : ?observe:observe_spec -> trace:string -> config -> outcome
(** [run] plus a {!Replay.Trace_file} recorder riding the trace tap:
    every counted event of the run lands in [trace], enriched with
    the runtime-hook answers a replay needs. Recording attaches an
    observer, which forces the cycle-identical reference engine, so
    the returned result equals an observed run's. The trace file is
    completed only on [Completed]; otherwise it is removed. *)

(** {2 Staged execution}

    [run] is [prepare] + [boot] + a full-length [Cpu.run] + [collect].
    The fault-injection subsystem ({!Faultinject}) drives the stages
    itself so it can interleave bounded runs with power failures and
    reboots. *)

type prepared = {
  p_config : config;
  p_system : Msp430.Platform.system;
  p_image : Masm.Assembler.t;
  p_stack_top : int;
  p_data_size : int;
  p_swapram : Swapram.Runtime.t option;
  p_block : Blockcache.Runtime.t option;
  p_checkpoint : Swapram.Checkpoint.t option;
  p_sr_manifest : Swapram.Instrument.manifest option;
  p_sr_usage : Swapram.Pipeline.nvm_usage option;
  p_bb_usage : Blockcache.Pipeline.nvm_usage option;
  p_observation : observation option;
}

val prepare : ?observe:observe_spec -> config -> (prepared, string) Stdlib.result
(** Build, load and arm a system without starting it; [Error] is the
    did-not-fit message. *)

val boot : prepared -> unit
(** Load SP and PC with the stack top and entry point. *)

val reboot : prepared -> unit
(** Replay the boot path after a power failure: restore whichever
    runtime is installed (counted FRAM accesses — an armed power
    trigger can interrupt them with [Memory.Power_loss]) and reload
    SP/PC — except when the checkpoint runtime resumed from a
    snapshot, which carries its own PC/SP. Apply
    {!Msp430.Platform.power_fail} first. *)

val collect : prepared -> result
(** Gather statistics from the system as it stands. *)

(** {2 Profile-guided placement} *)

val profile_of_training :
  benchmark:string ->
  cache_size:int ->
  Swapram.Instrument.manifest ->
  Observe.Profiler.t ->
  Swapram.Pgo.profile
(** Assemble a per-function {!Swapram.Pgo.profile} out of a completed
    observed training run: code sizes from the manifest, dynamic call
    / miss / instruction / cycle counts from the profiler. Calls that
    missed symbolized under the trap vector's name, so a function's
    call count is its resolved calls plus its miss-handler exits. *)

type pgo_result = {
  pg_profile : Swapram.Pgo.profile;
  pg_placement : Swapram.Pgo.placement;
  pg_train : result;
      (** the training run: default placement, profiler attached *)
  pg_measured : outcome;
      (** the rebuilt run with the placement applied, observed per
          the caller's [?observe] *)
}

val run_pgo :
  ?observe:observe_spec ->
  ?budget:int ->
  ?profile:Swapram.Pgo.profile ->
  config ->
  (pgo_result, string) Stdlib.result
(** Two-phase profile-guided run: train with the default placement
    (profiler attached), compute a {!Swapram.Pgo.placement} (or place
    a caller-supplied [?profile], e.g. one reloaded from disk),
    rebuild with it and measure. [Error] for non-swapram
    configurations, failed training runs, or a measured run whose
    UART output / return value diverges from training. *)
