module Platform = Msp430.Platform
module Energy = Msp430.Energy

(* Figure 10 / §5.5 — split-SRAM execution for the four benchmarks
   whose program data fits in SRAM (CRC, AES, BIT, RSA): data + stack
   in low SRAM, the remainder used as the code cache; baseline is the
   conventional code-in-FRAM / data-in-SRAM configuration. Normalized
   to unified-memory operation for context, as in the paper. Shape:
   SwapRAM beats even the standard configuration; the block cache at
   best matches it and collapses on AES in the smaller cache. *)

type row = {
  benchmark : Workloads.Bench_def.t;
  unified_time : float;
  standard : float * float; (* (speed vs unified, energy vs unified) *)
  swapram_split : (float * float) option;
  block_split : (float * float) option;
}

type t = { frequency : Platform.frequency; rows : row list }

let speed_energy ~unified = function
  | Toolchain.Did_not_fit _ -> None
  | Toolchain.Crashed o -> failwith ("fig10: " ^ Report.outcome_cell o)
  | Toolchain.Completed r ->
      Some
        ( unified.Toolchain.energy.Energy.time_s
          /. r.Toolchain.energy.Energy.time_s,
          r.Toolchain.energy.Energy.energy_nj
          /. unified.Toolchain.energy.Energy.energy_nj )

let compute ?(seed = 1) ~frequency () =
  let rows =
    List.map
      (fun benchmark ->
        let run placement caching =
          Toolchain.run
            {
              (Toolchain.default_config benchmark) with
              Toolchain.seed;
              frequency;
              placement;
              caching;
            }
        in
        let unified =
          Report.expect_completed ~what:"fig10 unified baseline"
            (run Toolchain.Unified Toolchain.Baseline)
        in
        let standard =
          match
            speed_energy ~unified (run Toolchain.Standard Toolchain.Baseline)
          with
          | Some c -> c
          | None -> failwith "standard configuration does not fit"
        in
        let swapram_split =
          speed_energy ~unified
            (run Toolchain.Split
               (Toolchain.Swapram_cache Swapram.Config.default_options))
        in
        let block_split =
          speed_energy ~unified
            (run Toolchain.Split
               (Toolchain.Block_cache Blockcache.Config.default_options))
        in
        {
          benchmark;
          unified_time = unified.Toolchain.energy.Energy.time_s;
          standard;
          swapram_split;
          block_split;
        })
      Workloads.Suite.split_memory_subset
  in
  { frequency; rows }

let fmt = function
  | None -> [ "DNF"; "DNF" ]
  | Some (s, e) ->
      [
        Printf.sprintf "%.2fx" s;
        Printf.sprintf "%+.0f%%" ((e -. 1.0) *. 100.0);
      ]

let render t =
  let header =
    [ "benchmark"; "standard speed"; "std energy"; "SR-split speed";
      "SR energy"; "BB-split speed"; "BB energy" ]
  in
  let rows =
    List.map
      (fun r ->
        (r.benchmark.Workloads.Bench_def.name :: fmt (Some r.standard))
        @ fmt r.swapram_split @ fmt r.block_split)
      t.rows
  in
  (* SwapRAM split vs the standard configuration (the paper's §5.5
     headline: ~22% speedup, ~26% energy reduction at 24 MHz) *)
  let deltas =
    List.filter_map
      (fun r ->
        match r.swapram_split with
        | Some (s, e) ->
            let std_s, std_e = r.standard in
            Some (s /. std_s, e /. std_e)
        | None -> None)
      t.rows
  in
  let speed = Report.geo_mean (List.map fst deltas) in
  let energy = Report.geo_mean (List.map snd deltas) in
  Report.heading
    (Printf.sprintf
       "Figure 10: split-SRAM configurations at %s (normalized to unified)"
       (Platform.frequency_name t.frequency))
  ^ Report.table ~aligns:[ Report.Left ] (header :: rows)
  ^ Printf.sprintf
      "\nSwapRAM split vs standard config: %+.0f%% speed, %+.0f%% energy\n"
      ((speed -. 1.0) *. 100.0)
      ((energy -. 1.0) *. 100.0)
