(** Design-space exploration: fan the replay kernel over a grid of
    (workload x SRAM budget x eviction policy x block size x
    frequency) points and compute exact Pareto frontiers over
    (cycles, energy, SRAM footprint, NVM traffic).

    The cache-model simulation is frequency-independent, so one
    {!Replay.Engine.simulate_many} sim per (budget, policy, block)
    fans out into one point per frequency by O(1) arithmetic in the
    parent. Sims are what gets sharded across workers, memoized and
    persisted; objectives and frontiers are always recomputed in the
    parent from the memoized sims, so serial, parallel and resumed
    runs produce byte-identical frontiers by construction. *)

type grid = {
  g_budgets : int list;  (** SRAM capacities in bytes *)
  g_policies : Replay.Engine.policy list;
  g_blocks : int option list;
      (** block-size axis, applied to line-granular (block-cache)
          traces only; [None] is the recorded slot size. Per workload
          the axis is normalized to multiples of the recorded slot and
          deduplicated, so two requested sizes that merge to the same
          factor cost one sim. *)
  g_frequencies : int list;  (** MHz; 8 and 24 are the platform points *)
}

val default_grid : grid
(** 512 B..16 KiB in 32 B steps x {lru, lfu, cost} x
    {recorded, 256 B, 512 B} x {8, 24} MHz — >= 20k points over the
    full benchmark suite. *)

val validate_grid : grid -> (unit, string) result

(** {2 Workloads} *)

type workload = {
  w_benchmark : string;
  w_system : string;  (** "swapram" or "block" *)
  w_trace : string;  (** recorded trace path *)
  w_fingerprint : int;  (** recording-configuration fingerprint *)
  w_events : int;
  w_line_bytes : int option;  (** [Some slot] for line-granular traces *)
}

val workload_name : workload -> string
(** ["benchmark/system"], the point and frontier label. *)

val record_workloads :
  ?seed:int ->
  ?benchmarks:Workloads.Bench_def.t list ->
  ?systems:string list ->
  ?frequency:Msp430.Platform.frequency ->
  ?jobs:int ->
  ?progress:Observe.Progress.sink ->
  dir:string ->
  unit ->
  (workload list, string) result
(** Record one trace per (benchmark x system) into [dir], in parallel.
    A trace already on disk whose header fingerprint matches the
    expected configuration is reused without re-recording, so a
    persistent [dir] makes re-runs recording-free. Pairs whose image
    does not fit the system are skipped; a crash is an [Error]. Each
    trace is decoded once here in the parent ({!Replay.Engine.load_cached}),
    so forked evaluation workers inherit the decoded statistics. *)

(** {2 Points and objectives} *)

type objectives = {
  o_cycles : int;
      (** exact retargeted cycles plus modeled software-cache overhead
          (handler entry/exit per miss; copy-loop plus one wait-stated
          NVM read per copied word — {!Swapram.Costs} constants) *)
  o_energy_nj : float;
      (** platform energy model over [o_cycles] with fill traffic
          added to the NVM-read and SRAM-access counters *)
  o_sram_bytes : int;  (** the provisioned budget (resource axis) *)
  o_nvm_bytes : int;
      (** fill bytes loaded from NVM plus recorded data-write bytes —
          the wear/bandwidth axis of this read-only code cache *)
}

type point = {
  p_workload : string;
  p_budget : int;
  p_policy : string;
  p_block : int;  (** effective block bytes; 0 for function-granular *)
  p_frequency_mhz : int;
  p_obj : objectives;
}

val objectives_of :
  Replay.Engine.loaded ->
  frequency_mhz:int ->
  budget:int ->
  Replay.Engine.sim ->
  objectives
(** The documented first-order objective model (EXPERIMENTS.md,
    "Design-space exploration"). Pure arithmetic over the loaded
    statistics and the sim — deterministic across processes. *)

val dominates : objectives -> objectives -> bool
(** [dominates a b]: [a] is no worse than [b] on every objective and
    strictly better on at least one (all four minimized). *)

val pareto : point list -> point list
(** Exact Pareto frontier: non-dominated points, identical objective
    vectors deduplicated to the canonically-smallest point, output in
    canonical (objective-lex, then point-key) order. A pure function
    of the point {e set} — invariant to input order
    (property-tested). *)

(** {2 Evaluation} *)

type frontier = {
  f_workload : string;
  f_points : int;  (** points evaluated for this workload *)
  f_frontier : point list;
}

type outcome = {
  d_workloads : workload list;
  d_points_total : int;
  d_sims_total : int;
  d_sims_computed : int;  (** sims actually simulated this run *)
  d_sims_cached : int;  (** sims served from the persistent store *)
  d_sims_collapsed : int;
      (** of the computed sims, how many LRU cells were absorbed by
          {!Replay.Engine.simulate_all_budgets}'s single-pass stack
          kernel instead of costing an individual cache pass *)
  d_frontiers : frontier list;  (** per workload, workload input order *)
  d_global_frontier : point list;
      (** frontier over the union of every workload's points *)
  d_eval_s : float;  (** wall-clock seconds (host; non-deterministic) *)
  d_points_per_s : float;
}

val run :
  ?jobs:int ->
  ?chunk:int ->
  ?progress:Observe.Progress.sink ->
  ?store:string ->
  grid ->
  workload list ->
  (outcome, string) result
(** Evaluate the full grid. Missing sims (not in the [store]) are
    sharded across forked workers in chunks of
    {!Parallel.chunk_size} cells, grouped by workload so each chunk is
    a handful of {!Replay.Engine.simulate_many} batches; [chunk]
    overrides the dynamic width. [store] names the persistent memo
    store (created if absent): finished chunks are appended as they
    complete and a torn tail from a killed run is compacted away on
    load. A workload whose on-disk trace no longer matches its planned
    fingerprint is an [Error], not a silent recompute. *)

(** {2 JSON} *)

val point_json : point -> Observe.Json.t

val json : ?slim:bool -> grid -> outcome -> Observe.Json.t
(** The schema-v7 ["dse"] report object. Deterministic members (grid,
    per-workload frontiers, global frontier, point/sim counts) are
    identical for serial, parallel and resumed runs; [slim] drops the
    host-side members ([sims_computed], [sims_cached],
    [sims_collapsed], [eval_s], [points_per_s]), which depend on
    memo-store warmth and wall clock. *)
