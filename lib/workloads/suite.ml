(* The benchmark suite: the nine MiBench2-derived programs the paper
   evaluates (Table 1) plus the Figure 1 arithmetic microbenchmark. *)

let stringsearch = Stringsearch.benchmark
let dijkstra = Dijkstra.benchmark
let crc = Crc.benchmark
let rc4 = Rc4.benchmark
let fft = Fft.benchmark
let aes = Aes.benchmark
let lzfx = Lzfx.benchmark
let bitcount = Bitcount.benchmark
let rsa = Rsa.benchmark
let arith = Arith.benchmark
let journal = Journal.benchmark

(* Paper order (Table 1). *)
let all = [ stringsearch; dijkstra; crc; rc4; fft; aes; lzfx; bitcount; rsa ]

let split_memory_subset =
  List.filter (fun b -> b.Bench_def.fits_data_in_sram) all

let find name =
  List.find_opt
    (fun b ->
      String.lowercase_ascii b.Bench_def.name = String.lowercase_ascii name
      || String.lowercase_ascii b.Bench_def.short = String.lowercase_ascii name)
    (arith :: journal :: all)
