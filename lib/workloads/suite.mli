(** The benchmark suite: the nine MiBench2-derived programs of the
    paper's Table 1, plus the Figure-1 arithmetic microbenchmark. *)

val stringsearch : Bench_def.t
val dijkstra : Bench_def.t
val crc : Bench_def.t
val rc4 : Bench_def.t
val fft : Bench_def.t
val aes : Bench_def.t
val lzfx : Bench_def.t
val bitcount : Bench_def.t
val rsa : Bench_def.t
val arith : Bench_def.t

val journal : Bench_def.t
(** Idempotent windowed workload with an FRAM progress journal — the
    fault-injection harness's canonical crash-safe program. *)

val all : Bench_def.t list
(** The nine evaluation benchmarks, in the paper's Table 1 order. *)

val split_memory_subset : Bench_def.t list
(** CRC, AES, bitcount, RSA — the §5.5 split-SRAM study. *)

val find : string -> Bench_def.t option
(** Look up by name or short tag, case-insensitively. *)
