(* JOURNAL — an idempotent windowed workload for the fault-injection
   harness (and the intermittent-computing demo). The progress word
   and the per-window results journal live in FRAM; each window's
   result is committed to its own slot *before* the progress word
   advances, so replaying a half-finished window after a power
   failure is harmless. This is the classic forward-progress idiom of
   the intermittent-computing literature (Hibernus, Alpaca, Clank)
   that the paper's §2.2 deployments rely on.

   Several helper functions keep the swapram miss handler busy, so
   outages land inside caching operations, not just application
   code. *)

let windows = 16
let iters_per_window = 120

let source seed =
  let g = Gen.create (seed + 7070) in
  let salt = Gen.int g 0x4000 in
  Printf.sprintf
    {|
%s
int progress;           /* highest fully-committed window, in FRAM */
int results[%d];        /* per-window results journal, in FRAM */

int scramble(int h, int x) {
  h = ((h << 5) + h) ^ (x & 0xFF);
  if (h & 1) h = h ^ 0x1021;
  return h;
}

int round_key(int w, int i) {
  return (w * 193 + i * 7 + %d) & 0x7FFF;
}

int window_digest(int w) {
  unsigned h = 5381 + w;
  int i;
  for (i = 0; i < %d; i++) h = scramble(h, round_key(w, i));
  return h & 0x7FFF;
}

int main(void) {
  while (progress < %d) {
    results[progress] = window_digest(progress);
    progress = progress + 1;
  }
  unsigned digest = 0;
  int i;
  for (i = 0; i < %d; i++)
    digest = (digest << 1 | digest >> 15) ^ results[i];
  print_hex(digest);
  return digest;
}
|}
    Bench_def.prelude windows salt iters_per_window windows windows

let benchmark =
  { Bench_def.name = "journal"; short = "JRN"; source; fits_data_in_sram = true }
