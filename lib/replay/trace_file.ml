(* Compact binary trace format: magic + version + JSON header, then
   tag-byte events with zigzag-varint payloads. Instruction addresses
   are delta-encoded against the previous instruction, access
   addresses against the previous access; runtime strings (runtime /
   disposition / phase names) are interned in first-use order, which
   makes the byte stream deterministic — no hash-order dependence —
   so the same run records byte-identical files on any host or OCaml
   version. *)

module Trace = Msp430.Trace
module Json = Observe.Json

type granularity = Functions of int array | Lines of int

type header = {
  benchmark : string;
  seed : int;
  frequency_mhz : int;
  wait_states : int;
  contention_penalty : int;
  system : string;
  placement : string;
  budget : int;
  granularity : granularity;
  fingerprint : int;
}

let magic = "SWTR"
let version = 1

type error =
  | Bad_magic
  | Version_mismatch of { found : int; expected : int }
  | Truncated of string
  | Corrupt of string

let error_message = function
  | Bad_magic -> "not a trace file (bad magic)"
  | Version_mismatch { found; expected } ->
      Printf.sprintf "trace format version %d (this build reads %d)" found
        expected
  | Truncated what -> Printf.sprintf "truncated trace file (%s)" what
  | Corrupt what -> Printf.sprintf "corrupt trace file (%s)" what

(* --- Tag bytes --------------------------------------------------------- *)

(* 0x00-0x03 are Instr with the source index folded into the tag. *)
let tag_instr_base = 0x00
let tag_cycles_both = 0x04
let tag_cycles_unstalled = 0x05
let tag_cycles_stall = 0x06
let tag_cycles_one = 0x07 (* the single-unstalled-cycle fast path *)
let tag_fram_read_miss = 0x08
let tag_fram_read_hit = 0x09
let tag_fram_ifetch_miss = 0x0A
let tag_fram_ifetch_hit = 0x0B
let tag_fram_write = 0x0C
let tag_sram_read = 0x0D
let tag_sram_ifetch = 0x0E
let tag_sram_write = 0x0F
let tag_periph = 0x10
let tag_call = 0x11
let tag_call_unit = 0x12
let tag_return = 0x13
let tag_miss_enter = 0x14
let tag_miss_exit = 0x15
let tag_eviction = 0x16
let tag_freeze_on = 0x17
let tag_freeze_off = 0x18
let tag_cache_flush = 0x19
let tag_block_load = 0x1A
let tag_prefetch = 0x1B
let tag_phase = 0x1C
let tag_string_def = 0x1D (* interleaved definition; not an event *)
let tag_end = 0xFE

(* --- Varints ----------------------------------------------------------- *)

(* Unsigned LEB128 over OCaml's 63-bit ints; zigzag maps signed deltas
   to small unsigned values. *)
let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag u = (u lsr 1) lxor (-(u land 1))

(* Top-level recursion for the same reason as [varint_loop]: an inner
   closure would be allocated per encoded integer. *)
let rec varint_emit buf n =
  if n land lnot 0x7F = 0 then Buffer.add_char buf (Char.chr n)
  else begin
    Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7F)));
    varint_emit buf (n lsr 7)
  end

let add_varint buf n =
  if n < 0 then invalid_arg "Trace_file: negative varint";
  varint_emit buf n

let add_signed buf n = add_varint buf (zigzag n)

(* --- Header JSON ------------------------------------------------------- *)

let header_json h =
  let granularity =
    match h.granularity with
    | Functions sizes ->
        Json.Obj
          [
            ("kind", Json.String "functions");
            ( "sizes",
              Json.List (Array.to_list (Array.map (fun s -> Json.Int s) sizes))
            );
          ]
    | Lines n ->
        Json.Obj [ ("kind", Json.String "lines"); ("bytes", Json.Int n) ]
  in
  Json.Obj
    [
      ("benchmark", Json.String h.benchmark);
      ("seed", Json.Int h.seed);
      ("frequency_mhz", Json.Int h.frequency_mhz);
      ("wait_states", Json.Int h.wait_states);
      ("contention_penalty", Json.Int h.contention_penalty);
      ("system", Json.String h.system);
      ("placement", Json.String h.placement);
      ("budget", Json.Int h.budget);
      ("granularity", granularity);
      ("fingerprint", Json.Int h.fingerprint);
    ]

exception Decode of error

let corrupt fmt = Printf.ksprintf (fun s -> raise (Decode (Corrupt s))) fmt

let header_of_json j =
  let str k =
    match Option.bind (Json.member k j) Json.to_str with
    | Some s -> s
    | None -> corrupt "header field %S missing" k
  in
  let int k =
    match Option.bind (Json.member k j) Json.to_int with
    | Some n -> n
    | None -> corrupt "header field %S missing" k
  in
  let granularity =
    match Json.member "granularity" j with
    | None -> corrupt "header field \"granularity\" missing"
    | Some g -> (
        match Option.bind (Json.member "kind" g) Json.to_str with
        | Some "functions" ->
            let sizes =
              match Option.bind (Json.member "sizes" g) Json.to_list with
              | Some l ->
                  Array.of_list
                    (List.map
                       (fun v ->
                         match Json.to_int v with
                         | Some n -> n
                         | None -> corrupt "non-integer function size")
                       l)
              | None -> corrupt "functions granularity without sizes"
            in
            Functions sizes
        | Some "lines" -> (
            match Option.bind (Json.member "bytes" g) Json.to_int with
            | Some n -> Lines n
            | None -> corrupt "lines granularity without bytes")
        | Some k -> corrupt "unknown granularity kind %S" k
        | None -> corrupt "granularity without kind")
  in
  {
    benchmark = str "benchmark";
    seed = int "seed";
    frequency_mhz = int "frequency_mhz";
    wait_states = int "wait_states";
    contention_penalty = int "contention_penalty";
    system = str "system";
    placement = str "placement";
    budget = int "budget";
    granularity;
    fingerprint = int "fingerprint";
  }

(* --- Writer ------------------------------------------------------------ *)

type writer = {
  oc : out_channel;
  path : string;
  buf : Buffer.t;
  intern : (string, int) Hashtbl.t;
  mutable nstrings : int;
  mutable prev_pc : int;
  mutable prev_addr : int;
  mutable events : int;
  mutable closed : bool;
}

let flush_threshold = 1 lsl 16

let maybe_flush w =
  if Buffer.length w.buf >= flush_threshold then begin
    Buffer.output_buffer w.oc w.buf;
    Buffer.clear w.buf
  end

let create_writer path header =
  let oc = open_out_bin path in
  let buf = Buffer.create flush_threshold in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr (version land 0xFF));
  Buffer.add_char buf (Char.chr ((version lsr 8) land 0xFF));
  let hdr = Json.to_string (header_json header) in
  let len = String.length hdr in
  Buffer.add_char buf (Char.chr (len land 0xFF));
  Buffer.add_char buf (Char.chr ((len lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((len lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((len lsr 24) land 0xFF));
  Buffer.add_string buf hdr;
  {
    oc;
    path;
    buf;
    intern = Hashtbl.create 16;
    nstrings = 0;
    prev_pc = 0;
    prev_addr = 0;
    events = 0;
    closed = false;
  }

let add_tag w t = Buffer.add_char w.buf (Char.chr t)

(* Interned string id; unseen strings get a definition record first
   (ids are assigned in first-use order — deterministic). Definitions
   must land between events, so intern BEFORE writing an event tag. *)
let intern_id w s =
  match Hashtbl.find_opt w.intern s with
  | Some id -> id
  | None ->
      let id = w.nstrings in
      w.nstrings <- id + 1;
      Hashtbl.add w.intern s id;
      add_tag w tag_string_def;
      add_varint w.buf (String.length s);
      Buffer.add_string w.buf s;
      add_varint w.buf id;
      id

let add_addr w addr =
  add_signed w.buf (addr - w.prev_addr);
  w.prev_addr <- addr

type enrich = {
  en_call_unit : int -> int option;
  en_ifetch_home : int -> int;
}

let null_enrich =
  { en_call_unit = (fun _ -> None); en_ifetch_home = (fun a -> a) }

let recorder w enrich ev =
  w.events <- w.events + 1;
  (match ev with
  | Trace.Instr { pc; source } ->
      add_tag w (tag_instr_base + Trace.source_index source);
      add_signed w.buf (pc - w.prev_pc);
      w.prev_pc <- pc
  | Trace.Cycles { unstalled; stall } ->
      if stall = 0 then
        if unstalled = 1 then add_tag w tag_cycles_one
        else begin
          add_tag w tag_cycles_unstalled;
          add_varint w.buf unstalled
        end
      else if unstalled = 0 then begin
        add_tag w tag_cycles_stall;
        add_varint w.buf stall
      end
      else begin
        add_tag w tag_cycles_both;
        add_varint w.buf unstalled;
        add_varint w.buf stall
      end
  | Trace.Mem_access { addr; cls } -> (
      match cls with
      | Trace.Fram_read { hit; ifetch = false } ->
          add_tag w (if hit then tag_fram_read_hit else tag_fram_read_miss);
          add_addr w addr
      | Trace.Fram_read { hit; ifetch = true } ->
          add_tag w (if hit then tag_fram_ifetch_hit else tag_fram_ifetch_miss);
          add_addr w addr;
          add_signed w.buf (enrich.en_ifetch_home addr - addr)
      | Trace.Fram_write ->
          add_tag w tag_fram_write;
          add_addr w addr
      | Trace.Sram_read { ifetch = false } ->
          add_tag w tag_sram_read;
          add_addr w addr
      | Trace.Sram_read { ifetch = true } ->
          add_tag w tag_sram_ifetch;
          add_addr w addr;
          add_signed w.buf (enrich.en_ifetch_home addr - addr)
      | Trace.Sram_write ->
          add_tag w tag_sram_write;
          add_addr w addr
      | Trace.Periph_access ->
          add_tag w tag_periph;
          add_addr w addr)
  | Trace.Call { target } -> (
      match enrich.en_call_unit target with
      | None ->
          add_tag w tag_call;
          add_varint w.buf target
      | Some u ->
          add_tag w tag_call_unit;
          add_varint w.buf target;
          add_varint w.buf u)
  | Trace.Return -> add_tag w tag_return
  | Trace.Runtime_event rev -> (
      match rev with
      | Trace.Miss_enter { runtime } ->
          let rt = intern_id w runtime in
          add_tag w tag_miss_enter;
          add_varint w.buf rt
      | Trace.Miss_exit { runtime; disposition; fid } ->
          let rt = intern_id w runtime in
          let disp = intern_id w disposition in
          add_tag w tag_miss_exit;
          add_varint w.buf rt;
          add_varint w.buf disp;
          add_signed w.buf fid
      | Trace.Eviction { fid } ->
          add_tag w tag_eviction;
          add_varint w.buf fid
      | Trace.Freeze { on } ->
          add_tag w (if on then tag_freeze_on else tag_freeze_off)
      | Trace.Cache_flush -> add_tag w tag_cache_flush
      | Trace.Block_load { nvm } ->
          add_tag w tag_block_load;
          add_varint w.buf nvm
      | Trace.Prefetch { fid } ->
          add_tag w tag_prefetch;
          add_varint w.buf fid
      | Trace.Phase { name } ->
          let n = intern_id w name in
          add_tag w tag_phase;
          add_varint w.buf n));
  maybe_flush w

let events_written w = w.events

let close_writer w =
  if not w.closed then begin
    w.closed <- true;
    add_tag w tag_end;
    add_varint w.buf w.events;
    Buffer.output_buffer w.oc w.buf;
    Buffer.clear w.buf;
    close_out w.oc
  end

let discard_writer w =
  if not w.closed then begin
    w.closed <- true;
    close_out_noerr w.oc
  end;
  try Sys.remove w.path with Sys_error _ -> ()

(* --- Reader ------------------------------------------------------------ *)

type decoded = { d_ev : Trace.event; d_unit : int option; d_home : int }

type cursor = { data : string; mutable pos : int }

let truncated what = raise (Decode (Truncated what))

let byte c what =
  if c.pos >= String.length c.data then truncated what;
  (* The explicit truncation check above already bounds [pos]. *)
  let b = Char.code (String.unsafe_get c.data c.pos) in
  c.pos <- c.pos + 1;
  b

(* Top-level recursion, not an inner [go] closure: a closure here would
   be allocated on every call, i.e. once or twice per event on the hot
   decode path. *)
let rec varint_loop c what shift acc =
  if shift > 62 then corrupt "varint overflow";
  let b = byte c what in
  let acc = acc lor ((b land 0x7F) lsl shift) in
  if b land 0x80 = 0 then acc else varint_loop c what (shift + 7) acc

let read_varint c what = varint_loop c what 0 0

let read_signed c what = unzigzag (read_varint c what)

let source_of_index i =
  match i with
  | 0 -> Trace.App_fram
  | 1 -> Trace.App_sram
  | 2 -> Trace.Handler
  | 3 -> Trace.Memcpy
  | _ -> corrupt "bad source index %d" i

let load_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let decode_preamble c =
  if String.length c.data < 4 then raise (Decode Bad_magic);
  if String.sub c.data 0 4 <> magic then raise (Decode Bad_magic);
  c.pos <- 4;
  let v0 = byte c "version" in
  let v1 = byte c "version" in
  let found = v0 lor (v1 lsl 8) in
  if found <> version then
    raise (Decode (Version_mismatch { found; expected = version }));
  let l0 = byte c "header length" in
  let l1 = byte c "header length" in
  let l2 = byte c "header length" in
  let l3 = byte c "header length" in
  let len = l0 lor (l1 lsl 8) lor (l2 lsl 16) lor (l3 lsl 24) in
  if c.pos + len > String.length c.data then truncated "header";
  let hdr = String.sub c.data c.pos len in
  c.pos <- c.pos + len;
  match Json.parse hdr with
  | Error msg -> corrupt "header JSON: %s" msg
  | Ok j -> header_of_json j

let read_header path =
  match
    let c = { data = load_file path; pos = 0 } in
    decode_preamble c
  with
  | h -> Ok h
  | exception Decode e -> Error e
  | exception Sys_error msg -> Error (Corrupt msg)

(* Growable string table; ids are sequential so an array suffices. *)
type strings = { mutable tbl : string array; mutable n : int }

let intern_lookup s id =
  if id < 0 || id >= s.n then corrupt "string reference %d out of range" id;
  s.tbl.(id)

let intern_define s str id =
  if id <> s.n then corrupt "string definition out of order";
  if s.n = Array.length s.tbl then begin
    let tbl = Array.make (max 8 (2 * s.n)) "" in
    Array.blit s.tbl 0 tbl 0 s.n;
    s.tbl <- tbl
  end;
  s.tbl.(s.n) <- str;
  s.n <- s.n + 1

(* Flat per-event callbacks; the decode loop calls straight into these
   without materializing [Trace.event] values, so a visitor-based scan
   allocates nothing per event. This is the hot path the record-once /
   replay-many speedup rests on — [fold] (and its [decoded] values) is
   a convenience wrapper built on the same loop. *)
type visitor = {
  v_instr : int -> int -> unit;  (** source index, pc *)
  v_cycles : int -> int -> unit;  (** unstalled, stall *)
  v_fram_read : bool -> int -> unit;  (** hit, addr (data read) *)
  v_fram_ifetch : bool -> int -> int -> unit;  (** hit, addr, home *)
  v_fram_write : int -> unit;
  v_sram_read : int -> unit;
  v_sram_ifetch : int -> int -> unit;  (** addr, home *)
  v_sram_write : int -> unit;
  v_periph : int -> unit;
  v_call : int -> int -> unit;  (** target, unit (-1 when unrecorded) *)
  v_return : unit -> unit;
  v_miss_enter : string -> unit;
  v_miss_exit : string -> string -> int -> unit;
      (** runtime, disposition, fid *)
  v_eviction : int -> unit;
  v_freeze : bool -> unit;
  v_cache_flush : unit -> unit;
  v_block_load : int -> unit;
  v_prefetch : int -> unit;
  v_phase : string -> unit;
}

let iter path ~make =
  match
    let c = { data = load_file path; pos = 0 } in
    let header = decode_preamble c in
    let v = make header in
    let strings = { tbl = [||]; n = 0 } in
    let prev_pc = ref 0 in
    let prev_addr = ref 0 in
    let count = ref 0 in
    let read_str what =
      let id = read_varint c what in
      intern_lookup strings id
    in
    let addr what =
      let a = !prev_addr + read_signed c what in
      prev_addr := a;
      a
    in
    let finished = ref false in
    while not !finished do
      let tag = byte c "event stream" in
      incr count;
      if tag < 0x04 then begin
        let pc = !prev_pc + read_signed c "instr" in
        prev_pc := pc;
        v.v_instr tag pc
      end
      else if tag = tag_cycles_one then v.v_cycles 1 0
      else if tag = tag_cycles_unstalled then
        v.v_cycles (read_varint c "cycles") 0
      else if tag = tag_cycles_stall then v.v_cycles 0 (read_varint c "cycles")
      else if tag = tag_cycles_both then begin
        let unstalled = read_varint c "cycles" in
        let stall = read_varint c "cycles" in
        v.v_cycles unstalled stall
      end
      else if tag = tag_fram_read_miss then v.v_fram_read false (addr "fram read")
      else if tag = tag_fram_read_hit then v.v_fram_read true (addr "fram read")
      else if tag = tag_fram_ifetch_miss || tag = tag_fram_ifetch_hit then begin
        let a = addr "fram ifetch" in
        let home = a + read_signed c "fram ifetch home" in
        v.v_fram_ifetch (tag = tag_fram_ifetch_hit) a home
      end
      else if tag = tag_fram_write then v.v_fram_write (addr "fram write")
      else if tag = tag_sram_read then v.v_sram_read (addr "sram read")
      else if tag = tag_sram_ifetch then begin
        let a = addr "sram ifetch" in
        let home = a + read_signed c "sram ifetch home" in
        v.v_sram_ifetch a home
      end
      else if tag = tag_sram_write then v.v_sram_write (addr "sram write")
      else if tag = tag_periph then v.v_periph (addr "periph")
      else if tag = tag_call then v.v_call (read_varint c "call") (-1)
      else if tag = tag_call_unit then begin
        let target = read_varint c "call" in
        let u = read_varint c "call unit" in
        v.v_call target u
      end
      else if tag = tag_return then v.v_return ()
      else if tag = tag_miss_enter then v.v_miss_enter (read_str "miss enter")
      else if tag = tag_miss_exit then begin
        let runtime = read_str "miss exit" in
        let disposition = read_str "miss exit" in
        let fid = read_signed c "miss exit" in
        v.v_miss_exit runtime disposition fid
      end
      else if tag = tag_eviction then v.v_eviction (read_varint c "eviction")
      else if tag = tag_freeze_on then v.v_freeze true
      else if tag = tag_freeze_off then v.v_freeze false
      else if tag = tag_cache_flush then v.v_cache_flush ()
      else if tag = tag_block_load then v.v_block_load (read_varint c "block load")
      else if tag = tag_prefetch then v.v_prefetch (read_varint c "prefetch")
      else if tag = tag_phase then v.v_phase (read_str "phase")
      else begin
        decr count;
        if tag = tag_end then begin
          let declared = read_varint c "end marker" in
          if declared <> !count then
            corrupt "end marker declares %d events, decoded %d" declared !count;
          if c.pos <> String.length c.data then
            corrupt "%d trailing bytes after end marker"
              (String.length c.data - c.pos);
          finished := true
        end
        else if tag = tag_string_def then begin
          let len = read_varint c "string definition" in
          if c.pos + len > String.length c.data then
            truncated "string definition";
          let s = String.sub c.data c.pos len in
          c.pos <- c.pos + len;
          let id = read_varint c "string definition" in
          intern_define strings s id
        end
        else corrupt "unknown tag 0x%02X" tag
      end
    done;
    (header, !count)
  with
  | result -> Ok result
  | exception Decode e -> Error e
  | exception Sys_error msg -> Error (Corrupt msg)

let fold path ~init ~f =
  let acc = ref None in
  let make header =
    let a = ref (init header) in
    acc := Some a;
    let emit d = a := f !a d in
    let plain ev = emit { d_ev = ev; d_unit = None; d_home = 0 } in
    let mem addr cls = plain (Trace.Mem_access { addr; cls }) in
    let rt ev = plain (Trace.Runtime_event ev) in
    {
      v_instr =
        (fun i pc -> plain (Trace.Instr { pc; source = source_of_index i }));
      v_cycles = (fun unstalled stall -> plain (Trace.Cycles { unstalled; stall }));
      v_fram_read =
        (fun hit addr -> mem addr (Trace.Fram_read { hit; ifetch = false }));
      v_fram_ifetch =
        (fun hit addr home ->
          emit
            {
              d_ev =
                Trace.Mem_access
                  { addr; cls = Trace.Fram_read { hit; ifetch = true } };
              d_unit = None;
              d_home = home;
            });
      v_fram_write = (fun addr -> mem addr Trace.Fram_write);
      v_sram_read = (fun addr -> mem addr (Trace.Sram_read { ifetch = false }));
      v_sram_ifetch =
        (fun addr home ->
          emit
            {
              d_ev =
                Trace.Mem_access
                  { addr; cls = Trace.Sram_read { ifetch = true } };
              d_unit = None;
              d_home = home;
            });
      v_sram_write = (fun addr -> mem addr Trace.Sram_write);
      v_periph = (fun addr -> mem addr Trace.Periph_access);
      v_call =
        (fun target u ->
          emit
            {
              d_ev = Trace.Call { target };
              d_unit = (if u < 0 then None else Some u);
              d_home = 0;
            });
      v_return = (fun () -> plain Trace.Return);
      v_miss_enter = (fun runtime -> rt (Trace.Miss_enter { runtime }));
      v_miss_exit =
        (fun runtime disposition fid ->
          rt (Trace.Miss_exit { runtime; disposition; fid }));
      v_eviction = (fun fid -> rt (Trace.Eviction { fid }));
      v_freeze = (fun on -> rt (Trace.Freeze { on }));
      v_cache_flush = (fun () -> rt Trace.Cache_flush);
      v_block_load = (fun nvm -> rt (Trace.Block_load { nvm }));
      v_prefetch = (fun fid -> rt (Trace.Prefetch { fid }));
      v_phase = (fun name -> rt (Trace.Phase { name }));
    }
  in
  match iter path ~make with
  | Error e -> Error e
  | Ok (header, count) -> (
      match !acc with
      | Some a -> Ok (!a, header, count)
      | None -> assert false)
