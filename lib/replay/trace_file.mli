(** Compact binary trace format for the trace-once, simulate-many
    replayer.

    A trace file captures one complete run's {!Msp430.Trace} observer
    stream — every counted instruction fetch and data access with its
    address and access class, the cycle accruals, call/return edges,
    runtime cache events and phase markers — plus, per event, the
    answers the harness's runtime hooks gave while the machine was
    live (resolved call targets, NVM home addresses). Those recorded
    answers are what let a replay reproduce the executed
    {!Observe.Metrics} series and miss-ratio curve byte-for-byte
    without a machine to query.

    Layout: magic ["SWTR"], a 16-bit format version, a
    length-prefixed JSON header describing the recording
    configuration, then tag-byte events with zigzag-varint payloads.
    Instruction and access addresses are delta-encoded against the
    previous one of their kind, strings are interned in first-use
    order, and output is buffered, so recording a Table-2 run costs
    little over an ordinarily observed run (a few bytes per event).
    An explicit end marker carries the event count, so truncation is
    always detected. All encoding decisions are deterministic: the
    same run records byte-identical traces on any host. *)

(** What the recorded runtime caches, fixing the reuse/cache unit a
    replay simulates. [Functions sizes] is SwapRAM's function granule
    ([sizes.(fid)] = code bytes); [Lines n] is the block cache's slot
    (or the baseline's nominal line). *)
type granularity = Functions of int array | Lines of int

type header = {
  benchmark : string;
  seed : int;
  frequency_mhz : int;  (** 8 or 24 *)
  wait_states : int;  (** FRAM wait states at the recording frequency *)
  contention_penalty : int;
      (** extra stall per 2nd+ FRAM access within one instruction *)
  system : string;  (** {!Experiments.Toolchain.caching_name} *)
  placement : string;
  budget : int;  (** configured cache capacity in bytes; 0 = none *)
  granularity : granularity;
  fingerprint : int;
      (** FNV-1a fingerprint of the full recording configuration
          ({!Experiments.Toolchain.config_fingerprint}); lets sweep
          memos and [replay --check] reject stale traces *)
}

val version : int

type error =
  | Bad_magic
  | Version_mismatch of { found : int; expected : int }
  | Truncated of string
  | Corrupt of string

val error_message : error -> string

(** {2 Recording} *)

type writer

(** Runtime-hook answers recorded alongside the raw events: the
    results of {!Observe.Metrics.hooks}' [h_call_unit] (on [Call])
    and [h_ifetch_home] (on instruction-fetch reads), queried while
    the machine is live. *)
type enrich = {
  en_call_unit : int -> int option;
  en_ifetch_home : int -> int;
}

val null_enrich : enrich

val create_writer : string -> header -> writer
(** [create_writer path header] opens [path] for writing and emits
    magic, version and header. *)

val recorder : writer -> enrich -> Msp430.Trace.event -> unit
(** The observer to attach (via {!Msp430.Trace.add_observer}): encodes
    each event, consulting [enrich] only where the format stores hook
    answers. *)

val events_written : writer -> int

val close_writer : writer -> unit
(** Write the end marker and close. The file is complete and
    readable only after this returns. *)

val discard_writer : writer -> unit
(** Close and delete the partial file (crashed or abandoned runs). *)

(** {2 Reading} *)

(** One decoded event with its recorded hook answers. [d_unit] is
    meaningful on [Call] events (the recorded [h_call_unit] of the
    target); [d_home] on instruction-fetch reads (the recorded
    [h_ifetch_home] of the address — equal to the address itself
    outside any cache region). *)
type decoded = {
  d_ev : Msp430.Trace.event;
  d_unit : int option;
  d_home : int;
}

val read_header : string -> (header, error) result
(** Decode just the header (cheap; does not touch the event stream). *)

(** Flat per-event callbacks for [iter]. The decode loop calls these
    directly without materializing [Trace.event] values, so a visitor
    scan allocates nothing per event — this is the fast path replay
    analyses are built on. Addresses and program counters arrive
    delta-reconstructed; [v_call]'s second argument is the recorded
    unit id or [-1] when none was recorded; home addresses equal the
    access address outside any cache region. *)
type visitor = {
  v_instr : int -> int -> unit;  (** source index, pc *)
  v_cycles : int -> int -> unit;  (** unstalled, stall *)
  v_fram_read : bool -> int -> unit;  (** hit, addr (data read) *)
  v_fram_ifetch : bool -> int -> int -> unit;  (** hit, addr, home *)
  v_fram_write : int -> unit;
  v_sram_read : int -> unit;
  v_sram_ifetch : int -> int -> unit;  (** addr, home *)
  v_sram_write : int -> unit;
  v_periph : int -> unit;
  v_call : int -> int -> unit;  (** target, unit (-1 when unrecorded) *)
  v_return : unit -> unit;
  v_miss_enter : string -> unit;
  v_miss_exit : string -> string -> int -> unit;
      (** runtime, disposition, fid *)
  v_eviction : int -> unit;
  v_freeze : bool -> unit;
  v_cache_flush : unit -> unit;
  v_block_load : int -> unit;
  v_prefetch : int -> unit;
  v_phase : string -> unit;
}

val iter : string -> make:(header -> visitor) -> (header * int, error) result
(** [iter path ~make] decodes the header, builds a visitor from it and
    streams every event through the visitor's callbacks in recording
    order. Returns the header and event count; same error conditions
    as {!fold} (which is a wrapper over this loop). *)

val fold :
  string ->
  init:(header -> 'a) ->
  f:('a -> decoded -> 'a) ->
  ('a * header * int, error) result
(** [fold path ~init ~f] streams every event through [f] in recording
    order; [init] receives the header first. Returns the final
    accumulator, the header and the event count; [Error] on bad
    magic, version skew, truncation or corruption (including an event
    count that disagrees with the end marker). *)
