(* Replay kernel. [load] reduces a trace file to sufficient statistics
   in one pass; [exact] / [simulate] / [mrc] are then pure arithmetic
   over those statistics, which is where the record-once /
   simulate-many speedup comes from. The full-stream [replay_metrics]
   path re-runs the Observe.Metrics sampler over the decoded events,
   answering its runtime hooks from the recorded enrichments. *)

module Trace = Msp430.Trace
module Energy = Msp430.Energy
module Platform = Msp430.Platform

type error = Format_error of Trace_file.error | Model_error of string

let error_message = function
  | Format_error e -> Trace_file.error_message e
  | Model_error msg -> msg

type runtime_counts = {
  rc_misses : int;
  rc_evictions : int;
  rc_aborts : int;
  rc_frozen : int;
  rc_too_large : int;
  rc_prefetches : int;
  rc_returns : int;
  rc_flushes : int;
  rc_block_loads : int;
}

type loaded = {
  header : Trace_file.header;
  path : string;
  events : int;
  bytes : int;
  instructions : int;
  by_source : int array;
  unstalled : int;
  recorded_stall : int;
  fram_ifetch : int;
  fram_data_reads : int;
  fram_read_hits : int;
  fram_writes : int;
  sram_ifetch : int;
  sram_data_reads : int;
  sram_writes : int;
  periph_accesses : int;
  calls : int;
  returns : int;
  contention_events : int;
  runtime : runtime_counts;
  refs : refs;
  units : int;
}

and refs = Fn_refs of int array | Line_refs of int array

(* --- Growable int vector ----------------------------------------------- *)

type vec = { mutable a : int array; mutable n : int }

let vec_create () = { a = Array.make 1024 0; n = 0 }

let vec_push v x =
  if v.n = Array.length v.a then begin
    let a = Array.make (2 * v.n) 0 in
    Array.blit v.a 0 a 0 v.n;
    v.a <- a
  end;
  v.a.(v.n) <- x;
  v.n <- v.n + 1

let vec_contents v = Array.sub v.a 0 v.n

(* --- Load -------------------------------------------------------------- *)

type accum = {
  mutable ac_instructions : int;
  ac_by_source : int array;
  mutable ac_unstalled : int;
  mutable ac_stall : int;
  mutable ac_fram_ifetch : int;
  mutable ac_fram_data_reads : int;
  mutable ac_fram_read_hits : int;
  mutable ac_fram_writes : int;
  mutable ac_sram_ifetch : int;
  mutable ac_sram_data_reads : int;
  mutable ac_sram_writes : int;
  mutable ac_periph : int;
  mutable ac_calls : int;
  mutable ac_returns : int;
  mutable ac_contention : int;
  mutable ac_fram_this_instr : int;
  mutable ac_miss_enters : int;
  mutable ac_exits_cached : int;
  mutable ac_exits_nvm : int;
  mutable ac_exits_frozen : int;
  mutable ac_exits_too_large : int;
  mutable ac_exits_return : int;
  mutable ac_evictions : int;
  mutable ac_prefetches : int;
  mutable ac_flushes : int;
  mutable ac_block_loads : int;
  ac_functions : bool;
  ac_refs : vec;
  (* Line-granularity recordings bucket each fetch home to its line
     index ([home / ac_line_size]) before RLE: cached fetches repeat
     the block's aligned NVM base and uncached fetches walk word by
     word, but both collapse once bucketed. *)
  ac_line_size : int;
  (* Pending line run (RLE): line index of the run being accumulated
     and how many consecutive fetches hit it; flushed into [ac_refs]
     as a [line; length] pair when the line changes (and at EOF). *)
  mutable ac_line_home : int;
  mutable ac_line_len : int;
  (* Highest unit id pushed into [ac_refs]; lets [simulate] size its
     direct-indexed residency arrays without a pre-pass per cell. *)
  mutable ac_max_unit : int;
}

let fresh_accum functions line_size =
  {
    ac_instructions = 0;
    ac_by_source = Array.make Trace.source_count 0;
    ac_unstalled = 0;
    ac_stall = 0;
    ac_fram_ifetch = 0;
    ac_fram_data_reads = 0;
    ac_fram_read_hits = 0;
    ac_fram_writes = 0;
    ac_sram_ifetch = 0;
    ac_sram_data_reads = 0;
    ac_sram_writes = 0;
    ac_periph = 0;
    ac_calls = 0;
    ac_returns = 0;
    ac_contention = 0;
    ac_fram_this_instr = 0;
    ac_miss_enters = 0;
    ac_exits_cached = 0;
    ac_exits_nvm = 0;
    ac_exits_frozen = 0;
    ac_exits_too_large = 0;
    ac_exits_return = 0;
    ac_evictions = 0;
    ac_prefetches = 0;
    ac_flushes = 0;
    ac_block_loads = 0;
    ac_functions = functions;
    ac_refs = vec_create ();
    ac_line_size = line_size;
    ac_line_home = min_int;
    ac_line_len = 0;
    ac_max_unit = -1;
  }

let push_line a home =
  let line = home / a.ac_line_size in
  if line = a.ac_line_home then a.ac_line_len <- a.ac_line_len + 1
  else begin
    if a.ac_line_len > 0 then begin
      vec_push a.ac_refs a.ac_line_home;
      vec_push a.ac_refs a.ac_line_len
    end;
    a.ac_line_home <- line;
    a.ac_line_len <- 1;
    if line > a.ac_max_unit then a.ac_max_unit <- line
  end

let flush_line a =
  if a.ac_line_len > 0 then begin
    vec_push a.ac_refs a.ac_line_home;
    vec_push a.ac_refs a.ac_line_len;
    a.ac_line_len <- 0;
    a.ac_line_home <- min_int
  end

(* Mirror of Memory's contention model: every [Instr] resets the
   per-instruction FRAM access count ([begin_instruction] is always
   paired with an Instr emission on observed runs), and every FRAM
   access past the first within one instruction costs one
   contention-penalty stall. *)
let note_fram_access a =
  a.ac_fram_this_instr <- a.ac_fram_this_instr + 1;
  if a.ac_fram_this_instr > 1 then a.ac_contention <- a.ac_contention + 1

(* The accumulating visitor is the allocation-free hot loop: every
   callback is straight counter arithmetic (plus a ref push), which is
   what makes loading a multi-hundred-megacycle trace cheaper than
   re-simulating it. *)
let accum_visitor a =
  {
    Trace_file.v_instr =
      (fun i _pc ->
        a.ac_instructions <- a.ac_instructions + 1;
        a.ac_by_source.(i) <- a.ac_by_source.(i) + 1;
        a.ac_fram_this_instr <- 0);
    v_cycles =
      (fun unstalled stall ->
        a.ac_unstalled <- a.ac_unstalled + unstalled;
        a.ac_stall <- a.ac_stall + stall);
    v_fram_read =
      (fun hit _addr ->
        a.ac_fram_data_reads <- a.ac_fram_data_reads + 1;
        if hit then a.ac_fram_read_hits <- a.ac_fram_read_hits + 1;
        note_fram_access a);
    v_fram_ifetch =
      (fun hit _addr home ->
        a.ac_fram_ifetch <- a.ac_fram_ifetch + 1;
        if hit then a.ac_fram_read_hits <- a.ac_fram_read_hits + 1;
        note_fram_access a;
        if not a.ac_functions then push_line a home);
    v_fram_write =
      (fun _addr ->
        a.ac_fram_writes <- a.ac_fram_writes + 1;
        note_fram_access a);
    v_sram_read = (fun _addr -> a.ac_sram_data_reads <- a.ac_sram_data_reads + 1);
    v_sram_ifetch =
      (fun _addr home ->
        a.ac_sram_ifetch <- a.ac_sram_ifetch + 1;
        if not a.ac_functions then push_line a home);
    v_sram_write = (fun _addr -> a.ac_sram_writes <- a.ac_sram_writes + 1);
    v_periph = (fun _addr -> a.ac_periph <- a.ac_periph + 1);
    v_call =
      (fun _target u ->
        a.ac_calls <- a.ac_calls + 1;
        if a.ac_functions && u >= 0 then begin
          vec_push a.ac_refs (u lsl 1);
          if u > a.ac_max_unit then a.ac_max_unit <- u
        end);
    v_return = (fun () -> a.ac_returns <- a.ac_returns + 1);
    v_miss_enter = (fun _rt -> a.ac_miss_enters <- a.ac_miss_enters + 1);
    v_miss_exit =
      (fun _rt disposition fid ->
        (match disposition with
        | "cached" -> a.ac_exits_cached <- a.ac_exits_cached + 1
        | "nvm" -> a.ac_exits_nvm <- a.ac_exits_nvm + 1
        | "frozen" -> a.ac_exits_frozen <- a.ac_exits_frozen + 1
        | "too-large" -> a.ac_exits_too_large <- a.ac_exits_too_large + 1
        | "return" -> a.ac_exits_return <- a.ac_exits_return + 1
        | _ -> ());
        if a.ac_functions && fid >= 0 && disposition <> "return" then begin
          vec_push a.ac_refs ((fid lsl 1) lor 1);
          if fid > a.ac_max_unit then a.ac_max_unit <- fid
        end);
    v_eviction = (fun _fid -> a.ac_evictions <- a.ac_evictions + 1);
    v_freeze = (fun _on -> ());
    v_cache_flush = (fun () -> a.ac_flushes <- a.ac_flushes + 1);
    v_block_load = (fun _nvm -> a.ac_block_loads <- a.ac_block_loads + 1);
    v_prefetch = (fun _fid -> a.ac_prefetches <- a.ac_prefetches + 1);
    v_phase = (fun _name -> ());
  }

let fram_read_misses l = l.fram_ifetch + l.fram_data_reads - l.fram_read_hits

let stall_at l ~wait_states =
  (wait_states * (fram_read_misses l + l.fram_writes))
  + (l.header.Trace_file.contention_penalty * l.contention_events)

(* Process-local loaded-trace cache. Keyed by path but *validated* by
   content: an entry is served only while the file's size, mtime and
   header fingerprint all still match what was loaded, so overwriting
   a trace in place (the staleness regression) can never satisfy a
   cached entry recorded under a different configuration. Forked
   workers inherit the parent's cache at fork time and fill their own
   copy lazily, which is what makes chunked sweeps decode each trace
   once per process instead of once per task. *)

type cache_sig = { cs_size : int; cs_mtime : float; cs_fingerprint : int }

let load_cache : (string, cache_sig * loaded) Hashtbl.t = Hashtbl.create 8
let load_cache_limit = 64

let clear_load_cache () = Hashtbl.reset load_cache

let load path =
  let accum = ref None in
  let make (h : Trace_file.header) =
    let a =
      match h.Trace_file.granularity with
      | Trace_file.Functions _ -> fresh_accum true 1
      | Trace_file.Lines n -> fresh_accum false (max 1 n)
    in
    accum := Some a;
    accum_visitor a
  in
  match Trace_file.iter path ~make with
  | Error e -> Error (Format_error e)
  | Ok (header, events) ->
      let a = match !accum with Some a -> a | None -> assert false in
      flush_line a;
      let bytes =
        match (Unix.stat path).Unix.st_size with
        | n -> n
        | exception Unix.Unix_error _ -> 0
      in
      let runtime =
        {
          (* SwapRAM counts every handler entry as a miss; the block
             cache enters its handler for return traps too, so its
             miss count is the "cached" exits. *)
          rc_misses =
            (match header.Trace_file.granularity with
            | Trace_file.Functions _ -> a.ac_miss_enters
            | Trace_file.Lines _ -> a.ac_exits_cached);
          rc_evictions = a.ac_evictions;
          rc_aborts = a.ac_exits_nvm;
          rc_frozen = a.ac_exits_frozen;
          rc_too_large = a.ac_exits_too_large;
          rc_prefetches = a.ac_prefetches;
          rc_returns = a.ac_exits_return;
          rc_flushes = a.ac_flushes;
          rc_block_loads = a.ac_block_loads;
        }
      in
      let l =
        {
          header;
          path;
          events;
          bytes;
          instructions = a.ac_instructions;
          by_source = a.ac_by_source;
          unstalled = a.ac_unstalled;
          recorded_stall = a.ac_stall;
          fram_ifetch = a.ac_fram_ifetch;
          fram_data_reads = a.ac_fram_data_reads;
          fram_read_hits = a.ac_fram_read_hits;
          fram_writes = a.ac_fram_writes;
          sram_ifetch = a.ac_sram_ifetch;
          sram_data_reads = a.ac_sram_data_reads;
          sram_writes = a.ac_sram_writes;
          periph_accesses = a.ac_periph;
          calls = a.ac_calls;
          returns = a.ac_returns;
          contention_events = a.ac_contention;
          runtime;
          refs =
            (if a.ac_functions then Fn_refs (vec_contents a.ac_refs)
             else Line_refs (vec_contents a.ac_refs));
          units = a.ac_max_unit + 1;
        }
      in
      (* The whole exactness story rests on the stall total being a
         function of (wait states, FRAM miss/write counts, contention
         events); refuse a trace where it is not. *)
      let reconstructed =
        stall_at l ~wait_states:header.Trace_file.wait_states
      in
      if reconstructed <> l.recorded_stall then
        Error
          (Model_error
             (Printf.sprintf
                "stall reconstruction mismatch: recorded %d, reconstructed %d \
                 at %d wait states"
                l.recorded_stall reconstructed
                header.Trace_file.wait_states))
      else Ok l

let load_cached path =
  let signature () =
    match Unix.stat path with
    | st -> Some (st.Unix.st_size, st.Unix.st_mtime)
    | exception Unix.Unix_error _ -> None
  in
  match Trace_file.read_header path with
  | Error e -> Error (Format_error e)
  | Ok h -> (
      let fp = h.Trace_file.fingerprint in
      let sg = signature () in
      match (Hashtbl.find_opt load_cache path, sg) with
      | Some (c, l), Some (size, mtime)
        when c.cs_size = size && c.cs_mtime = mtime && c.cs_fingerprint = fp ->
          Ok l
      | _ -> (
          match load path with
          | Error _ as e -> e
          | Ok l ->
              (match sg with
              | Some (size, mtime) ->
                  if Hashtbl.length load_cache >= load_cache_limit then
                    Hashtbl.reset load_cache;
                  Hashtbl.replace load_cache path
                    ( { cs_size = size; cs_mtime = mtime; cs_fingerprint = fp },
                      l )
              | None -> ());
              Ok l))

let unit_bytes l u =
  match l.header.Trace_file.granularity with
  | Trace_file.Functions sizes ->
      if u >= 0 && u < Array.length sizes then sizes.(u) else 0
  | Trace_file.Lines n -> n

let line_bytes l =
  match l.header.Trace_file.granularity with
  | Trace_file.Lines n -> n
  | Trace_file.Functions _ -> 64

(* Iterate maximal same-unit runs: [f unit bytes len]. Function refs
   are single-access runs; line refs arrive RLE-packed from [load] as
   recorded-granularity line indices, so a requested block size is
   honoured at the nearest multiple of the recorded line size (indices
   cannot be split below the granularity they were bucketed at). *)
let iter_runs l ~block f =
  match l.refs with
  | Fn_refs a ->
      Array.iter (fun x -> f (x lsr 1) (unit_bytes l (x lsr 1)) 1) a
  | Line_refs a ->
      let slot = line_bytes l in
      let factor = max 1 (block / slot) in
      let bytes = factor * slot in
      let n = Array.length a in
      let i = ref 0 in
      while !i < n do
        f (a.(!i) / factor) bytes a.(!i + 1);
        i := !i + 2
      done

let footprint l =
  let seen = Hashtbl.create 64 in
  let total = ref 0 in
  iter_runs l ~block:(line_bytes l) (fun u bytes _len ->
      if not (Hashtbl.mem seen u) then begin
        Hashtbl.add seen u ();
        total := !total + bytes
      end);
  !total

(* --- Exact replay ------------------------------------------------------ *)

type totals = {
  t_frequency_mhz : int;
  t_wait_states : int;
  t_unstalled : int;
  t_stall : int;
  t_cycles : int;
  t_fram_read_misses : int;
  t_energy_nj : float;
  t_time_s : float;
}

let exact ?frequency_mhz l =
  let mhz =
    match frequency_mhz with
    | Some m -> m
    | None -> l.header.Trace_file.frequency_mhz
  in
  match mhz with
  | (8 | 24) as mhz ->
      let wait_states = if mhz = 8 then 0 else 3 in
      let params = if mhz = 8 then Energy.point_8mhz else Energy.point_24mhz in
      let stall = stall_at l ~wait_states in
      let cycles = l.unstalled + stall in
      let report =
        Energy.evaluate_counts params ~cycles
          ~fram_read_misses:(fram_read_misses l)
          ~fram_read_hits:l.fram_read_hits ~fram_writes:l.fram_writes
          ~sram_accesses:(l.sram_ifetch + l.sram_data_reads + l.sram_writes)
      in
      Ok
        {
          t_frequency_mhz = mhz;
          t_wait_states = wait_states;
          t_unstalled = l.unstalled;
          t_stall = stall;
          t_cycles = cycles;
          t_fram_read_misses = fram_read_misses l;
          t_energy_nj = report.Energy.energy_nj;
          t_time_s = report.Energy.time_s;
        }
  | m -> Error (Printf.sprintf "unsupported frequency %d MHz (8 or 24)" m)

(* --- Cache-model simulation -------------------------------------------- *)

type policy = Lru | Lfu | Cost_aware

let policy_name = function
  | Lru -> "lru"
  | Lfu -> "lfu"
  | Cost_aware -> "cost"

let policy_of_string = function
  | "lru" -> Some Lru
  | "lfu" -> Some Lfu
  | "cost" | "cost-aware" | "cost_aware" -> Some Cost_aware
  | _ -> None

type model = { m_budget : int; m_policy : policy; m_block : int option }

type sim = {
  s_refs : int;
  s_misses : int;
  s_cold_misses : int;
  s_evictions : int;
  s_bytes_loaded : int;
  s_miss_rate : float;
}

let effective_block l block =
  match (l.refs, block) with
  | Line_refs _, Some b when b > 0 -> b
  | _ -> line_bytes l

let sim_block l m = effective_block l m.m_block

let empty_sim =
  {
    s_refs = 0;
    s_misses = 0;
    s_cold_misses = 0;
    s_evictions = 0;
    s_bytes_loaded = 0;
    s_miss_rate = 0.0;
  }

(* Unit ids are small dense ints (line indices of a 64 KiB address
   space, or function ids), so residency state lives in flat arrays
   indexed by unit — no hashing on the per-run hot path, which is
   what keeps an eviction-heavy cell (LFU under thrash) cheap. The
   index bound comes from [l.units]; a block-size override only
   merges recorded units, so dividing the bound by the merge factor
   still covers every rebucketed id. *)
let sim_units l ~block =
  match l.refs with
  | Fn_refs _ -> l.units
  | Line_refs _ ->
      if l.units = 0 then 0
      else
        let factor = max 1 (block / line_bytes l) in
        ((l.units - 1) / factor) + 1

(* Residency state for a unit-id bound; allocated once per
   (trace, block) group in [simulate_many] and reset between models,
   so a batch pays the allocation and GC cost once instead of once per
   cell. [st_touched] records each unit the pass marked seen (every
   other per-unit write implies seen), so the reset clears only those
   entries — proportional to the trace's distinct units, not the
   unit-id bound, which matters on a small trace swept under many
   models. The [hp_*] arrays back the lazy min-heap used for victim
   selection: at most one entry per resident unit, so capacity [n]
   can never overflow. *)
type sim_state = {
  st_size : int array;
  st_last : int array;
  st_uses : int array;
  st_resident : bool array;
  st_seen : bool array;
  st_touched : int array;
  mutable st_ntouched : int;
  hp_key : int array;
  hp_last : int array;
  hp_unit : int array;
  mutable hp_n : int;
}

let make_state n =
  {
    st_size = Array.make n 0;
    st_last = Array.make n 0;
    st_uses = Array.make n 0;
    st_resident = Array.make n false;
    st_seen = Array.make n false;
    st_touched = Array.make n 0;
    st_ntouched = 0;
    hp_key = Array.make n 0;
    hp_last = Array.make n 0;
    hp_unit = Array.make n 0;
    hp_n = 0;
  }

let reset_state st =
  for i = 0 to st.st_ntouched - 1 do
    let u = Array.unsafe_get st.st_touched i in
    st.st_size.(u) <- 0;
    st.st_last.(u) <- 0;
    st.st_uses.(u) <- 0;
    st.st_resident.(u) <- false;
    st.st_seen.(u) <- false
  done;
  st.st_ntouched <- 0;
  st.hp_n <- 0

(* One cache-model pass over a run stream. [iter] feeds maximal
   same-unit runs as [f unit bytes len]; both [simulate] (streaming
   straight off the loaded refs) and [simulate_many] (replaying a
   pre-bucketed stream) funnel into this single implementation, so the
   batched path cannot drift from the reference one. *)
let sim_core st ~budget ~policy iter =
  let r_size = st.st_size in
  let r_last = st.st_last in
  let r_uses = st.st_uses in
  let resident = st.st_resident in
  let seen = st.st_seen in
  let hp_key = st.hp_key in
  let hp_last = st.hp_last in
  let hp_unit = st.hp_unit in
  let occupancy = ref 0 in
  let clock = ref 0 in
  let refs = ref 0 in
  let misses = ref 0 in
  let cold = ref 0 in
  let evictions = ref 0 in
  let loaded = ref 0 in
  (* Eviction order is the lexicographic (metric, last-use) minimum;
     [r_last] is unique, so the order is total and the victim matches
     what a full linear scan with the same strict-< comparison picks —
     scan order and heap shape never show. *)
  let key_of =
    match policy with
    | Lru -> fun u -> Array.unsafe_get r_last u
    | Lfu -> fun u -> Array.unsafe_get r_uses u
    | Cost_aware ->
        fun u -> Array.unsafe_get r_uses u * Array.unsafe_get r_size u
  in
  (* Lazy min-heap over (key, last, unit): entries are pushed at insert
     time and never updated on a hit, so an entry can go stale — but
     every policy metric only grows with further use, so a stale entry
     under-states its unit's current key. Popping therefore re-keys a
     stale root in place and retries; the first root whose stored key
     matches the live key is the true minimum over current keys. Each
     hit creates at most one stale entry, so the amortized cost is
     O(log resident) per reference instead of the old O(resident)
     scan per eviction. *)
  let sift_up i0 k l u =
    let i = ref i0 in
    let stop = ref false in
    while (not !stop) && !i > 0 do
      let p = (!i - 1) / 2 in
      let pk = Array.unsafe_get hp_key p in
      if pk > k || (pk = k && Array.unsafe_get hp_last p > l) then begin
        hp_key.(!i) <- pk;
        hp_last.(!i) <- Array.unsafe_get hp_last p;
        hp_unit.(!i) <- Array.unsafe_get hp_unit p;
        i := p
      end
      else stop := true
    done;
    hp_key.(!i) <- k;
    hp_last.(!i) <- l;
    hp_unit.(!i) <- u
  in
  (* Place (k, l, u) starting at the root and restore heap order. *)
  let sift_down k l u =
    let n = st.hp_n in
    let i = ref 0 in
    let stop = ref false in
    while not !stop do
      let c1 = (2 * !i) + 1 in
      if c1 >= n then stop := true
      else begin
        let c2 = c1 + 1 in
        let c =
          if
            c2 < n
            && (hp_key.(c2) < hp_key.(c1)
               || (hp_key.(c2) = hp_key.(c1) && hp_last.(c2) < hp_last.(c1)))
          then c2
          else c1
        in
        let ck = Array.unsafe_get hp_key c in
        if ck < k || (ck = k && Array.unsafe_get hp_last c < l) then begin
          hp_key.(!i) <- ck;
          hp_last.(!i) <- Array.unsafe_get hp_last c;
          hp_unit.(!i) <- Array.unsafe_get hp_unit c;
          i := c
        end
        else stop := true
      end
    done;
    hp_key.(!i) <- k;
    hp_last.(!i) <- l;
    hp_unit.(!i) <- u
  in
  let push k l u =
    let n = st.hp_n in
    st.hp_n <- n + 1;
    sift_up n k l u
  in
  let rec victim () =
    let u = hp_unit.(0) in
    let ck = key_of u in
    let cl = Array.unsafe_get r_last u in
    if hp_key.(0) = ck && hp_last.(0) = cl then begin
      let n = st.hp_n - 1 in
      st.hp_n <- n;
      if n > 0 then sift_down hp_key.(n) hp_last.(n) hp_unit.(n);
      u
    end
    else begin
      sift_down ck cl u;
      victim ()
    end
  in
  (* Run semantics are exact: within a same-unit run only the first
     access can miss (the unit is resident afterwards), so a hit run
     adds [len] uses and moves recency to the run's last access, and a
     miss run is one miss plus [len - 1] immediate hits — except for a
     unit larger than the whole budget, where every access of the run
     misses, exactly as the per-access loop would count. *)
  iter (fun u bytes len ->
      refs := !refs + len;
      clock := !clock + len;
      if resident.(u) then begin
        r_last.(u) <- !clock;
        r_uses.(u) <- r_uses.(u) + len
      end
      else begin
        if not seen.(u) then begin
          seen.(u) <- true;
          st.st_touched.(st.st_ntouched) <- u;
          st.st_ntouched <- st.st_ntouched + 1;
          incr cold
        end;
        if bytes <= budget then begin
          incr misses;
          while !occupancy + bytes > budget do
            let k = victim () in
            resident.(k) <- false;
            occupancy := !occupancy - r_size.(k);
            incr evictions
          done;
          resident.(u) <- true;
          r_size.(u) <- bytes;
          r_last.(u) <- !clock;
          r_uses.(u) <- len;
          occupancy := !occupancy + bytes;
          loaded := !loaded + bytes;
          push (key_of u) !clock u
        end
        else misses := !misses + len
      end);
  {
    s_refs = !refs;
    s_misses = !misses;
    s_cold_misses = !cold;
    s_evictions = !evictions;
    s_bytes_loaded = !loaded;
    s_miss_rate =
      (if !refs = 0 then 0.0 else float_of_int !misses /. float_of_int !refs);
  }

let simulate l m =
  let block = sim_block l m in
  sim_core
    (make_state (sim_units l ~block))
    ~budget:m.m_budget ~policy:m.m_policy (iter_runs l ~block)

(* Pre-bucketed run stream for a batch: [iter_runs] is walked once per
   effective block size and the resulting (unit, bytes, len) triples
   are materialized with adjacent same-unit runs merged. Merging is
   exact under the run semantics above: a resident unit re-hit simply
   extends the run (same uses, same final recency), and a non-fitting
   unit misses once per access whether the accesses arrive as one run
   or several. *)
type prepared = {
  pp_units : int array;
  pp_bytes : int array;
  pp_lens : int array;
  pp_runs : int;
}

let prepare l ~block =
  let units = vec_create () in
  let bytes = vec_create () in
  let lens = vec_create () in
  let last = ref min_int in
  iter_runs l ~block (fun u b len ->
      if u = !last then lens.a.(lens.n - 1) <- lens.a.(lens.n - 1) + len
      else begin
        last := u;
        vec_push units u;
        vec_push bytes b;
        vec_push lens len
      end);
  {
    pp_units = vec_contents units;
    pp_bytes = vec_contents bytes;
    pp_lens = vec_contents lens;
    pp_runs = units.n;
  }

let iter_prepared p f =
  for i = 0 to p.pp_runs - 1 do
    f
      (Array.unsafe_get p.pp_units i)
      (Array.unsafe_get p.pp_bytes i)
      (Array.unsafe_get p.pp_lens i)
  done

(* --- Single-pass all-budget LRU simulation ------------------------------ *)

(* Exact LRU results for every budget in [budgets] (sorted ascending,
   distinct) from O(groups) passes over the run stream instead of one
   pass per budget.

   LRU with evict-until-fit keeps the resident set equal to the
   maximal byte-fitting prefix of the recency stack *restricted to
   eligible units* (those with bytes <= budget): a hit preserves the
   prefix (the unit moves to the top), and a miss-insert evicts from
   the prefix's bottom until the new top fits, with maximality
   witnessed by the last victim. So an eligible re-access hits at
   budget B iff its byte-weighted stack distance d — bytes of eligible
   units at or above it on the stack, self included — satisfies
   d <= B, which is Mattson's inclusion property, byte-weighted.

   The wrinkle is eligibility: [sim_core] bypasses a unit larger than
   the whole budget, so the *filtered* stack differs between budgets
   separated by some unit size, and a single stack does not serve all
   budgets. Budgets are therefore partitioned into eligibility groups
   — split at every distinct unit size inside (min budget, max budget]
   — and each group gets one stack pass over its shared filtered
   stream. On real grids the distinct sizes are few (one per block
   size for line traces, per-function sizes for SwapRAM), so hundreds
   of budgets collapse to a handful of passes.

   Within a pass, per-budget tallies use difference arrays over the
   sorted budget index: a re-access at distance d misses exactly at
   budgets < d (a binary-searched index range), a first touch misses
   for the whole group, and a bypassed run misses [len] times for the
   whole group. Evictions come from conservation — every eligible miss
   inserts one unit, so evictions(B) = eligible misses(B) minus the
   units resident at the end, and the end-resident count per budget is
   one MRU-to-LRU cumulative walk with an ascending-budget pointer.
   Cold misses are budget-independent ([sim_core] counts first touches
   before the fit check).

   Exactness relies on a unit's [bytes] being constant across the
   stream, which [iter_runs] guarantees for both granularities. *)
let lru_all_budgets ~units ~budgets ~nruns iter =
  let nb = Array.length budgets in
  if nb = 0 then [||]
  else begin
    (* Pre-pass: global tallies (refs; distinct units = cold misses at
       every budget) and the distinct unit sizes that cut the budget
       axis into eligibility groups. *)
    let seen = Array.make (max units 1) false in
    let refs_total = ref 0 in
    let cold_total = ref 0 in
    let sizes_tbl = Hashtbl.create 16 in
    iter (fun u bytes len ->
        refs_total := !refs_total + len;
        if not (Array.unsafe_get seen u) then begin
          seen.(u) <- true;
          incr cold_total
        end;
        if not (Hashtbl.mem sizes_tbl bytes) then
          Hashtbl.replace sizes_tbl bytes ());
    let sizes =
      List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) sizes_tbl [])
    in
    (* Inclusive budget-index ranges sharing one eligible-unit set. *)
    let groups =
      let gs = ref [] in
      let lo = ref 0 in
      let rest = ref sizes in
      let drop_le b =
        while (match !rest with s :: _ -> s <= b | [] -> false) do
          rest := List.tl !rest
        done
      in
      drop_le budgets.(0);
      for i = 1 to nb - 1 do
        let before = !rest in
        drop_le budgets.(i);
        if !rest != before then begin
          gs := (!lo, i - 1) :: !gs;
          lo := i
        end
      done;
      List.rev ((!lo, nb - 1) :: !gs)
    in
    let elig_d = Array.make (nb + 1) 0 in
    let bypass_d = Array.make (nb + 1) 0 in
    let bytes_d = Array.make (nb + 1) 0 in
    let resident_cnt = Array.make nb 0 in
    let fen = Observe.Fenwick.create (nruns + 1) in
    let slot_of = Array.make (max units 1) (-1) in
    let slot_unit = Array.make (nruns + 2) (-1) in
    let slot_size = Array.make (nruns + 2) 0 in
    List.iter
      (fun (lo, hi) ->
        (* The group's eligibility threshold: every budget in the
           group admits exactly the units with bytes <= t. *)
        let t = budgets.(lo) in
        Observe.Fenwick.clear fen;
        Array.fill slot_of 0 (Array.length slot_of) (-1);
        let next = ref 1 in
        (* First budget index in [lo..hi] with budget >= d (hi + 1 when
           none): the miss range for a re-access at distance d. *)
        let cut d =
          if budgets.(hi) < d then hi + 1
          else begin
            let a = ref lo and b = ref hi in
            while !a < !b do
              let m = (!a + !b) / 2 in
              if budgets.(m) >= d then b := m else a := m + 1
            done;
            !a
          end
        in
        iter (fun u bytes len ->
            if bytes > t then begin
              bypass_d.(lo) <- bypass_d.(lo) + len;
              bypass_d.(hi + 1) <- bypass_d.(hi + 1) - len
            end
            else begin
              let p = Array.unsafe_get slot_of u in
              let miss_hi =
                if p < 0 then hi + 1
                else begin
                  let d = Observe.Fenwick.suffix fen p in
                  Observe.Fenwick.add fen p (-slot_size.(p));
                  cut d
                end
              in
              if miss_hi > lo then begin
                elig_d.(lo) <- elig_d.(lo) + 1;
                elig_d.(miss_hi) <- elig_d.(miss_hi) - 1;
                bytes_d.(lo) <- bytes_d.(lo) + bytes;
                bytes_d.(miss_hi) <- bytes_d.(miss_hi) - bytes
              end;
              let s = !next in
              incr next;
              Observe.Fenwick.add fen s bytes;
              slot_of.(u) <- s;
              slot_unit.(s) <- u;
              slot_size.(s) <- bytes
            end);
        (* End-of-trace residents: walking the stack MRU-to-LRU while
           advancing an ascending budget pointer finalizes each budget
           the moment the next unit no longer fits. *)
        let j = ref lo in
        let cum = ref 0 in
        let cnt = ref 0 in
        let s = ref (!next - 1) in
        while !s >= 1 && !j <= hi do
          let u = slot_unit.(!s) in
          if slot_of.(u) = !s then begin
            let sz = slot_size.(!s) in
            while !j <= hi && budgets.(!j) < !cum + sz do
              resident_cnt.(!j) <- !cnt;
              incr j
            done;
            cum := !cum + sz;
            incr cnt
          end;
          decr s
        done;
        while !j <= hi do
          resident_cnt.(!j) <- !cnt;
          incr j
        done)
      groups;
    let sims = Array.make nb empty_sim in
    let elig = ref 0 in
    let byp = ref 0 in
    let byt = ref 0 in
    for i = 0 to nb - 1 do
      elig := !elig + elig_d.(i);
      byp := !byp + bypass_d.(i);
      byt := !byt + bytes_d.(i);
      let misses = !elig + !byp in
      sims.(i) <-
        {
          s_refs = !refs_total;
          s_misses = misses;
          s_cold_misses = !cold_total;
          s_evictions = !elig - resident_cnt.(i);
          s_bytes_loaded = !byt;
          s_miss_rate =
            (if !refs_total = 0 then 0.0
             else float_of_int misses /. float_of_int !refs_total);
        }
    done;
    sims
  end

(* Run the kernel on budgets in arbitrary order (with duplicates):
   sort-unique for the kernel, then map each requested budget back to
   its slot. *)
let all_budgets_unsorted ~units ~nruns iter budgets =
  let sorted = Array.of_list (List.sort_uniq compare budgets) in
  let sims = lru_all_budgets ~units ~budgets:sorted ~nruns iter in
  let idx = Hashtbl.create (Array.length sorted) in
  Array.iteri (fun i b -> Hashtbl.replace idx b i) sorted;
  List.map (fun b -> sims.(Hashtbl.find idx b)) budgets

let simulate_all_budgets ?block l budgets =
  match budgets with
  | [] -> []
  | _ ->
      let block = effective_block l block in
      let p = prepare l ~block in
      all_budgets_unsorted ~units:(sim_units l ~block) ~nruns:p.pp_runs
        (fun f -> iter_prepared p f)
        budgets

(* Test hooks: the same kernels over a synthetic (unit, bytes, len)
   run array, so properties can compare them without recording a
   trace. *)
let iter_run_array runs f = Array.iter (fun (u, b, len) -> f u b len) runs

let simulate_runs ~units ~budget ~policy runs =
  sim_core (make_state units) ~budget ~policy (iter_run_array runs)

let simulate_runs_all_budgets ~units ~budgets runs =
  match budgets with
  | [] -> []
  | _ ->
      all_budgets_unsorted ~units ~nruns:(Array.length runs)
        (iter_run_array runs) budgets

(* Totals of the prepared stream: reference count, distinct units and
   their summed bytes (the code footprint at this block size). A
   budget >= footprint never evicts under any policy — every eligible
   unit fits forever — so each distinct unit misses exactly once and
   the whole sim has a closed form. On real grids the SRAM ladder
   extends well past small benchmarks' footprints, so this collapses
   the upper budget range of the LFU/Cost axes that the LRU stack
   kernel cannot absorb. *)
let prepared_totals ~units p =
  let seen = Array.make (max units 1) false in
  let refs = ref 0 in
  let distinct = ref 0 in
  let footprint = ref 0 in
  iter_prepared p (fun u bytes len ->
      refs := !refs + len;
      if not (Array.unsafe_get seen u) then begin
        seen.(u) <- true;
        incr distinct;
        footprint := !footprint + bytes
      end);
  (!refs, !distinct, !footprint)

let simulate_many_collapsed l models =
  match models with
  | [] -> ([], 0)
  | [ m ] -> ([ simulate l m ], 0)
  | _ ->
      (* Group models by effective block size: each group shares one
         pre-bucketed run stream, and within a group the LRU budget
         axis collapses into the all-budget stack kernel — one pass
         per eligibility class instead of one per budget. LFU and
         Cost_aware (and a lone LRU model, where the kernel's pre-pass
         would only add overhead) run the shared-state [sim_core]
         path. Results land at their input index, so group iteration
         order never shows. *)
      let arr = Array.of_list models in
      let nm = Array.length arr in
      let out = Array.make nm empty_sim in
      let groups = Hashtbl.create 4 in
      for i = nm - 1 downto 0 do
        let block = sim_block l arr.(i) in
        let cur = try Hashtbl.find groups block with Not_found -> [] in
        Hashtbl.replace groups block (i :: cur)
      done;
      let collapsed = ref 0 in
      Hashtbl.iter
        (fun block idxs ->
          let p = prepare l ~block in
          let units = sim_units l ~block in
          let lru, rest =
            List.partition (fun i -> arr.(i).m_policy = Lru) idxs
          in
          let scalar =
            match lru with
            | [] | [ _ ] -> idxs
            | _ ->
                let budgets = List.map (fun i -> arr.(i).m_budget) lru in
                let sims =
                  all_budgets_unsorted ~units ~nruns:p.pp_runs
                    (fun f -> iter_prepared p f)
                    budgets
                in
                List.iter2 (fun i sim -> out.(i) <- sim) lru sims;
                collapsed := !collapsed + List.length lru;
                rest
          in
          match scalar with
          | [] -> ()
          | [ i ] ->
              out.(i) <-
                sim_core (make_state units) ~budget:arr.(i).m_budget
                  ~policy:arr.(i).m_policy (iter_prepared p)
          | _ ->
              (* Budgets at or above the stream footprint never evict,
                 so their sims are policy-independent and closed-form:
                 each distinct unit misses exactly once. One totals
                 pass dedupes the whole beyond-footprint tail of the
                 LFU / Cost_aware budget axes. *)
              let refs_total, distinct, fp = prepared_totals ~units p in
              let beyond =
                {
                  s_refs = refs_total;
                  s_misses = distinct;
                  s_cold_misses = distinct;
                  s_evictions = 0;
                  s_bytes_loaded = fp;
                  s_miss_rate =
                    (if refs_total = 0 then 0.0
                     else float_of_int distinct /. float_of_int refs_total);
                }
              in
              let st = ref None in
              List.iter
                (fun i ->
                  if arr.(i).m_budget >= fp then out.(i) <- beyond
                  else begin
                    let st =
                      match !st with
                      | Some s ->
                          reset_state s;
                          s
                      | None ->
                          let s = make_state units in
                          st := Some s;
                          s
                    in
                    out.(i) <-
                      sim_core st ~budget:arr.(i).m_budget
                        ~policy:arr.(i).m_policy (iter_prepared p)
                  end)
                scalar)
        groups;
      (Array.to_list out, !collapsed)

let simulate_many l models = fst (simulate_many_collapsed l models)

(* --- MRC --------------------------------------------------------------- *)

let mrc l =
  let r = Observe.Reuse.create () in
  (match l.refs with
  | Fn_refs a ->
      Array.iter
        (fun x ->
          let u = x lsr 1 in
          Observe.Reuse.access r ~unit_id:u ~bytes:(max 0 (unit_bytes l u));
          if x land 1 = 1 then Observe.Reuse.note_measured_miss r)
        a
  | Line_refs a ->
      (* The reuse tracker must see every access (repeat accesses are
         distance-zero hits that shape the curve), so expand the runs. *)
      let n = line_bytes l in
      let len = Array.length a in
      let i = ref 0 in
      while !i < len do
        let unit_id = a.(!i) in
        for _ = 1 to a.(!i + 1) do
          Observe.Reuse.access r ~unit_id ~bytes:n
        done;
        i := !i + 2
      done;
      for _ = 1 to l.runtime.rc_block_loads do
        Observe.Reuse.note_measured_miss r
      done);
  r

(* --- Full metrics replay ----------------------------------------------- *)

let replay_metrics ?(window = 65536) ?(buckets = 48) path =
  let bad_frequency = ref None in
  let result =
    Trace_file.fold path
      ~init:(fun (h : Trace_file.header) ->
        let reuse, sizes =
          match h.Trace_file.granularity with
          | Trace_file.Functions sizes -> (Observe.Metrics.Functions, sizes)
          | Trace_file.Lines n -> (Observe.Metrics.Lines n, [||])
        in
        let params =
          match h.Trace_file.frequency_mhz with
          | 8 -> Energy.point_8mhz
          | 24 -> Energy.point_24mhz
          | m ->
              bad_frequency := Some m;
              Energy.point_24mhz
        in
        let cur_unit = ref None in
        let cur_home = ref 0 in
        let hooks =
          {
            Observe.Metrics.h_fid_size =
              (fun fid ->
                if fid >= 0 && fid < Array.length sizes then sizes.(fid) else 0);
            h_call_unit = (fun _ -> !cur_unit);
            h_ifetch_home = (fun _ -> !cur_home);
          }
        in
        let metrics =
          Observe.Metrics.create
            {
              Observe.Metrics.window_cycles = window;
              buckets;
              reuse;
              config_budget = h.Trace_file.budget;
            }
            ~params
            ~fram:(Platform.fram_base, Platform.fram_base + Platform.fram_size)
            ~sram:(Platform.sram_base, Platform.sram_base + Platform.sram_size)
            hooks
        in
        (metrics, cur_unit, cur_home))
      ~f:(fun ((metrics, cur_unit, cur_home) as acc) d ->
        cur_unit := d.Trace_file.d_unit;
        cur_home := d.Trace_file.d_home;
        Observe.Metrics.observer metrics d.Trace_file.d_ev;
        acc)
  in
  match result with
  | Error e -> Error (Format_error e)
  | Ok ((metrics, _, _), header, _) -> (
      match !bad_frequency with
      | Some m ->
          Error
            (Model_error
               (Printf.sprintf "unsupported recorded frequency %d MHz" m))
      | None -> Ok (metrics, header))
