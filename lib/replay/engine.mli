(** Replay kernel: stream a recorded trace through pluggable
    memory-system models without re-executing the CPU.

    {!load} makes one decoding pass over the file and reduces it to
    sufficient statistics — access-class counts, the per-instruction
    FRAM contention count, runtime-event counters and the ordered
    cache-unit reference stream. Everything downstream is then
    arithmetic over those statistics: {!exact} retargets wait states
    and frequency in O(1), {!simulate} runs a fully-associative cache
    model over the reference stream (microseconds per configuration),
    and {!mrc} rebuilds the exact Mattson miss-ratio curve. That
    load-once / simulate-many split is what turns one multi-second
    simulation into thousands of configuration evaluations.

    Exactness: at the recording configuration, {!exact} reproduces
    the executor's cycles, energy and every counter bit-for-bit
    (enforced — {!load} fails on a trace whose recorded stall total
    cannot be reconstructed), and {!replay_metrics} reproduces the
    executed {!Observe.Metrics} windows and MRC byte-for-byte. *)

type error = Format_error of Trace_file.error | Model_error of string

val error_message : error -> string

(** Counters reconstructed from a swapram-recorded trace, matching
    [Swapram.Runtime.stats], or from a block-cache trace, matching
    [Blockcache.Runtime.stats]. Fields not emitted as events
    (word-copy counts, hash probes) are not reconstructable and are
    not included. *)
type runtime_counts = {
  rc_misses : int;
  rc_evictions : int;
  rc_aborts : int;  (** swapram "nvm" dispositions *)
  rc_frozen : int;
  rc_too_large : int;
  rc_prefetches : int;
  rc_returns : int;  (** block cache return-trap entries *)
  rc_flushes : int;
  rc_block_loads : int;
}

type loaded = {
  header : Trace_file.header;
  path : string;
  events : int;
  bytes : int;  (** file size on disk *)
  (* execution statistics, mirroring Msp430.Trace.t *)
  instructions : int;
  by_source : int array;
  unstalled : int;
  recorded_stall : int;
  fram_ifetch : int;
  fram_data_reads : int;
  fram_read_hits : int;
  fram_writes : int;
  sram_ifetch : int;
  sram_data_reads : int;
  sram_writes : int;
  periph_accesses : int;
  calls : int;
  returns : int;
  contention_events : int;
      (** 2nd-and-later FRAM accesses within one instruction; each
          cost one contention-penalty stall at any frequency *)
  runtime : runtime_counts;
  refs : refs;
  units : int;
      (** one past the highest unit id in [refs] (at the recorded
          granularity) — the direct-index bound for per-unit state *)
}

(** The ordered cache-unit reference stream. [Fn_refs] (SwapRAM
    recordings): one entry per call, [(fid lsl 1) lor miss], where
    [miss] marks calls that trapped to the miss handler. [Line_refs]
    (block-cache / baseline recordings): instruction-fetch homes
    bucketed to recorded-granularity line indices and run-length
    encoded as [line; length] pairs — consecutive fetches from one
    line collapse into a run, which is exact for every supported
    eviction policy (a repeat access can neither miss nor change the
    victim order) and keeps per-model simulation proportional to line
    transitions, not fetches. *)
and refs = Fn_refs of int array | Line_refs of int array

val load : string -> (loaded, error) result
(** One full decoding pass; validates internal consistency (the
    recorded stall total must be reconstructable from the recorded
    wait states and contention events). *)

val load_cached : string -> (loaded, error) result
(** [load], backed by a process-local cache so repeated evaluations of
    one trace decode it once per process. A cached entry is served
    only while the file's size, mtime {e and} header fingerprint all
    match the load-time values, so rewriting a trace in place under a
    different recording configuration always forces a fresh decode.
    Forked workers inherit the parent's cache at fork time, which is
    what lets a sweep parent pre-decode a trace once for every
    worker. *)

val clear_load_cache : unit -> unit
(** Drop every cached {!load_cached} entry (tests; memory pressure). *)

val unit_bytes : loaded -> int -> int
(** Size in bytes of cache unit [u] under the recording granularity. *)

val footprint : loaded -> int
(** Total bytes across distinct referenced units. *)

(** {2 Exact replay (wait-state / frequency retargeting)} *)

type totals = {
  t_frequency_mhz : int;
  t_wait_states : int;
  t_unstalled : int;
  t_stall : int;
  t_cycles : int;
  t_fram_read_misses : int;
  t_energy_nj : float;
  t_time_s : float;
}

val exact : ?frequency_mhz:int -> loaded -> (totals, string) result
(** Recompute cycles, energy and time at [frequency_mhz] (8 or 24;
    default the recording frequency). The instruction stream, access
    stream and hardware read-cache behaviour are frequency-independent
    on this platform, so the retargeted totals equal a fresh execution
    at that frequency — the differential tests assert this
    bit-for-bit. *)

(** {2 Cache-model simulation} *)

type policy = Lru | Lfu | Cost_aware

val policy_name : policy -> string
val policy_of_string : string -> policy option

type model = {
  m_budget : int;  (** capacity in bytes *)
  m_policy : policy;
  m_block : int option;
      (** re-bucket [Line_refs] to this line size (default: the
          recorded granularity), honoured at the nearest multiple of
          the recorded granularity — refs cannot be split below the
          line size they were bucketed at; ignored for [Fn_refs] *)
}

type sim = {
  s_refs : int;
  s_misses : int;
  s_cold_misses : int;
  s_evictions : int;
  s_bytes_loaded : int;
  s_miss_rate : float;
}

val simulate : loaded -> model -> sim
(** Fully-associative byte-capacity cache over the reference stream.
    Units larger than the budget never cache (they re-miss on every
    reference, as SwapRAM's too-large path runs from NVM). [Lru]
    evicts least-recently-used; [Lfu] least-frequently-used (LRU
    tie-break); [Cost_aware] the unit with the smallest
    reference-count x size product — the cheapest expected re-copy
    (LRU tie-break). [Lru] at budget B produces exactly
    [Observe.Reuse.predicted_misses ~budget:B] over the same stream
    (both are stack algorithms; property-tested). *)

val simulate_many : loaded -> model list -> sim list
(** Batched {!simulate}: results are returned in input order and are
    exactly [List.map (simulate l) models] (property-tested). Models
    are grouped by effective block size; each group shares one
    pre-bucketed reference stream and one set of residency arrays, and
    the [Lru] models of a group collapse further into
    {!simulate_all_budgets}'s single-pass stack kernel — this is the
    kernel the design-space explorer fans out over. *)

val simulate_many_collapsed : loaded -> model list -> sim list * int
(** {!simulate_many} plus the number of models whose budget axis was
    collapsed into a stack-distance pass (0 when every model took an
    individual cache pass) — the [sims_collapsed] accounting surfaced
    by the DSE report. *)

val simulate_all_budgets : ?block:int -> loaded -> int list -> sim list
(** Exact [Lru] results for every budget at once:
    [simulate_all_budgets ?block l budgets] equals
    [List.map (fun b -> simulate l {m_budget = b; m_policy = Lru;
    m_block = block}) budgets] (property-tested), but runs one
    byte-weighted stack-distance pass per {e eligibility class} of the
    budget list instead of one cache pass per budget. LRU's inclusion
    property survives evict-until-fit with variable-size units (the
    resident set is always a maximal byte-fitting recency-stack
    prefix), so a reference's stack distance d decides hit-or-miss for
    every budget simultaneously: miss iff d > B. Too-large-unit bypass
    is the one budget-dependent filter, so budgets are grouped at the
    distinct unit sizes falling inside the budget range — typically
    one class for line traces and a handful for function traces. *)

val simulate_runs :
  units:int -> budget:int -> policy:policy -> (int * int * int) array -> sim
(** Run the cache-model pass over a synthetic run stream of
    [(unit, bytes, len)] triples with unit ids in [0, units). A unit's
    [bytes] must be the same in every run mentioning it (as recorded
    streams guarantee). Test hook: lets differential properties drive
    {!simulate}'s kernel on arbitrary streams without recording a
    trace. *)

val simulate_runs_all_budgets :
  units:int -> budgets:int list -> (int * int * int) array -> sim list
(** {!simulate_all_budgets}'s kernel over a synthetic run stream;
    equals [List.map (fun b -> simulate_runs ~units ~budget:b
    ~policy:Lru runs) budgets] (property-tested). Same per-unit
    constant-[bytes] requirement as {!simulate_runs}. *)

val mrc : loaded -> Observe.Reuse.t
(** Rebuild the exact byte-LRU reuse tracker from the reference
    stream — identical (same predicted curve, same measured-miss
    cross-check) to the tracker an observed execution accumulates. *)

(** {2 Full metrics replay} *)

val replay_metrics :
  ?window:int -> ?buckets:int -> string -> (Observe.Metrics.t * Trace_file.header, error) result
(** Stream the whole file through a fresh {!Observe.Metrics} sampler,
    answering its runtime hooks from the recorded enrichments. With
    the executed run's window/bucket spec (defaults: 65536-cycle
    windows, 48 buckets) the replayed CSV / series / MRC renderings
    are byte-identical to the executed ones. *)
