(* Simulated memory system: 64 KiB address space with an SRAM region, an
   FRAM region behind the hardware read cache and wait-state model, and
   a few peripherals. Every CPU-issued access is counted into a
   {!Trace.t}; wait states accrue as stall cycles.

   Timing model (documented in DESIGN.md):
   - an FRAM read that misses the read cache costs [wait_states] stall
     cycles (3 at 24 MHz on the FR2355, 0 at/below 8 MHz);
   - FRAM writes always pay [wait_states] (the cache is read-only);
   - the second and subsequent FRAM accesses issued by a single
     instruction cost one extra stall cycle each, independent of clock
     frequency — modelling the access-contention bottleneck at the
     FRAM controller that makes unified-memory execution slow even at
     8 MHz (paper §2.2, Fig. 1). *)

type region = Sram | Fram | Peripheral | Unmapped

exception Fault of string

let fault fmt = Format.kasprintf (fun s -> raise (Fault s)) fmt

(* Power failure, for the fault-injection subsystem: an armed trigger
   cuts the supply on a chosen counted access, which raises
   {!Power_loss} *before* that access takes effect. Because every
   modeled instruction — application fetches and the runtimes'
   charged handler/memcpy instructions alike — flows through counted
   accesses, triggers can land inside the miss handler, in the middle
   of a memcpy, or between the two halves of a metadata update,
   leaving FRAM state torn exactly as a real outage would. *)

exception Power_loss

type power_trigger =
  | After_accesses of int
      (* die on the n-th counted access from arming time *)
  | On_region_access of { lo : int; hi : int; skip : int }
      (* die on the skip-th counted access with lo <= addr < hi *)

type armed = { mutable countdown : int; window : (int * int) option }

type map = {
  sram_lo : int;
  sram_hi : int; (* inclusive *)
  fram_lo : int;
  fram_hi : int;
}

let uart_tx_addr = 0x0100
let gpio_out_addr = 0x0102
let halt_addr = 0x0104
let fault_addr = 0x0106

let region_of map addr =
  if addr >= map.sram_lo && addr <= map.sram_hi then Sram
  else if addr >= map.fram_lo && addr <= map.fram_hi then Fram
  else if addr >= 0x0100 && addr <= 0x01FF then Peripheral
  else Unmapped

type purpose = Ifetch | Data

type t = {
  map : map;
  bytes : Bytes.t;
  cache : Hwcache.t;
  wait_states : int;
  contention_penalty : int;
  stats : Trace.t;
  mutable fram_accesses_this_instr : int;
  mutable halt_requested : bool;
  uart : Buffer.t;
  mutable gpio : int;
  mutable access_ticks : int; (* total counted accesses, the power clock *)
  mutable power : armed option;
}

let create ?(wait_states = 3) ?(contention_penalty = 1) ~map ~stats () =
  {
    map;
    bytes = Bytes.make 0x10000 '\000';
    cache = Hwcache.create ();
    wait_states;
    contention_penalty;
    stats;
    fram_accesses_this_instr = 0;
    halt_requested = false;
    uart = Buffer.create 256;
    gpio = 0;
    access_ticks = 0;
    power = None;
  }

let stats t = t.stats
let map t = t.map
let halt_requested t = t.halt_requested
let uart_output t = Buffer.contents t.uart
let begin_instruction t = t.fram_accesses_this_instr <- 0
let access_ticks t = t.access_ticks

let arm_power_trigger t trigger =
  t.power <-
    (match trigger with
    | None -> None
    | Some (After_accesses n) -> Some { countdown = max 1 n; window = None }
    | Some (On_region_access { lo; hi; skip }) ->
        Some { countdown = max 1 skip; window = Some (lo, hi) })

let power_armed t = t.power <> None

(* Advance the power clock for a counted access to [addr]; raises
   {!Power_loss} when an armed trigger fires. Called before the access
   takes effect, so the dying access never completes. *)
let power_tick t addr =
  t.access_ticks <- t.access_ticks + 1;
  match t.power with
  | None -> ()
  | Some a ->
      let in_window =
        match a.window with None -> true | Some (lo, hi) -> addr >= lo && addr < hi
      in
      if in_window then begin
        a.countdown <- a.countdown - 1;
        if a.countdown <= 0 then begin
          t.power <- None;
          raise Power_loss
        end
      end

(* The survivable consequences of an outage, beyond the SRAM loss the
   caller inflicts: the pending halt is moot, the FRAM read cache and
   per-instruction contention state are volatile. Any armed trigger
   stays armed — the next life's boot sequence can be torn too. *)
let power_fail t =
  t.halt_requested <- false;
  t.fram_accesses_this_instr <- 0;
  Hwcache.flush t.cache

(* Uncounted accessors for loading images and inspecting results. *)
let peek_byte t addr = Char.code (Bytes.get t.bytes (addr land 0xFFFF))
let poke_byte t addr v = Bytes.set t.bytes (addr land 0xFFFF) (Char.chr (v land 0xFF))

let peek_word t addr =
  Word.make_word ~high:(peek_byte t (addr + 1)) ~low:(peek_byte t addr)

let poke_word t addr v =
  poke_byte t addr (Word.low_byte v);
  poke_byte t (addr + 1) (Word.high_byte v)

let load_image t ~addr bytes =
  Bytes.blit bytes 0 t.bytes addr (Bytes.length bytes)

let charge_fram_timing t ~is_read_hit =
  t.fram_accesses_this_instr <- t.fram_accesses_this_instr + 1;
  let waits = if is_read_hit then 0 else t.wait_states in
  let contention =
    if t.fram_accesses_this_instr > 1 then t.contention_penalty else 0
  in
  Trace.add_stall t.stats (waits + contention)

let check_alignment addr width =
  if width = 2 && addr land 1 <> 0 then fault "unaligned word access at 0x%04X" addr

let periph_read t addr =
  ignore t;
  ignore addr;
  0

let periph_write t addr v =
  if addr land 0xFFFE = uart_tx_addr then Buffer.add_char t.uart (Char.chr (v land 0xFF))
  else if addr land 0xFFFE = gpio_out_addr then t.gpio <- v
  else if addr land 0xFFFE = halt_addr then t.halt_requested <- true
  else if addr land 0xFFFE = fault_addr then fault "software fault, code 0x%04X" v

(* Counted read of [width] (1 or 2) bytes. Word access is aligned
   (checked), so the two bytes are contiguous and little-endian — a
   direct 16-bit load, with no wraparound to worry about. *)
let read t ~purpose ~width addr =
  let addr = addr land 0xFFFF in
  power_tick t addr;
  check_alignment addr width;
  let value =
    if width = 2 then Bytes.get_uint16_le t.bytes addr
    else Char.code (Bytes.unsafe_get t.bytes addr)
  in
  (match region_of t.map addr with
  | Sram ->
      (match purpose with
      | Ifetch -> t.stats.Trace.sram_ifetch <- t.stats.Trace.sram_ifetch + 1
      | Data -> t.stats.Trace.sram_data_reads <- t.stats.Trace.sram_data_reads + 1);
      if Trace.has_observer t.stats then
        Trace.emit t.stats
          (Trace.Mem_access
             { addr; cls = Trace.Sram_read { ifetch = purpose = Ifetch } })
  | Fram ->
      let hit = Hwcache.read t.cache addr in
      if hit then t.stats.Trace.fram_read_hits <- t.stats.Trace.fram_read_hits + 1;
      (match purpose with
      | Ifetch -> t.stats.Trace.fram_ifetch <- t.stats.Trace.fram_ifetch + 1
      | Data -> t.stats.Trace.fram_data_reads <- t.stats.Trace.fram_data_reads + 1);
      if Trace.has_observer t.stats then
        Trace.emit t.stats
          (Trace.Mem_access
             { addr; cls = Trace.Fram_read { hit; ifetch = purpose = Ifetch } });
      charge_fram_timing t ~is_read_hit:hit
  | Peripheral ->
      t.stats.Trace.periph_accesses <- t.stats.Trace.periph_accesses + 1;
      if Trace.has_observer t.stats then
        Trace.emit t.stats (Trace.Mem_access { addr; cls = Trace.Periph_access });
      ignore (periph_read t addr)
  | Unmapped -> fault "read from unmapped address 0x%04X" addr);
  value

let write t ~width addr value =
  let addr = addr land 0xFFFF in
  power_tick t addr;
  check_alignment addr width;
  (match region_of t.map addr with
  | Sram ->
      t.stats.Trace.sram_writes <- t.stats.Trace.sram_writes + 1;
      if Trace.has_observer t.stats then
        Trace.emit t.stats (Trace.Mem_access { addr; cls = Trace.Sram_write });
      if width = 2 then Bytes.set_uint16_le t.bytes addr (value land 0xFFFF)
      else poke_byte t addr value
  | Fram ->
      t.stats.Trace.fram_writes <- t.stats.Trace.fram_writes + 1;
      Hwcache.write t.cache addr;
      if width = 2 then Hwcache.write t.cache (addr + 1);
      if Trace.has_observer t.stats then
        Trace.emit t.stats (Trace.Mem_access { addr; cls = Trace.Fram_write });
      charge_fram_timing t ~is_read_hit:false;
      if width = 2 then Bytes.set_uint16_le t.bytes addr (value land 0xFFFF)
      else poke_byte t addr value
  | Peripheral ->
      t.stats.Trace.periph_accesses <- t.stats.Trace.periph_accesses + 1;
      if Trace.has_observer t.stats then
        Trace.emit t.stats (Trace.Mem_access { addr; cls = Trace.Periph_access });
      periph_write t addr value
  | Unmapped -> fault "write to unmapped address 0x%04X" addr)

let read_word t ~purpose addr = read t ~purpose ~width:2 addr
let read_byte t ~purpose addr = read t ~purpose ~width:1 addr
let write_word t addr v = write t ~width:2 addr v
let write_byte t addr v = write t ~width:1 addr v

(* Specialized counted instruction-word fetches for the superblock
   replay path. The caller guarantees: the address is even, its region
   was established at record time (so no dispatch is needed), and no
   observer is attached (so no event is due). Counters, stalls,
   read-cache state and the power clock advance bit-identically to
   [read ~purpose:Ifetch ~width:2], including the {!Power_loss} raise
   point before the access takes effect. *)
let fetch_word_sram t addr =
  power_tick t addr;
  t.stats.Trace.sram_ifetch <- t.stats.Trace.sram_ifetch + 1;
  Char.code (Bytes.unsafe_get t.bytes addr)
  lor (Char.code (Bytes.unsafe_get t.bytes (addr + 1)) lsl 8)

let fetch_word_fram t addr =
  power_tick t addr;
  let hit = Hwcache.read t.cache addr in
  if hit then t.stats.Trace.fram_read_hits <- t.stats.Trace.fram_read_hits + 1;
  t.stats.Trace.fram_ifetch <- t.stats.Trace.fram_ifetch + 1;
  let v =
    Char.code (Bytes.unsafe_get t.bytes addr)
    lor (Char.code (Bytes.unsafe_get t.bytes (addr + 1)) lsl 8)
  in
  charge_fram_timing t ~is_read_hit:hit;
  v
