(* Execution statistics: memory access accounting by region and purpose,
   wait-state/stall accounting, and the dynamic-instruction source
   breakdown used for the paper's Figure 8. *)

(* Where an executed instruction was fetched from. [Handler] covers the
   caching runtimes (SwapRAM miss handler / block-cache runtime) and
   [Memcpy] their code-copy loops, both of which execute from FRAM. *)
type source = App_fram | App_sram | Handler | Memcpy

let source_index = function
  | App_fram -> 0
  | App_sram -> 1
  | Handler -> 2
  | Memcpy -> 3

let source_count = 4

let source_name = function
  | App_fram -> "app-FRAM"
  | App_sram -> "app-SRAM"
  | Handler -> "handler"
  | Memcpy -> "memcpy"

(* Observability event stream (lib/observe): every counted quantity
   below is mirrored as an event through the optional observer, so an
   attached profiler can re-derive the aggregate totals exactly —
   per-function attribution is conservative by construction. The
   observer is a pure spectator: it runs after the counters have been
   updated and cannot influence timing, counting or machine state. *)

(* One counted memory access, classified the way the energy model
   prices it. *)
type access_class =
  | Fram_read of { hit : bool; ifetch : bool }
  | Fram_write
  | Sram_read of { ifetch : bool }
  | Sram_write
  | Periph_access

(* High-level events from the caching runtimes (miss-handler entry and
   exit, evictions, anti-thrashing freeze transitions, block-cache
   flushes and loads) and from the harness (phase markers such as
   boot/reboot). *)
type runtime_event =
  | Miss_enter of { runtime : string }
  | Miss_exit of { runtime : string; disposition : string; fid : int }
      (* fid identifies the missed function for runtimes with a
         function-granular cache (SwapRAM); -1 when the runtime has no
         function identity (block cache). Lets a windowed sampler
         track cache occupancy and reuse without peeking at runtime
         internals on the hot path. *)
  | Eviction of { fid : int }
  | Freeze of { on : bool }
  | Cache_flush
  | Block_load of { nvm : int }
  | Prefetch of { fid : int }
  | Phase of { name : string }

type event =
  | Instr of { pc : int; source : source }
      (* an instruction begins; [pc] is its fetch address — the
         attribution context for every following event until the next
         [Instr] *)
  | Cycles of { unstalled : int; stall : int }
  | Mem_access of { addr : int; cls : access_class }
  | Call of { target : int }
  | Return
  | Runtime_event of runtime_event

type t = {
  mutable unstalled_cycles : int;
  mutable stall_cycles : int;
  mutable instructions : int;
  instr_by_source : int array;
  (* FRAM accesses, split by purpose and hit/miss in the hardware read
     cache. Every CPU access to the FRAM region counts, as in the
     paper's modified mspdebug. *)
  mutable fram_ifetch : int;
  mutable fram_data_reads : int;
  mutable fram_writes : int;
  mutable fram_read_hits : int;
  mutable sram_ifetch : int;
  mutable sram_data_reads : int;
  mutable sram_writes : int;
  mutable periph_accesses : int;
  mutable observer : (event -> unit) option;
}

let create () =
  {
    unstalled_cycles = 0;
    stall_cycles = 0;
    instructions = 0;
    instr_by_source = Array.make source_count 0;
    fram_ifetch = 0;
    fram_data_reads = 0;
    fram_writes = 0;
    fram_read_hits = 0;
    sram_ifetch = 0;
    sram_data_reads = 0;
    sram_writes = 0;
    periph_accesses = 0;
    observer = None;
  }

let set_observer t f = t.observer <- f

(* Compose with whatever is already attached (the trace tap used by
   the replay recorder): the existing observer — typically the
   harness's profiler/metrics fan-out — runs first, then [f]. Within
   one emitted event no machine state changes between observers, so
   both see identical runtime-hook answers. *)
let add_observer t f =
  match t.observer with
  | None -> t.observer <- Some f
  | Some g ->
      t.observer <-
        Some
          (fun ev ->
            g ev;
            f ev)
(* Explicit match, not [<> None]: polymorphic inequality on a closure
   option is a C call, and this runs on every counted access. *)
let has_observer t = match t.observer with None -> false | Some _ -> true
let emit t ev = match t.observer with None -> () | Some f -> f ev

(* All cycle accrual funnels through these two so the observer sees
   every cycle exactly once, attributed to the current context. *)
let add_unstalled t n =
  t.unstalled_cycles <- t.unstalled_cycles + n;
  match t.observer with
  | Some f when n <> 0 -> f (Cycles { unstalled = n; stall = 0 })
  | _ -> ()

let add_stall t n =
  t.stall_cycles <- t.stall_cycles + n;
  match t.observer with
  | Some f when n <> 0 -> f (Cycles { unstalled = 0; stall = n })
  | _ -> ()

let count_instr t source =
  t.instructions <- t.instructions + 1;
  let i = source_index source in
  t.instr_by_source.(i) <- t.instr_by_source.(i) + 1

let fram_accesses t = t.fram_ifetch + t.fram_data_reads + t.fram_writes
let sram_accesses t = t.sram_ifetch + t.sram_data_reads + t.sram_writes
let total_cycles t = t.unstalled_cycles + t.stall_cycles
let code_accesses t = t.fram_ifetch + t.sram_ifetch
let data_accesses t = t.fram_data_reads + t.fram_writes + t.sram_data_reads + t.sram_writes

let instr_fraction t source =
  if t.instructions = 0 then 0.0
  else
    float_of_int t.instr_by_source.(source_index source)
    /. float_of_int t.instructions

let pp fmt t =
  Format.fprintf fmt
    "@[<v>cycles: %d unstalled + %d stalls = %d@,\
     instructions: %d (%s)@,\
     FRAM: %d ifetch, %d data reads (%d cache hits), %d writes@,\
     SRAM: %d ifetch, %d data reads, %d writes@]"
    t.unstalled_cycles t.stall_cycles (total_cycles t) t.instructions
    (String.concat ", "
       (List.map
          (fun s ->
            Printf.sprintf "%s %d" (source_name s)
              t.instr_by_source.(source_index s))
          [ App_fram; App_sram; Handler; Memcpy ]))
    t.fram_ifetch t.fram_data_reads t.fram_read_hits t.fram_writes t.sram_ifetch
    t.sram_data_reads t.sram_writes
