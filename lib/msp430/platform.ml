(* MSP430FR2355-like platform configuration: memory map, clock
   operating points, and system construction. *)

let sram_base = 0x2000
let sram_size = 4096
let fram_base = 0x4000
let fram_size = 32768

let fr2355_map =
  {
    Memory.sram_lo = sram_base;
    sram_hi = sram_base + sram_size - 1;
    fram_lo = fram_base;
    fram_hi = fram_base + fram_size - 1;
  }

type frequency = Mhz8 | Mhz24

let frequency_name = function Mhz8 -> "8 MHz" | Mhz24 -> "24 MHz"

(* FRAM runs at 8 MHz max; above that the controller inserts wait
   states on array accesses (SLASEC4: 3 cycles at 24 MHz). *)
let wait_states = function Mhz8 -> 0 | Mhz24 -> 3

let energy_params = function
  | Mhz8 -> Energy.point_8mhz
  | Mhz24 -> Energy.point_24mhz

type system = { cpu : Cpu.t; memory : Memory.t; frequency : frequency }

let create ?(map = fr2355_map) frequency =
  let stats = Trace.create () in
  let memory =
    Memory.create ~wait_states:(wait_states frequency) ~map ~stats ()
  in
  let cpu = Cpu.create memory in
  { cpu; memory; frequency }

let report system =
  Energy.evaluate (energy_params system.frequency) (Cpu.stats system.cpu)

(* A power failure, as the batteryless deployments of paper §1/§2.2
   experience it: SRAM — stack, data, every cached function — decays
   to garbage, the CPU loses its registers, FRAM survives. The caller
   then replays the boot path (runtime reboot + entry vector). *)
let power_fail ?(pattern = 0xFF) system =
  let map = Memory.map system.memory in
  for a = map.Memory.sram_lo to map.Memory.sram_hi do
    Memory.poke_byte system.memory a pattern
  done;
  Memory.power_fail system.memory;
  Cpu.power_reset system.cpu
