(** Analytical energy model: a per-cycle digital-core term plus
    per-access memory terms. Constants are scaled from MSP430FR2355
    datasheet active-mode currents so the relative costs the paper
    depends on hold (FRAM accesses cost several times an SRAM access;
    read-cache hits are cheap; 24 MHz is the most efficient operating
    point per cycle). Ratios are meaningful, absolute joules are not. *)

type params = {
  frequency_hz : float;
  core_nj_per_cycle : float;
  fram_read_miss_nj : float;
  fram_read_hit_nj : float;
  fram_write_nj : float;
  sram_access_nj : float;
}

val point_8mhz : params
val point_24mhz : params

type report = { time_s : float; energy_nj : float }

val evaluate : params -> Trace.t -> report

val evaluate_counts :
  params ->
  cycles:int ->
  fram_read_misses:int ->
  fram_read_hits:int ->
  fram_writes:int ->
  sram_accesses:int ->
  report
(** Evaluate the model on raw counters. [evaluate] is this applied to
    the aggregate totals; the profiling layer applies it to
    per-function slices, so attributions sum to the whole-run report. *)
