(** Simulated memory system: 64 KiB address space with an SRAM region,
    an FRAM region behind the hardware read cache and wait-state
    model, and a few peripherals.

    Every CPU-issued access is counted into a {!Trace.t}; wait states
    accrue as stall cycles. The timing model (DESIGN.md): FRAM reads
    that miss the read cache cost [wait_states] stall cycles, FRAM
    writes always pay them, and the second and subsequent FRAM
    accesses issued by one instruction cost one extra cycle each
    (the access-contention bottleneck of paper §2.2 / Fig. 1). *)

type region = Sram | Fram | Peripheral | Unmapped

exception Fault of string
(** Unmapped or misaligned access, or a software-triggered fault. *)

val fault : ('a, Format.formatter, unit, 'b) format4 -> 'a

exception Power_loss
(** The supply died: raised by a counted access when an armed
    {!power_trigger} fires, before that access takes effect. Used by
    the fault-injection subsystem ({!Faultinject}); {!Cpu.run} turns
    it into a structured outcome. *)

(** Where the next power failure strikes. Because the runtimes' own
    modeled instructions also flow through counted accesses, a
    trigger can land inside the miss handler, mid-memcpy, or between
    the two halves of a metadata update. *)
type power_trigger =
  | After_accesses of int
      (** die on the n-th counted access from arming time *)
  | On_region_access of { lo : int; hi : int; skip : int }
      (** die on the skip-th counted access with [lo <= addr < hi] *)

type map = { sram_lo : int; sram_hi : int; fram_lo : int; fram_hi : int }

(** Peripheral registers. *)

val uart_tx_addr : int
(** Byte writes accumulate as console output. *)

val gpio_out_addr : int

val halt_addr : int
(** Any write requests a halt. *)

val fault_addr : int
(** Any write raises {!Fault}. *)

val region_of : map -> int -> region

type purpose = Ifetch | Data

type t

val create :
  ?wait_states:int -> ?contention_penalty:int -> map:map -> stats:Trace.t ->
  unit -> t

val stats : t -> Trace.t
val map : t -> map
val halt_requested : t -> bool
val uart_output : t -> string

val begin_instruction : t -> unit
(** Reset the per-instruction FRAM access count (contention model);
    the CPU calls this before each instruction. *)

(** Power-failure injection. *)

val arm_power_trigger : t -> power_trigger option -> unit
(** Arm the next power failure ([None] disarms). At most one trigger
    is armed at a time; it disarms itself when it fires. *)

val power_armed : t -> bool

val access_ticks : t -> int
(** Total counted accesses so far — the clock {!After_accesses}
    triggers are scheduled against. *)

val power_fail : t -> unit
(** Apply the survivable consequences of an outage beyond the SRAM
    loss the caller inflicts: cancel any pending halt, flush the
    volatile FRAM read cache, reset per-instruction state. An armed
    trigger stays armed so the next boot sequence can be torn too. *)

(** Uncounted accessors for loading images and inspecting results. *)

val peek_byte : t -> int -> int
val poke_byte : t -> int -> int -> unit
val peek_word : t -> int -> int
val poke_word : t -> int -> int -> unit
val load_image : t -> addr:int -> Bytes.t -> unit

(** Counted accesses (these drive the statistics and timing model). *)

val read : t -> purpose:purpose -> width:int -> int -> int
val write : t -> width:int -> int -> int -> unit
val read_word : t -> purpose:purpose -> int -> int
val read_byte : t -> purpose:purpose -> int -> int
val write_word : t -> int -> int -> unit
val write_byte : t -> int -> int -> unit

val fetch_word_sram : t -> int -> int
val fetch_word_fram : t -> int -> int
(** Specialized counted instruction-word fetches for the superblock
    replay path. Caller guarantees: even address, region established
    at record time, no observer attached. Counters, stalls, read-cache
    state and the power clock advance bit-identically to
    [read ~purpose:Ifetch ~width:2]. *)
