(* Analytical energy model.

   Energy decomposes into a per-cycle digital-core term and per-access
   memory terms. Constants are derived from MSP430FR2355 datasheet
   (SLASEC4) active-mode currents at 3.0 V, scaled so the relative
   costs the paper depends on hold: FRAM array accesses are several
   times more expensive than SRAM accesses; read-cache hits cost close
   to SRAM; the 24 MHz point is the most energy-efficient per cycle
   (fixed leakage amortises over more cycles per second). Absolute
   joules are not meaningful for the reproduction — ratios are. *)

type params = {
  frequency_hz : float;
  core_nj_per_cycle : float;
  fram_read_miss_nj : float;
  fram_read_hit_nj : float;
  fram_write_nj : float;
  sram_access_nj : float;
}

let point_8mhz =
  {
    frequency_hz = 8.0e6;
    core_nj_per_cycle = 0.210;
    fram_read_miss_nj = 0.55;
    fram_read_hit_nj = 0.07;
    fram_write_nj = 0.70;
    sram_access_nj = 0.055;
  }

let point_24mhz =
  {
    frequency_hz = 24.0e6;
    core_nj_per_cycle = 0.165;
    fram_read_miss_nj = 0.55;
    fram_read_hit_nj = 0.07;
    fram_write_nj = 0.70;
    sram_access_nj = 0.055;
  }

type report = { time_s : float; energy_nj : float }

(* Shared with the profiling layer: evaluating the model on a
   per-function slice of the counters and on the aggregate totals is
   the same computation, so attribution sums reconcile with the
   whole-run report. *)
let evaluate_counts params ~cycles ~fram_read_misses ~fram_read_hits
    ~fram_writes ~sram_accesses =
  let cycles = float_of_int cycles in
  let energy_nj =
    (cycles *. params.core_nj_per_cycle)
    +. (float_of_int fram_read_misses *. params.fram_read_miss_nj)
    +. (float_of_int fram_read_hits *. params.fram_read_hit_nj)
    +. (float_of_int fram_writes *. params.fram_write_nj)
    +. (float_of_int sram_accesses *. params.sram_access_nj)
  in
  { time_s = cycles /. params.frequency_hz; energy_nj }

let evaluate params (stats : Trace.t) =
  let fram_reads = stats.Trace.fram_ifetch + stats.Trace.fram_data_reads in
  evaluate_counts params
    ~cycles:(Trace.total_cycles stats)
    ~fram_read_misses:(fram_reads - stats.Trace.fram_read_hits)
    ~fram_read_hits:stats.Trace.fram_read_hits
    ~fram_writes:stats.Trace.fram_writes
    ~sram_accesses:(Trace.sram_accesses stats)
