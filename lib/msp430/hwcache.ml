(* Model of the FRAM controller's hardware read cache.

   The MSP430FR2355 ships a small 2-way set-associative read cache of
   four 8-byte lines in front of the FRAM array (SLASEC4). Reads that
   hit avoid the FRAM wait states; misses fill a line. Writes bypass
   the cache (it is a read cache) but invalidate a matching line so
   that self-modifying code — which the software caching runtimes rely
   on — stays coherent. LRU replacement within each set. *)

type t = {
  ways : int;
  sets : int;
  line_bytes : int;
  (* Shift/mask equivalents of the division by [line_bytes] and the
     mod/div by [sets], valid when both are powers of two (the real
     controller's geometry always is); -1 disables them. This lookup
     runs on every counted FRAM access, where a hardware division is
     measurable. *)
  line_shift : int;
  set_shift : int;
  set_mask : int;
  tags : int array array; (* [set].(way) = tag, -1 when invalid *)
  lru : int array; (* [set] = way that is least recently used *)
}

let log2_exact n =
  let rec go i =
    if 1 lsl i = n then i else if 1 lsl i > n || i > 30 then -1 else go (i + 1)
  in
  if n <= 0 then -1 else go 0

let create ?(ways = 2) ?(lines = 4) ?(line_bytes = 8) () =
  let sets = lines / ways in
  let set_shift = log2_exact sets in
  {
    ways;
    sets;
    line_bytes;
    line_shift = log2_exact line_bytes;
    set_shift;
    set_mask = (if set_shift >= 0 then sets - 1 else -1);
    tags = Array.init sets (fun _ -> Array.make ways (-1));
    lru = Array.make sets 0;
  }

(* [find] returns the hit way or -1; this sits on the counted path of
   every FRAM access. Top-level recursion, not a local [let rec]: a
   local recursive function capturing its environment allocates a
   closure per call, which dominated the simulator's allocation
   profile (one find per instruction fetch). *)
let rec find_from ways nways tag way =
  if way >= nways then -1
  else if Array.unsafe_get ways way = tag then way
  else find_from ways nways tag (way + 1)

let find t set tag = find_from t.tags.(set) t.ways tag 0

(* Read access; returns true on hit. A miss fills the line. *)
let read t addr =
  let line =
    if t.line_shift >= 0 then addr lsr t.line_shift else addr / t.line_bytes
  in
  let set = if t.set_shift >= 0 then line land t.set_mask else line mod t.sets in
  let tag = if t.set_shift >= 0 then line lsr t.set_shift else line / t.sets in
  let way = find t set tag in
  if way >= 0 then begin
    t.lru.(set) <- 1 - way;
    true
  end
  else begin
    let victim = t.lru.(set) in
    t.tags.(set).(victim) <- tag;
    t.lru.(set) <- 1 - victim;
    false
  end

(* Write access: invalidate any matching line. *)
let write t addr =
  let line =
    if t.line_shift >= 0 then addr lsr t.line_shift else addr / t.line_bytes
  in
  let set = if t.set_shift >= 0 then line land t.set_mask else line mod t.sets in
  let tag = if t.set_shift >= 0 then line lsr t.set_shift else line / t.sets in
  let way = find t set tag in
  if way >= 0 then t.tags.(set).(way) <- -1

let flush t =
  Array.iter (fun ways -> Array.fill ways 0 t.ways (-1)) t.tags;
  Array.fill t.lru 0 t.sets 0
