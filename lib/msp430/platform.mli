(** MSP430FR2355-like platform configuration: memory map, clock
    operating points, and system construction. *)

val sram_base : int
val sram_size : int  (* 4 KiB *)
val fram_base : int
val fram_size : int  (* 32 KiB *)
val fr2355_map : Memory.map

(** The two operating points the paper evaluates: 8 MHz (zero FRAM
    wait states) and 24 MHz (maximum CPU clock; 3 wait states per
    FRAM array access). *)
type frequency = Mhz8 | Mhz24

val frequency_name : frequency -> string
val wait_states : frequency -> int
val energy_params : frequency -> Energy.params

type system = { cpu : Cpu.t; memory : Memory.t; frequency : frequency }

val create : ?map:Memory.map -> frequency -> system

val report : system -> Energy.report
(** Time and energy for the execution so far. *)

val power_fail : ?pattern:int -> system -> unit
(** A power failure as intermittent deployments experience it: SRAM
    decays to [pattern] bytes (default [0xFF]), the CPU registers and
    halt latch clear, the FRAM read cache flushes; FRAM contents
    survive. The caller then replays the boot path — the runtime's
    [reboot] plus reloading SP/PC. *)
