(* MSP430 CPU: fetch/decode/execute loop with cycle accounting, flag
   semantics per SLAU144, and trap vectors used by the software caching
   runtimes to interpose on execution (the simulated analogue of
   branching into runtime code that lives in FRAM). *)

let trap_base = 0xFF00

type trap_action = Goto of int | Halt_machine

(* Host-side decode memoization: the words an instruction was decoded
   from, plus the decode result. Keyed by PC (one slot per even
   address); self-validating, see [decode_at]. *)
type dentry = { dw : int array; dinstr : Isa.t; dsize : int }

type t = {
  regs : int array;
  mem : Memory.t;
  stats : Trace.t;
  traps : (int, t -> trap_action) Hashtbl.t;
  dcache : dentry option array;
  mutable classify : int -> Trace.source;
  mutable halted : bool;
  mutable tracer : (pc:int -> Isa.t -> unit) option;
}

(* Flag bit positions in SR. *)
let flag_c = 0
let flag_z = 1
let flag_n = 2
let flag_v = 8

let default_classifier mem addr =
  match Memory.region_of (Memory.map mem) addr with
  | Memory.Sram -> Trace.App_sram
  | Memory.Fram | Memory.Peripheral | Memory.Unmapped -> Trace.App_fram

let create mem =
  let stats = Memory.stats mem in
  {
    regs = Array.make 16 0;
    mem;
    stats;
    traps = Hashtbl.create 8;
    dcache = Array.make 0x8000 None;
    classify = default_classifier mem;
    halted = false;
    tracer = None;
  }

let mem t = t.mem
let stats t = t.stats
let halted t = t.halted
let reg t r = t.regs.(r)
let set_reg t r v = t.regs.(r) <- Word.of_int v
let set_classifier t f = t.classify <- f

(* Optional per-instruction observer (mspdebug-style tracing); set to
   None to disable. Fires after decode, before execution. *)
let set_tracer t f = t.tracer <- f
let register_trap t addr handler = Hashtbl.replace t.traps addr handler

let get_flag t bit = Word.bit t.regs.(Isa.sr) bit = 1

let set_flag t bit v =
  let sr = t.regs.(Isa.sr) in
  t.regs.(Isa.sr) <- (if v then sr lor (1 lsl bit) else sr land lnot (1 lsl bit)) land 0xFFFF

(* Charge the cost of one modeled runtime instruction: an instruction
   fetch from [fetch_addr] (normally in the reserved FRAM runtime
   region, so the read cache and wait states apply) plus [cycles]
   unstalled cycles, attributed to [source] in the Fig. 8 breakdown. *)
let charge_runtime_instr t ~source ~fetch_addr ~cycles =
  Memory.begin_instruction t.mem;
  Trace.emit t.stats (Trace.Instr { pc = fetch_addr; source });
  ignore (Memory.read_word t.mem ~purpose:Memory.Ifetch fetch_addr);
  Trace.count_instr t.stats source;
  Trace.add_unstalled t.stats cycles

let width_of = function Isa.W -> 2 | Isa.B -> 1
let val_mask = function Isa.W -> 0xFFFF | Isa.B -> 0xFF
let msb_mask = function Isa.W -> 0x8000 | Isa.B -> 0x80

(* Evaluate a source operand; performs counted data reads. *)
let eval_src t sz src =
  let rd addr = Memory.read t.mem ~purpose:Memory.Data ~width:(width_of sz) addr in
  match src with
  | Isa.Sreg r -> t.regs.(r) land val_mask sz
  | Isa.Sidx (x, r) -> rd (Word.add t.regs.(r) x)
  | Isa.Sind r -> rd t.regs.(r)
  | Isa.Sinc r ->
      let addr = t.regs.(r) in
      let v = rd addr in
      let step = if sz = Isa.B && r >= 4 then 1 else 2 in
      t.regs.(r) <- Word.add addr step;
      v
  | Isa.Simm v | Isa.SimmX v -> v land val_mask sz
  | Isa.Sabs a -> rd a
  | Isa.Ssym a -> rd a

type location = Loc_reg of int | Loc_mem of int

let dst_location t dst =
  match dst with
  | Isa.Dreg r -> Loc_reg r
  | Isa.Didx (x, r) -> Loc_mem (Word.add t.regs.(r) x)
  | Isa.Dabs a -> Loc_mem a
  | Isa.Dsym a -> Loc_mem a

let read_loc t sz = function
  | Loc_reg r -> t.regs.(r) land val_mask sz
  | Loc_mem a -> Memory.read t.mem ~purpose:Memory.Data ~width:(width_of sz) a

(* Byte writes to a register clear the upper byte (MSP430 semantics). *)
let write_loc t sz loc v =
  match loc with
  | Loc_reg r -> t.regs.(r) <- v land val_mask sz
  | Loc_mem a -> Memory.write t.mem ~width:(width_of sz) a v

let set_nz t sz r =
  set_flag t flag_z (r = 0);
  set_flag t flag_n (r land msb_mask sz <> 0)

(* a + b + carry_in with full flag semantics; returns the result.
   SUB/SUBC/CMP reuse this with b = lnot src (one's complement). *)
let add_with_flags t sz a b carry_in =
  let m = val_mask sz in
  let a = a land m and b = b land m in
  let full = a + b + carry_in in
  let r = full land m in
  set_flag t flag_c (full > m);
  set_flag t flag_v
    (lnot (a lxor b) land (a lxor r) land msb_mask sz <> 0);
  set_nz t sz r;
  r

(* Decimal (BCD) addition with carry, digit by digit. *)
let dadd_with_flags t sz a b carry_in =
  let digits = match sz with Isa.W -> 4 | Isa.B -> 2 in
  let r = ref 0 and carry = ref carry_in in
  for i = 0 to digits - 1 do
    let da = (a lsr (4 * i)) land 0xF and db = (b lsr (4 * i)) land 0xF in
    let d = da + db + !carry in
    let d, c = if d > 9 then (d - 10, 1) else (d, 0) in
    carry := c;
    r := !r lor (d lsl (4 * i))
  done;
  set_flag t flag_c (!carry = 1);
  set_nz t sz !r;
  !r

let exec_format1 t op sz src dst =
  let sval = eval_src t sz src in
  let loc = dst_location t dst in
  let carry () = if get_flag t flag_c then 1 else 0 in
  match op with
  | Isa.MOV -> write_loc t sz loc sval
  | Isa.ADD ->
      let d = read_loc t sz loc in
      write_loc t sz loc (add_with_flags t sz d sval 0)
  | Isa.ADDC ->
      let d = read_loc t sz loc in
      write_loc t sz loc (add_with_flags t sz d sval (carry ()))
  | Isa.SUB ->
      let d = read_loc t sz loc in
      write_loc t sz loc (add_with_flags t sz d (lnot sval) 1)
  | Isa.SUBC ->
      let d = read_loc t sz loc in
      write_loc t sz loc (add_with_flags t sz d (lnot sval) (carry ()))
  | Isa.CMP ->
      let d = read_loc t sz loc in
      ignore (add_with_flags t sz d (lnot sval) 1)
  | Isa.DADD ->
      let d = read_loc t sz loc in
      write_loc t sz loc (dadd_with_flags t sz d sval (carry ()))
  | Isa.BIT ->
      let d = read_loc t sz loc in
      let r = d land sval in
      set_nz t sz r;
      set_flag t flag_c (r <> 0);
      set_flag t flag_v false
  | Isa.BIC ->
      let d = read_loc t sz loc in
      write_loc t sz loc (d land lnot sval land val_mask sz)
  | Isa.BIS ->
      let d = read_loc t sz loc in
      write_loc t sz loc (d lor sval)
  | Isa.XOR ->
      let d = read_loc t sz loc in
      let r = (d lxor sval) land val_mask sz in
      set_nz t sz r;
      set_flag t flag_c (r <> 0);
      set_flag t flag_v (d land msb_mask sz <> 0 && sval land msb_mask sz <> 0);
      write_loc t sz loc r
  | Isa.AND ->
      let d = read_loc t sz loc in
      let r = d land sval in
      set_nz t sz r;
      set_flag t flag_c (r <> 0);
      set_flag t flag_v false;
      write_loc t sz loc r

let push_word t v =
  let sp' = Word.sub t.regs.(Isa.sp) 2 in
  t.regs.(Isa.sp) <- sp';
  Memory.write_word t.mem sp' v

let pop_word t =
  let sp = t.regs.(Isa.sp) in
  let v = Memory.read_word t.mem ~purpose:Memory.Data sp in
  t.regs.(Isa.sp) <- Word.add sp 2;
  v

(* Location a format-II operand writes back to, mirroring eval_src's
   address computation (auto-increment already applied by eval_src, so
   we recompute the pre-increment address). *)
let src_writeback_loc t sz src =
  match src with
  | Isa.Sreg r -> Some (Loc_reg r)
  | Isa.Sidx (x, r) -> Some (Loc_mem (Word.add t.regs.(r) x))
  | Isa.Sind r -> Some (Loc_mem t.regs.(r))
  | Isa.Sinc r ->
      let step = if sz = Isa.B && r >= 4 then 1 else 2 in
      Some (Loc_mem (Word.sub t.regs.(r) step))
  | Isa.Sabs a | Isa.Ssym a -> Some (Loc_mem a)
  | Isa.Simm _ | Isa.SimmX _ -> None

let exec_format2 t op sz src =
  match op with
  | Isa.PUSH ->
      let v = eval_src t sz src in
      let sp' = Word.sub t.regs.(Isa.sp) 2 in
      t.regs.(Isa.sp) <- sp';
      Memory.write t.mem ~width:(width_of sz) sp' v
  | Isa.CALL ->
      let target = eval_src t Isa.W src in
      Trace.emit t.stats (Trace.Call { target });
      push_word t t.regs.(Isa.pc);
      t.regs.(Isa.pc) <- target
  | Isa.RRC | Isa.RRA | Isa.SWPB | Isa.SXT -> (
      let v = eval_src t sz src in
      let r =
        match op with
        | Isa.RRC ->
            let c_in = if get_flag t flag_c then msb_mask sz else 0 in
            let r = (v lsr 1) lor c_in in
            set_flag t flag_c (v land 1 = 1);
            set_nz t sz r;
            set_flag t flag_v false;
            r
        | Isa.RRA ->
            let r = (v lsr 1) lor (v land msb_mask sz) in
            set_flag t flag_c (v land 1 = 1);
            set_nz t sz r;
            set_flag t flag_v false;
            r
        | Isa.SWPB -> Word.make_word ~high:(Word.low_byte v) ~low:(Word.high_byte v)
        | Isa.SXT ->
            let r = Word.of_int (Word.byte_to_signed (v land 0xFF)) in
            set_nz t Isa.W r;
            set_flag t flag_c (r <> 0);
            set_flag t flag_v false;
            r
        | Isa.PUSH | Isa.CALL -> assert false
      in
      match src_writeback_loc t sz src with
      | Some loc -> write_loc t sz loc r
      | None -> Memory.fault "format-II write-back to immediate")

let cond_holds t = function
  | Isa.JNE -> not (get_flag t flag_z)
  | Isa.JEQ -> get_flag t flag_z
  | Isa.JNC -> not (get_flag t flag_c)
  | Isa.JC -> get_flag t flag_c
  | Isa.JN -> get_flag t flag_n
  | Isa.JGE -> get_flag t flag_n = get_flag t flag_v
  | Isa.JL -> get_flag t flag_n <> get_flag t flag_v
  | Isa.JMP -> true

(* Memoized decode. Instruction words are immutable in steady state,
   but the software-caching runtimes copy code into SRAM at run time
   (and power failures wipe it), so every cache hit is
   *self-validating*: the words the entry was decoded from are
   re-fetched through the counted [fetch] and compared. The first
   opcode word fully determines the instruction length (Encoding), so
   a matching first word means the validation fetches exactly the
   words a cold decode would fetch — the counted access pattern, and
   therefore every cycle/energy/stall figure, is bit-identical with
   and without the cache. A mismatch falls back to a fresh decode
   served from the words already fetched, so no access is counted
   twice. No invalidation hooks are needed anywhere. *)
let decode_at t fetch pc0 =
  if pc0 land 1 <> 0 then Encoding.decode ~fetch ~addr:pc0
  else begin
    let slot = (pc0 land 0xFFFF) lsr 1 in
    let w0 = fetch pc0 in
    let ws = Array.make 3 0 in
    ws.(0) <- w0;
    let have = ref 1 in
    let cached =
      match t.dcache.(slot) with
      | Some e when e.dw.(0) = w0 ->
          (* same first word => same length: validate the extension
             words with counted fetches, the exact cold pattern *)
          let n = Array.length e.dw in
          let ok = ref true in
          for i = 1 to n - 1 do
            let w = fetch (pc0 + (2 * i)) in
            ws.(i) <- w;
            incr have;
            if w <> e.dw.(i) then ok := false
          done;
          if !ok then Some (e.dinstr, e.dsize) else None
      | _ -> None
    in
    match cached with
    | Some r -> r
    | None ->
        let fetch' addr =
          let i = ((addr - pc0) land 0xFFFF) lsr 1 in
          if i < !have then ws.(i)
          else begin
            let w = fetch addr in
            if i < 3 then begin
              ws.(i) <- w;
              have := max !have (i + 1)
            end;
            w
          end
        in
        let instr, size = Encoding.decode ~fetch:fetch' ~addr:pc0 in
        t.dcache.(slot) <-
          Some { dw = Array.sub ws 0 (size / 2); dinstr = instr; dsize = size };
        (instr, size)
  end

exception Trap_missing of int

let run_trap t pc =
  match Hashtbl.find_opt t.traps pc with
  | None -> raise (Trap_missing pc)
  | Some handler -> (
      match handler t with
      | Goto pc' -> t.regs.(Isa.pc) <- Word.of_int pc'
      | Halt_machine -> t.halted <- true)

(* Execute one instruction (or one trap handler invocation). *)
let step t =
  if t.halted then ()
  else begin
    let pc0 = t.regs.(Isa.pc) in
    if pc0 >= trap_base then run_trap t pc0
    else begin
      Memory.begin_instruction t.mem;
      (* Attribution context for every counted access, stall and cycle
         this instruction causes — including the ifetches the decoder
         is about to issue. *)
      Trace.emit t.stats (Trace.Instr { pc = pc0; source = t.classify pc0 });
      let fetch addr = Memory.read_word t.mem ~purpose:Memory.Ifetch addr in
      let instr, size = decode_at t fetch pc0 in
      (match t.tracer with
      | Some observe -> observe ~pc:pc0 instr
      | None -> ());
      Trace.count_instr t.stats (t.classify pc0);
      t.regs.(Isa.pc) <- Word.add pc0 size;
      (match instr with
      | Isa.I1 (op, sz, src, dst) -> exec_format1 t op sz src dst
      | Isa.I2 (op, sz, src) -> exec_format2 t op sz src
      | Isa.Jcc (c, off) ->
          if cond_holds t c then t.regs.(Isa.pc) <- Word.add pc0 (2 + (2 * off))
      | Isa.RETI ->
          t.regs.(Isa.sr) <- pop_word t;
          t.regs.(Isa.pc) <- pop_word t);
      Trace.add_unstalled t.stats (Cycles.of_instr instr);
      (* The compiler's return idiom (MOV @SP+, PC) gives an attached
         profiler the pop side of its shadow call stack. *)
      (match instr with
      | Isa.I1 (Isa.MOV, Isa.W, Isa.Sinc 1, Isa.Dreg 0) ->
          Trace.emit t.stats Trace.Return
      | _ -> ());
      if Memory.halt_requested t.mem then t.halted <- true
    end
  end

(* Power-on reset: architectural state (registers, halt latch) is
   volatile and clears; the trap table and classifier describe the
   runtime image in FRAM and survive. The caller wipes SRAM, reboots
   the runtime's FRAM metadata and reloads SP/PC. *)
let power_reset t =
  Array.fill t.regs 0 16 0;
  t.halted <- false

type fault_info = { fault_pc : int; fault_msg : string }

type run_outcome =
  | Halted
  | Fuel_exhausted
  | Faulted of fault_info
  | Power_lost

let outcome_name = function
  | Halted -> "halted"
  | Fuel_exhausted -> "out of fuel"
  | Faulted { fault_pc; fault_msg } ->
      Printf.sprintf "fault near pc 0x%04X: %s" fault_pc fault_msg
  | Power_lost -> "power lost"

(* Run until halt, fuel exhaustion, a machine fault or a power
   failure. Faults that would otherwise escape as OCaml exceptions —
   memory faults, missing trap vectors, runtime invariant failures —
   come back as a structured [Faulted] so no simulated failure mode
   crashes the host program. *)
let run ?(fuel = max_int) t =
  let rec loop fuel =
    if t.halted then Halted
    else if fuel <= 0 then Fuel_exhausted
    else begin
      step t;
      loop (fuel - 1)
    end
  in
  let faulted msg = Faulted { fault_pc = t.regs.(Isa.pc); fault_msg = msg } in
  try loop fuel with
  | Memory.Power_loss -> Power_lost
  | Memory.Fault msg -> faulted msg
  | Trap_missing pc -> faulted (Printf.sprintf "no trap handler at 0x%04X" pc)
  | Encoding.Decode_error w -> faulted (Printf.sprintf "undecodable word 0x%04X" w)
  | Failure msg -> faulted msg
