(* MSP430 CPU: fetch/decode/execute loop with cycle accounting, flag
   semantics per SLAU144, and trap vectors used by the software caching
   runtimes to interpose on execution (the simulated analogue of
   branching into runtime code that lives in FRAM). *)

let trap_base = 0xFF00

type trap_action = Goto of int | Halt_machine

(* Host-side decode memoization: the words an instruction was decoded
   from, plus the decode result. Keyed by PC (one slot per even
   address); self-validating, see [decode_at]. *)
type dentry = { dw : int array; dinstr : Isa.t; dsize : int }

(* Superblock engine: one preprocessed instruction of a straight-line
   run. Everything the reference step loop recomputes per execution —
   decode, cycle cost, source classification — is resolved once at
   record time; replay only re-fetches the instruction words (counted,
   the exact [decode_at] validation pattern) and executes. *)
type sb_instr = {
  si_pc : int;
  si_words : int array; (* the words the instruction decoded from *)
  si_nwords : int;
  si_instr : Isa.t;
  si_size : int;
  si_cycles : int; (* Cycles.of_instr, precomputed *)
  si_source : Trace.source; (* classifier result, precomputed *)
  si_fetch : int;
      (* how replay fetches the words: 0 = all in SRAM, 1 = all in
         FRAM (specialized counted fetches), 2 = generic counted read
         (region boundary or peripheral oddity) *)
}

(* A superblock: a maximal straight-line run starting at [sb_start].
   Only the last instruction may write the PC. *)
type sblock = { sb_instrs : sb_instr array }

type engine = Reference | Superblock

type t = {
  regs : int array;
  mem : Memory.t;
  stats : Trace.t;
  traps : (int, t -> trap_action) Hashtbl.t;
  dcache : dentry option array;
  sblocks : sblock option array; (* superblock cache, keyed like dcache *)
  sb_ws : int array; (* scratch: words fetched while validating *)
  sb_srcs : int array; (* scratch: per-source instruction batch *)
  (* Batched-counter accumulators for the replay loop. Mutable fields
     rather than [ref]s/closures: with blocks as short as two
     instructions (a compare-and-branch loop body), per-block heap
     cells dominated the allocation profile. *)
  mutable sb_cycles_acc : int;
  mutable sb_icount : int;
  mutable sb_used : int;
  mutable engine : engine;
  mutable classify : int -> Trace.source;
  mutable halted : bool;
  mutable tracer : (pc:int -> Isa.t -> unit) option;
  (* Periodic instruction hook (the checkpointing runtime's timer):
     fires between instructions once [stats.instructions] reaches
     [hook_due]. [hook_due] is [max_int] when no hook is armed, so the
     hot loops pay one integer compare. Firing points are a function
     of the architectural instruction count only, so both engines
     invoke the hook at identical boundaries. *)
  mutable hook : (t -> unit) option;
  mutable hook_interval : int;
  mutable hook_due : int;
}

(* Flag bit positions in SR. *)
let flag_c = 0
let flag_z = 1
let flag_n = 2
let flag_v = 8

let default_classifier mem addr =
  match Memory.region_of (Memory.map mem) addr with
  | Memory.Sram -> Trace.App_sram
  | Memory.Fram | Memory.Peripheral | Memory.Unmapped -> Trace.App_fram

let create mem =
  let stats = Memory.stats mem in
  {
    regs = Array.make 16 0;
    mem;
    stats;
    traps = Hashtbl.create 8;
    dcache = Array.make 0x8000 None;
    sblocks = Array.make 0x8000 None;
    sb_ws = Array.make 3 0;
    sb_srcs = Array.make Trace.source_count 0;
    sb_cycles_acc = 0;
    sb_icount = 0;
    sb_used = 0;
    engine = Superblock;
    classify = default_classifier mem;
    halted = false;
    tracer = None;
    hook = None;
    hook_interval = 0;
    hook_due = max_int;
  }

let mem t = t.mem
let stats t = t.stats
let halted t = t.halted
let reg t r = t.regs.(r)
let set_reg t r v = t.regs.(r) <- Word.of_int v

let sb_invalidate t = Array.fill t.sblocks 0 (Array.length t.sblocks) None

let engine t = t.engine
let set_engine t e =
  if e <> t.engine then begin
    t.engine <- e;
    sb_invalidate t
  end

let engine_name = function Reference -> "reference" | Superblock -> "superblock"

let engine_of_string = function
  | "reference" -> Some Reference
  | "superblock" -> Some Superblock
  | _ -> None

(* Superblocks bake the classifier's verdict into each record, so a new
   classifier invalidates them. (The installed classifiers are pure
   functions of the address, but re-recording is cheap and removes the
   assumption.) *)
let set_classifier t f =
  t.classify <- f;
  sb_invalidate t

(* Optional per-instruction observer (mspdebug-style tracing); set to
   None to disable. Fires after decode, before execution. *)
let set_tracer t f = t.tracer <- f
let register_trap t addr handler = Hashtbl.replace t.traps addr handler

(* Arm (or disarm) the periodic hook. The first firing is [interval]
   instructions from now; each firing re-anchors the next one at the
   instruction count observed *before* the hook body runs, so work the
   hook itself charges counts against its own period. *)
let set_periodic_hook t ~interval f =
  match f with
  | None ->
      t.hook <- None;
      t.hook_interval <- 0;
      t.hook_due <- max_int
  | Some _ ->
      if interval <= 0 then invalid_arg "Cpu.set_periodic_hook: interval <= 0";
      t.hook <- f;
      t.hook_interval <- interval;
      t.hook_due <- t.stats.Trace.instructions + interval

(* Re-anchor an armed hook's next firing at the current instruction
   count (the checkpoint runtime calls this after a post-outage
   restore so a torn period does not fire immediately on resume). *)
let rearm_periodic_hook t =
  if t.hook <> None then
    t.hook_due <- t.stats.Trace.instructions + t.hook_interval

let fire_hook t =
  match t.hook with
  | None -> t.hook_due <- max_int
  | Some f ->
      t.hook_due <- t.stats.Trace.instructions + t.hook_interval;
      f t

let get_flag t bit = Word.bit t.regs.(Isa.sr) bit = 1

let set_flag t bit v =
  let sr = t.regs.(Isa.sr) in
  t.regs.(Isa.sr) <- (if v then sr lor (1 lsl bit) else sr land lnot (1 lsl bit)) land 0xFFFF

(* Charge the cost of one modeled runtime instruction: an instruction
   fetch from [fetch_addr] (normally in the reserved FRAM runtime
   region, so the read cache and wait states apply) plus [cycles]
   unstalled cycles, attributed to [source] in the Fig. 8 breakdown. *)
let charge_runtime_instr t ~source ~fetch_addr ~cycles =
  Memory.begin_instruction t.mem;
  if Trace.has_observer t.stats then
    Trace.emit t.stats (Trace.Instr { pc = fetch_addr; source });
  ignore (Memory.read_word t.mem ~purpose:Memory.Ifetch fetch_addr);
  Trace.count_instr t.stats source;
  Trace.add_unstalled t.stats cycles

let width_of = function Isa.W -> 2 | Isa.B -> 1
let val_mask = function Isa.W -> 0xFFFF | Isa.B -> 0xFF
let msb_mask = function Isa.W -> 0x8000 | Isa.B -> 0x80

(* Evaluate a source operand; performs counted data reads.
   Allocation-free: no intermediate closures on the per-instruction
   path. *)
let eval_src t sz src =
  match src with
  | Isa.Sreg r -> t.regs.(r) land val_mask sz
  | Isa.Sidx (x, r) ->
      Memory.read t.mem ~purpose:Memory.Data ~width:(width_of sz)
        (Word.add t.regs.(r) x)
  | Isa.Sind r ->
      Memory.read t.mem ~purpose:Memory.Data ~width:(width_of sz) t.regs.(r)
  | Isa.Sinc r ->
      let addr = t.regs.(r) in
      let v = Memory.read t.mem ~purpose:Memory.Data ~width:(width_of sz) addr in
      let step = if sz = Isa.B && r >= 4 then 1 else 2 in
      t.regs.(r) <- Word.add addr step;
      v
  | Isa.Simm v | Isa.SimmX v -> v land val_mask sz
  | Isa.Sabs a -> Memory.read t.mem ~purpose:Memory.Data ~width:(width_of sz) a
  | Isa.Ssym a -> Memory.read t.mem ~purpose:Memory.Data ~width:(width_of sz) a

(* A destination location as an immediate int, so the hot execute path
   never allocates: values 0-15 name a register, [16 + a] names memory
   address [a]. *)
let dst_location t dst =
  match dst with
  | Isa.Dreg r -> r
  | Isa.Didx (x, r) -> 16 + Word.add t.regs.(r) x
  | Isa.Dabs a -> 16 + a
  | Isa.Dsym a -> 16 + a

let read_loc t sz loc =
  if loc < 16 then t.regs.(loc) land val_mask sz
  else Memory.read t.mem ~purpose:Memory.Data ~width:(width_of sz) (loc - 16)

(* Byte writes to a register clear the upper byte (MSP430 semantics). *)
let write_loc t sz loc v =
  if loc < 16 then t.regs.(loc) <- v land val_mask sz
  else Memory.write t.mem ~width:(width_of sz) (loc - 16) v

let set_nz t sz r =
  set_flag t flag_z (r = 0);
  set_flag t flag_n (r land msb_mask sz <> 0)

(* a + b + carry_in with full flag semantics; returns the result.
   SUB/SUBC/CMP reuse this with b = lnot src (one's complement).
   C, Z, N and V are folded into a single SR update — this runs once
   per arithmetic instruction, and four separate read-modify-writes of
   SR showed up in execution profiles. *)
let arith_flag_mask =
  lnot ((1 lsl flag_c) lor (1 lsl flag_z) lor (1 lsl flag_n) lor (1 lsl flag_v))

let add_with_flags t sz a b carry_in =
  let m = val_mask sz in
  let a = a land m and b = b land m in
  let full = a + b + carry_in in
  let r = full land m in
  let sr = t.regs.(Isa.sr) land arith_flag_mask in
  let sr = if full > m then sr lor (1 lsl flag_c) else sr in
  let sr =
    if lnot (a lxor b) land (a lxor r) land msb_mask sz <> 0 then
      sr lor (1 lsl flag_v)
    else sr
  in
  let sr = if r = 0 then sr lor (1 lsl flag_z) else sr in
  let sr = if r land msb_mask sz <> 0 then sr lor (1 lsl flag_n) else sr in
  t.regs.(Isa.sr) <- sr land 0xFFFF;
  r

(* Decimal (BCD) addition with carry, digit by digit. *)
let dadd_with_flags t sz a b carry_in =
  let digits = match sz with Isa.W -> 4 | Isa.B -> 2 in
  let r = ref 0 and carry = ref carry_in in
  for i = 0 to digits - 1 do
    let da = (a lsr (4 * i)) land 0xF and db = (b lsr (4 * i)) land 0xF in
    let d = da + db + !carry in
    let d, c = if d > 9 then (d - 10, 1) else (d, 0) in
    carry := c;
    r := !r lor (d lsl (4 * i))
  done;
  set_flag t flag_c (!carry = 1);
  set_nz t sz !r;
  !r

let exec_format1 t op sz src dst =
  let sval = eval_src t sz src in
  let loc = dst_location t dst in
  match op with
  | Isa.MOV -> write_loc t sz loc sval
  | Isa.ADD ->
      let d = read_loc t sz loc in
      write_loc t sz loc (add_with_flags t sz d sval 0)
  | Isa.ADDC ->
      let d = read_loc t sz loc in
      let c = if get_flag t flag_c then 1 else 0 in
      write_loc t sz loc (add_with_flags t sz d sval c)
  | Isa.SUB ->
      let d = read_loc t sz loc in
      write_loc t sz loc (add_with_flags t sz d (lnot sval) 1)
  | Isa.SUBC ->
      let d = read_loc t sz loc in
      let c = if get_flag t flag_c then 1 else 0 in
      write_loc t sz loc (add_with_flags t sz d (lnot sval) c)
  | Isa.CMP ->
      let d = read_loc t sz loc in
      ignore (add_with_flags t sz d (lnot sval) 1)
  | Isa.DADD ->
      let d = read_loc t sz loc in
      let c = if get_flag t flag_c then 1 else 0 in
      write_loc t sz loc (dadd_with_flags t sz d sval c)
  | Isa.BIT ->
      let d = read_loc t sz loc in
      let r = d land sval in
      set_nz t sz r;
      set_flag t flag_c (r <> 0);
      set_flag t flag_v false
  | Isa.BIC ->
      let d = read_loc t sz loc in
      write_loc t sz loc (d land lnot sval land val_mask sz)
  | Isa.BIS ->
      let d = read_loc t sz loc in
      write_loc t sz loc (d lor sval)
  | Isa.XOR ->
      let d = read_loc t sz loc in
      let r = (d lxor sval) land val_mask sz in
      set_nz t sz r;
      set_flag t flag_c (r <> 0);
      set_flag t flag_v (d land msb_mask sz <> 0 && sval land msb_mask sz <> 0);
      write_loc t sz loc r
  | Isa.AND ->
      let d = read_loc t sz loc in
      let r = d land sval in
      set_nz t sz r;
      set_flag t flag_c (r <> 0);
      set_flag t flag_v false;
      write_loc t sz loc r

let push_word t v =
  let sp' = Word.sub t.regs.(Isa.sp) 2 in
  t.regs.(Isa.sp) <- sp';
  Memory.write_word t.mem sp' v

let pop_word t =
  let sp = t.regs.(Isa.sp) in
  let v = Memory.read_word t.mem ~purpose:Memory.Data sp in
  t.regs.(Isa.sp) <- Word.add sp 2;
  v

(* Location a format-II operand writes back to, mirroring eval_src's
   address computation (auto-increment already applied by eval_src, so
   we recompute the pre-increment address). Same immediate encoding as
   [dst_location]; -1 means no write-back target (immediate operand). *)
let src_writeback_loc t sz src =
  match src with
  | Isa.Sreg r -> r
  | Isa.Sidx (x, r) -> 16 + Word.add t.regs.(r) x
  | Isa.Sind r -> 16 + t.regs.(r)
  | Isa.Sinc r ->
      let step = if sz = Isa.B && r >= 4 then 1 else 2 in
      16 + Word.sub t.regs.(r) step
  | Isa.Sabs a | Isa.Ssym a -> 16 + a
  | Isa.Simm _ | Isa.SimmX _ -> -1

let exec_format2 t op sz src =
  match op with
  | Isa.PUSH ->
      let v = eval_src t sz src in
      let sp' = Word.sub t.regs.(Isa.sp) 2 in
      t.regs.(Isa.sp) <- sp';
      Memory.write t.mem ~width:(width_of sz) sp' v
  | Isa.CALL ->
      let target = eval_src t Isa.W src in
      if Trace.has_observer t.stats then
        Trace.emit t.stats (Trace.Call { target });
      push_word t t.regs.(Isa.pc);
      t.regs.(Isa.pc) <- target
  | Isa.RRC | Isa.RRA | Isa.SWPB | Isa.SXT -> (
      let v = eval_src t sz src in
      let r =
        match op with
        | Isa.RRC ->
            let c_in = if get_flag t flag_c then msb_mask sz else 0 in
            let r = (v lsr 1) lor c_in in
            set_flag t flag_c (v land 1 = 1);
            set_nz t sz r;
            set_flag t flag_v false;
            r
        | Isa.RRA ->
            let r = (v lsr 1) lor (v land msb_mask sz) in
            set_flag t flag_c (v land 1 = 1);
            set_nz t sz r;
            set_flag t flag_v false;
            r
        | Isa.SWPB -> Word.make_word ~high:(Word.low_byte v) ~low:(Word.high_byte v)
        | Isa.SXT ->
            let r = Word.of_int (Word.byte_to_signed (v land 0xFF)) in
            set_nz t Isa.W r;
            set_flag t flag_c (r <> 0);
            set_flag t flag_v false;
            r
        | Isa.PUSH | Isa.CALL -> assert false
      in
      match src_writeback_loc t sz src with
      | -1 -> Memory.fault "format-II write-back to immediate"
      | loc -> write_loc t sz loc r)

let cond_holds t = function
  | Isa.JNE -> not (get_flag t flag_z)
  | Isa.JEQ -> get_flag t flag_z
  | Isa.JNC -> not (get_flag t flag_c)
  | Isa.JC -> get_flag t flag_c
  | Isa.JN -> get_flag t flag_n
  | Isa.JGE -> get_flag t flag_n = get_flag t flag_v
  | Isa.JL -> get_flag t flag_n <> get_flag t flag_v
  | Isa.JMP -> true

(* Memoized decode. Instruction words are immutable in steady state,
   but the software-caching runtimes copy code into SRAM at run time
   (and power failures wipe it), so every cache hit is
   *self-validating*: the words the entry was decoded from are
   re-fetched through the counted [fetch] and compared. The first
   opcode word fully determines the instruction length (Encoding), so
   a matching first word means the validation fetches exactly the
   words a cold decode would fetch — the counted access pattern, and
   therefore every cycle/energy/stall figure, is bit-identical with
   and without the cache. A mismatch falls back to a fresh decode
   served from the words already fetched, so no access is counted
   twice. No invalidation hooks are needed anywhere. *)
let decode_at t fetch pc0 =
  if pc0 land 1 <> 0 then Encoding.decode ~fetch ~addr:pc0
  else begin
    let slot = (pc0 land 0xFFFF) lsr 1 in
    let w0 = fetch pc0 in
    let ws = Array.make 3 0 in
    ws.(0) <- w0;
    let have = ref 1 in
    let cached =
      match t.dcache.(slot) with
      | Some e when e.dw.(0) = w0 ->
          (* same first word => same length: validate the extension
             words with counted fetches, the exact cold pattern *)
          let n = Array.length e.dw in
          let ok = ref true in
          for i = 1 to n - 1 do
            let w = fetch (pc0 + (2 * i)) in
            ws.(i) <- w;
            incr have;
            if w <> e.dw.(i) then ok := false
          done;
          if !ok then Some (e.dinstr, e.dsize) else None
      | _ -> None
    in
    match cached with
    | Some r -> r
    | None ->
        let fetch' addr =
          let i = ((addr - pc0) land 0xFFFF) lsr 1 in
          if i < !have then ws.(i)
          else begin
            let w = fetch addr in
            if i < 3 then begin
              ws.(i) <- w;
              have := max !have (i + 1)
            end;
            w
          end
        in
        let instr, size = Encoding.decode ~fetch:fetch' ~addr:pc0 in
        t.dcache.(slot) <-
          Some { dw = Array.sub ws 0 (size / 2); dinstr = instr; dsize = size };
        (instr, size)
  end

exception Trap_missing of int

let run_trap t pc =
  match Hashtbl.find_opt t.traps pc with
  | None -> raise (Trap_missing pc)
  | Some handler -> (
      match handler t with
      | Goto pc' -> t.regs.(Isa.pc) <- Word.of_int pc'
      | Halt_machine -> t.halted <- true)

(* Execute a decoded instruction's effect. The caller has already set
   PC to the fall-through address [pc0 + size]; PC-writing instructions
   overwrite it here. *)
let exec_instr t pc0 instr =
  match instr with
  | Isa.I1 (op, sz, src, dst) -> exec_format1 t op sz src dst
  | Isa.I2 (op, sz, src) -> exec_format2 t op sz src
  | Isa.Jcc (c, off) ->
      if cond_holds t c then t.regs.(Isa.pc) <- Word.add pc0 (2 + (2 * off))
  | Isa.RETI ->
      t.regs.(Isa.sr) <- pop_word t;
      t.regs.(Isa.pc) <- pop_word t

(* Execute one instruction (or one trap handler invocation). *)
let step t =
  if t.halted then ()
  else begin
    let pc0 = t.regs.(Isa.pc) in
    if pc0 >= trap_base then run_trap t pc0
    else begin
      Memory.begin_instruction t.mem;
      (* Attribution context for every counted access, stall and cycle
         this instruction causes — including the ifetches the decoder
         is about to issue. *)
      if Trace.has_observer t.stats then
        Trace.emit t.stats (Trace.Instr { pc = pc0; source = t.classify pc0 });
      let fetch addr = Memory.read_word t.mem ~purpose:Memory.Ifetch addr in
      let instr, size = decode_at t fetch pc0 in
      (match t.tracer with
      | Some observe -> observe ~pc:pc0 instr
      | None -> ());
      Trace.count_instr t.stats (t.classify pc0);
      t.regs.(Isa.pc) <- Word.add pc0 size;
      exec_instr t pc0 instr;
      Trace.add_unstalled t.stats (Cycles.of_instr instr);
      (* The compiler's return idiom (MOV @SP+, PC) gives an attached
         profiler the pop side of its shadow call stack. *)
      (match instr with
      | Isa.I1 (Isa.MOV, Isa.W, Isa.Sinc 1, Isa.Dreg 0) ->
          Trace.emit t.stats Trace.Return
      | _ -> ());
      if Memory.halt_requested t.mem then t.halted <- true
    end
  end

(* --- Superblock engine ------------------------------------------------

   The reference [step] loop re-decodes (through the self-validating
   [decode_at]), re-classifies and re-prices every instruction it
   executes. The superblock engine removes that recurring work for
   straight-line runs: the first execution of a run records each
   instruction's decoded form, its words, its cycle cost and its
   source classification into an [sblock]; every later execution
   replays the records. Replay still issues the instruction-word
   fetches through the counted memory path — the exact access pattern
   [decode_at] would issue — so wait states, contention stalls,
   hardware read-cache state and the power-failure access clock are
   bit-identical to the reference engine, and a mismatch (SRAM code
   copied in or modified, post-outage wipe) falls back to a cold
   decode served from the words already fetched, with no access
   counted twice. Instruction and unstalled-cycle counters are
   accumulated per block and flushed at block end — and, so the
   aggregates stay exact mid-run, flushed before any escaping
   exception (power loss, machine fault) propagates.

   The engine only runs when no observer and no tracer are attached;
   observed runs take the reference loop, which emits every event in
   the documented order. *)

let max_block_len = 48

(* Could executing [instr] change the PC (other than falling through)?
   Any such instruction terminates a superblock. [Sinc 0] / [Sreg 0]
   operands never leave the decoder today (PC-relative modes decode to
   [Simm]/[SimmX]/[Ssym]), but they are handled conservatively. *)
let sb_terminates instr =
  match instr with
  | Isa.Jcc _ | Isa.RETI -> true
  | Isa.I2 (Isa.CALL, _, _) -> true
  | Isa.I1 (_, _, src, dst) -> (
      match dst with
      | Isa.Dreg 0 -> true
      | _ -> ( match src with Isa.Sinc 0 -> true | _ -> false))
  | Isa.I2 (_, _, src) -> (
      match src with Isa.Sreg 0 | Isa.Sinc 0 -> true | _ -> false)

(* Cold fallback during replay: the validation fetch at [ipc] found
   words that differ from the recorded ones. [t.sb_ws.(0 .. have-1)]
   hold the words already fetched (counted); decode from them, fetch
   any further words the new encoding needs, and execute with the
   reference per-instruction accounting. Mirrors [decode_at]'s
   mismatch path: no access is counted twice. *)
let sb_cold_exec t ipc have0 =
  let ws = t.sb_ws in
  let have = ref have0 in
  let fetch' addr =
    let k = ((addr - ipc) land 0xFFFF) lsr 1 in
    if k < !have then ws.(k)
    else begin
      let w = Memory.read_word t.mem ~purpose:Memory.Ifetch addr in
      if k < 3 then begin
        ws.(k) <- w;
        have := max !have (k + 1)
      end;
      w
    end
  in
  let instr, size = Encoding.decode ~fetch:fetch' ~addr:ipc in
  Trace.count_instr t.stats (t.classify ipc);
  t.regs.(Isa.pc) <- Word.add ipc size;
  exec_instr t ipc instr;
  Trace.add_unstalled t.stats (Cycles.of_instr instr);
  if Memory.halt_requested t.mem then t.halted <- true

(* Record a fresh superblock starting at [pc0] by executing up to
   [fuel] instructions with reference accounting (decode through
   [decode_at], per-instruction counters), capturing each decoded
   instruction. Returns the number of instructions executed. A partial
   block is stored even when an exception escapes mid-instruction:
   the completed records are a valid straight-line prefix. *)
let sb_record t pc0 fuel =
  let buf = ref [] in
  let nrec = ref 0 in
  let store () =
    if !nrec > 0 then begin
      let arr = Array.of_list (List.rev !buf) in
      t.sblocks.((pc0 land 0xFFFF) lsr 1) <- Some { sb_instrs = arr }
    end
  in
  let used = ref 0 in
  (try
     let stop = ref false in
     let cur_pc = ref pc0 in
     while (not !stop) && !used < fuel && !nrec < max_block_len do
       let ipc = !cur_pc in
       Memory.begin_instruction t.mem;
       let words = Array.make 3 0 in
       let nw = ref 0 in
       let fetch addr =
         let w = Memory.read_word t.mem ~purpose:Memory.Ifetch addr in
         if !nw < 3 then begin
           words.(!nw) <- w;
           incr nw
         end;
         w
       in
       let instr, size = decode_at t fetch ipc in
       let source = t.classify ipc in
       Trace.count_instr t.stats source;
       t.regs.(Isa.pc) <- Word.add ipc size;
       exec_instr t ipc instr;
       Trace.add_unstalled t.stats (Cycles.of_instr instr);
       incr used;
       let fetch_kind =
         let map = Memory.map t.mem in
         let kind_of addr =
           match Memory.region_of map addr with
           | Memory.Sram -> 0
           | Memory.Fram -> 1
           | Memory.Peripheral | Memory.Unmapped -> 2
         in
         let k = kind_of ipc in
         let rec all j =
           if j >= size / 2 then k
           else if kind_of (ipc + (2 * j)) = k then all (j + 1)
           else 2
         in
         all 1
       in
       buf :=
         {
           si_pc = ipc;
           si_words = Array.sub words 0 (size / 2);
           si_nwords = size / 2;
           si_instr = instr;
           si_size = size;
           si_cycles = Cycles.of_instr instr;
           si_source = source;
           si_fetch = fetch_kind;
         }
         :: !buf;
       incr nrec;
       if Memory.halt_requested t.mem then begin
         t.halted <- true;
         stop := true
       end
       else if sb_terminates instr then stop := true
       else begin
         cur_pc := Word.add ipc size;
         (* Belt and braces: if an instruction outside [sb_terminates]
            ever moved the PC, end the block here so replay stays
            faithful. *)
         if t.regs.(Isa.pc) <> !cur_pc then stop := true
         else if !cur_pc >= trap_base then stop := true
       end
     done
   with e ->
     store ();
     raise e);
  store ();
  !used

(* Flush the replay loop's batched counters into the aggregate stats.
   Idempotent (the accumulators are zeroed), so flushing both on the
   cold-fallback path and at block end — or once more after an escaping
   exception — never double-counts. *)
let sb_flush t =
  let stats = t.stats in
  stats.Trace.unstalled_cycles <- stats.Trace.unstalled_cycles + t.sb_cycles_acc;
  stats.Trace.instructions <- stats.Trace.instructions + t.sb_icount;
  t.sb_cycles_acc <- 0;
  t.sb_icount <- 0;
  let srcs = t.sb_srcs in
  for k = 0 to Array.length srcs - 1 do
    if srcs.(k) <> 0 then begin
      stats.Trace.instr_by_source.(k) <-
        stats.Trace.instr_by_source.(k) + srcs.(k);
      srcs.(k) <- 0
    end
  done

(* Validate [si]'s extension words with counted fetches. Every
   extension word is fetched even after a mismatch — the exact
   [decode_at] hit pattern — and stashed in [t.sb_ws] for the cold
   fallback. Top-level recursion, not a local closure: this runs per
   replayed instruction. *)
let rec sb_validate_ext t si k ok =
  if k >= si.si_nwords then ok
  else begin
    let a = si.si_pc + (2 * k) in
    let w =
      if si.si_fetch = 0 then Memory.fetch_word_sram t.mem a
      else if si.si_fetch = 1 then Memory.fetch_word_fram t.mem a
      else Memory.read_word t.mem ~purpose:Memory.Ifetch a
    in
    t.sb_ws.(k) <- w;
    sb_validate_ext t si (k + 1) (ok && w = si.si_words.(k))
  end

(* The replay loop proper. [slot] is the block's own cache slot, for
   invalidation on a validation mismatch. Allocation-free: state lives
   in [t]'s accumulator fields, not captured refs. *)
let rec sb_replay_loop t instrs n slot i fuel =
  if i >= n || fuel <= 0 then ()
  else begin
    let si = Array.unsafe_get instrs i in
    Memory.begin_instruction t.mem;
    let w0 =
      if si.si_fetch = 0 then Memory.fetch_word_sram t.mem si.si_pc
      else if si.si_fetch = 1 then Memory.fetch_word_fram t.mem si.si_pc
      else Memory.read_word t.mem ~purpose:Memory.Ifetch si.si_pc
    in
    if w0 = Array.unsafe_get si.si_words 0 then begin
      (* Same first word => same length: validate the extension words
         with counted fetches, the exact cold pattern. *)
      if sb_validate_ext t si 1 true then begin
        let srcs = t.sb_srcs in
        let k = Trace.source_index si.si_source in
        srcs.(k) <- srcs.(k) + 1;
        t.sb_icount <- t.sb_icount + 1;
        t.sb_used <- t.sb_used + 1;
        t.regs.(Isa.pc) <- Word.add si.si_pc si.si_size;
        exec_instr t si.si_pc si.si_instr;
        t.sb_cycles_acc <- t.sb_cycles_acc + si.si_cycles;
        if Memory.halt_requested t.mem then t.halted <- true
        else sb_replay_loop t instrs n slot (i + 1) (fuel - 1)
      end
      else begin
        (* Extension word changed under us: same length, so every word
           is already fetched; decode fresh from them. *)
        t.sb_ws.(0) <- w0;
        sb_flush t;
        sb_cold_exec t si.si_pc si.si_nwords;
        t.sblocks.(slot) <- None;
        t.sb_used <- t.sb_used + 1
      end
    end
    else begin
      (* First word changed: new length, fetch on demand. *)
      t.sb_ws.(0) <- w0;
      sb_flush t;
      sb_cold_exec t si.si_pc 1;
      t.sblocks.(slot) <- None;
      t.sb_used <- t.sb_used + 1
    end
  end

(* Replay the cached superblock, executing at most [fuel]
   instructions. Per instruction: validate the recorded words with
   counted fetches (the exact [decode_at] pattern), batch the
   instruction/cycle counters, execute. Returns the number of
   instructions executed. *)
let sb_replay t blk fuel =
  let instrs = blk.sb_instrs in
  t.sb_cycles_acc <- 0;
  t.sb_icount <- 0;
  t.sb_used <- 0;
  let slot = (instrs.(0).si_pc land 0xFFFF) lsr 1 in
  (try sb_replay_loop t instrs (Array.length instrs) slot 0 fuel
   with e ->
     sb_flush t;
     raise e);
  sb_flush t;
  t.sb_used

(* Execute from [pc0] (even, below the trap base) with the superblock
   engine; returns the number of instructions executed (>= 1 given
   fuel >= 1, so the run loop always makes progress). *)
let sb_exec t pc0 fuel =
  match t.sblocks.((pc0 land 0xFFFF) lsr 1) with
  | Some blk when blk.sb_instrs.(0).si_pc = pc0 -> sb_replay t blk fuel
  | _ -> sb_record t pc0 fuel

(* Power-on reset: architectural state (registers, halt latch) is
   volatile and clears; the trap table and classifier describe the
   runtime image in FRAM and survive. The caller wipes SRAM, reboots
   the runtime's FRAM metadata and reloads SP/PC. *)
let power_reset t =
  Array.fill t.regs 0 16 0;
  t.halted <- false

type fault_info = { fault_pc : int; fault_msg : string }

type run_outcome =
  | Halted
  | Fuel_exhausted
  | Faulted of fault_info
  | Power_lost

let outcome_name = function
  | Halted -> "halted"
  | Fuel_exhausted -> "out of fuel"
  | Faulted { fault_pc; fault_msg } ->
      Printf.sprintf "fault near pc 0x%04X: %s" fault_pc fault_msg
  | Power_lost -> "power lost"

(* Run until halt, fuel exhaustion, a machine fault or a power
   failure. Faults that would otherwise escape as OCaml exceptions —
   memory faults, missing trap vectors, runtime invariant failures —
   come back as a structured [Faulted] so no simulated failure mode
   crashes the host program.

   Dispatches between the two engines: the reference step loop, and
   the superblock engine when selected and nothing is observing (an
   attached observer or tracer must see per-instruction events in the
   documented order, which only the reference loop produces). Both
   charge one fuel unit per instruction or trap invocation and yield
   identical counters, memory and register state. *)
let run ?(fuel = max_int) t =
  let rec ref_loop fuel =
    if t.halted then Halted
    else if fuel <= 0 then Fuel_exhausted
    else begin
      if t.stats.Trace.instructions >= t.hook_due then fire_hook t;
      step t;
      ref_loop (fuel - 1)
    end
  in
  let rec sb_loop fuel =
    if t.halted then Halted
    else if fuel <= 0 then Fuel_exhausted
    else begin
      if t.stats.Trace.instructions >= t.hook_due then fire_hook t;
      let pc0 = t.regs.(Isa.pc) in
      if pc0 >= trap_base || pc0 land 1 <> 0 then begin
        step t;
        sb_loop (fuel - 1)
      end
      else begin
        (* Never execute a block across the hook boundary: cap the
           block's fuel so control returns to the loop — and the hook
           fires — at exactly the instruction count the reference loop
           would fire it at. *)
        let cap = min fuel (t.hook_due - t.stats.Trace.instructions) in
        sb_loop (fuel - sb_exec t pc0 cap)
      end
    end
  in
  let use_superblock =
    t.engine = Superblock
    && (not (Trace.has_observer t.stats))
    && t.tracer = None
  in
  let faulted msg = Faulted { fault_pc = t.regs.(Isa.pc); fault_msg = msg } in
  try if use_superblock then sb_loop fuel else ref_loop fuel with
  | Memory.Power_loss -> Power_lost
  | Memory.Fault msg -> faulted msg
  | Trap_missing pc -> faulted (Printf.sprintf "no trap handler at 0x%04X" pc)
  | Encoding.Decode_error w -> faulted (Printf.sprintf "undecodable word 0x%04X" w)
  | Failure msg -> faulted msg
