(** MSP430 CPU: fetch/decode/execute loop with cycle accounting, flag
    semantics per SLAU144, and trap vectors used by the software
    caching runtimes to interpose on execution. *)

val trap_base : int
(** PC values at or above this invoke a registered trap handler
    instead of fetching from memory. *)

type trap_action = Goto of int | Halt_machine

type t

(** Flag bit positions in SR. *)

val flag_c : int
val flag_z : int
val flag_n : int
val flag_v : int

(** Execution engine used by {!run}.

    [Reference] is the plain fetch/decode/execute step loop.
    [Superblock] (the default) records straight-line instruction runs
    on first execution — operands resolved, cycle costs and source
    classification precomputed — and replays them without re-decoding.
    Replay still issues every instruction-word fetch through the
    counted memory path (the exact self-validating pattern the decode
    cache uses), so cycles, stalls, energies, hardware-cache state and
    power-failure timing are bit-identical to the reference engine;
    code rewritten under the cache (SRAM copy-in, outage wipes,
    self-modifying code) is caught by the word comparison and falls
    back to a cold decode. The superblock engine only engages when no
    observer and no tracer are attached; observed runs always take the
    reference loop so the event stream is complete and ordered. *)
type engine = Reference | Superblock

val create : Memory.t -> t
val mem : t -> Memory.t
val stats : t -> Trace.t
val halted : t -> bool
val reg : t -> Isa.reg -> int
val set_reg : t -> Isa.reg -> int -> unit

val engine : t -> engine
val set_engine : t -> engine -> unit
val engine_name : engine -> string
val engine_of_string : string -> engine option

val set_classifier : t -> (int -> Trace.source) -> unit
(** Classify instruction fetch addresses for the Figure-8 breakdown.
    The default classifies by memory region. *)

val set_tracer : t -> (pc:int -> Isa.t -> unit) option -> unit
(** Optional per-instruction observer (mspdebug-style execution
    tracing); fires after decode, before execution. *)

val register_trap : t -> int -> (t -> trap_action) -> unit

val set_periodic_hook : t -> interval:int -> (t -> unit) option -> unit
(** Arm a periodic hook (the checkpointing runtime's interval timer):
    [f] fires between instructions every [interval] architectural
    instructions, under both execution engines at identical
    boundaries (superblocks never execute across a hook deadline).
    The next firing is re-anchored before [f] runs, so simulated work
    the hook charges counts toward its own period and a [Power_loss]
    escaping from [f] leaves the hook armed for the next period.
    [None] disarms. Raises [Invalid_argument] on [interval <= 0]. *)

val rearm_periodic_hook : t -> unit
(** Restart the current period from the present instruction count
    (called after a post-outage restore so a partially elapsed period
    does not fire immediately on resume). No-op when disarmed. *)

val get_flag : t -> int -> bool
val set_flag : t -> int -> bool -> unit

val charge_runtime_instr :
  t -> source:Trace.source -> fetch_addr:int -> cycles:int -> unit
(** Charge one modeled runtime instruction: a counted fetch at
    [fetch_addr] (so the read cache and wait states apply) plus
    [cycles] unstalled cycles, attributed to [source]. *)

exception Trap_missing of int

val step : t -> unit
(** Execute one instruction or one trap-handler invocation. May raise
    {!Memory.Fault}, {!Memory.Power_loss}, {!Trap_missing} or
    [Failure]; {!run} converts all of these into a structured
    outcome. *)

val power_reset : t -> unit
(** Power-on reset: clear the (volatile) registers and halt latch.
    Trap handlers and the classifier describe the runtime image in
    FRAM and survive; the caller wipes SRAM, reboots the runtime's
    FRAM metadata and reloads SP/PC. *)

type fault_info = { fault_pc : int; fault_msg : string }

(** How a bounded run ended. No simulated failure mode — memory
    faults, missing trap vectors, runtime invariant violations, an
    injected power failure — escapes {!run} as an OCaml exception. *)
type run_outcome =
  | Halted
  | Fuel_exhausted
  | Faulted of fault_info
  | Power_lost

val outcome_name : run_outcome -> string

val run : ?fuel:int -> t -> run_outcome
