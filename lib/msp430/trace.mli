(** Execution statistics: memory-access accounting by region and
    purpose, wait-state/stall accounting, and the dynamic-instruction
    source breakdown used for the paper's Figure 8. *)

(** Where an executed instruction was fetched from. [Handler] covers
    the caching runtimes and [Memcpy] their code-copy loops, both of
    which execute from FRAM. *)
type source = App_fram | App_sram | Handler | Memcpy

val source_index : source -> int
val source_count : int
val source_name : source -> string

(** {2 Observability event stream}

    Every counted quantity is mirrored as an event through the
    optional observer, so an attached profiler ({!Observe}) can
    re-derive the aggregate totals exactly. The observer is a pure
    spectator: it runs after the counters have been updated and
    cannot influence timing, counting or machine state. *)

(** One counted memory access, classified the way the energy model
    prices it. *)
type access_class =
  | Fram_read of { hit : bool; ifetch : bool }
  | Fram_write
  | Sram_read of { ifetch : bool }
  | Sram_write
  | Periph_access

(** High-level events from the caching runtimes and the harness. *)
type runtime_event =
  | Miss_enter of { runtime : string }
  | Miss_exit of { runtime : string; disposition : string; fid : int }
      (** disposition: ["cached"], ["nvm"], ["frozen"], ["too-large"]
          or (block cache) ["return"]. [fid] identifies the missed
          function when the runtime caches at function granularity
          (SwapRAM); -1 otherwise. *)
  | Eviction of { fid : int }
  | Freeze of { on : bool }  (** anti-thrashing freeze transition *)
  | Cache_flush
  | Block_load of { nvm : int }
  | Prefetch of { fid : int }
      (** callee cached ahead of its first call (prefetch extension) *)
  | Phase of { name : string }  (** harness marker (boot/reboot) *)

type event =
  | Instr of { pc : int; source : source }
      (** an instruction begins; [pc] is its fetch address — the
          attribution context for every following event until the
          next [Instr] *)
  | Cycles of { unstalled : int; stall : int }
  | Mem_access of { addr : int; cls : access_class }
  | Call of { target : int }
  | Return
  | Runtime_event of runtime_event

type t = {
  mutable unstalled_cycles : int;
  mutable stall_cycles : int;
  mutable instructions : int;
  instr_by_source : int array;
  mutable fram_ifetch : int;
  mutable fram_data_reads : int;
  mutable fram_writes : int;
  mutable fram_read_hits : int;  (** hardware read-cache hits *)
  mutable sram_ifetch : int;
  mutable sram_data_reads : int;
  mutable sram_writes : int;
  mutable periph_accesses : int;
  mutable observer : (event -> unit) option;
}

val create : unit -> t
val count_instr : t -> source -> unit

val set_observer : t -> (event -> unit) option -> unit

val add_observer : t -> (event -> unit) -> unit
(** Compose [f] with any observer already attached: the existing one
    runs first, then [f]. The trace tap used by the replay recorder
    ({!Replay.Trace_file}), which must ride along with the harness's
    profiler/metrics fan-out without disturbing it. *)

val has_observer : t -> bool
(** [true] when an observer is attached. Hot paths use this to avoid
    even constructing an event payload that [emit] would discard. *)

val emit : t -> event -> unit
(** No-op when no observer is attached. Call sites on hot paths should
    guard with {!has_observer} so the event record is never allocated
    in the common unobserved case. *)

val add_unstalled : t -> int -> unit
val add_stall : t -> int -> unit
(** All cycle accrual funnels through these two, so the observer sees
    every cycle exactly once. *)

val fram_accesses : t -> int
(** Every CPU access to the FRAM region, hit or miss — the quantity
    the paper's Table 2 counts. *)

val sram_accesses : t -> int
val total_cycles : t -> int
val code_accesses : t -> int
val data_accesses : t -> int
val instr_fraction : t -> source -> float
val pp : Format.formatter -> t -> unit
