module Memory = Msp430.Memory
module Cpu = Msp430.Cpu
module Platform = Msp430.Platform
module Trace = Msp430.Trace
module Toolchain = Experiments.Toolchain

(* The injection driver: run a configured system while killing the
   power according to a schedule, replaying the boot path after every
   outage, and judge the survivor against the uninterrupted golden
   run.

   One injected run is a sequence of "lives". Each life arms the next
   trigger from the schedule stream, then lets the CPU run; when the
   trigger fires mid-access the machine raises through [Cpu.run] as
   [Power_lost], we clear SRAM and the register file
   ({!Platform.power_fail}) and replay boot via [Toolchain.reboot].
   The *next* life's trigger is armed before the reboot runs, so an
   outage can land inside reboot's own restore writes — a torn reboot,
   counted separately; the restore is idempotent, so we just run it
   again. A watchdog bounds the number of reboots: a runtime whose
   recovery never makes progress (e.g. a period shorter than its
   reboot cost) is reported as a livelock rather than hanging the
   harness. *)

type verdict =
  | Pass
  | State_mismatch of { expected : int; got : int }
  | Return_mismatch of { expected : int; got : int }
  | Fault_escape of Cpu.fault_info
      (* the injected run died on a machine fault — torn state was
         left behind and executed *)
  | Livelock of { reboots : int }
  | Build_failed of string

let verdict_name = function
  | Pass -> "pass"
  | State_mismatch { expected; got } ->
      Printf.sprintf "STATE MISMATCH (%08X vs golden %08X)" got expected
  | Return_mismatch { expected; got } ->
      Printf.sprintf "RETURN MISMATCH (%d vs golden %d)" got expected
  | Fault_escape f ->
      Printf.sprintf "FAULT %s" (Cpu.outcome_name (Cpu.Faulted f))
  | Livelock { reboots } -> Printf.sprintf "LIVELOCK after %d reboots" reboots
  | Build_failed msg -> "BUILD FAILED: " ^ msg

type report = {
  r_label : string;
  r_schedule : Schedule.t;
  r_verdict : verdict;
  r_reboots : int;
  r_torn_reboots : int;  (** outages that landed inside reboot itself *)
  r_instructions : int;  (** across all lives *)
  r_misses : int;
  r_words_copied : int;
  r_cycles : int;  (** simulated cycles across all lives *)
  r_energy_nj : float;
  r_uart : string;
  r_golden : Oracle.golden;
}

let passed r = r.r_verdict = Pass

(* Adversarial targets of the system under test, if a caching runtime
   is installed; a baseline build has no runtime-critical windows and
   an adversarial schedule against it degenerates to an uninterrupted
   run. *)
let windows_of (p : Toolchain.prepared) : Schedule.window list =
  let named (w_name, w_lo, w_hi) = { Schedule.w_name; w_lo; w_hi } in
  match (p.Toolchain.p_swapram, p.Toolchain.p_block, p.Toolchain.p_checkpoint)
  with
  | Some rt, _, _ ->
      List.map named
        (Swapram.Runtime.critical_windows rt ~image:p.Toolchain.p_image)
  | None, Some rt, _ ->
      List.map named
        (Blockcache.Runtime.critical_windows rt ~image:p.Toolchain.p_image)
  | None, None, Some rt ->
      List.map named (Swapram.Checkpoint.critical_windows rt)
  | None, None, None -> []

let run_against ?(max_reboots = 2000) ?(watchdog_cycles = max_int)
    ?(fuel = 2_000_000_000) ~golden (config : Toolchain.config)
    (schedule : Schedule.t) : report =
  let finish ~label ~reboots ~torn ~(final : Oracle.golden option) verdict =
    let instructions, misses, words, cycles, energy, uart =
      match final with
      | Some f ->
          ( f.Oracle.g_instructions,
            f.Oracle.g_misses,
            f.Oracle.g_words_copied,
            f.Oracle.g_cycles,
            f.Oracle.g_energy_nj,
            f.Oracle.g_uart )
      | None -> (0, 0, 0, 0, 0.0, "")
    in
    {
      r_label = label;
      r_schedule = schedule;
      r_verdict = verdict;
      r_reboots = reboots;
      r_torn_reboots = torn;
      r_instructions = instructions;
      r_misses = misses;
      r_words_copied = words;
      r_cycles = cycles;
      r_energy_nj = energy;
      r_uart = uart;
      r_golden = golden;
    }
  in
  let label =
    Printf.sprintf "%s/%s/%s"
      config.Toolchain.benchmark.Workloads.Bench_def.name
      (Toolchain.caching_name config.Toolchain.caching)
      (Schedule.describe schedule)
  in
  match Toolchain.prepare config with
  | Error msg ->
      finish ~label ~reboots:0 ~torn:0 ~final:None (Build_failed msg)
  | Ok p ->
      let system = p.Toolchain.p_system in
      let mem = system.Platform.memory in
      let stats = Cpu.stats system.Platform.cpu in
      let next = Schedule.stream schedule (windows_of p) in
      let reboots = ref 0 and torn = ref 0 in
      let exception Watchdog in
      (* Recover from an outage. The next trigger is armed *before*
         the restore writes run so the reboot itself is exposed to
         tearing; on a torn reboot we pull the trigger after it and
         retry — the restore is idempotent. The two watchdogs bound a
         recovery that never makes progress: a reboot-count limit and
         a cumulative simulated-cycle budget (the deterministic
         per-trial bound campaigns rely on). *)
      let rec power_cycle () =
        incr reboots;
        if !reboots > max_reboots || Trace.total_cycles stats > watchdog_cycles
        then raise Watchdog;
        Memory.arm_power_trigger mem (next ());
        Platform.power_fail system;
        try Toolchain.reboot p
        with Memory.Power_loss ->
          incr torn;
          power_cycle ()
      in
      let rec lives () =
        match Cpu.run ~fuel system.Platform.cpu with
        | Cpu.Halted ->
            let final = Oracle.capture p in
            if final.Oracle.g_return <> golden.Oracle.g_return then
              Return_mismatch
                {
                  expected = golden.Oracle.g_return;
                  got = final.Oracle.g_return;
                }
            else if final.Oracle.g_state <> golden.Oracle.g_state then
              State_mismatch
                { expected = golden.Oracle.g_state; got = final.Oracle.g_state }
            else Pass
        | Cpu.Power_lost ->
            power_cycle ();
            lives ()
        | Cpu.Faulted f -> Fault_escape f
        | Cpu.Fuel_exhausted -> Livelock { reboots = !reboots }
      in
      Toolchain.boot p;
      Memory.arm_power_trigger mem (next ());
      let verdict = try lives () with Watchdog -> Livelock { reboots = !reboots } in
      let final = Oracle.capture p in
      finish ~label ~reboots:!reboots ~torn:!torn ~final:(Some final) verdict

let null_golden =
  {
    Oracle.g_return = 0;
    g_state = 0;
    g_uart = "";
    g_instructions = 0;
    g_misses = 0;
    g_words_copied = 0;
    g_accesses = 0;
    g_cycles = 0;
    g_energy_nj = 0.0;
  }

let run ?max_reboots ?watchdog_cycles ?(fuel = 2_000_000_000) config schedule =
  match Oracle.golden ~fuel config with
  | Error msg ->
      {
        r_label = Schedule.describe schedule;
        r_schedule = schedule;
        r_verdict = Build_failed msg;
        r_reboots = 0;
        r_torn_reboots = 0;
        r_instructions = 0;
        r_misses = 0;
        r_words_copied = 0;
        r_cycles = 0;
        r_energy_nj = 0.0;
        r_uart = "";
        r_golden = null_golden;
      }
  | Ok golden ->
      run_against ?max_reboots ?watchdog_cycles ~fuel ~golden config schedule

(* The golden run is per configuration, not per schedule: compute it
   once in the parent and reuse it across the sweep. Each schedule is
   an independent injected run, so with [jobs > 1] they shard across
   forked workers; reports come back in schedule order either way. *)
let sweep ?max_reboots ?watchdog_cycles ?(fuel = 2_000_000_000) ?jobs config
    schedules =
  match Oracle.golden ~fuel config with
  | Error msg -> Error msg
  | Ok golden ->
      Ok
        (Experiments.Parallel.map ?jobs
           (fun schedule ->
             run_against ?max_reboots ?watchdog_cycles ~fuel ~golden config
               schedule)
           schedules)

let table reports =
  let rows =
    List.map
      (fun r ->
        [
          r.r_label;
          verdict_name r.r_verdict;
          string_of_int r.r_reboots;
          string_of_int r.r_torn_reboots;
          string_of_int r.r_instructions;
          string_of_int r.r_golden.Oracle.g_instructions;
          string_of_int r.r_misses;
        ])
      reports
  in
  Experiments.Report.table
    ~aligns:
      Experiments.Report.
        [ Left; Left; Right; Right; Right; Right; Right ]
    ([ "run"; "verdict"; "reboots"; "torn"; "instrs"; "golden"; "misses" ]
    :: rows)
