module Memory = Msp430.Memory
module Cpu = Msp430.Cpu
module Platform = Msp430.Platform
module Toolchain = Experiments.Toolchain

(* Crash-consistency oracle: what must be identical between a run
   interrupted by power failures and the uninterrupted golden run.

   The application-visible persistent state is (a) main's return
   value and (b) the final contents of the application's own data
   items — its globals, which live in FRAM under the crash-safe
   placements. Runtime-owned metadata (the "__sr_*" / "__bb_*" items:
   redirection entries, relocation slots, hash buckets, ...) is
   excluded: which functions happen to be cached when the program
   halts legitimately differs between the two runs. The stack is not
   an item and is likewise excluded — below SP it is garbage by
   definition.

   UART output is deliberately NOT part of the verdict: output has
   at-least-once semantics under power failure (a window replayed
   after an outage re-prints), which is the standard contract for
   intermittent systems. The injector still records it for
   inspection. *)

let runtime_owned name =
  let has_prefix p =
    String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  has_prefix "__sr_" || has_prefix "__bb_"

let app_data_items (image : Masm.Assembler.t) =
  List.filter
    (fun (i : Masm.Assembler.item_info) ->
      i.Masm.Assembler.info_section = Masm.Ast.Data
      && not (runtime_owned i.Masm.Assembler.info_name))
    image.Masm.Assembler.items

(* FNV-1a over the named items' current bytes (uncounted reads — the
   oracle is an observer outside the simulated machine). *)
let app_state_digest ~(image : Masm.Assembler.t) mem =
  let h = ref 0x811C9DC5 in
  let feed byte = h := (!h lxor byte) * 0x01000193 land 0x3FFFFFFF in
  List.iter
    (fun (i : Masm.Assembler.item_info) ->
      feed (i.Masm.Assembler.info_addr land 0xFF);
      for k = 0 to i.Masm.Assembler.info_size - 1 do
        feed (Memory.peek_byte mem (i.Masm.Assembler.info_addr + k))
      done)
    (app_data_items image);
  !h

(* The uninterrupted reference execution of a prepared configuration. *)
type golden = {
  g_return : int;
  g_state : int; (* app_state_digest at halt *)
  g_uart : string;
  g_instructions : int;
  g_misses : int; (* swapram misses + blockcache misses, 0 for baseline *)
  g_words_copied : int;
  g_accesses : int; (* counted memory accesses (the power-trigger clock) *)
  g_cycles : int; (* total simulated cycles *)
  g_energy_nj : float;
}

let misses_of (p : Toolchain.prepared) =
  (match p.Toolchain.p_swapram with
  | Some rt -> (Swapram.Runtime.stats rt).Swapram.Runtime.misses
  | None -> 0)
  + (match p.Toolchain.p_block with
    | Some rt -> (Blockcache.Runtime.stats rt).Blockcache.Runtime.misses
    | None -> 0)

(* "Words copied" generalises to "words the runtime moved": cache
   copy-ins for the caching runtimes, persisted snapshot words for
   the checkpoint runtime. *)
let words_copied_of (p : Toolchain.prepared) =
  (match p.Toolchain.p_swapram with
  | Some rt -> (Swapram.Runtime.stats rt).Swapram.Runtime.words_copied
  | None -> 0)
  + (match p.Toolchain.p_block with
    | Some rt -> (Blockcache.Runtime.stats rt).Blockcache.Runtime.words_copied
    | None -> 0)
  + (match p.Toolchain.p_checkpoint with
    | Some rt ->
        (Swapram.Checkpoint.stats rt).Swapram.Checkpoint.words_written
    | None -> 0)

let capture (p : Toolchain.prepared) =
  let system = p.Toolchain.p_system in
  let stats = Cpu.stats system.Platform.cpu in
  {
    g_return = Cpu.reg system.Platform.cpu 12;
    g_state =
      app_state_digest ~image:p.Toolchain.p_image system.Platform.memory;
    g_uart = Memory.uart_output system.Platform.memory;
    g_instructions = stats.Msp430.Trace.instructions;
    g_misses = misses_of p;
    g_words_copied = words_copied_of p;
    g_accesses = Memory.access_ticks system.Platform.memory;
    g_cycles = Msp430.Trace.total_cycles stats;
    g_energy_nj = (Platform.report system).Msp430.Energy.energy_nj;
  }

(* Run a fresh instance of [config] to completion on stable power. *)
let golden ?(fuel = 2_000_000_000) config =
  match Toolchain.prepare config with
  | Error msg -> Error ("golden build: " ^ msg)
  | Ok p -> (
      Toolchain.boot p;
      match Cpu.run ~fuel p.Toolchain.p_system.Platform.cpu with
      | Cpu.Halted -> Ok (capture p)
      | o -> Error ("golden run: " ^ Cpu.outcome_name o))
