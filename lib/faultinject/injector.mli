(** The injection driver: run a configuration under a power-failure
    {!Schedule}, replaying the boot path after every outage
    ({!Msp430.Platform.power_fail} + {!Experiments.Toolchain.reboot}),
    and judge the survivor against the uninterrupted golden run.

    The next outage is armed before each reboot executes, so a
    schedule can tear the recovery path itself; torn reboots are
    retried (the restore is idempotent) and counted. A watchdog bounds
    the total number of reboots so a recovery that never makes
    progress is reported as a livelock instead of hanging the
    harness. *)

type verdict =
  | Pass
  | State_mismatch of { expected : int; got : int }
      (** final application-data digest differs from golden *)
  | Return_mismatch of { expected : int; got : int }
  | Fault_escape of Msp430.Cpu.fault_info
      (** the injected run died on a machine fault — torn state was
          left behind and executed *)
  | Livelock of { reboots : int }
  | Build_failed of string

val verdict_name : verdict -> string

type report = {
  r_label : string;
  r_schedule : Schedule.t;
  r_verdict : verdict;
  r_reboots : int;
  r_torn_reboots : int;  (** outages that landed inside reboot itself *)
  r_instructions : int;  (** across all lives *)
  r_misses : int;
  r_words_copied : int;
  r_cycles : int;  (** simulated cycles across all lives *)
  r_energy_nj : float;
  r_uart : string;
  r_golden : Oracle.golden;
}

val passed : report -> bool

val windows_of : Experiments.Toolchain.prepared -> Schedule.window list
(** The installed runtime's critical address windows (empty for a
    baseline build). *)

val run_against :
  ?max_reboots:int ->
  ?watchdog_cycles:int ->
  ?fuel:int ->
  golden:Oracle.golden ->
  Experiments.Toolchain.config ->
  Schedule.t ->
  report
(** Inject one schedule into a fresh instance of the configuration and
    judge it against a precomputed golden capture. Two configurable
    watchdogs report [Livelock] instead of hanging: [max_reboots]
    (default 2000) bounds the number of power cycles, and
    [watchdog_cycles] (default unbounded) bounds cumulative simulated
    cycles — the deterministic per-trial budget campaign shards rely
    on. [fuel] bounds each life. *)

val run :
  ?max_reboots:int ->
  ?watchdog_cycles:int ->
  ?fuel:int ->
  Experiments.Toolchain.config ->
  Schedule.t ->
  report
(** {!Oracle.golden} + {!run_against}. *)

val sweep :
  ?max_reboots:int ->
  ?watchdog_cycles:int ->
  ?fuel:int ->
  ?jobs:int ->
  Experiments.Toolchain.config ->
  Schedule.t list ->
  (report list, string) result
(** Run several schedules against one configuration, computing the
    golden run once (in the calling process); [Error] if the golden
    build/run fails. [jobs > 1] shards the schedules across forked
    workers ({!Experiments.Parallel.map}); reports are returned in
    schedule order regardless. *)

val table : report list -> string
