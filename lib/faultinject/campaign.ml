(* Monte-Carlo fault-injection campaigns (the statistical counterpart
   of the deterministic sweeps in {!Injector}).

   A campaign is a grid of cells — benchmark x runtime x schedule
   sampler — and, per cell, [trials] independent injected runs, each
   under a power-failure schedule drawn from the cell's sampler with a
   per-trial seed derived deterministically from (campaign seed, cell
   index, trial index). Trials are grouped into fixed-size shards;
   shards are the unit of parallel dispatch, of progress
   checkpointing, and of early stopping. Everything that affects a
   shard's tally is derived from the plan alone, so:

   - a parallel run ([jobs > 1]) aggregates bit-identically to a
     serial one (shard tallies are pure functions of their inputs,
     folded in shard order);
   - a resumed campaign replays finished shards from the progress
     file instead of recomputing them, and lands on the same outcome;
   - early stopping is deterministic: the aggregate uses exactly
     shards [0..k] where [k] is the first index (in shard order) at
     which the cumulative Wilson interval on the crash-consistency
     rate narrows below the configured width — shards beyond [k] are
     discarded even if a parallel round already computed them. *)

module Toolchain = Experiments.Toolchain
module Parallel = Experiments.Parallel
module Progress = Observe.Progress
module Json = Observe.Json

(* ------------------------------------------------------------------ *)
(* Samplers *)

type sampler = Uniform | Bursty | Near_eviction

let all_samplers = [ Uniform; Bursty; Near_eviction ]

let sampler_name = function
  | Uniform -> "uniform"
  | Bursty -> "bursty"
  | Near_eviction -> "near-eviction"

let sampler_of_string s =
  match String.lowercase_ascii s with
  | "uniform" -> Some Uniform
  | "bursty" -> Some Bursty
  | "near-eviction" | "near_eviction" | "neareviction" -> Some Near_eviction
  | _ -> None

(* Scale each sampler's gap distribution from the golden run's counted
   access total, so "a handful of outages per execution" means the
   same thing for a 50k-access microbenchmark and a 2M-access one. *)
let schedule_for sampler (golden : Oracle.golden) seed =
  let acc = max 5_000 golden.Oracle.g_accesses in
  match sampler with
  | Uniform ->
      Schedule.Random
        { seed; min_gap = max 200 (acc / 100); max_gap = max 2_000 (acc / 5) }
  | Bursty ->
      Schedule.Bursty
        {
          seed;
          calm_gap = max 2_000 (acc / 4);
          burst_gap = max 100 (acc / 200);
          burst_len = 4;
        }
  | Near_eviction ->
      Schedule.Near_eviction
        { seed; max_depth = 48; fallback_gap = max 1_000 (acc / 10) }

(* ------------------------------------------------------------------ *)
(* Per-trial seeds: a splitmix64 chain over (seed, cell, trial). The
   Fibonacci-hash avalanche decorrelates neighbouring trials, and the
   chained absorption keeps (cell, trial) pairs collision-free without
   packing assumptions. *)

let sm64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let trial_seed ~seed ~cell ~trial =
  let open Int64 in
  let gamma = 0x9E3779B97F4A7C15L in
  let h = sm64 (add (of_int seed) gamma) in
  let h = sm64 (add (logxor h (of_int cell)) gamma) in
  let h = sm64 (add (logxor h (of_int trial)) gamma) in
  to_int (logand h 0x3FFFFFFFL)

(* ------------------------------------------------------------------ *)
(* Plans *)

type plan = {
  p_benchmarks : Workloads.Bench_def.t list;
  p_runtimes : Toolchain.caching list;
  p_samplers : sampler list;
  p_trials : int;
  p_seed : int;
  p_shard_trials : int;
  p_round_shards : int;
  p_max_reboots : int;
  p_watchdog_scale : int;
  p_ci_width : float option;
  p_fuel : int;
}

let default_runtimes =
  [
    Toolchain.Swapram_cache Swapram.Config.default_options;
    Toolchain.Block_cache Blockcache.Config.default_options;
    Toolchain.Checkpoint_runtime Swapram.Checkpoint.default_options;
  ]

let default_plan =
  {
    p_benchmarks = [ Workloads.Suite.journal; Workloads.Suite.crc ];
    p_runtimes = default_runtimes;
    p_samplers = all_samplers;
    p_trials = 200;
    p_seed = 1;
    p_shard_trials = 25;
    p_round_shards = 16;
    p_max_reboots = 1000;
    p_watchdog_scale = 16;
    p_ci_width = None;
    p_fuel = 500_000_000;
  }

(* ------------------------------------------------------------------ *)
(* Tallies: a commutative-monoid summary of a batch of trials, folded
   strictly in shard order so float sums are reproducible. *)

type tally = {
  t_trials : int;
  t_consistent : int;
  t_completed : int;
  t_mismatches : int;
  t_fault_escapes : int;
  t_livelocks : int;
  t_reboots : int;
  t_torn : int;
  t_reboots_completed : int;
  t_cycles_completed : float;
  t_energy_completed : float;
}

let tally_zero =
  {
    t_trials = 0;
    t_consistent = 0;
    t_completed = 0;
    t_mismatches = 0;
    t_fault_escapes = 0;
    t_livelocks = 0;
    t_reboots = 0;
    t_torn = 0;
    t_reboots_completed = 0;
    t_cycles_completed = 0.;
    t_energy_completed = 0.;
  }

let tally_add a b =
  {
    t_trials = a.t_trials + b.t_trials;
    t_consistent = a.t_consistent + b.t_consistent;
    t_completed = a.t_completed + b.t_completed;
    t_mismatches = a.t_mismatches + b.t_mismatches;
    t_fault_escapes = a.t_fault_escapes + b.t_fault_escapes;
    t_livelocks = a.t_livelocks + b.t_livelocks;
    t_reboots = a.t_reboots + b.t_reboots;
    t_torn = a.t_torn + b.t_torn;
    t_reboots_completed = a.t_reboots_completed + b.t_reboots_completed;
    t_cycles_completed = a.t_cycles_completed +. b.t_cycles_completed;
    t_energy_completed = a.t_energy_completed +. b.t_energy_completed;
  }

let tally_of_report (r : Injector.report) =
  let completed, consistent, mismatch, fault, livelock =
    match r.Injector.r_verdict with
    | Injector.Pass -> (1, 1, 0, 0, 0)
    | Injector.State_mismatch _ | Injector.Return_mismatch _ ->
        (1, 0, 1, 0, 0)
    | Injector.Fault_escape _ -> (0, 0, 0, 1, 0)
    | Injector.Livelock _ -> (0, 0, 0, 0, 1)
    | Injector.Build_failed msg ->
        (* the golden build of the same configuration succeeded in the
           parent, so a per-trial build failure is a harness bug, not
           a data point *)
        failwith ("campaign: trial build failed: " ^ msg)
  in
  {
    t_trials = 1;
    t_consistent = consistent;
    t_completed = completed;
    t_mismatches = mismatch;
    t_fault_escapes = fault;
    t_livelocks = livelock;
    t_reboots = r.Injector.r_reboots;
    t_torn = r.Injector.r_torn_reboots;
    t_reboots_completed = (if completed = 1 then r.Injector.r_reboots else 0);
    t_cycles_completed =
      (if completed = 1 then float_of_int r.Injector.r_cycles else 0.);
    t_energy_completed = (if completed = 1 then r.Injector.r_energy_nj else 0.);
  }

(* ------------------------------------------------------------------ *)
(* Wilson score interval: the small-sample-honest confidence interval
   for a binomial rate (never escapes [0,1], sane at k=0 and k=n). *)

let wilson ?(z = 1.96) n k =
  if n <= 0 then (0., 1.)
  else begin
    let nf = float_of_int n in
    let p = float_of_int k /. nf in
    let z2 = z *. z in
    let denom = 1. +. (z2 /. nf) in
    let center = p +. (z2 /. (2. *. nf)) in
    let half = z *. sqrt (((p *. (1. -. p)) +. (z2 /. (4. *. nf))) /. nf) in
    (max 0. ((center -. half) /. denom), min 1. ((center +. half) /. denom))
  end

(* ------------------------------------------------------------------ *)
(* Cells and results *)

type cell = {
  cl_benchmark : string;
  cl_runtime : string;
  cl_sampler : sampler;
  cl_label : string;
}

type cell_result = {
  cr_cell : cell;
  cr_golden : Oracle.golden;
  cr_tally : tally;
  cr_shards_done : int;
  cr_shards_total : int;
  cr_stopped_early : bool;
  cr_consistency_ci : float * float;
  cr_progress_ci : float * float;
}

type outcome = {
  o_seed : int;
  o_trials : int;
  o_cells : cell_result list;
  o_wall_seconds : float;
  o_shards_computed : int;
  o_shards_cached : int;  (* replayed from the progress checkpoint *)
}

let cells_of plan =
  List.concat_map
    (fun (b : Workloads.Bench_def.t) ->
      List.concat_map
        (fun rt ->
          List.map
            (fun s ->
              let runtime = Toolchain.caching_name rt in
              ( b,
                rt,
                {
                  cl_benchmark = b.Workloads.Bench_def.name;
                  cl_runtime = runtime;
                  cl_sampler = s;
                  cl_label =
                    Printf.sprintf "%s/%s/%s" b.Workloads.Bench_def.name
                      runtime (sampler_name s);
                } ))
            plan.p_samplers)
        plan.p_runtimes)
    plan.p_benchmarks

(* ------------------------------------------------------------------ *)
(* Progress checkpoint file.

   Layout: a magic line, a fingerprint line, then marshalled
   [(label, shard, lo, hi, tally)] entries. The fingerprint covers
   everything that determines a shard's tally — seed, shard size,
   watchdogs, fuel, and the cell grid — but *not* the trial count or
   the CI width, so a finished campaign can be extended (more trials)
   or re-aggregated (tighter interval) without recomputation; partial
   last shards are keyed by their [lo, hi) trial range and simply miss
   the cache when the range changes. A half-written trailing entry
   (campaign killed mid-append) is dropped on load and the file is
   rewritten compacted, so appends always land on a clean tail. *)

let progress_magic = "swapram-campaign-progress/1"

let fingerprint plan =
  String.concat ";"
    ([
       "v1";
       string_of_int plan.p_seed;
       string_of_int plan.p_shard_trials;
       string_of_int plan.p_max_reboots;
       string_of_int plan.p_watchdog_scale;
       string_of_int plan.p_fuel;
     ]
    @ List.map
        (fun (b : Workloads.Bench_def.t) -> "b:" ^ b.Workloads.Bench_def.name)
        plan.p_benchmarks
    @ List.map (fun r -> "r:" ^ Toolchain.caching_name r) plan.p_runtimes
    @ List.map (fun s -> "s:" ^ sampler_name s) plan.p_samplers)

type shard_key = string * int * int * int (* label, shard, lo, hi *)

let write_entry oc (key : shard_key) (t : tally) =
  Marshal.to_channel oc (key, t) []

let open_progress path plan =
  let fp = fingerprint plan in
  let cache : (shard_key, tally) Hashtbl.t = Hashtbl.create 64 in
  match path with
  | None -> Ok (cache, None)
  | Some path ->
      if Sys.file_exists path then begin
        let ic = open_in_bin path in
        let header =
          try
            let magic = input_line ic in
            let fp' = input_line ic in
            Ok (magic, fp')
          with End_of_file -> Error "truncated header"
        in
        match header with
        | Error e ->
            close_in ic;
            Error (Printf.sprintf "progress file %s: %s" path e)
        | Ok (magic, _) when magic <> progress_magic ->
            close_in ic;
            Error
              (Printf.sprintf "progress file %s: not a campaign progress file"
                 path)
        | Ok (_, fp') when fp' <> fp ->
            close_in ic;
            Error
              (Printf.sprintf
                 "progress file %s was recorded by a different campaign \
                  configuration"
                 path)
        | Ok _ ->
            (try
               while true do
                 let (key : shard_key), (t : tally) =
                   Marshal.from_channel ic
                 in
                 Hashtbl.replace cache key t
               done
             with End_of_file | Failure _ -> ());
            close_in ic;
            (* rewrite compacted so a torn trailing entry from a killed
               campaign never sits in front of future appends *)
            let oc =
              open_out_gen
                [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
                0o644 path
            in
            output_string oc (progress_magic ^ "\n" ^ fp ^ "\n");
            Hashtbl.iter (fun k t -> write_entry oc k t) cache;
            flush oc;
            Ok (cache, Some oc)
      end
      else begin
        let oc =
          open_out_gen
            [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
            0o644 path
        in
        output_string oc (progress_magic ^ "\n" ^ fp ^ "\n");
        flush oc;
        Ok (cache, Some oc)
      end

(* ------------------------------------------------------------------ *)
(* Running *)

exception Campaign_error of string

let pool_describe = function
  | Parallel.Spawned { pid } -> Printf.sprintf "worker %d spawned" pid
  | Parallel.Dispatched { pid; task } ->
      Printf.sprintf "worker %d took shard task %d" pid task
  | Parallel.Completed { pid; task } ->
      Printf.sprintf "worker %d finished shard task %d" pid task
  | Parallel.Died { pid; task; attempt } ->
      Printf.sprintf "worker %d died on shard task %d (attempt %d)" pid task
        attempt
  | Parallel.Timed_out { pid; task } ->
      Printf.sprintf "worker %d timed out on shard task %d" pid task
  | Parallel.Requeued { task; attempt; delay } ->
      Printf.sprintf "shard task %d re-queued (attempt %d, %.2fs backoff)" task
        attempt delay

let run_shard plan config cell golden ~watchdog_cycles ~cell_idx ~lo ~hi =
  let t = ref tally_zero in
  for trial = lo to hi - 1 do
    let seed = trial_seed ~seed:plan.p_seed ~cell:cell_idx ~trial in
    let schedule = schedule_for cell.cl_sampler golden seed in
    let r =
      Injector.run_against ~max_reboots:plan.p_max_reboots ~watchdog_cycles
        ~fuel:plan.p_fuel ~golden config schedule
    in
    t := tally_add !t (tally_of_report r)
  done;
  !t

let run ?(jobs = 1) ?chunk ?task_timeout ?(progress = Progress.null)
    ?progress_file ?chaos plan =
  (* Chunked dispatch batches several shards per pipe round trip. A
     [task_timeout] is a per-task deadline, so when one is set and no
     explicit chunk width was requested, stay at one shard per task —
     otherwise a chunk of k shards would need k deadlines' worth of
     budget and time out spuriously. *)
  let chunk =
    match (chunk, task_timeout) with
    | Some c, _ -> Some c
    | None, Some _ -> Some 1
    | None, None -> None
  in
  if plan.p_trials <= 0 then Error "campaign: trials must be positive"
  else if plan.p_shard_trials <= 0 then
    Error "campaign: shard size must be positive"
  else if plan.p_round_shards <= 0 then
    Error "campaign: round size must be positive"
  else if plan.p_benchmarks = [] || plan.p_runtimes = [] || plan.p_samplers = []
  then Error "campaign: empty cell grid"
  else begin
    let cells = cells_of plan in
    match open_progress progress_file plan with
    | Error e -> Error e
    | Ok (cache, append) ->
        let t0 = Unix.gettimeofday () in
        progress
          (Progress.Campaign_started
             { cells = List.length cells; trials = plan.p_trials });
        (* High-frequency dispatch/completion traffic goes out as
           Worker_state (dashboards render it, plain sinks drop it);
           the rarer lifecycle events additionally keep their
           historical one-line Pool_event form. *)
        let on_pool ev =
          match ev with
          | Parallel.Dispatched { pid; task } ->
              progress
                (Progress.Worker_state { pid; state = Progress.W_busy; task })
          | Parallel.Completed { pid; task } ->
              progress
                (Progress.Worker_state { pid; state = Progress.W_idle; task })
          | Parallel.Spawned { pid } ->
              progress
                (Progress.Worker_state
                   { pid; state = Progress.W_spawned; task = -1 });
              progress (Progress.Pool_event (pool_describe ev))
          | Parallel.Died { pid; task; _ } ->
              progress
                (Progress.Worker_state { pid; state = Progress.W_died; task });
              progress (Progress.Pool_event (pool_describe ev))
          | Parallel.Timed_out { pid; task } ->
              progress
                (Progress.Worker_state
                   { pid; state = Progress.W_timed_out; task });
              progress (Progress.Pool_event (pool_describe ev))
          | Parallel.Requeued _ ->
              progress (Progress.Pool_event (pool_describe ev))
        in
        let shard_range s =
          let lo = s * plan.p_shard_trials in
          (lo, min plan.p_trials (lo + plan.p_shard_trials))
        in
        let shards_computed = ref 0 and shards_cached = ref 0 in
        let run_cell cell_idx (bench, rt, cell) =
          Observe.Telemetry.with_span ~cat:"campaign"
            ("cell:" ^ cell.cl_label)
          @@ fun () ->
          let config =
            { (Toolchain.default_config bench) with Toolchain.caching = rt }
          in
          match
            Observe.Telemetry.with_span ~cat:"campaign" "golden"
              ~args:[ ("cell", Json.String cell.cl_label) ] (fun () ->
                Oracle.golden ~fuel:plan.p_fuel config)
          with
          | Error e ->
              raise
                (Campaign_error
                   (Printf.sprintf "%s: golden run failed: %s" cell.cl_label e))
          | Ok golden ->
              progress
                (Progress.Golden_ready
                   { cell = cell.cl_label; cycles = golden.Oracle.g_cycles });
              let watchdog_cycles =
                max 2_000_000
                  (golden.Oracle.g_cycles * plan.p_watchdog_scale)
              in
              let shards_total =
                (plan.p_trials + plan.p_shard_trials - 1)
                / plan.p_shard_trials
              in
              let tallies = Array.make shards_total tally_zero in
              let key s =
                let lo, hi = shard_range s in
                (cell.cl_label, s, lo, hi)
              in
              let stop = ref None in
              let next = ref 0 in
              while !stop = None && !next < shards_total do
                let round_end =
                  min shards_total (!next + plan.p_round_shards)
                in
                let idxs = List.init (round_end - !next) (fun i -> !next + i) in
                let work =
                  List.filter (fun s -> not (Hashtbl.mem cache (key s))) idxs
                in
                shards_computed := !shards_computed + List.length work;
                shards_cached :=
                  !shards_cached + List.length idxs - List.length work;
                Observe.Telemetry.counter "campaign.shards_computed"
                  !shards_computed;
                Observe.Telemetry.counter "campaign.shards_cached"
                  !shards_cached;
                let computed =
                  Parallel.map_chunked ~jobs ?chunk ?task_timeout
                    ~on_event:on_pool
                    (fun s ->
                      (match chaos with
                      | Some f -> f ~cell:cell.cl_label ~shard:s
                      | None -> ());
                      let lo, hi = shard_range s in
                      run_shard plan config cell golden ~watchdog_cycles
                        ~cell_idx ~lo ~hi)
                    work
                in
                List.iter2
                  (fun s t ->
                    Hashtbl.replace cache (key s) t;
                    match append with
                    | Some oc -> write_entry oc (key s) t
                    | None -> ())
                  work computed;
                (match append with Some oc -> flush oc | None -> ());
                List.iter
                  (fun s ->
                    let t = Hashtbl.find cache (key s) in
                    tallies.(s) <- t;
                    progress
                      (Progress.Shard_done
                         {
                           cell = cell.cl_label;
                           shard = s;
                           shards = shards_total;
                           trials_done =
                             (s * plan.p_shard_trials) + t.t_trials;
                           trials = plan.p_trials;
                           cached = not (List.memq s work);
                         }))
                  idxs;
                (match plan.p_ci_width with
                | None -> ()
                | Some w ->
                    let acc = ref tally_zero in
                    (try
                       for s = 0 to round_end - 1 do
                         acc := tally_add !acc tallies.(s);
                         let lo, hi =
                           wilson !acc.t_trials !acc.t_consistent
                         in
                         if hi -. lo <= w then begin
                           stop := Some s;
                           raise Exit
                         end
                       done
                     with Exit -> ()));
                next := round_end
              done;
              let used =
                match !stop with Some s -> s + 1 | None -> shards_total
              in
              let tally = ref tally_zero in
              for s = 0 to used - 1 do
                tally := tally_add !tally tallies.(s)
              done;
              let tally = !tally in
              progress
                (Progress.Cell_done
                   {
                     cell = cell.cl_label;
                     trials = tally.t_trials;
                     consistent = tally.t_consistent;
                     stopped_early = !stop <> None;
                   });
              {
                cr_cell = cell;
                cr_golden = golden;
                cr_tally = tally;
                cr_shards_done = used;
                cr_shards_total = shards_total;
                cr_stopped_early = !stop <> None;
                cr_consistency_ci =
                  wilson tally.t_trials tally.t_consistent;
                cr_progress_ci = wilson tally.t_trials tally.t_completed;
              }
        in
        let finish () =
          match append with Some oc -> close_out oc | None -> ()
        in
        let result =
          try
            let cell_results = List.mapi run_cell cells in
            let trials =
              List.fold_left
                (fun a c -> a + c.cr_tally.t_trials)
                0 cell_results
            in
            let outcome =
              {
                o_seed = plan.p_seed;
                o_trials = trials;
                o_cells = cell_results;
                o_wall_seconds = Unix.gettimeofday () -. t0;
                o_shards_computed = !shards_computed;
                o_shards_cached = !shards_cached;
              }
            in
            progress
              (Progress.Campaign_done
                 {
                   cells = List.length cells;
                   trials;
                   seconds = outcome.o_wall_seconds;
                 });
            Ok outcome
          with
          | Campaign_error msg -> Error msg
          | Parallel.Worker_failed msg ->
              Error ("campaign: worker pool failed: " ^ msg)
          | Failure msg -> Error ("campaign: " ^ msg)
        in
        finish ();
        result
  end

(* ------------------------------------------------------------------ *)
(* Derived statistics, rendering *)

let rate num den = if den = 0 then 0. else float_of_int num /. float_of_int den

let mean_reboots_to_completion t =
  if t.t_completed = 0 then nan
  else float_of_int t.t_reboots_completed /. float_of_int t.t_completed

let cycle_overhead cr =
  if cr.cr_tally.t_completed = 0 then nan
  else
    cr.cr_tally.t_cycles_completed
    /. float_of_int cr.cr_tally.t_completed
    /. float_of_int cr.cr_golden.Oracle.g_cycles

let energy_overhead cr =
  if cr.cr_tally.t_completed = 0 then nan
  else
    cr.cr_tally.t_energy_completed
    /. float_of_int cr.cr_tally.t_completed
    /. cr.cr_golden.Oracle.g_energy_nj

let json_float f = if Float.is_nan f then Json.Null else Json.Float f

let cell_to_json cr =
  let t = cr.cr_tally in
  let clo, chi = cr.cr_consistency_ci in
  let plo, phi = cr.cr_progress_ci in
  Json.Obj
    [
      ("benchmark", Json.String cr.cr_cell.cl_benchmark);
      ("runtime", Json.String cr.cr_cell.cl_runtime);
      ("sampler", Json.String (sampler_name cr.cr_cell.cl_sampler));
      ("trials", Json.Int t.t_trials);
      ("consistent", Json.Int t.t_consistent);
      ("completed", Json.Int t.t_completed);
      ("mismatches", Json.Int t.t_mismatches);
      ("fault_escapes", Json.Int t.t_fault_escapes);
      ("livelocks", Json.Int t.t_livelocks);
      ("reboots", Json.Int t.t_reboots);
      ("torn_reboots", Json.Int t.t_torn);
      ("consistency_rate", Json.Float (rate t.t_consistent t.t_trials));
      ("consistency_ci", Json.List [ Json.Float clo; Json.Float chi ]);
      ("progress_rate", Json.Float (rate t.t_completed t.t_trials));
      ("progress_ci", Json.List [ Json.Float plo; Json.Float phi ]);
      ("mean_reboots_to_completion", json_float (mean_reboots_to_completion t));
      ("cycle_overhead", json_float (cycle_overhead cr));
      ("energy_overhead", json_float (energy_overhead cr));
      ( "golden",
        Json.Obj
          [
            ("cycles", Json.Int cr.cr_golden.Oracle.g_cycles);
            ("energy_nj", Json.Float cr.cr_golden.Oracle.g_energy_nj);
            ("accesses", Json.Int cr.cr_golden.Oracle.g_accesses);
          ] );
      ("shards_done", Json.Int cr.cr_shards_done);
      ("shards_total", Json.Int cr.cr_shards_total);
      ("stopped_early", Json.Bool cr.cr_stopped_early);
    ]

(* Wall-clock time is deliberately excluded: the JSON report of a
   campaign is a pure function of its plan, so CI can assert
   determinism by diffing two runs byte for byte. *)
let to_json outcome =
  Json.Obj
    [
      ("seed", Json.Int outcome.o_seed);
      ("trials", Json.Int outcome.o_trials);
      ("cells", Json.List (List.map cell_to_json outcome.o_cells));
    ]

let table outcome =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-38s %7s %9s %15s %9s %8s %7s %7s\n" "cell" "trials"
       "consist" "95% CI" "progress" "reb/done" "cyc x" "nrg x");
  List.iter
    (fun cr ->
      let t = cr.cr_tally in
      let clo, chi = cr.cr_consistency_ci in
      let fmt_x v = if Float.is_nan v then "-" else Printf.sprintf "%.2f" v in
      Buffer.add_string b
        (Printf.sprintf "%-38s %7d %9.3f [%5.3f,%5.3f] %9.3f %8s %7s %7s%s\n"
           cr.cr_cell.cl_label t.t_trials
           (rate t.t_consistent t.t_trials)
           clo chi
           (rate t.t_completed t.t_trials)
           (fmt_x (mean_reboots_to_completion t))
           (fmt_x (cycle_overhead cr))
           (fmt_x (energy_overhead cr))
           (if cr.cr_stopped_early then " *" else "")))
    outcome.o_cells;
  Buffer.add_string b
    (Printf.sprintf "%d trials total, seed %d%s\n" outcome.o_trials
       outcome.o_seed
       (if List.exists (fun c -> c.cr_stopped_early) outcome.o_cells then
          "  (* = early stop below CI width)"
        else ""));
  Buffer.add_string b
    (Printf.sprintf "shards: %d computed, %d replayed from checkpoint\n"
       outcome.o_shards_computed outcome.o_shards_cached);
  Buffer.contents b
