module Memory = Msp430.Memory

(* Power-failure schedules (paper §1/§2.2: batteryless deployments
   lose power constantly, at arbitrary points).

   A schedule is compiled into a stream of {!Msp430.Memory.power_trigger}
   values; the injector arms one trigger per life (boot-to-outage
   interval) and pulls the next when the power dies. The stream
   yields [None] when the schedule has no more outages — the run then
   continues to completion on stable power.

   The adversarial mode does not need cycle-exact profiling: it arms
   region triggers that fire on the n-th counted access *inside a
   runtime-critical address window* (the miss handler's reserved
   region, the memcpy region, the relocation/redirection metadata
   tables). Sweeping n walks the failure point instruction by
   instruction through the handler, through the middle of a copy
   loop, between the two halves of a metadata update — and, because
   reboot's restore writes hit the same metadata windows, through the
   reboot path itself. *)

type t =
  | Periodic of int
      (* an outage every n counted accesses — the fixed energy-burst
         model of the intermittent-computing literature *)
  | Random of { seed : int; min_gap : int; max_gap : int }
      (* seeded uniform bursts in [min_gap, max_gap] *)
  | Gaps of int list
      (* explicit burst lengths; stable power afterwards *)
  | Adversarial of { depths : int list }
      (* for every runtime-critical window and every depth d, one
         life that dies on the d-th access inside that window *)
  | Bursty of { seed : int; calm_gap : int; burst_gap : int; burst_len : int }
      (* the harvested-energy pattern of RF-powered deployments: a
         long calm interval (uniform around [calm_gap]) charges the
         capacitor, then a burst of [burst_len] brown-outs in quick
         succession (uniform around [burst_gap]) drains it *)
  | Near_eviction of { seed : int; max_depth : int; fallback_gap : int }
      (* adversarial sampler for Monte-Carlo campaigns: each life
         dies on a seeded-random access depth (1..[max_depth]) inside
         a seeded-random runtime-critical window. Against a build
         with no critical windows it degenerates to uniform gaps
         around [fallback_gap]. *)

let default_depths = [ 1; 2; 3; 5; 8; 13; 21; 34; 55 ]

let adversarial = Adversarial { depths = default_depths }

let describe = function
  | Periodic n -> Printf.sprintf "periodic/%d" n
  | Random { seed; min_gap; max_gap } ->
      Printf.sprintf "random/%d..%d seed %d" min_gap max_gap seed
  | Gaps gaps ->
      Printf.sprintf "gaps/%s"
        (String.concat "," (List.map string_of_int gaps))
  | Adversarial { depths } ->
      Printf.sprintf "adversarial/%d depths" (List.length depths)
  | Bursty { seed; calm_gap; burst_gap; burst_len } ->
      Printf.sprintf "bursty/%d+%dx%d seed %d" calm_gap burst_len burst_gap
        seed
  | Near_eviction { seed; max_depth; fallback_gap = _ } ->
      Printf.sprintf "near-eviction/depth<=%d seed %d" max_depth seed

(* Runtime-critical address windows of the system under test, named
   for reporting. The injector derives them from the installed
   runtime's table addresses. *)
type window = { w_name : string; w_lo : int; w_hi : int }

type stream = unit -> Memory.power_trigger option

(* Compile a schedule to a trigger stream against the given windows.
   Streams are stateful; build a fresh one per injected run. *)
let stream schedule (windows : window list) : stream =
  match schedule with
  | Periodic n -> fun () -> Some (Memory.After_accesses n)
  | Random { seed; min_gap; max_gap } ->
      let state = Random.State.make [| seed; 0x5eed |] in
      let span = max 1 (max_gap - min_gap + 1) in
      fun () ->
        Some (Memory.After_accesses (min_gap + Random.State.int state span))
  | Gaps gaps ->
      let remaining = ref gaps in
      fun () -> (
        match !remaining with
        | [] -> None
        | g :: rest ->
            remaining := rest;
            Some (Memory.After_accesses g))
  | Adversarial { depths } ->
      let plan =
        List.concat_map
          (fun w ->
            List.map
              (fun d ->
                Memory.On_region_access { lo = w.w_lo; hi = w.w_hi; skip = d })
              depths)
          windows
      in
      let remaining = ref plan in
      fun () -> (
        match !remaining with
        | [] -> None
        | t :: rest ->
            remaining := rest;
            Some t)
  | Bursty { seed; calm_gap; burst_gap; burst_len } ->
      let state = Random.State.make [| seed; 0xb0b5 |] in
      let uniform_around g = max 1 ((g / 2) + Random.State.int state (max 1 g)) in
      let in_burst = ref 0 in
      fun () ->
        if !in_burst > 0 then begin
          decr in_burst;
          Some (Memory.After_accesses (uniform_around burst_gap))
        end
        else begin
          in_burst := max 0 (burst_len - 1);
          Some (Memory.After_accesses (uniform_around calm_gap))
        end
  | Near_eviction { seed; max_depth; fallback_gap } ->
      let state = Random.State.make [| seed; 0xeb1c |] in
      let windows = Array.of_list windows in
      fun () ->
        if Array.length windows = 0 then
          Some
            (Memory.After_accesses
               (max 1
                  ((fallback_gap / 2)
                  + Random.State.int state (max 1 fallback_gap))))
        else begin
          let w = windows.(Random.State.int state (Array.length windows)) in
          let skip = 1 + Random.State.int state (max 1 max_depth) in
          Some (Memory.On_region_access { lo = w.w_lo; hi = w.w_hi; skip })
        end
