(** Crash-consistency oracle: the application-visible persistent
    state that must be identical between an interrupted run and the
    uninterrupted golden run — main's return value plus a digest of
    the application's own data items (its FRAM globals).

    Runtime-owned metadata items ([__sr_*] / [__bb_*]) are excluded:
    which functions happen to be cached at halt legitimately differs.
    UART output is excluded from the verdict because output has
    at-least-once semantics under power failure (replayed windows
    re-print); the injector still records it. *)

val runtime_owned : string -> bool
(** Item names belonging to a caching runtime rather than the
    application. *)

val app_data_items : Masm.Assembler.t -> Masm.Assembler.item_info list

val app_state_digest : image:Masm.Assembler.t -> Msp430.Memory.t -> int
(** FNV-1a over the application data items' current bytes (uncounted
    observer reads). *)

(** The uninterrupted reference execution. *)
type golden = {
  g_return : int;
  g_state : int;  (** {!app_state_digest} at halt *)
  g_uart : string;
  g_instructions : int;
  g_misses : int;  (** caching-runtime misses; 0 for baseline *)
  g_words_copied : int;
      (** words the runtime moved: cache copy-ins, or persisted
          snapshot words for the checkpoint runtime *)
  g_accesses : int;
      (** counted memory accesses — the clock power triggers are
          scheduled against, so campaign samplers scale their gap
          distributions from this *)
  g_cycles : int;  (** total simulated cycles *)
  g_energy_nj : float;
}

val capture : Experiments.Toolchain.prepared -> golden
(** Read the oracle state off a system that has halted. *)

val golden :
  ?fuel:int -> Experiments.Toolchain.config -> (golden, string) result
(** Build and run a fresh instance of the configuration to completion
    on stable power. *)
