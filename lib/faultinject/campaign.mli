(** Monte-Carlo fault-injection campaigns: the statistical wing of the
    fault-injection harness. A campaign runs a grid of cells —
    benchmark x runtime x power-failure sampler — with [trials]
    independent seeded injected runs per cell, sharded across the
    {!Experiments.Parallel} worker pool, and aggregates per-cell
    survivability statistics (forward-progress rate, crash-consistency
    rate, mean reboots-to-completion, cycle/energy overhead over
    golden) with Wilson-score confidence intervals.

    Determinism contract: a campaign outcome is a pure function of its
    {!plan}. Per-trial seeds derive from (campaign seed, cell index,
    trial index), shard tallies are folded in shard order, and early
    stopping picks the first shard index at which the cumulative CI
    narrows below the configured width — so serial and parallel runs,
    and fresh and resumed runs, produce byte-identical reports. *)

(** {2 Samplers} *)

type sampler =
  | Uniform  (** uniform gaps in [accesses/100, accesses/5] *)
  | Bursty
      (** harvested-energy pattern: long calm charge interval, then a
          burst of brown-outs in quick succession *)
  | Near_eviction
      (** adversarial: random access depths inside the runtime's
          critical windows (miss handler, metadata, snapshot slots) *)

val all_samplers : sampler list
val sampler_name : sampler -> string
val sampler_of_string : string -> sampler option

val schedule_for : sampler -> Oracle.golden -> int -> Schedule.t
(** [schedule_for sampler golden seed]: the sampler's gap
    distributions scale with the golden run's counted accesses. *)

val trial_seed : seed:int -> cell:int -> trial:int -> int
(** Splitmix64-chained per-trial seed — deterministic across runs and
    worker layouts. *)

(** {2 Plans} *)

type plan = {
  p_benchmarks : Workloads.Bench_def.t list;
  p_runtimes : Experiments.Toolchain.caching list;
  p_samplers : sampler list;
  p_trials : int;  (** per cell *)
  p_seed : int;
  p_shard_trials : int;  (** trials per shard (dispatch unit) *)
  p_round_shards : int;
      (** shards evaluated between early-stop checks; fixed
          independently of [jobs] so parallel runs aggregate exactly
          the shards a serial run would *)
  p_max_reboots : int;  (** livelock watchdog, per trial *)
  p_watchdog_scale : int;
      (** cycle watchdog per trial: [max 2e6 (golden cycles * scale)] *)
  p_ci_width : float option;
      (** stop a cell once the Wilson interval on its consistency rate
          is narrower than this; [None] runs every trial *)
  p_fuel : int;
}

val default_runtimes : Experiments.Toolchain.caching list
(** The three systems under test: SwapRAM, the block cache, and the
    checkpointing runtime, each with default options. *)

val default_plan : plan
(** journal + crc, {!default_runtimes}, all samplers, 200 trials/cell,
    seed 1, 25-trial shards, no early stop. *)

(** {2 Tallies and statistics} *)

type tally = {
  t_trials : int;
  t_consistent : int;  (** verdict [Pass] *)
  t_completed : int;  (** reached halt: [Pass] or a mismatch *)
  t_mismatches : int;
  t_fault_escapes : int;
  t_livelocks : int;
  t_reboots : int;
  t_torn : int;
  t_reboots_completed : int;  (** reboots summed over completed trials *)
  t_cycles_completed : float;
  t_energy_completed : float;
}

val tally_zero : tally
val tally_add : tally -> tally -> tally

val wilson : ?z:float -> int -> int -> float * float
(** [wilson n k]: Wilson score interval for [k] successes in [n]
    trials ([z]
    defaults to 1.96, the two-sided 95% quantile). [(0, 1)] when
    [n = 0]. *)

(** {2 Results} *)

type cell = {
  cl_benchmark : string;
  cl_runtime : string;
  cl_sampler : sampler;
  cl_label : string;  (** "benchmark/runtime/sampler" *)
}

type cell_result = {
  cr_cell : cell;
  cr_golden : Oracle.golden;
  cr_tally : tally;  (** aggregated over shards [0 .. shards_done-1] *)
  cr_shards_done : int;
  cr_shards_total : int;
  cr_stopped_early : bool;
  cr_consistency_ci : float * float;
  cr_progress_ci : float * float;
}

type outcome = {
  o_seed : int;
  o_trials : int;  (** total trials aggregated across cells *)
  o_cells : cell_result list;
  o_wall_seconds : float;  (** host time; excluded from {!to_json} *)
  o_shards_computed : int;
      (** shard tallies actually evaluated this run; with
          [o_shards_cached], host-side provenance only — excluded from
          {!to_json} so fresh and resumed runs stay byte-identical *)
  o_shards_cached : int;  (** shards replayed from the progress file *)
}

val fingerprint : plan -> string
(** The progress-file fingerprint: every plan field that determines a
    shard's tally (also stamped into telemetry run manifests). *)

val run :
  ?jobs:int ->
  ?chunk:int ->
  ?task_timeout:float ->
  ?progress:Observe.Progress.sink ->
  ?progress_file:string ->
  ?chaos:(cell:string -> shard:int -> unit) ->
  plan ->
  (outcome, string) result
(** Execute the campaign. [jobs <= 1] runs serially in-process;
    higher values shard across {!Experiments.Parallel.map_chunked},
    which batches several shards per pipe round trip ([chunk]
    overrides the dynamic width; one shard per task whenever
    [task_timeout] is set without an explicit [chunk], since the
    deadline is per task) and respawns crashed workers, re-queuing
    their chunks, so a killed worker costs wall-clock time but never
    data. Results are identical for every chunk width.

    [progress_file] names an append-mode progress checkpoint: every
    finished shard's tally is persisted, and a re-run (or an extended
    run with more trials) replays finished shards from the file
    instead of recomputing them. The file is fingerprinted by every
    plan field that determines shard contents; a mismatch is an
    [Error], not a silent recompute. [chaos] is a test hook invoked at
    the start of every shard task (in the worker, when forked).

    Golden runs are computed once per cell in the calling process.
    [Error] on a golden build/run failure, a fingerprint mismatch, or
    an exhausted worker-retry budget. *)

val mean_reboots_to_completion : tally -> float
(** [nan] when no trial completed. *)

val cycle_overhead : cell_result -> float
(** Mean cycles of completed trials over golden cycles; [nan] when no
    trial completed. *)

val energy_overhead : cell_result -> float

val to_json : outcome -> Observe.Json.t
(** Deterministic report (no wall-clock): byte-identical across
    serial, parallel and resumed runs of the same plan. *)

val table : outcome -> string
(** Human-readable per-cell summary. *)
