(** Power-failure schedules: when, during an injected run, the supply
    dies. A schedule compiles into a stream of
    {!Msp430.Memory.power_trigger} values — one armed per life; the
    stream yields [None] once the schedule has no more outages and
    the run finishes on stable power. *)

type t =
  | Periodic of int
      (** an outage every n counted accesses — the fixed energy-burst
          model of the intermittent-computing literature *)
  | Random of { seed : int; min_gap : int; max_gap : int }
      (** seeded uniform burst lengths in [[min_gap, max_gap]] *)
  | Gaps of int list
      (** explicit burst lengths; stable power afterwards *)
  | Adversarial of { depths : int list }
      (** for every runtime-critical window (miss handler, memcpy,
          relocation/redirection tables) and every depth d, one life
          that dies on the d-th counted access inside that window —
          walking the failure point through the handler, mid-copy,
          between metadata half-updates, and through reboot's own
          restore writes *)
  | Bursty of { seed : int; calm_gap : int; burst_gap : int; burst_len : int }
      (** the harvested-energy pattern of RF-powered deployments: one
          long calm interval (uniform around [calm_gap] counted
          accesses), then [burst_len] brown-outs in quick succession
          (uniform around [burst_gap]), repeating *)
  | Near_eviction of { seed : int; max_depth : int; fallback_gap : int }
      (** adversarial Monte-Carlo sampler: each life dies on a
          seeded-random access depth (1..[max_depth]) inside a
          seeded-random runtime-critical window; degenerates to
          uniform gaps around [fallback_gap] when the build has no
          critical windows *)

val default_depths : int list

val adversarial : t
(** [Adversarial] over {!default_depths}. *)

val describe : t -> string

(** A runtime-critical address window of the system under test. *)
type window = { w_name : string; w_lo : int; w_hi : int }

type stream = unit -> Msp430.Memory.power_trigger option

val stream : t -> window list -> stream
(** Compile to a stateful trigger stream; build a fresh one per
    injected run. *)
