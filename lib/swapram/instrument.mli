(** SwapRAM's compile-time pass (paper §3.2, Fig. 2/3).

    Rewrites every call to a cacheable function into the dynamic
    redirection protocol (active-counter increment, funcId store,
    indirect call through the redirection entry), converts absolute
    intra-function branches into relocation-entry branches after an
    intermediate assembly fixes the layout, and emits the runtime
    metadata tables and the reserved FRAM runtime regions. *)

exception Error of string

type func_meta = {
  fid : int;  (** index into the redirection/active/function tables *)
  fm_name : string;
  mutable fm_size : int;
      (** instrumented code bytes (from the intermediate assembly),
          for profile construction *)
  mutable reloc_start : int;  (** first relocation entry owned *)
  mutable reloc_count : int;
}

type manifest = {
  funcs : func_meta array;
  fid_of_name : (string, int) Hashtbl.t;
  num_relocs : int;
  handler_bytes : int;
      (** reserved FRAM size of the modeled miss handler; scales with
          the number of relocatable branches as measured in §5.2 *)
  memcpy_bytes : int;
  metadata_bytes : int;  (** total size of the metadata tables *)
  callees : int list array;
      (** static call graph between cacheable functions (caller fid ->
          callee fids, call-site order), used by the prefetch
          extension *)
  pinned_anchors : (int * int) list;
      (** profile-guided pins: [(fid, sram_anchor)] in pin order,
          packed from the cache base. Call sites to these functions
          are direct CALLs to the anchor (no redirection protocol);
          the runtime copies each in once at install/reboot. Empty
          unless {!Config.options.pgo} is set. *)
}

val fid_of : manifest -> string -> int option
(** [None] when the function is blacklisted or unknown. *)

val end_label : string -> string
(** Label the pass appends at the end of each cacheable function so
    function sizes assemble as label differences. *)

val cacheable_names :
  blacklist:string list -> Masm.Ast.program -> string list
(** Text items eligible for caching: everything except the entry stub
    and the blacklist (§3.1). *)

val instrument :
  ?options:Config.options ->
  layout:Masm.Assembler.layout ->
  Masm.Ast.program ->
  Masm.Ast.program * manifest
(** Run both phases and return the final program (application items,
    reserved runtime regions, metadata tables) plus its manifest.

    With {!Config.options.pgo} set, additionally: reorders the text
    segment so hot cacheable code packs together, treats FRAM-resident
    names as blacklisted, and assigns each pinned function an SRAM
    anchor (packed from the cache base in pin order) whose value is
    baked into its call sites as a direct CALL. *)
