(* SwapRAM build-time options and well-known addresses/symbols. *)

(* Trap vector the CPU recognises as the SwapRAM miss handler; the
   per-function redirection entries initially hold this address. *)
let miss_handler_trap = 0xFF00

(* Metadata symbols emitted by the static pass. *)
let sym_funcid = "__sr_funcid"
let sym_redirect = "__sr_redirect"
let sym_active = "__sr_active"
let sym_functab = "__sr_functab"
let sym_reloc = "__sr_reloc"
let sym_relofs = "__sr_relofs"
let sym_handler = "__sr_handler"
let sym_memcpy = "__sr_memcpy"

type options = {
  blacklist : string list; (* functions excluded from caching (§3.1) *)
  policy : Cache.policy;
  cache_base : int; (* SRAM region used as the code cache *)
  cache_size : int;
  debug_checks : bool; (* verify cache invariants on every miss *)
  freeze : (int * int) option;
      (* anti-thrashing extension sketched in §5.4: after
         [threshold] consecutive aborted caching operations, pause
         eviction for the next [window] misses ("freeze" the cache). *)
  prefetch : int;
      (* call-graph prefetch extension (§3's "predict memory accesses
         and accurately pre-fetch code"): after a successful caching
         operation, also cache up to this many of the callee
         functions the static pass saw in the new function's body —
         but only into free space (prefetches never evict). 0 = off. *)
  pgo : Pgo.placement option;
      (* profile-guided placement from a training run: pins hot
         functions in SRAM (direct calls, no redirection protocol),
         reorders the remaining cacheable code hot-first, and leaves
         cold code FRAM-resident. None = the paper's default
         all-functions-equal pipeline. *)
}

let default_options =
  {
    blacklist = [];
    policy = Cache.Circular_queue;
    cache_base = Msp430.Platform.sram_base;
    cache_size = Msp430.Platform.sram_size;
    debug_checks = false;
    freeze = None;
    prefetch = 0;
    pgo = None;
  }
