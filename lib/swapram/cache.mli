(** SRAM cache memory structure (paper §3.4).

    Cached function copies live in a contiguous SRAM region; the data
    structure that organises them defines the replacement policy. The
    structure only {e plans} placements — the runtime commits them
    after the call-stack-integrity check passes. *)

(** How cached functions are organised, which is the replacement
    policy: the paper's circular queue ("least-recently-cached",
    Fig. 5); a stack ("most-recently-cached", kept for ablation); or
    the cost-aware priority placement the paper's §3.4 sketches as
    future work, which scans candidate allocation points and evicts
    the cheapest-to-recopy set of functions. *)
type policy = Circular_queue | Stack | Cost_aware

val policy_name : policy -> string

type entry = { fid : int; addr : int; size : int }
(** One cached function: its id, SRAM address and rounded size. *)

type t

val create : base:int -> capacity:int -> policy:policy -> t

val alloc_point : t -> int
(** The queue policies' next allocation address. *)

val set_alloc_point : t -> int -> unit
(** Move the allocation point — the runtime skips it past an
    un-evictable (active) function before replanning, and restores
    the saved point when it aborts the caching operation. *)

type placement =
  | Too_large  (** the function can never fit the region *)
  | Place of { addr : int; evict : entry list }
      (** place at [addr] after evicting [evict] (possibly empty) *)

val plan : t -> size:int -> placement
(** Plan a placement for a function of [size] bytes. Does not mutate
    the structure. *)

val commit : t -> fid:int -> addr:int -> size:int -> evicted:entry list -> unit
(** Apply a planned placement: remove [evicted], record the new entry,
    and advance the allocation point. *)

val evict_only : t -> int list -> unit
(** Remove entries by fid without inserting anything. *)

val find : t -> int -> entry option
val entries : t -> entry list
val used_bytes : t -> int

val check_invariants : t -> bool
(** Entries are pairwise disjoint, within the region, and non-empty.
    Checked by the property tests and by the runtime in debug mode. *)

val reset : t -> unit
