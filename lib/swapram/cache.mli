(** SRAM cache memory structure (paper §3.4).

    Cached function copies live in a contiguous SRAM region; the data
    structure that organises them defines the replacement policy. The
    structure only {e plans} placements — the runtime commits them
    after the call-stack-integrity check passes.

    Entries are kept sorted by SRAM address, so overlap scans walk a
    single contiguous run of the list instead of filtering all
    entries per candidate.

    A profile-guided build ({!Pgo}) may {!pin} functions: pinned
    entries pack upward from the region base, are never allocated
    over by the dynamic policies, and survive {!reset} across power
    failures (only the copied bytes are volatile). *)

(** How cached functions are organised, which is the replacement
    policy: the paper's circular queue ("least-recently-cached",
    Fig. 5); a stack ("most-recently-cached", kept for ablation); or
    the cost-aware priority placement the paper's §3.4 sketches as
    future work, which scans candidate allocation points and evicts
    the cheapest-to-recopy set of functions. When eviction sets cost
    the same, [Cost_aware] breaks ties toward the FIFO allocation
    point, then toward the lowest address. *)
type policy = Circular_queue | Stack | Cost_aware

val policy_name : policy -> string

type entry = { fid : int; addr : int; size : int }
(** One cached function: its id, SRAM address and rounded size. *)

type t

val create : base:int -> capacity:int -> policy:policy -> t

val alloc_point : t -> int
(** The queue policies' next allocation address. *)

val set_alloc_point : t -> int -> unit
(** Move the allocation point — the runtime skips it past an
    un-evictable (active) function before replanning, and restores
    the saved point when it aborts the caching operation. *)

val pin : t -> fid:int -> size:int -> int
(** Permanently reserve the next [size] (even-rounded) bytes from the
    region base for [fid] and return the assigned address. Must be
    called before any dynamic allocation; idempotent (re-pinning the
    same fid returns the same address, as the runtime does on
    reboot). Raises [Failure _] when the pinned set would exceed the
    region. *)

type placement =
  | Too_large  (** the function can never fit the region *)
  | Place of { addr : int; evict : entry list }
      (** place at [addr] after evicting [evict] (possibly empty) *)

val plan : t -> size:int -> placement
(** Plan a placement for a function of [size] bytes in the dynamic
    (non-pinned) part of the region. Does not mutate the
    structure. *)

val commit : t -> fid:int -> addr:int -> size:int -> evicted:entry list -> unit
(** Apply a planned placement: remove [evicted], record the new entry,
    and advance the allocation point. *)

val evict_only : t -> int list -> unit
(** Remove entries by fid without inserting anything. *)

val find : t -> int -> entry option
(** Look up a function by fid among dynamic, then pinned entries. *)

val entries : t -> entry list
(** Dynamic entries, sorted by address. *)

val pinned_entries : t -> entry list
(** Pinned entries, packed from the region base in pin order. *)

val pinned_bytes : t -> int
(** Total bytes reserved by {!pin}; dynamic allocation starts at
    [base + pinned_bytes]. *)

val used_bytes : t -> int

val check_invariants : t -> bool
(** Entries are sorted, pairwise disjoint, within the dynamic region,
    and non-empty; pinned entries are packed contiguously from the
    base. Checked by the property tests and by the runtime in debug
    mode. *)

val reset : t -> unit
(** Drop all dynamic entries (power loss wipes SRAM). Pinned entries
    survive: the pin plan is a build-time constant; the runtime's
    reboot re-copies their bytes. *)
