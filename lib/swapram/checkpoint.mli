(** Checkpointing runtime — the classical alternative to software
    caching for intermittent systems, and the third system under test
    in fault-injection campaigns. A periodic timer (the CPU's
    instruction-count hook) snapshots the register file and dirty
    SRAM words into a double-buffered FRAM arena with a two-phase
    commit; reboot restores the newest committed snapshot and resumes
    mid-program, or cold-restarts when none exists. All snapshot and
    restore traffic moves through counted simulated accesses, so
    power failures can tear any phase; the commit is a single atomic
    word write and the restore is idempotent. *)

type options = {
  interval : int;  (** architectural instructions between snapshots *)
}

val default_options : options

val arena_base : int
(** Base of the FRAM arena (charge region + two snapshot slots) at
    the top of FRAM. The toolchain lowers the code limit to this
    address when the runtime is installed. *)

val arena_bytes : int

type stats = {
  mutable snapshots : int;  (** committed snapshots *)
  mutable words_written : int;  (** dirty SRAM words persisted *)
  mutable restores : int;  (** reboots that resumed from a snapshot *)
  mutable restarts : int;  (** reboots with no valid snapshot *)
}

type t

val stats : t -> stats

val install : options:options -> Msp430.Platform.system -> t
(** Install on a prepared system: initialise the arena and arm the
    CPU's periodic hook. The image must already be loaded. *)

type boot = Resumed | Restarted

val reboot : t -> image:Masm.Assembler.t -> boot
(** Power-loss recovery. [Resumed] restored a committed snapshot
    including PC/SP — the caller must not reload the entry vector;
    [Restarted] found no valid snapshot, re-initialised the volatile
    data section, and the caller boots from entry as usual. *)

val critical_windows : t -> (string * int * int) list
(** Adversarial fault-injection targets: (name, lo, hi) FRAM
    windows. *)
