(* Profile-guided function placement.

   The default pipeline treats every function the same: each call
   goes through the 4-instruction redirection protocol and hot code
   pays repeated copy-ins whenever it collides in the cache under the
   replacement policy. This pass closes the measurement loop built by
   the profiler: a training run collects per-function call counts,
   resident-miss counts and self cycles; [place] turns them into

   (a) a pinned set — hot functions made permanently SRAM-resident
       under a byte budget by a greedy knapsack on estimated
       cycles-saved-per-byte (pinned functions are also called
       directly, skipping the redirection protocol entirely);
   (b) a placement order for the remaining cacheable functions that
       packs hot code together in NVM, separating it from cold code;
   (c) FRAM-resident decisions for cold code whose copy-in cost the
       model says exceeds its wait-state savings (it keeps plain
       calls and never enters the cache).

   Everything is integral arithmetic over the profile, so the same
   profile always produces byte-identical placements. The cost model
   lives in {!Costs}; the simulator, not the model, produces the
   reported numbers. *)

module Json = Observe.Json

type func_profile = {
  fp_name : string;
  fp_size : int; (* code bytes after instrumentation, even-rounded *)
  fp_calls : int; (* dynamic calls observed in training *)
  fp_misses : int; (* miss-handler copy-ins attributed to it *)
  fp_instrs : int; (* instructions it executed *)
  fp_cycles : int; (* cycles attributed to it, stalls included *)
}

type profile = {
  pr_benchmark : string;
  pr_cache_size : int; (* SRAM cache bytes the training run used *)
  pr_funcs : func_profile list;
}

type placement = {
  pl_pinned : string list;
      (* pin order; anchors pack from the cache base in this order *)
  pl_hot_order : string list; (* remaining cacheable code, hottest first *)
  pl_fram_resident : string list; (* excluded from caching entirely *)
  pl_budget : int; (* pinned-byte budget the knapsack ran under *)
}

let even b = (b + 1) land lnot 1
let even_size f = max 2 (even f.fp_size)

(* Estimated cycles saved per training run by pinning [f]: every call
   drops the redirection protocol and every miss drops a copy-in. *)
let pin_benefit f =
  (f.fp_calls * Costs.pgo_call_protocol_cycles)
  + (f.fp_misses * Costs.pgo_miss_cycles ~size:f.fp_size)

(* Cold code stays FRAM-resident when the training run spent more on
   copying it in than executing it from FRAM would have cost; code
   that never ran obviously stays put. *)
let fram_resident f =
  f.fp_calls = 0
  || f.fp_misses * Costs.pgo_miss_cycles ~size:f.fp_size
     > Costs.pgo_fram_penalty ~instrs:f.fp_instrs

let place ?budget profile =
  let budget =
    match budget with Some b -> b | None -> profile.pr_cache_size / 2
  in
  let funcs =
    List.sort (fun a b -> compare a.fp_name b.fp_name) profile.pr_funcs
  in
  let resident, cacheable = List.partition fram_resident funcs in
  (* Greedy knapsack on benefit density (cycles saved per pinned
     byte), compared by cross-multiplication to stay integral. Ties
     break toward the larger absolute benefit, then the name. *)
  let by_density =
    cacheable
    |> List.filter (fun f -> pin_benefit f > 0)
    |> List.sort (fun a b ->
           let c =
             compare
               (pin_benefit b * even_size a)
               (pin_benefit a * even_size b)
           in
           if c <> 0 then c
           else
             let c = compare (pin_benefit b) (pin_benefit a) in
             if c <> 0 then c else compare a.fp_name b.fp_name)
  in
  let pinned = ref [] in
  let pinned_bytes = ref 0 in
  List.iter
    (fun f ->
      let sz = even_size f in
      if !pinned_bytes + sz <= budget then begin
        (* never shrink the dynamic region below the largest function
           that still needs it: too-large aborts would undo the win *)
        let widest_unpinned =
          List.fold_left
            (fun m g ->
              if g.fp_name = f.fp_name || List.mem g.fp_name !pinned then m
              else max m (even_size g))
            0 cacheable
        in
        if profile.pr_cache_size - (!pinned_bytes + sz) >= widest_unpinned
        then begin
          pinned := !pinned @ [ f.fp_name ];
          pinned_bytes := !pinned_bytes + sz
        end
      end)
    by_density;
  let hot_order =
    cacheable
    |> List.filter (fun f -> not (List.mem f.fp_name !pinned))
    |> List.sort (fun a b ->
           let c = compare b.fp_calls a.fp_calls in
           if c <> 0 then c
           else
             let c = compare b.fp_cycles a.fp_cycles in
             if c <> 0 then c else compare a.fp_name b.fp_name)
    |> List.map (fun f -> f.fp_name)
  in
  {
    pl_pinned = !pinned;
    pl_hot_order = hot_order;
    pl_fram_resident = List.map (fun f -> f.fp_name) resident;
    pl_budget = budget;
  }

(* --- Serialization (Observe.Json) ------------------------------------ *)

let func_to_json f =
  Json.Obj
    [
      ("name", Json.String f.fp_name);
      ("size", Json.Int f.fp_size);
      ("calls", Json.Int f.fp_calls);
      ("misses", Json.Int f.fp_misses);
      ("instrs", Json.Int f.fp_instrs);
      ("cycles", Json.Int f.fp_cycles);
    ]

let profile_to_json p =
  Json.Obj
    [
      ("benchmark", Json.String p.pr_benchmark);
      ("cache_size", Json.Int p.pr_cache_size);
      ("funcs", Json.List (List.map func_to_json p.pr_funcs));
    ]

let placement_to_json p =
  let names ns = Json.List (List.map (fun n -> Json.String n) ns) in
  Json.Obj
    [
      ("budget", Json.Int p.pl_budget);
      ("pinned", names p.pl_pinned);
      ("hot_order", names p.pl_hot_order);
      ("fram_resident", names p.pl_fram_resident);
    ]

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let req what conv j key =
  match Option.bind (Json.member key j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "pgo %s: missing or ill-typed %S" what key)

let func_of_json j =
  let what = "profile function" in
  let* name = req what Json.to_str j "name" in
  let* size = req what Json.to_int j "size" in
  let* calls = req what Json.to_int j "calls" in
  let* misses = req what Json.to_int j "misses" in
  let* instrs = req what Json.to_int j "instrs" in
  let* cycles = req what Json.to_int j "cycles" in
  Ok
    {
      fp_name = name;
      fp_size = size;
      fp_calls = calls;
      fp_misses = misses;
      fp_instrs = instrs;
      fp_cycles = cycles;
    }

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
      let* v = f x in
      let* vs = collect f rest in
      Ok (v :: vs)

let profile_of_json j =
  let what = "profile" in
  let* benchmark = req what Json.to_str j "benchmark" in
  let* cache_size = req what Json.to_int j "cache_size" in
  let* funcs = req what Json.to_list j "funcs" in
  let* funcs = collect func_of_json funcs in
  Ok { pr_benchmark = benchmark; pr_cache_size = cache_size; pr_funcs = funcs }

let names_of_json what j key =
  let* l = req what Json.to_list j key in
  collect
    (fun x ->
      match Json.to_str x with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "pgo %s: non-string in %S" what key))
    l

let placement_of_json j =
  let what = "placement" in
  let* budget = req what Json.to_int j "budget" in
  let* pinned = names_of_json what j "pinned" in
  let* hot = names_of_json what j "hot_order" in
  let* resident = names_of_json what j "fram_resident" in
  Ok
    {
      pl_pinned = pinned;
      pl_hot_order = hot;
      pl_fram_resident = resident;
      pl_budget = budget;
    }

let profile_to_string p = Json.to_string_pretty (profile_to_json p)

let profile_of_string s =
  let* j = Json.parse s in
  profile_of_json j

let placement_to_string p = Json.to_string_pretty (placement_to_json p)
