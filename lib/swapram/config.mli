(** SwapRAM build-time options and well-known addresses/symbols. *)

val miss_handler_trap : int
(** Trap vector recognised by the CPU as the miss handler; the
    per-function redirection entries initially hold this address. *)

(** Metadata symbols emitted by the static pass. *)

val sym_funcid : string
val sym_redirect : string
val sym_active : string
val sym_functab : string
val sym_reloc : string
val sym_relofs : string
val sym_handler : string
val sym_memcpy : string

type options = {
  blacklist : string list;
      (** functions excluded from caching (paper §3.1) *)
  policy : Cache.policy;
  cache_base : int;  (** SRAM region used as the code cache *)
  cache_size : int;
  debug_checks : bool;  (** verify cache invariants on every miss *)
  freeze : (int * int) option;
      (** anti-thrashing extension sketched in §5.4: after
          [threshold] consecutive aborted caching operations, pause
          eviction for the next [window] misses *)
  prefetch : int;
      (** call-graph prefetch extension (§3's observation 2): after a
          successful caching operation, also cache up to this many of
          the new function's statically-known callees, into free
          space only. 0 disables. *)
  pgo : Pgo.placement option;
      (** profile-guided placement from a training run ({!Pgo}):
          pins hot functions in SRAM (direct calls, no redirection
          protocol), reorders the remaining cacheable code hot-first,
          and leaves cold code FRAM-resident. [None] = the paper's
          default all-functions-equal pipeline. *)
}

val default_options : options
(** Circular queue over the whole 4 KiB SRAM, nothing blacklisted. *)
