(* Cost model for the modeled runtime (miss handler + memcpy).

   The paper's runtime is MSP430 assembly executing from FRAM; ours is
   OCaml invoked through a trap vector. To keep Figure 8 (instruction
   source breakdown), Table 2 (cycle counts) and the wait-state
   machinery faithful, every modeled runtime instruction charges one
   counted instruction fetch from the reserved FRAM runtime region
   plus [cycles_per_instr] unstalled cycles, and all data the runtime
   touches (funcId, redirection entries, active counters, function
   table, relocation tables, the code bytes themselves) moves through
   counted simulated-memory accesses.

   The constants below are instruction-count estimates for each phase
   of the handler in Figure 4, sized against a hand-sketched MSP430
   implementation of the same logic. They are deliberately simple and
   documented so ablations can vary them. *)

(* Save argument registers R12-R15, load funcId, index the function
   table, load nvm address / size / reloc range. *)
let handler_entry_instrs = 12

(* Per cache-structure entry examined while planning a placement. *)
let scan_entry_instrs = 4

(* Per flagged function: read its active counter and test it. *)
let active_check_instrs = 3

(* Per evicted function: unlink node, reset its redirection entry. *)
let evict_instrs = 6

(* Per relocation entry recomputed (on caching and on eviction):
   load offset, add base, store slot. *)
let reloc_instrs = 5

(* Copy loop: MOV @src+, dst / increment / compare / branch per word.
   The FRAM read and SRAM write are charged separately as counted
   data accesses. *)
let memcpy_per_word_instrs = 2

(* Update redirection entry, restore registers, branch to the copy. *)
let handler_exit_instrs = 10

(* Abort path (§3.3.3): unwind flagging and branch to the NVM copy. *)
let abort_instrs = 6

(* Average unstalled cycles per modeled runtime instruction (register
   and absolute-mode format-I instructions dominate the handler). *)
let cycles_per_instr = 2

(* --- Profile-guided placement model ({!Pgo}) ------------------------- *)

(* The PGO pass ranks candidates with the estimates below; the
   simulator, not this model, produces every reported number. All
   figures are integral so placement is exactly deterministic. *)

(* Estimated cycles one miss-handler invocation spends copying in a
   [size]-byte function: entry + exit instruction budgets above, plus
   per word the copy-loop instructions and roughly 6 cycles for the
   wait-stated FRAM read and the SRAM write. *)
let pgo_miss_cycles ~size =
  let words = (size + 1) / 2 in
  (cycles_per_instr * (handler_entry_instrs + handler_exit_instrs))
  + (words * ((memcpy_per_word_instrs * cycles_per_instr) + 6))

(* Estimated cycles one rewritten call site spends on the
   4-instruction redirection protocol (Fig. 3): two active-counter
   read-modify-writes, the funcId store, the indirect call through
   the redirection entry, all ~9 instruction words fetched from
   wait-stated FRAM. A direct call to a pinned SRAM anchor replaces
   this with a single 2-word CALL, saving roughly this much per
   dynamic call. *)
let pgo_call_protocol_cycles = 22

(* Extra cycles, in tenths per executed instruction, for running a
   function from FRAM instead of SRAM: the read cache absorbs most of
   the raw 3-cycle wait-state penalty on sequential fetches. Used to
   decide when cold code should stay FRAM-resident — copying it in
   must beat this. *)
let pgo_fram_penalty_tenths = 12

let pgo_fram_penalty ~instrs = instrs * pgo_fram_penalty_tenths / 10
