module Cpu = Msp430.Cpu
module Memory = Msp430.Memory
module Trace = Msp430.Trace

(* SwapRAM's runtime component: the cache miss handler (paper §3.3,
   Fig. 4). Installed as a trap handler on the simulated CPU; every
   piece of state it touches (funcId, function table, redirection
   entries, active counters, relocation tables, the copied code) moves
   through counted simulated-memory accesses, and its own execution is
   charged as instruction fetches from the reserved FRAM runtime
   region per the cost model in {!Costs}. *)

type table_addrs = {
  a_funcid : int;
  a_redirect : int;
  a_active : int;
  a_functab : int;
  a_reloc : int;
  a_relofs : int;
  a_handler : int;
  handler_size : int;
  a_memcpy : int;
  memcpy_size : int;
}

type stats = {
  mutable misses : int;
  mutable aborts : int; (* active-function conflicts -> NVM execution *)
  mutable too_large : int;
  mutable frozen_misses : int;
  mutable evictions : int;
  mutable words_copied : int;
  mutable placement_retries : int; (* allocations skipped past active code *)
  mutable prefetches : int; (* callees cached ahead of their first call *)
  mutable pins : int; (* profile-guided pins copied in (install + reboots) *)
}

type t = {
  cache : Cache.t;
  mem : Memory.t;
  addrs : table_addrs;
  options : Config.options;
  callees : int list array; (* static call graph, for prefetching *)
  pinned_anchors : (int * int) list; (* profile-guided (fid, anchor) pins *)
  stats : stats;
  mutable handler_cursor : int;
  mutable memcpy_cursor : int;
  mutable consecutive_aborts : int;
  mutable freeze_left : int;
}

let stats t = t.stats

(* Which cacheable function (fid) owns the SRAM cache copy containing
   [addr], if any — the observability layer's dynamic symbolizer for
   pc values inside the cache region. Pure host-side inspection: no
   counted accesses, no perturbation. *)
let cached_function_at t addr =
  let owner entries =
    List.find_map
      (fun (e : Cache.entry) ->
        if addr >= e.Cache.addr && addr < e.Cache.addr + e.Cache.size then
          Some e.Cache.fid
        else None)
      entries
  in
  match owner (Cache.entries t.cache) with
  | Some fid -> Some fid
  | None -> owner (Cache.pinned_entries t.cache)

let emit_rt t ev =
  let stats = Memory.stats t.mem in
  if Trace.has_observer stats then Trace.emit stats (Trace.Runtime_event ev)

(* --- Charged micro-operations --------------------------------------- *)

(* Fetch-and-charge [n] modeled handler instructions. *)
let charge t source n =
  let region_base, region_size, cursor_get, cursor_set =
    match source with
    | Trace.Memcpy ->
        ( t.addrs.a_memcpy,
          t.addrs.memcpy_size,
          (fun () -> t.memcpy_cursor),
          fun c -> t.memcpy_cursor <- c )
    | _ ->
        ( t.addrs.a_handler,
          t.addrs.handler_size,
          (fun () -> t.handler_cursor),
          fun c -> t.handler_cursor <- c )
  in
  let stats = Memory.stats t.mem in
  let observed = Trace.has_observer stats in
  for _ = 1 to n do
    let cur = cursor_get () in
    Memory.begin_instruction t.mem;
    (* The handler/memcpy regions live in reserved FRAM, so the
       unobserved path can take the specialized counted fetch. *)
    if observed then begin
      Trace.emit stats (Trace.Instr { pc = region_base + cur; source });
      ignore (Memory.read_word t.mem ~purpose:Memory.Ifetch (region_base + cur))
    end
    else ignore (Memory.fetch_word_fram t.mem (region_base + cur));
    Trace.count_instr stats source;
    Trace.add_unstalled stats Costs.cycles_per_instr;
    cursor_set ((cur + 2) mod region_size)
  done

let read_word t addr = Memory.read_word t.mem ~purpose:Memory.Data addr
let write_word t addr v = Memory.write_word t.mem addr v

(* Function-table entry fields for [fid]. *)
let functab_nvm t fid = read_word t (t.addrs.a_functab + (8 * fid))
let functab_size t fid = read_word t (t.addrs.a_functab + (8 * fid) + 2)
let functab_rstart t fid = read_word t (t.addrs.a_functab + (8 * fid) + 4)
let functab_rcount t fid = read_word t (t.addrs.a_functab + (8 * fid) + 6)

(* Point all of [fid]'s relocation entries at [base] (SRAM copy when
   cached, NVM original after eviction). *)
let retarget_relocs t fid ~base =
  let rstart = functab_rstart t fid and rcount = functab_rcount t fid in
  for k = rstart to rstart + rcount - 1 do
    charge t Trace.Handler Costs.reloc_instrs;
    let ofs = read_word t (t.addrs.a_relofs + (2 * k)) in
    write_word t (t.addrs.a_reloc + (2 * k)) ((base + ofs) land 0xFFFF)
  done

let evict_function t (entry : Cache.entry) =
  charge t Trace.Handler Costs.evict_instrs;
  emit_rt t (Trace.Eviction { fid = entry.Cache.fid });
  t.stats.evictions <- t.stats.evictions + 1;
  write_word t (t.addrs.a_redirect + (2 * entry.Cache.fid)) Config.miss_handler_trap;
  let nvm = functab_nvm t entry.Cache.fid in
  retarget_relocs t entry.Cache.fid ~base:nvm

let copy_function t ~nvm ~sram ~size =
  let words = (size + 1) / 2 in
  for i = 0 to words - 1 do
    charge t Trace.Memcpy Costs.memcpy_per_word_instrs;
    let w = read_word t (nvm + (2 * i)) in
    write_word t (sram + (2 * i)) w;
    t.stats.words_copied <- t.stats.words_copied + 1
  done

(* Call-graph prefetch (extension; §3's observation 2): after caching
   [fid], optionally pull its statically-known callees into *free*
   cache space — prefetches never evict, so mispredictions cost only
   the copy. *)
let rec prefetch_callees t fid budget =
  if budget > 0 then
    let candidates =
      if fid < Array.length t.callees then t.callees.(fid) else []
    in
    let rec go budget = function
      | [] -> ()
      | callee :: rest when budget > 0 ->
          let cached =
            read_word t (t.addrs.a_redirect + (2 * callee))
            <> Config.miss_handler_trap
          in
          if cached then go budget rest
          else begin
            let size = functab_size t callee in
            charge t Trace.Handler Costs.scan_entry_instrs;
            match Cache.plan t.cache ~size with
            | Cache.Place { addr; evict = [] } ->
                let nvm = functab_nvm t callee in
                Cache.commit t.cache ~fid:callee ~addr ~size ~evicted:[];
                copy_function t ~nvm ~sram:addr ~size;
                retarget_relocs t callee ~base:addr;
                write_word t (t.addrs.a_redirect + (2 * callee)) addr;
                t.stats.prefetches <- t.stats.prefetches + 1;
                emit_rt t (Trace.Prefetch { fid = callee });
                prefetch_callees t callee (budget - 1);
                go (budget - 1) rest
            | Cache.Place _ | Cache.Too_large -> go budget rest
          end
      | _ -> ()
    in
    go budget candidates

(* Install-time pinning (profile-guided builds): copy each pinned
   function to its anchor and point its relocation entries (and, for
   uniformity, its redirection entry) at the permanent SRAM copy.
   Call sites reach pinned functions by direct CALL #anchor, so there
   is no per-call runtime involvement at all. Idempotent: reboot
   reruns it after a power loss wipes SRAM, and a rerun after a
   teared reboot recovers — execution never resumes before a reboot
   completes, so the direct calls are crash-safe. *)
let pin_all t =
  List.iter
    (fun (fid, anchor) ->
      charge t Trace.Handler Costs.handler_entry_instrs;
      let nvm = functab_nvm t fid in
      let size = functab_size t fid in
      let addr = Cache.pin t.cache ~fid ~size in
      if addr <> anchor then
        failwith
          (Printf.sprintf
             "SwapRAM pin: fid %d anchored at 0x%04X but pinned at 0x%04X" fid
             anchor addr);
      copy_function t ~nvm ~sram:addr ~size;
      retarget_relocs t fid ~base:addr;
      write_word t (t.addrs.a_redirect + (2 * fid)) addr;
      t.stats.pins <- t.stats.pins + 1)
    t.pinned_anchors

(* Abort the caching operation and run the callee from NVRAM
   (§3.3.3). The redirection entry keeps pointing at the handler, so
   the next call misses again — the paper's pathological case. *)
let abort_to_nvm t ~fid ~nvm =
  charge t Trace.Handler Costs.abort_instrs;
  t.consecutive_aborts <- t.consecutive_aborts + 1;
  (match t.options.Config.freeze with
  | Some (threshold, window)
    when t.freeze_left = 0 && t.consecutive_aborts >= threshold ->
      t.freeze_left <- window;
      emit_rt t (Trace.Freeze { on = true })
  | _ -> ());
  emit_rt t (Trace.Miss_exit { runtime = "swapram"; disposition = "nvm"; fid });
  Cpu.Goto nvm

let on_miss t cpu =
  ignore cpu;
  t.stats.misses <- t.stats.misses + 1;
  emit_rt t (Trace.Miss_enter { runtime = "swapram" });
  charge t Trace.Handler Costs.handler_entry_instrs;
  let fid = read_word t t.addrs.a_funcid in
  let nvm = functab_nvm t fid in
  let size = functab_size t fid in
  if t.freeze_left > 0 then begin
    (* freeze mode: execute from NVM without touching the cache *)
    t.freeze_left <- t.freeze_left - 1;
    t.stats.frozen_misses <- t.stats.frozen_misses + 1;
    if t.freeze_left = 0 then emit_rt t (Trace.Freeze { on = false });
    charge t Trace.Handler Costs.abort_instrs;
    emit_rt t
      (Trace.Miss_exit { runtime = "swapram"; disposition = "frozen"; fid });
    Cpu.Goto nvm
  end
  else begin
    charge t Trace.Handler
      (Costs.scan_entry_instrs * max 1 (List.length (Cache.entries t.cache)));
    (* Placement loop: a planned spot whose eviction set contains an
       active function is skipped (allocation moves past the blocker
       and retries) rather than aborted outright — otherwise the
       entry function, cached first at the region base and active for
       the whole run, would block every wrapped allocation. Abort to
       NVM execution only when no spot works (§3.3.3). *)
    let saved_alloc_point = Cache.alloc_point t.cache in
    let abort_restoring () = Cache.set_alloc_point t.cache saved_alloc_point in
    let rec try_place attempts =
      match Cache.plan t.cache ~size with
      | Cache.Too_large ->
          (* every abort path must undo the retries' allocation-point
             moves, or the next miss plans from a skewed cursor *)
          abort_restoring ();
          t.stats.too_large <- t.stats.too_large + 1;
          charge t Trace.Handler Costs.abort_instrs;
          emit_rt t
            (Trace.Miss_exit
               { runtime = "swapram"; disposition = "too-large"; fid });
          Cpu.Goto nvm
      | Cache.Place { addr; evict } -> (
          (* call-stack integrity: never evict an active function *)
          charge t Trace.Handler
            (Costs.active_check_instrs * List.length evict);
          let actives =
            List.filter
              (fun (e : Cache.entry) ->
                read_word t (t.addrs.a_active + (2 * e.Cache.fid)) <> 0)
              evict
          in
          match actives with
          | [] ->
              t.consecutive_aborts <- 0;
              List.iter (evict_function t) evict;
              Cache.commit t.cache ~fid ~addr ~size ~evicted:evict;
              copy_function t ~nvm ~sram:addr ~size;
              retarget_relocs t fid ~base:addr;
              write_word t (t.addrs.a_redirect + (2 * fid)) addr;
              prefetch_callees t fid t.options.Config.prefetch;
              charge t Trace.Handler Costs.handler_exit_instrs;
              if
                t.options.Config.debug_checks
                && not (Cache.check_invariants t.cache)
              then failwith "SwapRAM cache invariant violated";
              emit_rt t
                (Trace.Miss_exit
                   { runtime = "swapram"; disposition = "cached"; fid });
              Cpu.Goto addr
          | _ :: _ when attempts > 0 && t.options.Config.policy = Cache.Circular_queue
            ->
              t.stats.placement_retries <- t.stats.placement_retries + 1;
              charge t Trace.Handler Costs.scan_entry_instrs;
              let blocker_end =
                List.fold_left
                  (fun acc (e : Cache.entry) -> max acc (e.Cache.addr + e.Cache.size))
                  0 actives
              in
              Cache.set_alloc_point t.cache blocker_end;
              try_place (attempts - 1)
          | _ :: _ ->
              abort_restoring ();
              t.stats.aborts <- t.stats.aborts + 1;
              abort_to_nvm t ~fid ~nvm)
    in
    try_place 8
  end

(* Power-loss recovery for intermittent systems (the deployments of
   paper §1/§2.2): SRAM contents — including every cached function —
   are lost, but the FRAM-resident metadata survives and still points
   at the vanished copies. A boot-time routine must reset the cache
   structure and restore the metadata words (redirection entries back
   to the miss handler, relocation slots back to their NVM targets,
   active counters and funcId to zero) from their initial post-link
   values in the image. *)
let reboot t ~image =
  Cache.reset t.cache;
  t.handler_cursor <- 0;
  t.memcpy_cursor <- 0;
  t.consecutive_aborts <- 0;
  t.freeze_left <- 0;
  (* The restore writes are counted FRAM accesses: the boot routine
     pays real write costs, and — crucial for fault injection — an
     armed power trigger can tear the reboot itself mid-restore. The
     routine is idempotent (it copies constants out of the image), so
     rerunning it after such a tear recovers. *)
  let restore_item name =
    let addr, bytes = Masm.Assembler.item_initial image name in
    Bytes.iteri
      (fun i c -> Memory.write_byte t.mem (addr + i) (Char.code c))
      bytes
  in
  List.iter restore_item
    [ Config.sym_funcid; Config.sym_redirect; Config.sym_active; Config.sym_reloc ];
  (* pinned copies were in the lost SRAM; re-pin them (same anchors) *)
  pin_all t

(* Runtime-critical FRAM windows, for adversarial fault injection: a
   power failure landing on an access inside one of these regions is
   inside the miss handler, mid-memcpy, or between the two halves of
   a metadata update. *)
let critical_windows t ~image =
  let tab sym = (Masm.Assembler.lookup image sym, Masm.Assembler.item_size image sym) in
  let named name (lo, size) = (name, lo, lo + size) in
  [
    named "handler" (t.addrs.a_handler, t.addrs.handler_size);
    named "memcpy" (t.addrs.a_memcpy, t.addrs.memcpy_size);
    named "redirect" (tab Config.sym_redirect);
    named "reloc" (tab Config.sym_reloc);
    named "active" (tab Config.sym_active);
  ]

let table_addrs_of_image image manifest =
  let look = Masm.Assembler.lookup image in
  {
    a_funcid = look Config.sym_funcid;
    a_redirect = look Config.sym_redirect;
    a_active = look Config.sym_active;
    a_functab = look Config.sym_functab;
    a_reloc = look Config.sym_reloc;
    a_relofs = look Config.sym_relofs;
    a_handler = look Config.sym_handler;
    handler_size = manifest.Instrument.handler_bytes;
    a_memcpy = look Config.sym_memcpy;
    memcpy_size = manifest.Instrument.memcpy_bytes;
  }

let install ~options ~manifest ~image (system : Msp430.Platform.system) =
  let addrs = table_addrs_of_image image manifest in
  let callees = manifest.Instrument.callees in
  let cache =
    Cache.create ~base:options.Config.cache_base
      ~capacity:options.Config.cache_size ~policy:options.Config.policy
  in
  let t =
    {
      cache;
      mem = system.Msp430.Platform.memory;
      addrs;
      options;
      callees;
      pinned_anchors = manifest.Instrument.pinned_anchors;
      stats =
        {
          misses = 0;
          aborts = 0;
          too_large = 0;
          frozen_misses = 0;
          evictions = 0;
          words_copied = 0;
          placement_retries = 0;
          prefetches = 0;
          pins = 0;
        };
      handler_cursor = 0;
      memcpy_cursor = 0;
      consecutive_aborts = 0;
      freeze_left = 0;
    }
  in
  Cpu.register_trap system.Msp430.Platform.cpu Config.miss_handler_trap
    (fun cpu -> on_miss t cpu);
  (* Fig. 8 classification: handler and memcpy regions are runtime
     code; everything else classifies by memory region. *)
  let handler_lo = addrs.a_handler
  and handler_hi = addrs.a_handler + addrs.handler_size in
  let memcpy_lo = addrs.a_memcpy
  and memcpy_hi = addrs.a_memcpy + addrs.memcpy_size in
  Cpu.set_classifier system.Msp430.Platform.cpu (fun addr ->
      if addr >= handler_lo && addr < handler_hi then Trace.Handler
      else if addr >= memcpy_lo && addr < memcpy_hi then Trace.Memcpy
      else
        match Memory.region_of (Memory.map system.Msp430.Platform.memory) addr with
        | Memory.Sram -> Trace.App_sram
        | Memory.Fram | Memory.Peripheral | Memory.Unmapped -> Trace.App_fram);
  (* profile-guided pins copy in once, before execution starts; the
     image is already loaded (Pipeline.install loads before
     installing the runtime) *)
  pin_all t;
  t
