(* SRAM cache memory structure (paper §3.4).

   Cached function copies live in a contiguous SRAM region. The data
   structure that organises them *is* the replacement policy:

   - [Circular_queue] (the paper's proof-of-concept design, Fig. 5):
     new functions are placed after the most recently cached one,
     wrapping to the region base when the end is reached; functions
     overlapping the allocation are flagged for eviction. First-in
     first-out gives a "least-recently-cached" policy that matches
     code temporal locality and rarely tries to evict ancestors on
     the call stack.

   - [Stack]: maximal density — always allocate at the top of a stack
     of cached functions and evict the most recently cached entries
     to make room ("most-recently-cached" replacement). The paper
     calls this out as counterproductive; we keep it for the ablation
     bench.

   The entry list is kept sorted by SRAM address. Entries are pairwise
   disjoint, so the set overlapping any candidate window [lo, hi) is a
   single contiguous run of the list: the overlap and cost walks skip
   the prefix ending at or before [lo] and stop at the first entry
   starting at or past [hi], instead of filtering the whole list per
   candidate as the original O(n·candidates) implementation did.

   For [Stack] the address order of live entries *is* their insertion
   order — allocation always happens at the top of the stack and
   eviction always pops from the top — so "most recently cached" is
   simply the highest-addressed entry and no recency bookkeeping is
   needed.

   A profile-guided build ({!Pgo}) may additionally *pin* functions:
   pinned entries pack upward from the region base, are never planned
   over (the dynamic policies allocate from [base + pinned_bytes]),
   and survive {!reset} — the pin plan is a build-time constant; only
   the copied bytes are volatile.

   The structure only *plans* placements; the runtime commits them
   after the call-stack-integrity check (active counters) passes. *)

type policy = Circular_queue | Stack | Cost_aware

let policy_name = function
  | Circular_queue -> "circular-queue"
  | Stack -> "stack"
  | Cost_aware -> "cost-aware"

type entry = { fid : int; addr : int; size : int }

type t = {
  base : int;
  capacity : int;
  policy : policy;
  mutable entries : entry list; (* sorted by address, pairwise disjoint *)
  mutable pinned : entry list; (* pinned prefix, packed from base *)
  mutable pinned_bytes : int;
  mutable next_free : int; (* queue policy: next allocation address *)
}

let create ~base ~capacity ~policy =
  {
    base;
    capacity;
    policy;
    entries = [];
    pinned = [];
    pinned_bytes = 0;
    next_free = base;
  }

let alloc_point t = t.next_free
let set_alloc_point t addr = t.next_free <- addr

let limit t = t.base + t.capacity
let alloc_base t = t.base + t.pinned_bytes

let round_even size = (size + 1) land lnot 1

let pin t ~fid ~size =
  let size = round_even size in
  match List.find_opt (fun e -> e.fid = fid) t.pinned with
  | Some e ->
      (* idempotent: re-pinning after a power loss returns the same
         anchor (the copied bytes are the caller's problem) *)
      if e.size <> size then
        failwith "Cache.pin: pinned function changed size";
      e.addr
  | None ->
      if t.entries <> [] then
        failwith "Cache.pin: pinning must precede dynamic allocation";
      let addr = alloc_base t in
      if addr + size > limit t then
        failwith "Cache.pin: pinned set exceeds the cache region";
      t.pinned <- t.pinned @ [ { fid; addr; size } ];
      t.pinned_bytes <- t.pinned_bytes + size;
      if t.next_free < alloc_base t then t.next_free <- alloc_base t;
      addr

(* Entries overlapping [lo, hi): skip the prefix ending at or before
   [lo], collect until the first entry starting at or past [hi]. *)
let overlapping t lo hi =
  let rec go acc = function
    | [] -> List.rev acc
    | e :: rest ->
        if e.addr >= hi then List.rev acc
        else if e.addr + e.size <= lo then go acc rest
        else go (e :: acc) rest
  in
  go [] t.entries

(* Total evicted bytes for a placement at [c], same short-circuit. *)
let overlap_cost t c hi =
  let rec go acc = function
    | [] -> acc
    | e :: rest ->
        if e.addr >= hi then acc
        else if e.addr + e.size <= c then go acc rest
        else go (acc + e.size) rest
  in
  go 0 t.entries

type placement = Too_large | Place of { addr : int; evict : entry list }

let plan t ~size =
  let size = round_even size in
  if size > t.capacity - t.pinned_bytes then Too_large
  else
    match t.policy with
    | Circular_queue ->
        let addr =
          if t.next_free + size > limit t then alloc_base t else t.next_free
        in
        Place { addr; evict = overlapping t addr (addr + size) }
    | Cost_aware ->
        (* §3.4's future-work direction: scan the candidate placement
           points (the region base and the end of each cached entry)
           and pick the one whose eviction set costs the least to
           recopy (total evicted bytes). Ties break toward the FIFO
           allocation point, then toward the lowest address — a
           deterministic rule independent of entry enumeration
           order. *)
        let candidates =
          alloc_base t :: t.next_free
          :: List.map (fun e -> e.addr + e.size) t.entries
        in
        let best =
          List.fold_left
            (fun acc c ->
              if c < alloc_base t || c + size > limit t then acc
              else
                let cost = overlap_cost t c (c + size) in
                match acc with
                | None -> Some (c, cost)
                | Some (best_c, best_cost) ->
                    let better =
                      cost < best_cost
                      || cost = best_cost
                         && (c = t.next_free && best_c <> t.next_free
                            || best_c <> t.next_free && c < best_c)
                    in
                    if better then Some (c, cost) else acc)
            None candidates
        in
        (match best with
        | None -> Too_large
        | Some (addr, _) ->
            Place { addr; evict = overlapping t addr (addr + size) })
    | Stack ->
        (* the stack top is the end of the highest-addressed entry *)
        let top_of = function
          | [] -> alloc_base t
          | e :: _ -> e.addr + e.size
        in
        let rev = List.rev t.entries in
        if top_of rev + size <= limit t then
          Place { addr = top_of rev; evict = [] }
        else begin
          (* pop most-recent (= highest-addressed) entries until the
             new function fits *)
          let rec pop evicted = function
            | [] -> (alloc_base t, evicted)
            | e :: below ->
                if top_of below + size <= limit t then
                  (top_of below, e :: evicted)
                else pop (e :: evicted) below
          in
          let addr, evict = pop [] rev in
          Place { addr; evict }
        end

let commit t ~fid ~addr ~size ~evicted =
  let size = round_even size in
  let gone = List.map (fun e -> e.fid) evicted in
  let rec insert = function
    | [] -> [ { fid; addr; size } ]
    | e :: rest ->
        if e.addr < addr then e :: insert rest
        else { fid; addr; size } :: e :: rest
  in
  t.entries <-
    insert (List.filter (fun e -> not (List.mem e.fid gone)) t.entries);
  (match t.policy with
  | Circular_queue | Cost_aware -> t.next_free <- addr + size
  | Stack -> ());
  ()

let evict_only t fids =
  t.entries <- List.filter (fun e -> not (List.mem e.fid fids)) t.entries

let find t fid =
  match List.find_opt (fun e -> e.fid = fid) t.entries with
  | Some e -> Some e
  | None -> List.find_opt (fun e -> e.fid = fid) t.pinned

let entries t = t.entries
let pinned_entries t = t.pinned
let pinned_bytes t = t.pinned_bytes
let used_bytes t = List.fold_left (fun acc e -> acc + e.size) 0 t.entries

(* Structural invariants, used by tests and enabled in the runtime's
   debug mode: entries sorted, pairwise disjoint (adjacent suffices
   once sorted) and inside the dynamic region; pinned entries packed
   contiguously from the region base. *)
let check_invariants t =
  let rec sorted_disjoint = function
    | [] | [ _ ] -> true
    | e :: (e' :: _ as rest) ->
        e.addr + e.size <= e'.addr && sorted_disjoint rest
  in
  let rec packed at = function
    | [] -> at = alloc_base t
    | e :: rest -> e.addr = at && e.size > 0 && packed (at + e.size) rest
  in
  List.for_all
    (fun e ->
      e.addr >= alloc_base t && e.addr + e.size <= limit t && e.size > 0)
    t.entries
  && sorted_disjoint t.entries
  && packed t.base t.pinned

(* Pinned entries survive: the pin plan is decided at build time; a
   power loss only invalidates the copied bytes, which the runtime's
   reboot re-copies through the idempotent {!pin}. *)
let reset t =
  t.entries <- [];
  t.next_free <- alloc_base t
