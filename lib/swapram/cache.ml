(* SRAM cache memory structure (paper §3.4).

   Cached function copies live in a contiguous SRAM region. The data
   structure that organises them *is* the replacement policy:

   - [Circular_queue] (the paper's proof-of-concept design, Fig. 5):
     new functions are placed after the most recently cached one,
     wrapping to the region base when the end is reached; functions
     overlapping the allocation are flagged for eviction. First-in
     first-out gives a "least-recently-cached" policy that matches
     code temporal locality and rarely tries to evict ancestors on
     the call stack.

   - [Stack]: maximal density — always allocate at the top of a stack
     of cached functions and evict the most recently cached entries
     to make room ("most-recently-cached" replacement). The paper
     calls this out as counterproductive; we keep it for the ablation
     bench.

   The structure only *plans* placements; the runtime commits them
   after the call-stack-integrity check (active counters) passes. *)

type policy = Circular_queue | Stack | Cost_aware

let policy_name = function
  | Circular_queue -> "circular-queue"
  | Stack -> "stack"
  | Cost_aware -> "cost-aware"

type entry = { fid : int; addr : int; size : int }

type t = {
  base : int;
  capacity : int;
  policy : policy;
  mutable entries : entry list; (* insertion order: oldest first *)
  mutable next_free : int; (* queue policy: next allocation address *)
}

let create ~base ~capacity ~policy =
  { base; capacity; policy; entries = []; next_free = base }

let alloc_point t = t.next_free
let set_alloc_point t addr = t.next_free <- addr

let limit t = t.base + t.capacity

let overlaps a_lo a_hi e = a_lo < e.addr + e.size && e.addr < a_hi

type placement = Too_large | Place of { addr : int; evict : entry list }

let plan t ~size =
  let size = (size + 1) land lnot 1 in
  if size > t.capacity then Too_large
  else
    match t.policy with
    | Circular_queue ->
        let addr =
          if t.next_free + size > limit t then t.base else t.next_free
        in
        let evict = List.filter (overlaps addr (addr + size)) t.entries in
        Place { addr; evict }
    | Cost_aware ->
        (* §3.4's future-work direction: scan the candidate placement
           points (the region base and the end of each cached entry)
           and pick the one whose eviction set costs the least to
           recopy (total evicted bytes), breaking ties toward the
           FIFO allocation point. *)
        let candidates =
          t.base :: t.next_free
          :: List.map (fun e -> e.addr + e.size) t.entries
        in
        let viable =
          List.filter (fun c -> c >= t.base && c + size <= limit t) candidates
        in
        let cost_of c =
          List.fold_left
            (fun acc e -> if overlaps c (c + size) e then acc + e.size else acc)
            0 t.entries
        in
        let best =
          List.fold_left
            (fun acc c ->
              let cost = cost_of c in
              match acc with
              | None -> Some (c, cost)
              | Some (_, best_cost) when cost < best_cost -> Some (c, cost)
              | Some (best_c, best_cost)
                when cost = best_cost && c = t.next_free && best_c <> t.next_free
                ->
                  Some (c, cost)
              | acc -> acc)
            None viable
        in
        (match best with
        | None -> Too_large
        | Some (addr, _) ->
            let evict = List.filter (overlaps addr (addr + size)) t.entries in
            Place { addr; evict })
    | Stack ->
        let top =
          List.fold_left (fun acc e -> max acc (e.addr + e.size)) t.base
            t.entries
        in
        if top + size <= limit t then Place { addr = top; evict = [] }
        else begin
          (* pop most-recent entries until the new function fits *)
          let rec pop evicted = function
            | [] -> (t.base, evicted)
            | rest ->
                let all_but_last = List.filteri (fun i _ -> i < List.length rest - 1) rest in
                let last = List.nth rest (List.length rest - 1) in
                let top' =
                  List.fold_left (fun acc e -> max acc (e.addr + e.size)) t.base
                    all_but_last
                in
                if top' + size <= limit t then (top', last :: evicted)
                else pop (last :: evicted) all_but_last
          in
          let addr, evict = pop [] t.entries in
          Place { addr; evict }
        end

let commit t ~fid ~addr ~size ~evicted =
  let size = (size + 1) land lnot 1 in
  let gone = List.map (fun e -> e.fid) evicted in
  t.entries <-
    List.filter (fun e -> not (List.mem e.fid gone)) t.entries
    @ [ { fid; addr; size } ];
  (match t.policy with
  | Circular_queue | Cost_aware -> t.next_free <- addr + size
  | Stack -> ());
  ()

let evict_only t fids =
  t.entries <- List.filter (fun e -> not (List.mem e.fid fids)) t.entries


let find t fid = List.find_opt (fun e -> e.fid = fid) t.entries
let entries t = t.entries
let used_bytes t = List.fold_left (fun acc e -> acc + e.size) 0 t.entries

(* Structural invariants, used by tests and enabled in the runtime's
   debug mode: entries pairwise disjoint and inside the region. *)
let check_invariants t =
  let rec pairwise = function
    | [] -> true
    | e :: rest ->
        List.for_all (fun e' -> not (overlaps e.addr (e.addr + e.size) e')) rest
        && pairwise rest
  in
  List.for_all
    (fun e -> e.addr >= t.base && e.addr + e.size <= limit t && e.size > 0)
    t.entries
  && pairwise t.entries

let reset t =
  t.entries <- [];
  t.next_free <- t.base
