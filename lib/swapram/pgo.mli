(** Profile-guided function placement.

    Consumes a per-function training profile (call counts, resident
    misses, self instructions/cycles, code sizes) and computes a
    placement: a {e pinned set} of hot functions made permanently
    SRAM-resident (called directly, no redirection protocol), a
    {e placement order} packing the remaining hot cacheable code
    together, and {e FRAM-resident} decisions for cold code whose
    copy-in cost exceeds its wait-state savings.

    The pass is pure integral arithmetic over the profile (cost model
    in {!Costs}): the same profile always produces a byte-identical
    placement. *)

type func_profile = {
  fp_name : string;
  fp_size : int;  (** code bytes after instrumentation, even-rounded *)
  fp_calls : int;  (** dynamic calls observed in training *)
  fp_misses : int;  (** miss-handler copy-ins attributed to it *)
  fp_instrs : int;  (** instructions it executed *)
  fp_cycles : int;  (** cycles attributed to it, stalls included *)
}

type profile = {
  pr_benchmark : string;
  pr_cache_size : int;  (** SRAM cache bytes the training run used *)
  pr_funcs : func_profile list;
}

type placement = {
  pl_pinned : string list;
      (** pin order; anchor addresses pack from the cache base in
          this order (computed by {!Instrument}) *)
  pl_hot_order : string list;
      (** remaining cacheable functions, hottest first — the
          instrumenter lays them out contiguously in NVM *)
  pl_fram_resident : string list;
      (** functions excluded from caching entirely (plain calls) *)
  pl_budget : int;  (** pinned-byte budget the knapsack ran under *)
}

val pin_benefit : func_profile -> int
(** Estimated cycles the training run would have saved with the
    function pinned (protocol + copy-in savings). *)

val place : ?budget:int -> profile -> placement
(** Compute a placement. [budget] caps pinned bytes (default: half
    the cache). The knapsack is greedy on benefit density
    (cycles-saved per pinned byte) and never shrinks the dynamic
    region below the largest function that still needs caching. *)

(** {2 Serialization} — via {!Observe.Json}, deterministic. *)

val profile_to_json : profile -> Observe.Json.t
val profile_of_json : Observe.Json.t -> (profile, string) result
val profile_to_string : profile -> string
val profile_of_string : string -> (profile, string) result
val placement_to_json : placement -> Observe.Json.t
val placement_of_json : Observe.Json.t -> (placement, string) result
val placement_to_string : placement -> string
