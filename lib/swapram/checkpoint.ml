module Cpu = Msp430.Cpu
module Memory = Msp430.Memory
module Trace = Msp430.Trace
module Platform = Msp430.Platform

(* Checkpointing runtime: the classical alternative to software
   caching for intermittent systems (Aksenov et al.'s persistent
   stack, Mapi-Pro's interval snapshots). Instead of keeping
   persistent state in FRAM and using SRAM as a cache, the program
   runs with its data and stack in SRAM at full speed and a periodic
   timer snapshots the volatile machine state — register file and
   dirty SRAM words — into a double-buffered FRAM arena with a
   two-phase commit. After an outage the newest committed snapshot is
   restored wholesale and execution resumes mid-program; with no
   snapshot yet, boot falls back to a cold restart (re-initialising
   the volatile data section, as crt0's .data copy would).

   Crash consistency argument: under the Standard placement the
   toolchain pairs this runtime with, *all* application data lives in
   SRAM, so a restored snapshot is the complete machine state at the
   commit point and replaying the torn interval is deterministic
   re-execution (UART output has at-least-once semantics, as
   everywhere else in the harness). The commit itself is a single
   word write — the simulator's power trigger fires *before* an
   access lands, so a word write is atomic — and each snapshot first
   invalidates its target slot, leaving the other slot's older
   checkpoint intact if the snapshot itself is torn.

   Cost model: like the SwapRAM miss handler, every modeled runtime
   instruction is a counted fetch from a small reserved FRAM region
   plus {!Costs.cycles_per_instr} unstalled cycles, and all snapshot
   and restore traffic moves through counted simulated-memory
   accesses — so an armed power trigger can tear a snapshot, a
   commit, or the restore path itself. *)

type options = {
  interval : int;
      (* architectural instructions between snapshots (the modeled
         timer interrupt period) *)
}

let default_options = { interval = 50_000 }

(* --- FRAM arena layout ------------------------------------------------ *)

(* [ handler charge region | slot 0 | slot 1 ] at the top of FRAM.
   Each slot: [ seq word | 16 registers | full SRAM image ]. A seq of
   0 marks the slot invalid; commits count 1,2,...,0xFFFF,1,... *)

let handler_bytes = 64
let reg_count = 16
let regs_bytes = reg_count * 2
let image_words = Platform.sram_size / 2
let slot_bytes = 2 + regs_bytes + Platform.sram_size
let arena_bytes = handler_bytes + (2 * slot_bytes)
let arena_base = Platform.fram_base + Platform.fram_size - arena_bytes
let slot_base i = arena_base + handler_bytes + (i * slot_bytes)

(* Wraparound-safe "seq [a] is newer than seq [b]" on the 16-bit
   commit counters (both nonzero). *)
let seq_newer a b = (a - b) land 0xFFFF < 0x8000

let next_seq s =
  let n = (s + 1) land 0xFFFF in
  if n = 0 then 1 else n

type stats = {
  mutable snapshots : int; (* committed snapshots *)
  mutable words_written : int; (* dirty SRAM words persisted *)
  mutable restores : int; (* reboots that resumed from a snapshot *)
  mutable restarts : int; (* reboots with no valid snapshot *)
}

type t = {
  mem : Memory.t;
  cpu : Cpu.t;
  options : options;
  stats : stats;
  mutable handler_cursor : int;
  mutable next_slot : int; (* target of the next snapshot, 0 or 1 *)
  mutable seq : int; (* last committed seq (host mirror of FRAM) *)
}

let stats t = t.stats

(* Fetch-and-charge [n] modeled runtime instructions (the SwapRAM
   handler's pattern: counted FRAM ifetch + unstalled cycles). *)
let charge t n =
  let stats = Memory.stats t.mem in
  let observed = Trace.has_observer stats in
  for _ = 1 to n do
    let cur = t.handler_cursor in
    Memory.begin_instruction t.mem;
    if observed then begin
      Trace.emit stats
        (Trace.Instr { pc = arena_base + cur; source = Trace.Handler });
      ignore (Memory.read_word t.mem ~purpose:Memory.Ifetch (arena_base + cur))
    end
    else ignore (Memory.fetch_word_fram t.mem (arena_base + cur));
    Trace.count_instr stats Trace.Handler;
    Trace.add_unstalled stats Costs.cycles_per_instr;
    t.handler_cursor <- (cur + 2) mod handler_bytes
  done

let read_word t addr = Memory.read_word t.mem ~purpose:Memory.Data addr
let write_word t addr v = Memory.write_word t.mem addr v

(* One snapshot, fired from the CPU's periodic hook between
   instructions. Three phases against the slot *not* holding the
   newest checkpoint: (1) atomically invalidate its seq word, so a
   tear below leaves only the other slot valid; (2) save the register
   file and every dirty SRAM word — dirtiness is the word-level
   difference against the slot's current content, modeling an MPU
   dirty bitmap (the uncounted comparison is the hardware's, the
   copy traffic is charged); (3) atomically commit the new seq. *)
let snapshot t =
  charge t Costs.handler_entry_instrs;
  let slot = slot_base t.next_slot in
  charge t 1;
  write_word t slot 0;
  for i = 0 to reg_count - 1 do
    charge t 1;
    write_word t (slot + 2 + (2 * i)) (Cpu.reg t.cpu i)
  done;
  let img = slot + 2 + regs_bytes in
  for w = 0 to image_words - 1 do
    (* one modeled instruction per 16-word group: the dirty-bitmap
       word test *)
    if w land 15 = 0 then charge t 1;
    let sram_addr = Platform.sram_base + (2 * w) in
    if Memory.peek_word t.mem sram_addr <> Memory.peek_word t.mem (img + (2 * w))
    then begin
      charge t Costs.memcpy_per_word_instrs;
      let v = read_word t sram_addr in
      write_word t (img + (2 * w)) v;
      t.stats.words_written <- t.stats.words_written + 1
    end
  done;
  charge t Costs.handler_exit_instrs;
  let seq = next_seq t.seq in
  write_word t slot seq;
  (* the commit landed: update the host mirrors (a tear above leaves
     them at the previous committed snapshot, matching FRAM) *)
  t.seq <- seq;
  t.next_slot <- 1 - t.next_slot;
  t.stats.snapshots <- t.stats.snapshots + 1

type boot = Resumed | Restarted

(* Power-loss recovery: pick the newest committed slot and restore it
   wholesale (registers last — including PC/SP, so the caller must
   not reload the entry vector on [Resumed]). All restore traffic is
   counted, so an armed trigger can tear the restore; the routine is
   idempotent and the injector just reruns it. With no valid slot,
   re-initialise the volatile (SRAM-resident) data items from the
   image and report [Restarted]. *)
let reboot t ~image =
  charge t 1;
  let s0 = read_word t (slot_base 0) in
  charge t 1;
  let s1 = read_word t (slot_base 1) in
  let pick =
    match (s0 <> 0, s1 <> 0) with
    | false, false -> None
    | true, false -> Some (0, s0)
    | false, true -> Some (1, s1)
    | true, true -> if seq_newer s0 s1 then Some (0, s0) else Some (1, s1)
  in
  let outcome =
    match pick with
    | None ->
        charge t Costs.handler_entry_instrs;
        let map = Memory.map t.mem in
        List.iter
          (fun (item : Masm.Assembler.item_info) ->
            if
              item.Masm.Assembler.info_section = Masm.Ast.Data
              && Memory.region_of map item.Masm.Assembler.info_addr = Memory.Sram
            then begin
              let addr, bytes =
                Masm.Assembler.item_initial image item.Masm.Assembler.info_name
              in
              Bytes.iteri
                (fun i c ->
                  if i land 1 = 0 then charge t 1;
                  Memory.write_byte t.mem (addr + i) (Char.code c))
                bytes
            end)
          image.Masm.Assembler.items;
        t.stats.restarts <- t.stats.restarts + 1;
        Restarted
    | Some (i, seq) ->
        charge t Costs.handler_entry_instrs;
        let slot = slot_base i in
        let img = slot + 2 + regs_bytes in
        for w = 0 to image_words - 1 do
          charge t Costs.memcpy_per_word_instrs;
          let v = read_word t (img + (2 * w)) in
          Memory.write_word t.mem (Platform.sram_base + (2 * w)) v
        done;
        for r = 0 to reg_count - 1 do
          charge t 1;
          Cpu.set_reg t.cpu r (read_word t (slot + 2 + (2 * r)))
        done;
        t.seq <- seq;
        t.next_slot <- 1 - i;
        t.stats.restores <- t.stats.restores + 1;
        Resumed
  in
  (* restart the snapshot period from here: a partially elapsed
     period must not fire immediately on resume *)
  Cpu.rearm_periodic_hook t.cpu;
  outcome

(* Runtime-critical FRAM windows for adversarial fault injection:
   outages landing inside these are mid-snapshot, on a commit word,
   or inside restore's own reads. *)
let critical_windows t =
  ignore t;
  [
    ("ckpt-handler", arena_base, arena_base + handler_bytes);
    ("ckpt-slot0", slot_base 0, slot_base 0 + slot_bytes);
    ("ckpt-slot1", slot_base 1, slot_base 1 + slot_bytes);
  ]

let install ~options (system : Platform.system) =
  let t =
    {
      mem = system.Platform.memory;
      cpu = system.Platform.cpu;
      options;
      stats = { snapshots = 0; words_written = 0; restores = 0; restarts = 0 };
      handler_cursor = 0;
      next_slot = 0;
      seq = 0;
    }
  in
  (* both slots start invalid *)
  Memory.poke_word t.mem (slot_base 0) 0;
  Memory.poke_word t.mem (slot_base 1) 0;
  Cpu.set_periodic_hook t.cpu ~interval:options.interval
    (Some (fun _ -> snapshot t));
  t
