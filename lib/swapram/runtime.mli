(** SwapRAM's runtime component: the cache miss handler (paper §3.3,
    Fig. 4), installed as a trap handler on the simulated CPU.

    All state the handler touches — funcId, function table,
    redirection entries, active counters, relocation tables, the
    copied code itself — moves through counted simulated-memory
    accesses, and the handler's own execution is charged as
    instruction fetches from the reserved FRAM runtime region per the
    cost model in {!Costs}, so Figure 8's source breakdown and Table
    2's cycle counts stay faithful. *)

type table_addrs = {
  a_funcid : int;
  a_redirect : int;
  a_active : int;
  a_functab : int;
  a_reloc : int;
  a_relofs : int;
  a_handler : int;
  handler_size : int;
  a_memcpy : int;
  memcpy_size : int;
}

type stats = {
  mutable misses : int;
  mutable aborts : int;
      (** caching operations abandoned because every viable placement
          would evict an active function — the callee then runs from
          NVRAM (§3.3.3) *)
  mutable too_large : int;  (** functions that can never fit the cache *)
  mutable frozen_misses : int;  (** misses served from NVM in freeze mode *)
  mutable evictions : int;
  mutable words_copied : int;
  mutable placement_retries : int;
      (** allocations moved past an active (un-evictable) function *)
  mutable prefetches : int;
      (** callees cached ahead of their first call (prefetch extension) *)
  mutable pins : int;
      (** profile-guided pinned functions copied in, across the
          install and every reboot *)
}

type t = {
  cache : Cache.t;
  mem : Msp430.Memory.t;
  addrs : table_addrs;
  options : Config.options;
  callees : int list array;
  pinned_anchors : (int * int) list;
      (** profile-guided [(fid, anchor)] pins from the manifest *)
  stats : stats;
  mutable handler_cursor : int;
  mutable memcpy_cursor : int;
  mutable consecutive_aborts : int;
  mutable freeze_left : int;
}

val stats : t -> stats

val cached_function_at : t -> int -> int option
(** Which cacheable function (fid) owns the SRAM cache copy containing
    the given address, if any — the observability layer's dynamic
    symbolizer for pc values inside the cache region. Pure host-side
    inspection: no counted accesses, no perturbation. *)

val reboot : t -> image:Masm.Assembler.t -> unit
(** Power-loss recovery for intermittent deployments (paper §1/§2.2):
    the SRAM cache contents are gone, so reset the cache structure and
    restore the FRAM metadata words (redirection entries, relocation
    slots, active counters, funcId) to their initial post-link values.
    Application data in FRAM is untouched — that persistence is the
    point of NVRAM systems. The caller clears/loses SRAM and resets
    the CPU itself (see {!Msp430.Platform.power_fail}).

    The restore writes are counted FRAM accesses, so an armed power
    trigger ({!Msp430.Memory.arm_power_trigger}) can interrupt the
    reboot itself with {!Msp430.Memory.Power_loss}; the routine is
    idempotent, so simply rerunning it recovers. *)

val critical_windows :
  t -> image:Masm.Assembler.t -> (string * int * int) list
(** Named [(lo, hi)] FRAM address windows whose accesses belong to the
    caching runtime (handler region, memcpy region, redirection /
    relocation / active-counter tables) — the adversarial
    fault-injection targets. *)

val install :
  options:Config.options ->
  manifest:Instrument.manifest ->
  image:Masm.Assembler.t ->
  Msp430.Platform.system ->
  t
(** Arm the miss-handler trap and the Figure-8 instruction-source
    classifier on [system], then copy in any profile-guided pinned
    functions (the manifest's anchors). The image must already be
    built from the instrumented program {e and loaded into the
    system's memory} (pinning reads the NVM code); {!Pipeline.install}
    does both. *)
