module A = Masm.Ast
module Isa = Msp430.Isa

(* SwapRAM's compile-time pass (paper §3.2, Fig. 2/3).

   Two-phase, as in the paper's implementation (§4):

   Phase 1 rewrites every call to a cacheable function into the
   dynamic-redirection protocol:

       ADD  #1,   &__sr_active+2*fid   ; active counter (call-stack integrity)
       MOV  #fid, &__sr_funcid         ; tell the handler who is called
       CALL &__sr_redirect+2*fid       ; indirect call through redirection entry
       SUB  #1,   &__sr_active+2*fid

   and assembles an intermediate binary, which fixes the layout and
   lets the linker-style relaxation turn out-of-range jumps into
   absolute branches.

   Phase 2 scans the relaxed program for absolute branches inside
   cacheable functions and replaces each with a branch through a
   relocation entry (MOV &__sr_reloc+2k, PC), then emits the runtime
   metadata: redirection table, active counters, function table
   (NVM address, size, reloc range), relocation slot and offset
   tables, and the reserved FRAM region for the handler + memcpy
   code whose size scales with the number of relocatable branches
   (as the paper measures in §5.2). *)

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type func_meta = {
  fid : int;
  fm_name : string;
  mutable fm_size : int;
  mutable reloc_start : int;
  mutable reloc_count : int;
}

type manifest = {
  funcs : func_meta array;
  fid_of_name : (string, int) Hashtbl.t;
  num_relocs : int;
  handler_bytes : int;
  memcpy_bytes : int;
  metadata_bytes : int;
  callees : int list array;
      (* static call graph between cacheable functions, used by the
         optional prefetch extension *)
  pinned_anchors : (int * int) list;
      (* profile-guided pins: (fid, SRAM anchor address) in pin
         order; call sites to these functions are direct CALLs to the
         anchor and the runtime copies them in once at install *)
}

let fid_of manifest name = Hashtbl.find_opt manifest.fid_of_name name

(* Functions eligible for caching: all text items except the entry
   stub, the runtime's own reserved items and the blacklist. *)
let cacheable_names ~blacklist program =
  List.filter_map
    (fun (it : A.item) ->
      if it.A.section <> A.Text then None
      else if it.A.name = "_start" then None
      else if List.mem it.A.name blacklist then None
      else Some it.A.name)
    program

let end_label name = name ^ "$end"

(* --- Phase 1: call-site rewriting ---------------------------------- *)

let rewrite_call fid =
  [
    A.Instr
      (A.I1
         ( Isa.ADD,
           Isa.W,
           A.Simm (A.Num 1),
           A.Dabs (A.Lab_off (Config.sym_active, 2 * fid)) ));
    A.Instr
      (A.I1
         ( Isa.MOV,
           Isa.W,
           A.Simm (A.Num fid),
           A.Dabs (A.Lab Config.sym_funcid) ));
    A.Instr (A.Call_ind (A.Lab_off (Config.sym_redirect, 2 * fid)));
    A.Instr
      (A.I1
         ( Isa.SUB,
           Isa.W,
           A.Simm (A.Num 1),
           A.Dabs (A.Lab_off (Config.sym_active, 2 * fid)) ));
  ]

(* [anchor_of fid] is the SRAM anchor of a pinned function: its call
   sites become a single direct CALL — the function is permanently
   resident, so no redirection protocol, no active counter, no
   runtime lookup. *)
let rewrite_calls fid_of_name ?record_callee ~anchor_of (it : A.item) =
  let stmts =
    List.concat_map
      (fun stmt ->
        match stmt with
        | A.Instr (A.Call (A.Lab f)) -> (
            match Hashtbl.find_opt fid_of_name f with
            | Some fid -> (
                match anchor_of fid with
                | Some anchor ->
                    (* pinned callees never need prefetching, so they
                       stay out of the static call graph *)
                    [ A.Instr (A.Call (A.Num anchor)) ]
                | None ->
                    Option.iter (fun record -> record fid) record_callee;
                    rewrite_call fid)
            | None -> [ stmt ])
        | A.Instr (A.Call (A.Num a)) ->
            error "%s: call to raw address 0x%04X cannot be instrumented"
              it.A.name a
        | s -> [ s ])
      it.A.stmts
  in
  { it with A.stmts }

(* --- Phase 2: branch relocation ------------------------------------ *)

let labels_of_item (it : A.item) =
  let tbl = Hashtbl.create 16 in
  Hashtbl.replace tbl it.A.name ();
  List.iter
    (function A.Label l -> Hashtbl.replace tbl l () | _ -> ())
    it.A.stmts;
  tbl

(* Replace intra-function absolute branches with relocation-entry
   branches; returns the rewritten item and the targets in order. *)
let relocate_branches (it : A.item) ~next_reloc =
  let local = labels_of_item it in
  let targets = ref [] in
  let stmts =
    List.map
      (fun stmt ->
        match stmt with
        | A.Instr (A.Br (A.Lab l)) when Hashtbl.mem local l ->
            let k = next_reloc + List.length !targets in
            targets := l :: !targets;
            A.Instr (A.Br_ind (A.Lab_off (Config.sym_reloc, 2 * k)))
        | A.Instr (A.Br (A.Lab l)) ->
            error "%s: absolute branch to foreign label %s" it.A.name l
        | s -> s)
      it.A.stmts
  in
  ({ it with A.stmts }, List.rev !targets)

(* --- Metadata generation -------------------------------------------- *)

(* Metadata lives in FRAM alongside the code (Text placement): the
   paper keeps runtime metadata in FRAM, and in the split-SRAM
   configuration (§5.5) SRAM holds only program data + the cache. *)
let metadata_items manifest ~reloc_targets =
  let n = Array.length manifest.funcs in
  let words_item name words = A.item ~section:A.Text name words in
  let funcid = words_item Config.sym_funcid [ A.Word (A.Num 0) ] in
  let redirect =
    words_item Config.sym_redirect
      (List.init n (fun _ -> A.Word (A.Num Config.miss_handler_trap)))
  in
  let active =
    words_item Config.sym_active (List.init n (fun _ -> A.Word (A.Num 0)))
  in
  let functab =
    words_item Config.sym_functab
      (List.concat_map
         (fun fm ->
           [
             A.Word (A.Lab fm.fm_name);
             A.Word (A.Diff (end_label fm.fm_name, fm.fm_name));
             A.Word (A.Num fm.reloc_start);
             A.Word (A.Num fm.reloc_count);
           ])
         (Array.to_list manifest.funcs))
  in
  let reloc =
    words_item Config.sym_reloc
      (List.map (fun target -> A.Word (A.Lab target)) reloc_targets)
  in
  let relofs =
    words_item Config.sym_relofs
      (List.map2
         (fun target owner -> A.Word (A.Diff (target, owner)))
         reloc_targets
         (List.concat_map
            (fun fm -> List.init fm.reloc_count (fun _ -> fm.fm_name))
            (Array.to_list manifest.funcs)))
  in
  [ funcid; redirect; active; functab; reloc; relofs ]

let runtime_items manifest =
  [
    A.item Config.sym_handler [ A.Space manifest.handler_bytes ];
    A.item Config.sym_memcpy [ A.Space manifest.memcpy_bytes ];
  ]

(* --- Driver ---------------------------------------------------------- *)

(* Profile-guided NVM layout: cacheable functions named by the
   placement move to the end of the text segment in placement order
   (hot cacheable code first, pinned code last), so hot code packs
   together away from the cold FRAM-resident items, which keep their
   original order at the front alongside the entry stub. *)
let reorder_for_pgo (p : Pgo.placement) program =
  let rank = Hashtbl.create 64 in
  List.iteri
    (fun i name -> if not (Hashtbl.mem rank name) then Hashtbl.replace rank name i)
    (p.Pgo.pl_hot_order @ p.Pgo.pl_pinned);
  let ranked, rest =
    List.partition
      (fun (it : A.item) ->
        it.A.section = A.Text && Hashtbl.mem rank it.A.name)
      program
  in
  let ranked =
    List.stable_sort
      (fun (a : A.item) (b : A.item) ->
        compare (Hashtbl.find rank a.A.name) (Hashtbl.find rank b.A.name))
      ranked
  in
  rest @ ranked

let instrument ?(options = Config.default_options) ~layout program =
  let placement = options.Config.pgo in
  let program =
    match placement with
    | Some p -> reorder_for_pgo p program
    | None -> program
  in
  (* FRAM-resident decisions are just additional blacklist entries:
     their call sites stay plain CALLs and they get no metadata *)
  let blacklist =
    options.Config.blacklist
    @ (match placement with Some p -> p.Pgo.pl_fram_resident | None -> [])
  in
  let names = cacheable_names ~blacklist program in
  let fid_of_name = Hashtbl.create 64 in
  List.iteri (fun i name -> Hashtbl.replace fid_of_name name i) names;
  let funcs =
    Array.of_list
      (List.mapi
         (fun i name ->
           { fid = i; fm_name = name; fm_size = 0; reloc_start = 0; reloc_count = 0 })
         names)
  in
  let n = Array.length funcs in
  let pinned_names =
    match placement with
    | None -> []
    | Some p -> List.filter (Hashtbl.mem fid_of_name) p.Pgo.pl_pinned
  in
  let callees = Array.make n [] in
  (* minimal metadata so the intermediate assembly resolves symbols *)
  let meta_stub =
    [
      A.item Config.sym_funcid [ A.Word (A.Num 0) ];
      A.item Config.sym_redirect
        (List.init n (fun _ -> A.Word (A.Num Config.miss_handler_trap)));
      A.item Config.sym_active
        (List.init n (fun _ -> A.Word (A.Num 0)));
    ]
  in
  (* phase 1, parameterized by the pinned-anchor assignment: rewrite
     call sites (redirection protocol, or direct CALL #anchor for
     pinned callees); append end labels to cacheable items; record
     the static call graph for the prefetch extension *)
  let assemble_phase1 anchors =
    Array.fill callees 0 n [];
    let anchor_of fid = Hashtbl.find_opt anchors fid in
    let items =
      List.map
        (fun (it : A.item) ->
          let record_callee =
            match Hashtbl.find_opt fid_of_name it.A.name with
            | Some caller ->
                Some
                  (fun callee ->
                    if callee <> caller && not (List.mem callee callees.(caller))
                    then callees.(caller) <- callees.(caller) @ [ callee ])
            | None -> None
          in
          let it =
            if it.A.section = A.Text then
              rewrite_calls fid_of_name ?record_callee ~anchor_of it
            else it
          in
          if Hashtbl.mem fid_of_name it.A.name then
            { it with A.stmts = it.A.stmts @ [ A.Label (end_label it.A.name) ] }
          else it)
        program
    in
    Masm.Assembler.assemble ~layout (items @ meta_stub)
  in
  (* Pinned anchors pack from the cache base in pin order, exactly as
     Cache.pin will replay at install time. The anchor values feed
     back into the call sites, but a CALL #imm encodes the same size
     whatever the immediate, so a probe assembly with placeholder
     anchors already has the final layout and yields exact sizes. *)
  let anchors = Hashtbl.create 8 in
  let pinned_anchors = ref [] in
  let intermediate =
    if pinned_names = [] then assemble_phase1 anchors
    else begin
      List.iter
        (fun name ->
          Hashtbl.replace anchors (Hashtbl.find fid_of_name name)
            options.Config.cache_base)
        pinned_names;
      let probe = assemble_phase1 anchors in
      let cursor = ref options.Config.cache_base in
      List.iter
        (fun name ->
          let fid = Hashtbl.find fid_of_name name in
          let size =
            Masm.Assembler.lookup probe (end_label name)
            - Masm.Assembler.lookup probe name
          in
          let size = (size + 1) land lnot 1 in
          Hashtbl.replace anchors fid !cursor;
          pinned_anchors := (fid, !cursor) :: !pinned_anchors;
          cursor := !cursor + size)
        pinned_names;
      if !cursor - options.Config.cache_base > options.Config.cache_size then
        error "pgo: pinned set (%d bytes) exceeds the %d-byte cache region"
          (!cursor - options.Config.cache_base)
          options.Config.cache_size;
      assemble_phase1 anchors
    end
  in
  let pinned_anchors = List.rev !pinned_anchors in
  (* function sizes, for profile construction on training runs *)
  Array.iter
    (fun fm ->
      fm.fm_size <-
        Masm.Assembler.lookup intermediate (end_label fm.fm_name)
        - Masm.Assembler.lookup intermediate fm.fm_name)
    funcs;
  let resolved = intermediate.Masm.Assembler.resolved in
  (* phase 2: relocate absolute branches in cacheable functions *)
  let next_reloc = ref 0 in
  let all_targets = ref [] in
  let phase2 =
    List.filter_map
      (fun (it : A.item) ->
        if List.exists (fun n -> n = it.A.name)
             [ Config.sym_funcid; Config.sym_redirect; Config.sym_active ]
        then None (* drop stubs; re-emitted in full metadata *)
        else if Hashtbl.mem fid_of_name it.A.name then begin
          let it', targets = relocate_branches it ~next_reloc:!next_reloc in
          let fm = funcs.(Hashtbl.find fid_of_name it.A.name) in
          fm.reloc_start <- !next_reloc;
          fm.reloc_count <- List.length targets;
          next_reloc := !next_reloc + List.length targets;
          all_targets := !all_targets @ targets;
          Some it'
        end
        else Some it)
      resolved
  in
  let num_relocs = !next_reloc in
  (* handler size model, calibrated against the paper's §5.2 range
     (972-1844 bytes, growing with the number of relocatable branches) *)
  let handler_bytes = (940 + (6 * num_relocs) + (4 * n) + 1) land lnot 1 in
  let memcpy_bytes = 64 in
  let metadata_bytes = 2 + (2 * n) + (2 * n) + (8 * n) + (4 * num_relocs) in
  let manifest =
    {
      funcs;
      fid_of_name;
      num_relocs;
      handler_bytes;
      memcpy_bytes;
      metadata_bytes;
      callees;
      pinned_anchors;
    }
  in
  let final_program =
    phase2 @ runtime_items manifest
    @ metadata_items manifest ~reloc_targets:!all_targets
  in
  (final_program, manifest)
