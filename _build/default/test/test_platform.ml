(* Platform model unit tests: hardware read cache, wait states,
   contention, energy model, memory faults. *)

module Memory = Msp430.Memory
module Hwcache = Msp430.Hwcache
module Trace = Msp430.Trace
module Energy = Msp430.Energy
module Platform = Msp430.Platform

let make_memory ?(wait_states = 3) () =
  let stats = Trace.create () in
  let mem =
    Memory.create ~wait_states ~map:Platform.fr2355_map ~stats ()
  in
  (mem, stats)

let suite =
  [
    Alcotest.test_case "hwcache: sequential reads hit after fill" `Quick
      (fun () ->
        let c = Hwcache.create () in
        Alcotest.(check bool) "first miss" false (Hwcache.read c 0x4000);
        Alcotest.(check bool) "same line hits" true (Hwcache.read c 0x4002);
        Alcotest.(check bool) "same line hits" true (Hwcache.read c 0x4006);
        Alcotest.(check bool) "next line misses" false (Hwcache.read c 0x4008));
    Alcotest.test_case "hwcache: two ways per set" `Quick (fun () ->
        let c = Hwcache.create () in
        (* same set (line stride = sets * line_bytes = 16) *)
        ignore (Hwcache.read c 0x4000);
        ignore (Hwcache.read c 0x4010);
        Alcotest.(check bool) "both resident" true (Hwcache.read c 0x4000);
        Alcotest.(check bool) "both resident" true (Hwcache.read c 0x4010);
        (* third line in the set evicts the LRU way *)
        ignore (Hwcache.read c 0x4020);
        let hit_a = Hwcache.read c 0x4000 in
        let hit_b = Hwcache.read c 0x4010 in
        Alcotest.(check bool) "one of the two evicted" true
          (not (hit_a && hit_b)));
    Alcotest.test_case "hwcache: write invalidates" `Quick (fun () ->
        let c = Hwcache.create () in
        ignore (Hwcache.read c 0x4000);
        Alcotest.(check bool) "hit" true (Hwcache.read c 0x4000);
        Hwcache.write c 0x4000;
        Alcotest.(check bool) "invalidated" false (Hwcache.read c 0x4000));
    Alcotest.test_case "fram read miss costs wait states" `Quick (fun () ->
        let mem, stats = make_memory () in
        Memory.begin_instruction mem;
        ignore (Memory.read_word mem ~purpose:Memory.Data 0x4000);
        Alcotest.(check int) "3 stalls" 3 stats.Trace.stall_cycles;
        Memory.begin_instruction mem;
        ignore (Memory.read_word mem ~purpose:Memory.Data 0x4002);
        Alcotest.(check int) "hit adds none" 3 stats.Trace.stall_cycles);
    Alcotest.test_case "second fram access in an instruction pays contention"
      `Quick (fun () ->
        let mem, stats = make_memory ~wait_states:0 () in
        Memory.begin_instruction mem;
        ignore (Memory.read_word mem ~purpose:Memory.Ifetch 0x4000);
        ignore (Memory.read_word mem ~purpose:Memory.Data 0x5000);
        Alcotest.(check int) "one contention stall" 1 stats.Trace.stall_cycles);
    Alcotest.test_case "sram access is free of stalls" `Quick (fun () ->
        let mem, stats = make_memory () in
        Memory.begin_instruction mem;
        ignore (Memory.read_word mem ~purpose:Memory.Data 0x2000);
        Memory.write_word mem 0x2002 42;
        Alcotest.(check int) "no stalls" 0 stats.Trace.stall_cycles;
        Alcotest.(check int) "counted" 2 (Trace.sram_accesses stats));
    Alcotest.test_case "fram write always pays wait states" `Quick (fun () ->
        let mem, stats = make_memory () in
        Memory.begin_instruction mem;
        ignore (Memory.read_word mem ~purpose:Memory.Data 0x4000);
        Memory.begin_instruction mem;
        Memory.write_word mem 0x4000 1;
        (* 3 (read miss) + 3 (write) *)
        Alcotest.(check int) "write stalls" 6 stats.Trace.stall_cycles);
    Alcotest.test_case "unaligned word access faults" `Quick (fun () ->
        let mem, _ = make_memory () in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Memory.read_word mem ~purpose:Memory.Data 0x4001);
             false
           with Memory.Fault _ -> true));
    Alcotest.test_case "unmapped access faults" `Quick (fun () ->
        let mem, _ = make_memory () in
        Alcotest.(check bool) "raises" true
          (try
             Memory.write_word mem 0x0000 1;
             false
           with Memory.Fault _ -> true));
    Alcotest.test_case "energy: fram-heavy run costs more" `Quick (fun () ->
        let fram_stats = Trace.create () in
        fram_stats.Trace.unstalled_cycles <- 1000;
        fram_stats.Trace.fram_ifetch <- 800;
        let sram_stats = Trace.create () in
        sram_stats.Trace.unstalled_cycles <- 1000;
        sram_stats.Trace.sram_ifetch <- 800;
        let e_fram = Energy.evaluate Energy.point_24mhz fram_stats in
        let e_sram = Energy.evaluate Energy.point_24mhz sram_stats in
        Alcotest.(check bool) "fram > sram" true
          (e_fram.Energy.energy_nj > e_sram.Energy.energy_nj));
    Alcotest.test_case "energy: 24MHz is more efficient per cycle" `Quick
      (fun () ->
        Alcotest.(check bool) "core energy" true
          (Energy.point_24mhz.Energy.core_nj_per_cycle
          < Energy.point_8mhz.Energy.core_nj_per_cycle));
    Alcotest.test_case "cache-hit energy close to sram" `Quick (fun () ->
        let p = Energy.point_24mhz in
        Alcotest.(check bool) "ordering" true
          (p.Energy.fram_read_hit_nj < p.Energy.fram_read_miss_nj /. 4.0));
  ]
