(* Encoding/decoding unit and property tests. *)

module Isa = Msp430.Isa
module Encoding = Msp430.Encoding
module Word = Msp430.Word

let check_roundtrip ?(addr = 0x4400) instr () =
  let words = Encoding.encode ~addr instr in
  let mem = Array.of_list words in
  let fetch a =
    let idx = (a - addr) / 2 in
    mem.(idx)
  in
  let decoded, size = Encoding.decode ~fetch ~addr in
  Alcotest.(check int) "size" (Isa.size_bytes instr) size;
  Alcotest.(check string)
    "instruction" (Isa.to_string instr) (Isa.to_string decoded);
  if not (Isa.equal instr decoded) then
    Alcotest.failf "structural mismatch: %s vs %s" (Isa.to_string instr)
      (Isa.to_string decoded)

let unit_cases =
  [
    Isa.I1 (Isa.MOV, Isa.W, Isa.Sreg 12, Isa.Dreg 13);
    Isa.I1 (Isa.ADD, Isa.W, Isa.Simm 1, Isa.Dreg 12);
    Isa.I1 (Isa.ADD, Isa.W, Isa.Simm 0x1234, Isa.Dreg 12);
    Isa.I1 (Isa.MOV, Isa.W, Isa.SimmX 2, Isa.Dreg 4);
    Isa.I1 (Isa.MOV, Isa.B, Isa.Sidx (10, 5), Isa.Didx (0xFFFE, 6));
    Isa.I1 (Isa.CMP, Isa.W, Isa.Sabs 0x2000, Isa.Dabs 0x2002);
    Isa.I1 (Isa.XOR, Isa.W, Isa.Sinc 7, Isa.Dreg 8);
    Isa.I1 (Isa.MOV, Isa.W, Isa.Sind 9, Isa.Dreg 0);
    Isa.I1 (Isa.MOV, Isa.W, Isa.Ssym 0x4500, Isa.Dsym 0x4600);
    Isa.I2 (Isa.PUSH, Isa.W, Isa.Sreg 12);
    Isa.I2 (Isa.PUSH, Isa.W, Isa.Simm 8);
    Isa.I2 (Isa.PUSH, Isa.W, Isa.SimmX 8);
    Isa.I2 (Isa.CALL, Isa.W, Isa.Simm 0x4400);
    Isa.I2 (Isa.CALL, Isa.W, Isa.Simm 2);
    Isa.I2 (Isa.CALL, Isa.W, Isa.Sabs 0x2100);
    Isa.I2 (Isa.RRA, Isa.W, Isa.Sreg 12);
    Isa.I2 (Isa.RRC, Isa.B, Isa.Sidx (4, 4));
    Isa.I2 (Isa.SXT, Isa.W, Isa.Sreg 15);
    Isa.Jcc (Isa.JNE, -1);
    Isa.Jcc (Isa.JMP, 511);
    Isa.Jcc (Isa.JL, -512);
    Isa.RETI;
  ]

(* Random instruction generator for the round-trip property. *)
let gen_reg = QCheck2.Gen.int_range 4 15
let gen_word = QCheck2.Gen.int_range 0 0xFFFF

let gen_src =
  let open QCheck2.Gen in
  oneof
    [
      map (fun r -> Isa.Sreg r) gen_reg;
      map2 (fun x r -> Isa.Sidx (x, r)) gen_word gen_reg;
      map (fun r -> Isa.Sind r) gen_reg;
      map (fun r -> Isa.Sinc r) gen_reg;
      map (fun v -> Isa.Simm v) gen_word;
      map
        (fun v -> Isa.SimmX v)
        (oneofl [ 0; 1; 2; 4; 8; 0xFFFF ]);
      map (fun a -> Isa.Sabs a) gen_word;
      map (fun a -> Isa.Ssym a) gen_word;
    ]

let gen_dst =
  let open QCheck2.Gen in
  oneof
    [
      map (fun r -> Isa.Dreg r) gen_reg;
      map2 (fun x r -> Isa.Didx (x, r)) gen_word gen_reg;
      map (fun a -> Isa.Dabs a) gen_word;
      map (fun a -> Isa.Dsym a) gen_word;
    ]

let gen_op1 =
  QCheck2.Gen.oneofl
    Isa.
      [ MOV; ADD; ADDC; SUBC; SUB; CMP; DADD; BIT; BIC; BIS; XOR; AND ]

let gen_op2 = QCheck2.Gen.oneofl Isa.[ RRC; SWPB; RRA; SXT; PUSH; CALL ]
let gen_size = QCheck2.Gen.oneofl Isa.[ W; B ]

let gen_instr =
  let open QCheck2.Gen in
  oneof
    [
      (let* op = gen_op1 in
       let* sz = gen_size in
       let* s = gen_src in
       let* d = gen_dst in
       return (Isa.I1 (op, sz, s, d)));
      (let* op = gen_op2 in
       let* s = gen_src in
       (* CALL never uses the constant generator, so SimmX does not
          arise for it. *)
       let s =
         match (op, s) with
         | Isa.CALL, Isa.SimmX v -> Isa.Simm v
         | _ -> s
       in
       return (Isa.I2 (op, Isa.W, s)));
      (let* c = oneofl Isa.[ JNE; JEQ; JNC; JC; JN; JGE; JL; JMP ] in
       let* off = int_range (-512) 511 in
       return (Isa.Jcc (c, off)));
    ]

let roundtrip_prop =
  QCheck2.Test.make ~count:2000 ~name:"encode/decode round-trip" gen_instr
    (fun instr ->
      let addr = 0x4400 in
      let words = Encoding.encode ~addr instr in
      let mem = Array.of_list words in
      let fetch a = mem.((a - addr) / 2) in
      let decoded, size = Encoding.decode ~fetch ~addr in
      Isa.equal instr decoded && size = Isa.size_bytes instr)

let size_prop =
  QCheck2.Test.make ~count:2000 ~name:"encoded size matches size_bytes"
    gen_instr (fun instr ->
      let words = Encoding.encode ~addr:0x5000 instr in
      2 * List.length words = Isa.size_bytes instr)

let suite =
  List.mapi
    (fun i instr ->
      Alcotest.test_case
        (Printf.sprintf "roundtrip %d: %s" i (Isa.to_string instr))
        `Quick (check_roundtrip instr))
    unit_cases
  @ [
      QCheck_alcotest.to_alcotest roundtrip_prop;
      QCheck_alcotest.to_alcotest size_prop;
    ]
