test/test_isa.ml: Alcotest Array List Msp430 Printf QCheck2 QCheck_alcotest
