test/test_swapram.ml: Alcotest Array Char List Masm Minic Msp430 Option Printf QCheck2 QCheck_alcotest String Swapram
