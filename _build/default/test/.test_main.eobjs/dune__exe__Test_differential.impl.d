test/test_differential.ml: Alcotest Blockcache List Masm Minic Msp430 Printf QCheck2 QCheck_alcotest String Swapram Workloads
