test/test_platform.ml: Alcotest Msp430
