test/test_validation.ml: Alcotest Blockcache Experiments List Msp430 Printf Swapram Workloads
