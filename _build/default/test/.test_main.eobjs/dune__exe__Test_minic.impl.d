test/test_minic.ml: Alcotest Char Masm Minic Msp430
