test/test_cpu.ml: Alcotest Char List Masm Msp430 QCheck2 QCheck_alcotest
