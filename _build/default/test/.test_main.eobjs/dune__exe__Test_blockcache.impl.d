test/test_blockcache.ml: Alcotest Array Blockcache Format Hashtbl List Masm Minic Msp430 Printf
