test/test_asm.ml: Alcotest Char List Masm Msp430
