(* BIT — bit counting with five different counter implementations
   selected through a switch statement (the paper replaces the MiBench
   jump table with exactly this switch so the static pass can see all
   call targets, §4). *)

let data_len = 256
let iterations = 4

let source seed =
  let g = Gen.create (seed + 808) in
  let data = Gen.int_list g data_len 0x10000 in
  let tab = List.init 256 (fun i ->
      let rec pop v = if v = 0 then 0 else (v land 1) + pop (v lsr 1) in
      pop i)
  in
  let tab4 = List.init 16 (fun i ->
      let rec pop v = if v = 0 then 0 else (v land 1) + pop (v lsr 1) in
      pop i)
  in
  Printf.sprintf
    {|
%s
unsigned data[%d] = %s;
char tab[256] = %s;
char tab4[16] = %s;

int bc_loop(unsigned x) {
  int c = 0;
  while (x) { c += x & 1; x = x >> 1; }
  return c;
}

int bc_kernighan(unsigned x) {
  int c = 0;
  while (x) { x = x & (x - 1); c++; }
  return c;
}

int bc_table(unsigned x) {
  return tab[x & 255] + tab[(x >> 8) & 255];
}

int bc_nibble(unsigned x) {
  return tab4[x & 15] + tab4[(x >> 4) & 15]
       + tab4[(x >> 8) & 15] + tab4[(x >> 12) & 15];
}

int bc_shift(unsigned x) {
  x = (x & 0x5555) + ((x >> 1) & 0x5555);
  x = (x & 0x3333) + ((x >> 2) & 0x3333);
  x = (x & 0x0f0f) + ((x >> 4) & 0x0f0f);
  return (x + (x >> 8)) & 0x1f;
}

int count_with(int style, unsigned x) {
  switch (style) {
    case 0: return bc_loop(x);
    case 1: return bc_kernighan(x);
    case 2: return bc_table(x);
    case 3: return bc_nibble(x);
    default: return bc_shift(x);
  }
}

int main(void) {
  unsigned total = 0;
  int it;
  for (it = 0; it < %d; it++) {
    int style;
    for (style = 0; style < 5; style++) {
      int i;
      int sum = 0;
      for (i = 0; i < %d; i++) sum += count_with(style, data[i]);
      total = (total << 1 | total >> 15) ^ sum;
    }
  }
  print_hex(total);
  return total;
}
|}
    Bench_def.prelude data_len (Gen.c_array data) (Gen.c_array tab)
    (Gen.c_array tab4) iterations data_len

let benchmark =
  {
    Bench_def.name = "bitcount";
    short = "BIT";
    source;
    fits_data_in_sram = true;
  }
