lib/workloads/dijkstra.ml: Bench_def Clib Gen List Printf
