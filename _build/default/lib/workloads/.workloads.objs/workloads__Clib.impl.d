lib/workloads/clib.ml:
