lib/workloads/suite.mli: Bench_def
