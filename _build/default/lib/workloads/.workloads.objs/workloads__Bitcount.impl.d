lib/workloads/bitcount.ml: Bench_def Gen List Printf
