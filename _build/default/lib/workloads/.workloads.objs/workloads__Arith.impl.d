lib/workloads/arith.ml: Bench_def Gen Printf
