lib/workloads/rc4.ml: Bench_def Gen Printf
