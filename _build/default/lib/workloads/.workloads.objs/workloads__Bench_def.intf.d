lib/workloads/bench_def.mli:
