lib/workloads/suite.ml: Aes Arith Bench_def Bitcount Crc Dijkstra Fft List Lzfx Rc4 Rsa String Stringsearch
