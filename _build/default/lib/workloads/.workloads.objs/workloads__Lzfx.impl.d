lib/workloads/lzfx.ml: Array Bench_def Buffer Clib Gen Printf String
