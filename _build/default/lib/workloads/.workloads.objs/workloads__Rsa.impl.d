lib/workloads/rsa.ml: Bench_def Gen List Printf
