lib/workloads/aes.ml: Array Bench_def Gen List Printf String
