lib/workloads/crc.ml: Bench_def Gen Printf
