lib/workloads/stringsearch.ml: Bench_def Clib Gen List Printf String
