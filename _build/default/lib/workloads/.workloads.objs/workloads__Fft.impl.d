lib/workloads/fft.ml: Bench_def Clib Float Gen Int32 List Printf
