lib/workloads/bench_def.ml:
