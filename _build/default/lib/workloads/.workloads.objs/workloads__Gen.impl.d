lib/workloads/gen.ml: Buffer List String
