(* CRC — CRC-16/CCITT over a data buffer, bitwise implementation.
   (MiBench2 uses CRC-32; mini-C is a 16-bit language so we use the
   16-bit polynomial — the memory access structure is identical.) *)

let buf_len = 400
let passes = 24

let source seed =
  let g = Gen.create (seed + 303) in
  let data = Gen.int_list g buf_len 256 in
  Printf.sprintf
    {|
%s
char buf[%d] = %s;

unsigned crc16_byte(unsigned crc, int byte) {
  int i;
  crc = crc ^ (byte << 8);
  for (i = 0; i < 8; i++) {
    if (crc & 0x8000) crc = (crc << 1) ^ 0x1021;
    else crc = crc << 1;
  }
  return crc;
}

unsigned crc_buffer(unsigned init) {
  unsigned crc = init;
  int i;
  for (i = 0; i < %d; i++) crc = crc16_byte(crc, buf[i]);
  return crc;
}

int main(void) {
  unsigned crc = 0xFFFF;
  int p;
  for (p = 0; p < %d; p++) crc = crc_buffer(crc);
  print_hex(crc);
  return crc;
}
|}
    Bench_def.prelude buf_len (Gen.c_array data) buf_len passes

let benchmark =
  { Bench_def.name = "crc"; short = "CRC"; source; fits_data_in_sram = true }
