(* STR — string search over a generated text corpus, in the spirit of
   MiBench2's stringsearch: four search algorithms (Boyer-Moore-
   Horspool, Knuth-Morris-Pratt, brute force, case-insensitive BMH)
   cross-checked against each other, plus occurrence statistics. *)

let npatterns = 8
let pattern_len = 12
let text_len = 4800

let source seed =
  let g = Gen.create (seed + 101) in
  let text = Gen.text g text_len in
  (* plant each pattern somewhere in the text so searches hit *)
  let patterns =
    List.init npatterns (fun i ->
        let pos = Gen.int g (text_len - pattern_len) in
        ignore i;
        String.sub text pos pattern_len)
  in
  let pats_flat = String.concat "" patterns in
  let body =
    Printf.sprintf
      {|
char text[TLEN] = %s;
char pats[%d] = %s;
int skip[256];
int prefix[PLEN];
char lowered[TLEN];

int to_lower(int c) {
  if (c >= 'A' && c <= 'Z') return c + 32;
  return c;
}

void build_skip(int po) {
  int i;
  for (i = 0; i < 256; i++) skip[i] = PLEN;
  for (i = 0; i < PLEN - 1; i++) skip[pats[po + i]] = PLEN - 1 - i;
}

/* Boyer-Moore-Horspool */
int search_bmh(int po) {
  int found = 0;
  int i = PLEN - 1;
  while (i < TLEN) {
    int j = PLEN - 1;
    int k = i;
    while (j >= 0 && text[k] == pats[po + j]) { k--; j--; }
    if (j < 0) { found += k + 2; i++; }
    else i += skip[text[i]];
  }
  return found;
}

/* brute force, counts occurrences */
int search_brute(int po) {
  int count = 0;
  int i;
  for (i = 0; i + PLEN <= TLEN; i++) {
    int j = 0;
    while (j < PLEN && text[i + j] == pats[po + j]) j++;
    if (j == PLEN) count++;
  }
  return count;
}

void build_prefix(int po) {
  int k = 0;
  int q;
  prefix[0] = 0;
  for (q = 1; q < PLEN; q++) {
    while (k > 0 && pats[po + k] != pats[po + q]) k = prefix[k - 1];
    if (pats[po + k] == pats[po + q]) k++;
    prefix[q] = k;
  }
}

/* Knuth-Morris-Pratt */
int search_kmp(int po) {
  int count = 0;
  int q = 0;
  int i;
  for (i = 0; i < TLEN; i++) {
    while (q > 0 && pats[po + q] != text[i]) q = prefix[q - 1];
    if (pats[po + q] == text[i]) q++;
    if (q == PLEN) { count++; q = prefix[q - 1]; }
  }
  return count;
}

/* case-insensitive BMH over a lowered copy */
int search_nocase(int po) {
  int i;
  for (i = 0; i < TLEN; i++) lowered[i] = to_lower(text[i]);
  int found = 0;
  i = PLEN - 1;
  while (i < TLEN) {
    int j = PLEN - 1;
    int k = i;
    while (j >= 0 && lowered[k] == to_lower(pats[po + j])) { k--; j--; }
    if (j < 0) { found += k + 2; i++; }
    else i += skip[lowered[i]];
  }
  return found;
}

int char_histogram(void) {
  int counts[32];
  int i;
  for (i = 0; i < 32; i++) counts[i] = 0;
  for (i = 0; i < TLEN; i++) counts[text[i] & 31]++;
  int acc = 0;
  for (i = 0; i < 32; i++) acc ^= counts[i] + i;
  return acc;
}


int skip2[256];

/* Sunday quick-search: shift by the character just past the window */
void build_skip2(int po) {
  int i;
  for (i = 0; i < 256; i++) skip2[i] = PLEN + 1;
  for (i = 0; i < PLEN; i++) skip2[pats[po + i]] = PLEN - i;
}

int search_sunday(int po) {
  int count = 0;
  int i = 0;
  while (i + PLEN <= TLEN) {
    int j = 0;
    while (j < PLEN && text[i + j] == pats[po + j]) j++;
    if (j == PLEN) count++;
    if (i + PLEN >= TLEN) break;
    i += skip2[text[i + PLEN]];
  }
  return count;
}

/* Rabin-Karp with a 16-bit rolling hash; collisions verified */
int search_rk(int po) {
  unsigned target = 0;
  unsigned rolling = 0;
  unsigned msb_weight = 1;
  int i;
  for (i = 0; i < PLEN - 1; i++) msb_weight = msb_weight * 31;
  for (i = 0; i < PLEN; i++) {
    target = target * 31 + pats[po + i];
    rolling = rolling * 31 + text[i];
  }
  int count = 0;
  i = 0;
  while (1) {
    if (rolling == target) {
      int j = 0;
      while (j < PLEN && text[i + j] == pats[po + j]) j++;
      if (j == PLEN) count++;
    }
    if (i + PLEN >= TLEN) break;
    rolling = (rolling - text[i] * msb_weight) * 31 + text[i + PLEN];
    i++;
  }
  return count;
}

int word_count; int longest_word; int space_runs;
void tokenize(void) {
  word_count = 0;
  longest_word = 0;
  space_runs = 0;
  int in_word = 0;
  int wlen = 0;
  int i;
  for (i = 0; i < TLEN; i++) {
    int c = text[i];
    if (c == ' ') {
      if (in_word) {
        word_count++;
        if (wlen > longest_word) longest_word = wlen;
      }
      else space_runs++;
      in_word = 0;
      wlen = 0;
    }
    else { in_word = 1; wlen++; }
  }
  if (in_word) word_count++;
}

int corpus_crc(void) {
  crc32_init();
  int i;
  for (i = 0; i < TLEN; i++) crc32_byte(text[i]);
  return crc32_fold();
}


/* fuzzy search: count windows within edit distance 1 of the pattern
   (two-row dynamic program) */
int dp_prev[PLEN + 1];
int dp_cur[PLEN + 1];

int edit1_matches(int po) {
  int count = 0;
  int start;
  for (start = 0; start + PLEN + 1 <= TLEN; start += 23) {
    int j;
    for (j = 0; j <= PLEN; j++) dp_prev[j] = j;
    int i;
    int best = 0x7FFF;
    for (i = 1; i <= PLEN + 1; i++) {
      dp_cur[0] = i;
      for (j = 1; j <= PLEN; j++) {
        int cost = text[start + i - 1] == pats[po + j - 1] ? 0 : 1;
        int d = dp_prev[j - 1] + cost;
        int del = dp_prev[j] + 1;
        int ins = dp_cur[j - 1] + 1;
        if (del < d) d = del;
        if (ins < d) d = ins;
        dp_cur[j] = d;
      }
      if (dp_cur[PLEN] < best) best = dp_cur[PLEN];
      for (j = 0; j <= PLEN; j++) dp_prev[j] = dp_cur[j];
    }
    if (best <= 1) count++;
  }
  return count;
}

/* glob matcher supporting ? and * (iterative with backtrack) */
int glob_match(int gp, int glen, int tp, int tlen) {
  int gi = 0;
  int ti = 0;
  int star_g = -1;
  int star_t = 0;
  while (ti < tlen) {
    if (gi < glen && (pats[gp + gi] == text[tp + ti] || pats[gp + gi] == '?')) {
      gi++; ti++;
    }
    else if (gi < glen && pats[gp + gi] == '*') {
      star_g = gi;
      star_t = ti;
      gi++;
    }
    else if (star_g >= 0) {
      gi = star_g + 1;
      star_t++;
      ti = star_t;
    }
    else return 0;
  }
  while (gi < glen && pats[gp + gi] == '*') gi++;
  return gi == glen;
}

int glob_scan(int po) {
  /* reuse the pattern with its middle wildcarded */
  int count = 0;
  int saved = pats[po + PLEN / 2];
  pats[po + PLEN / 2] = '?';
  int i;
  for (i = 0; i + PLEN <= TLEN; i += 11) {
    count += glob_match(po, PLEN, i, PLEN);
  }
  pats[po + PLEN / 2] = saved;
  return count;
}

/* frequency-weighted pattern score against the corpus histogram */
int hist256[128];
int weighted_score(int po) {
  int i;
  for (i = 0; i < 128; i++) hist256[i] = 0;
  for (i = 0; i < TLEN; i++) hist256[text[i] & 127]++;
  int score = 0;
  for (i = 0; i < PLEN; i++) {
    int f = hist256[pats[po + i] & 127];
    score = (score << 1 | score >> 15) ^ (f >> 3);
  }
  return score;
}


/* full Boyer-Moore: good-suffix table alongside the bad-character rule */
int gs_suffix[PLEN + 1];
int gs_shift[PLEN + 1];

void build_good_suffix(int po) {
  int i = PLEN;
  int j = PLEN + 1;
  gs_suffix[i] = j;
  while (i > 0) {
    while (j <= PLEN && pats[po + i - 1] != pats[po + j - 1]) {
      if (gs_shift[j] == 0) gs_shift[j] = j - i;
      j = gs_suffix[j];
    }
    i--; j--;
    gs_suffix[i] = j;
  }
  j = gs_suffix[0];
  for (i = 0; i <= PLEN; i++) {
    if (gs_shift[i] == 0) gs_shift[i] = j;
    if (i == j) j = gs_suffix[j];
  }
}

int search_bm_full(int po) {
  int i;
  for (i = 0; i <= PLEN; i++) { gs_suffix[i] = 0; gs_shift[i] = 0; }
  build_good_suffix(po);
  int count = 0;
  int pos = 0;
  while (pos <= TLEN - PLEN) {
    int j = PLEN - 1;
    while (j >= 0 && pats[po + j] == text[pos + j]) j--;
    if (j < 0) {
      count++;
      pos += gs_shift[0];
    }
    else {
      int bad = skip[text[pos + j]] - (PLEN - 1 - j);
      int good = gs_shift[j + 1];
      if (bad < 1) bad = 1;
      pos += good > bad ? good : bad;
    }
  }
  return count;
}

int main(void) {
  unsigned sum = 0;
  int p;
  for (p = 0; p < NPAT; p++) {
    int po = p * PLEN;
    build_skip(po);
    build_skip2(po);
    build_prefix(po);
    int bmh = search_bmh(po);
    int brute = search_brute(po);
    int kmp = search_kmp(po);
    int sunday = search_sunday(po);
    int rk = search_rk(po);
    int bmfull = search_bm_full(po);
    int nocase = search_nocase(po);
    if (brute != kmp || kmp != sunday || sunday != rk || rk != bmfull) {
      print_hex(0xDEAD);
      return 0xDEAD;
    }
    sum += bmh;
    sum = (sum << 1 | sum >> 15) ^ (brute + nocase);
    print_str("pat ");
    print_dec(p);
    print_str(": ");
    print_dec(brute);
    putchar(10);
  }
  for (p = 0; p < NPAT; p++) {
    int po = p * PLEN;
    sum += edit1_matches(po);
    sum ^= glob_scan(po) << 3;
    sum = (sum << 1 | sum >> 15) ^ weighted_score(po);
  }
  tokenize();
  sum ^= (word_count << 4) ^ longest_word ^ (space_runs << 9);
  sum ^= char_histogram();
  sum ^= corpus_crc();
  print_hex(sum);
  return sum;
}
|}
      (Gen.c_string text)
      (npatterns * pattern_len)
      (Gen.c_string pats_flat)
  in
  Bench_def.prelude ^ Clib.crc32_source ^ Clib.print_source
  ^ Gen.subst
      [
        ("TLEN", string_of_int text_len);
        ("PLEN", string_of_int pattern_len);
        ("NPAT", string_of_int npatterns);
      ]
      body

let benchmark =
  {
    Bench_def.name = "stringsearch";
    short = "STR";
    source;
    fits_data_in_sram = false;
  }
