(* ARITH — the mixed arithmetic microbenchmark used for the paper's
   Figure 1 memory-placement study: a tight loop of register and
   memory arithmetic over a working set, so both instruction fetch
   and data placement matter. *)

let data_len = 128
let iterations = 40

let source seed =
  let g = Gen.create (seed + 1010) in
  let data = Gen.int_list g data_len 0x8000 in
  Printf.sprintf
    {|
%s
int data[%d] = %s;

int mix(int a, int b) {
  a = a + b;
  a = a ^ (b >> 3);
  a = a - (b << 1);
  a = a + (a >> 2);
  a = a ^ (a << 3);
  a = a - (b >> 1);
  a = a + (a << 2);
  a = a ^ (b << 2);
  a = a - (a >> 4);
  return a & 0x7FFF;
}

int main(void) {
  unsigned acc = 1;
  int it;
  for (it = 0; it < %d; it++) {
    int i;
    for (i = 0; i < %d; i++) {
      int v = data[i];
      acc = mix(acc, v) + (acc >> 7);
      data[i] = (v ^ acc) & 0x7FFF;
    }
  }
  print_hex(acc);
  return acc;
}
|}
    Bench_def.prelude data_len (Gen.c_array data) iterations data_len

let benchmark =
  { Bench_def.name = "arith"; short = "ARI"; source; fits_data_in_sram = true }
