(* DIJ — shortest paths on a dense random graph (adjacency matrix),
   as in MiBench2: Dijkstra with path reconstruction from several
   sources, cross-checked against Bellman-Ford, plus graph statistics.
   N = 64 so row indexing is a shift; the 8 KiB matrix mirrors the
   paper's RAM footprint. *)

let n = 64
let sources = 5

let source seed =
  let g = Gen.create (seed + 202) in
  let adj =
    List.init (n * n) (fun k ->
        let i = k / n and j = k mod n in
        if i = j then 0
        else if Gen.int g 4 = 0 then 1 + Gen.int g 63
        else 0)
  in
  let body =
    Printf.sprintf
      {|
int adj[%d] = %s;
int dist[NN];
int dist_bf[NN];
int prev[NN];
char visited[NN];

int edge(int u, int v) { return adj[(u << 6) + v]; }

void dijkstra_init(int src) {
  int i;
  for (i = 0; i < NN; i++) { dist[i] = 0x7FFF; visited[i] = 0; prev[i] = -1; }
  dist[src] = 0;
}

int pick_min(void) {
  int best = 0x7FFF;
  int u = -1;
  int i;
  for (i = 0; i < NN; i++) {
    if (!visited[i] && dist[i] < best) { best = dist[i]; u = i; }
  }
  return u;
}

void relax_from(int u) {
  int i;
  for (i = 0; i < NN; i++) {
    int w = edge(u, i);
    if (w && !visited[i]) {
      int cand = dist[u] + w;
      if (cand < dist[i]) { dist[i] = cand; prev[i] = u; }
    }
  }
}

int run_dijkstra(int src) {
  dijkstra_init(src);
  int round;
  for (round = 0; round < NN; round++) {
    int u = pick_min();
    if (u < 0) break;
    visited[u] = 1;
    relax_from(u);
  }
  int sum = 0;
  int i;
  for (i = 0; i < NN; i++) {
    if (dist[i] != 0x7FFF) sum += dist[i];
  }
  return sum;
}

/* Bellman-Ford cross-check from the same source */
int run_bellman_ford(int src) {
  int i;
  for (i = 0; i < NN; i++) dist_bf[i] = 0x7FFF;
  dist_bf[src] = 0;
  int pass;
  for (pass = 0; pass < NN - 1; pass++) {
    int changed = 0;
    int u;
    for (u = 0; u < NN; u++) {
      if (dist_bf[u] == 0x7FFF) continue;
      int v;
      for (v = 0; v < NN; v++) {
        int w = edge(u, v);
        if (w) {
          int cand = dist_bf[u] + w;
          if (cand < dist_bf[v]) { dist_bf[v] = cand; changed = 1; }
        }
      }
    }
    if (!changed) break;
  }
  int sum = 0;
  for (i = 0; i < NN; i++) {
    if (dist_bf[i] != 0x7FFF) sum += dist_bf[i];
  }
  return sum;
}

/* follow prev[] chains; checksums path structure */
int path_signature(int src) {
  int sig = 0;
  int v;
  for (v = 0; v < NN; v++) {
    int hops = 0;
    int cur = v;
    while (cur != src && cur >= 0 && hops < NN) {
      cur = prev[cur];
      hops++;
    }
    if (cur == src) sig = (sig << 1 | sig >> 15) ^ (hops + v);
  }
  return sig;
}

int degree_stats(void) {
  int acc = 0;
  int u;
  for (u = 0; u < NN; u++) {
    int deg = 0;
    int wsum = 0;
    int v;
    for (v = 0; v < NN; v++) {
      int w = edge(u, v);
      if (w) { deg++; wsum += w; }
    }
    acc ^= (deg << 8) + (wsum & 255);
  }
  return acc;
}


int fw[256]; /* 16-node Floyd-Warshall on the first subgraph */

int fw_run(void) {
  int i; int j; int k;
  for (i = 0; i < 16; i++) {
    for (j = 0; j < 16; j++) {
      int w = edge(i, j);
      fw[(i << 4) + j] = i == j ? 0 : (w ? w : 0x3FFF);
    }
  }
  for (k = 0; k < 16; k++) {
    for (i = 0; i < 16; i++) {
      int ik = fw[(i << 4) + k];
      if (ik == 0x3FFF) continue;
      for (j = 0; j < 16; j++) {
        int cand = ik + fw[(k << 4) + j];
        if (cand < fw[(i << 4) + j]) fw[(i << 4) + j] = cand;
      }
    }
  }
  int acc = 0;
  for (i = 0; i < 256; i++) {
    if (fw[i] != 0x3FFF) acc = (acc << 1 | acc >> 15) ^ fw[i];
  }
  return acc;
}

/* graph eccentricity from the last dijkstra run */
int eccentricity(void) {
  int worst = 0;
  int i;
  for (i = 0; i < NN; i++) {
    if (dist[i] != 0x7FFF && dist[i] > worst) worst = dist[i];
  }
  return worst;
}

/* 32-bit accumulation of all pairwise costs reached */
int total_cost32(void) {
  l32_seta(0, 0);
  int i;
  for (i = 0; i < NN; i++) {
    if (dist[i] != 0x7FFF) {
      l32_mul16(dist[i], dist[i] + 3);
      int phi = l32_ahi; int plo = l32_alo;
      l32_seta(phi, plo);
      l32_setb(0, i);
      l32_add();
      int hi = l32_ahi; int lo = l32_alo;
      l32_seta(hi, lo);
    }
  }
  return l32_fold();
}


/* Prim's minimum spanning tree over the whole graph */
int key[NN];
char in_mst[NN];

int prim_mst(void) {
  int i;
  for (i = 0; i < NN; i++) { key[i] = 0x7FFF; in_mst[i] = 0; }
  key[0] = 0;
  int total = 0;
  int round;
  for (round = 0; round < NN; round++) {
    int best = 0x7FFF;
    int u = -1;
    for (i = 0; i < NN; i++) {
      if (!in_mst[i] && key[i] < best) { best = key[i]; u = i; }
    }
    if (u < 0) break;
    in_mst[u] = 1;
    total += key[u];
    for (i = 0; i < NN; i++) {
      int w = edge(u, i);
      int w2 = edge(i, u);
      if (w2 && (!w || w2 < w)) w = w2; /* treat as undirected, min weight */
      if (w && !in_mst[i] && w < key[i]) key[i] = w;
    }
  }
  return total;
}

/* connected components via union-find with path halving */
int parent[NN];

int uf_find(int x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

int components(void) {
  int i;
  for (i = 0; i < NN; i++) parent[i] = i;
  int u;
  for (u = 0; u < NN; u++) {
    int v;
    for (v = 0; v < NN; v++) {
      if (edge(u, v)) {
        int ru = uf_find(u);
        int rv = uf_find(v);
        if (ru != rv) parent[ru] = rv;
      }
    }
  }
  int count = 0;
  for (i = 0; i < NN; i++) {
    if (uf_find(i) == i) count++;
  }
  return count;
}

/* A* on the grid interpretation of node ids (8x8), h = L1 distance */
int g_cost[NN];
char closed[NN];

int manhattan(int a, int b) {
  int ax = a & 7; int ay = a >> 3;
  int bx = b & 7; int by = b >> 3;
  int dx = ax - bx; if (dx < 0) dx = -dx;
  int dy = ay - by; if (dy < 0) dy = -dy;
  return dx + dy;
}

int astar(int src, int goal) {
  int i;
  for (i = 0; i < NN; i++) { g_cost[i] = 0x7FFF; closed[i] = 0; }
  g_cost[src] = 0;
  while (1) {
    int best = 0x7FFF;
    int u = -1;
    for (i = 0; i < NN; i++) {
      if (!closed[i] && g_cost[i] != 0x7FFF) {
        int f = g_cost[i] + manhattan(i, goal);
        if (f < best) { best = f; u = i; }
      }
    }
    if (u < 0) return -1;
    if (u == goal) return g_cost[u];
    closed[u] = 1;
    for (i = 0; i < NN; i++) {
      int w = edge(u, i);
      if (w && !closed[i]) {
        int cand = g_cost[u] + w;
        if (cand < g_cost[i]) g_cost[i] = cand;
      }
    }
  }
}


/* BFS hop-count layering from a source */
int hops[NN];
int bfs_queue[NN];

int bfs_layers(int src) {
  int i;
  for (i = 0; i < NN; i++) hops[i] = -1;
  hops[src] = 0;
  bfs_queue[0] = src;
  int head = 0;
  int tail = 1;
  while (head < tail) {
    int u = bfs_queue[head++];
    int v;
    for (v = 0; v < NN; v++) {
      if (edge(u, v) && hops[v] < 0) {
        hops[v] = hops[u] + 1;
        bfs_queue[tail++] = v;
      }
    }
  }
  int sig = 0;
  for (i = 0; i < NN; i++) sig = (sig << 1 | sig >> 15) ^ (hops[i] + 2);
  return sig;
}

/* triangle count on the first 24 nodes (undirected reading) */
int connected(int u, int v) { return edge(u, v) || edge(v, u); }

int triangles(void) {
  int count = 0;
  int a;
  for (a = 0; a < 24; a++) {
    int b;
    for (b = a + 1; b < 24; b++) {
      if (!connected(a, b)) continue;
      int c;
      for (c = b + 1; c < 24; c++) {
        if (connected(a, c) && connected(b, c)) count++;
      }
    }
  }
  return count;
}

int main(void) {
  unsigned total = 0;
  int s;
  for (s = 0; s < NSRC; s++) {
    int src = s * 13 %% NN;
    int dsum = run_dijkstra(src);
    int bsum = run_bellman_ford(src);
    if (dsum != bsum) { print_hex(0xDEAD); return 0xDEAD; }
    total += dsum;
    total ^= path_signature(src);
    print_str("src ");
    print_dec(src);
    print_str(" sum ");
    print_dec(dsum);
    putchar(10);
    total = (total << 1 | total >> 15) ^ eccentricity();
    total ^= total_cost32();
  }
  total ^= degree_stats();
  total ^= fw_run();
  total ^= bfs_layers(3);
  total = (total << 1 | total >> 15) ^ triangles();
  total = (total << 1 | total >> 15) ^ prim_mst();
  total ^= components() << 11;
  int q;
  for (q = 0; q < 6; q++) {
    int a = astar(q * 7 %% NN, (q * 23 + 40) %% NN);
    total = (total << 1 | total >> 15) ^ (a + 1);
  }
  print_hex(total);
  return total;
}
|}
      (n * n) (Gen.c_array adj)
  in
  Bench_def.prelude ^ Clib.int32_source ^ Clib.print_source
  ^ Gen.subst
      [ ("NN", string_of_int n); ("NSRC", string_of_int sources) ]
      body

let benchmark =
  {
    Bench_def.name = "dijkstra";
    short = "DIJ";
    source;
    fits_data_in_sram = false;
  }
