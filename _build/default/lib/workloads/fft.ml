(* FFT — signal-processing pipeline mirroring the float-based MiBench2
   FFT: a 256-point radix-2 FFT computed in software IEEE-754 single
   precision (Clib.float_source — the stand-in for msp430-gcc's
   soft-float library, which is why the paper's FFT binary is the
   suite's largest), plus integer DSP phases: 16-tap FIR and
   autocorrelation through the soft-long layer, a 64-point DCT-II,
   a biquad IIR cascade, Goertzel detectors and spectral statistics. *)

let nf = 256 (* float FFT size *)
let ni = 512 (* integer phase working size *)
let frames = 2

(* IEEE-754 binary32 encoding split into (hi, lo) 16-bit words. *)
let float32_words v =
  let bits = Int32.bits_of_float v in
  let all = Int32.to_int (Int32.logand bits 0xFFFFFFFFl) land 0xFFFFFFFF in
  ((all lsr 16) land 0xFFFF, all land 0xFFFF)

let source seed =
  let g = Gen.create (seed + 505) in
  let input = List.init ni (fun _ -> Gen.int g 255 - 127) in
  let sintab =
    List.init ni (fun i ->
        int_of_float
          (1024.0 *. sin (2.0 *. Float.pi *. float_of_int i /. float_of_int ni)))
  in
  let sinf =
    List.init nf (fun i ->
        float32_words (sin (2.0 *. Float.pi *. float_of_int i /. float_of_int nf)))
  in
  let body =
    Printf.sprintf
      {|
int input[NI] = %s;
int sintab[NI] = %s;
int sinf_hi[NF] = %s;
int sinf_lo[NF] = %s;

/* float working arrays (hi/lo 16-bit halves of binary32) */
int re_hi[NF]; int re_lo[NF];
int im_hi[NF]; int im_lo[NF];
int mag[NF];
int filtered[NI];

int costab(int k) { return sintab[(k + NI / 4) & (NI - 1)]; }

/* --- float helpers on top of the soft-float layer ------------------ */

void f_load_sin(int k) { f_setb(sinf_hi[k & (NF - 1)], sinf_lo[k & (NF - 1)]); }
void f_load_cos(int k) { f_load_sin(k + NF / 4); }

void f_abs_a(void) { f_ahi = f_ahi & 0x7FFF; }

void f_half_a(void) {
  int e = ((unsigned)f_ahi >> 7) & 255;
  if (e > 1) f_ahi = (f_ahi & 0x807F) | ((e - 1) << 7);
  else { f_ahi = 0; f_alo = 0; }
}

/* --- 256-point float FFT ------------------------------------------- */

void load_frame(int frame) {
  int i;
  for (i = 0; i < NF; i++) {
    f_from_int(input[(i + frame * 37) & (NI - 1)]);
    re_hi[i] = f_ahi; re_lo[i] = f_alo;
    im_hi[i] = 0; im_lo[i] = 0;
  }
}

void bit_reverse(void) {
  int i;
  int j = 0;
  for (i = 0; i < NF - 1; i++) {
    if (i < j) {
      int t = re_hi[i]; re_hi[i] = re_hi[j]; re_hi[j] = t;
      t = re_lo[i]; re_lo[i] = re_lo[j]; re_lo[j] = t;
      t = im_hi[i]; im_hi[i] = im_hi[j]; im_hi[j] = t;
      t = im_lo[i]; im_lo[i] = im_lo[j]; im_lo[j] = t;
    }
    int m = NF >> 1;
    while (m >= 1 && j >= m) { j -= m; m = m >> 1; }
    j += m;
  }
}

int t_rehi; int t_relo; int t_imhi; int t_imlo;

/* (t_re, t_im) = w[angle] * (re[j], im[j]) — complex multiply */
void twiddle_product(int angle, int j) {
  f_seta(re_hi[j], re_lo[j]);
  f_load_cos(angle);
  f_mul();
  int ahi = f_ahi; int alo = f_alo;
  f_seta(im_hi[j], im_lo[j]);
  f_load_sin(angle);
  f_mul();
  f_ahi = f_ahi ^ 0x8000; /* wi = -sin */
  int bhi = f_ahi; int blo = f_alo;
  f_seta(ahi, alo);
  f_setb(bhi, blo);
  f_sub();
  t_rehi = f_ahi; t_relo = f_alo;
  f_seta(im_hi[j], im_lo[j]);
  f_load_cos(angle);
  f_mul();
  ahi = f_ahi; alo = f_alo;
  f_seta(re_hi[j], re_lo[j]);
  f_load_sin(angle);
  f_mul();
  f_ahi = f_ahi ^ 0x8000;
  bhi = f_ahi; blo = f_alo;
  f_seta(ahi, alo);
  f_setb(bhi, blo);
  f_add();
  t_imhi = f_ahi; t_imlo = f_alo;
}

void butterfly(int i, int j) {
  f_seta(re_hi[i], re_lo[i]);
  f_setb(t_rehi, t_relo);
  f_sub();
  re_hi[j] = f_ahi; re_lo[j] = f_alo;
  f_seta(re_hi[i], re_lo[i]);
  f_setb(t_rehi, t_relo);
  f_add();
  re_hi[i] = f_ahi; re_lo[i] = f_alo;
  f_seta(im_hi[i], im_lo[i]);
  f_setb(t_imhi, t_imlo);
  f_sub();
  im_hi[j] = f_ahi; im_lo[j] = f_alo;
  f_seta(im_hi[i], im_lo[i]);
  f_setb(t_imhi, t_imlo);
  f_add();
  im_hi[i] = f_ahi; im_lo[i] = f_alo;
}

void fft(void) {
  int span;
  int step = NF;
  for (span = 1; span < NF; span = span << 1) {
    step = step >> 1;
    int start;
    for (start = 0; start < span; start++) {
      int angle = start * step;
      int i;
      for (i = start; i < NF; i += span << 1) {
        int j = i + span;
        twiddle_product(angle, j);
        butterfly(i, j);
      }
    }
  }
}

/* alpha-max + beta-min/2 magnitude, back to integers */
void magnitude(void) {
  int i;
  for (i = 0; i < NF; i++) {
    f_seta(re_hi[i], re_lo[i]);
    f_abs_a();
    int ahi = f_ahi; int alo = f_alo;
    f_seta(im_hi[i], im_lo[i]);
    f_abs_a();
    int bhi = f_ahi; int blo = f_alo;
    f_seta(ahi, alo);
    f_setb(bhi, blo);
    if (f_cmp() < 0) {
      int t = ahi; ahi = bhi; bhi = t;
      t = alo; alo = blo; blo = t;
    }
    f_seta(bhi, blo);
    f_half_a();
    int shi = f_ahi; int slo = f_alo;
    f_seta(ahi, alo);
    f_setb(shi, slo);
    f_add();
    mag[i] = f_to_int();
  }
}

/* --- integer DSP phases --------------------------------------------- */

int fir_coeff[16];

void fir_filter(int frame) {
  int i;
  for (i = 0; i < 16; i++) fir_coeff[i] = sintab[(i << 4) & (NI - 1)] >> 4;
  for (i = 0; i < NI; i++) {
    int acc_hi = 0; int acc_lo = 0;
    int t;
    for (t = 0; t < 16; t++) {
      int x = input[(i + t + frame * 37) & (NI - 1)];
      l32_mul16(x & 0xFFFF, fir_coeff[t] & 0xFFFF);
      int phi = l32_ahi; int plo = l32_alo;
      l32_seta(acc_hi, acc_lo);
      l32_setb(phi, plo);
      l32_add();
      acc_hi = l32_ahi; acc_lo = l32_alo;
    }
    filtered[i] = (acc_hi << 10) | ((unsigned)acc_lo >> 6);
  }
}

unsigned autocorr(void) {
  unsigned sig = 0;
  int lag;
  for (lag = 1; lag <= 16; lag++) {
    int acc_hi = 0; int acc_lo = 0;
    int i;
    for (i = 0; i + lag < NI; i += 4) {
      l32_mul16(filtered[i] & 0xFFFF, filtered[i + lag] & 0xFFFF);
      int phi = l32_ahi; int plo = l32_alo;
      l32_seta(acc_hi, acc_lo);
      l32_setb(phi, plo);
      l32_add();
      acc_hi = l32_ahi; acc_lo = l32_alo;
    }
    sig = (sig << 1 | sig >> 15) ^ acc_hi ^ acc_lo;
  }
  return sig;
}

int zero_crossings(void) {
  int count = 0;
  int i;
  for (i = 1; i < NI; i++) {
    int a = filtered[i - 1];
    int b = filtered[i];
    if ((a < 0 && b >= 0) || (a >= 0 && b < 0)) count++;
  }
  return count;
}

int spectral_peak(void) {
  int best = 0;
  int at = 0;
  int i;
  for (i = 1; i < NF / 2; i++) {
    if (mag[i] > best) { best = mag[i]; at = i; }
  }
  return (at << 8) ^ best;
}

/* direct 64-point DCT-II on a decimated frame (table-driven) */
int dct_in[64];
int dct_out[64];

void dct64(int frame) {
  int i;
  for (i = 0; i < 64; i++) dct_in[i] = input[(i * 8 + frame) & (NI - 1)];
  int k;
  for (k = 0; k < 64; k++) {
    int acc = 0;
    int n;
    for (n = 0; n < 64; n++) {
      int idx = ((2 * n + 1) * k * 2) & (2 * NI - 1);
      int c = idx < NI ? costab(idx) : -costab(idx - NI);
      acc += (dct_in[n] * c) >> 9;
    }
    dct_out[k] = acc >> 3;
  }
}

unsigned dct_checksum(void) {
  unsigned sig = 0;
  int i;
  for (i = 0; i < 64; i++) sig = (sig << 1 | sig >> 15) ^ (dct_out[i] & 0xFFFF);
  return sig;
}

/* two cascaded biquad sections, Q12 coefficients */
int bq_z1a; int bq_z2a; int bq_z1b; int bq_z2b;

int biquad_step(int x) {
  int ya = ((x * 983) >> 12) + bq_z1a;
  bq_z1a = ((x * 1966) >> 12) - ((ya * 3276) >> 12) + bq_z2a;
  bq_z2a = ((x * 983) >> 12) + ((ya * 1310) >> 12);
  int yb = ((ya * 3276) >> 12) + bq_z1b;
  bq_z1b = ((ya * 1638) >> 12) * -1 - ((yb * 2048) >> 12) + bq_z2b;
  bq_z2b = ((ya * 819) >> 12) + ((yb * 409) >> 12);
  return yb;
}

unsigned iir_filter(int frame) {
  bq_z1a = 0; bq_z2a = 0; bq_z1b = 0; bq_z2b = 0;
  unsigned sig = 0;
  int i;
  for (i = 0; i < NI; i += 2) {
    int y = biquad_step(input[(i + frame) & (NI - 1)]);
    sig = (sig << 1 | sig >> 15) ^ (y & 0x3FF);
  }
  return sig;
}

/* Goertzel single-bin detector over the raw frame */
int goertzel(int frame, int bin) {
  int coeff = costab(bin) >> 1;
  int s1 = 0;
  int s2 = 0;
  int i;
  for (i = 0; i < NI; i++) {
    int x = input[(i + frame * 37) & (NI - 1)];
    int s0 = (x + ((coeff * s1) >> 8) - s2) & 0x7FFF;
    s2 = s1;
    s1 = s0;
  }
  return (s1 ^ s2) & 0xFFF;
}

unsigned spectrum_checksum(void) {
  unsigned sum = 0;
  int i;
  for (i = 0; i < NF; i++) {
    sum = (sum << 3 | sum >> 13) ^ (mag[i] & 0xFFFF);
    sum = sum ^ (im_hi[i] & 0xFF);
  }
  return sum;
}

unsigned energy_stats(void) {
  int acc_hi = 0; int acc_lo = 0;
  int window = 0;
  int i;
  for (i = 0; i < NI; i++) {
    window += filtered[i] >> 4;
    if ((i & 7) == 7) {
      int m = window >> 3;
      l32_mul16(m & 0xFFFF, m & 0xFFFF);
      int phi = l32_ahi; int plo = l32_alo;
      l32_seta(acc_hi, acc_lo);
      l32_setb(phi, plo);
      l32_add();
      acc_hi = l32_ahi; acc_lo = l32_alo;
      window = 0;
    }
  }
  return acc_hi ^ acc_lo;
}

int main(void) {
  unsigned total = 0;
  int f;
  for (f = 0; f < NFRAMES; f++) {
    load_frame(f);
    bit_reverse();
    fft();
    magnitude();
    total += spectrum_checksum();
    total ^= spectral_peak();
    int bin;
    for (bin = 1; bin <= 4; bin++) total ^= goertzel(f, bin << 4);
    fir_filter(f);
    total ^= autocorr();
    total = (total << 1 | total >> 15) ^ zero_crossings();
    dct64(f);
    total ^= dct_checksum();
    total = (total << 1 | total >> 15) ^ iir_filter(f);
    total ^= energy_stats();
  }
  print_hex(total);
  return total;
}
|}
      (Gen.c_array input) (Gen.c_array sintab)
      (Gen.c_array (List.map fst sinf))
      (Gen.c_array (List.map snd sinf))
  in
  Bench_def.prelude ^ Clib.int32_source ^ Clib.float_source
  ^ Gen.subst
      [
        ("NFRAMES", string_of_int frames);
        ("NF", string_of_int nf);
        ("NI", string_of_int ni);
      ]
      body

let benchmark =
  { Bench_def.name = "fft"; short = "FFT"; source; fits_data_in_sram = false }
