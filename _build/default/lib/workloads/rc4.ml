(* RC4 — stream cipher keystream generation XORed over a buffer. *)

let buf_len = 4096
let key_len = 16
let rounds = 2

let source seed =
  let g = Gen.create (seed + 404) in
  let key = Gen.int_list g key_len 256 in
  let data = Gen.int_list g 256 256 in
  (* buffer initialised from a small generated block, expanded in C *)
  Printf.sprintf
    {|
%s
char S[256];
char key[%d] = %s;
char block[256] = %s;
char buf[%d];

void ksa(void) {
  int i;
  int j = 0;
  for (i = 0; i < 256; i++) S[i] = i;
  for (i = 0; i < 256; i++) {
    j = (j + S[i] + key[i %% %d]) & 255;
    int t = S[i]; S[i] = S[j]; S[j] = t;
  }
}

void prga_xor(int n) {
  int i = 0;
  int j = 0;
  int k;
  for (k = 0; k < n; k++) {
    i = (i + 1) & 255;
    j = (j + S[i]) & 255;
    int t = S[i]; S[i] = S[j]; S[j] = t;
    buf[k] = buf[k] ^ S[(S[i] + S[j]) & 255];
  }
}

unsigned checksum(int n) {
  unsigned sum = 0;
  int i;
  for (i = 0; i < n; i++) sum = (sum << 1 | sum >> 15) ^ buf[i];
  return sum;
}

int main(void) {
  int i;
  int r;
  for (i = 0; i < %d; i++) buf[i] = block[i & 255] ^ (i >> 8);
  for (r = 0; r < %d; r++) {
    ksa();
    prga_xor(%d);
  }
  unsigned sum = checksum(%d);
  print_hex(sum);
  return sum;
}
|}
    Bench_def.prelude key_len (Gen.c_array key) (Gen.c_array data) buf_len
    key_len buf_len rounds buf_len buf_len

let benchmark =
  { Bench_def.name = "rc4"; short = "RC4"; source; fits_data_in_sram = false }
