(* Shared mini-C support code for the benchmarks.

   MiBench2 binaries are large partly because msp430-gcc links soft
   arithmetic and C-library routines (the paper's FFT uses software
   floating point). mini-C is a 16-bit language, so the equivalent
   here is this 32-bit software arithmetic layer on (hi, lo) register
   pairs, a real CRC-32, Adler-32 and decimal/string printing — all
   ordinary mini-C functions that the caching runtimes treat like any
   other application code. *)

(* 32-bit accumulator A and operand B held in globals (mini-C
   functions return one 16-bit value, as on the real ABI). *)
let int32_source =
  {|
int l32_ahi; int l32_alo;
int l32_bhi; int l32_blo;

void l32_seta(int hi, int lo) { l32_ahi = hi; l32_alo = lo; }
void l32_setb(int hi, int lo) { l32_bhi = hi; l32_blo = lo; }

/* A += B */
void l32_add(void) {
  unsigned lo = l32_alo;
  unsigned r = lo + l32_blo;
  l32_alo = r;
  l32_ahi = l32_ahi + l32_bhi + (r < lo ? 1 : 0);
}

/* A -= B */
void l32_sub(void) {
  unsigned lo = l32_alo;
  unsigned r = lo - l32_blo;
  l32_alo = r;
  l32_ahi = l32_ahi - l32_bhi - (r > lo ? 1 : 0);
}

void l32_shl1(void) {
  int c = ((unsigned)l32_alo >> 15) & 1;
  l32_alo = l32_alo << 1;
  l32_ahi = (l32_ahi << 1) | c;
}

void l32_shr1(void) {
  int c = l32_ahi & 1;
  l32_ahi = (unsigned)l32_ahi >> 1;
  l32_alo = ((unsigned)l32_alo >> 1) | (c << 15);
}

/* unsigned compare of A and B: -1, 0, 1 */
int l32_cmp(void) {
  unsigned ah = l32_ahi; unsigned bh = l32_bhi;
  if (ah < bh) return -1;
  if (ah > bh) return 1;
  unsigned al = l32_alo; unsigned bl = l32_blo;
  if (al < bl) return -1;
  if (al > bl) return 1;
  return 0;
}

/* A = a * b, full 32-bit unsigned product via 8-bit partials */
void l32_mul16(unsigned a, unsigned b) {
  unsigned a0 = a & 255; unsigned a1 = a >> 8;
  unsigned b0 = b & 255; unsigned b1 = b >> 8;
  unsigned p00 = a0 * b0;
  unsigned p01 = a0 * b1;
  unsigned p10 = a1 * b0;
  unsigned p11 = a1 * b1;
  unsigned mid = p01 + p10;
  unsigned carry_mid = mid < p01 ? 1 : 0;
  unsigned lo = p00 + ((mid & 255) << 8);
  unsigned carry_lo = lo < p00 ? 1 : 0;
  l32_alo = lo;
  l32_ahi = p11 + (mid >> 8) + (carry_mid << 8) + carry_lo;
}

/* fold A to 16 bits for check-sequences */
int l32_fold(void) { return l32_ahi ^ l32_alo; }
|}

let crc32_source =
  {|
int crc_hi; int crc_lo;

void crc32_init(void) { crc_hi = 0xFFFF; crc_lo = 0xFFFF; }

void crc32_byte(int byte) {
  crc_lo = crc_lo ^ (byte & 255);
  int k;
  for (k = 0; k < 8; k++) {
    int lsb = crc_lo & 1;
    crc_lo = ((unsigned)crc_lo >> 1) | ((crc_hi & 1) << 15);
    crc_hi = (unsigned)crc_hi >> 1;
    if (lsb) { crc_hi = crc_hi ^ 0xEDB8; crc_lo = crc_lo ^ 0x8320; }
  }
}

int crc32_fold(void) { return (crc_hi ^ 0xFFFF) ^ (crc_lo ^ 0xFFFF); }

int adler_a; int adler_b;
void adler_init(void) { adler_a = 1; adler_b = 0; }
void adler_byte(int byte) {
  adler_a = (adler_a + (byte & 255)) % 65521;
  adler_b = (adler_b + adler_a) % 65521;
}
int adler_fold(void) { return adler_a ^ adler_b; }
|}

let print_source =
  {|
void print_str(char *s) {
  int i;
  for (i = 0; s[i]; i++) putchar(s[i]);
}

void print_dec(int v) {
  if (v < 0) { putchar('-'); v = -v; }
  char digits[6];
  int n = 0;
  do { digits[n++] = '0' + v % 10; v = v / 10; } while (v);
  while (n > 0) putchar(digits[--n]);
}
|}



(* Software IEEE-754 binary32 on (hi, lo) 16-bit pairs — the mini-C
   equivalent of the soft-float library msp430-gcc links into the
   float-based MiBench2 FFT (the reason the paper's FFT binary is the
   suite's largest). Simplified: denormals flush to zero, no NaN/Inf
   arithmetic, truncating rounding. Operands in f_a/f_b globals,
   result replaces f_a. Deterministic, which is what the benchmarks
   need. *)
let float_source =
  {|
int f_ahi; int f_alo;
int f_bhi; int f_blo;

/* unpacked fields */
int fu_as; int fu_ae; int fu_amh; int fu_aml;
int fu_bs; int fu_be; int fu_bmh; int fu_bml;

void f_seta(int hi, int lo) { f_ahi = hi; f_alo = lo; }
void f_setb(int hi, int lo) { f_bhi = hi; f_blo = lo; }

void f_unpack(void) {
  fu_as = ((unsigned)f_ahi >> 15) & 1;
  fu_ae = ((unsigned)f_ahi >> 7) & 255;
  fu_amh = f_ahi & 127;
  fu_aml = f_alo;
  if (fu_ae) fu_amh = fu_amh | 128;
  else { fu_amh = 0; fu_aml = 0; }
  fu_bs = ((unsigned)f_bhi >> 15) & 1;
  fu_be = ((unsigned)f_bhi >> 7) & 255;
  fu_bmh = f_bhi & 127;
  fu_bml = f_blo;
  if (fu_be) fu_bmh = fu_bmh | 128;
  else { fu_bmh = 0; fu_bml = 0; }
}

/* pack sign/exp and 24-bit mantissa (mh:ml, bit 23 set) into f_a */
void f_pack(int sign, int exp, int mh, int ml) {
  if (exp <= 0 || (mh == 0 && ml == 0)) {
    f_ahi = 0;
    f_alo = 0;
    return;
  }
  if (exp >= 255) { exp = 254; mh = 255; ml = 0xFFFF; }
  f_ahi = (sign << 15) | (exp << 7) | (mh & 127);
  f_alo = ml;
}

int f_is_zero_a(void) { return (f_ahi & 0x7FFF) == 0 && f_alo == 0; }
int f_is_zero_b(void) { return (f_bhi & 0x7FFF) == 0 && f_blo == 0; }

/* Hot-path arithmetic dispatches to the hand-written assembly
   helpers (f_mul2/f_add2/f_sub2 in the support library), exactly as
   compiled C dispatches to __mulsf3/__addsf3. */
void f_mul(void) {
  f_ahi = f_mul2(f_ahi, f_alo, f_bhi, f_blo);
  f_alo = f_lo();
}

void f_add(void) {
  f_ahi = f_add2(f_ahi, f_alo, f_bhi, f_blo);
  f_alo = f_lo();
}

void f_sub(void) {
  f_ahi = f_sub2(f_ahi, f_alo, f_bhi, f_blo);
  f_alo = f_lo();
}

/* A = float(v) for 16-bit signed v */
void f_from_int(int v) {
  int sign = 0;
  if (v < 0) { sign = 1; v = -v; }
  if (v == 0) { f_ahi = 0; f_alo = 0; return; }
  int msb = 0;
  int t = v;
  while (t > 1) { t = (unsigned)t >> 1; msb++; }
  int exp = 127 + msb;
  unsigned mh = 0; unsigned ml = v;
  int k;
  for (k = msb; k < 23; k++) {
    mh = (mh << 1) | (ml >> 15);
    ml = ml << 1;
  }
  f_pack(sign, exp, mh & 255, ml);
}

/* int(A), truncating toward zero; clamps to 16-bit range */
int f_to_int(void) {
  if (f_is_zero_a()) return 0;
  f_unpack();
  if (fu_ae < 127) return 0;
  int shift = 150 - fu_ae;
  if (shift < 8) return fu_as ? -32767 : 32767;
  unsigned mh = fu_amh; unsigned ml = fu_aml;
  int k;
  for (k = 0; k < shift; k++) {
    ml = (ml >> 1) | ((mh & 1) << 15);
    mh = mh >> 1;
  }
  int v = ml & 0x7FFF;
  return fu_as ? -v : v;
}

/* sign of A - B as -1/0/1 */
int f_cmp(void) {
  f_unpack();
  if (fu_as != fu_bs) {
    if (f_is_zero_a() && f_is_zero_b()) return 0;
    return fu_as ? -1 : 1;
  }
  int mag = 0;
  if (fu_ae != fu_be) mag = fu_ae < fu_be ? -1 : 1;
  else if (fu_amh != fu_bmh) mag = fu_amh < fu_bmh ? -1 : 1;
  else if (fu_aml != fu_bml) mag = (unsigned)fu_aml < (unsigned)fu_bml ? -1 : 1;
  return fu_as ? -mag : mag;
}
|}

(* Everything; benchmarks prepend only what they use. *)
let all = int32_source ^ crc32_source ^ print_source ^ float_source
