(* Deterministic input generation for the benchmarks: a seeded
   xorshift PRNG plus helpers to render mini-C initializer lists.
   The §5.1 validation runs every benchmark with several seeds and
   compares baseline vs cached outputs. *)

type t = { mutable state : int }

let create seed = { state = (seed * 2654435761) lor 1 land 0x3FFFFFFF }

let next g =
  let x = g.state in
  let x = x lxor (x lsl 13) land 0x3FFFFFFF in
  let x = x lxor (x lsr 17) in
  let x = x lxor (x lsl 5) land 0x3FFFFFFF in
  g.state <- x;
  x

let int g bound = next g mod bound

let byte g = int g 256

(* Printable ASCII with spaces, for text corpora. *)
let text_char g =
  let alphabet = "abcdefghijklmnopqrstuvwxyz    eeeattthhh" in
  alphabet.[int g (String.length alphabet)]

let text g n = String.init n (fun _ -> text_char g)

let int_list g n bound = List.init n (fun _ -> int g bound)

(* Render an int list as a C initializer: "{1, 2, 3}". *)
let c_array values =
  "{" ^ String.concat ", " (List.map string_of_int values) ^ "}"

let c_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* Simple whole-word template substitution, e.g. TLEN -> "4800". *)
let subst pairs text =
  let buf = Buffer.create (String.length text) in
  let n = String.length text in
  let i = ref 0 in
  let is_word c =
    (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
    || c = '_'
  in
  while !i < n do
    let matched =
      List.find_opt
        (fun (key, _) ->
          let lk = String.length key in
          !i + lk <= n
          && String.sub text !i lk = key
          && (!i + lk >= n || not (is_word text.[!i + lk]))
          && (!i = 0 || not (is_word text.[!i - 1])))
        pairs
    in
    match matched with
    | Some (key, value) ->
        Buffer.add_string buf value;
        i := !i + String.length key
    | None ->
        Buffer.add_char buf text.[!i];
        incr i
  done;
  Buffer.contents buf
