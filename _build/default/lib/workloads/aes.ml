(* AES — AES-128 encryption of a handful of blocks with the real
   S-box and key schedule, decomposed into the textbook per-round
   functions. The dense call graph over a shared state is what makes
   AES the paper's pathological thrashing case (§5.4). *)

let sbox =
  [
    0x63; 0x7c; 0x77; 0x7b; 0xf2; 0x6b; 0x6f; 0xc5; 0x30; 0x01; 0x67; 0x2b;
    0xfe; 0xd7; 0xab; 0x76; 0xca; 0x82; 0xc9; 0x7d; 0xfa; 0x59; 0x47; 0xf0;
    0xad; 0xd4; 0xa2; 0xaf; 0x9c; 0xa4; 0x72; 0xc0; 0xb7; 0xfd; 0x93; 0x26;
    0x36; 0x3f; 0xf7; 0xcc; 0x34; 0xa5; 0xe5; 0xf1; 0x71; 0xd8; 0x31; 0x15;
    0x04; 0xc7; 0x23; 0xc3; 0x18; 0x96; 0x05; 0x9a; 0x07; 0x12; 0x80; 0xe2;
    0xeb; 0x27; 0xb2; 0x75; 0x09; 0x83; 0x2c; 0x1a; 0x1b; 0x6e; 0x5a; 0xa0;
    0x52; 0x3b; 0xd6; 0xb3; 0x29; 0xe3; 0x2f; 0x84; 0x53; 0xd1; 0x00; 0xed;
    0x20; 0xfc; 0xb1; 0x5b; 0x6a; 0xcb; 0xbe; 0x39; 0x4a; 0x4c; 0x58; 0xcf;
    0xd0; 0xef; 0xaa; 0xfb; 0x43; 0x4d; 0x33; 0x85; 0x45; 0xf9; 0x02; 0x7f;
    0x50; 0x3c; 0x9f; 0xa8; 0x51; 0xa3; 0x40; 0x8f; 0x92; 0x9d; 0x38; 0xf5;
    0xbc; 0xb6; 0xda; 0x21; 0x10; 0xff; 0xf3; 0xd2; 0xcd; 0x0c; 0x13; 0xec;
    0x5f; 0x97; 0x44; 0x17; 0xc4; 0xa7; 0x7e; 0x3d; 0x64; 0x5d; 0x19; 0x73;
    0x60; 0x81; 0x4f; 0xdc; 0x22; 0x2a; 0x90; 0x88; 0x46; 0xee; 0xb8; 0x14;
    0xde; 0x5e; 0x0b; 0xdb; 0xe0; 0x32; 0x3a; 0x0a; 0x49; 0x06; 0x24; 0x5c;
    0xc2; 0xd3; 0xac; 0x62; 0x91; 0x95; 0xe4; 0x79; 0xe7; 0xc8; 0x37; 0x6d;
    0x8d; 0xd5; 0x4e; 0xa9; 0x6c; 0x56; 0xf4; 0xea; 0x65; 0x7a; 0xae; 0x08;
    0xba; 0x78; 0x25; 0x2e; 0x1c; 0xa6; 0xb4; 0xc6; 0xe8; 0xdd; 0x74; 0x1f;
    0x4b; 0xbd; 0x8b; 0x8a; 0x70; 0x3e; 0xb5; 0x66; 0x48; 0x03; 0xf6; 0x0e;
    0x61; 0x35; 0x57; 0xb9; 0x86; 0xc1; 0x1d; 0x9e; 0xe1; 0xf8; 0x98; 0x11;
    0x69; 0xd9; 0x8e; 0x94; 0x9b; 0x1e; 0x87; 0xe9; 0xce; 0x55; 0x28; 0xdf;
    0x8c; 0xa1; 0x89; 0x0d; 0xbf; 0xe6; 0x42; 0x68; 0x41; 0x99; 0x2d; 0x0f;
    0xb0; 0x54; 0xbb; 0x16;
  ]

let rcon = [ 0x00; 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36 ]

(* inverse S-box, computed from the forward table *)
let inv_sbox =
  let inv = Array.make 256 0 in
  List.iteri (fun i v -> inv.(v) <- i) sbox;
  Array.to_list inv

let nblocks = 8

let source seed =
  let g = Gen.create (seed + 606) in
  let key = Gen.int_list g 16 256 in
  let iv = Gen.int_list g 16 256 in
  let plaintext = Gen.int_list g (16 * nblocks) 256 in
  let body =
    Printf.sprintf
      {|
char sbox[256] = %s;
char inv_sbox[256] = %s;
char rcon[11] = %s;
char key[16] = %s;
char iv[16] = %s;
char data[NBYTES] = %s;
char saved[NBYTES];
char rk[176];
char state[16];
char chain[16];

int xtime(int b) {
  b = b << 1;
  if (b & 0x100) b = b ^ 0x1b;
  return b & 0xff;
}

/* GF(2^8) multiplications used by the inverse MixColumns */
int mul9(int b) { return xtime(xtime(xtime(b))) ^ b; }
int mul11(int b) { return xtime(xtime(xtime(b)) ^ b) ^ b; }
int mul13(int b) { return xtime(xtime(xtime(b) ^ b)) ^ b; }
int mul14(int b) { return xtime(xtime(xtime(b) ^ b) ^ b); }

void expand_key(void) {
  int i;
  for (i = 0; i < 16; i++) rk[i] = key[i];
  for (i = 4; i < 44; i++) {
    int base = i << 2;
    int prev = (i - 1) << 2;
    int t0 = rk[prev]; int t1 = rk[prev + 1];
    int t2 = rk[prev + 2]; int t3 = rk[prev + 3];
    if ((i & 3) == 0) {
      int tmp = t0;
      t0 = sbox[t1] ^ rcon[i >> 2];
      t1 = sbox[t2]; t2 = sbox[t3]; t3 = sbox[tmp];
    }
    int back = (i - 4) << 2;
    rk[base] = rk[back] ^ t0;
    rk[base + 1] = rk[back + 1] ^ t1;
    rk[base + 2] = rk[back + 2] ^ t2;
    rk[base + 3] = rk[back + 3] ^ t3;
  }
}

/* round primitives fully unrolled, as in the rijndael reference code
   MiBench ships */
void add_round_key(int round) {
  int i;
  int base = round << 4;
  for (i = 0; i < 16; i++) state[i] = state[i] ^ rk[base + i];
}

void sub_bytes(void) {
SUB_UNROLLED
}

void inv_sub_bytes(void) {
INVSUB_UNROLLED
}

void shift_rows(void) {
  int t = state[1];
  state[1] = state[5]; state[5] = state[9]; state[9] = state[13]; state[13] = t;
  t = state[2]; state[2] = state[10]; state[10] = t;
  t = state[6]; state[6] = state[14]; state[14] = t;
  t = state[3]; state[3] = state[15]; state[15] = state[11];
  state[11] = state[7]; state[7] = t;
}

void inv_shift_rows(void) {
  int t = state[13];
  state[13] = state[9]; state[9] = state[5]; state[5] = state[1]; state[1] = t;
  t = state[2]; state[2] = state[10]; state[10] = t;
  t = state[6]; state[6] = state[14]; state[14] = t;
  t = state[7]; state[7] = state[11]; state[11] = state[15];
  state[15] = state[3]; state[3] = t;
}

void mix_columns(void) {
MIX_UNROLLED
}

void inv_mix_columns(void) {
INVMIX_UNROLLED
}

void encrypt_block(int offset) {
  int i;
  int round;
  for (i = 0; i < 16; i++) state[i] = data[offset + i] ^ chain[i];
  add_round_key(0);
  for (round = 1; round < 10; round++) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(10);
  for (i = 0; i < 16; i++) { data[offset + i] = state[i]; chain[i] = state[i]; }
}

void decrypt_block(int offset) {
  int i;
  int round;
  for (i = 0; i < 16; i++) state[i] = data[offset + i];
  add_round_key(10);
  inv_shift_rows();
  inv_sub_bytes();
  for (round = 9; round >= 1; round--) {
    add_round_key(round);
    inv_mix_columns();
    inv_shift_rows();
    inv_sub_bytes();
  }
  add_round_key(0);
  for (i = 0; i < 16; i++) {
    int c = data[offset + i];
    data[offset + i] = state[i] ^ chain[i];
    chain[i] = c;
  }
}

void reset_chain(void) {
  int i;
  for (i = 0; i < 16; i++) chain[i] = iv[i];
}

void cbc_encrypt(void) {
  int b;
  reset_chain();
  for (b = 0; b < NBLOCKS; b++) encrypt_block(b << 4);
}

void cbc_decrypt(void) {
  int b;
  reset_chain();
  for (b = 0; b < NBLOCKS; b++) decrypt_block(b << 4);
}

unsigned buffer_checksum(void) {
  unsigned sum = 0;
  int i;
  for (i = 0; i < NBYTES; i++) sum = (sum << 1 | sum >> 15) ^ data[i];
  return sum;
}

int main(void) {
  int i;
  int r;
  int ok = 1;
  unsigned sum = 0;
  expand_key();
  for (i = 0; i < NBYTES; i++) saved[i] = data[i];
  for (r = 0; r < 2; r++) {
    cbc_encrypt();
    sum ^= buffer_checksum();
    cbc_decrypt();
    for (i = 0; i < NBYTES; i++) {
      if (data[i] != saved[i]) ok = 0;
    }
    sum = (sum << 1 | sum >> 15);
  }
  if (!ok) { print_hex(0xDEAD); return 0xDEAD; }
  print_hex(sum);
  return sum;
}
|}
      (Gen.c_array sbox) (Gen.c_array inv_sbox) (Gen.c_array rcon)
      (Gen.c_array key) (Gen.c_array iv)
      (Gen.c_array plaintext)
  in
  let ark_unrolled =
    String.concat "\n"
      (List.init 16 (fun i ->
           Printf.sprintf "  state[%d] = state[%d] ^ rk[base + %d];" i i i))
  in
  let sub_unrolled =
    String.concat "\n"
      (List.init 16 (fun i ->
           Printf.sprintf "  state[%d] = sbox[state[%d]];" i i))
  in
  let invsub_unrolled =
    String.concat "\n"
      (List.init 16 (fun i ->
           Printf.sprintf "  state[%d] = inv_sbox[state[%d]];" i i))
  in
  let mix_unrolled =
    String.concat "\n"
      (List.init 4 (fun c ->
           let b = 4 * c in
           Printf.sprintf
             "  {\n\
              \    int a0 = state[%d]; int a1 = state[%d];\n\
              \    int a2 = state[%d]; int a3 = state[%d];\n\
              \    int all = a0 ^ a1 ^ a2 ^ a3;\n\
              \    state[%d] = a0 ^ all ^ xtime(a0 ^ a1);\n\
              \    state[%d] = a1 ^ all ^ xtime(a1 ^ a2);\n\
              \    state[%d] = a2 ^ all ^ xtime(a2 ^ a3);\n\
              \    state[%d] = a3 ^ all ^ xtime(a3 ^ a0);\n\
              \  }"
             b (b + 1) (b + 2) (b + 3) b (b + 1) (b + 2) (b + 3)))
  in
  let invmix_unrolled =
    String.concat "\n"
      (List.init 4 (fun c ->
           let b = 4 * c in
           Printf.sprintf
             "  {\n\
              \    int a0 = state[%d]; int a1 = state[%d];\n\
              \    int a2 = state[%d]; int a3 = state[%d];\n\
              \    state[%d] = mul14(a0) ^ mul11(a1) ^ mul13(a2) ^ mul9(a3);\n\
              \    state[%d] = mul9(a0) ^ mul14(a1) ^ mul11(a2) ^ mul13(a3);\n\
              \    state[%d] = mul13(a0) ^ mul9(a1) ^ mul14(a2) ^ mul11(a3);\n\
              \    state[%d] = mul11(a0) ^ mul13(a1) ^ mul9(a2) ^ mul14(a3);\n\
              \  }"
             b (b + 1) (b + 2) (b + 3) b (b + 1) (b + 2) (b + 3)))
  in
  Bench_def.prelude
  ^ Gen.subst
      [
        ("NBYTES", string_of_int (16 * nblocks));
        ("NBLOCKS", string_of_int nblocks);
        ("ARK_UNROLLED", ark_unrolled);
        ("SUB_UNROLLED", sub_unrolled);
        ("INVSUB_UNROLLED", invsub_unrolled);
        ("MIX_UNROLLED", mix_unrolled);
        ("INVMIX_UNROLLED", invmix_unrolled);
      ]
      body

let benchmark =
  { Bench_def.name = "aes"; short = "AES"; source; fits_data_in_sram = true }
