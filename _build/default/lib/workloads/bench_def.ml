(* Benchmark definition: a seeded mini-C source generator plus the
   metadata the experiment harness needs. *)

type t = {
  name : string; (* full name, e.g. "stringsearch" *)
  short : string; (* the paper's tag, e.g. "STR" *)
  source : int -> string; (* seed -> mini-C source *)
  fits_data_in_sram : bool;
      (* the paper's split-memory study (§5.5) covers the four
         benchmarks whose program data fits the 4 KiB SRAM *)
}

(* Shared helper: print a 16-bit value as four hex digits over the
   UART — the "check-sequence" of §5.1. *)
let prelude =
  "void print_hex(unsigned v) {\n\
  \  int i;\n\
  \  for (i = 12; i >= 0; i -= 4) {\n\
  \    int d = (v >> i) & 15;\n\
  \    if (d < 10) putchar('0' + d); else putchar('a' + d - 10);\n\
  \  }\n\
   }\n"
