(** Benchmark definition: a seeded mini-C source generator plus the
    metadata the experiment harness needs. *)

type t = {
  name : string;
  short : string;  (** the paper's tag, e.g. "STR" *)
  source : int -> string;  (** seed -> mini-C source *)
  fits_data_in_sram : bool;
      (** member of the §5.5 split-memory study (program data fits the
          4 KiB SRAM) *)
}

val prelude : string
(** Shared helper printing a 16-bit value as four hex digits over the
    UART — the "check-sequence" of §5.1. *)
