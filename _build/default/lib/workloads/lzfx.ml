(* LZFX — LZF-style compression: greedy 2-byte-prefix hash matcher
   with literal runs and back-references, a run-length fallback
   encoder, byte-histogram scoring to pick the better encoding, and
   decompression + verification of both paths. *)

let in_len = 2900
let out_cap = 3600
let htab_size = 1024

let source seed =
  let g = Gen.create (seed + 707) in
  (* compressible input: repeated phrases + noise *)
  let phrases = Array.init 16 (fun _ -> Gen.text g (8 + Gen.int g 24)) in
  let buf = Buffer.create in_len in
  while Buffer.length buf < in_len do
    if Gen.int g 4 = 0 then Buffer.add_char buf (Gen.text_char g)
    else Buffer.add_string buf phrases.(Gen.int g 16)
  done;
  let input = String.sub (Buffer.contents buf) 0 in_len in
  let body =
    Printf.sprintf
      {|
char in_buf[ILEN] = %s;
char out_buf[OCAP];
char rle_buf[OCAP];
char dec_buf[ILEN];
int htab[HSIZE];
int histogram[64];

int hash2(int pos) {
  int h = (in_buf[pos] << 8) | in_buf[pos + 1];
  h = h * 2531;
  return (h >> 4) & (HSIZE - 1);
}

int emit_literals(int op, int lit_start, int lit_end) {
  while (lit_start < lit_end) {
    int run = lit_end - lit_start;
    if (run > 32) run = 32;
    out_buf[op++] = run - 1;
    int k;
    for (k = 0; k < run; k++) out_buf[op++] = in_buf[lit_start + k];
    lit_start += run;
  }
  return op;
}

/* returns compressed length */
int lz_compress(void) {
  int ip = 0;
  int op = 0;
  int lit_start = 0;
  int i;
  for (i = 0; i < HSIZE; i++) htab[i] = -1;
  while (ip < ILEN - 2) {
    int h = hash2(ip);
    int ref = htab[h];
    htab[h] = ip;
    int len = 0;
    if (ref >= 0 && ref < ip && ip - ref < 1024 && in_buf[ref] == in_buf[ip]
        && in_buf[ref + 1] == in_buf[ip + 1]
        && in_buf[ref + 2] == in_buf[ip + 2]) {
      len = 3;
      while (ip + len < ILEN && len < 9 && in_buf[ref + len] == in_buf[ip + len])
        len++;
    }
    if (len >= 3) {
      op = emit_literals(op, lit_start, ip);
      /* match token: 32 + (len-3)*4 + off_hi2, then off_lo byte */
      int off = ip - ref;
      out_buf[op++] = 32 + ((len - 3) << 2) + (off >> 8);
      out_buf[op++] = off & 255;
      ip += len;
      lit_start = ip;
    }
    else ip++;
  }
  op = emit_literals(op, lit_start, ILEN);
  return op;
}

int lz_decompress(int clen) {
  int ip = 0;
  int op = 0;
  while (ip < clen) {
    int tok = out_buf[ip++];
    if (tok < 32) {
      int run = tok + 1;
      int k;
      for (k = 0; k < run; k++) dec_buf[op++] = out_buf[ip++];
    }
    else {
      int len = ((tok - 32) >> 2) + 3;
      int off = ((tok & 3) << 8) | out_buf[ip++];
      int src = op - off;
      int k;
      for (k = 0; k < len; k++) { dec_buf[op] = dec_buf[src]; op++; src++; }
    }
  }
  return op;
}

/* run-length fallback: tok < 128 -> tok+1 literals; else run of
   (tok-126) copies of the next byte */
int rle_compress(void) {
  int ip = 0;
  int op = 0;
  while (ip < ILEN) {
    int run = 1;
    while (ip + run < ILEN && run < 129 && in_buf[ip + run] == in_buf[ip])
      run++;
    if (run >= 3) {
      rle_buf[op++] = 126 + run;
      rle_buf[op++] = in_buf[ip];
      ip += run;
    }
    else {
      int lit = 0;
      int scan = ip;
      while (scan < ILEN && lit < 128) {
        int r = 1;
        while (scan + r < ILEN && r < 3 && in_buf[scan + r] == in_buf[scan])
          r++;
        if (r >= 3 && scan + 2 < ILEN && in_buf[scan + 2] == in_buf[scan]) break;
        scan++;
        lit++;
      }
      if (lit == 0) lit = 1;
      rle_buf[op++] = lit - 1;
      int k;
      for (k = 0; k < lit; k++) rle_buf[op++] = in_buf[ip + k];
      ip += lit;
    }
  }
  return op;
}

int rle_decompress(int clen) {
  int ip = 0;
  int op = 0;
  while (ip < clen) {
    int tok = rle_buf[ip++];
    if (tok < 128) {
      int k;
      for (k = 0; k <= tok; k++) dec_buf[op++] = rle_buf[ip++];
    }
    else {
      int run = tok - 126;
      int b = rle_buf[ip++];
      int k;
      for (k = 0; k < run; k++) dec_buf[op++] = b;
    }
  }
  return op;
}

int verify(int dlen) {
  if (dlen != ILEN) return 0;
  int i;
  for (i = 0; i < ILEN; i++) {
    if (dec_buf[i] != in_buf[i]) return 0;
  }
  return 1;
}

/* crude compressibility score from a byte histogram */
int entropy_score(void) {
  int i;
  for (i = 0; i < 64; i++) histogram[i] = 0;
  for (i = 0; i < ILEN; i++) histogram[in_buf[i] & 63]++;
  int score = 0;
  for (i = 0; i < 64; i++) {
    int f = histogram[i];
    int bits = 0;
    while (f) { bits++; f = f >> 1; }
    score += bits;
  }
  return score;
}

unsigned checksum_of(char *buf, int n) {
  unsigned sum = 0;
  int i;
  for (i = 0; i < n; i++) sum = (sum << 1 | sum >> 15) ^ buf[i];
  return sum;
}


char mtf_table[256];
char mtf_buf[ILEN];

/* move-to-front transform feeding the RLE encoder (bzip2-style
   front end); self-inverting with the matching decoder */
void mtf_init(void) {
  int i;
  for (i = 0; i < 256; i++) mtf_table[i] = i;
}

void mtf_encode(void) {
  mtf_init();
  int i;
  for (i = 0; i < ILEN; i++) {
    int c = in_buf[i];
    int j = 0;
    while (mtf_table[j] != c) j++;
    mtf_buf[i] = j;
    while (j > 0) { mtf_table[j] = mtf_table[j - 1]; j--; }
    mtf_table[0] = c;
  }
}

int mtf_decode_check(void) {
  mtf_init();
  int i;
  for (i = 0; i < ILEN; i++) {
    int j = mtf_buf[i];
    int c = mtf_table[j];
    while (j > 0) { mtf_table[j] = mtf_table[j - 1]; j--; }
    mtf_table[0] = c;
    if (c != in_buf[i]) return 0;
  }
  return 1;
}

int digest_both(int lz_len, int rle_len) {
  crc32_init();
  adler_init();
  int i;
  for (i = 0; i < lz_len; i++) crc32_byte(out_buf[i]);
  for (i = 0; i < rle_len; i++) adler_byte(rle_buf[i]);
  return crc32_fold() ^ adler_fold();
}

int main(void) {
  int lz_len = lz_compress();
  int ok = verify(lz_decompress(lz_len));
  int rle_len = rle_compress();
  ok = ok && verify(rle_decompress(rle_len));
  mtf_encode();
  ok = ok && mtf_decode_check();
  if (!ok) { print_hex(0xDEAD); return 0xDEAD; }
  int best = lz_len < rle_len ? lz_len : rle_len;
  unsigned sum = best ^ (entropy_score() << 6);
  sum ^= checksum_of(out_buf, lz_len);
  sum = (sum << 3 | sum >> 13) ^ checksum_of(rle_buf, rle_len);
  sum ^= digest_both(lz_len, rle_len);
  sum = (sum << 1 | sum >> 15) ^ checksum_of(mtf_buf, ILEN);
  print_hex(sum);
  return sum;
}
|}
      (Gen.c_string input)
  in
  Bench_def.prelude ^ Clib.crc32_source
  ^ Gen.subst
      [
        ("ILEN", string_of_int in_len);
        ("OCAP", string_of_int out_cap);
        ("HSIZE", string_of_int htab_size);
      ]
      body

let benchmark =
  { Bench_def.name = "lzfx"; short = "LZFX"; source; fits_data_in_sram = false }
