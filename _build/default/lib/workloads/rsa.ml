(* RSA — textbook RSA encrypt/decrypt with square-and-multiply modular
   exponentiation. mini-C is 16-bit, so this uses the classic toy
   modulus n = 3233 (61*53), e = 17, d = 2753 — the arithmetic
   *structure* (mulmod by shift-add, modexp loop) matches the MiBench
   kernel; only the operand width differs (noted in DESIGN.md). *)

let nmsg = 24
let modulus = 3233
let pub_e = 17
let priv_d = 2753

let source seed =
  let g = Gen.create (seed + 909) in
  let messages = List.init nmsg (fun _ -> 2 + Gen.int g (modulus - 3)) in
  Printf.sprintf
    {|
%s
int msg[%d] = %s;
int enc[%d];
int dec[%d];

/* (a * b) %% m without overflowing 16 bits: shift-add with reduction */
int mulmod(int a, int b, int m) {
  int r = 0;
  while (b) {
    if (b & 1) {
      r = r + a;
      if (r >= m) r -= m;
    }
    a = a + a;
    if (a >= m) a -= m;
    b = b >> 1;
  }
  return r;
}

int powmod(int base, int exp, int m) {
  int r = 1;
  base = base %% m;
  while (exp) {
    if (exp & 1) r = mulmod(r, base, m);
    base = mulmod(base, base, m);
    exp = exp >> 1;
  }
  return r;
}

int main(void) {
  int i;
  int ok = 1;
  for (i = 0; i < %d; i++) enc[i] = powmod(msg[i], %d, %d);
  for (i = 0; i < %d; i++) dec[i] = powmod(enc[i], %d, %d);
  for (i = 0; i < %d; i++) {
    if (dec[i] != msg[i]) ok = 0;
  }
  unsigned sum = ok << 15;
  for (i = 0; i < %d; i++) sum = (sum << 1 | sum >> 15) ^ enc[i];
  print_hex(sum);
  return ok ? sum : 0xDEAD;
}
|}
    Bench_def.prelude nmsg (Gen.c_array messages) nmsg nmsg nmsg pub_e modulus
    nmsg priv_d modulus nmsg nmsg

let benchmark =
  { Bench_def.name = "rsa"; short = "RSA"; source; fits_data_in_sram = true }
