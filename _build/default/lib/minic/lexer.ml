(* Hand-written lexer for mini-C. *)

type token =
  | Tnum of int
  | Tchar_lit of char
  | Tstring of string
  | Tident of string
  | Tkw of string (* int unsigned char void if else while for do return
                     break continue switch case default *)
  | Tpunct of string (* operators and delimiters *)
  | Teof

type t = { tokens : (token * int) array; mutable pos : int }
(* each token carries its source line for error messages *)

exception Error of string

let error line fmt =
  Format.kasprintf (fun s -> raise (Error (Printf.sprintf "line %d: %s" line s))) fmt

let keywords =
  [
    "int"; "unsigned"; "char"; "void"; "if"; "else"; "while"; "for"; "do";
    "return"; "break"; "continue"; "switch"; "case"; "default";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

(* Multi-character operators, longest first. *)
let puncts =
  [
    "<<="; ">>="; "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>"; "+="; "-=";
    "*="; "/="; "%="; "&="; "|="; "^="; "++"; "--"; "+"; "-"; "*"; "/"; "%";
    "&"; "|"; "^"; "~"; "!"; "<"; ">"; "="; "("; ")"; "{"; "}"; "["; "]"; ";";
    ","; "?"; ":";
  ]

let unescape line = function
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | c -> error line "unknown escape \\%c" c

let tokenize source =
  let n = String.length source in
  let tokens = ref [] in
  let line = ref 1 in
  let pos = ref 0 in
  let peek k = if !pos + k < n then Some source.[!pos + k] else None in
  let emit tok = tokens := (tok, !line) :: !tokens in
  while !pos < n do
    let c = source.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '/' && peek 1 = Some '/' then begin
      while !pos < n && source.[!pos] <> '\n' do
        incr pos
      done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      pos := !pos + 2;
      let rec skip () =
        if !pos + 1 >= n then error !line "unterminated comment"
        else if source.[!pos] = '*' && source.[!pos + 1] = '/' then pos := !pos + 2
        else begin
          if source.[!pos] = '\n' then incr line;
          incr pos;
          skip ()
        end
      in
      skip ()
    end
    else if is_digit c then begin
      let start = !pos in
      if c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
        pos := !pos + 2;
        while !pos < n && is_hex source.[!pos] do
          incr pos
        done;
        let text = String.sub source start (!pos - start) in
        emit (Tnum (int_of_string text))
      end
      else begin
        while !pos < n && is_digit source.[!pos] do
          incr pos
        done;
        emit (Tnum (int_of_string (String.sub source start (!pos - start))))
      end
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char source.[!pos] do
        incr pos
      done;
      let text = String.sub source start (!pos - start) in
      if List.mem text keywords then emit (Tkw text) else emit (Tident text)
    end
    else if c = '\'' then begin
      incr pos;
      let ch =
        match peek 0 with
        | Some '\\' ->
            incr pos;
            let e = match peek 0 with Some e -> e | None -> error !line "bad char" in
            incr pos;
            unescape !line e
        | Some ch ->
            incr pos;
            ch
        | None -> error !line "unterminated char literal"
      in
      if peek 0 <> Some '\'' then error !line "unterminated char literal";
      incr pos;
      emit (Tchar_lit ch)
    end
    else if c = '"' then begin
      incr pos;
      let buf = Buffer.create 16 in
      let rec scan () =
        match peek 0 with
        | None -> error !line "unterminated string"
        | Some '"' -> incr pos
        | Some '\\' ->
            incr pos;
            (match peek 0 with
            | Some e ->
                Buffer.add_char buf (unescape !line e);
                incr pos
            | None -> error !line "unterminated string");
            scan ()
        | Some ch ->
            Buffer.add_char buf ch;
            incr pos;
            scan ()
      in
      scan ();
      emit (Tstring (Buffer.contents buf))
    end
    else begin
      match
        List.find_opt
          (fun p ->
            let lp = String.length p in
            !pos + lp <= n && String.sub source !pos lp = p)
          puncts
      with
      | Some p ->
          pos := !pos + String.length p;
          emit (Tpunct p)
      | None -> error !line "unexpected character %C" c
    end
  done;
  emit Teof;
  { tokens = Array.of_list (List.rev !tokens); pos = 0 }

let peek lx = fst lx.tokens.(lx.pos)
let peek2 lx =
  if lx.pos + 1 < Array.length lx.tokens then fst lx.tokens.(lx.pos + 1) else Teof
let line lx = snd lx.tokens.(lx.pos)
let advance lx = lx.pos <- lx.pos + 1

let next lx =
  let t = peek lx in
  advance lx;
  t

let describe = function
  | Tnum n -> string_of_int n
  | Tchar_lit c -> Printf.sprintf "%C" c
  | Tstring s -> Printf.sprintf "%S" s
  | Tident s -> s
  | Tkw s -> s
  | Tpunct s -> Printf.sprintf "%S" s
  | Teof -> "<eof>"

let expect lx tok =
  let t = next lx in
  if t <> tok then
    error (snd lx.tokens.(lx.pos - 1)) "expected %s, found %s" (describe tok)
      (describe t)

let expect_punct lx p = expect lx (Tpunct p)

let expect_ident lx =
  match next lx with
  | Tident s -> s
  | t -> error (snd lx.tokens.(lx.pos - 1)) "expected identifier, found %s" (describe t)

let accept_punct lx p =
  if peek lx = Tpunct p then begin
    advance lx;
    true
  end
  else false
