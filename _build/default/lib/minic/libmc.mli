(** Hand-written assembly support library: software multiply, divide,
    modulo, variable-distance shifts, binary32 float add/sub/mul
    (gcc's __mspabi/__mulsf3 analogues), and the platform
    pseudo-functions putchar/halt. These are the "precompiled library
    functions" of the paper's §4: the toolchain can disassemble and
    re-instrument them like application code.

    Calling convention: operands in R12/R13 (float operands in
    R12..R15 as hi/lo pairs), result in R12; R13..R15 clobbered,
    R4..R11 preserved. The float routines leave the result's low word
    in the [__f_result_lo] library word, fetched with [f_lo]. *)

val items : Masm.Ast.item list
val names : string list

val needed_by : Masm.Ast.program -> Masm.Ast.item list
(** The routines the program references, with library-internal calls
    closed over — keeps binaries lean, since cache metadata cost
    scales with function count (§5.2). *)
