(* Reference interpreter for mini-C, used as a differential-testing
   oracle against the full pipeline (compiler → assembler → simulator
   → caching runtimes).

   The interpreter defines the same semantics the code generator
   implements: 16-bit wrapping arithmetic, zero-extended chars,
   unsigned comparison when either operand is unsigned/char/pointer,
   the support library's shift masking (count & 31) and
   division-by-zero result (0xFFFF), and a flat memory model where
   pointers are plain 16-bit addresses. *)

exception Error of string
exception Unsupported of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let mask v = v land 0xFFFF
let signed v = if v land 0x8000 <> 0 then v - 0x10000 else v

(* --- Flat memory ------------------------------------------------------ *)

type mem = { bytes : Bytes.t; mutable brk : int; mutable sp : int }

let mem_create () =
  { bytes = Bytes.make 0x10000 '\000'; brk = 0x1000; sp = 0xF000 }

let load8 m a = Char.code (Bytes.get m.bytes (mask a))
let store8 m a v = Bytes.set m.bytes (mask a) (Char.chr (v land 0xFF))
let load16 m a = load8 m a lor (load8 m (a + 1) lsl 8)

let store16 m a v =
  store8 m a (v land 0xFF);
  store8 m (a + 1) ((v lsr 8) land 0xFF)

let alloc m bytes =
  let a = m.brk in
  m.brk <- m.brk + ((bytes + 1) land lnot 1);
  a

(* --- Environments ------------------------------------------------------ *)

type binding = { b_ty : Ast.ty; b_is_array : bool; b_addr : int }

type env = {
  mem : mem;
  globals : (string, binding) Hashtbl.t;
  funcs : (string, Ast.func) Hashtbl.t;
  output : Buffer.t;
  mutable scopes : (string, binding) Hashtbl.t list;
  mutable steps : int;
  fuel : int;
}

exception Return_exc of int
exception Break_exc
exception Continue_exc
exception Halted_exc

let tick env =
  env.steps <- env.steps + 1;
  if env.steps > env.fuel then raise (Error "interpreter out of fuel")

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes
let pop_scope env =
  match env.scopes with _ :: r -> env.scopes <- r | [] -> assert false

let find_var env name =
  let rec search = function
    | [] -> Hashtbl.find_opt env.globals name
    | s :: rest -> (
        match Hashtbl.find_opt s name with Some b -> Some b | None -> search rest)
  in
  search env.scopes

let declare_local env ty name ~is_array ~bytes =
  let scope = match env.scopes with s :: _ -> s | [] -> assert false in
  env.mem.sp <- env.mem.sp - ((bytes + 1) land lnot 1);
  Hashtbl.replace scope name { b_ty = ty; b_is_array = is_array; b_addr = env.mem.sp }

(* --- Types (mirrors Codegen's rules) ----------------------------------- *)

let is_unsigned = function
  | Ast.Tuint | Ast.Tchar | Ast.Tptr _ -> true
  | Ast.Tint | Ast.Tvoid -> false

let pointee = function Ast.Tptr t -> t | _ -> error "dereference of non-pointer"

let join_ty a b =
  match (a, b) with
  | Ast.Tptr _, _ -> a
  | _, Ast.Tptr _ -> b
  | Ast.Tuint, _ | _, Ast.Tuint -> Ast.Tuint
  | _ -> Ast.Tint

(* --- Support library semantics ----------------------------------------- *)

let lib_udivmod a b = if b = 0 then (0xFFFF, 0) else (a / b, a mod b)

let lib_div_signed a b =
  let sa = signed a and sb = signed b in
  let q, _ = lib_udivmod (abs sa) (abs sb) in
  if sa < 0 <> (sb < 0) then mask (-q) else mask q

let lib_mod_signed a b =
  let sa = signed a and sb = signed b in
  let _, r = lib_udivmod (abs sa) (abs sb) in
  if sa < 0 then mask (-r) else mask r

let lib_shift ~op a count =
  let count = count land 31 in
  let rec go v n =
    if n = 0 then v
    else
      go
        (match op with
        | `Shl -> mask (v lsl 1)
        | `Lshr -> v lsr 1
        | `Ashr -> (v lsr 1) lor (v land 0x8000))
        (n - 1)
  in
  go a count

(* --- Expression evaluation --------------------------------------------- *)

let access_bytes = function Ast.Tchar -> 1 | _ -> 2

let load env ty addr =
  if access_bytes ty = 1 then load8 env.mem addr else load16 env.mem addr

let store env ty addr v =
  if access_bytes ty = 1 then store8 env.mem addr v else store16 env.mem addr v

let string_table : (string, int) Hashtbl.t = Hashtbl.create 16

let rec eval env (e : Ast.expr) : int * Ast.ty =
  tick env;
  match e with
  | Ast.Enum n -> (mask n, Ast.Tint)
  | Ast.Echr c -> (Char.code c, Ast.Tint)
  | Ast.Estr s -> (
      match Hashtbl.find_opt string_table s with
      | Some a -> (a, Ast.Tptr Ast.Tchar)
      | None ->
          let a = alloc env.mem (String.length s + 1) in
          String.iteri (fun i c -> store8 env.mem (a + i) (Char.code c)) s;
          store8 env.mem (a + String.length s) 0;
          Hashtbl.replace string_table s a;
          (a, Ast.Tptr Ast.Tchar))
  | Ast.Evar name -> (
      match find_var env name with
      | Some { b_ty; b_is_array = true; b_addr } -> (b_addr, Ast.Tptr b_ty)
      | Some { b_ty; b_is_array = false; b_addr } -> (load env b_ty b_addr, b_ty)
      | None -> error "unknown variable %s" name)
  | Ast.Ederef p ->
      let a, ty = eval env p in
      let pt = pointee ty in
      (load env pt a, pt)
  | Ast.Eindex (arr, idx) ->
      let addr, pt = index_addr env arr idx in
      (load env pt addr, pt)
  | Ast.Eaddr lv ->
      let addr, ty = lvalue_addr env lv in
      (addr, Ast.Tptr ty)
  | Ast.Eun (Ast.Neg, e) ->
      let v, _ = eval env e in
      (mask (-v), Ast.Tint)
  | Ast.Eun (Ast.Bnot, e) ->
      let v, ty = eval env e in
      (mask (lnot v), ty)
  | Ast.Eun (Ast.Lnot, e) ->
      let v, _ = eval env e in
      ((if v = 0 then 1 else 0), Ast.Tint)
  | Ast.Ebin (Ast.Land, a, b) ->
      let va, _ = eval env a in
      if va = 0 then (0, Ast.Tint)
      else
        let vb, _ = eval env b in
        ((if vb <> 0 then 1 else 0), Ast.Tint)
  | Ast.Ebin (Ast.Lor, a, b) ->
      let va, _ = eval env a in
      if va <> 0 then (1, Ast.Tint)
      else
        let vb, _ = eval env b in
        ((if vb <> 0 then 1 else 0), Ast.Tint)
  | Ast.Ebin (op, a, b) -> eval_binop env op a b
  | Ast.Eassign (None, lv, rhs) -> (
      (* mirror the code generator: simple lvalues evaluate the RHS
         first, complex lvalues compute the address first; in both
         cases the expression's value is the raw RHS (it stays in R12
         un-truncated even for byte stores) *)
      match simple_target env lv with
      | Some (ty, addr) ->
          let v, _ = eval env rhs in
          store env ty addr v;
          (v, ty)
      | None ->
          let addr, ty = lvalue_addr env lv in
          let v, _ = eval env rhs in
          store env ty addr v;
          (v, ty))
  | Ast.Eassign (Some op, lv, rhs) -> (
      match simple_target env lv with
      | Some (ty, addr) ->
          let v, _ = eval_binop env op lv rhs in
          store env ty addr v;
          (v, ty)
      | None ->
          let addr, ty = lvalue_addr env lv in
          let rv, rty = eval env rhs in
          let old = load env ty addr in
          let v, _ = apply_binop env op (old, ty) (rv, rty) in
          store env ty addr v;
          (v, ty))
  | Ast.Eincdec (is_pre, delta, lv) ->
      let addr, ty = lvalue_addr env lv in
      let step =
        match ty with Ast.Tptr t -> delta * Ast.size_of t | _ -> delta
      in
      let old = load env ty addr in
      store env ty addr (old + step);
      ((if is_pre then load env ty addr else old), ty)
  | Ast.Econd (c, a, b) ->
      let vc, _ = eval env c in
      if vc <> 0 then eval env a else eval env b
  | Ast.Ecall (f, args) -> eval_call env f args
  | Ast.Ecast (ty, e) ->
      let v, _ = eval env e in
      ((match ty with Ast.Tchar -> v land 0xFF | _ -> v), ty)

and index_addr env arr idx =
  let base, aty = eval env arr in
  let pt = pointee aty in
  let i, _ = eval env idx in
  (mask (base + (signed i * Ast.size_of pt)), pt)

and lvalue_addr env = function
  | Ast.Evar name -> (
      match find_var env name with
      | Some { b_is_array = true; _ } -> error "array %s is not assignable" name
      | Some { b_ty; b_addr; _ } -> (b_addr, b_ty)
      | None -> error "unknown variable %s" name)
  | Ast.Ederef p ->
      let a, ty = eval env p in
      (a, pointee ty)
  | Ast.Eindex (arr, idx) -> index_addr env arr idx
  | _ -> error "not an lvalue"

and simple_target env = function
  | Ast.Evar name -> (
      match find_var env name with
      | Some { b_is_array = false; b_ty; b_addr } -> Some (b_ty, b_addr)
      | _ -> None)
  | _ -> None

and eval_binop env op a b =
  let va = eval env a in
  let vb = eval env b in
  apply_binop env op va vb

and apply_binop _env op (va, ta) (vb, tb) =
  let u = is_unsigned ta || is_unsigned tb in
  let cmp_result c = ((if c then 1 else 0), Ast.Tint) in
  let as_val v = (mask v, join_ty ta tb) in
  let scale ty v =
    match ty with Ast.Tptr t -> signed v * Ast.size_of t | _ -> signed v
  in
  match op with
  | Ast.Add -> (
      match (ta, tb) with
      | Ast.Tptr _, _ -> (mask (va + scale ta vb), ta)
      | _, Ast.Tptr _ -> (mask (scale tb va + vb), tb)
      | _ -> as_val (va + vb))
  | Ast.Sub -> (
      match (ta, tb) with
      | Ast.Tptr _, Ast.Tptr _ ->
          let d = mask (va - vb) in
          ( (if Ast.size_of (pointee ta) = 2 then
               mask ((d lsr 1) lor (d land 0x8000))
             else d),
            Ast.Tint )
      | Ast.Tptr _, _ -> (mask (va - scale ta vb), ta)
      | _ -> as_val (va - vb))
  | Ast.Mul -> as_val (va * vb)
  | Ast.Div ->
      if u then (fst (lib_udivmod va vb), join_ty ta tb)
      else (lib_div_signed va vb, join_ty ta tb)
  | Ast.Mod ->
      if u then (snd (lib_udivmod va vb), join_ty ta tb)
      else (lib_mod_signed va vb, join_ty ta tb)
  | Ast.Band -> as_val (va land vb)
  | Ast.Bor -> as_val (va lor vb)
  | Ast.Bxor -> as_val (va lxor vb)
  | Ast.Shl -> (lib_shift ~op:`Shl va vb, ta)
  | Ast.Shr ->
      ((if is_unsigned ta then lib_shift ~op:`Lshr va vb
        else lib_shift ~op:`Ashr va vb),
       ta)
  | Ast.Eq -> cmp_result (va = vb)
  | Ast.Ne -> cmp_result (va <> vb)
  | Ast.Lt -> cmp_result (if u then va < vb else signed va < signed vb)
  | Ast.Le -> cmp_result (if u then va <= vb else signed va <= signed vb)
  | Ast.Gt -> cmp_result (if u then va > vb else signed va > signed vb)
  | Ast.Ge -> cmp_result (if u then va >= vb else signed va >= signed vb)
  | Ast.Land | Ast.Lor -> assert false (* handled in eval *)

and eval_call env f args =
  let values = List.map (fun a -> fst (eval env a)) args in
  match (f, values) with
  | "putchar", [ v ] ->
      Buffer.add_char env.output (Char.chr (v land 0xFF));
      (0, Ast.Tvoid)
  | "halt", [] -> raise Halted_exc
  | "__mulhi", [ a; b ] -> (mask (a * b), Ast.Tint)
  | "__divhi", [ a; b ] -> (lib_div_signed a b, Ast.Tint)
  | "__modhi", [ a; b ] -> (lib_mod_signed a b, Ast.Tint)
  | "__udivhi", [ a; b ] -> (fst (lib_udivmod a b), Ast.Tuint)
  | "__umodhi", [ a; b ] -> (snd (lib_udivmod a b), Ast.Tuint)
  | "__ashlhi", [ a; b ] -> (lib_shift ~op:`Shl a b, Ast.Tint)
  | "__ashrhi", [ a; b ] -> (lib_shift ~op:`Ashr a b, Ast.Tint)
  | "__lshrhi", [ a; b ] -> (lib_shift ~op:`Lshr a b, Ast.Tuint)
  | ("f_mul2" | "f_add2" | "f_sub2" | "f_lo"), _ ->
      raise (Unsupported ("software float helper " ^ f))
  | _ -> (
      match Hashtbl.find_opt env.funcs f with
      | None -> error "unknown function %s" f
      | Some fn ->
          if List.length fn.Ast.fparams <> List.length values then
            error "%s: arity mismatch" f;
          let saved_scopes = env.scopes in
          let saved_sp = env.mem.sp in
          env.scopes <- [];
          push_scope env;
          List.iter2
            (fun (ty, name) v ->
              declare_local env ty name ~is_array:false ~bytes:(Ast.size_of ty);
              match find_var env name with
              | Some b -> store env ty b.b_addr v
              | None -> assert false)
            fn.Ast.fparams values;
          let result =
            try
              exec_stmts env fn.Ast.fbody;
              0
            with Return_exc v -> v
          in
          env.scopes <- saved_scopes;
          env.mem.sp <- saved_sp;
          (result, fn.Ast.freturn))

(* --- Statements --------------------------------------------------------- *)

and exec_stmts env stmts = List.iter (exec_stmt env) stmts

and exec_stmt env s =
  tick env;
  match s with
  | Ast.Sexpr e -> ignore (eval env e)
  | Ast.Sblock ss ->
      push_scope env;
      exec_stmts env ss;
      pop_scope env
  | Ast.Sdecl (ty, name, len, init) -> (
      match len with
      | None ->
          declare_local env ty name ~is_array:false ~bytes:(Ast.size_of ty);
          (match init with
          | Some e -> (
              let v, _ = eval env e in
              match find_var env name with
              | Some b -> store env ty b.b_addr v
              | None -> assert false)
          | None -> ())
      | Some n ->
          declare_local env ty name ~is_array:true ~bytes:(n * Ast.size_of ty))
  | Ast.Sif (c, then_, else_) ->
      let v, _ = eval env c in
      push_scope env;
      exec_stmts env (if v <> 0 then then_ else else_);
      pop_scope env
  | Ast.Swhile (c, body) ->
      let rec loop () =
        let v, _ = eval env c in
        if v <> 0 then begin
          (try
             push_scope env;
             exec_stmts env body;
             pop_scope env
           with
          | Continue_exc -> pop_scope env
          | Break_exc ->
              pop_scope env;
              raise Break_exc);
          loop ()
        end
      in
      (try loop () with Break_exc -> ())
  | Ast.Sdowhile (body, c) ->
      let rec loop () =
        (try
           push_scope env;
           exec_stmts env body;
           pop_scope env
         with
        | Continue_exc -> pop_scope env
        | Break_exc ->
            pop_scope env;
            raise Break_exc);
        let v, _ = eval env c in
        if v <> 0 then loop ()
      in
      (try loop () with Break_exc -> ())
  | Ast.Sfor (init, cond, step, body) ->
      push_scope env;
      Option.iter (exec_stmt env) init;
      let rec loop () =
        let continue_ =
          match cond with Some c -> fst (eval env c) <> 0 | None -> true
        in
        if continue_ then begin
          (try
             push_scope env;
             exec_stmts env body;
             pop_scope env
           with
          | Continue_exc -> pop_scope env
          | Break_exc ->
              pop_scope env;
              raise Break_exc);
          (match step with Some e -> ignore (eval env e) | None -> ());
          loop ()
        end
      in
      (try loop () with Break_exc -> ());
      pop_scope env
  | Ast.Sswitch (scrutinee, cases, default) -> (
      let v, _ = eval env scrutinee in
      let v = signed v in
      (* find the first matching case, then fall through *)
      let rec find i = function
        | [] -> None
        | (values, _) :: rest ->
            if List.exists (fun k -> k = v) values then Some i
            else find (i + 1) rest
      in
      let bodies = List.map snd cases @ Option.to_list default in
      let start =
        match find 0 cases with
        | Some i -> Some i
        | None -> if default <> None then Some (List.length cases) else None
      in
      match start with
      | None -> ()
      | Some i -> (
          try
            List.iteri
              (fun j body ->
                if j >= i then begin
                  push_scope env;
                  (try exec_stmts env body
                   with e ->
                     pop_scope env;
                     raise e);
                  pop_scope env
                end)
              bodies
          with Break_exc -> ()))
  | Ast.Sreturn e ->
      let v = match e with Some e -> fst (eval env e) | None -> 0 in
      raise (Return_exc v)
  | Ast.Sbreak -> raise Break_exc
  | Ast.Scontinue -> raise Continue_exc

(* --- Program setup ------------------------------------------------------- *)

let setup_global env (g : Ast.global) =
  let esize = Ast.size_of g.Ast.gty in
  match g.Ast.glen with
  | None ->
      let addr = alloc env.mem esize in
      Hashtbl.replace env.globals g.Ast.gname
        { b_ty = g.Ast.gty; b_is_array = false; b_addr = addr };
      let v = match g.Ast.ginit with Some (Ast.Ival v) -> v | _ -> 0 in
      (match (g.Ast.gty, g.Ast.ginit) with
      | Ast.Tptr Ast.Tchar, Some (Ast.Istr s) ->
          let sa = alloc env.mem (String.length s + 1) in
          String.iteri (fun i c -> store8 env.mem (sa + i) (Char.code c)) s;
          store8 env.mem (sa + String.length s) 0;
          store16 env.mem addr sa
      | _ -> store env g.Ast.gty addr v)
  | Some n ->
      let addr = alloc env.mem (n * esize) in
      Hashtbl.replace env.globals g.Ast.gname
        { b_ty = g.Ast.gty; b_is_array = true; b_addr = addr };
      (match g.Ast.ginit with
      | Some (Ast.Iarr values) ->
          List.iteri
            (fun i v ->
              if i < n then store env g.Ast.gty (addr + (i * esize)) v)
            values
      | Some (Ast.Istr s) ->
          String.iteri
            (fun i c -> if i < n then store8 env.mem (addr + i) (Char.code c))
            s
      | Some (Ast.Ival _) -> error "scalar initializer for array %s" g.Ast.gname
      | None -> ())

type result = { return_value : int; output : string }

let run ?(fuel = 50_000_000) (program : Ast.program) =
  Hashtbl.reset string_table;
  let env =
    {
      mem = mem_create ();
      globals = Hashtbl.create 32;
      funcs = Hashtbl.create 32;
      output = Buffer.create 64;
      scopes = [];
      steps = 0;
      fuel;
    }
  in
  List.iter
    (fun f -> Hashtbl.replace env.funcs f.Ast.fname f)
    (Ast.functions program);
  List.iter (setup_global env) (Ast.globals program);
  let result =
    try fst (eval_call env "main" []) with Halted_exc -> 0
  in
  { return_value = result; output = Buffer.contents env.output }

let run_source ?fuel source = run ?fuel (Parser.parse source)
