module Isa = Msp430.Isa
module A = Masm.Ast

(* Code generation from mini-C to MSP430 assembly.

   ABI (matching msp430-gcc as the paper describes in §4):
   - arguments in R12..R15, return value in R12;
   - R4 is the frame pointer, R11.. caller temporaries;
   - R12..R15 are caller-saved (the library routines clobber R13..R15).

   Expressions evaluate into R12; binary operators stash the left
   operand on the stack, evaluate the right operand, then pop the left
   operand into R13. Multiplication, division, modulo and
   variable-distance shifts compile to calls into the hand-written
   assembly support library (Libmc), mirroring gcc's __mspabi helpers —
   these are exactly the "precompiled library functions" the paper's
   library-instrumentation workflow targets. *)

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* --- Environments --------------------------------------------------- *)

type global_info = { g_ty : Ast.ty; g_is_array : bool }

type local_info = { l_ty : Ast.ty; l_is_array : bool; l_offset : int }
(* offset is relative to the frame pointer R4, always negative *)

type fenv = {
  globals : (string, global_info) Hashtbl.t;
  funcs : (string, Ast.ty * Ast.ty list) Hashtbl.t;
  strings : (string, string) Hashtbl.t; (* literal -> label *)
  mutable string_count : int;
}

type env = {
  fenv : fenv;
  mutable scopes : (string, local_info) Hashtbl.t list;
  mutable next_offset : int; (* next free slot, negative *)
  mutable label_count : int;
  fname : string;
  mutable out : A.stmt list; (* reversed *)
  mutable break_labels : string list;
  mutable continue_labels : string list;
  epilogue : string;
}

let emit env stmt = env.out <- stmt :: env.out

let fresh_label env hint =
  env.label_count <- env.label_count + 1;
  Printf.sprintf "%s$%s%d" env.fname hint env.label_count

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes
let pop_scope env =
  match env.scopes with
  | _ :: rest -> env.scopes <- rest
  | [] -> assert false

let find_local env name =
  let rec loop = function
    | [] -> None
    | scope :: rest -> (
        match Hashtbl.find_opt scope name with
        | Some i -> Some i
        | None -> loop rest)
  in
  loop env.scopes

let declare_local env ty name ~is_array ~bytes =
  let scope = match env.scopes with s :: _ -> s | [] -> assert false in
  if Hashtbl.mem scope name then error "%s: duplicate local %s" env.fname name;
  let aligned = (bytes + 1) land lnot 1 in
  env.next_offset <- env.next_offset - aligned;
  let info = { l_ty = ty; l_is_array = is_array; l_offset = env.next_offset } in
  Hashtbl.replace scope name info;
  info

let intern_string fenv s =
  match Hashtbl.find_opt fenv.strings s with
  | Some label -> label
  | None ->
      fenv.string_count <- fenv.string_count + 1;
      let label = Printf.sprintf "str$%d" fenv.string_count in
      Hashtbl.replace fenv.strings s label;
      label

(* --- Types ----------------------------------------------------------- *)

let is_unsigned = function
  | Ast.Tuint | Ast.Tchar | Ast.Tptr _ -> true
  | Ast.Tint | Ast.Tvoid -> false

let pointee = function
  | Ast.Tptr t -> t
  | ty -> error "dereference of non-pointer %s" (Format.asprintf "%a" Ast.pp_ty ty)

let elem_size ty = Ast.size_of (pointee ty)

(* usual arithmetic result type *)
let join_ty a b =
  match (a, b) with
  | Ast.Tptr _, _ -> a
  | _, Ast.Tptr _ -> b
  | Ast.Tuint, _ | _, Ast.Tuint -> Ast.Tuint
  | _ -> Ast.Tint

let access_size = function Ast.Tchar -> Isa.B | _ -> Isa.W

(* --- Emission helpers ------------------------------------------------ *)

let r12 = 12
let r13 = 13
let r14 = 14
let r15 = 15

let i1 env op ?(sz = Isa.W) src dst = emit env (A.Instr (A.I1 (op, sz, src, dst)))
let mov env ?sz src dst = i1 env Isa.MOV ?sz src dst
let imm n = A.Simm (A.Num (n land 0xFFFF))
let reg r = A.Sreg r
let dreg r = A.Dreg r
let push env r = emit env (A.Instr (A.I2 (Isa.PUSH, Isa.W, reg r)))
let pop env r = mov env (A.Sinc 1) (dreg r)
let jump env c l = emit env (A.Instr (A.J (c, l)))
let label env l = emit env (A.Label l)
let call env f = emit env (A.Instr (A.Call (A.Lab f)))

(* shift R12 left once: add to itself *)
let shl1 env = i1 env Isa.ADD (reg r12) (dreg r12)

(* --- Expression code generation -------------------------------------- *)

(* Emit code leaving the value of [e] in R12; returns its type. *)
let rec gen_expr env e : Ast.ty =
  match e with
  | Ast.Enum n ->
      mov env (imm n) (dreg r12);
      Ast.Tint
  | Ast.Echr c ->
      mov env (imm (Char.code c)) (dreg r12);
      Ast.Tint
  | Ast.Estr s ->
      let lbl = intern_string env.fenv s in
      mov env (A.Simm (A.Lab lbl)) (dreg r12);
      Ast.Tptr Ast.Tchar
  | Ast.Evar name -> gen_var env name
  | Ast.Ederef e ->
      let ty = gen_expr env e in
      let pt = pointee ty in
      mov env ~sz:(access_size pt) (A.Sind r12) (dreg r12);
      pt
  | Ast.Eindex (arr, idx) ->
      let pt = gen_index_addr env arr idx in
      mov env ~sz:(access_size pt) (A.Sind r12) (dreg r12);
      pt
  | Ast.Eaddr lv ->
      let ty, _ = gen_lvalue_addr env lv in
      Ast.Tptr ty
  | Ast.Eun (op, e) -> gen_unop env op e
  | Ast.Ebin ((Ast.Land | Ast.Lor), _, _) -> gen_bool env e
  | Ast.Ebin (op, a, b) -> gen_binop env op a b
  | Ast.Eassign (op, lv, rhs) -> gen_assign env op lv rhs
  | Ast.Eincdec (is_pre, delta, lv) -> gen_incdec env is_pre delta lv
  | Ast.Econd (c, a, b) ->
      let else_l = fresh_label env "celse" and end_l = fresh_label env "cend" in
      gen_branch env c ~jump_if:false ~target:else_l;
      let ta = gen_expr env a in
      jump env Isa.JMP end_l;
      label env else_l;
      let tb = gen_expr env b in
      label env end_l;
      join_ty ta tb
  | Ast.Ecall (f, args) -> gen_call env f args
  | Ast.Ecast (ty, e) ->
      let _ = gen_expr env e in
      (match ty with
      | Ast.Tchar -> i1 env Isa.AND (imm 0xFF) (dreg r12)
      | _ -> ());
      ty

and gen_var env name =
  match find_local env name with
  | Some { l_ty; l_is_array = false; l_offset } ->
      mov env ~sz:(access_size l_ty) (A.Sidx (A.Num (l_offset land 0xFFFF), 4)) (dreg r12);
      l_ty
  | Some { l_ty; l_is_array = true; l_offset } ->
      mov env (reg 4) (dreg r12);
      i1 env Isa.ADD (imm l_offset) (dreg r12);
      Ast.Tptr l_ty
  | None -> (
      match Hashtbl.find_opt env.fenv.globals name with
      | Some { g_ty; g_is_array = false } ->
          mov env ~sz:(access_size g_ty) (A.Sabs (A.Lab name)) (dreg r12);
          g_ty
      | Some { g_ty; g_is_array = true } ->
          mov env (A.Simm (A.Lab name)) (dreg r12);
          Ast.Tptr g_ty
      | None -> error "%s: unknown variable %s" env.fname name)

(* Address of a[i] into R12; returns the element type. *)
and gen_index_addr env arr idx =
  let aty = infer_pointer env arr in
  let pt = pointee aty in
  let esize = Ast.size_of pt in
  (match idx with
  | Ast.Enum n ->
      (* constant index: base + n*esize in one add *)
      let _ = gen_expr env arr in
      if n <> 0 then i1 env Isa.ADD (imm (n * esize)) (dreg r12)
  | _ ->
      let _ = gen_expr env arr in
      push env r12;
      let _ = gen_expr env idx in
      if esize = 2 then shl1 env;
      pop env r13;
      i1 env Isa.ADD (reg r13) (dreg r12));
  pt

(* Type of an expression used in pointer position, without emitting
   code (used to know scaling before generation). *)
and infer_pointer env e =
  match infer_ty env e with
  | Ast.Tptr _ as t -> t
  | ty -> error "%s: indexing non-pointer of type %s" env.fname
            (Format.asprintf "%a" Ast.pp_ty ty)

and infer_ty env e : Ast.ty =
  match e with
  | Ast.Enum _ | Ast.Echr _ -> Ast.Tint
  | Ast.Estr _ -> Ast.Tptr Ast.Tchar
  | Ast.Evar name -> (
      match find_local env name with
      | Some { l_ty; l_is_array = true; _ } -> Ast.Tptr l_ty
      | Some { l_ty; _ } -> l_ty
      | None -> (
          match Hashtbl.find_opt env.fenv.globals name with
          | Some { g_ty; g_is_array = true } -> Ast.Tptr g_ty
          | Some { g_ty; _ } -> g_ty
          | None -> error "%s: unknown variable %s" env.fname name))
  | Ast.Ederef e -> pointee (infer_ty env e)
  | Ast.Eindex (a, _) -> pointee (infer_ty env a)
  | Ast.Eaddr lv -> Ast.Tptr (infer_ty env lv)
  | Ast.Eun (_, _) -> Ast.Tint
  | Ast.Ebin ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Land | Ast.Lor), _, _)
    ->
      Ast.Tint
  | Ast.Ebin (_, a, b) -> join_ty (infer_ty env a) (infer_ty env b)
  | Ast.Eassign (_, lv, _) -> infer_ty env lv
  | Ast.Eincdec (_, _, lv) -> infer_ty env lv
  | Ast.Econd (_, a, b) -> join_ty (infer_ty env a) (infer_ty env b)
  | Ast.Ecall (f, _) -> (
      match Hashtbl.find_opt env.fenv.funcs f with
      | Some (ret, _) -> ret
      | None -> error "%s: unknown function %s" env.fname f)
  | Ast.Ecast (ty, _) -> ty

and gen_unop env op e =
  match op with
  | Ast.Neg ->
      let _ = gen_expr env e in
      i1 env Isa.XOR (imm 0xFFFF) (dreg r12);
      i1 env Isa.ADD (imm 1) (dreg r12);
      Ast.Tint
  | Ast.Bnot ->
      let ty = gen_expr env e in
      i1 env Isa.XOR (imm 0xFFFF) (dreg r12);
      ty
  | Ast.Lnot -> gen_bool env (Ast.Eun (Ast.Lnot, e))

(* Materialize a boolean (0/1) for logical expressions. *)
and gen_bool env e =
  let true_l = fresh_label env "bt" and end_l = fresh_label env "be" in
  gen_branch env e ~jump_if:true ~target:true_l;
  mov env (imm 0) (dreg r12);
  jump env Isa.JMP end_l;
  label env true_l;
  mov env (imm 1) (dreg r12);
  label env end_l;
  Ast.Tint

and gen_binop env op a b =
  match op with
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      gen_bool env (Ast.Ebin (op, a, b))
  | Ast.Land | Ast.Lor -> gen_bool env (Ast.Ebin (op, a, b))
  | Ast.Mul -> gen_mul env a b
  | Ast.Div | Ast.Mod -> gen_divmod env op a b
  | Ast.Shl | Ast.Shr -> gen_shift env op a b
  | Ast.Add | Ast.Sub -> gen_addsub env op a b
  | Ast.Band | Ast.Bor | Ast.Bxor ->
      let isa_op =
        match op with
        | Ast.Band -> Isa.AND
        | Ast.Bor -> Isa.BIS
        | Ast.Bxor -> Isa.XOR
        | _ -> assert false
      in
      let ta = gen_expr env a in
      push env r12;
      let tb = gen_expr env b in
      pop env r13;
      i1 env isa_op (reg r13) (dreg r12);
      join_ty ta tb

and gen_addsub env op a b =
  let scale_for ty other_r =
    match ty with
    | Ast.Tptr _ ->
        let es = elem_size ty in
        if es = 2 then i1 env Isa.ADD (reg other_r) (dreg other_r)
    | _ -> ()
  in
  match (op, b) with
  | Ast.Add, _ ->
      let ta = gen_expr env a in
      push env r12;
      let tb = gen_expr env b in
      pop env r13;
      (* scale the integer side when adding to a pointer *)
      (match (ta, tb) with
      | Ast.Tptr _, _ -> scale_for ta r12
      | _, Ast.Tptr _ -> scale_for tb r13
      | _ -> ());
      i1 env Isa.ADD (reg r13) (dreg r12);
      join_ty ta tb
  | Ast.Sub, _ ->
      let ta = gen_expr env a in
      push env r12;
      let tb = gen_expr env b in
      pop env r13;
      (match (ta, tb) with
      | Ast.Tptr _, Ast.Tptr _ ->
          (* pointer difference: subtract then divide by element size *)
          i1 env Isa.SUB (reg r12) (dreg r13);
          mov env (reg r13) (dreg r12);
          if elem_size ta = 2 then emit env (A.Instr (A.I2 (Isa.RRA, Isa.W, reg r12)))
      | Ast.Tptr _, _ ->
          scale_for ta r12;
          i1 env Isa.SUB (reg r12) (dreg r13);
          mov env (reg r13) (dreg r12)
      | _ ->
          i1 env Isa.SUB (reg r12) (dreg r13);
          mov env (reg r13) (dreg r12));
      (match (ta, tb) with
      | Ast.Tptr _, Ast.Tptr _ -> Ast.Tint
      | Ast.Tptr _, _ -> ta
      | _ -> join_ty ta tb)
  | _ -> assert false

(* Multiplication always calls the software routine, as msp430-gcc
   does on multiplierless parts at the optimization level MiBench2
   builds with; shift operators are the explicit strength-reduced
   form when the program wants one. *)
and gen_mul env a b =
  let ta = gen_expr env a in
  push env r12;
  let tb = gen_expr env b in
  pop env r13;
  call env "__mulhi";
  join_ty ta tb

and gen_divmod env op a b =
  let ta = infer_ty env a in
  let _ = gen_expr env a in
  push env r12;
  let tb = gen_expr env b in
  pop env r13;
  (* dividend must be in R12: it is currently in R13 *)
  mov env (reg r12) (dreg r14);
  mov env (reg r13) (dreg r12);
  mov env (reg r14) (dreg r13);
  let u = is_unsigned ta || is_unsigned tb in
  let fn =
    match (op, u) with
    | Ast.Div, false -> "__divhi"
    | Ast.Div, true -> "__udivhi"
    | Ast.Mod, false -> "__modhi"
    | Ast.Mod, true -> "__umodhi"
    | _ -> assert false
  in
  call env fn;
  join_ty ta tb

and gen_shift env op a b =
  let ta = infer_ty env a in
  let logical = is_unsigned ta in
  match b with
  | Ast.Enum n when n >= 0 && n <= 15 ->
      let ty = gen_expr env a in
      (match op with
      | Ast.Shl ->
          for _ = 1 to n do
            shl1 env
          done
      | Ast.Shr ->
          for _ = 1 to n do
            if logical then begin
              i1 env Isa.BIC (imm 1) (A.Dreg Isa.sr);
              emit env (A.Instr (A.I2 (Isa.RRC, Isa.W, reg r12)))
            end
            else emit env (A.Instr (A.I2 (Isa.RRA, Isa.W, reg r12)))
          done
      | _ -> assert false);
      ty
  | _ ->
      let _ = gen_expr env a in
      push env r12;
      let _ = gen_expr env b in
      pop env r13;
      (* value in R13, count in R12: swap *)
      mov env (reg r12) (dreg r14);
      mov env (reg r13) (dreg r12);
      mov env (reg r14) (dreg r13);
      let fn =
        match op with
        | Ast.Shl -> "__ashlhi"
        | Ast.Shr -> if logical then "__lshrhi" else "__ashrhi"
        | _ -> assert false
      in
      call env fn;
      ta

(* Address of an lvalue into R12; returns (type at that address, simple
   direct-operand when available for peephole use). *)
and gen_lvalue_addr env lv : Ast.ty * unit =
  match lv with
  | Ast.Evar name -> (
      match find_local env name with
      | Some { l_ty; l_is_array = false; l_offset } ->
          mov env (reg 4) (dreg r12);
          i1 env Isa.ADD (imm l_offset) (dreg r12);
          (l_ty, ())
      | Some { l_is_array = true; _ } ->
          error "%s: array %s is not assignable" env.fname name
      | None -> (
          match Hashtbl.find_opt env.fenv.globals name with
          | Some { g_ty; g_is_array = false } ->
              mov env (A.Simm (A.Lab name)) (dreg r12);
              (g_ty, ())
          | Some { g_is_array = true; _ } ->
              error "%s: array %s is not assignable" env.fname name
          | None -> error "%s: unknown variable %s" env.fname name))
  | Ast.Ederef e ->
      let ty = gen_expr env e in
      (pointee ty, ())
  | Ast.Eindex (arr, idx) ->
      let pt = gen_index_addr env arr idx in
      (pt, ())
  | _ -> error "%s: expression is not an lvalue" env.fname

(* Direct destination operand for simple variables; avoids going
   through an address register for the common cases. *)
and simple_lvalue env lv =
  match lv with
  | Ast.Evar name -> (
      match find_local env name with
      | Some { l_ty; l_is_array = false; l_offset } ->
          Some (l_ty, A.Didx (A.Num (l_offset land 0xFFFF), 4),
                A.Sidx (A.Num (l_offset land 0xFFFF), 4))
      | Some _ -> None
      | None -> (
          match Hashtbl.find_opt env.fenv.globals name with
          | Some { g_ty; g_is_array = false } ->
              Some (g_ty, A.Dabs (A.Lab name), A.Sabs (A.Lab name))
          | Some _ -> None
          | None -> error "%s: unknown variable %s" env.fname name))
  | _ -> None

and gen_assign env op lv rhs =
  match simple_lvalue env lv with
  | Some (ty, dst_op, src_op) -> (
      match op with
      | None ->
          let _ = gen_expr env rhs in
          mov env ~sz:(access_size ty) (reg r12) dst_op;
          ty
      | Some bop ->
          (* x op= rhs  ==>  x = x op rhs, evaluated via R12 *)
          let _ = gen_expr env (Ast.Ebin (bop, lv, rhs)) in
          mov env ~sz:(access_size ty) (reg r12) dst_op;
          ignore src_op;
          ty)
  | None -> (
      match op with
      | None ->
          let ty, () = gen_lvalue_addr env lv in
          push env r12;
          let _ = gen_expr env rhs in
          pop env r13;
          mov env ~sz:(access_size ty) (reg r12) (A.Didx (A.Num 0, r13));
          ty
      | Some bop ->
          let ty, () = gen_lvalue_addr env lv in
          push env r12;
          let _ = gen_expr env rhs in
          pop env r15;
          (* old value -> R13, keep address safe across helper calls *)
          mov env ~sz:(access_size ty) (A.Sind r15) (dreg r13);
          push env r15;
          gen_binop_in_regs env bop ~ty;
          pop env r13;
          mov env ~sz:(access_size ty) (reg r12) (A.Didx (A.Num 0, r13));
          ty)

(* lhs in R13, rhs in R12 -> result in R12 (used by compound assign) *)
and gen_binop_in_regs env bop ~ty =
  match bop with
  | Ast.Add -> i1 env Isa.ADD (reg r13) (dreg r12)
  | Ast.Band -> i1 env Isa.AND (reg r13) (dreg r12)
  | Ast.Bor -> i1 env Isa.BIS (reg r13) (dreg r12)
  | Ast.Bxor -> i1 env Isa.XOR (reg r13) (dreg r12)
  | Ast.Sub ->
      i1 env Isa.SUB (reg r12) (dreg r13);
      mov env (reg r13) (dreg r12)
  | Ast.Mul -> call env "__mulhi"
  | Ast.Div | Ast.Mod ->
      mov env (reg r12) (dreg r14);
      mov env (reg r13) (dreg r12);
      mov env (reg r14) (dreg r13);
      let u = is_unsigned ty in
      call env
        (match (bop, u) with
        | Ast.Div, false -> "__divhi"
        | Ast.Div, true -> "__udivhi"
        | Ast.Mod, false -> "__modhi"
        | Ast.Mod, true -> "__umodhi"
        | _ -> assert false)
  | Ast.Shl | Ast.Shr ->
      mov env (reg r12) (dreg r14);
      mov env (reg r13) (dreg r12);
      mov env (reg r14) (dreg r13);
      call env
        (match bop with
        | Ast.Shl -> "__ashlhi"
        | Ast.Shr -> if is_unsigned ty then "__lshrhi" else "__ashrhi"
        | _ -> assert false)
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Land | Ast.Lor ->
      error "%s: comparison in compound assignment" env.fname

and gen_incdec env is_pre delta lv =
  match simple_lvalue env lv with
  | Some (ty, dst_op, src_op) ->
      let sz = access_size ty in
      let step =
        match ty with Ast.Tptr t -> delta * Ast.size_of t | _ -> delta
      in
      if is_pre then begin
        i1 env Isa.ADD ~sz (imm step) dst_op;
        mov env ~sz src_op (dreg r12)
      end
      else begin
        mov env ~sz src_op (dreg r12);
        i1 env Isa.ADD ~sz (imm step) dst_op
      end;
      ty
  | None ->
      let ty, () = gen_lvalue_addr env lv in
      let sz = access_size ty in
      let step =
        match ty with Ast.Tptr t -> delta * Ast.size_of t | _ -> delta
      in
      mov env (reg r12) (dreg r13);
      if is_pre then begin
        i1 env Isa.ADD ~sz (imm step) (A.Didx (A.Num 0, r13));
        mov env ~sz (A.Sind r13) (dreg r12)
      end
      else begin
        mov env ~sz (A.Sind r13) (dreg r12);
        i1 env Isa.ADD ~sz (imm step) (A.Didx (A.Num 0, r13))
      end;
      ty

and gen_call env f args =
  let ret, param_tys =
    match Hashtbl.find_opt env.fenv.funcs f with
    | Some info -> info
    | None -> error "%s: call to unknown function %s" env.fname f
  in
  let nargs = List.length args in
  if nargs <> List.length param_tys then
    error "%s: %s expects %d arguments, got %d" env.fname f
      (List.length param_tys) nargs;
  if nargs > 4 then error "%s: %s: more than 4 arguments unsupported" env.fname f;
  (match args with
  | [] -> ()
  | [ single ] -> ignore (gen_expr env single)
  | several ->
      List.iter
        (fun arg ->
          let _ = gen_expr env arg in
          push env r12)
        several;
      (* pop into R12+n-1 .. R12 *)
      for i = nargs - 1 downto 0 do
        pop env (r12 + i)
      done);
  call env f;
  ret

(* Branch to [target] when the truth value of [e] equals [jump_if]. *)
and gen_branch env e ~jump_if ~target =
  match e with
  | Ast.Enum 0 -> if not jump_if then jump env Isa.JMP target
  | Ast.Enum _ -> if jump_if then jump env Isa.JMP target
  | Ast.Eun (Ast.Lnot, inner) ->
      gen_branch env inner ~jump_if:(not jump_if) ~target
  | Ast.Ebin (Ast.Land, a, b) ->
      if not jump_if then begin
        gen_branch env a ~jump_if:false ~target;
        gen_branch env b ~jump_if:false ~target
      end
      else begin
        let skip = fresh_label env "and" in
        gen_branch env a ~jump_if:false ~target:skip;
        gen_branch env b ~jump_if:true ~target;
        label env skip
      end
  | Ast.Ebin (Ast.Lor, a, b) ->
      if jump_if then begin
        gen_branch env a ~jump_if:true ~target;
        gen_branch env b ~jump_if:true ~target
      end
      else begin
        let skip = fresh_label env "or" in
        gen_branch env a ~jump_if:true ~target:skip;
        gen_branch env b ~jump_if:false ~target;
        label env skip
      end
  | Ast.Ebin ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op, a, b)
    ->
      gen_compare_branch env op a b ~jump_if ~target
  | _ ->
      let _ = gen_expr env e in
      i1 env Isa.CMP (imm 0) (dreg r12);
      jump env (if jump_if then Isa.JNE else Isa.JEQ) target

(* Compile a comparison directly into CMP + conditional jump. *)
and gen_compare_branch env op a b ~jump_if ~target =
  let ta = infer_ty env a and tb = infer_ty env b in
  let unsigned = is_unsigned ta || is_unsigned tb in
  (* After CMP src, dst the flags reflect dst - src. We arrange
     dst = lhs, src = rhs ("normal") or the reverse for Gt/Le. *)
  let emit_cmp_normal () =
    let _ = gen_expr env a in
    push env r12;
    let _ = gen_expr env b in
    pop env r13;
    i1 env Isa.CMP (reg r12) (dreg r13)
  in
  let emit_cmp_reversed () =
    let _ = gen_expr env a in
    push env r12;
    let _ = gen_expr env b in
    pop env r13;
    i1 env Isa.CMP (reg r13) (dreg r12)
  in
  let jcc_normal cond = (* flags = lhs - rhs *)
    match (cond, unsigned) with
    | `Eq, _ -> Isa.JEQ
    | `Ne, _ -> Isa.JNE
    | `Lt, false -> Isa.JL
    | `Lt, true -> Isa.JNC
    | `Ge, false -> Isa.JGE
    | `Ge, true -> Isa.JC
  in
  match op with
  | Ast.Eq ->
      emit_cmp_normal ();
      jump env (if jump_if then Isa.JEQ else Isa.JNE) target
  | Ast.Ne ->
      emit_cmp_normal ();
      jump env (if jump_if then Isa.JNE else Isa.JEQ) target
  | Ast.Lt ->
      emit_cmp_normal ();
      jump env (jcc_normal (if jump_if then `Lt else `Ge)) target
  | Ast.Ge ->
      emit_cmp_normal ();
      jump env (jcc_normal (if jump_if then `Ge else `Lt)) target
  | Ast.Gt ->
      (* lhs > rhs  <=>  rhs < lhs: reverse operands *)
      emit_cmp_reversed ();
      jump env (jcc_normal (if jump_if then `Lt else `Ge)) target
  | Ast.Le ->
      emit_cmp_reversed ();
      jump env (jcc_normal (if jump_if then `Ge else `Lt)) target
  | _ -> assert false

(* --- Statements ------------------------------------------------------ *)

let rec gen_stmt env s =
  match s with
  | Ast.Sexpr e -> ignore (gen_expr env e)
  | Ast.Sblock ss ->
      push_scope env;
      List.iter (gen_stmt env) ss;
      pop_scope env
  | Ast.Sdecl (ty, name, len, init) -> (
      match len with
      | None ->
          let info = declare_local env ty name ~is_array:false ~bytes:(Ast.size_of ty) in
          (match init with
          | Some e ->
              let _ = gen_expr env e in
              mov env ~sz:(access_size ty) (reg r12)
                (A.Didx (A.Num (info.l_offset land 0xFFFF), 4))
          | None -> ())
      | Some n ->
          if init <> None then
            error "%s: local array initializers unsupported" env.fname;
          ignore (declare_local env ty name ~is_array:true ~bytes:(n * Ast.size_of ty)))
  | Ast.Sif (c, then_, else_) ->
      let else_l = fresh_label env "else" and end_l = fresh_label env "fi" in
      if else_ = [] then begin
        gen_branch env c ~jump_if:false ~target:end_l;
        push_scope env;
        List.iter (gen_stmt env) then_;
        pop_scope env;
        label env end_l
      end
      else begin
        gen_branch env c ~jump_if:false ~target:else_l;
        push_scope env;
        List.iter (gen_stmt env) then_;
        pop_scope env;
        jump env Isa.JMP end_l;
        label env else_l;
        push_scope env;
        List.iter (gen_stmt env) else_;
        pop_scope env;
        label env end_l
      end
  | Ast.Swhile (c, body) ->
      let top = fresh_label env "wtop" and end_l = fresh_label env "wend" in
      label env top;
      gen_branch env c ~jump_if:false ~target:end_l;
      env.break_labels <- end_l :: env.break_labels;
      env.continue_labels <- top :: env.continue_labels;
      push_scope env;
      List.iter (gen_stmt env) body;
      pop_scope env;
      env.break_labels <- List.tl env.break_labels;
      env.continue_labels <- List.tl env.continue_labels;
      jump env Isa.JMP top;
      label env end_l
  | Ast.Sdowhile (body, c) ->
      let top = fresh_label env "dtop"
      and check = fresh_label env "dchk"
      and end_l = fresh_label env "dend" in
      label env top;
      env.break_labels <- end_l :: env.break_labels;
      env.continue_labels <- check :: env.continue_labels;
      push_scope env;
      List.iter (gen_stmt env) body;
      pop_scope env;
      env.break_labels <- List.tl env.break_labels;
      env.continue_labels <- List.tl env.continue_labels;
      label env check;
      gen_branch env c ~jump_if:true ~target:top;
      label env end_l
  | Ast.Sfor (init, cond, step, body) ->
      push_scope env;
      Option.iter (gen_stmt env) init;
      let top = fresh_label env "ftop"
      and cont = fresh_label env "fstep"
      and end_l = fresh_label env "fend" in
      label env top;
      (match cond with
      | Some c -> gen_branch env c ~jump_if:false ~target:end_l
      | None -> ());
      env.break_labels <- end_l :: env.break_labels;
      env.continue_labels <- cont :: env.continue_labels;
      push_scope env;
      List.iter (gen_stmt env) body;
      pop_scope env;
      env.break_labels <- List.tl env.break_labels;
      env.continue_labels <- List.tl env.continue_labels;
      label env cont;
      (match step with Some e -> ignore (gen_expr env e) | None -> ());
      jump env Isa.JMP top;
      label env end_l;
      pop_scope env
  | Ast.Sswitch (scrutinee, cases, default) ->
      let end_l = fresh_label env "swend" in
      let _ = gen_expr env scrutinee in
      let case_labels =
        List.mapi (fun i _ -> fresh_label env (Printf.sprintf "case%d_" i)) cases
      in
      List.iteri
        (fun i (values, _) ->
          List.iter
            (fun v ->
              i1 env Isa.CMP (imm v) (dreg r12);
              jump env Isa.JEQ (List.nth case_labels i))
            values)
        cases;
      let default_l =
        match default with Some _ -> fresh_label env "swdef" | None -> end_l
      in
      jump env Isa.JMP default_l;
      env.break_labels <- end_l :: env.break_labels;
      List.iteri
        (fun i (_, body) ->
          label env (List.nth case_labels i);
          push_scope env;
          List.iter (gen_stmt env) body;
          pop_scope env)
        cases;
      (match default with
      | Some body ->
          label env default_l;
          push_scope env;
          List.iter (gen_stmt env) body;
          pop_scope env
      | None -> ());
      env.break_labels <- List.tl env.break_labels;
      label env end_l
  | Ast.Sreturn e ->
      (match e with Some e -> ignore (gen_expr env e) | None -> ());
      jump env Isa.JMP env.epilogue
  | Ast.Sbreak -> (
      match env.break_labels with
      | l :: _ -> jump env Isa.JMP l
      | [] -> error "%s: break outside loop/switch" env.fname)
  | Ast.Scontinue -> (
      match env.continue_labels with
      | l :: _ -> jump env Isa.JMP l
      | [] -> error "%s: continue outside loop" env.fname)

(* --- Frame size pre-scan ---------------------------------------------- *)

let rec frame_bytes_of_stmts stmts =
  List.fold_left (fun acc s -> acc + frame_bytes_of_stmt s) 0 stmts

and frame_bytes_of_stmt = function
  | Ast.Sdecl (ty, _, None, _) -> (Ast.size_of ty + 1) land lnot 1
  | Ast.Sdecl (ty, _, Some n, _) -> ((n * Ast.size_of ty) + 1) land lnot 1
  | Ast.Sblock ss | Ast.Swhile (_, ss) | Ast.Sdowhile (ss, _) ->
      frame_bytes_of_stmts ss
  | Ast.Sif (_, a, b) -> frame_bytes_of_stmts a + frame_bytes_of_stmts b
  | Ast.Sfor (init, _, _, body) ->
      (match init with Some s -> frame_bytes_of_stmt s | None -> 0)
      + frame_bytes_of_stmts body
  | Ast.Sswitch (_, cases, default) ->
      List.fold_left (fun acc (_, ss) -> acc + frame_bytes_of_stmts ss) 0 cases
      + (match default with Some ss -> frame_bytes_of_stmts ss | None -> 0)
  | Ast.Sexpr _ | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue -> 0

(* --- Functions and globals -------------------------------------------- *)

let gen_function fenv (f : Ast.func) =
  if List.length f.Ast.fparams > 4 then
    error "%s: more than 4 parameters unsupported" f.Ast.fname;
  let param_bytes =
    List.fold_left (fun acc (ty, _) -> acc + ((Ast.size_of ty + 1) land lnot 1)) 0
      f.Ast.fparams
  in
  let frame = frame_bytes_of_stmts f.Ast.fbody + param_bytes in
  let env =
    {
      fenv;
      scopes = [];
      next_offset = 0;
      label_count = 0;
      fname = f.Ast.fname;
      out = [];
      break_labels = [];
      continue_labels = [];
      epilogue = f.Ast.fname ^ "$ret";
    }
  in
  push_scope env;
  (* prologue *)
  push env 4;
  mov env (reg Isa.sp) (A.Dreg 4);
  if frame > 0 then i1 env Isa.SUB (imm frame) (A.Dreg Isa.sp);
  (* spill parameters into their slots *)
  List.iteri
    (fun i (ty, name) ->
      let info = declare_local env ty name ~is_array:false ~bytes:(Ast.size_of ty) in
      mov env ~sz:(access_size ty) (reg (r12 + i))
        (A.Didx (A.Num (info.l_offset land 0xFFFF), 4)))
    f.Ast.fparams;
  List.iter (gen_stmt env) f.Ast.fbody;
  (* epilogue *)
  label env env.epilogue;
  mov env (reg 4) (A.Dreg Isa.sp);
  pop env 4;
  emit env (A.Instr A.Ret);
  pop_scope env;
  A.item f.Ast.fname (List.rev env.out)

let gen_global (g : Ast.global) extra_items =
  let stmts =
    match (g.Ast.gty, g.Ast.glen, g.Ast.ginit) with
    | ty, None, init ->
        let v = match init with Some (Ast.Ival v) -> v | _ -> 0 in
        if Ast.size_of ty = 1 then [ A.Byte (v land 0xFF); A.Align 2 ]
        else [ A.Word (A.Num (v land 0xFFFF)) ]
    | ty, Some n, init -> (
        let esize = Ast.size_of ty in
        match init with
        | None -> [ A.Space (((n * esize) + 1) land lnot 1) ]
        | Some (Ast.Iarr values) ->
            let padded =
              values @ List.init (max 0 (n - List.length values)) (fun _ -> 0)
            in
            if esize = 1 then
              List.map (fun v -> A.Byte (v land 0xFF)) padded @ [ A.Align 2 ]
            else List.map (fun v -> A.Word (A.Num (v land 0xFFFF))) padded
        | Some (Ast.Istr s) ->
            let bytes = List.init n (fun i ->
                if i < String.length s then Char.code s.[i] else 0)
            in
            List.map (fun v -> A.Byte v) bytes @ [ A.Align 2 ]
        | Some (Ast.Ival _) -> error "scalar initializer for array %s" g.Ast.gname)
  in
  (* pointer globals initialized with a string: point at interned data *)
  match (g.Ast.gty, g.Ast.ginit) with
  | Ast.Tptr Ast.Tchar, Some (Ast.Istr s) when g.Ast.glen = None ->
      let data_label = g.Ast.gname ^ "$lit" in
      extra_items :=
        A.item ~section:A.Data data_label
          [ A.Ascii s; A.Byte 0; A.Align 2 ]
        :: !extra_items;
      A.item ~section:A.Data g.Ast.gname [ A.Word (A.Lab data_label) ]
  | _ -> A.item ~section:A.Data g.Ast.gname stmts

(* Functions provided by the assembly support library. *)
let library_signatures =
  [
    ("__mulhi", (Ast.Tint, [ Ast.Tint; Ast.Tint ]));
    ("__divhi", (Ast.Tint, [ Ast.Tint; Ast.Tint ]));
    ("__modhi", (Ast.Tint, [ Ast.Tint; Ast.Tint ]));
    ("__udivhi", (Ast.Tuint, [ Ast.Tuint; Ast.Tuint ]));
    ("__umodhi", (Ast.Tuint, [ Ast.Tuint; Ast.Tuint ]));
    ("__ashlhi", (Ast.Tint, [ Ast.Tint; Ast.Tint ]));
    ("__ashrhi", (Ast.Tint, [ Ast.Tint; Ast.Tint ]));
    ("__lshrhi", (Ast.Tuint, [ Ast.Tuint; Ast.Tuint ]));
    (* software binary32 helpers (hi/lo word pairs); the low result
       word is fetched with f_lo *)
    ("f_mul2", (Ast.Tint, [ Ast.Tint; Ast.Tint; Ast.Tint; Ast.Tint ]));
    ("f_add2", (Ast.Tint, [ Ast.Tint; Ast.Tint; Ast.Tint; Ast.Tint ]));
    ("f_sub2", (Ast.Tint, [ Ast.Tint; Ast.Tint; Ast.Tint; Ast.Tint ]));
    ("f_lo", (Ast.Tint, []));
    (* pseudo-functions provided by the platform support code *)
    ("putchar", (Ast.Tvoid, [ Ast.Tint ]));
    ("halt", (Ast.Tvoid, []));
  ]

let compile (program : Ast.program) : A.program =
  let fenv =
    {
      globals = Hashtbl.create 32;
      funcs = Hashtbl.create 32;
      strings = Hashtbl.create 16;
      string_count = 0;
    }
  in
  List.iter
    (fun (name, sg) -> Hashtbl.replace fenv.funcs name sg)
    library_signatures;
  List.iter
    (function
      | Ast.Dfun f ->
          if Hashtbl.mem fenv.funcs f.Ast.fname then
            error "duplicate function %s" f.Ast.fname;
          Hashtbl.replace fenv.funcs f.Ast.fname
            (f.Ast.freturn, List.map fst f.Ast.fparams)
      | Ast.Dglobal g ->
          if Hashtbl.mem fenv.globals g.Ast.gname then
            error "duplicate global %s" g.Ast.gname;
          Hashtbl.replace fenv.globals g.Ast.gname
            { g_ty = g.Ast.gty; g_is_array = g.Ast.glen <> None })
    program;
  let extra_items = ref [] in
  let func_items = List.map (gen_function fenv) (Ast.functions program) in
  let global_items =
    List.map (fun g -> gen_global g extra_items) (Ast.globals program)
  in
  let string_items =
    Hashtbl.fold
      (fun s lbl acc ->
        A.item ~section:A.Data lbl [ A.Ascii s; A.Byte 0; A.Align 2 ] :: acc)
      fenv.strings []
  in
  func_items @ global_items @ !extra_items @ string_items

let compile_source source = compile (Parser.parse source)
