(** Front-end driver: compile mini-C source text into a complete
    assembly program — application items, the needed support-library
    routines, and the startup stub. *)

val entry_name : string
(** Symbol to start execution at ("_start"). The loader initialises
    SP (it depends on the memory configuration); the stub calls main
    and halts. *)

val start_item : Masm.Ast.item

val program_of_source : ?through_disasm:bool -> string -> Masm.Ast.program
(** Compile [source]. With [through_disasm] the support-library
    routines take the paper's §4 workflow: assembled separately,
    disassembled, and the recovered assembly reintegrated — exercising
    the objdump-based library-instrumentation path. *)
