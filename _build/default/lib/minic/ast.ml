(* Abstract syntax for mini-C, the C subset the benchmarks are written
   in. The language covers what MCU-scale embedded C needs: 16-bit
   signed/unsigned ints, 8-bit chars, pointers, one-dimensional arrays,
   functions (up to four register arguments, matching the MSP430 ABI),
   and the full statement repertoire including switch (the paper's
   bitcount benchmark replaces its jump table with a switch, §4). *)

type ty =
  | Tint (* 16-bit signed *)
  | Tuint (* 16-bit unsigned *)
  | Tchar (* 8-bit unsigned *)
  | Tvoid
  | Tptr of ty

let rec pp_ty fmt = function
  | Tint -> Format.pp_print_string fmt "int"
  | Tuint -> Format.pp_print_string fmt "unsigned"
  | Tchar -> Format.pp_print_string fmt "char"
  | Tvoid -> Format.pp_print_string fmt "void"
  | Tptr t -> Format.fprintf fmt "%a*" pp_ty t

let size_of = function
  | Tchar -> 1
  | Tint | Tuint | Tptr _ -> 2
  | Tvoid -> invalid_arg "size_of void"

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Land
  | Lor

type unop = Neg | Bnot | Lnot

type expr =
  | Enum of int
  | Echr of char
  | Estr of string (* string literal: pointer to static data *)
  | Evar of string
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Eassign of binop option * expr * expr (* lvalue op= expr *)
  | Ecall of string * expr list
  | Eindex of expr * expr (* a[i] *)
  | Ederef of expr
  | Eaddr of expr
  | Eincdec of bool * int * expr (* is_pre, +1/-1, lvalue *)
  | Econd of expr * expr * expr (* c ? a : b *)
  | Ecast of ty * expr

type stmt =
  | Sexpr of expr
  | Sdecl of ty * string * int option * expr option
    (* type, name, array length, initializer *)
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sdowhile of stmt list * expr
  | Sfor of stmt option * expr option * expr option * stmt list
  | Sswitch of expr * (int list * stmt list) list * stmt list option
    (* cases (values, body with fallthrough), default *)
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list

type func = {
  fname : string;
  freturn : ty;
  fparams : (ty * string) list;
  fbody : stmt list;
}

type init = Ival of int | Iarr of int list | Istr of string

type global = {
  gname : string;
  gty : ty;
  glen : int option; (* array length *)
  ginit : init option;
}

type decl = Dfun of func | Dglobal of global

type program = decl list

let functions program =
  List.filter_map (function Dfun f -> Some f | Dglobal _ -> None) program

let globals program =
  List.filter_map (function Dglobal g -> Some g | Dfun _ -> None) program
