lib/minic/lexer.ml: Array Buffer Format List Printf String
