lib/minic/interp.ml: Ast Buffer Bytes Char Format Hashtbl List Option Parser String
