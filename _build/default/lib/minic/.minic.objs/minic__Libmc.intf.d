lib/minic/libmc.mli: Masm
