lib/minic/parser.ml: Ast Char Format Lexer List Printf String
