lib/minic/libmc.ml: Hashtbl List Masm Msp430
