lib/minic/codegen.mli: Ast Masm
