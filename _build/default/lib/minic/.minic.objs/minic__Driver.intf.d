lib/minic/driver.mli: Masm
