lib/minic/ast.ml: Format List
