lib/minic/interp.mli: Ast
