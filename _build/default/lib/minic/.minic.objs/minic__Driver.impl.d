lib/minic/driver.ml: Codegen Libmc List Masm Msp430
