lib/minic/codegen.ml: Ast Char Format Hashtbl List Masm Msp430 Option Parser Printf String
