(* Recursive-descent parser for mini-C with precedence climbing. *)

exception Error of string

let error lx fmt =
  Format.kasprintf
    (fun s -> raise (Error (Printf.sprintf "line %d: %s" (Lexer.line lx) s)))
    fmt

(* --- Types ---------------------------------------------------------- *)

let is_type_start = function
  | Lexer.Tkw ("int" | "unsigned" | "char" | "void") -> true
  | _ -> false

let parse_base_type lx =
  match Lexer.next lx with
  | Lexer.Tkw "int" -> Ast.Tint
  | Lexer.Tkw "unsigned" ->
      (* allow "unsigned int" and "unsigned char" *)
      (match Lexer.peek lx with
      | Lexer.Tkw "int" ->
          Lexer.advance lx;
          Ast.Tuint
      | Lexer.Tkw "char" ->
          Lexer.advance lx;
          Ast.Tchar
      | _ -> Ast.Tuint)
  | Lexer.Tkw "char" -> Ast.Tchar
  | Lexer.Tkw "void" -> Ast.Tvoid
  | t -> error lx "expected type, found %s" (Lexer.describe t)

let parse_type lx =
  let base = parse_base_type lx in
  let rec stars ty = if Lexer.accept_punct lx "*" then stars (Ast.Tptr ty) else ty in
  stars base

(* --- Expressions ---------------------------------------------------- *)

let assign_ops =
  [
    ("=", None);
    ("+=", Some Ast.Add);
    ("-=", Some Ast.Sub);
    ("*=", Some Ast.Mul);
    ("/=", Some Ast.Div);
    ("%=", Some Ast.Mod);
    ("&=", Some Ast.Band);
    ("|=", Some Ast.Bor);
    ("^=", Some Ast.Bxor);
    ("<<=", Some Ast.Shl);
    (">>=", Some Ast.Shr);
  ]

(* binary operators by precedence level, low to high *)
let binop_levels =
  [
    [ ("||", Ast.Lor) ];
    [ ("&&", Ast.Land) ];
    [ ("|", Ast.Bor) ];
    [ ("^", Ast.Bxor) ];
    [ ("&", Ast.Band) ];
    [ ("==", Ast.Eq); ("!=", Ast.Ne) ];
    [ ("<=", Ast.Le); (">=", Ast.Ge); ("<", Ast.Lt); (">", Ast.Gt) ];
    [ ("<<", Ast.Shl); (">>", Ast.Shr) ];
    [ ("+", Ast.Add); ("-", Ast.Sub) ];
    [ ("*", Ast.Mul); ("/", Ast.Div); ("%", Ast.Mod) ];
  ]

let rec parse_expr lx = parse_assign lx

and parse_assign lx =
  let lhs = parse_ternary lx in
  let rec find = function
    | [] -> None
    | (p, op) :: rest ->
        if Lexer.peek lx = Lexer.Tpunct p then Some (p, op) else find rest
  in
  match find assign_ops with
  | Some (_, op) ->
      Lexer.advance lx;
      let rhs = parse_assign lx in
      Ast.Eassign (op, lhs, rhs)
  | None -> lhs

and parse_ternary lx =
  let c = parse_binary lx 0 in
  if Lexer.accept_punct lx "?" then begin
    let a = parse_expr lx in
    Lexer.expect_punct lx ":";
    let b = parse_ternary lx in
    Ast.Econd (c, a, b)
  end
  else c

and parse_binary lx level =
  if level >= List.length binop_levels then parse_unary lx
  else begin
    let ops = List.nth binop_levels level in
    let lhs = ref (parse_binary lx (level + 1)) in
    let rec loop () =
      match
        List.find_opt (fun (p, _) -> Lexer.peek lx = Lexer.Tpunct p) ops
      with
      | Some (p, op) ->
          Lexer.advance lx;
          ignore p;
          let rhs = parse_binary lx (level + 1) in
          lhs := Ast.Ebin (op, !lhs, rhs);
          loop ()
      | None -> ()
    in
    loop ();
    !lhs
  end

and parse_unary lx =
  match Lexer.peek lx with
  | Lexer.Tpunct "-" ->
      Lexer.advance lx;
      Ast.Eun (Ast.Neg, parse_unary lx)
  | Lexer.Tpunct "~" ->
      Lexer.advance lx;
      Ast.Eun (Ast.Bnot, parse_unary lx)
  | Lexer.Tpunct "!" ->
      Lexer.advance lx;
      Ast.Eun (Ast.Lnot, parse_unary lx)
  | Lexer.Tpunct "*" ->
      Lexer.advance lx;
      Ast.Ederef (parse_unary lx)
  | Lexer.Tpunct "&" ->
      Lexer.advance lx;
      Ast.Eaddr (parse_unary lx)
  | Lexer.Tpunct "++" ->
      Lexer.advance lx;
      Ast.Eincdec (true, 1, parse_unary lx)
  | Lexer.Tpunct "--" ->
      Lexer.advance lx;
      Ast.Eincdec (true, -1, parse_unary lx)
  | Lexer.Tpunct "(" when is_type_start (Lexer.peek2 lx) ->
      Lexer.advance lx;
      let ty = parse_type lx in
      Lexer.expect_punct lx ")";
      Ast.Ecast (ty, parse_unary lx)
  | _ -> parse_postfix lx

and parse_postfix lx =
  let e = ref (parse_primary lx) in
  let rec loop () =
    match Lexer.peek lx with
    | Lexer.Tpunct "[" ->
        Lexer.advance lx;
        let i = parse_expr lx in
        Lexer.expect_punct lx "]";
        e := Ast.Eindex (!e, i);
        loop ()
    | Lexer.Tpunct "++" ->
        Lexer.advance lx;
        e := Ast.Eincdec (false, 1, !e);
        loop ()
    | Lexer.Tpunct "--" ->
        Lexer.advance lx;
        e := Ast.Eincdec (false, -1, !e);
        loop ()
    | _ -> ()
  in
  loop ();
  !e

and parse_primary lx =
  match Lexer.next lx with
  | Lexer.Tnum n -> Ast.Enum n
  | Lexer.Tchar_lit c -> Ast.Echr c
  | Lexer.Tstring s -> Ast.Estr s
  | Lexer.Tident name ->
      if Lexer.accept_punct lx "(" then begin
        let args = ref [] in
        if not (Lexer.accept_punct lx ")") then begin
          let rec more () =
            args := parse_expr lx :: !args;
            if Lexer.accept_punct lx "," then more ()
            else Lexer.expect_punct lx ")"
          in
          more ()
        end;
        Ast.Ecall (name, List.rev !args)
      end
      else Ast.Evar name
  | Lexer.Tpunct "(" ->
      let e = parse_expr lx in
      Lexer.expect_punct lx ")";
      e
  | t -> error lx "unexpected token %s in expression" (Lexer.describe t)

(* --- Constant expressions ------------------------------------------- *)

let rec const_eval = function
  | Ast.Enum n -> n
  | Ast.Echr c -> Char.code c
  | Ast.Eun (Ast.Neg, e) -> -const_eval e
  | Ast.Eun (Ast.Bnot, e) -> lnot (const_eval e) land 0xFFFF
  | Ast.Ebin (op, a, b) -> (
      let a = const_eval a and b = const_eval b in
      match op with
      | Ast.Add -> a + b
      | Ast.Sub -> a - b
      | Ast.Mul -> a * b
      | Ast.Div -> a / b
      | Ast.Mod -> a mod b
      | Ast.Band -> a land b
      | Ast.Bor -> a lor b
      | Ast.Bxor -> a lxor b
      | Ast.Shl -> a lsl b
      | Ast.Shr -> a lsr b
      | _ -> raise (Error "non-arithmetic operator in constant expression"))
  | _ -> raise (Error "expected constant expression")

(* --- Statements ----------------------------------------------------- *)

let rec parse_stmt lx =
  match Lexer.peek lx with
  | Lexer.Tpunct "{" -> Ast.Sblock (parse_block lx)
  | Lexer.Tkw "if" ->
      Lexer.advance lx;
      Lexer.expect_punct lx "(";
      let c = parse_expr lx in
      Lexer.expect_punct lx ")";
      let then_ = parse_stmt_as_block lx in
      let else_ =
        if Lexer.peek lx = Lexer.Tkw "else" then begin
          Lexer.advance lx;
          parse_stmt_as_block lx
        end
        else []
      in
      Ast.Sif (c, then_, else_)
  | Lexer.Tkw "while" ->
      Lexer.advance lx;
      Lexer.expect_punct lx "(";
      let c = parse_expr lx in
      Lexer.expect_punct lx ")";
      Ast.Swhile (c, parse_stmt_as_block lx)
  | Lexer.Tkw "do" ->
      Lexer.advance lx;
      let body = parse_stmt_as_block lx in
      Lexer.expect lx (Lexer.Tkw "while");
      Lexer.expect_punct lx "(";
      let c = parse_expr lx in
      Lexer.expect_punct lx ")";
      Lexer.expect_punct lx ";";
      Ast.Sdowhile (body, c)
  | Lexer.Tkw "for" ->
      Lexer.advance lx;
      Lexer.expect_punct lx "(";
      let init =
        if Lexer.accept_punct lx ";" then None
        else begin
          let s =
            if is_type_start (Lexer.peek lx) then parse_local_decl lx
            else Ast.Sexpr (parse_expr lx)
          in
          Lexer.expect_punct lx ";";
          Some s
        end
      in
      let cond =
        if Lexer.peek lx = Lexer.Tpunct ";" then None else Some (parse_expr lx)
      in
      Lexer.expect_punct lx ";";
      let step =
        if Lexer.peek lx = Lexer.Tpunct ")" then None else Some (parse_expr lx)
      in
      Lexer.expect_punct lx ")";
      Ast.Sfor (init, cond, step, parse_stmt_as_block lx)
  | Lexer.Tkw "switch" -> parse_switch lx
  | Lexer.Tkw "return" ->
      Lexer.advance lx;
      if Lexer.accept_punct lx ";" then Ast.Sreturn None
      else begin
        let e = parse_expr lx in
        Lexer.expect_punct lx ";";
        Ast.Sreturn (Some e)
      end
  | Lexer.Tkw "break" ->
      Lexer.advance lx;
      Lexer.expect_punct lx ";";
      Ast.Sbreak
  | Lexer.Tkw "continue" ->
      Lexer.advance lx;
      Lexer.expect_punct lx ";";
      Ast.Scontinue
  | t when is_type_start t ->
      let s = parse_local_decl lx in
      Lexer.expect_punct lx ";";
      s
  | _ ->
      let e = parse_expr lx in
      Lexer.expect_punct lx ";";
      Ast.Sexpr e

and parse_stmt_as_block lx =
  match parse_stmt lx with Ast.Sblock ss -> ss | s -> [ s ]

and parse_block lx =
  Lexer.expect_punct lx "{";
  let rec loop acc =
    if Lexer.accept_punct lx "}" then List.rev acc
    else loop (parse_stmt lx :: acc)
  in
  loop []

and parse_local_decl lx =
  let ty = parse_type lx in
  let name = Lexer.expect_ident lx in
  let len =
    if Lexer.accept_punct lx "[" then begin
      let n = const_eval (parse_expr lx) in
      Lexer.expect_punct lx "]";
      Some n
    end
    else None
  in
  let init =
    if Lexer.accept_punct lx "=" then Some (parse_expr lx) else None
  in
  Ast.Sdecl (ty, name, len, init)

and parse_switch lx =
  Lexer.advance lx;
  Lexer.expect_punct lx "(";
  let scrutinee = parse_expr lx in
  Lexer.expect_punct lx ")";
  Lexer.expect_punct lx "{";
  let cases = ref [] and default = ref None in
  let rec parse_entries () =
    match Lexer.peek lx with
    | Lexer.Tpunct "}" -> Lexer.advance lx
    | Lexer.Tkw "case" ->
        let values = ref [] in
        let rec labels () =
          match Lexer.peek lx with
          | Lexer.Tkw "case" ->
              Lexer.advance lx;
              let v = const_eval (parse_expr lx) in
              Lexer.expect_punct lx ":";
              values := v :: !values;
              labels ()
          | _ -> ()
        in
        labels ();
        let body = parse_case_body lx in
        cases := (List.rev !values, body) :: !cases;
        parse_entries ()
    | Lexer.Tkw "default" ->
        Lexer.advance lx;
        Lexer.expect_punct lx ":";
        if !default <> None then error lx "duplicate default";
        default := Some (parse_case_body lx);
        parse_entries ()
    | t -> error lx "expected case/default/}, found %s" (Lexer.describe t)
  and parse_case_body lx =
    let rec loop acc =
      match Lexer.peek lx with
      | Lexer.Tkw "case" | Lexer.Tkw "default" | Lexer.Tpunct "}" -> List.rev acc
      | _ -> loop (parse_stmt lx :: acc)
    in
    loop []
  in
  parse_entries ();
  Ast.Sswitch (scrutinee, List.rev !cases, !default)

(* --- Top level ------------------------------------------------------ *)

let parse_global_init lx ty len =
  if not (Lexer.accept_punct lx "=") then None
  else
    match (Lexer.peek lx, len) with
    | Lexer.Tstring s, Some _ | Lexer.Tstring s, None ->
        Lexer.advance lx;
        ignore ty;
        Some (Ast.Istr s)
    | Lexer.Tpunct "{", _ ->
        Lexer.advance lx;
        let values = ref [] in
        if not (Lexer.accept_punct lx "}") then begin
          let rec more () =
            values := const_eval (parse_expr lx) :: !values;
            if Lexer.accept_punct lx "," then
              (if not (Lexer.accept_punct lx "}") then more ())
            else Lexer.expect_punct lx "}"
          in
          more ()
        end;
        Some (Ast.Iarr (List.rev !values))
    | _, _ -> Some (Ast.Ival (const_eval (parse_expr lx)))

let parse_decl lx =
  let ty = parse_type lx in
  let name = Lexer.expect_ident lx in
  if Lexer.accept_punct lx "(" then begin
    let params = ref [] in
    if not (Lexer.accept_punct lx ")") then begin
      if Lexer.peek lx = Lexer.Tkw "void" && Lexer.peek2 lx = Lexer.Tpunct ")"
      then begin
        Lexer.advance lx;
        Lexer.expect_punct lx ")"
      end
      else
        let rec more () =
          let pty = parse_type lx in
          let pname = Lexer.expect_ident lx in
          params := (pty, pname) :: !params;
          if Lexer.accept_punct lx "," then more ()
          else Lexer.expect_punct lx ")"
        in
        more ()
    end;
    let body = parse_block lx in
    Ast.Dfun
      { Ast.fname = name; freturn = ty; fparams = List.rev !params; fbody = body }
  end
  else begin
    let has_bracket, len =
      if Lexer.accept_punct lx "[" then
        match Lexer.peek lx with
        | Lexer.Tpunct "]" ->
            Lexer.advance lx;
            (true, None) (* length inferred from initializer *)
        | _ ->
            let n = const_eval (parse_expr lx) in
            Lexer.expect_punct lx "]";
            (true, Some n)
      else (false, None)
    in
    let init = parse_global_init lx ty len in
    Lexer.expect_punct lx ";";
    (* infer array length from initializer when [] was written *)
    let len =
      match (has_bracket, len, init) with
      | _, Some n, _ -> Some n
      | true, None, Some (Ast.Iarr vs) -> Some (List.length vs)
      | true, None, Some (Ast.Istr s) -> Some (String.length s + 1)
      | true, None, _ -> raise (Error (name ^ ": array size required"))
      | false, None, _ -> None
    in
    Ast.Dglobal { Ast.gname = name; gty = ty; glen = len; ginit = init }
  end

let parse source =
  let lx = Lexer.tokenize source in
  let rec loop acc =
    if Lexer.peek lx = Lexer.Teof then List.rev acc
    else loop (parse_decl lx :: acc)
  in
  loop []
