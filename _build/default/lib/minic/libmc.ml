module Isa = Msp430.Isa
module A = Masm.Ast
open Masm.Build

(* Hand-written assembly support library: software multiply, divide,
   modulo and variable-distance shifts (the MSP430 has no such
   instructions; msp430-gcc emits calls to __mspabi helpers). These
   routines stand in for the "precompiled library functions" of the
   paper's library-instrumentation workflow (§4): the toolchain can
   disassemble and re-instrument them like application code.

   Calling convention: operands in R12/R13, result in R12; R13..R15
   are clobbered, R4..R11 preserved. *)

let negate r = [ xor (imm 0xFFFF) (dreg r); add (imm 1) (dreg r) ]

(* R12 * R13 -> R12 (low 16 bits; same for signed and unsigned). *)
let mulhi =
  A.item "__mulhi"
    ([
       mov (reg r12) (dreg r14);
       (* multiplicand *)
       mov (imm 0) (dreg r12);
       (* accumulator *)
       label "__mulhi$loop";
       cmp (imm 0) (dreg r13);
       jeq "__mulhi$done";
       bit (imm 1) (dreg r13);
       jeq "__mulhi$skip";
       add (reg r14) (dreg r12);
       label "__mulhi$skip";
       add (reg r14) (dreg r14);
       (* multiplier >>= 1 (logical) *)
       bic (imm 1) (A.Dreg Isa.sr);
       rrc (reg r13);
       jmp "__mulhi$loop";
       label "__mulhi$done";
       ret;
     ]
    |> List.map (fun s -> s))

(* Unsigned R12 / R13 -> quotient R12, remainder R14 (restoring
   division, 16 iterations; quotient bits shift into the vacated low
   bits of the dividend register). Division by zero returns 0xFFFF. *)
let udivhi =
  A.item "__udivhi"
    [
      cmp (imm 0) (dreg r13);
      jne "__udivhi$ok";
      mov (imm 0xFFFF) (dreg r12);
      mov (imm 0) (dreg r14);
      ret;
      label "__udivhi$ok";
      mov (imm 0) (dreg r14);
      (* remainder *)
      mov (imm 16) (dreg r15);
      (* counter *)
      label "__udivhi$loop";
      add (reg r12) (dreg r12);
      (* C = old msb *)
      addc (reg r14) (dreg r14);
      (* remainder = remainder<<1 | C *)
      cmp (reg r13) (dreg r14);
      jnc "__udivhi$skip";
      sub (reg r13) (dreg r14);
      bis (imm 1) (dreg r12);
      (* quotient bit *)
      label "__udivhi$skip";
      sub (imm 1) (dreg r15);
      jne "__udivhi$loop";
      ret;
    ]

(* Unsigned remainder. *)
let umodhi =
  A.item "__umodhi"
    [ call "__udivhi"; mov (reg r14) (dreg r12); ret ]

(* Signed division: C semantics (truncation toward zero). *)
let divhi =
  A.item "__divhi"
    ([
       mov (imm 0) (dreg r14);
       cmp (imm 0) (dreg r12);
       jge "__divhi$p1";
     ]
    @ negate r12
    @ [ mov (imm 1) (dreg r14); label "__divhi$p1"; cmp (imm 0) (dreg r13); jge "__divhi$p2" ]
    @ negate r13
    @ [
        xor (imm 1) (dreg r14);
        label "__divhi$p2";
        push (reg r14);
        call "__udivhi";
        pop r14;
        cmp (imm 0) (dreg r14);
        jeq "__divhi$done";
      ]
    @ negate r12
    @ [ label "__divhi$done"; ret ])

(* Signed modulo: result takes the sign of the dividend. *)
let modhi =
  A.item "__modhi"
    ([
       mov (imm 0) (dreg r14);
       cmp (imm 0) (dreg r12);
       jge "__modhi$p1";
     ]
    @ negate r12
    @ [ mov (imm 1) (dreg r14); label "__modhi$p1"; cmp (imm 0) (dreg r13); jge "__modhi$p2" ]
    @ negate r13
    @ [
        label "__modhi$p2";
        push (reg r14);
        call "__umodhi";
        pop r14;
        cmp (imm 0) (dreg r14);
        jeq "__modhi$done";
      ]
    @ negate r12
    @ [ label "__modhi$done"; ret ])

let shift_loop name body =
  A.item name
    ([
       and_ (imm 31) (dreg r13);
       (* bound the loop; shifts >= 16 drain to 0/sign *)
       cmp (imm 0) (dreg r13);
       jeq (name ^ "$done");
       label (name ^ "$loop");
     ]
    @ body
    @ [
        sub (imm 1) (dreg r13);
        jne (name ^ "$loop");
        label (name ^ "$done");
        ret;
      ])

let ashlhi = shift_loop "__ashlhi" [ add (reg r12) (dreg r12) ]
let ashrhi = shift_loop "__ashrhi" [ rra (reg r12) ]

let lshrhi =
  shift_loop "__lshrhi" [ bic (imm 1) (A.Dreg Isa.sr); rrc (reg r12) ]

(* Platform pseudo-functions. *)
let putchar =
  A.item "putchar"
    [ mov_b (reg r12) (dabsn Msp430.Memory.uart_tx_addr); ret ]

let halt_fn =
  A.item "halt" [ mov (imm 1) (dabsn Msp430.Memory.halt_addr); ret ]


(* --- Software floating point (binary32 on two 16-bit words) --------

   Hand-written equivalents of msp430-gcc's __mulsf3/__addsf3 helper
   routines. Format: hi = [s:1][exp:8][mant:7], lo = mant low 16.
   Denormals flush to zero; truncating rounding; extreme exponent
   overflow saturates. Calling convention: a_hi/a_lo/b_hi/b_lo in
   R12..R15; the result's high word returns in R12 and the low word
   is left in the __f_result_lo library word, fetched with f_lo().

   f_mul2 drops each operand's low 8 mantissa bits and computes a full
   16x16 shift-add product (relative error < 2^-14) — the classic
   embedded speed/size trade, and it keeps the routine the size of
   the real library helpers. *)

let f_result_lo = A.item ~section:A.Data "__f_result_lo" [ A.Word (A.Num 0) ]

let f_lo = A.item "f_lo" [ mov (abs "__f_result_lo") (dreg r12); ret ]

let f_mul2 =
  A.item "f_mul2"
    [
      push (reg r9);
      push (reg r10);
      push (reg r11);
      (* sign of result -> R10 *)
      mov (reg r12) (dreg r10);
      xor (reg r14) (dreg r10);
      and_ (imm 0x8000) (dreg r10);
      (* exponents (kept shifted left by 7) *)
      mov (reg r12) (dreg r11);
      and_ (imm 0x7F80) (dreg r11);
      jeq "f_mul2$zero";
      mov (reg r14) (dreg r9);
      and_ (imm 0x7F80) (dreg r9);
      jeq "f_mul2$zero";
      add (reg r9) (dreg r11);
      sub (imm 0x3F80) (dreg r11);
      (* m_a: top 16 bits of A's 24-bit mantissa -> R12 *)
      and_ (imm 0x007F) (dreg r12);
      bis (imm 0x0080) (dreg r12);
      swpb (reg r12);
      swpb (reg r13);
      and_ (imm 0x00FF) (dreg r13);
      bis (reg r13) (dreg r12);
      (* m_b -> R15 *)
      and_ (imm 0x007F) (dreg r14);
      bis (imm 0x0080) (dreg r14);
      swpb (reg r14);
      swpb (reg r15);
      and_ (imm 0x00FF) (dreg r15);
      bis (reg r14) (dreg r15);
      (* 16x16 -> 32 shift-add multiply: product in R13:R14 *)
      mov (imm 0) (dreg r13);
      mov (imm 0) (dreg r14);
      mov (imm 16) (dreg r9);
      label "f_mul2$loop";
      add (reg r14) (dreg r14);
      addc (reg r13) (dreg r13);
      add (reg r15) (dreg r15);
      jnc "f_mul2$skip";
      add (reg r12) (dreg r14);
      addc (imm 0) (dreg r13);
      label "f_mul2$skip";
      sub (imm 1) (dreg r9);
      jne "f_mul2$loop";
      (* normalize [2^30, 2^32) down to 24 bits: 7 shifts + maybe 1 *)
      mov (imm 7) (dreg r9);
      label "f_mul2$shift7";
      bic (imm 1) (A.Dreg Isa.sr);
      rrc (reg r13);
      rrc (reg r14);
      sub (imm 1) (dreg r9);
      jne "f_mul2$shift7";
      cmp (imm 0x0100) (dreg r13);
      jnc "f_mul2$packed";
      bic (imm 1) (A.Dreg Isa.sr);
      rrc (reg r13);
      rrc (reg r14);
      add (imm 0x0080) (dreg r11);
      label "f_mul2$packed";
      (* exponent range: underflow -> zero, overflow -> saturate *)
      cmp (imm 1) (dreg r11);
      jl "f_mul2$zero";
      cmp (imm 0x7F80) (dreg r11);
      jl "f_mul2$pack";
      mov (imm 0x7F00) (dreg r11);
      mov (imm 0xFF) (dreg r13);
      mov (imm 0xFFFF) (dreg r14);
      label "f_mul2$pack";
      and_ (imm 0x007F) (dreg r13);
      bis (reg r11) (dreg r13);
      bis (reg r10) (dreg r13);
      mov (reg r14) (dabs "__f_result_lo");
      mov (reg r13) (dreg r12);
      pop r11;
      pop r10;
      pop r9;
      ret;
      label "f_mul2$zero";
      mov (imm 0) (dabs "__f_result_lo");
      mov (reg r10) (dreg r12);
      pop r11;
      pop r10;
      pop r9;
      ret;
    ]

let f_add2 =
  A.item "f_add2"
    [
      push (reg r8);
      push (reg r9);
      push (reg r10);
      push (reg r11);
      (* B == 0 -> result is A *)
      mov (reg r14) (dreg r9);
      and_ (imm 0x7FFF) (dreg r9);
      bis (reg r15) (dreg r9);
      jeq "f_add2$return_a";
      (* A == 0 -> result is B *)
      mov (reg r12) (dreg r9);
      and_ (imm 0x7FFF) (dreg r9);
      bis (reg r13) (dreg r9);
      jeq "f_add2$return_b";
      (* ensure |A| >= |B| (packed magnitude compare), else swap *)
      mov (reg r12) (dreg r9);
      and_ (imm 0x7FFF) (dreg r9);
      mov (reg r14) (dreg r10);
      and_ (imm 0x7FFF) (dreg r10);
      cmp (reg r10) (dreg r9);
      jnc "f_add2$swap";
      jne "f_add2$ordered";
      cmp (reg r15) (dreg r13);
      jc "f_add2$ordered";
      label "f_add2$swap";
      mov (reg r12) (dreg r9);
      mov (reg r14) (dreg r12);
      mov (reg r9) (dreg r14);
      mov (reg r13) (dreg r9);
      mov (reg r15) (dreg r13);
      mov (reg r9) (dreg r15);
      label "f_add2$ordered";
      (* result sign (R10) and exponent<<7 (R11) come from A *)
      mov (reg r12) (dreg r10);
      and_ (imm 0x8000) (dreg r10);
      mov (reg r12) (dreg r11);
      and_ (imm 0x7F80) (dreg r11);
      (* B sign bit -> R7? avoid: compare signs via XOR into R8 *)
      mov (reg r12) (dreg r8);
      xor (reg r14) (dreg r8);
      and_ (imm 0x8000) (dreg r8);
      (* mantissas: A -> R12:R13, B -> R14:R15, implicit bits on *)
      and_ (imm 0x007F) (dreg r12);
      bis (imm 0x0080) (dreg r12);
      mov (reg r14) (dreg r9);
      and_ (imm 0x7F80) (dreg r9);
      and_ (imm 0x007F) (dreg r14);
      bis (imm 0x0080) (dreg r14);
      (* diff = (ea - eb) << 7 -> R9 *)
      xor (imm 0xFFFF) (dreg r9);
      add (imm 1) (dreg r9);
      add (reg r11) (dreg r9);
      (* diff > 24<<7: B vanishes *)
      cmp (imm 0x0C01) (dreg r9);
      jc "f_add2$pack";
      label "f_add2$align";
      cmp (imm 0) (dreg r9);
      jeq "f_add2$aligned";
      bic (imm 1) (A.Dreg Isa.sr);
      rrc (reg r14);
      rrc (reg r15);
      sub (imm 0x80) (dreg r9);
      jmp "f_add2$align";
      label "f_add2$aligned";
      cmp (imm 0) (dreg r8);
      jne "f_add2$subtract";
      (* same signs: add mantissas *)
      add (reg r15) (dreg r13);
      addc (reg r14) (dreg r12);
      bit (imm 0x0100) (dreg r12);
      jeq "f_add2$pack";
      bic (imm 1) (A.Dreg Isa.sr);
      rrc (reg r12);
      rrc (reg r13);
      add (imm 0x80) (dreg r11);
      jmp "f_add2$pack";
      label "f_add2$subtract";
      sub (reg r15) (dreg r13);
      subc (reg r14) (dreg r12);
      mov (reg r12) (dreg r9);
      bis (reg r13) (dreg r9);
      jeq "f_add2$zero";
      label "f_add2$norm";
      bit (imm 0x0080) (dreg r12);
      jne "f_add2$pack";
      add (reg r13) (dreg r13);
      addc (reg r12) (dreg r12);
      sub (imm 0x80) (dreg r11);
      cmp (imm 1) (dreg r11);
      jl "f_add2$zero";
      jmp "f_add2$norm";
      label "f_add2$pack";
      and_ (imm 0x007F) (dreg r12);
      bis (reg r11) (dreg r12);
      bis (reg r10) (dreg r12);
      mov (reg r13) (dabs "__f_result_lo");
      jmp "f_add2$out";
      label "f_add2$zero";
      mov (imm 0) (dreg r12);
      mov (imm 0) (dabs "__f_result_lo");
      jmp "f_add2$out";
      label "f_add2$return_a";
      mov (reg r13) (dabs "__f_result_lo");
      jmp "f_add2$out";
      label "f_add2$return_b";
      mov (reg r14) (dreg r12);
      mov (reg r15) (dabs "__f_result_lo");
      label "f_add2$out";
      pop r11;
      pop r10;
      pop r9;
      pop r8;
      ret;
    ]

let f_sub2 =
  A.item "f_sub2"
    [
      xor (imm 0x8000) (dreg r14);
      call "f_add2";
      ret;
    ]

let items =
  [
    mulhi; udivhi; umodhi; divhi; modhi; ashlhi; ashrhi; lshrhi;
    f_result_lo; f_lo; f_mul2; f_add2; f_sub2; putchar; halt_fn;
  ]

let names = List.map (fun it -> it.A.name) items

(* Only the routines the program actually references, to keep binaries
   lean (the blacklist/metadata cost scales with function count, §5.2). *)
let needed_by (program : A.program) =
  let referenced = Hashtbl.create 16 in
  let scan_expr = function
    | A.Num _ -> ()
    | A.Lab l | A.Lab_off (l, _) -> Hashtbl.replace referenced l ()
    | A.Diff (a, b) ->
        Hashtbl.replace referenced a ();
        Hashtbl.replace referenced b ()
  in
  let scan_instr = function
    | A.Call e | A.Call_ind e | A.Br e | A.Br_ind e -> scan_expr e
    | A.I1 (_, _, s, d) ->
        (match s with
        | A.Sidx (e, _) | A.Simm e | A.Sabs e | A.Ssym e -> scan_expr e
        | A.Sreg _ | A.Sind _ | A.Sinc _ -> ());
        (match d with
        | A.Didx (e, _) | A.Dabs e | A.Dsym e -> scan_expr e
        | A.Dreg _ -> ())
    | A.I2 (_, _, s) -> (
        match s with
        | A.Sidx (e, _) | A.Simm e | A.Sabs e | A.Ssym e -> scan_expr e
        | A.Sreg _ | A.Sind _ | A.Sinc _ -> ())
    | A.J _ | A.Ret -> ()
  in
  let scan_item it =
    List.iter
      (function
        | A.Instr i -> scan_instr i
        | A.Word e -> scan_expr e
        | A.Label _ | A.Byte _ | A.Ascii _ | A.Space _ | A.Align _
        | A.Comment _ -> ())
      it.A.stmts
  in
  List.iter scan_item program;
  (* transitive closure over library-internal calls *)
  let rec fix () =
    let added = ref false in
    List.iter
      (fun it ->
        if Hashtbl.mem referenced it.A.name then begin
          let before = Hashtbl.length referenced in
          scan_item it;
          if Hashtbl.length referenced > before then added := true
        end)
      items;
    if !added then fix ()
  in
  fix ();
  List.filter (fun it -> Hashtbl.mem referenced it.A.name) items
