(** Code generation from mini-C to MSP430 assembly.

    ABI (matching msp430-gcc, as the paper's §4 describes): arguments
    in R12..R15, return value in R12, R4 as frame pointer, R12..R15
    caller-saved. Every binary operator evaluates through the generic
    stack discipline and multiply/divide/modulo/variable shifts call
    the support library — the unoptimized build style of the MiBench2
    ports (see DESIGN.md), and exactly the "precompiled library
    function" pattern the paper's library-instrumentation workflow
    targets. *)

exception Error of string

val library_signatures : (string * (Ast.ty * Ast.ty list)) list
(** Functions provided by the assembly support library (Libmc) and
    the platform, pre-registered for call checking. *)

val compile : Ast.program -> Masm.Ast.program
val compile_source : string -> Masm.Ast.program
