module A = Masm.Ast
open Masm.Build

(* Front-end driver: compile mini-C source into a complete assembly
   program — application items, the needed support-library routines,
   and the startup stub. The stack pointer is initialised by the
   loader (it depends on the memory configuration), so the startup
   stub only calls main and halts. *)

let start_item =
  A.item "_start"
    [ call "main"; mov (imm 1) (dabsn Msp430.Memory.halt_addr) ]

let entry_name = "_start"

(* Compile source text to a full program. When [through_disasm] is set
   the library routines take the paper's §4 workflow: they are
   assembled separately, disassembled, and the recovered assembly is
   reintegrated — exercising the objdump-based library path. *)
let program_of_source ?(through_disasm = false) source =
  let app = Codegen.compile_source source in
  let libs = Libmc.needed_by app in
  let libs =
    if not through_disasm then libs
    else begin
      (* assemble the library alone, then lift each routine back *)
      let image = Masm.Assembler.assemble Libmc.items in
      List.map
        (fun it -> Masm.Disasm.item_of_image image ~name:it.A.name)
        libs
    end
  in
  (start_item :: app) @ libs
