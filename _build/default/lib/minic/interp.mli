(** Reference interpreter for mini-C, the differential-testing oracle
    for the full pipeline. Defines exactly the semantics the code
    generator implements: 16-bit wrapping arithmetic, zero-extended
    chars, unsigned comparison when either side is unsigned/char/
    pointer, the support library's shift masking and division-by-zero
    convention, and a flat memory model with 16-bit pointers. *)

exception Error of string

exception Unsupported of string
(** Raised for programs using the software-float helpers, which have
    no interpreter model (the FFT benchmark is validated end-to-end
    instead). *)

type result = { return_value : int; output : string }

val run : ?fuel:int -> Ast.program -> result
val run_source : ?fuel:int -> string -> result
