lib/experiments/report.ml: Array List Printf String
