lib/experiments/tab2.ml: List Msp430 Printf Report Sweep Toolchain Workloads
