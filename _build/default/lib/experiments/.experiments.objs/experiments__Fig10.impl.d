lib/experiments/fig10.ml: Blockcache List Msp430 Printf Report Swapram Toolchain Workloads
