lib/experiments/sweep.mli: Msp430 Toolchain Workloads
