lib/experiments/toolchain.mli: Blockcache Msp430 Swapram Workloads
