lib/experiments/sweep.ml: Blockcache Hashtbl List Msp430 Swapram Toolchain Workloads
