lib/experiments/fig8.ml: Array List Msp430 Printf Report Sweep Toolchain Workloads
