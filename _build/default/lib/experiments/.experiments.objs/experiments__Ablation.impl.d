lib/experiments/ablation.ml: List Msp430 Option Report Swapram Toolchain Workloads
