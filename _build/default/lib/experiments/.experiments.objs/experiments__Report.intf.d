lib/experiments/report.mli:
