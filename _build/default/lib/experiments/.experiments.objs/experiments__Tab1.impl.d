lib/experiments/tab1.ml: List Msp430 Printf Report Toolchain Workloads
