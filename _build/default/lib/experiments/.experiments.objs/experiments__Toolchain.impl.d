lib/experiments/toolchain.ml: Blockcache Masm Minic Msp430 Option Printf Swapram Workloads
