lib/experiments/fig9.ml: List Msp430 Printf Report Sweep Toolchain Workloads
