lib/experiments/fig7.ml: Blockcache List Masm Minic Msp430 Printf Report String Swapram Workloads
