(** Build-and-run harness covering every configuration in the paper's
    evaluation: memory placement (Fig. 1), caching system, clock
    frequency, and the split-SRAM arrangement of §5.5. Data is packed
    directly after code when both share a memory, the stack sits at
    the top of whichever memory holds program data, and binaries that
    exceed the FR2355's memories come back as [Did_not_fit] (the
    paper's DNF marks). *)

type caching =
  | Baseline  (** execute from FRAM through the hardware read cache *)
  | Swapram_cache of Swapram.Config.options
  | Block_cache of Blockcache.Config.options

val caching_name : caching -> string

type placement =
  | Unified  (** code + data in FRAM; SRAM free for the cache *)
  | Standard  (** code in FRAM, data in SRAM — the conventional setup *)
  | Code_sram  (** code in SRAM, data in FRAM (Fig. 1 study) *)
  | All_sram  (** both in SRAM (Fig. 1 study) *)
  | Split  (** §5.5: data + stack in low SRAM, rest of SRAM is cache *)

val placement_name : placement -> string

type config = {
  benchmark : Workloads.Bench_def.t;
  seed : int;
  frequency : Msp430.Platform.frequency;
  placement : placement;
  caching : caching;
  fuel : int;
  through_disasm : bool;
      (** route the support library through the §4 disassembler
          workflow *)
}

val default_config : Workloads.Bench_def.t -> config
(** Unified placement, baseline caching, 24 MHz, seed 1. *)

type sizes = { code_bytes : int; data_bytes : int }

type result = {
  stats : Msp430.Trace.t;
  energy : Msp430.Energy.report;
  uart : string;
  return_value : int;
  sizes : sizes;
  swapram_stats : Swapram.Runtime.stats option;
  swapram_manifest : Swapram.Instrument.manifest option;
  swapram_usage : Swapram.Pipeline.nvm_usage option;
  block_stats : Blockcache.Runtime.stats option;
  block_usage : Blockcache.Pipeline.nvm_usage option;
}

type outcome = Completed of result | Did_not_fit of string

val run : config -> outcome
