(** Plain-text table rendering for the experiment reports. *)

type align = Left | Right

val table : ?aligns:align list -> string list list -> string
(** Aligned columns; the first row is the header (default alignment is
    [Right], [aligns] overrides per column). *)

val pct : vs:int -> int -> string
(** "+12%"-style delta of a value against a baseline. *)

val pctf : vs:float -> float -> string
val ratio : vs:int -> int -> float
val millions : int -> string
val geo_mean : float list -> float
val heading : string -> string
