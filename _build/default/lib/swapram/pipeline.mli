(** End-to-end SwapRAM build pipeline: instrument an assembly program,
    assemble the final binary, and install it (image + runtime trap)
    on a simulated platform. This is the top-level API a library user
    drives; see examples/quickstart.ml. *)

type built = {
  program : Masm.Ast.program;  (** final instrumented program *)
  image : Masm.Assembler.t;
  manifest : Instrument.manifest;
  options : Config.options;
}

val build :
  ?options:Config.options ->
  ?layout:Masm.Assembler.layout ->
  Masm.Ast.program ->
  built

val install : built -> Msp430.Platform.system -> Runtime.t
(** Load the image into simulated memory and arm the miss handler;
    returns the runtime for statistics inspection. *)

(** NVM usage accounting for the paper's §5.2 / Figure 7. The
    application's own data area is excluded, as in the paper. *)
type nvm_usage = {
  application_bytes : int;  (** transformed application code *)
  runtime_bytes : int;  (** miss handler + memcpy regions *)
  metadata_bytes : int;  (** redirection/active/function/reloc tables *)
}

val total_bytes : nvm_usage -> int
val nvm_usage : built -> nvm_usage
