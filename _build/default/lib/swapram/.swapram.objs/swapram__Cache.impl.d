lib/swapram/cache.ml: List
