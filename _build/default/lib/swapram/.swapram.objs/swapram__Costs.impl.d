lib/swapram/costs.ml:
