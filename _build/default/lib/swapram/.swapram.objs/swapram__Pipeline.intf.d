lib/swapram/pipeline.mli: Config Instrument Masm Msp430 Runtime
