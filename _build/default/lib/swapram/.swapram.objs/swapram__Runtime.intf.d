lib/swapram/runtime.mli: Cache Config Instrument Masm Msp430
