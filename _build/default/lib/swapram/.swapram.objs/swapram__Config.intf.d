lib/swapram/config.mli: Cache
