lib/swapram/cache.mli:
