lib/swapram/instrument.mli: Config Hashtbl Masm
