lib/swapram/runtime.ml: Array Bytes Cache Char Config Costs Instrument List Masm Msp430
