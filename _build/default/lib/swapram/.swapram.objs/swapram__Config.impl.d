lib/swapram/config.ml: Cache Msp430
