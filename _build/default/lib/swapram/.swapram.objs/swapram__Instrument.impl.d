lib/swapram/instrument.ml: Array Config Format Hashtbl List Masm Msp430 Option
