lib/swapram/pipeline.ml: Config Instrument List Masm Msp430 Runtime
