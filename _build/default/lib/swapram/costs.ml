(* Cost model for the modeled runtime (miss handler + memcpy).

   The paper's runtime is MSP430 assembly executing from FRAM; ours is
   OCaml invoked through a trap vector. To keep Figure 8 (instruction
   source breakdown), Table 2 (cycle counts) and the wait-state
   machinery faithful, every modeled runtime instruction charges one
   counted instruction fetch from the reserved FRAM runtime region
   plus [cycles_per_instr] unstalled cycles, and all data the runtime
   touches (funcId, redirection entries, active counters, function
   table, relocation tables, the code bytes themselves) moves through
   counted simulated-memory accesses.

   The constants below are instruction-count estimates for each phase
   of the handler in Figure 4, sized against a hand-sketched MSP430
   implementation of the same logic. They are deliberately simple and
   documented so ablations can vary them. *)

(* Save argument registers R12-R15, load funcId, index the function
   table, load nvm address / size / reloc range. *)
let handler_entry_instrs = 12

(* Per cache-structure entry examined while planning a placement. *)
let scan_entry_instrs = 4

(* Per flagged function: read its active counter and test it. *)
let active_check_instrs = 3

(* Per evicted function: unlink node, reset its redirection entry. *)
let evict_instrs = 6

(* Per relocation entry recomputed (on caching and on eviction):
   load offset, add base, store slot. *)
let reloc_instrs = 5

(* Copy loop: MOV @src+, dst / increment / compare / branch per word.
   The FRAM read and SRAM write are charged separately as counted
   data accesses. *)
let memcpy_per_word_instrs = 2

(* Update redirection entry, restore registers, branch to the copy. *)
let handler_exit_instrs = 10

(* Abort path (§3.3.3): unwind flagging and branch to the NVM copy. *)
let abort_instrs = 6

(* Average unstalled cycles per modeled runtime instruction (register
   and absolute-mode format-I instructions dominate the handler). *)
let cycles_per_instr = 2
