module A = Masm.Ast

(* End-to-end SwapRAM build pipeline: instrument an assembly program,
   assemble the final binary, and install it (image + runtime trap)
   on a simulated platform. This is the top-level API a user of the
   library drives; see examples/quickstart.ml. *)

type built = {
  program : A.program; (* final instrumented program *)
  image : Masm.Assembler.t;
  manifest : Instrument.manifest;
  options : Config.options;
}

let build ?(options = Config.default_options)
    ?(layout = Masm.Assembler.default_layout) program =
  let instrumented, manifest = Instrument.instrument ~options ~layout program in
  let image = Masm.Assembler.assemble ~layout instrumented in
  { program = instrumented; image; manifest; options }

(* Load the image and arm the miss handler; returns the runtime for
   stats inspection. *)
let install built (system : Msp430.Platform.system) =
  Masm.Assembler.load built.image system.Msp430.Platform.memory;
  Runtime.install ~options:built.options ~manifest:built.manifest
    ~image:built.image system

(* --- Size accounting (paper §5.2, Fig. 7) --------------------------- *)

type nvm_usage = {
  application_bytes : int; (* transformed app code + its static data *)
  runtime_bytes : int; (* miss handler + memcpy *)
  metadata_bytes : int; (* redirection/active/function/reloc tables *)
}

let total_bytes u = u.application_bytes + u.runtime_bytes + u.metadata_bytes

let nvm_usage built =
  let metadata_names =
    [
      Config.sym_funcid;
      Config.sym_redirect;
      Config.sym_active;
      Config.sym_functab;
      Config.sym_reloc;
      Config.sym_relofs;
    ]
  in
  let runtime_names = [ Config.sym_handler; Config.sym_memcpy ] in
  let app = ref 0 and runtime = ref 0 and metadata = ref 0 in
  (* The application's own data area is excluded, as in the paper's
     Figure 7; SwapRAM metadata counts as Metadata even though it is
     placed in the data segment. *)
  List.iter
    (fun info ->
      let n = info.Masm.Assembler.info_name in
      if List.mem n metadata_names then
        metadata := !metadata + info.Masm.Assembler.info_size
      else if List.mem n runtime_names then
        runtime := !runtime + info.Masm.Assembler.info_size
      else if info.Masm.Assembler.info_section = A.Text then
        app := !app + info.Masm.Assembler.info_size)
    built.image.Masm.Assembler.items;
  {
    application_bytes = !app;
    runtime_bytes = !runtime;
    metadata_bytes = !metadata;
  }
