(** Basic-block transformation for the block-cache baseline (paper §4,
    Fig. 6): split text items into slot-sized basic blocks, rewrite
    every control-flow instruction into an absolute branch through a
    per-CFI stub (the "jump table" that dominates this system's memory
    cost), push explicit NVM return addresses at calls, and emit the
    runtime metadata (CFI table, block table, hash region). *)

exception Error of string

type cfi = {
  cfi_target : string;  (** jump destination (a block leader label) *)
  cfi_owner : string;  (** leader of the block containing the CFI *)
  cfi_marker : string;  (** label on the rewritten branch, for chaining *)
}

type manifest = {
  cfis : cfi array;
  blocks : (string * int) array;  (** leader label, exact size in bytes *)
  slot_size : int;
  num_slots : int;
  hash_buckets : int;
  runtime_bytes : int;
  memcpy_bytes : int;
}

val stub_label : int -> string
val transform :
  ?options:Config.options -> Masm.Ast.program -> Masm.Ast.program * manifest
