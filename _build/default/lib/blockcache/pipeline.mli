(** End-to-end build pipeline for the block-cache baseline, mirroring
    {!Swapram.Pipeline}. *)

type built = {
  program : Masm.Ast.program;
  image : Masm.Assembler.t;
  manifest : Transform.manifest;
  options : Config.options;
}

exception Does_not_fit of string
(** Raised by {!check_fits}: the paper marks four of nine benchmarks
    DNF because the transformed binary exceeds the platform's FRAM
    (§5.2). *)

val build :
  ?options:Config.options ->
  ?layout:Masm.Assembler.layout ->
  Masm.Ast.program ->
  built

val check_fits : fram_limit:int -> built -> unit
val install : built -> Msp430.Platform.system -> Runtime.t

type nvm_usage = {
  application_bytes : int;
      (** transformed code + per-CFI stubs (the jump table) *)
  runtime_bytes : int;
  metadata_bytes : int;  (** CFI/block tables + the hash table *)
}

val total_bytes : nvm_usage -> int
val nvm_usage : built -> nvm_usage
