module A = Masm.Ast
module Isa = Msp430.Isa

(* Basic-block transformation for the block-cache baseline (paper §4,
   Fig. 6).

   Every text item is split into basic blocks whose transformed size
   never exceeds the slot budget. Control-flow instructions become
   absolute branches to per-CFI stubs that enter the runtime (this is
   the "jump table" whose size dominates the block cache's memory
   consumption in §5.2):

   - conditional jumps get the inverted-condition skip of Fig. 6;
   - unconditional jumps and fall-through block boundaries become
     plain absolute branches to stubs;
   - CALL pushes its return address explicitly (an NVM address, so
     the call stack survives cache flushes) and branches to the
     callee's stub; the instruction after the call leads a new block;
   - RET branches straight into the runtime's return entry, which
     pops the NVM return address and resumes through the cache.

   A label placed on each rewritten branch lets the runtime chain
   blocks by overwriting the branch's extension word inside the
   cached SRAM copy. *)

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type cfi = { cfi_target : string; cfi_owner : string; cfi_marker : string }

type manifest = {
  cfis : cfi array;
  blocks : (string * int) array; (* leader label, exact size in bytes *)
  slot_size : int;
  num_slots : int;
  hash_buckets : int;
  runtime_bytes : int;
  memcpy_bytes : int;
}

let inverse_cond = Masm.Assembler.inverse_cond

type state = {
  mutable cfis_acc : cfi list; (* reversed *)
  mutable next_cfi : int;
  mutable next_label : int;
  mutable blocks_acc : (string * int) list; (* reversed *)
}

let fresh st prefix =
  st.next_label <- st.next_label + 1;
  Printf.sprintf "$bb_%s%d" prefix st.next_label

(* Size of the CFI tail appended when a block ends: marker + BR #stub. *)
let cfi_tail_bytes = 4

let stub_label k = Printf.sprintf "$bb_stub%d" k

let transform_item options st (it : A.item) =
  let out = ref [] in
  let emit s = out := s :: !out in
  (* current block: leader label, accumulated size, and whether the
     block has already been terminated (control cannot fall past a
     terminator, so no continuation CFI is needed there) *)
  let leader = ref it.A.name in
  let block_size = ref 0 in
  let terminated = ref false in
  let close_block () =
    st.blocks_acc <- (!leader, !block_size) :: st.blocks_acc
  in
  let start_block l =
    leader := l;
    block_size := 0;
    terminated := false
  in
  let add_size n = block_size := !block_size + n in
  (* Emit a runtime-entering CFI: marker label + absolute branch to a
     fresh stub whose id records the jump target. *)
  let emit_cfi target =
    let k = st.next_cfi in
    st.next_cfi <- k + 1;
    let marker = fresh st "m" in
    st.cfis_acc <-
      { cfi_target = target; cfi_owner = !leader; cfi_marker = marker }
      :: st.cfis_acc;
    emit (A.Label marker);
    emit (A.Instr (A.Br (A.Lab (stub_label k))));
    add_size 4
  in
  (* If the dead code after a terminator is actually reachable code
     (it should not be, but lifted items may surprise), give it a
     fresh leader. *)
  let ensure_open () =
    if !terminated then begin
      let lead = fresh st "ld" in
      emit (A.Label lead);
      start_block lead
    end
  in
  let split_if_needed next_bytes =
    if !block_size + next_bytes + cfi_tail_bytes > options.Config.max_block_bytes
    then begin
      let cont = fresh st "sp" in
      emit_cfi cont;
      close_block ();
      emit (A.Label cont);
      start_block cont
    end
  in
  let handle_stmt stmt =
    match stmt with
    | A.Label l ->
        if !terminated then begin
          emit (A.Label l);
          start_block l
        end
        else begin
          (* fall-through boundary: branch explicitly to the next
             block, as cached copies are not contiguous *)
          emit_cfi l;
          close_block ();
          emit (A.Label l);
          start_block l
        end
    | A.Comment _ -> emit stmt
    | A.Instr (A.J (c, l)) -> (
        ensure_open ();
        match c with
        | Isa.JMP ->
            emit_cfi l;
            close_block ();
            terminated := true
        | _ -> (
            match inverse_cond c with
            | Some inv ->
                (* both outcomes leave the block through a CFI; the
                   short inverted jump stays inside the block copy *)
                split_if_needed (2 + (2 * cfi_tail_bytes));
                let skip = fresh st "sk" in
                let cont = fresh st "ct" in
                emit (A.Instr (A.J (inv, skip)));
                add_size 2;
                emit_cfi l (* taken path *);
                emit (A.Label skip) (* intra-block label *);
                emit_cfi cont (* fall-through path *);
                close_block ();
                emit (A.Label cont);
                start_block cont
            | None ->
                (* JN has no complement: short jump over the
                   fall-through CFI to the taken CFI *)
                split_if_needed (2 + (2 * cfi_tail_bytes));
                let take = fresh st "tk" in
                let cont = fresh st "ct" in
                emit (A.Instr (A.J (c, take)));
                add_size 2;
                emit_cfi cont (* fall-through path *);
                emit (A.Label take) (* intra-block label *);
                emit_cfi l (* taken path *);
                close_block ();
                emit (A.Label cont);
                start_block cont))
    | A.Instr (A.Call (A.Lab f)) ->
        ensure_open ();
        (* PUSH #return-NVM-address (4 bytes) + CFI to the callee; the
           pushed address survives cache flushes because it names the
           FRAM original, resolved back through the return trap *)
        split_if_needed (4 + cfi_tail_bytes);
        let ret = fresh st "rt" in
        emit (A.Instr (A.I2 (Isa.PUSH, Isa.W, A.Simm (A.Lab ret))));
        add_size 4;
        emit_cfi f;
        close_block ();
        emit (A.Label ret);
        start_block ret
    | A.Instr (A.Call (A.Num a)) ->
        error "%s: call to raw address 0x%04X unsupported" it.A.name a
    | A.Instr (A.Call (A.Lab_off _ | A.Diff _)) ->
        error "%s: computed call target unsupported" it.A.name
    | A.Instr A.Ret ->
        ensure_open ();
        emit (A.Instr (A.Br (A.Num Config.return_trap)));
        add_size 4;
        close_block ();
        terminated := true
    | A.Instr (A.Br (A.Lab l)) ->
        ensure_open ();
        emit_cfi l;
        close_block ();
        terminated := true
    | A.Instr (A.Br _ | A.Br_ind _ | A.Call_ind _) ->
        error "%s: indirect control flow unsupported by the block cache"
          it.A.name
    | A.Instr i ->
        ensure_open ();
        let size = Masm.Assembler.instr_size i in
        split_if_needed size;
        emit (A.Instr i);
        add_size size
    | A.Word _ | A.Byte _ | A.Ascii _ | A.Space _ | A.Align _ ->
        error "%s: data inside a code item unsupported by the block cache"
          it.A.name
  in
  List.iter handle_stmt it.A.stmts;
  if not !terminated then close_block ();
  { it with A.stmts = List.rev !out }

let next_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

let stub_items num_cfis =
  A.item "$bb_stubs"
    (List.concat
       (List.init num_cfis (fun k ->
            [
              A.Label (stub_label k);
              A.Instr
                (A.I1
                   ( Isa.MOV,
                     Isa.W,
                     A.Simm (A.Num k),
                     A.Dabs (A.Lab Config.sym_cfi) ));
              A.Instr (A.Br (A.Num Config.miss_trap));
            ])))

(* Metadata stays in FRAM with the code (Text placement) — the
   configuration the paper found fastest for this baseline (§4). *)
let metadata_items manifest =
  [
    A.item Config.sym_cfi [ A.Word (A.Num 0) ];
    A.item Config.sym_cfitab
      (List.concat_map
         (fun c ->
           [
             A.Word (A.Lab c.cfi_target);
             A.Word (A.Lab c.cfi_owner);
             A.Word (A.Diff (c.cfi_marker, c.cfi_owner));
           ])
         (Array.to_list manifest.cfis));
    A.item Config.sym_blocktab
      (List.concat_map
         (fun (leader, size) -> [ A.Word (A.Lab leader); A.Word (A.Num size) ])
         (Array.to_list manifest.blocks));
    A.item Config.sym_hash [ A.Space (4 * manifest.hash_buckets) ];
  ]

let runtime_region_items manifest =
  [
    A.item Config.sym_runtime [ A.Space manifest.runtime_bytes ];
    A.item Config.sym_memcpy [ A.Space manifest.memcpy_bytes ];
  ]

let transform ?(options = Config.default_options) program =
  let st = { cfis_acc = []; next_cfi = 0; next_label = 0; blocks_acc = [] } in
  let items =
    List.map
      (fun (it : A.item) ->
        if it.A.section = A.Text then transform_item options st it else it)
      program
  in
  let blocks =
    Array.of_list
      (List.filter (fun (_, size) -> size > 0) (List.rev st.blocks_acc))
  in
  let cfis = Array.of_list (List.rev st.cfis_acc) in
  let slot_size =
    Array.fold_left (fun acc (_, s) -> max acc s) 2 blocks
  in
  let num_slots = max 1 (options.Config.cache_size / slot_size) in
  let hash_buckets = next_pow2 (2 * num_slots) in
  let manifest =
    {
      cfis;
      blocks;
      slot_size;
      num_slots;
      hash_buckets;
      runtime_bytes = 620;
      memcpy_bytes = 64;
    }
  in
  let final =
    items
    @ [ stub_items (Array.length cfis) ]
    @ runtime_region_items manifest
    @ metadata_items manifest
  in
  (final, manifest)
