(* Cost model for the modeled block-cache runtime, analogous to
   Swapram.Costs: each modeled instruction charges one counted fetch
   from the reserved FRAM runtime region plus two unstalled cycles;
   hash probes, table lookups, chain rewrites and the copy loop also
   move their data through counted simulated-memory accesses. *)

let runtime_entry_instrs = 8 (* save registers, load CFI id *)
let cfitab_instrs = 4 (* index the CFI table, load 3 fields *)
let hash_probe_instrs = 5 (* djb2 step + bucket compare per probe *)
let hash_insert_instrs = 4
let chain_instrs = 3 (* rewrite the source CFI in its cached copy *)
let memcpy_per_word_instrs = 2
let flush_base_instrs = 12
let flush_per_bucket_instrs = 1
let runtime_exit_instrs = 6
let return_entry_instrs = 6 (* pop return address, derive block id *)
let cycles_per_instr = 2
