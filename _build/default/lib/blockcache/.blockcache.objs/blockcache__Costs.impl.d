lib/blockcache/costs.ml:
