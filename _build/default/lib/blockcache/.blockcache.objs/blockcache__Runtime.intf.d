lib/blockcache/runtime.mli: Config Masm Msp430 Transform
