lib/blockcache/config.ml: Msp430
