lib/blockcache/transform.mli: Config Masm
