lib/blockcache/pipeline.mli: Config Masm Msp430 Runtime Transform
