lib/blockcache/config.mli:
