lib/blockcache/pipeline.ml: Config List Masm Msp430 Printf Runtime Transform
