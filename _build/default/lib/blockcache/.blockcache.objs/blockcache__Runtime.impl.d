lib/blockcache/runtime.ml: Array Config Costs Hashtbl Masm Msp430 Printf Transform
