lib/blockcache/transform.ml: Array Config Format List Masm Msp430 Printf
