(* Block-cache build options and well-known addresses/symbols.

   This is the best-effort MSP430 port of Miller & Agarwal's software
   instruction cache that the paper compares against (§4): basic-block
   granularity, fixed-size SRAM slots, a djb2 hash table at 0.5 load
   factor kept in FRAM (the paper found FRAM placement fastest),
   block chaining by rewriting cached CFIs, and a full cache flush
   when the slots run out. *)

(* Trap vectors. *)
let miss_trap = 0xFF10 (* CFI stubs branch here *)
let return_trap = 0xFF12 (* transformed RETs branch here *)

(* Metadata symbols. *)
let sym_cfi = "__bb_cfi" (* current CFI id, written by the stubs *)
let sym_cfitab = "__bb_cfitab" (* per-CFI: target, owner block, BR offset *)
let sym_blocktab = "__bb_blocktab" (* per-block: address, size *)
let sym_hash = "__bb_hash" (* open-addressing table in FRAM *)
let sym_runtime = "__bb_runtime" (* reserved FRAM region for runtime code *)
let sym_memcpy = "__bb_memcpy"

type options = {
  cache_base : int;
  cache_size : int;
  (* Basic blocks are split so their transformed size never exceeds
     this; the slot size is the largest transformed block. *)
  max_block_bytes : int;
  debug_checks : bool;
}

let default_options =
  {
    cache_base = Msp430.Platform.sram_base;
    cache_size = Msp430.Platform.sram_size;
    max_block_bytes = 64;
    debug_checks = false;
  }
