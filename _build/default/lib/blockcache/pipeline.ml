module A = Masm.Ast

(* End-to-end block-cache build pipeline, mirroring Swapram.Pipeline. *)

type built = {
  program : A.program;
  image : Masm.Assembler.t;
  manifest : Transform.manifest;
  options : Config.options;
}

exception Does_not_fit of string
(* The paper marks four of nine benchmarks DNF for the block cache:
   the transformed binary exceeds the platform's FRAM (§5.2). *)

let build ?(options = Config.default_options)
    ?(layout = Masm.Assembler.default_layout) program =
  let transformed, manifest = Transform.transform ~options program in
  let image = Masm.Assembler.assemble ~layout transformed in
  { program = transformed; image; manifest; options }

let check_fits ~fram_limit built =
  if
    built.image.Masm.Assembler.code_end > fram_limit
    || built.image.Masm.Assembler.data_end > fram_limit
  then
    raise
      (Does_not_fit
         (Printf.sprintf "code ends 0x%04X, data ends 0x%04X, FRAM ends 0x%04X"
            built.image.Masm.Assembler.code_end
            built.image.Masm.Assembler.data_end fram_limit))

let install built (system : Msp430.Platform.system) =
  Masm.Assembler.load built.image system.Msp430.Platform.memory;
  Runtime.install ~options:built.options ~manifest:built.manifest
    ~image:built.image system

type nvm_usage = {
  application_bytes : int; (* transformed code + stubs (the jump table) *)
  runtime_bytes : int;
  metadata_bytes : int; (* CFI/block tables + hash *)
}

let total_bytes u = u.application_bytes + u.runtime_bytes + u.metadata_bytes

let nvm_usage built =
  let metadata_names =
    [ Config.sym_cfi; Config.sym_cfitab; Config.sym_blocktab; Config.sym_hash ]
  in
  let runtime_names = [ Config.sym_runtime; Config.sym_memcpy ] in
  let app = ref 0 and runtime = ref 0 and metadata = ref 0 in
  List.iter
    (fun info ->
      let n = info.Masm.Assembler.info_name in
      if List.mem n metadata_names then
        metadata := !metadata + info.Masm.Assembler.info_size
      else if List.mem n runtime_names then
        runtime := !runtime + info.Masm.Assembler.info_size
      else if info.Masm.Assembler.info_section = A.Text then
        app := !app + info.Masm.Assembler.info_size)
    built.image.Masm.Assembler.items;
  {
    application_bytes = !app;
    runtime_bytes = !runtime;
    metadata_bytes = !metadata;
  }
