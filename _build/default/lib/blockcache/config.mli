(** Block-cache build options and well-known addresses/symbols for the
    best-effort MSP430 port of Miller & Agarwal's software instruction
    cache the paper compares against (§4). *)

val miss_trap : int
(** CFI stubs branch here. *)

val return_trap : int
(** Transformed RETs branch here; the runtime pops the NVM return
    address and resumes through the cache. *)

val sym_cfi : string
val sym_cfitab : string
val sym_blocktab : string
val sym_hash : string
val sym_runtime : string
val sym_memcpy : string

type options = {
  cache_base : int;
  cache_size : int;
  max_block_bytes : int;
      (** blocks are split so their transformed size never exceeds
          this; the slot size is the largest transformed block *)
  debug_checks : bool;
}

val default_options : options
