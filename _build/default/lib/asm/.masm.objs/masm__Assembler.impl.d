lib/asm/assembler.ml: Ast Bytes Char Format Hashtbl List Msp430 Printf String
