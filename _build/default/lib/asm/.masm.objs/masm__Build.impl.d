lib/asm/build.ml: Ast Msp430
