lib/asm/assembler.mli: Ast Bytes Hashtbl Msp430
