lib/asm/ast.ml: Format List Msp430
