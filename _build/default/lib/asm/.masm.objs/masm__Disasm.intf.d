lib/asm/disasm.mli: Assembler Ast
