lib/asm/disasm.ml: Assembler Ast Bytes Char Hashtbl List Msp430 Printf
