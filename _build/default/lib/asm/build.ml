module Isa = Msp430.Isa

(* Convenience eDSL for writing assembly in OCaml: used by the
   hand-written runtime library routines, startup code and tests. *)

let r4 = 4
let r5 = 5
let r6 = 6
let r7 = 7
let r8 = 8
let r9 = 9
let r10 = 10
let r11 = 11
let r12 = 12
let r13 = 13
let r14 = 14
let r15 = 15

(* Operands *)
let reg r = Ast.Sreg r
let imm n = Ast.Simm (Ast.Num n)
let imml l = Ast.Simm (Ast.Lab l)
let idx k r = Ast.Sidx (Ast.Num k, r)
let ind r = Ast.Sind r
let inc r = Ast.Sinc r
let abs l = Ast.Sabs (Ast.Lab l)
let absn a = Ast.Sabs (Ast.Num a)
let dreg r = Ast.Dreg r
let didx k r = Ast.Didx (Ast.Num k, r)
let dabs l = Ast.Dabs (Ast.Lab l)
let dabsn a = Ast.Dabs (Ast.Num a)

(* Instructions (word-sized unless suffixed _b) *)
let i1 op s d = Ast.Instr (Ast.I1 (op, Isa.W, s, d))
let i1b op s d = Ast.Instr (Ast.I1 (op, Isa.B, s, d))
let mov s d = i1 Isa.MOV s d
let mov_b s d = i1b Isa.MOV s d
let add s d = i1 Isa.ADD s d
let add_b s d = i1b Isa.ADD s d
let addc s d = i1 Isa.ADDC s d
let sub s d = i1 Isa.SUB s d
let subc s d = i1 Isa.SUBC s d
let cmp s d = i1 Isa.CMP s d
let cmp_b s d = i1b Isa.CMP s d
let bit s d = i1 Isa.BIT s d
let bic s d = i1 Isa.BIC s d
let bis s d = i1 Isa.BIS s d
let xor s d = i1 Isa.XOR s d
let and_ s d = i1 Isa.AND s d
let and_b s d = i1b Isa.AND s d

let i2 op s = Ast.Instr (Ast.I2 (op, Isa.W, s))
let rrc s = i2 Isa.RRC s
let rra s = i2 Isa.RRA s
let swpb s = i2 Isa.SWPB s
let sxt s = i2 Isa.SXT s
let push s = i2 Isa.PUSH s
let pop r = mov (inc 1) (dreg r)

let jmp l = Ast.Instr (Ast.J (Isa.JMP, l))
let jeq l = Ast.Instr (Ast.J (Isa.JEQ, l))
let jne l = Ast.Instr (Ast.J (Isa.JNE, l))
let jc l = Ast.Instr (Ast.J (Isa.JC, l))
let jnc l = Ast.Instr (Ast.J (Isa.JNC, l))
let jn l = Ast.Instr (Ast.J (Isa.JN, l))
let jge l = Ast.Instr (Ast.J (Isa.JGE, l))
let jl l = Ast.Instr (Ast.J (Isa.JL, l))

let call l = Ast.Instr (Ast.Call (Ast.Lab l))
let ret = Ast.Instr Ast.Ret
let br l = Ast.Instr (Ast.Br (Ast.Lab l))

(* Common idioms *)
let clr d = mov (imm 0) d
let inc_ d = add (imm 1) d
let dec d = sub (imm 1) d
let tst s = cmp (imm 0) (match s with
  | Ast.Sreg r -> Ast.Dreg r
  | _ -> invalid_arg "tst: register operand expected")
let rla d_as_src d = add d_as_src d (* shift left = add to itself *)

let label l = Ast.Label l
let word_ e = Ast.Word e
let wordn n = Ast.Word (Ast.Num n)
let wordl l = Ast.Word (Ast.Lab l)
let space n = Ast.Space n
let align2 = Ast.Align 2
let comment c = Ast.Comment c
