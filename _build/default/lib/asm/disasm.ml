module Isa = Msp430.Isa
module Word = Msp430.Word
module Encoding = Msp430.Encoding

(* Disassembler: reconstruct a symbolic AST item from assembled bytes.

   This implements the paper's "library instrumentation" workflow (§4):
   precompiled library binaries cannot be instrumented at the source
   level, so they are disassembled, their intra-function branch targets
   and call destinations recovered programmatically, and the result fed
   through the normal instrumentation pass like ordinary assembly. *)

exception Error of string

(* Decode all instructions in [bytes] (function bodies are pure code;
   returns the (offset, instr, size) list). [base] is the address the
   code was assembled at, needed for PC-relative operands. *)
let decode_all ~base bytes =
  let len = Bytes.length bytes in
  let fetch addr =
    let off = addr - base in
    if off < 0 || off + 1 >= len then
      raise (Error (Printf.sprintf "decode runs past item end at 0x%04X" addr));
    Word.make_word
      ~high:(Char.code (Bytes.get bytes (off + 1)))
      ~low:(Char.code (Bytes.get bytes off))
  in
  let rec loop addr acc =
    if addr - base >= len then List.rev acc
    else
      let instr, size = Encoding.decode ~fetch ~addr in
      loop (addr + size) ((addr, instr, size) :: acc)
  in
  loop base []

let local_label name off = Printf.sprintf "%s$L%d" name off

(* Map a concrete instruction back to symbolic AST. [in_range a] tells
   whether [a] is inside the function being disassembled; [sym_of a]
   resolves known global symbols (function entry points). *)
let lift ~name ~in_range ~sym_of ~addr instr =
  let expr_of a =
    if in_range a then Ast.Lab (local_label name a)
    else match sym_of a with Some s -> Ast.Lab s | None -> Ast.Num a
  in
  (* Absolute data references are rebound to their defining symbol when
     one exists, so relinking at a different layout stays correct —
     the programmatic recovery of semantic information the paper's §4
     describes. *)
  let data_expr a =
    match sym_of a with Some s -> Ast.Lab s | None -> Ast.Num a
  in
  let lift_src = function
    | Isa.Sreg r -> Ast.Sreg r
    | Isa.Sidx (x, r) -> Ast.Sidx (Ast.Num x, r)
    | Isa.Sind r -> Ast.Sind r
    | Isa.Sinc r -> Ast.Sinc r
    | Isa.Simm v | Isa.SimmX v -> Ast.Simm (Ast.Num v)
    | Isa.Sabs a -> Ast.Sabs (data_expr a)
    | Isa.Ssym a -> Ast.Ssym (Ast.Num a)
  in
  let lift_dst = function
    | Isa.Dreg r -> Ast.Dreg r
    | Isa.Didx (x, r) -> Ast.Didx (Ast.Num x, r)
    | Isa.Dabs a -> Ast.Dabs (data_expr a)
    | Isa.Dsym a -> Ast.Dsym (Ast.Num a)
  in
  match instr with
  | Isa.I1 (Isa.MOV, Isa.W, Isa.Sinc 1, Isa.Dreg 0) -> Ast.Ret
  | Isa.I1 (Isa.MOV, Isa.W, (Isa.Simm v | Isa.SimmX v), Isa.Dreg 0) ->
      Ast.Br (expr_of v)
  | Isa.I1 (Isa.MOV, Isa.W, Isa.Sabs a, Isa.Dreg 0) -> Ast.Br_ind (Ast.Num a)
  | Isa.I2 (Isa.CALL, _, (Isa.Simm v | Isa.SimmX v)) -> Ast.Call (expr_of v)
  | Isa.I2 (Isa.CALL, _, Isa.Sabs a) -> Ast.Call_ind (Ast.Num a)
  | Isa.I1 (op, sz, s, d) -> Ast.I1 (op, sz, lift_src s, lift_dst d)
  | Isa.I2 (op, sz, s) -> Ast.I2 (op, sz, lift_src s)
  | Isa.Jcc (c, off) ->
      let target = addr + 2 + (2 * off) in
      if not (in_range target) then
        raise (Error (Printf.sprintf "jump escapes function at 0x%04X" addr));
      Ast.J (c, local_label name target)
  | Isa.RETI -> raise (Error "RETI in library code is unsupported")

(* Branch targets referenced by the decoded instruction. *)
let targets ~addr instr =
  match instr with
  | Isa.Jcc (_, off) -> [ addr + 2 + (2 * off) ]
  | Isa.I1 (Isa.MOV, Isa.W, (Isa.Simm v | Isa.SimmX v), Isa.Dreg 0) -> [ v ]
  | _ -> []

(* Disassemble the function [name] out of [image] into a symbolic item
   ready for re-instrumentation. *)
let item_of_image (image : Assembler.t) ~name =
  let addr = Assembler.lookup image name in
  let size = Assembler.item_size image name in
  let seg =
    match
      List.find_opt
        (fun s ->
          addr >= s.Assembler.base
          && addr + size <= s.Assembler.base + Bytes.length s.Assembler.contents)
        image.Assembler.segments
    with
    | Some s -> s
    | None -> raise (Error (Printf.sprintf "no segment holds %s" name))
  in
  let bytes = Bytes.sub seg.Assembler.contents (addr - seg.Assembler.base) size in
  let decoded = decode_all ~base:addr bytes in
  let in_range a = a >= addr && a < addr + size in
  let reverse = Hashtbl.create 17 in
  List.iter
    (fun info ->
      Hashtbl.replace reverse info.Assembler.info_addr info.Assembler.info_name)
    image.Assembler.items;
  let sym_of a = Hashtbl.find_opt reverse a in
  let label_set = Hashtbl.create 17 in
  List.iter
    (fun (a, i, _) ->
      List.iter
        (fun t -> if in_range t then Hashtbl.replace label_set t ())
        (targets ~addr:a i))
    decoded;
  let stmts =
    List.concat_map
      (fun (a, i, _) ->
        let lbl =
          if Hashtbl.mem label_set a then [ Ast.Label (local_label name a) ]
          else []
        in
        lbl @ [ Ast.Instr (lift ~name ~in_range ~sym_of ~addr:a i) ])
      decoded
  in
  Ast.item name stmts
