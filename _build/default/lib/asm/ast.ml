module Isa = Msp430.Isa

(* Symbolic MSP430 assembly: the representation produced by the minic
   compiler and consumed by the SwapRAM / block-cache instrumentation
   passes and the assembler.

   A program is an ordered list of items (functions and data blobs).
   Operands may reference labels; the assembler resolves them. Jump
   statements name labels and are relaxed by the assembler: targets
   within the ±(511/512)-word PC-relative range stay short jumps,
   everything else becomes an absolute branch (conditional jumps get
   the inverted-condition skip of the paper's Figure 6), exactly like
   the msp430-gcc linker behaviour the paper describes in §4. *)

type expr =
  | Num of int
  | Lab of string
  | Lab_off of string * int (* label + byte offset *)
  | Diff of string * string (* label_a - label_b, e.g. function sizes *)

type src =
  | Sreg of Isa.reg
  | Sidx of expr * Isa.reg
  | Sind of Isa.reg
  | Sinc of Isa.reg
  | Simm of expr
  | Sabs of expr
  | Ssym of expr

type dst = Dreg of Isa.reg | Didx of expr * Isa.reg | Dabs of expr | Dsym of expr

type instr =
  | I1 of Isa.op1 * Isa.size * src * dst
  | I2 of Isa.op2 * Isa.size * src
  | J of Isa.cond * string (* jump to label; subject to relaxation *)
  | Br of expr (* absolute branch: MOV #target, PC *)
  | Br_ind of expr (* branch through memory: MOV &slot, PC *)
  | Call of expr (* CALL #target *)
  | Call_ind of expr (* CALL &slot — indirect via a memory word *)
  | Ret (* MOV @SP+, PC *)

type stmt =
  | Label of string
  | Instr of instr
  | Word of expr (* .word *)
  | Byte of int (* .byte *)
  | Ascii of string (* .ascii, no terminator *)
  | Space of int (* .space, zero-filled *)
  | Align of int
  | Comment of string

type section = Text | Data

type item = { name : string; section : section; stmts : stmt list }

type program = item list

let item ?(section = Text) name stmts = { name; section; stmts }

let text_items program = List.filter (fun i -> i.section = Text) program
let data_items program = List.filter (fun i -> i.section = Data) program

(* Rough upper bound on an instruction's encoded size in bytes,
   assuming jumps stay short; the assembler computes exact sizes. *)

let pp_expr fmt = function
  | Num n -> Format.fprintf fmt "%d" n
  | Lab l -> Format.pp_print_string fmt l
  | Lab_off (l, k) -> Format.fprintf fmt "%s%+d" l k
  | Diff (a, b) -> Format.fprintf fmt "%s-%s" a b

let pp_src fmt = function
  | Sreg r -> Isa.pp_reg fmt r
  | Sidx (e, r) -> Format.fprintf fmt "%a(%a)" pp_expr e Isa.pp_reg r
  | Sind r -> Format.fprintf fmt "@%a" Isa.pp_reg r
  | Sinc r -> Format.fprintf fmt "@%a+" Isa.pp_reg r
  | Simm e -> Format.fprintf fmt "#%a" pp_expr e
  | Sabs e -> Format.fprintf fmt "&%a" pp_expr e
  | Ssym e -> pp_expr fmt e

let pp_dst fmt = function
  | Dreg r -> Isa.pp_reg fmt r
  | Didx (e, r) -> Format.fprintf fmt "%a(%a)" pp_expr e Isa.pp_reg r
  | Dabs e -> Format.fprintf fmt "&%a" pp_expr e
  | Dsym e -> pp_expr fmt e

let pp_instr fmt = function
  | I1 (op, sz, s, d) ->
      Format.fprintf fmt "%a%a %a, %a" Isa.pp_op1 op Isa.pp_size sz pp_src s
        pp_dst d
  | I2 (op, sz, s) ->
      Format.fprintf fmt "%a%a %a" Isa.pp_op2 op Isa.pp_size sz pp_src s
  | J (c, l) -> Format.fprintf fmt "%a %s" Isa.pp_cond c l
  | Br e -> Format.fprintf fmt "BR #%a" pp_expr e
  | Br_ind e -> Format.fprintf fmt "BR &%a" pp_expr e
  | Call e -> Format.fprintf fmt "CALL #%a" pp_expr e
  | Call_ind e -> Format.fprintf fmt "CALL &%a" pp_expr e
  | Ret -> Format.pp_print_string fmt "RET"

let pp_stmt fmt = function
  | Label l -> Format.fprintf fmt "%s:" l
  | Instr i -> Format.fprintf fmt "    %a" pp_instr i
  | Word e -> Format.fprintf fmt "    .word %a" pp_expr e
  | Byte b -> Format.fprintf fmt "    .byte %d" b
  | Ascii s -> Format.fprintf fmt "    .ascii %S" s
  | Space n -> Format.fprintf fmt "    .space %d" n
  | Align n -> Format.fprintf fmt "    .align %d" n
  | Comment c -> Format.fprintf fmt "    ; %s" c

let pp_item fmt it =
  Format.fprintf fmt "; %s %s@,"
    (match it.section with Text -> ".text" | Data -> ".data")
    it.name;
  List.iter (fun s -> Format.fprintf fmt "%a@," pp_stmt s) it.stmts

let pp_program fmt prog =
  Format.fprintf fmt "@[<v>";
  List.iter (pp_item fmt) prog;
  Format.fprintf fmt "@]"
