(** Disassembler: reconstruct a symbolic AST item from assembled
    bytes — the paper's §4 "library instrumentation" workflow.
    Intra-function branch targets become local labels, call
    destinations and absolute data references are rebound to their
    defining symbols, and the result can be re-instrumented and
    re-linked like ordinary assembly. *)

exception Error of string

val local_label : string -> int -> string
(** Label generated for an intra-function target (name + address). *)

val item_of_image : Assembler.t -> name:string -> Ast.item
(** Lift the function [name] out of an assembled image. Raises
    {!Error} if decoding runs past the item or a jump escapes it. *)
