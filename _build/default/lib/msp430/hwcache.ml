(* Model of the FRAM controller's hardware read cache.

   The MSP430FR2355 ships a small 2-way set-associative read cache of
   four 8-byte lines in front of the FRAM array (SLASEC4). Reads that
   hit avoid the FRAM wait states; misses fill a line. Writes bypass
   the cache (it is a read cache) but invalidate a matching line so
   that self-modifying code — which the software caching runtimes rely
   on — stays coherent. LRU replacement within each set. *)

type t = {
  ways : int;
  sets : int;
  line_bytes : int;
  tags : int array array; (* [set].(way) = tag, -1 when invalid *)
  lru : int array; (* [set] = way that is least recently used *)
}

let create ?(ways = 2) ?(lines = 4) ?(line_bytes = 8) () =
  let sets = lines / ways in
  {
    ways;
    sets;
    line_bytes;
    tags = Array.init sets (fun _ -> Array.make ways (-1));
    lru = Array.make sets 0;
  }

let set_and_tag t addr =
  let line = addr / t.line_bytes in
  (line mod t.sets, line / t.sets)

let find t set tag =
  let ways = t.tags.(set) in
  let rec loop way = if way >= t.ways then None else if ways.(way) = tag then Some way else loop (way + 1) in
  loop 0

(* Read access; returns true on hit. A miss fills the line. *)
let read t addr =
  let set, tag = set_and_tag t addr in
  match find t set tag with
  | Some way ->
      t.lru.(set) <- 1 - way;
      true
  | None ->
      let victim = t.lru.(set) in
      t.tags.(set).(victim) <- tag;
      t.lru.(set) <- 1 - victim;
      false

(* Write access: invalidate any matching line. *)
let write t addr =
  let set, tag = set_and_tag t addr in
  match find t set tag with
  | Some way -> t.tags.(set).(way) <- -1
  | None -> ()

let flush t =
  Array.iter (fun ways -> Array.fill ways 0 t.ways (-1)) t.tags;
  Array.fill t.lru 0 t.sets 0
