(** Binary encoding and decoding of MSP430 instructions, following
    SLAU445. Extension words (source first, then destination) follow
    the opcode word; symbolic operands store target-minus-location;
    immediates in the constant-generator set encode without an
    extension word, except for CALL and the forced-extension
    {!Isa.src.SimmX} form. [decode] is a left inverse of [encode]. *)

exception Encode_error of string

val encode : addr:int -> Isa.t -> int list
(** Words for an instruction located at [addr]. *)

exception Decode_error of int

val decode : fetch:(int -> int) -> addr:int -> Isa.t * int
(** Decode the instruction at [addr]; [fetch] is called once per
    instruction word in order (so callers can count fetches). Returns
    the instruction and its size in bytes. *)
