(** 16-bit word arithmetic; words are OCaml ints in [0, 0xFFFF]. *)

val mask : int
val mask_byte : int
val of_int : int -> int
val to_signed : int -> int
val byte_of_int : int -> int
val byte_to_signed : int -> int
val low_byte : int -> int
val high_byte : int -> int
val make_word : high:int -> low:int -> int
val add : int -> int -> int
val sub : int -> int -> int
val sign_extend : bits:int -> int -> int
val bit : int -> int -> int
