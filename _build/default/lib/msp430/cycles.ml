(* Instruction cycle counts (unstalled, i.e. before FRAM wait states).

   The model matches the MSP430x2xx family tables (SLAU144) to within
   one cycle: format-I costs decompose as base + source-mode cost +
   destination-mode cost, with a pipeline-flush surcharge when the
   destination is the PC. Wait states for slow memory are accounted
   separately by the memory system, mirroring the paper's distinction
   between "unstalled cycles" (Table 2) and end-to-end time (Fig. 9). *)

let src_cost = function
  | Isa.Sreg _ -> 0
  | Isa.Simm v -> ( match Isa.cg_encoding v with Some _ -> 0 | None -> 1)
  | Isa.Sind _ | Isa.Sinc _ | Isa.SimmX _ -> 1
  | Isa.Sidx _ | Isa.Sabs _ | Isa.Ssym _ -> 2

let dst_cost = function
  | Isa.Dreg _ -> 0
  | Isa.Didx _ | Isa.Dabs _ | Isa.Dsym _ -> 3

let writes_pc = function Isa.Dreg 0 -> true | _ -> false

let of_instr = function
  | Isa.I1 (_, _, src, dst) ->
      let flush = if writes_pc dst then 2 else 0 in
      1 + src_cost src + dst_cost dst + flush
  | Isa.I2 (op, _, src) -> (
      match op with
      | Isa.RRC | Isa.RRA | Isa.SWPB | Isa.SXT -> (
          1 + match src with Isa.Sreg _ -> 0 | Isa.Sind _ | Isa.Sinc _ -> 2 | _ -> 3)
      | Isa.PUSH -> 3 + min 2 (src_cost src)
      | Isa.CALL -> (
          4 + match src with Isa.Sreg _ | Isa.Sind _ -> 0 | _ -> 1))
  | Isa.Jcc _ -> 2
  | Isa.RETI -> 5
