(** Execution statistics: memory-access accounting by region and
    purpose, wait-state/stall accounting, and the dynamic-instruction
    source breakdown used for the paper's Figure 8. *)

(** Where an executed instruction was fetched from. [Handler] covers
    the caching runtimes and [Memcpy] their code-copy loops, both of
    which execute from FRAM. *)
type source = App_fram | App_sram | Handler | Memcpy

val source_index : source -> int
val source_count : int
val source_name : source -> string

type t = {
  mutable unstalled_cycles : int;
  mutable stall_cycles : int;
  mutable instructions : int;
  instr_by_source : int array;
  mutable fram_ifetch : int;
  mutable fram_data_reads : int;
  mutable fram_writes : int;
  mutable fram_read_hits : int;  (** hardware read-cache hits *)
  mutable sram_ifetch : int;
  mutable sram_data_reads : int;
  mutable sram_writes : int;
  mutable periph_accesses : int;
}

val create : unit -> t
val count_instr : t -> source -> unit

val fram_accesses : t -> int
(** Every CPU access to the FRAM region, hit or miss — the quantity
    the paper's Table 2 counts. *)

val sram_accesses : t -> int
val total_cycles : t -> int
val code_accesses : t -> int
val data_accesses : t -> int
val instr_fraction : t -> source -> float
val pp : Format.formatter -> t -> unit
