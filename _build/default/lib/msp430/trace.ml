(* Execution statistics: memory access accounting by region and purpose,
   wait-state/stall accounting, and the dynamic-instruction source
   breakdown used for the paper's Figure 8. *)

(* Where an executed instruction was fetched from. [Handler] covers the
   caching runtimes (SwapRAM miss handler / block-cache runtime) and
   [Memcpy] their code-copy loops, both of which execute from FRAM. *)
type source = App_fram | App_sram | Handler | Memcpy

let source_index = function
  | App_fram -> 0
  | App_sram -> 1
  | Handler -> 2
  | Memcpy -> 3

let source_count = 4

let source_name = function
  | App_fram -> "app-FRAM"
  | App_sram -> "app-SRAM"
  | Handler -> "handler"
  | Memcpy -> "memcpy"

type t = {
  mutable unstalled_cycles : int;
  mutable stall_cycles : int;
  mutable instructions : int;
  instr_by_source : int array;
  (* FRAM accesses, split by purpose and hit/miss in the hardware read
     cache. Every CPU access to the FRAM region counts, as in the
     paper's modified mspdebug. *)
  mutable fram_ifetch : int;
  mutable fram_data_reads : int;
  mutable fram_writes : int;
  mutable fram_read_hits : int;
  mutable sram_ifetch : int;
  mutable sram_data_reads : int;
  mutable sram_writes : int;
  mutable periph_accesses : int;
}

let create () =
  {
    unstalled_cycles = 0;
    stall_cycles = 0;
    instructions = 0;
    instr_by_source = Array.make source_count 0;
    fram_ifetch = 0;
    fram_data_reads = 0;
    fram_writes = 0;
    fram_read_hits = 0;
    sram_ifetch = 0;
    sram_data_reads = 0;
    sram_writes = 0;
    periph_accesses = 0;
  }

let count_instr t source =
  t.instructions <- t.instructions + 1;
  let i = source_index source in
  t.instr_by_source.(i) <- t.instr_by_source.(i) + 1

let fram_accesses t = t.fram_ifetch + t.fram_data_reads + t.fram_writes
let sram_accesses t = t.sram_ifetch + t.sram_data_reads + t.sram_writes
let total_cycles t = t.unstalled_cycles + t.stall_cycles
let code_accesses t = t.fram_ifetch + t.sram_ifetch
let data_accesses t = t.fram_data_reads + t.fram_writes + t.sram_data_reads + t.sram_writes

let instr_fraction t source =
  if t.instructions = 0 then 0.0
  else
    float_of_int t.instr_by_source.(source_index source)
    /. float_of_int t.instructions

let pp fmt t =
  Format.fprintf fmt
    "@[<v>cycles: %d unstalled + %d stalls = %d@,\
     instructions: %d (%s)@,\
     FRAM: %d ifetch, %d data reads (%d cache hits), %d writes@,\
     SRAM: %d ifetch, %d data reads, %d writes@]"
    t.unstalled_cycles t.stall_cycles (total_cycles t) t.instructions
    (String.concat ", "
       (List.map
          (fun s ->
            Printf.sprintf "%s %d" (source_name s)
              t.instr_by_source.(source_index s))
          [ App_fram; App_sram; Handler; Memcpy ]))
    t.fram_ifetch t.fram_data_reads t.fram_read_hits t.fram_writes t.sram_ifetch
    t.sram_data_reads t.sram_writes
