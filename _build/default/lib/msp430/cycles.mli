(** Instruction cycle counts (unstalled, before FRAM wait states),
    matching the MSP430x2xx family tables (SLAU144) to within one
    cycle. Wait states are accounted separately by the memory system,
    mirroring the paper's distinction between unstalled cycles
    (Table 2) and end-to-end time (Fig. 9). *)

val of_instr : Isa.t -> int
