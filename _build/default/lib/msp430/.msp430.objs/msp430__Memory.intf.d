lib/msp430/memory.mli: Bytes Format Trace
