lib/msp430/hwcache.mli:
