lib/msp430/cycles.ml: Isa
