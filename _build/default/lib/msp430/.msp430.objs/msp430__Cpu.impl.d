lib/msp430/cpu.ml: Array Cycles Encoding Hashtbl Isa Memory Trace Word
