lib/msp430/energy.mli: Trace
