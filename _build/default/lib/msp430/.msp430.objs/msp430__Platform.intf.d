lib/msp430/platform.mli: Cpu Energy Memory
