lib/msp430/cpu.mli: Isa Memory Trace
