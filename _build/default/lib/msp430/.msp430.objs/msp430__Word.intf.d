lib/msp430/word.mli:
