lib/msp430/encoding.ml: Format Isa Option Word
