lib/msp430/word.ml:
