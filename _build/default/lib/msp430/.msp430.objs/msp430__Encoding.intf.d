lib/msp430/encoding.mli: Isa
