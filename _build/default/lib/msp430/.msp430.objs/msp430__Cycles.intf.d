lib/msp430/cycles.mli: Isa
