lib/msp430/isa.ml: Format Word
