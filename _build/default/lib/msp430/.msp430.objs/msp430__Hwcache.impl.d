lib/msp430/hwcache.ml: Array
