lib/msp430/trace.mli: Format
