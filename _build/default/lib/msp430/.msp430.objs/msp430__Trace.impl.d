lib/msp430/trace.ml: Array Format List Printf String
