lib/msp430/platform.ml: Cpu Energy Memory Trace
