lib/msp430/memory.ml: Buffer Bytes Char Format Hwcache Trace Word
