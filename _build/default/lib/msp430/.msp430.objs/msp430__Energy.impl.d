lib/msp430/energy.ml: Trace
