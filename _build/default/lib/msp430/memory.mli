(** Simulated memory system: 64 KiB address space with an SRAM region,
    an FRAM region behind the hardware read cache and wait-state
    model, and a few peripherals.

    Every CPU-issued access is counted into a {!Trace.t}; wait states
    accrue as stall cycles. The timing model (DESIGN.md): FRAM reads
    that miss the read cache cost [wait_states] stall cycles, FRAM
    writes always pay them, and the second and subsequent FRAM
    accesses issued by one instruction cost one extra cycle each
    (the access-contention bottleneck of paper §2.2 / Fig. 1). *)

type region = Sram | Fram | Peripheral | Unmapped

exception Fault of string
(** Unmapped or misaligned access, or a software-triggered fault. *)

val fault : ('a, Format.formatter, unit, 'b) format4 -> 'a

type map = { sram_lo : int; sram_hi : int; fram_lo : int; fram_hi : int }

(** Peripheral registers. *)

val uart_tx_addr : int
(** Byte writes accumulate as console output. *)

val gpio_out_addr : int

val halt_addr : int
(** Any write requests a halt. *)

val fault_addr : int
(** Any write raises {!Fault}. *)

val region_of : map -> int -> region

type purpose = Ifetch | Data

type t

val create :
  ?wait_states:int -> ?contention_penalty:int -> map:map -> stats:Trace.t ->
  unit -> t

val stats : t -> Trace.t
val map : t -> map
val halt_requested : t -> bool
val uart_output : t -> string

val begin_instruction : t -> unit
(** Reset the per-instruction FRAM access count (contention model);
    the CPU calls this before each instruction. *)

(** Uncounted accessors for loading images and inspecting results. *)

val peek_byte : t -> int -> int
val poke_byte : t -> int -> int -> unit
val peek_word : t -> int -> int
val poke_word : t -> int -> int -> unit
val load_image : t -> addr:int -> Bytes.t -> unit

(** Counted accesses (these drive the statistics and timing model). *)

val read : t -> purpose:purpose -> width:int -> int -> int
val write : t -> width:int -> int -> int -> unit
val read_word : t -> purpose:purpose -> int -> int
val read_byte : t -> purpose:purpose -> int -> int
val write_word : t -> int -> int -> unit
val write_byte : t -> int -> int -> unit
