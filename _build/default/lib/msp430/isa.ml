(* MSP430 instruction set: registers, addressing modes, opcodes.

   The MSP430 is a 16-bit von Neumann architecture with 16 registers.
   R0 = PC, R1 = SP, R2 = SR / constant generator 1, R3 = constant
   generator 2, R4-R15 general purpose. Instructions come in three
   formats: double-operand (format I), single-operand (format II) and
   relative jumps. See SLAU445 for the authoritative description. *)

type reg = int
(* Registers are 0..15; the named ones below are the architectural roles. *)

let pc = 0
let sp = 1
let sr = 2
let cg = 3

let reg_is_valid r = r >= 0 && r <= 15

let pp_reg fmt r =
  match r with
  | 0 -> Format.pp_print_string fmt "PC"
  | 1 -> Format.pp_print_string fmt "SP"
  | 2 -> Format.pp_print_string fmt "SR"
  | _ -> Format.fprintf fmt "R%d" r

(* Source addressing modes. Immediate, absolute and symbolic are
   encodings of indexed/indirect modes on PC/SR but are kept distinct
   here because they assemble, print and cost differently. *)
type src =
  | Sreg of reg (* Rn *)
  | Sidx of int * reg (* X(Rn) *)
  | Sind of reg (* @Rn *)
  | Sinc of reg (* @Rn+ *)
  | Simm of int (* #imm, i.e. @PC+; constant generator used when possible *)
  | SimmX of int (* #imm forced to an extension word; only meaningful for
                    values the constant generator could otherwise encode *)
  | Sabs of int (* &addr, i.e. X(SR) *)
  | Ssym of int (* addr, i.e. X(PC), PC-relative data access *)

type dst =
  | Dreg of reg (* Rn *)
  | Didx of int * reg (* X(Rn) *)
  | Dabs of int (* &addr *)
  | Dsym of int (* addr, PC-relative *)

(* Format I: double operand. *)
type op1 =
  | MOV
  | ADD
  | ADDC
  | SUBC
  | SUB
  | CMP
  | DADD
  | BIT
  | BIC
  | BIS
  | XOR
  | AND

(* Format II: single operand. RETI takes no operand but shares the
   format. *)
type op2 = RRC | SWPB | RRA | SXT | PUSH | CALL

type cond = JNE | JEQ | JNC | JC | JN | JGE | JL | JMP

type size = W | B

type t =
  | I1 of op1 * size * src * dst
  | I2 of op2 * size * src
  | Jcc of cond * int (* signed word offset, -511..512; PC' = PC + 2 + 2*off *)
  | RETI

let op1_code = function
  | MOV -> 0x4
  | ADD -> 0x5
  | ADDC -> 0x6
  | SUBC -> 0x7
  | SUB -> 0x8
  | CMP -> 0x9
  | DADD -> 0xA
  | BIT -> 0xB
  | BIC -> 0xC
  | BIS -> 0xD
  | XOR -> 0xE
  | AND -> 0xF

let op1_of_code = function
  | 0x4 -> Some MOV
  | 0x5 -> Some ADD
  | 0x6 -> Some ADDC
  | 0x7 -> Some SUBC
  | 0x8 -> Some SUB
  | 0x9 -> Some CMP
  | 0xA -> Some DADD
  | 0xB -> Some BIT
  | 0xC -> Some BIC
  | 0xD -> Some BIS
  | 0xE -> Some XOR
  | 0xF -> Some AND
  | _ -> None

let op2_code = function
  | RRC -> 0
  | SWPB -> 1
  | RRA -> 2
  | SXT -> 3
  | PUSH -> 4
  | CALL -> 5

let op2_of_code = function
  | 0 -> Some RRC
  | 1 -> Some SWPB
  | 2 -> Some RRA
  | 3 -> Some SXT
  | 4 -> Some PUSH
  | 5 -> Some CALL
  | _ -> None

let cond_code = function
  | JNE -> 0
  | JEQ -> 1
  | JNC -> 2
  | JC -> 3
  | JN -> 4
  | JGE -> 5
  | JL -> 6
  | JMP -> 7

let cond_of_code = function
  | 0 -> JNE
  | 1 -> JEQ
  | 2 -> JNC
  | 3 -> JC
  | 4 -> JN
  | 5 -> JGE
  | 6 -> JL
  | _ -> JMP

let pp_op1 fmt op =
  let s =
    match op with
    | MOV -> "MOV"
    | ADD -> "ADD"
    | ADDC -> "ADDC"
    | SUBC -> "SUBC"
    | SUB -> "SUB"
    | CMP -> "CMP"
    | DADD -> "DADD"
    | BIT -> "BIT"
    | BIC -> "BIC"
    | BIS -> "BIS"
    | XOR -> "XOR"
    | AND -> "AND"
  in
  Format.pp_print_string fmt s

let pp_op2 fmt op =
  let s =
    match op with
    | RRC -> "RRC"
    | SWPB -> "SWPB"
    | RRA -> "RRA"
    | SXT -> "SXT"
    | PUSH -> "PUSH"
    | CALL -> "CALL"
  in
  Format.pp_print_string fmt s

let pp_cond fmt c =
  let s =
    match c with
    | JNE -> "JNE"
    | JEQ -> "JEQ"
    | JNC -> "JNC"
    | JC -> "JC"
    | JN -> "JN"
    | JGE -> "JGE"
    | JL -> "JL"
    | JMP -> "JMP"
  in
  Format.pp_print_string fmt s

let pp_src fmt = function
  | Sreg r -> pp_reg fmt r
  | Sidx (x, r) -> Format.fprintf fmt "%d(%a)" (Word.to_signed x) pp_reg r
  | Sind r -> Format.fprintf fmt "@%a" pp_reg r
  | Sinc r -> Format.fprintf fmt "@%a+" pp_reg r
  | Simm v | SimmX v -> Format.fprintf fmt "#0x%04X" (Word.of_int v)
  | Sabs a -> Format.fprintf fmt "&0x%04X" (Word.of_int a)
  | Ssym a -> Format.fprintf fmt "0x%04X" (Word.of_int a)

let pp_dst fmt = function
  | Dreg r -> pp_reg fmt r
  | Didx (x, r) -> Format.fprintf fmt "%d(%a)" (Word.to_signed x) pp_reg r
  | Dabs a -> Format.fprintf fmt "&0x%04X" (Word.of_int a)
  | Dsym a -> Format.fprintf fmt "0x%04X" (Word.of_int a)

let pp_size fmt = function
  | W -> ()
  | B -> Format.pp_print_string fmt ".B"

let pp fmt = function
  | I1 (op, sz, s, d) ->
      Format.fprintf fmt "%a%a %a, %a" pp_op1 op pp_size sz pp_src s pp_dst d
  | I2 (op, sz, s) -> Format.fprintf fmt "%a%a %a" pp_op2 op pp_size sz pp_src s
  | Jcc (c, off) -> Format.fprintf fmt "%a %+d" pp_cond c off
  | RETI -> Format.pp_print_string fmt "RETI"

let to_string i = Format.asprintf "%a" pp i

(* Constant-generator values: (As, reg) encodings that produce a
   constant without an extension word. *)
let constant_generator_value ~as_bits ~reg =
  match (reg, as_bits) with
  | 2, 2 -> Some 4
  | 2, 3 -> Some 8
  | 3, 0 -> Some 0
  | 3, 1 -> Some 1
  | 3, 2 -> Some 2
  | 3, 3 -> Some 0xFFFF
  | _ -> None

(* The immediates that the constant generator can produce. *)
let cg_encoding imm =
  match Word.of_int imm with
  | 0 -> Some (0, 3)
  | 1 -> Some (1, 3)
  | 2 -> Some (2, 3)
  | 4 -> Some (2, 2)
  | 8 -> Some (3, 2)
  | 0xFFFF -> Some (3, 3)
  | _ -> None

(* Number of 16-bit extension words an operand contributes. *)
let src_ext_words = function
  | Sreg _ | Sind _ | Sinc _ -> 0
  | Sidx _ | Sabs _ | Ssym _ | SimmX _ -> 1
  | Simm v -> ( match cg_encoding v with Some _ -> 0 | None -> 1)

let dst_ext_words = function Dreg _ -> 0 | Didx _ | Dabs _ | Dsym _ -> 1

(* Encoded size in bytes. *)
let size_bytes = function
  | I1 (_, _, s, d) -> 2 + (2 * src_ext_words s) + (2 * dst_ext_words d)
  | I2 (CALL, _, Simm _) -> 4 (* CALL #imm never uses the constant generator *)
  | I2 (_, _, s) -> 2 + (2 * src_ext_words s)
  | Jcc _ -> 2
  | RETI -> 2

let equal (a : t) (b : t) = a = b
