(** Model of the FRAM controller's hardware read cache: 2-way
    set-associative, four 8-byte lines by default (the MSP430FR2355's
    configuration). Reads that hit avoid the FRAM wait states; writes
    bypass the cache but invalidate a matching line so that the
    self-modifying software caches stay coherent. LRU within a set. *)

type t

val create : ?ways:int -> ?lines:int -> ?line_bytes:int -> unit -> t

val read : t -> int -> bool
(** Read access at an address; [true] on hit. A miss fills the line. *)

val write : t -> int -> unit
(** Write access: invalidate any matching line. *)

val flush : t -> unit
