(* 16-bit word arithmetic. Words are stored as OCaml ints in [0, 0xFFFF]. *)

let mask = 0xFFFF
let mask_byte = 0xFF

let of_int v = v land mask
let to_signed v = if v land 0x8000 <> 0 then v - 0x10000 else v

let byte_of_int v = v land mask_byte
let byte_to_signed v = if v land 0x80 <> 0 then v - 0x100 else v

let low_byte v = v land mask_byte
let high_byte v = (v lsr 8) land mask_byte
let make_word ~high ~low = ((high land mask_byte) lsl 8) lor (low land mask_byte)

let add a b = (a + b) land mask
let sub a b = (a - b) land mask

(* Sign extend a [bits]-wide field. *)
let sign_extend ~bits v =
  let sign = 1 lsl (bits - 1) in
  if v land sign <> 0 then v - (1 lsl bits) else v

let bit v i = (v lsr i) land 1
