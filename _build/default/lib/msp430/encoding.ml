(* Binary encoding and decoding of MSP430 instructions.

   Encoding follows SLAU445:
   - format I : [op:4][srcreg:4][Ad:1][B/W:1][As:2][dstreg:4]
   - format II: [000100][op:3][B/W:1][As:2][reg:4]
   - jumps    : [001][cond:3][offset:10]
   Extension words (src first, then dst) follow the opcode word.

   Symbolic (PC-relative data) operands store [target - addr_of_ext_word];
   the CPU reconstructs the target by adding the extension word's own
   address. Immediates in the constant-generator set {0,1,2,4,8,-1} encode
   without an extension word, except for CALL which always takes one. *)

exception Encode_error of string

let err fmt = Format.kasprintf (fun s -> raise (Encode_error s)) fmt

(* (As bits, register, extension word option). [ext_addr] is the address
   the extension word will occupy, needed for symbolic mode. *)
let encode_src ~allow_cg ~ext_addr src =
  match src with
  | Isa.Sreg r ->
      if r = Isa.cg then err "R3 cannot be used as a register source";
      (0, r, None)
  | Isa.Sidx (x, r) ->
      if r = Isa.pc || r = Isa.sr || r = Isa.cg then
        err "indexed mode requires a general register";
      (1, r, Some (Word.of_int x))
  | Isa.Sind r ->
      if r = Isa.pc || r = Isa.sr || r = Isa.cg then
        err "indirect mode requires a general register";
      (2, r, None)
  | Isa.Sinc r ->
      if r = Isa.pc || r = Isa.sr || r = Isa.cg then
        err "indirect-autoincrement mode requires a general register";
      (3, r, None)
  | Isa.Simm v -> (
      match if allow_cg then Isa.cg_encoding v else None with
      | Some (as_bits, reg) -> (as_bits, reg, None)
      | None -> (3, Isa.pc, Some (Word.of_int v)))
  | Isa.SimmX v -> (3, Isa.pc, Some (Word.of_int v))
  | Isa.Sabs a -> (1, Isa.sr, Some (Word.of_int a))
  | Isa.Ssym a -> (1, Isa.pc, Some (Word.sub (Word.of_int a) ext_addr))

(* (Ad bit, register, extension word option). *)
let encode_dst ~ext_addr dst =
  match dst with
  | Isa.Dreg r ->
      if r = Isa.cg then err "R3 cannot be a destination";
      (0, r, None)
  | Isa.Didx (x, r) ->
      if r = Isa.pc || r = Isa.sr || r = Isa.cg then
        err "indexed destination requires a general register";
      (1, r, Some (Word.of_int x))
  | Isa.Dabs a -> (1, Isa.sr, Some (Word.of_int a))
  | Isa.Dsym a -> (1, Isa.pc, Some (Word.sub (Word.of_int a) ext_addr))

let bw_bit = function Isa.W -> 0 | Isa.B -> 1

(* Encode an instruction located at [addr]; returns the list of words. *)
let encode ~addr instr =
  match instr with
  | Isa.I1 (op, sz, src, dst) ->
      let src_ext_addr = Word.add addr 2 in
      let as_bits, src_reg, src_ext =
        encode_src ~allow_cg:true ~ext_addr:src_ext_addr src
      in
      let dst_ext_addr =
        Word.add addr (2 + match src_ext with Some _ -> 2 | None -> 0)
      in
      let ad_bit, dst_reg, dst_ext = encode_dst ~ext_addr:dst_ext_addr dst in
      let w =
        (Isa.op1_code op lsl 12)
        lor (src_reg lsl 8)
        lor (ad_bit lsl 7)
        lor (bw_bit sz lsl 6)
        lor (as_bits lsl 4)
        lor dst_reg
      in
      (w :: Option.to_list src_ext) @ Option.to_list dst_ext
  | Isa.I2 (op, sz, src) ->
      let allow_cg = op <> Isa.CALL in
      let as_bits, src_reg, src_ext =
        encode_src ~allow_cg ~ext_addr:(Word.add addr 2) src
      in
      let w =
        (0b000100 lsl 10)
        lor (Isa.op2_code op lsl 7)
        lor (bw_bit sz lsl 6)
        lor (as_bits lsl 4)
        lor src_reg
      in
      w :: Option.to_list src_ext
  | Isa.Jcc (c, off) ->
      if off < -512 || off > 511 then err "jump offset %d out of range" off;
      let w = (0b001 lsl 13) lor (Isa.cond_code c lsl 10) lor (off land 0x3FF) in
      [ w ]
  | Isa.RETI -> [ 0x1300 ]

exception Decode_error of int (* opcode word *)

(* Reconstruct a source operand. [fetch_ext] pulls the next extension
   word and returns (value, its address). *)
let decode_src ~allow_cg ~as_bits ~reg ~fetch_ext =
  match Isa.constant_generator_value ~as_bits ~reg with
  | Some v -> Isa.Simm v
  | None -> (
      match as_bits with
      | 0 -> Isa.Sreg reg
      | 1 ->
          let v, ext_addr = fetch_ext () in
          if reg = Isa.sr then Isa.Sabs v
          else if reg = Isa.pc then Isa.Ssym (Word.add v ext_addr)
          else Isa.Sidx (v, reg)
      | 2 -> Isa.Sind reg
      | _ ->
          if reg = Isa.pc then
            let v, _ = fetch_ext () in
            (* A CG-expressible value arriving via an extension word must
               have been a forced-extension immediate — keep encode/decode
               a bijection. CALL never uses the constant generator. *)
            if allow_cg && Isa.cg_encoding v <> None then Isa.SimmX v
            else Isa.Simm v
          else Isa.Sinc reg)

let decode_dst ~ad_bit ~reg ~fetch_ext =
  if ad_bit = 0 then Isa.Dreg reg
  else
    let v, ext_addr = fetch_ext () in
    if reg = Isa.sr then Isa.Dabs v
    else if reg = Isa.pc then Isa.Dsym (Word.add v ext_addr)
    else Isa.Didx (v, reg)

(* Decode the instruction at [addr]. [fetch] reads the word at a given
   address; it is called once per instruction word in order, so callers
   can count fetches. Returns the instruction and its size in bytes. *)
let decode ~fetch ~addr =
  let next = ref (Word.add addr 2) in
  let w0 = fetch addr in
  let fetch_ext () =
    let a = !next in
    let v = fetch a in
    next := Word.add a 2;
    (v, a)
  in
  let instr =
    if w0 lsr 13 = 0b001 then
      let c = Isa.cond_of_code ((w0 lsr 10) land 0x7) in
      Isa.Jcc (c, Word.sign_extend ~bits:10 (w0 land 0x3FF))
    else if w0 lsr 10 = 0b000100 then begin
      if w0 = 0x1300 then Isa.RETI
      else
        let opc = (w0 lsr 7) land 0x7 in
        match Isa.op2_of_code opc with
        | None -> raise (Decode_error w0)
        | Some op ->
            let sz = if (w0 lsr 6) land 1 = 1 then Isa.B else Isa.W in
            let as_bits = (w0 lsr 4) land 0x3 in
            let reg = w0 land 0xF in
            let allow_cg = op <> Isa.CALL in
            Isa.I2 (op, sz, decode_src ~allow_cg ~as_bits ~reg ~fetch_ext)
    end
    else
      match Isa.op1_of_code (w0 lsr 12) with
      | None -> raise (Decode_error w0)
      | Some op ->
          let src_reg = (w0 lsr 8) land 0xF in
          let ad_bit = (w0 lsr 7) land 1 in
          let sz = if (w0 lsr 6) land 1 = 1 then Isa.B else Isa.W in
          let as_bits = (w0 lsr 4) land 0x3 in
          let dst_reg = w0 land 0xF in
          let src = decode_src ~allow_cg:true ~as_bits ~reg:src_reg ~fetch_ext in
          let dst = decode_dst ~ad_bit ~reg:dst_reg ~fetch_ext in
          Isa.I1 (op, sz, src, dst)
  in
  (instr, Word.sub !next addr)
