(* Intermittent computing demo: the deployments that motivate NVRAM
   systems (paper §1/§2.2) lose power constantly — batteryless nodes
   harvest energy, compute in bursts, and rely on FRAM to carry state
   across outages while SRAM contents evaporate.

   This example runs an idempotent windowed workload whose progress
   journal lives in FRAM, kills the power every few hundred thousand
   cycles (clearing SRAM — including every cached function — and
   resetting the CPU), reboots through Swapram.Runtime.reboot, and
   shows that the digest matches an uninterrupted run.

   Run with: dune exec examples/intermittent.exe *)

module Platform = Msp430.Platform
module Cpu = Msp430.Cpu
module Memory = Msp430.Memory
module Isa = Msp430.Isa
module Trace = Msp430.Trace

(* Idempotent structure: each window's result goes to its own FRAM
   slot and `progress` only advances after the slot is written, so
   replaying a half-finished window is harmless. *)
let firmware =
  Workloads.Bench_def.prelude
  ^ {|
int progress;          /* highest fully-committed window, in FRAM */
int results[32];       /* per-window results journal, in FRAM */

int window_digest(int w) {
  unsigned h = 5381 + w;
  int i;
  for (i = 0; i < 250; i++) {
    h = ((h << 5) + h) ^ ((w * 193 + i) & 0xFF);
    if (h & 1) h = h ^ 0x1021;
  }
  return h & 0x7FFF;
}

int main(void) {
  while (progress < 32) {
    results[progress] = window_digest(progress);
    progress = progress + 1;
  }
  unsigned digest = 0;
  int i;
  for (i = 0; i < 32; i++) digest = (digest << 1 | digest >> 15) ^ results[i];
  print_hex(digest);
  return digest;
}
|}

let fram_top = Platform.fram_base + Platform.fram_size

let boot system image entry =
  Cpu.set_reg system.Platform.cpu Isa.sp fram_top;
  Cpu.set_reg system.Platform.cpu Isa.pc (Masm.Assembler.lookup image entry)

(* Run to completion with the power failing every [burst] instructions.

   Forward-progress condition (the classic constraint from the
   intermittent-computing literature the paper cites — Hibernus,
   Alpaca, Clank): a burst must be long enough to redo one window from
   a cold boot, including re-caching the hot functions. Below that,
   every burst replays the identical prefix and dies before the
   commit — a deterministic livelock. [max_reboots] guards the demo
   against such configurations. *)
let run_intermittent ~burst =
  let program = Minic.Driver.program_of_source firmware in
  let built = Swapram.Pipeline.build program in
  let image = built.Swapram.Pipeline.image in
  let system = Platform.create Platform.Mhz24 in
  let runtime = Swapram.Pipeline.install built system in
  boot system image Minic.Driver.entry_name;
  let reboots = ref 0 in
  let max_reboots = 2000 in
  let rec power_cycle () =
    match Cpu.run ~fuel:burst system.Platform.cpu with
    | Cpu.Halted -> ()
    | Cpu.Fuel_exhausted ->
        (* power failure: SRAM evaporates, FRAM (data + journal)
           survives; reboot the runtime and restart from the vector *)
        incr reboots;
        if !reboots > max_reboots then
          failwith
            "no forward progress: the energy burst is too short to complete one window";
        for a = Platform.sram_base to Platform.sram_base + Platform.sram_size - 1
        do
          Memory.poke_byte system.Platform.memory a 0xFF
        done;
        Swapram.Runtime.reboot runtime ~image;
        boot system image Minic.Driver.entry_name;
        power_cycle ()
  in
  power_cycle ();
  ( Cpu.reg system.Platform.cpu 12,
    Memory.uart_output system.Platform.memory,
    !reboots,
    Swapram.Runtime.stats runtime )

let () =
  let uninterrupted, out0, _, _ = run_intermittent ~burst:max_int in
  Printf.printf "uninterrupted run : digest %04x (uart %s)\n" uninterrupted out0;
  List.iter
    (fun burst ->
      let digest, _, reboots, stats = run_intermittent ~burst in
      Printf.printf
        "power every %7d instrs: digest %04x, %3d reboots, %4d cache misses %s\n"
        burst digest reboots stats.Swapram.Runtime.misses
        (if digest = uninterrupted then "OK" else "MISMATCH");
      assert (digest = uninterrupted))
    [ 400_000; 100_000; 40_000 ];
  print_endline
    "\nFRAM keeps the journal across outages; the SRAM code cache is\n\
     rebuilt from NVM after every reboot (Swapram.Runtime.reboot resets\n\
     the redirection and relocation metadata to their boot values)."
