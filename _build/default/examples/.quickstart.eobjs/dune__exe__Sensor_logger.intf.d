examples/sensor_logger.mli:
