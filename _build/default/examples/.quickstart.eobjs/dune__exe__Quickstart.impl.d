examples/quickstart.ml: Masm Minic Msp430 Printf Swapram
