examples/quickstart.mli:
