examples/split_memory.ml: Experiments List Msp430 Printf Swapram Workloads
