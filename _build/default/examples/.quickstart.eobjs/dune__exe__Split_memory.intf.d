examples/split_memory.mli:
