examples/cache_explorer.ml: Array Experiments List Msp430 Option Printf Swapram Sys Workloads
