examples/intermittent.mli:
