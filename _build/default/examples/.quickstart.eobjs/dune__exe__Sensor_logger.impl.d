examples/sensor_logger.ml: Blockcache Experiments Msp430 Printf Swapram Workloads
