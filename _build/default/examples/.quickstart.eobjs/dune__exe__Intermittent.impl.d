examples/intermittent.ml: List Masm Minic Msp430 Printf Swapram Workloads
