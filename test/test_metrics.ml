(* Time-series metrics, miss-ratio-curve and perf-gate tests.

   The windowing invariant mirrors the profiler's: windows close only
   on event boundaries, so per-window counters partition the run
   exactly — summed over all windows they equal the aggregate trace
   totals, and window energies sum to the whole-run energy report.

   The MRC invariant is the PR's acceptance bar: the reuse-distance
   tracker's predicted miss rate at the configured cache size must
   agree with the miss rate the SwapRAM runtime actually measured,
   because both count over the same reference stream (calls to
   cacheable functions) at the same granularity (whole functions). *)

module Trace = Msp430.Trace
module Energy = Msp430.Energy
module Toolchain = Experiments.Toolchain
module Metrics = Observe.Metrics
module Json = Observe.Json

let bench_of_source source =
  {
    Workloads.Bench_def.name = "prop";
    short = "PRP";
    source = (fun _ -> source);
    fits_data_in_sram = true;
  }

let small_cache = 512

let small_swapram =
  Toolchain.Swapram_cache
    {
      Swapram.Config.default_options with
      Swapram.Config.cache_size = small_cache;
      debug_checks = true;
    }

let small_block =
  Toolchain.Block_cache
    {
      Blockcache.Config.default_options with
      Blockcache.Config.cache_size = small_cache;
      debug_checks = true;
    }

(* Short windows so even small generated programs span several. *)
let observe =
  {
    Toolchain.default_observe with
    Toolchain.metrics_window = 4096;
    metrics_buckets = 16;
  }

let run_observed ~caching source =
  let config =
    { (Toolchain.default_config (bench_of_source source)) with Toolchain.caching }
  in
  match Toolchain.run ~observe config with
  | Toolchain.Completed r -> r
  | Toolchain.Crashed o ->
      failwith ("observed run did not halt: " ^ Msp430.Cpu.outcome_name o)
  | Toolchain.Did_not_fit msg -> failwith ("did not fit: " ^ msg)

let metrics_of (r : Toolchain.result) =
  match r.Toolchain.observation with
  | Some { Toolchain.o_metrics = Some m; _ } -> m
  | _ -> failwith "metrics sampler was not attached"

let check_window_conservation (r : Toolchain.result) =
  let m = metrics_of r in
  let stats = r.Toolchain.stats in
  let ws = Metrics.windows m in
  let fail fmt = QCheck2.Test.fail_reportf fmt in
  let sum f = List.fold_left (fun acc w -> acc + f w) 0 ws in
  let fram_reads = stats.Trace.fram_ifetch + stats.Trace.fram_data_reads in
  if sum (fun w -> w.Metrics.w_unstalled) <> stats.Trace.unstalled_cycles then
    fail "unstalled: windows %d vs trace %d"
      (sum (fun w -> w.Metrics.w_unstalled))
      stats.Trace.unstalled_cycles
  else if sum (fun w -> w.Metrics.w_stall) <> stats.Trace.stall_cycles then
    fail "stall: windows %d vs trace %d"
      (sum (fun w -> w.Metrics.w_stall))
      stats.Trace.stall_cycles
  else if sum (fun w -> w.Metrics.w_instrs) <> stats.Trace.instructions then
    fail "instrs: windows %d vs trace %d"
      (sum (fun w -> w.Metrics.w_instrs))
      stats.Trace.instructions
  else if
    sum (fun w -> w.Metrics.w_fram_read_hits) <> stats.Trace.fram_read_hits
  then fail "fram read hits do not partition"
  else if
    sum (fun w -> w.Metrics.w_fram_read_misses)
    <> fram_reads - stats.Trace.fram_read_hits
  then fail "fram read misses do not partition"
  else if sum (fun w -> w.Metrics.w_fram_writes) <> stats.Trace.fram_writes
  then fail "fram writes do not partition"
  else if
    sum (fun w -> w.Metrics.w_sram_accesses) <> Trace.sram_accesses stats
  then fail "sram accesses do not partition"
  else if
    (* every window's occupancy reconstruction stays inside the
       configured cache *)
    not
      (List.for_all
         (fun w ->
           w.Metrics.w_occupancy >= 0 && w.Metrics.w_occupancy <= small_cache)
         ws)
  then fail "occupancy out of [0, cache_size]"
  else begin
    let windows_energy =
      List.fold_left
        (fun acc w -> acc +. (Metrics.window_energy m w).Metrics.e_total)
        0.0 ws
    in
    let whole =
      (Energy.evaluate Energy.point_24mhz stats).Energy.energy_nj
    in
    let rel = abs_float (windows_energy -. whole) /. Float.max 1.0 whole in
    if rel > 1e-9 then
      fail "energy: windows %.6f nJ vs whole-run %.6f nJ (rel %.2e)"
        windows_energy whole rel
    else true
  end

let prop_window_conservation_swapram =
  QCheck2.Test.make ~count:30
    ~name:"windows partition cycles/accesses/energy exactly (swapram)"
    ~print:(fun s -> s)
    Test_differential.gen_program
    (fun source ->
      check_window_conservation (run_observed ~caching:small_swapram source))

let prop_window_conservation_block =
  QCheck2.Test.make ~count:20
    ~name:"windows partition cycles/accesses/energy exactly (block cache)"
    ~print:(fun s -> s)
    Test_differential.gen_program
    (fun source ->
      check_window_conservation (run_observed ~caching:small_block source))

(* Per-window energy split components must sum to the window total
   (the model is linear). *)
let prop_energy_split =
  QCheck2.Test.make ~count:15
    ~name:"window energy split sums to window total" ~print:(fun s -> s)
    Test_differential.gen_program
    (fun source ->
      let r = run_observed ~caching:small_swapram source in
      let m = metrics_of r in
      List.for_all
        (fun w ->
          let e = Metrics.window_energy m w in
          let parts =
            e.Metrics.e_cpu +. e.Metrics.e_fram_read +. e.Metrics.e_fram_write
            +. e.Metrics.e_sram
          in
          abs_float (parts -. e.Metrics.e_total)
          <= 1e-9 *. Float.max 1.0 e.Metrics.e_total)
        (Metrics.windows m))

(* --- Json parser round-trip -------------------------------------------- *)

(* Restricted to values the emitter renders canonically (no floats —
   their textual form is lossy by design). *)
let gen_json =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        let scalar =
          oneof
            [
              return Json.Null;
              map (fun b -> Json.Bool b) bool;
              map (fun i -> Json.Int i) (int_range (-1000000) 1000000);
              map (fun s -> Json.String s) (string_size (int_range 0 12));
            ]
        in
        if n <= 0 then scalar
        else
          frequency
            [
              (2, scalar);
              ( 1,
                map (fun xs -> Json.List xs)
                  (list_size (int_range 0 4) (self (n / 2))) );
              ( 1,
                map
                  (fun kvs -> Json.Obj kvs)
                  (list_size (int_range 0 4)
                     (pair (string_size (int_range 0 8)) (self (n / 2)))) );
            ]))

let prop_json_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"json parse inverts emission"
    ~print:(fun v -> Json.to_string v)
    gen_json
    (fun v ->
      match Json.parse (Json.to_string v) with
      | Ok v' when v' = v -> true
      | Ok v' ->
          QCheck2.Test.fail_reportf "parsed %s" (Json.to_string v')
      | Error e -> QCheck2.Test.fail_reportf "parse error: %s" e)

let prop_json_roundtrip_pretty =
  QCheck2.Test.make ~count:200 ~name:"json parse inverts pretty emission"
    ~print:(fun v -> Json.to_string_pretty v)
    gen_json
    (fun v ->
      match Json.parse (Json.to_string_pretty v) with
      | Ok v' -> v' = v
      | Error e -> QCheck2.Test.fail_reportf "parse error: %s" e)

(* --- Deterministic checks: MRC agreement and the perf gate ------------- *)

let swapram_run bench =
  let config =
    {
      (Toolchain.default_config bench) with
      Toolchain.caching = Toolchain.Swapram_cache Swapram.Config.default_options;
    }
  in
  match Toolchain.run ~observe:Toolchain.metrics_observe config with
  | Toolchain.Completed r -> r
  | _ -> failwith (bench.Workloads.Bench_def.name ^ " did not complete")

let mrc_agreement_case bench =
  Alcotest.test_case
    (Printf.sprintf "MRC predicted ~ measured (%s)"
       bench.Workloads.Bench_def.name)
    `Slow
    (fun () ->
      let r = swapram_run bench in
      let m = metrics_of r in
      let reuse = Option.get (Metrics.reuse_tracker m) in
      let budget = (Metrics.spec m).Metrics.config_budget in
      Alcotest.(check bool) "budget configured" true (budget > 0);
      let predicted = Observe.Reuse.predicted_miss_rate reuse ~budget in
      let measured = Observe.Reuse.measured_miss_rate reuse in
      (* the runtime's own miss counter covers the same calls *)
      let rt_misses =
        match r.Toolchain.swapram_stats with
        | Some s -> s.Swapram.Runtime.misses
        | None -> -1
      in
      Alcotest.(check int)
        "measured misses = runtime misses" rt_misses
        (Observe.Reuse.measured_misses reuse);
      if abs_float (predicted -. measured) > 0.02 then
        Alcotest.failf "predicted %.4f vs measured %.4f (diff > 2 points)"
          predicted measured)

let mrc_cases =
  List.map mrc_agreement_case
    [
      Workloads.Suite.crc;
      Workloads.Suite.bitcount;
      Workloads.Suite.rc4;
      Workloads.Suite.stringsearch;
    ]

(* Perf gate: a report compared to itself is clean; an injected cycle
   regression beyond threshold trips it. *)
let tiny_report =
  lazy
    (Experiments.Bench_report.compute ~benchmarks:[ Workloads.Suite.crc ] ())

let scale_cycles factor json =
  let rec go = function
    | Json.Obj kvs ->
        Json.Obj
          (List.map
             (fun (k, v) ->
               match (k, v) with
               | "cycles", Json.Int c ->
                   (k, Json.Int (int_of_float (float_of_int c *. factor)))
               | _ -> (k, go v))
             kvs)
    | Json.List xs -> Json.List (List.map go xs)
    | v -> v
  in
  go json

let gate_cases =
  [
    Alcotest.test_case "compare: identical reports pass" `Slow (fun () ->
        let report = Lazy.force tiny_report in
        let outcome =
          Experiments.Compare.compare_json ~old_report:report ~new_report:report
            ()
        in
        Alcotest.(check (list string)) "no errors" []
          outcome.Experiments.Compare.errors;
        Alcotest.(check int)
          "no regressions" 0
          (List.length (Experiments.Compare.regressions outcome));
        Alcotest.(check bool)
          "but metrics were compared" true
          (outcome.Experiments.Compare.findings <> []));
    Alcotest.test_case "compare: 15% cycle regression trips the gate" `Slow
      (fun () ->
        let report = Lazy.force tiny_report in
        let slower = scale_cycles 1.15 report in
        let outcome =
          Experiments.Compare.compare_json ~old_report:report ~new_report:slower
            ()
        in
        let regs = Experiments.Compare.regressions outcome in
        Alcotest.(check bool) "regressions found" true (regs <> []);
        Alcotest.(check bool)
          "cycles flagged" true
          (List.exists
             (fun f -> f.Experiments.Compare.f_metric = "cycles")
             regs);
        (* improvements never trip it *)
        let faster = scale_cycles 0.9 report in
        let outcome' =
          Experiments.Compare.compare_json ~old_report:report ~new_report:faster
            ()
        in
        Alcotest.(check int)
          "speedup is not a regression" 0
          (List.length (Experiments.Compare.regressions outcome')));
    Alcotest.test_case "compare: slim candidate gets a clear error" `Slow
      (fun () ->
        let report = Lazy.force tiny_report in
        let slim =
          Experiments.Bench_report.compute
            ~benchmarks:[ Workloads.Suite.crc ] ~slim:true ()
        in
        (* full baseline, slim candidate: a specific error, not a
           schema mismatch or a missing-metric cascade *)
        let outcome =
          Experiments.Compare.compare_json ~old_report:report ~new_report:slim
            ()
        in
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i =
            i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool)
          "error mentions the slim rendering" true
          (List.exists
             (fun e -> contains e "slim")
             outcome.Experiments.Compare.errors);
        (* slim baseline, full candidate: the normal CI direction — clean *)
        let outcome' =
          Experiments.Compare.compare_json ~old_report:slim ~new_report:report
            ()
        in
        Alcotest.(check (list string))
          "slim baseline vs full report stays clean" []
          outcome'.Experiments.Compare.errors;
        Alcotest.(check int)
          "and has no regressions" 0
          (List.length (Experiments.Compare.regressions outcome')));
    Alcotest.test_case "compare: current-schema report carries metrics" `Slow
      (fun () ->
        let report = Lazy.force tiny_report in
        Alcotest.(check (option int))
          "schema version" (Some Experiments.Bench_report.schema_version)
          (Option.bind (Json.member "schema_version" report) Json.to_int);
        (* the swapram cell embeds a windows series and an MRC *)
        let cell =
          Option.get (Json.member "benchmarks" report) |> fun b ->
          Option.get (Json.to_list b) |> List.hd |> Json.member "systems"
          |> Option.get |> Json.member "swapram" |> Option.get
        in
        let metrics = Option.get (Json.member "metrics" cell) in
        Alcotest.(check bool)
          "windows non-empty" true
          (match Option.bind (Json.member "windows" metrics) Json.to_list with
          | Some (_ :: _) -> true
          | _ -> false);
        Alcotest.(check bool)
          "mrc has points" true
          (match
             Option.bind (Json.member "mrc" metrics) (Json.member "points")
             |> Fun.flip Option.bind Json.to_list
           with
          | Some (_ :: _) -> true
          | _ -> false));
  ]

let suite =
  mrc_cases @ gate_cases
  @ [
      QCheck_alcotest.to_alcotest prop_window_conservation_swapram;
      QCheck_alcotest.to_alcotest prop_window_conservation_block;
      QCheck_alcotest.to_alcotest prop_energy_split;
      QCheck_alcotest.to_alcotest prop_json_roundtrip;
      QCheck_alcotest.to_alcotest prop_json_roundtrip_pretty;
    ]
