let () =
  Alcotest.run "swapram"
    [
      ("isa", Test_isa.suite);
      ("cpu", Test_cpu.suite);
      ("asm", Test_asm.suite);
      ("minic", Test_minic.suite);
      ("swapram", Test_swapram.suite);
      ("blockcache", Test_blockcache.suite);
      ("platform", Test_platform.suite);
      ("validation", Test_validation.suite);
      ("differential", Test_differential.suite);
      ("observe", Test_observe.suite);
      ("telemetry", Test_telemetry.suite);
      ("metrics", Test_metrics.suite);
      ("pgo", Test_pgo.suite);
      ("golden", Test_golden.suite);
      ("faultinject", Test_faultinject.suite);
    ("campaign", Test_campaign.suite);
      ("engine", Test_engine.suite);
      ("replay", Test_replay.suite);
      ("dse", Test_dse.suite);
    ]
