(* CPU semantics tests: each instruction class exercised through tiny
   assembled programs running on the simulated platform. *)

module Platform = Msp430.Platform
module Cpu = Msp430.Cpu
module Memory = Msp430.Memory
module Isa = Msp430.Isa
module Trace = Msp430.Trace
open Masm.Build

(* Assemble [stmts] as function "main", run until HALT, return the cpu. *)
let run_program ?(data = []) stmts =
  let halt =
    [ mov (imm 1) (dabsn Memory.halt_addr) ]
  in
  let program =
    [ Masm.Ast.item "main" (stmts @ halt) ]
    @ List.map (fun (name, ss) -> Masm.Ast.item ~section:Masm.Ast.Data name ss) data
  in
  let image = Masm.Assembler.assemble program in
  let system = Platform.create Platform.Mhz24 in
  Masm.Assembler.load image system.Platform.memory;
  Cpu.set_reg system.Platform.cpu Isa.sp 0x3000;
  Cpu.set_reg system.Platform.cpu Isa.pc (Masm.Assembler.lookup image "main");
  (match Cpu.run ~fuel:100_000 system.Platform.cpu with
  | Cpu.Halted -> ()
  | o -> Alcotest.fail ("program did not halt: " ^ Cpu.outcome_name o));
  (system, image)

let check_reg name stmts reg expected =
  Alcotest.test_case name `Quick (fun () ->
      let system, _ = run_program stmts in
      Alcotest.(check int) name expected (Cpu.reg system.Platform.cpu reg))

(* Independent oracle for format-I register-to-register arithmetic:
   random operands and carry-in, one encoded instruction executed on
   the CPU (through the real encode/decode path), results and NZCV
   compared against a from-the-manual model written separately here. *)
let flag_oracle op sz a b carry_in =
  let m = match sz with Isa.W -> 0xFFFF | Isa.B -> 0xFF in
  let msb = (m + 1) / 2 in
  let a = a land m and b = b land m in
  let arith b' cin =
    let full = a + b' + cin in
    let r = full land m in
    let c = full > m in
    let v = lnot (a lxor b') land (a lxor r) land msb <> 0 in
    (r, Some (c, v))
  in
  (* operands: [a] is dst, [b] is src, matching "OP src, dst" *)
  match op with
  | Isa.ADD -> arith b 0
  | Isa.ADDC -> arith b carry_in
  | Isa.SUB -> arith (lnot b land m) 1
  | Isa.SUBC -> arith (lnot b land m) carry_in
  | Isa.XOR ->
      let r = (a lxor b) land m in
      (r, Some (r <> 0, a land msb <> 0 && b land msb <> 0))
  | Isa.AND ->
      let r = a land b in
      (r, Some (r <> 0, false))
  | Isa.BIS -> (a lor b, None)
  | Isa.BIC -> (a land lnot b land m, None)
  | Isa.MOV -> (b, None)
  | _ -> invalid_arg "flag_oracle"

let exec_one_instr ~carry_in instr dst_val src_val =
  let system = Platform.create Platform.Mhz8 in
  let addr = Platform.fram_base in
  let words = Msp430.Encoding.encode ~addr instr in
  List.iteri
    (fun i w -> Memory.poke_word system.Platform.memory (addr + (2 * i)) w)
    words;
  Cpu.set_reg system.Platform.cpu 10 src_val;
  Cpu.set_reg system.Platform.cpu 11 dst_val;
  Cpu.set_reg system.Platform.cpu Isa.pc addr;
  Cpu.set_flag system.Platform.cpu Cpu.flag_c (carry_in = 1);
  Cpu.step system.Platform.cpu;
  system

let prop_format1_flags =
  let gen =
    QCheck2.Gen.(
      let* op =
        oneofl Isa.[ ADD; ADDC; SUB; SUBC; XOR; AND; BIS; BIC; MOV ]
      in
      let* sz = oneofl Isa.[ W; B ] in
      let* a = int_range 0 0xFFFF in
      let* b = int_range 0 0xFFFF in
      let* cin = int_range 0 1 in
      return (op, sz, a, b, cin))
  in
  QCheck2.Test.make ~count:3000 ~name:"format-I register semantics vs oracle"
    gen
    (fun (op, sz, dst_val, src_val, cin) ->
      let m = match sz with Isa.W -> 0xFFFF | Isa.B -> 0xFF in
      let msb = (m + 1) / 2 in
      let instr = Isa.I1 (op, sz, Isa.Sreg 10, Isa.Dreg 11) in
      let system = exec_one_instr ~carry_in:cin instr dst_val src_val in
      let expected, flags = flag_oracle op sz dst_val src_val cin in
      let got = Cpu.reg system.Platform.cpu 11 in
      (* byte ops clear the destination register's upper byte *)
      got = expected land m
      &&
      match flags with
      | None -> true
      | Some (c, v) ->
          Cpu.get_flag system.Platform.cpu Cpu.flag_c = c
          && Cpu.get_flag system.Platform.cpu Cpu.flag_v = v
          && Cpu.get_flag system.Platform.cpu Cpu.flag_z = (expected land m = 0)
          && Cpu.get_flag system.Platform.cpu Cpu.flag_n
             = (expected land msb <> 0))

let prop_cmp_never_writes =
  let gen =
    QCheck2.Gen.(
      let* a = int_range 0 0xFFFF in
      let* b = int_range 0 0xFFFF in
      return (a, b))
  in
  QCheck2.Test.make ~count:500 ~name:"CMP sets flags without writing" gen
    (fun (dst_val, src_val) ->
      let instr = Isa.I1 (Isa.CMP, Isa.W, Isa.Sreg 10, Isa.Dreg 11) in
      let system = exec_one_instr ~carry_in:0 instr dst_val src_val in
      Cpu.reg system.Platform.cpu 11 = dst_val
      && Cpu.get_flag system.Platform.cpu Cpu.flag_z = (dst_val = src_val))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_format1_flags;
    QCheck_alcotest.to_alcotest prop_cmp_never_writes;
    check_reg "mov imm" [ mov (imm 0x1234) (dreg r12) ] r12 0x1234;
    check_reg "add" [ mov (imm 5) (dreg r12); add (imm 7) (dreg r12) ] r12 12;
    check_reg "add carry wraps"
      [ mov (imm 0xFFFF) (dreg r12); add (imm 2) (dreg r12) ]
      r12 1;
    check_reg "addc uses carry"
      [
        mov (imm 0xFFFF) (dreg r12);
        add (imm 1) (dreg r12) (* sets carry *);
        mov (imm 10) (dreg r13);
        addc (imm 0) (dreg r13);
      ]
      r13 11;
    check_reg "sub" [ mov (imm 10) (dreg r12); sub (imm 3) (dreg r12) ] r12 7;
    check_reg "sub borrow"
      [ mov (imm 3) (dreg r12); sub (imm 5) (dreg r12) ]
      r12 0xFFFE;
    check_reg "subc no borrow"
      [
        mov (imm 10) (dreg r12);
        sub (imm 1) (dreg r12) (* C=1: no borrow *);
        mov (imm 20) (dreg r13);
        subc (imm 5) (dreg r13);
      ]
      r13 15;
    check_reg "xor" [ mov (imm 0xFF0F) (dreg r12); xor (imm 0x0FF0) (dreg r12) ] r12 0xF0FF;
    check_reg "and" [ mov (imm 0xFF0F) (dreg r12); and_ (imm 0x0FF0) (dreg r12) ] r12 0x0F00;
    check_reg "bis" [ mov (imm 0xF000) (dreg r12); bis (imm 0x000F) (dreg r12) ] r12 0xF00F;
    check_reg "bic" [ mov (imm 0xFFFF) (dreg r12); bic (imm 0x00F0) (dreg r12) ] r12 0xFF0F;
    check_reg "swpb" [ mov (imm 0x1234) (dreg r12); swpb (reg r12) ] r12 0x3412;
    check_reg "sxt positive" [ mov (imm 0x007F) (dreg r12); sxt (reg r12) ] r12 0x007F;
    check_reg "sxt negative" [ mov (imm 0x0080) (dreg r12); sxt (reg r12) ] r12 0xFF80;
    check_reg "rra" [ mov (imm 0x8004) (dreg r12); rra (reg r12) ] r12 0xC002;
    check_reg "rrc carries in"
      [
        mov (imm 1) (dreg r13);
        add (imm 0xFFFF) (dreg r13) (* C=1 *);
        mov (imm 4) (dreg r12);
        rrc (reg r12);
      ]
      r12 0x8002;
    check_reg "byte op clears high"
      [ mov (imm 0x1234) (dreg r12); add_b (imm 1) (dreg r12) ]
      r12 0x0035;
    check_reg "push/pop"
      [ mov (imm 0xBEEF) (dreg r12); push (reg r12); mov (imm 0) (dreg r12); pop r12 ]
      r12 0xBEEF;
    check_reg "jeq taken"
      [
        mov (imm 5) (dreg r12);
        cmp (imm 5) (dreg r12);
        jeq "equal";
        mov (imm 0) (dreg r12);
        jmp "done";
        label "equal";
        mov (imm 1) (dreg r12);
        label "done";
      ]
      r12 1;
    check_reg "jl signed"
      [
        mov (imm 0xFFFE) (dreg r12) (* -2 *);
        cmp (imm 1) (dreg r12) (* -2 < 1 *);
        jl "less";
        mov (imm 0) (dreg r12);
        jmp "done";
        label "less";
        mov (imm 1) (dreg r12);
        label "done";
      ]
      r12 1;
    check_reg "jc unsigned"
      [
        mov (imm 0xFFFE) (dreg r12);
        cmp (imm 1) (dreg r12) (* 0xFFFE >= 1 unsigned: carry set *);
        jc "geu";
        mov (imm 0) (dreg r12);
        jmp "done";
        label "geu";
        mov (imm 1) (dreg r12);
        label "done";
      ]
      r12 1;
    check_reg "call/ret"
      [
        mov (imm 3) (dreg r12);
        call "double";
        add (imm 1) (dreg r12);
        jmp "done";
        label "double";
        add (reg r12) (dreg r12);
        ret;
        label "done";
      ]
      r12 7;
    check_reg "indexed store/load"
      [
        mov (imm 0x2800) (dreg r4);
        mov (imm 0x5678) (didx 4 r4);
        mov (idx 4 r4) (dreg r12);
      ]
      r12 0x5678;
    check_reg "autoincrement"
      [
        mov (imm 0x2800) (dreg r4);
        mov (imm 0x1111) (dabsn 0x2800);
        mov (imm 0x2222) (dabsn 0x2802);
        mov (inc r4) (dreg r12);
        add (inc r4) (dreg r12);
      ]
      r12 0x3333;
    Alcotest.test_case "uart output" `Quick (fun () ->
        let system, _ =
          run_program
            [
              mov_b (imm (Char.code 'h')) (dabsn Memory.uart_tx_addr);
              mov_b (imm (Char.code 'i')) (dabsn Memory.uart_tx_addr);
            ]
        in
        Alcotest.(check string)
          "uart" "hi"
          (Memory.uart_output system.Platform.memory));
    Alcotest.test_case "cycle counting reasonable" `Quick (fun () ->
        let system, _ = run_program [ mov (imm 1) (dreg r12) ] in
        let stats = Cpu.stats system.Platform.cpu in
        (* MOV #1, R12 = 1 cycle (CG) + halt store (#1 CG, &abs dst) 4 cycles *)
        Alcotest.(check int) "unstalled" 5 stats.Trace.unstalled_cycles);
    Alcotest.test_case "fram ifetch counted" `Quick (fun () ->
        let system, _ = run_program [ mov (imm 1) (dreg r12) ] in
        let stats = Cpu.stats system.Platform.cpu in
        (* two instructions, 1 + 2 words *)
        Alcotest.(check int) "ifetches" 3 stats.Trace.fram_ifetch);
    Alcotest.test_case "wait states at 24MHz" `Quick (fun () ->
        let system, _ = run_program [ mov (imm 1) (dreg r12) ] in
        let stats = Cpu.stats system.Platform.cpu in
        Alcotest.(check bool) "stalls observed" true (stats.Trace.stall_cycles > 0));
    Alcotest.test_case "decode cache sees self-modifying code" `Quick
      (fun () ->
        (* The patched instruction sits at a PC the decode cache has
           already seen; the second pass must decode the new word (the
           cache self-validates against fetched words), so r8
           accumulates 1 + 2, not 1 + 1. *)
        let system, _ =
          run_program
            ~data:[ ("proto", [ mov (imm 2) (dreg r12) ]) ]
            [
              clr (dreg r7);
              clr (dreg r8);
              label "loop";
              label "patch";
              mov (imm 1) (dreg r12);
              add (reg r12) (dreg r8);
              mov (abs "proto") (dabs "patch");
              inc_ (dreg r7);
              cmp (imm 2) (dreg r7);
              jne "loop";
            ]
        in
        Alcotest.(check int) "patched iteration ran the new instruction" 3
          (Cpu.reg system.Platform.cpu r8);
        Alcotest.(check int) "r12 holds the patched value" 2
          (Cpu.reg system.Platform.cpu r12));
  ]
