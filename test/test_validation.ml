(* §5.1 program-flow validation: run benchmarks with fresh input seeds
   and check that UART output (the check-sequence) and the return
   value are identical on the baseline, under SwapRAM and under the
   block cache. The heavyweight benchmarks are exercised at one seed
   by the bench harness; here we cover the fast ones across seeds. *)

module T = Experiments.Toolchain
module Trace = Msp430.Trace

let run config =
  match T.run config with
  | T.Completed r -> Some r
  | T.Crashed o -> failwith ("did not halt: " ^ Msp430.Cpu.outcome_name o)
  | T.Did_not_fit _ -> None

let check_seed benchmark seed () =
  let base_config = { (T.default_config benchmark) with T.seed } in
  let base =
    match run base_config with
    | Some r -> r
    | None -> Alcotest.fail "baseline does not fit"
  in
  (match
     run
       {
         base_config with
         T.caching = T.Swapram_cache Swapram.Config.default_options;
       }
   with
  | Some sr ->
      Alcotest.(check string) "swapram uart" base.T.uart sr.T.uart;
      Alcotest.(check int) "swapram result" base.T.return_value sr.T.return_value
  | None -> Alcotest.fail "swapram build does not fit");
  match
    run
      {
        base_config with
        T.caching = T.Block_cache Blockcache.Config.default_options;
      }
  with
  | Some bb ->
      Alcotest.(check string) "block uart" base.T.uart bb.T.uart;
      Alcotest.(check int) "block result" base.T.return_value bb.T.return_value
  | None -> () (* DNF benchmarks are allowed to skip the block cache *)

let fast_benchmarks =
  Workloads.Suite.[ crc; rc4; aes; bitcount; rsa; arith ]

let suite =
  List.concat_map
    (fun b ->
      List.map
        (fun seed ->
          Alcotest.test_case
            (Printf.sprintf "%s seed %d" b.Workloads.Bench_def.name seed)
            `Quick (check_seed b seed))
        [ 2; 3 ])
    fast_benchmarks
  @ [
      (* one heavier benchmark with relocatable branches and the
         MTF/compression phases, at a fresh seed *)
      Alcotest.test_case "lzfx seed 2" `Slow
        (check_seed Workloads.Suite.lzfx 2);
      Alcotest.test_case "sram fraction high on fitting benchmarks" `Quick
        (fun () ->
          let base_config = T.default_config Workloads.Suite.crc in
          match
            run
              {
                base_config with
                T.caching = T.Swapram_cache Swapram.Config.default_options;
              }
          with
          | Some r ->
              Alcotest.(check bool) "sram frac > 0.9" true
                (Trace.instr_fraction r.T.stats Trace.App_sram > 0.9)
          | None -> Alcotest.fail "build failed");
    ]
