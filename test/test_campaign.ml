(* Monte-Carlo campaign engine tests.

   The campaign's load-bearing promise is determinism: an outcome is a
   pure function of its plan, so serial, parallel, chaos-interrupted
   and checkpoint-resumed runs must all render byte-identical JSON.
   These tests exercise that contract end to end on a deliberately
   tiny plan, plus the statistics primitives underneath it and a
   differential-oracle property: no randomized schedule may escape
   the injector as an OCaml exception. *)

module C = Faultinject.Campaign
module FI = Faultinject.Injector
module FS = Faultinject.Schedule
module T = Experiments.Toolchain
module Json = Observe.Json
module Progress = Observe.Progress

(* --- Wilson score interval ------------------------------------- *)

let wilson_empty () =
  let lo, hi = C.wilson 0 0 in
  Alcotest.(check (float 1e-9)) "lo" 0.0 lo;
  Alcotest.(check (float 1e-9)) "hi" 1.0 hi

let wilson_known () =
  (* 10/10 successes at z=1.96: lo = z^2/(n+z^2) boundary ~ 0.7225 *)
  let lo, hi = C.wilson 10 10 in
  Alcotest.(check (float 1e-3)) "lo" 0.722 lo;
  Alcotest.(check (float 1e-9)) "hi" 1.0 hi;
  (* symmetric case: 5/10 is centred on 0.5 *)
  let lo', hi' = C.wilson 10 5 in
  Alcotest.(check (float 1e-9)) "symmetric" 0.5 ((lo' +. hi') /. 2.0)

let wilson_bounds_and_shrink () =
  let width n k =
    let lo, hi = C.wilson n k in
    Alcotest.(check bool) "lo >= 0" true (lo >= 0.0);
    Alcotest.(check bool) "hi <= 1" true (hi <= 1.0);
    Alcotest.(check bool) "lo <= hi" true (lo <= hi);
    hi -. lo
  in
  (* the interval narrows monotonically as evidence accumulates *)
  let w10 = width 10 9 in
  let w100 = width 100 90 in
  let w1000 = width 1000 900 in
  Alcotest.(check bool) "10 -> 100 narrows" true (w100 < w10);
  Alcotest.(check bool) "100 -> 1000 narrows" true (w1000 < w100)

(* --- per-trial seeds ------------------------------------------- *)

let trial_seeds_deterministic () =
  let s1 = C.trial_seed ~seed:7 ~cell:3 ~trial:42 in
  let s2 = C.trial_seed ~seed:7 ~cell:3 ~trial:42 in
  Alcotest.(check int) "stable across calls" s1 s2;
  Alcotest.(check bool) "non-negative" true (s1 >= 0)

let trial_seeds_distinct () =
  (* seeds across a small grid must not collide: a collision would
     silently run the same schedule twice and bias the statistics *)
  let tbl = Hashtbl.create 512 in
  for cell = 0 to 7 do
    for trial = 0 to 63 do
      let s = C.trial_seed ~seed:1 ~cell ~trial in
      (match Hashtbl.find_opt tbl s with
      | Some (c', t') ->
          Alcotest.failf "seed collision: (%d,%d) vs (%d,%d)" cell trial c' t'
      | None -> ());
      Hashtbl.add tbl s (cell, trial)
    done
  done;
  (* changing the campaign seed moves every trial seed *)
  Alcotest.(check bool) "campaign seed matters" true
    (C.trial_seed ~seed:1 ~cell:0 ~trial:0
    <> C.trial_seed ~seed:2 ~cell:0 ~trial:0)

(* --- samplers and tallies -------------------------------------- *)

let sampler_roundtrip () =
  List.iter
    (fun s ->
      match C.sampler_of_string (C.sampler_name s) with
      | Some s' -> Alcotest.(check bool) (C.sampler_name s) true (s = s')
      | None -> Alcotest.fail ("no parse for " ^ C.sampler_name s))
    C.all_samplers;
  Alcotest.(check bool) "bad name rejected" true
    (C.sampler_of_string "cosmic-ray" = None)

let tally_arithmetic () =
  let t =
    {
      C.tally_zero with
      C.t_trials = 3;
      t_consistent = 2;
      t_completed = 3;
      t_reboots = 11;
    }
  in
  let s = C.tally_add t (C.tally_add t C.tally_zero) in
  Alcotest.(check int) "trials" 6 s.C.t_trials;
  Alcotest.(check int) "consistent" 4 s.C.t_consistent;
  Alcotest.(check int) "reboots" 22 s.C.t_reboots

(* --- end-to-end campaign determinism --------------------------- *)

let tiny_plan =
  {
    C.default_plan with
    C.p_benchmarks = [ Workloads.Suite.journal ];
    p_runtimes =
      [
        T.Swapram_cache Swapram.Config.default_options;
        T.Checkpoint_runtime Swapram.Checkpoint.default_options;
      ];
    p_samplers = [ C.Uniform ];
    p_trials = 10;
    p_shard_trials = 5;
    p_seed = 11;
  }

let run_json ?jobs ?progress ?progress_file ?chaos plan =
  match C.run ?jobs ?progress ?progress_file ?chaos plan with
  | Ok o -> (o, Json.to_string (C.to_json o))
  | Error e -> Alcotest.fail ("campaign failed: " ^ e)

let serial_matches_parallel () =
  let o, serial = run_json ~jobs:1 tiny_plan in
  let _, par = run_json ~jobs:2 tiny_plan in
  Alcotest.(check string) "byte-identical reports" serial par;
  Alcotest.(check int) "all trials ran" 20 o.C.o_trials;
  List.iter
    (fun (cr : C.cell_result) ->
      let t = cr.C.cr_tally in
      Alcotest.(check int) "per-cell trials" 10 t.C.t_trials;
      Alcotest.(check bool) "outages landed" true (t.C.t_reboots > 0);
      Alcotest.(check bool) "consistency never exceeds completion" true
        (t.C.t_consistent <= t.C.t_completed);
      let lo, hi = cr.C.cr_consistency_ci in
      Alcotest.(check bool) "CI ordered" true (0.0 <= lo && lo <= hi && hi <= 1.0);
      match cr.C.cr_tally.C.t_completed with
      | 0 -> ()
      | _ ->
          Alcotest.(check bool) "cycle overhead >= 1 over golden" true
            (C.cycle_overhead cr >= 1.0))
    o.C.o_cells

let early_stop_is_deterministic () =
  (* swapram/journal/uniform is fully consistent, so ten trials narrow
     the Wilson interval to ~0.28 — a 0.4 threshold stops the cell
     after the second 5-trial shard on any worker layout *)
  let plan =
    {
      tiny_plan with
      C.p_runtimes = [ T.Swapram_cache Swapram.Config.default_options ];
      p_trials = 20;
      p_ci_width = Some 0.4;
    }
  in
  let o, serial = run_json ~jobs:1 plan in
  let _, par = run_json ~jobs:2 plan in
  Alcotest.(check string) "early stop agrees across layouts" serial par;
  match o.C.o_cells with
  | [ cr ] ->
      Alcotest.(check bool) "stopped early" true cr.C.cr_stopped_early;
      Alcotest.(check bool) "fewer trials than planned" true
        (cr.C.cr_tally.C.t_trials < 20);
      let lo, hi = cr.C.cr_consistency_ci in
      Alcotest.(check bool) "CI below threshold" true (hi -. lo <= 0.4)
  | _ -> Alcotest.fail "expected one cell"

(* --- self-healing worker pool under chaos ---------------------- *)

let survives_worker_kill () =
  (* kill the first worker that picks up shard 1, exactly once: the
     pool must respawn it, re-queue the shard and still produce the
     serial report byte for byte *)
  let marker = Filename.temp_file "campaign_chaos" ".marker" in
  Sys.remove marker;
  let chaos ~cell:_ ~shard =
    if
      shard = 1
      && Experiments.Parallel.in_worker ()
      && not (Sys.file_exists marker)
    then begin
      close_out (open_out marker);
      Unix._exit 17
    end
  in
  let deaths = ref 0 in
  let progress = function
    | Progress.Pool_event _ -> incr deaths
    | _ -> ()
  in
  let _, expected = run_json ~jobs:1 tiny_plan in
  let _, survived = run_json ~jobs:2 ~progress ~chaos tiny_plan in
  if Sys.file_exists marker then Sys.remove marker;
  Alcotest.(check string) "kill is invisible in the report" expected survived;
  Alcotest.(check bool) "the pool actually saw lifecycle events" true
    (!deaths > 0)

(* --- progress checkpoints: resume and extend ------------------- *)

let with_progress_file f =
  let path = Filename.temp_file "campaign_progress" ".bin" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let resume_replays_from_checkpoint () =
  with_progress_file (fun path ->
      let _, first = run_json ~jobs:1 ~progress_file:path tiny_plan in
      let cached = ref 0 and fresh = ref 0 in
      let progress = function
        | Progress.Shard_done { cached = true; _ } -> incr cached
        | Progress.Shard_done { cached = false; _ } -> incr fresh
        | _ -> ()
      in
      let _, second = run_json ~jobs:1 ~progress ~progress_file:path tiny_plan in
      Alcotest.(check string) "resumed report identical" first second;
      Alcotest.(check int) "nothing recomputed" 0 !fresh;
      (* 2 cells x 2 shards *)
      Alcotest.(check int) "every shard replayed" 4 !cached)

let extend_reuses_finished_shards () =
  with_progress_file (fun path ->
      let _ = run_json ~jobs:1 ~progress_file:path tiny_plan in
      let cached = ref 0 and fresh = ref 0 in
      let progress = function
        | Progress.Shard_done { cached = true; _ } -> incr cached
        | Progress.Shard_done { cached = false; _ } -> incr fresh
        | _ -> ()
      in
      (* grow 10 -> 15 trials per cell: the two finished shards per
         cell replay, only the new third shard is computed *)
      let bigger = { tiny_plan with C.p_trials = 15 } in
      let o, _ = run_json ~jobs:1 ~progress ~progress_file:path bigger in
      Alcotest.(check int) "old shards replayed" 4 !cached;
      Alcotest.(check int) "only new shards computed" 2 !fresh;
      Alcotest.(check int) "extended total" 30 o.C.o_trials;
      (* and the extended run must agree with a from-scratch run *)
      let _, scratch = run_json ~jobs:1 bigger in
      Alcotest.(check string) "extension matches scratch"
        (Json.to_string (C.to_json o))
        scratch)

let fingerprint_mismatch_is_an_error () =
  with_progress_file (fun path ->
      let _ = run_json ~jobs:1 ~progress_file:path tiny_plan in
      let other = { tiny_plan with C.p_seed = tiny_plan.C.p_seed + 1 } in
      match C.run ~progress_file:path other with
      | Error msg ->
          Alcotest.(check bool) "names the mismatch" true
            (String.length msg > 0)
      | Ok _ -> Alcotest.fail "expected a fingerprint mismatch error")

(* --- differential oracle property (blockcache) ----------------- *)

(* Randomized power-failure schedules against the block cache must
   always come back as a verdict — Pass, a mismatch, a livelock — and
   never escape the injector as an OCaml exception. The golden run is
   captured once; each property case injects a fresh schedule. *)
let prop_blockcache_never_escapes =
  let config =
    {
      (T.default_config Workloads.Suite.journal) with
      T.caching = T.Block_cache Blockcache.Config.default_options;
    }
  in
  let golden =
    match Faultinject.Oracle.golden config with
    | Ok g -> g
    | Error msg -> failwith ("golden run failed: " ^ msg)
  in
  let gen_schedule =
    QCheck2.Gen.(
      let* seed = int_range 0 0x3FFFFFFF in
      oneof
        [
          return (C.schedule_for C.Uniform golden seed);
          return (C.schedule_for C.Bursty golden seed);
          return (C.schedule_for C.Near_eviction golden seed);
          (let* min_gap = int_range 1_000 50_000 in
           let* extra = int_range 1 200_000 in
           return
             (FS.Random { seed; min_gap; max_gap = min_gap + extra }));
        ])
  in
  QCheck2.Test.make ~count:25
    ~name:"blockcache differential oracle never escapes" gen_schedule
    (fun schedule ->
      match
        FI.run_against ~max_reboots:500 ~watchdog_cycles:200_000_000 ~golden
          config schedule
      with
      | r ->
          (* the verdict is always printable and internally consistent *)
          String.length (FI.verdict_name r.FI.r_verdict) > 0
          && r.FI.r_reboots >= 0
          && r.FI.r_torn_reboots <= r.FI.r_reboots
      | exception e ->
          QCheck2.Test.fail_reportf "schedule escaped: %s"
            (Printexc.to_string e))

let suite =
  [
    Alcotest.test_case "wilson: empty" `Quick wilson_empty;
    Alcotest.test_case "wilson: known values" `Quick wilson_known;
    Alcotest.test_case "wilson: bounds and shrink" `Quick
      wilson_bounds_and_shrink;
    Alcotest.test_case "trial seeds: deterministic" `Quick
      trial_seeds_deterministic;
    Alcotest.test_case "trial seeds: distinct" `Quick trial_seeds_distinct;
    Alcotest.test_case "sampler names round-trip" `Quick sampler_roundtrip;
    Alcotest.test_case "tally arithmetic" `Quick tally_arithmetic;
    Alcotest.test_case "serial matches parallel" `Slow serial_matches_parallel;
    Alcotest.test_case "early stop is deterministic" `Slow
      early_stop_is_deterministic;
    Alcotest.test_case "survives a worker kill" `Slow survives_worker_kill;
    Alcotest.test_case "resume replays from checkpoint" `Slow
      resume_replays_from_checkpoint;
    Alcotest.test_case "extension reuses finished shards" `Slow
      extend_reuses_finished_shards;
    Alcotest.test_case "fingerprint mismatch errors" `Quick
      fingerprint_mismatch_is_an_error;
    QCheck_alcotest.to_alcotest prop_blockcache_never_escapes;
  ]
